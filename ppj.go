// Package ppj is a Go reproduction of "Privacy Preserving Joins" (Li &
// Chen, ICDE 2008; extended as UCB/EECS-2008-158): privacy preserving join
// algorithms for a trusted-third-party service whose only trusted component
// is a secure coprocessor.
//
// The package exposes the system through an Engine: a simulated untrusted
// host with an attached simulated coprocessor. Relations are loaded
// encrypted onto the host; the six join algorithms of the paper run inside
// the coprocessor and leave encrypted results on the host; every host
// access is traced, and the safe algorithms' traces depend only on public
// sizes — the paper's privacy definition, enforced by this repository's
// tests.
//
//	eng, _ := ppj.NewEngine(ppj.EngineConfig{Memory: 64})
//	ta, _ := eng.Load("A", relA)
//	tb, _ := eng.Load("B", relB)
//	pred, _ := ppj.Equijoin(relA.Schema, "key", relB.Schema, "key")
//	res, _ := eng.Join(ppj.Alg5, []ppj.TableRef{ta, tb}, ppj.Pairwise(pred), ppj.JoinOptions{})
//	rows, _ := eng.Decode(res)
//
// Subsystems: internal/relation (schemas, tuples, predicates),
// internal/ocb (authenticated encryption), internal/sim (host/coprocessor
// simulator), internal/oblivious (bitonic sort, shuffle, decoy filter),
// internal/mlfsr (random traversal), internal/costmodel (the paper's closed
// forms), internal/core (the algorithms), internal/adversary (leak
// demonstrations), internal/smc (garbled-circuit baseline), internal/secop
// (device trust model) and internal/service (the network service).
package ppj

import (
	"fmt"

	"ppj/internal/core"
	"ppj/internal/relation"
	"ppj/internal/sim"
)

// Re-exported relational types.
type (
	// Schema describes a relation's attributes.
	Schema = relation.Schema
	// Attr is one attribute of a schema.
	Attr = relation.Attr
	// AttrType enumerates attribute types.
	AttrType = relation.AttrType
	// Tuple is a decoded row.
	Tuple = relation.Tuple
	// Value is a dynamically typed attribute value.
	Value = relation.Value
	// Relation is an in-memory plaintext table.
	Relation = relation.Relation
	// Predicate is an arbitrary 2-way join predicate.
	Predicate = relation.Predicate
	// MultiPredicate is a J-way join predicate.
	MultiPredicate = relation.MultiPredicate
	// TableRef references an encrypted relation on the host.
	TableRef = sim.Table
	// Result is a join outcome: encrypted output region plus statistics.
	Result = core.Result
	// Join6Report extends Result with Algorithm 6's derived parameters.
	Join6Report = core.Join6Report
	// Stats are the coprocessor's cost counters.
	Stats = sim.Stats
	// Trace is the host-observable access sequence.
	Trace = sim.Trace
)

// Attribute type constants.
const (
	Int64   = relation.Int64
	Float64 = relation.Float64
	String  = relation.String
	Bytes   = relation.Bytes
	Set     = relation.Set
)

// NewSchema validates an attribute list. See relation.NewSchema.
func NewSchema(attrs ...Attr) (*Schema, error) { return relation.NewSchema(attrs...) }

// NewRelation constructs an empty relation over a schema.
func NewRelation(s *Schema) *Relation { return relation.NewRelation(s) }

// Predicate constructors.
var (
	// Equijoin builds A.attrA = B.attrB.
	Equijoin = relation.NewEqui
	// BandJoin builds |A.attrA − B.attrB| <= width.
	BandJoin = relation.NewBand
	// LessThanJoin builds A.attrA < B.attrB.
	LessThanJoin = relation.NewLessThan
	// JaccardJoin builds jaccard(A.attrA, B.attrB) > threshold.
	JaccardJoin = relation.NewJaccard
	// Pairwise lifts a 2-way predicate to a MultiPredicate.
	Pairwise = relation.Pairwise
)

// ReferenceJoin computes the plaintext nested-loop join (the correctness
// oracle; it has no privacy properties).
func ReferenceJoin(a, b *Relation, pred Predicate) *Relation {
	return relation.ReferenceJoin(a, b, pred)
}

// MaxMatches computes N, the largest number of B rows joining one A row.
func MaxMatches(a, b *Relation, pred Predicate) int {
	return relation.MaxMatches(a, b, pred)
}

// Algorithm selects one of the paper's join algorithms.
type Algorithm int

const (
	// Alg1 is the Chapter 4 general join for small memories (§4.4.1).
	Alg1 Algorithm = iota + 1
	// Alg2 is the Chapter 4 general join for larger memories (§4.4.3).
	Alg2
	// Alg3 is the Chapter 4 sort-based equijoin (§4.5.2).
	Alg3
	// Alg4 is the Chapter 5 small-memory exact join (§5.3.1).
	Alg4
	// Alg5 is the Chapter 5 multi-scan exact join (§5.3.2).
	Alg5
	// Alg6 is the Chapter 5 privacy/efficiency trade-off join (§5.3.3).
	Alg6
	// Alg7 is the sort-based O(n log n) oblivious equijoin (after
	// Krastnikov et al.), exact output like Chapter 5.
	Alg7
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	if a >= Alg1 && a <= Alg7 {
		return fmt.Sprintf("Algorithm %d", int(a))
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// EngineConfig parameterises an Engine.
type EngineConfig struct {
	// Memory is the coprocessor's free memory M in tuples (0 = unbounded).
	Memory int
	// Seed fixes the coprocessor's internal randomness (0 = random).
	Seed uint64
	// Plain disables real encryption in favour of the accounting-only
	// sealer, for full-scale cost measurement runs.
	Plain bool
	// TraceRecordLimit bounds raw-event retention (digest and count are
	// always kept).
	TraceRecordLimit int
}

// Engine bundles a simulated host and coprocessor.
type Engine struct {
	host *sim.Host
	cop  *sim.Coprocessor
}

// NewEngine builds a host with one attached coprocessor.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	h := sim.NewHost(cfg.TraceRecordLimit)
	var sealer sim.Sealer
	if cfg.Plain {
		sealer = sim.PlainSealer{}
	}
	cop, err := sim.NewCoprocessor(h, sim.Config{Memory: cfg.Memory, Sealer: sealer, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return &Engine{host: h, cop: cop}, nil
}

// Host exposes the untrusted host (for trace inspection).
func (e *Engine) Host() *sim.Host { return e.host }

// Coprocessor exposes the trusted device (for statistics).
func (e *Engine) Coprocessor() *sim.Coprocessor { return e.cop }

// Load encrypts a relation and stores it on the host under name.
func (e *Engine) Load(name string, rel *Relation) (TableRef, error) {
	return sim.LoadTable(e.host, e.cop.Sealer(), name, rel)
}

// JoinOptions carry per-algorithm parameters.
type JoinOptions struct {
	// N is the Chapter 4 match bound (0 = caller must precompute; the
	// service layer computes it with the paper's preprocessing pass).
	N int64
	// Pred2 is the 2-way predicate for Alg1-Alg3 (required there).
	Pred2 Predicate
	// Epsilon is Algorithm 6's privacy trade-off (default 1e-10).
	Epsilon float64
	// Delta is Algorithm 2's bookkeeping memory allowance δ.
	Delta int64
	// PreSorted tells Algorithm 3 that B arrived sorted on the join key.
	PreSorted bool
}

// Join dispatches to the selected algorithm. Chapter 4 algorithms (Alg1-3)
// need exactly two tables and opts.Pred2 plus opts.N; Chapter 5 algorithms
// take any number of tables and the MultiPredicate argument.
func (e *Engine) Join(alg Algorithm, tables []TableRef, pred MultiPredicate, opts JoinOptions) (Result, error) {
	switch alg {
	case Alg1, Alg2, Alg3:
		if len(tables) != 2 {
			return Result{}, fmt.Errorf("ppj: %s needs exactly 2 tables", alg)
		}
		if opts.Pred2 == nil {
			return Result{}, fmt.Errorf("ppj: %s needs JoinOptions.Pred2", alg)
		}
		if opts.N <= 0 {
			return Result{}, fmt.Errorf("ppj: %s needs JoinOptions.N (use MaxMatches)", alg)
		}
		switch alg {
		case Alg1:
			return core.Join1(e.cop, tables[0], tables[1], opts.Pred2, opts.N)
		case Alg2:
			return core.Join2(e.cop, tables[0], tables[1], opts.Pred2, opts.N, opts.Delta)
		default:
			eq, ok := opts.Pred2.(*relation.Equi)
			if !ok {
				return Result{}, fmt.Errorf("ppj: Alg3 requires an equijoin predicate")
			}
			return core.Join3(e.cop, tables[0], tables[1], eq, opts.N, opts.PreSorted)
		}
	case Alg4:
		return core.Join4(e.cop, tables, pred)
	case Alg5:
		return core.Join5(e.cop, tables, pred)
	case Alg6:
		eps := opts.Epsilon
		if eps == 0 {
			eps = 1e-10
		}
		rep, err := core.Join6(e.cop, tables, pred, eps)
		return rep.Result, err
	case Alg7:
		if len(tables) != 2 {
			return Result{}, fmt.Errorf("ppj: %s needs exactly 2 tables", alg)
		}
		if opts.Pred2 == nil {
			return Result{}, fmt.Errorf("ppj: %s needs JoinOptions.Pred2", alg)
		}
		eq, ok := opts.Pred2.(*relation.Equi)
		if !ok {
			return Result{}, fmt.Errorf("ppj: Alg7 requires an equijoin predicate")
		}
		return core.Join7(e.cop, tables[0], tables[1], eq)
	default:
		return Result{}, fmt.Errorf("ppj: unknown algorithm %d", alg)
	}
}

// Join6Full runs Algorithm 6 and returns its full report (n*, segments,
// blemish flag).
func (e *Engine) Join6Full(tables []TableRef, pred MultiPredicate, eps float64) (Join6Report, error) {
	return core.Join6(e.cop, tables, pred, eps)
}

// Decode opens a join result and returns the real rows, dropping decoys —
// the recipient-side view.
func (e *Engine) Decode(res Result) (*Relation, error) {
	return core.DecodeOutput(e.cop, res)
}

// AggKind, AggSpec and AggResult expose the aggregation extension (a
// future-work item of the thesis answered affirmatively here: statistics
// over a join need only one pass and never materialise the result).
type (
	AggKind   = core.AggKind
	AggSpec   = core.AggSpec
	AggResult = core.AggResult
)

// Aggregate kinds.
const (
	AggCount = core.AggCount
	AggSum   = core.AggSum
	AggMin   = core.AggMin
	AggMax   = core.AggMax
	AggAvg   = core.AggAvg
)

// Aggregate computes COUNT/SUM/MIN/MAX/AVG over the join of the tables in
// a single fixed-order pass, with the accumulator inside the coprocessor.
// The access pattern depends only on L — not even on the join size.
func (e *Engine) Aggregate(tables []TableRef, pred MultiPredicate, spec AggSpec) (AggResult, error) {
	return core.Aggregate(e.cop, tables, pred, spec)
}

// Join6OnePass runs the one-pass variant of Algorithm 6 for callers that
// know the join size S a priori (public by contract or a previous run),
// saving Algorithm 6's screening pass — the affirmative answer to the
// thesis's "does a one pass algorithm exist?" question, for the known-S
// case. It fails closed if the declared S is wrong.
func (e *Engine) Join6OnePass(tables []TableRef, pred MultiPredicate, eps float64, knownS int64) (Join6Report, error) {
	return core.Join6OnePass(e.cop, tables, pred, eps, knownS)
}
