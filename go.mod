module ppj

go 1.24
