// Command ppjoin runs a privacy preserving join over two CSV relations in
// the coprocessor simulator and prints the result with cost statistics.
//
// Usage:
//
//	ppjoin -a left.csv -b right.csv -on keyA=keyB [-alg 5] [-mem 64]
//	       [-pred equi|band|lessthan] [-param 2] [-eps 1e-10] [-stats]
//
// CSV files need a header row; a column parseable as an integer throughout
// becomes an int64 attribute, a column parseable as a float becomes
// float64, anything else a string. With no -a/-b flags a small built-in
// demo dataset is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ppj"
)

func main() {
	var (
		fileA   = flag.String("a", "", "left relation CSV (empty: demo data)")
		fileB   = flag.String("b", "", "right relation CSV (empty: demo data)")
		on      = flag.String("on", "key=key", "join attributes as left=right")
		alg     = flag.Int("alg", 5, "algorithm 1..7")
		mem     = flag.Int("mem", 64, "coprocessor memory M in tuples")
		predK   = flag.String("pred", "equi", "predicate: equi, band, lessthan")
		param   = flag.Float64("param", 0, "band width for -pred band")
		eps     = flag.Float64("eps", 1e-10, "Algorithm 6 privacy parameter")
		stats   = flag.Bool("stats", false, "print cost statistics")
		maxRows = flag.Int("n", 20, "result rows to print (0 = all)")
		agg     = flag.String("agg", "", "compute a statistic instead of rows: count, or sum/min/max/avg:ATTR (over the left relation)")
	)
	flag.Parse()

	relA, relB, err := loadInputs(*fileA, *fileB)
	if err != nil {
		fatal(err)
	}
	attrs := strings.SplitN(*on, "=", 2)
	if len(attrs) != 2 {
		fatal(fmt.Errorf("-on must be left=right"))
	}

	var pred ppj.Predicate
	switch *predK {
	case "equi":
		pred, err = ppj.Equijoin(relA.Schema, attrs[0], relB.Schema, attrs[1])
	case "band":
		pred, err = ppj.BandJoin(relA.Schema, attrs[0], relB.Schema, attrs[1], *param)
	case "lessthan":
		pred, err = ppj.LessThanJoin(relA.Schema, attrs[0], relB.Schema, attrs[1])
	default:
		err = fmt.Errorf("unknown predicate %q", *predK)
	}
	if err != nil {
		fatal(err)
	}

	if *agg != "" {
		runAggregate(relA, relB, pred, *agg, int64(*mem))
		return
	}

	eng, err := ppj.NewEngine(ppj.EngineConfig{Memory: *mem})
	if err != nil {
		fatal(err)
	}
	tabA, err := eng.Load("A", relA)
	if err != nil {
		fatal(err)
	}
	tabB, err := eng.Load("B", relB)
	if err != nil {
		fatal(err)
	}

	n := int64(ppj.MaxMatches(relA, relB, pred))
	if n == 0 {
		n = 1
	}
	res, err := eng.Join(ppj.Algorithm(*alg), []ppj.TableRef{tabA, tabB}, ppj.Pairwise(pred),
		ppj.JoinOptions{N: n, Pred2: pred, Epsilon: *eps})
	if err != nil {
		fatal(err)
	}
	rows, err := eng.Decode(res)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("# %s, predicate %s, %d x %d rows -> %d results\n",
		ppj.Algorithm(*alg), pred, relA.Len(), relB.Len(), rows.Len())
	printCSV(rows, *maxRows)
	if *stats {
		st := res.Stats
		fmt.Printf("# transfers=%d gets=%d puts=%d comparisons=%d predicate-evals=%d host-accesses=%d\n",
			st.Transfers(), st.Gets, st.Puts, st.Comparisons, st.PredEvals,
			eng.Host().Trace().Count())
	}
}

// runAggregate computes a statistic over the join without materialising it.
func runAggregate(relA, relB *ppj.Relation, pred ppj.Predicate, spec string, mem int64) {
	kind, attr := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		kind, attr = spec[:i], spec[i+1:]
	}
	kinds := map[string]ppj.AggKind{
		"count": ppj.AggCount, "sum": ppj.AggSum, "min": ppj.AggMin,
		"max": ppj.AggMax, "avg": ppj.AggAvg,
	}
	k, ok := kinds[kind]
	if !ok {
		fatal(fmt.Errorf("unknown aggregate %q", kind))
	}
	res, plan, err := ppj.RunAggregateQuery(ppj.Query{
		Predicate: pred,
		Aggregate: &ppj.AggSpec{Kind: k, Table: 0, Attr: attr},
	}, []*ppj.Relation{relA, relB}, mem, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# %s\n", plan)
	if !res.Valid {
		fmt.Printf("%s = (empty join)\n", k)
		return
	}
	fmt.Printf("%s = %g  (count %d)\n", k, res.Value, res.Count)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppjoin:", err)
	os.Exit(1)
}

// loadInputs reads the two CSVs, or synthesises demo data.
func loadInputs(fileA, fileB string) (*ppj.Relation, *ppj.Relation, error) {
	if fileA == "" || fileB == "" {
		relA := ppj.GenKeyed(ppj.NewRand(1), 12, 6)
		relB := ppj.GenKeyed(ppj.NewRand(2), 16, 6)
		return relA, relB, nil
	}
	relA, err := loadCSV(fileA)
	if err != nil {
		return nil, nil, err
	}
	relB, err := loadCSV(fileB)
	if err != nil {
		return nil, nil, err
	}
	return relA, relB, nil
}

// loadCSV reads one relation through the library's schema-inferring CSV
// importer.
func loadCSV(path string) (*ppj.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rel, err := ppj.ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rel, nil
}

// printCSV renders the result relation, truncated to maxRows.
func printCSV(rel *ppj.Relation, maxRows int) {
	toShow := rel
	truncated := 0
	if maxRows > 0 && rel.Len() > maxRows {
		toShow = ppj.NewRelation(rel.Schema)
		toShow.Rows = rel.Rows[:maxRows]
		truncated = rel.Len() - maxRows
	}
	if err := ppj.WriteCSV(os.Stdout, toShow); err != nil {
		fatal(err)
	}
	if truncated > 0 {
		fmt.Printf("# ... %d more rows\n", truncated)
	}
}
