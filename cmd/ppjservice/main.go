// Command ppjservice demonstrates the paper's secure network service over
// real TCP connections on localhost: a service provider (host + attested
// coprocessor), two data owners, and a result recipient, all bound by a
// co-signed digital contract (§3.2, §3.3.3).
//
// Usage:
//
//	ppjservice [-alg alg5] [-addr 127.0.0.1:0] [-rows 20]
//
// The process plays all four parties (each over its own TCP connection) so
// the demo is self-contained; the client and service code paths are exactly
// the library's, and would run unchanged across machines.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"ppj/internal/relation"
	"ppj/internal/service"
)

func main() {
	var (
		alg  = flag.String("alg", "alg5", "contracted algorithm: alg1..alg6")
		addr = flag.String("addr", "127.0.0.1:0", "listen address")
		rows = flag.Int("rows", 20, "rows per provider")
	)
	flag.Parse()

	// Identities.
	pubA, privA, err := service.NewIdentity()
	check(err)
	pubB, privB, err := service.NewIdentity()
	check(err)
	pubC, privC, err := service.NewIdentity()
	check(err)

	// The digital contract, co-signed by the data owners.
	contract := &service.Contract{
		ID: "demo-contract-42",
		Parties: []service.Party{
			{Name: "airline", Identity: pubA, Role: service.RoleProvider},
			{Name: "agency", Identity: pubB, Role: service.RoleProvider},
			{Name: "analyst", Identity: pubC, Role: service.RoleRecipient},
		},
		Predicate: service.PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"},
		Algorithm: *alg,
		Epsilon:   1e-10,
	}
	contract.Sign(0, privA)
	contract.Sign(1, privB)

	svc, err := service.NewService(contract, 64, 0)
	check(err)
	fmt.Printf("service provider up: device key %x..., software stack attested as:\n",
		svc.Device.DeviceKey()[:8])
	for _, img := range service.Images() {
		d := img.Digest()
		fmt.Printf("  %-9s %-16s %x...\n", img.Layer, img.Name, d[:8])
	}

	ln, err := net.Listen("tcp", *addr)
	check(err)
	defer ln.Close()
	fmt.Printf("listening on %s\n\n", ln.Addr())

	// Accept one connection per party; the hello message names the party.
	conns := make(map[string]io.ReadWriter)
	var mu sync.Mutex
	accepted := make(chan struct{}, 3)
	go func() {
		for i := 0; i < 3; i++ {
			c, err := ln.Accept()
			check(err)
			mu.Lock()
			conns[fmt.Sprintf("conn%d", i)] = c
			mu.Unlock()
			accepted <- struct{}{}
		}
	}()

	relA := relation.GenKeyed(relation.NewRand(1), *rows, 10)
	relB := relation.GenKeyed(relation.NewRand(2), *rows+5, 10)

	client := func(name string, priv []byte) *service.Client {
		return &service.Client{
			Name:      name,
			Identity:  priv,
			DeviceKey: svc.Device.DeviceKey(),
			Expected:  service.ExpectedStack(),
		}
	}

	var wg sync.WaitGroup
	var result *relation.Relation
	wg.Add(3)
	dial := func() net.Conn {
		c, err := net.Dial("tcp", ln.Addr().String())
		check(err)
		return c
	}
	go func() {
		defer wg.Done()
		cs, err := client("airline", privA).Connect(dial(), service.RoleProvider)
		check(err)
		check(cs.SubmitRelation(contract.ID, relA))
		fmt.Println("airline: attested the device and uploaded its manifest (encrypted)")
	}()
	go func() {
		defer wg.Done()
		cs, err := client("agency", privB).Connect(dial(), service.RoleProvider)
		check(err)
		check(cs.SubmitRelation(contract.ID, relB))
		fmt.Println("agency: attested the device and uploaded its watch list (encrypted)")
	}()
	go func() {
		defer wg.Done()
		cs, err := client("analyst", privC).Connect(dial(), service.RoleRecipient)
		check(err)
		result, err = cs.ReceiveResult()
		check(err)
	}()

	// Route the accepted connections into the service. Party names are
	// resolved by the hello message, so the placeholder keys are fine.
	for i := 0; i < 3; i++ {
		<-accepted
	}
	mu.Lock()
	cc := conns
	mu.Unlock()
	check(svc.Execute(cc))
	wg.Wait()

	eq, _ := relation.NewEqui(relA.Schema, "key", relB.Schema, "key")
	want := relation.ReferenceJoin(relA, relB, eq)
	fmt.Printf("\nanalyst received %d join rows over TCP (reference: %d) using %s\n",
		result.Len(), want.Len(), *alg)
	for i, row := range result.Rows {
		if i >= 5 {
			fmt.Printf("  ... %d more\n", result.Len()-5)
			break
		}
		fmt.Printf("  key=%d  airline.payload=%d  agency.payload=%d\n", row[0].I, row[1].I, row[3].I)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
