// Command ppjservice demonstrates the serving layer over real TCP
// connections on localhost: a fleet of simulated hosts (each a full join
// server with its own attested device and bounded worker pool of simulated
// coprocessors) behind one shard router, and N concurrent client groups —
// each a pair of data owners plus a result recipient — all driving one
// listener. Contracts are placed on shards by consistent hashing on the
// contract ID; sessions are routed to the shard that admitted their
// contract, and the fleet-wide admin metrics snapshot (per-shard plus
// aggregate) is printed at the end.
//
// Usage:
//
//	ppjservice [-addr 127.0.0.1:0] [-rows 20] [-shards 1] [-workers 2]
//	           [-queue 8] [-timeout 30s] [-data-dir DIR] [-wal]
//
// The process plays every party (each over its own TCP connection) so the
// demo is self-contained; the client and server code paths are exactly the
// library's, and would run unchanged across machines.
//
// With -data-dir each shard keeps a write-ahead job store under
// DIR/shard-<i>/: rerunning the demo against the same directory first
// replays every shard's log, printing the recovered job table (a crash
// mid-run leaves Uploading or Running jobs, which recovery fails
// deterministically with server.ErrInterrupted — per shard, so one torn
// log never touches another shard's jobs). Contract IDs gain a per-run
// nonce in this mode because recovered registrations are durable and
// contract IDs are single-use. -wal asserts the store is actually
// requested: it is rejected without -data-dir instead of silently running
// in memory.
package main

import (
	"context"
	"crypto/ed25519"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"ppj/internal/fleet"
	"ppj/internal/relation"
	"ppj/internal/server"
	"ppj/internal/service"
)

// contractSpec describes one tenant of the demo fleet.
type contractSpec struct {
	id        string
	algorithm string
	parties   [3]string // two providers, one recipient
	aggregate service.AggregateSpec
}

func main() {
	o, err := parseFlags(flag.NewFlagSet("ppjservice", flag.ExitOnError), os.Args[1:])
	check(err)

	specs := []contractSpec{
		{id: "watchlist-equijoin", algorithm: "alg3", parties: [3]string{"airline", "agency", "analyst"}},
		{id: "epidemiology-exact", algorithm: "alg5", parties: [3]string{"hospital-a", "hospital-b", "registry"}},
		{id: "genomics-auto", algorithm: "auto", parties: [3]string{"genebank", "lab", "study"}},
		{id: "census-count", algorithm: "aggregate", parties: [3]string{"bureau", "irs", "economist"},
			aggregate: service.AggregateSpec{Kind: "count"}},
	}

	rt, err := fleet.New(fleet.Config{Config: server.Config{
		Shards:            o.shards,
		Workers:           o.workers,
		QueueDepth:        o.queue,
		Memory:            64,
		DevicesPerJob:     o.devices,
		JobTimeout:        o.timeout,
		MaxUploadBytes:    o.maxUploadBytes,
		UploadWindow:      o.uploadWindow,
		UploadDeadline:    o.uploadDeadline,
		MaxResultBytes:    o.maxResultBytes,
		ResultTTL:         o.resultTTL,
		MaxCacheBytes:     o.maxCacheBytes,
		TenantMaxInFlight: o.tenantInFlight,
		TenantRate:        o.tenantRate,
		TenantBurst:       o.tenantBurst,
		Scheduler:         o.scheduler,
		TickEvery:         o.tick,
		AllowLegacyUpload: o.legacyUpload,
		Logf:              log.Printf,
		DataDir:           o.dataDir,
	}})
	check(err)
	fmt.Printf("join fleet up: %d shard(s), worker pool P=%d and queue depth %d each\n",
		rt.NumShards(), o.workers, o.queue)
	for i := 0; i < rt.NumShards(); i++ {
		fmt.Printf("  shard %d device key %x...\n", i, rt.Shard(i).Device().DeviceKey()[:8])
	}
	if o.dataDir != "" {
		for i := 0; i < rt.NumShards(); i++ {
			jobs := rt.Shard(i).Registry().Jobs()
			if len(jobs) == 0 {
				continue
			}
			fmt.Printf("shard %d recovered %d jobs from its WAL:\n", i, len(jobs))
			for _, j := range jobs {
				if err := j.Err(); err != nil {
					fmt.Printf("  %-36s %-10s %v\n", j.Contract().ID, j.State(), err)
				} else {
					fmt.Printf("  %-36s %s\n", j.Contract().ID, j.State())
				}
			}
		}
		// Contract IDs are single-use and recovered registrations persist,
		// so each durable run gets fresh IDs.
		nonce := time.Now().UnixNano()
		for i := range specs {
			specs[i].id = fmt.Sprintf("%s@%d", specs[i].id, nonce)
		}
	}
	fmt.Println("software stack attested as:")
	for _, img := range service.Images() {
		d := img.Digest()
		fmt.Printf("  %-9s %-16s %x...\n", img.Layer, img.Name, d[:8])
	}

	// Each tenant group: identities, a co-signed contract, input relations,
	// and — once registered — the device key of the shard that admitted it
	// (clients attest the device they will actually talk to).
	type tenant struct {
		spec       contractSpec
		contract   *service.Contract
		keys       [3]keypair
		relA, relB *relation.Relation
		job        *server.Job
		shard      int
		deviceKey  ed25519.PublicKey
	}
	tenants := make([]*tenant, len(specs))
	for i, spec := range specs {
		tn := &tenant{spec: spec}
		for k := range tn.keys {
			pub, priv, err := service.NewIdentity()
			check(err)
			tn.keys[k] = keypair{pub: pub, priv: priv}
		}
		tn.contract = &service.Contract{
			ID: spec.id,
			Parties: []service.Party{
				{Name: spec.parties[0], Identity: tn.keys[0].pub, Role: service.RoleProvider},
				{Name: spec.parties[1], Identity: tn.keys[1].pub, Role: service.RoleProvider},
				{Name: spec.parties[2], Identity: tn.keys[2].pub, Role: service.RoleRecipient},
			},
			Predicate: service.PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"},
			Algorithm: spec.algorithm,
			Epsilon:   1e-10,
			Aggregate: spec.aggregate,
		}
		tn.contract.Sign(0, tn.keys[0].priv)
		tn.contract.Sign(1, tn.keys[1].priv)
		tn.relA = relation.GenKeyed(relation.NewRand(uint64(2*i+1)), o.rows, 10)
		tn.relB = relation.GenKeyed(relation.NewRand(uint64(2*i+2)), o.rows+5, 10)
		tn.job, err = rt.Register(tn.contract)
		check(err)
		var sh *server.Server
		tn.shard, sh, err = rt.ShardFor(tn.contract.ID)
		check(err)
		tn.deviceKey = sh.Device().DeviceKey()
		tenants[i] = tn
	}
	fmt.Printf("\nregistered %d contracts across %d shard(s) on one listener\n", len(tenants), rt.NumShards())

	ln, err := net.Listen("tcp", o.addr)
	check(err)
	serveDone := make(chan error, 1)
	go func() { serveDone <- rt.Serve(ln) }()
	fmt.Printf("listening on %s\n\n", ln.Addr())

	// Drive every client group concurrently against the one listener.
	var wg sync.WaitGroup
	var outMu sync.Mutex
	for _, tn := range tenants {
		wg.Add(1)
		go func(tn *tenant) {
			defer wg.Done()
			client := func(k int, name string) *service.Client {
				return &service.Client{
					Name:      name,
					Identity:  tn.keys[k].priv,
					DeviceKey: tn.deviceKey,
					Expected:  service.ExpectedStack(),
				}
			}
			dial := func() net.Conn {
				c, err := net.Dial("tcp", ln.Addr().String())
				check(err)
				return c
			}
			var inner sync.WaitGroup
			inner.Add(2)
			for k, rel := range map[int]*relation.Relation{0: tn.relA, 1: tn.relB} {
				go func(k int, rel *relation.Relation) {
					defer inner.Done()
					conn := dial()
					defer conn.Close()
					cs, err := client(k, tn.spec.parties[k]).ConnectContract(conn, service.RoleProvider, tn.contract.ID)
					check(err)
					check(cs.SubmitRelationOpts(tn.contract.ID, rel,
						service.UploadOptions{ChunkRows: o.chunkRows}))
				}(k, rel)
			}
			conn := dial()
			defer conn.Close()
			cs, err := client(2, tn.spec.parties[2]).ConnectContract(conn, service.RoleRecipient, tn.contract.ID)
			check(err)

			eq, _ := relation.NewEqui(tn.relA.Schema, "key", tn.relB.Schema, "key")
			want := relation.ReferenceJoin(tn.relA, tn.relB, eq)
			if tn.spec.algorithm == "aggregate" {
				agg, err := cs.ReceiveAggregate()
				check(err)
				outMu.Lock()
				fmt.Printf("%-22s %-9s shard %d -> %s received COUNT = %d (reference %d)\n",
					tn.spec.id, tn.spec.algorithm, tn.shard, tn.spec.parties[2], agg.Count, want.Len())
				outMu.Unlock()
			} else {
				result, err := cs.ReceiveResult()
				check(err)
				outMu.Lock()
				fmt.Printf("%-22s %-9s shard %d -> %s received %d join rows (reference %d)\n",
					tn.spec.id, tn.spec.algorithm, tn.shard, tn.spec.parties[2], result.Len(), want.Len())
				outMu.Unlock()
			}
			inner.Wait()
		}(tn)
	}
	wg.Wait()
	for _, tn := range tenants {
		<-tn.job.Done()
		if tn.job.State() != server.StateDelivered {
			log.Fatalf("job %s ended %s: %v", tn.contract.ID, tn.job.State(), tn.job.Err())
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	check(rt.Shutdown(ctx))
	ln.Close()
	check(<-serveDone)

	snap := rt.MetricsSnapshot()
	js, err := snap.JSON()
	check(err)
	fmt.Printf("\nfleet metrics snapshot after drain:\n%s\n", js)
}

type keypair struct {
	pub  []byte
	priv []byte
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
