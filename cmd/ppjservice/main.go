// Command ppjservice demonstrates the serving layer over real TCP
// connections on localhost: one multi-tenant join server (a single attested
// device arbitrating several co-signed contracts), a bounded worker pool of
// simulated coprocessors, and N concurrent client groups — each a pair of
// data owners plus a result recipient — all driving one listener. Sessions
// are routed to their contract by the hello's contract ID; the server's
// job scheduler runs the contracts over the pool and the admin metrics
// snapshot is printed at the end.
//
// Usage:
//
//	ppjservice [-addr 127.0.0.1:0] [-rows 20] [-workers 2] [-queue 8] [-timeout 30s] [-data-dir DIR]
//
// The process plays every party (each over its own TCP connection) so the
// demo is self-contained; the client and server code paths are exactly the
// library's, and would run unchanged across machines.
//
// With -data-dir the server keeps a write-ahead job store there: rerunning
// the demo against the same directory first replays the previous run's
// log, printing the recovered job table (a crash mid-run leaves Uploading
// or Running jobs, which recovery fails deterministically with
// server.ErrInterrupted). Contract IDs gain a per-run nonce in this mode
// because recovered registrations are durable and contract IDs are
// single-use.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"ppj/internal/relation"
	"ppj/internal/server"
	"ppj/internal/service"
)

// contractSpec describes one tenant of the demo server.
type contractSpec struct {
	id        string
	algorithm string
	parties   [3]string // two providers, one recipient
	aggregate service.AggregateSpec
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:0", "listen address")
		rows    = flag.Int("rows", 20, "rows per provider")
		workers = flag.Int("workers", 2, "coprocessor worker pool size P")
		queue   = flag.Int("queue", 8, "ready-job queue depth")
		timeout = flag.Duration("timeout", 30*time.Second, "per-job deadline")
		dataDir = flag.String("data-dir", "", "write-ahead job store directory; empty keeps jobs in memory")
		devices = flag.Int("devices-per-job", 1, "coprocessors attached per job; >1 enables intra-job parallel joins")
	)
	flag.Parse()

	specs := []contractSpec{
		{id: "watchlist-equijoin", algorithm: "alg3", parties: [3]string{"airline", "agency", "analyst"}},
		{id: "epidemiology-exact", algorithm: "alg5", parties: [3]string{"hospital-a", "hospital-b", "registry"}},
		{id: "genomics-auto", algorithm: "auto", parties: [3]string{"genebank", "lab", "study"}},
		{id: "census-count", algorithm: "aggregate", parties: [3]string{"bureau", "irs", "economist"},
			aggregate: service.AggregateSpec{Kind: "count"}},
	}

	srv, err := server.New(server.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		Memory:        64,
		DevicesPerJob: *devices,
		JobTimeout:    *timeout,
		Logf:          log.Printf,
		DataDir:       *dataDir,
	})
	check(err)
	fmt.Printf("join server up: worker pool P=%d, queue depth %d, device key %x...\n",
		*workers, *queue, srv.Device().DeviceKey()[:8])
	if *dataDir != "" {
		if jobs := srv.Registry().Jobs(); len(jobs) > 0 {
			fmt.Printf("recovered %d jobs from WAL at %s:\n", len(jobs), *dataDir)
			for _, j := range jobs {
				if err := j.Err(); err != nil {
					fmt.Printf("  %-36s %-10s %v\n", j.Contract().ID, j.State(), err)
				} else {
					fmt.Printf("  %-36s %s\n", j.Contract().ID, j.State())
				}
			}
		}
		// Contract IDs are single-use and recovered registrations persist,
		// so each durable run gets fresh IDs.
		nonce := time.Now().UnixNano()
		for i := range specs {
			specs[i].id = fmt.Sprintf("%s@%d", specs[i].id, nonce)
		}
	}
	fmt.Println("software stack attested as:")
	for _, img := range service.Images() {
		d := img.Digest()
		fmt.Printf("  %-9s %-16s %x...\n", img.Layer, img.Name, d[:8])
	}

	// Each tenant group: identities, a co-signed contract, input relations.
	type tenant struct {
		spec       contractSpec
		contract   *service.Contract
		keys       [3]keypair
		relA, relB *relation.Relation
		job        *server.Job
	}
	tenants := make([]*tenant, len(specs))
	for i, spec := range specs {
		tn := &tenant{spec: spec}
		for k := range tn.keys {
			pub, priv, err := service.NewIdentity()
			check(err)
			tn.keys[k] = keypair{pub: pub, priv: priv}
		}
		tn.contract = &service.Contract{
			ID: spec.id,
			Parties: []service.Party{
				{Name: spec.parties[0], Identity: tn.keys[0].pub, Role: service.RoleProvider},
				{Name: spec.parties[1], Identity: tn.keys[1].pub, Role: service.RoleProvider},
				{Name: spec.parties[2], Identity: tn.keys[2].pub, Role: service.RoleRecipient},
			},
			Predicate: service.PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"},
			Algorithm: spec.algorithm,
			Epsilon:   1e-10,
			Aggregate: spec.aggregate,
		}
		tn.contract.Sign(0, tn.keys[0].priv)
		tn.contract.Sign(1, tn.keys[1].priv)
		tn.relA = relation.GenKeyed(relation.NewRand(uint64(2*i+1)), *rows, 10)
		tn.relB = relation.GenKeyed(relation.NewRand(uint64(2*i+2)), *rows+5, 10)
		tn.job, err = srv.Register(tn.contract)
		check(err)
		tenants[i] = tn
	}
	fmt.Printf("\nregistered %d contracts on one listener\n", len(tenants))

	ln, err := net.Listen("tcp", *addr)
	check(err)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	fmt.Printf("listening on %s\n\n", ln.Addr())

	// Drive every client group concurrently against the one listener.
	var wg sync.WaitGroup
	var outMu sync.Mutex
	for _, tn := range tenants {
		wg.Add(1)
		go func(tn *tenant) {
			defer wg.Done()
			client := func(k int, name string) *service.Client {
				return &service.Client{
					Name:      name,
					Identity:  tn.keys[k].priv,
					DeviceKey: srv.Device().DeviceKey(),
					Expected:  service.ExpectedStack(),
				}
			}
			dial := func() net.Conn {
				c, err := net.Dial("tcp", ln.Addr().String())
				check(err)
				return c
			}
			var inner sync.WaitGroup
			inner.Add(2)
			for k, rel := range map[int]*relation.Relation{0: tn.relA, 1: tn.relB} {
				go func(k int, rel *relation.Relation) {
					defer inner.Done()
					conn := dial()
					defer conn.Close()
					cs, err := client(k, tn.spec.parties[k]).ConnectContract(conn, service.RoleProvider, tn.contract.ID)
					check(err)
					check(cs.SubmitRelation(tn.contract.ID, rel))
				}(k, rel)
			}
			conn := dial()
			defer conn.Close()
			cs, err := client(2, tn.spec.parties[2]).ConnectContract(conn, service.RoleRecipient, tn.contract.ID)
			check(err)

			eq, _ := relation.NewEqui(tn.relA.Schema, "key", tn.relB.Schema, "key")
			want := relation.ReferenceJoin(tn.relA, tn.relB, eq)
			outMu.Lock()
			if tn.spec.algorithm == "aggregate" {
				outMu.Unlock()
				agg, err := cs.ReceiveAggregate()
				check(err)
				outMu.Lock()
				fmt.Printf("%-22s %-9s -> %s received COUNT = %d (reference %d)\n",
					tn.spec.id, tn.spec.algorithm, tn.spec.parties[2], agg.Count, want.Len())
			} else {
				outMu.Unlock()
				result, err := cs.ReceiveResult()
				check(err)
				outMu.Lock()
				fmt.Printf("%-22s %-9s -> %s received %d join rows (reference %d)\n",
					tn.spec.id, tn.spec.algorithm, tn.spec.parties[2], result.Len(), want.Len())
			}
			outMu.Unlock()
			inner.Wait()
		}(tn)
	}
	wg.Wait()
	for _, tn := range tenants {
		<-tn.job.Done()
		if tn.job.State() != server.StateDelivered {
			log.Fatalf("job %s ended %s: %v", tn.contract.ID, tn.job.State(), tn.job.Err())
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	check(srv.Shutdown(ctx))
	ln.Close()
	check(<-serveDone)

	snap := srv.MetricsSnapshot()
	js, err := snap.JSON()
	check(err)
	fmt.Printf("\nadmin metrics snapshot after drain:\n%s\n", js)
}

type keypair struct {
	pub  []byte
	priv []byte
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
