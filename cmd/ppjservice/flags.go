package main

import (
	"flag"
	"fmt"
	"time"

	"ppj/internal/server"
)

// options is the parsed and validated command line.
type options struct {
	addr           string
	rows           int
	workers        int
	queue          int
	timeout        time.Duration
	dataDir        string
	devices        int
	shards         int
	wal            bool
	maxUploadBytes int64
	uploadWindow   int
	uploadDeadline time.Duration
	chunkRows      int
	maxResultBytes int64
	resultTTL      time.Duration
	legacyUpload   bool
	maxCacheBytes  int64
	tenantInFlight int
	tenantRate     float64
	tenantBurst    float64
	scheduler      string
	tick           time.Duration
}

// parseFlags binds the flag set, parses args, and validates the result.
// Split from main so the validation rules are unit-testable without
// exec'ing the binary.
func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.StringVar(&o.addr, "addr", "127.0.0.1:0", "listen address")
	fs.IntVar(&o.rows, "rows", 20, "rows per provider")
	fs.IntVar(&o.workers, "workers", 2, "coprocessor worker pool size P per shard")
	fs.IntVar(&o.queue, "queue", 8, "ready-job queue depth per shard")
	fs.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-job deadline")
	fs.StringVar(&o.dataDir, "data-dir", "", "write-ahead job store root; empty keeps jobs in memory")
	fs.IntVar(&o.devices, "devices-per-job", 1, "coprocessors attached per job; >1 enables intra-job parallel joins")
	fs.IntVar(&o.shards, "shards", 1, "simulated hosts in the fleet; contracts are routed by consistent hashing")
	fs.BoolVar(&o.wal, "wal", false, "require the durable write-ahead job store (needs -data-dir)")
	fs.Int64Var(&o.maxUploadBytes, "max-upload-bytes", 0, "sealed-byte budget per provider upload; 0 is unbounded")
	fs.IntVar(&o.uploadWindow, "upload-window", 0, "chunk credit window W per upload stream; 0 selects the default")
	fs.DurationVar(&o.uploadDeadline, "upload-deadline", 0, "per-upload wall-clock bound; a stalled stream fails the job (0 leaves only -timeout)")
	fs.IntVar(&o.chunkRows, "chunk-rows", 0, "rows per upload chunk sent by the demo clients; 0 selects the default")
	fs.Int64Var(&o.maxResultBytes, "max-result-bytes", 0, "byte cap of the durable result store per shard; LRU-evicts over it (0 is unbounded)")
	fs.DurationVar(&o.resultTTL, "result-ttl", 0, "stored results unfetched for this long are evicted; 0 keeps them forever")
	fs.BoolVar(&o.legacyUpload, "legacy-upload", false, "re-enable the deprecated one-shot legacy upload protocol")
	fs.Int64Var(&o.maxCacheBytes, "max-cache-bytes", 0, "byte cap of the sorted-relation cache per shard (0 is unbounded)")
	fs.IntVar(&o.tenantInFlight, "tenant-max-inflight", 0, "per-tenant cap on unsettled jobs, fleet-wide (0 is unlimited)")
	fs.Float64Var(&o.tenantRate, "tenant-rate", 0, "per-tenant submission rate in jobs/second (0 disables rate limiting)")
	fs.Float64Var(&o.tenantBurst, "tenant-burst", 0, "token-bucket capacity for -tenant-rate (floored at 1)")
	fs.StringVar(&o.scheduler, "scheduler", "", "ready-queue policy per shard: fair (weighted per-tenant round-robin, the default) or fifo (the historical global queue)")
	fs.DurationVar(&o.tick, "tick", 0, "recurring-contract tick interval per shard; 0 disables the tick loop (schedules only fire via explicit ticks)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// validate rejects configurations the serving layer would otherwise accept
// silently or fail on late: a fleet needs at least one shard, every job at
// least one device, asking for durability without saying where the WAL
// lives is a misconfiguration rather than an in-memory fallback, and the
// ingest limits must not be negative (zero means "default"/"unbounded";
// below that there is no meaning to ask for).
func (o *options) validate() error {
	if o.shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", o.shards)
	}
	if o.devices < 1 {
		return fmt.Errorf("-devices-per-job must be at least 1, got %d", o.devices)
	}
	if o.wal && o.dataDir == "" {
		return fmt.Errorf("-wal requires -data-dir: a durable job store needs a directory to live in")
	}
	if o.maxUploadBytes < 0 {
		return fmt.Errorf("-max-upload-bytes must not be negative, got %d", o.maxUploadBytes)
	}
	if o.uploadWindow < 0 {
		return fmt.Errorf("-upload-window must not be negative, got %d", o.uploadWindow)
	}
	if o.uploadDeadline < 0 {
		return fmt.Errorf("-upload-deadline must not be negative, got %v", o.uploadDeadline)
	}
	if o.chunkRows < 0 {
		return fmt.Errorf("-chunk-rows must not be negative, got %d", o.chunkRows)
	}
	if o.maxResultBytes < 0 {
		return fmt.Errorf("-max-result-bytes must not be negative, got %d", o.maxResultBytes)
	}
	if o.resultTTL < 0 {
		return fmt.Errorf("-result-ttl must not be negative, got %v", o.resultTTL)
	}
	if o.maxCacheBytes < 0 {
		return fmt.Errorf("-max-cache-bytes must not be negative, got %d", o.maxCacheBytes)
	}
	if o.tenantInFlight < 0 {
		return fmt.Errorf("-tenant-max-inflight must not be negative, got %d", o.tenantInFlight)
	}
	if o.tenantRate < 0 {
		return fmt.Errorf("-tenant-rate must not be negative, got %v", o.tenantRate)
	}
	if o.tenantBurst < 0 {
		return fmt.Errorf("-tenant-burst must not be negative, got %v", o.tenantBurst)
	}
	if o.tenantBurst > 0 && o.tenantRate == 0 {
		return fmt.Errorf("-tenant-burst needs -tenant-rate: a bucket with no refill admits nothing after the burst")
	}
	switch o.scheduler {
	case "", server.PolicyFair, server.PolicyFIFO:
	default:
		return fmt.Errorf("-scheduler must be %q or %q, got %q", server.PolicyFair, server.PolicyFIFO, o.scheduler)
	}
	if o.tick < 0 {
		return fmt.Errorf("-tick must not be negative, got %v", o.tick)
	}
	return nil
}
