package main

import (
	"flag"
	"fmt"
	"time"
)

// options is the parsed and validated command line.
type options struct {
	addr    string
	rows    int
	workers int
	queue   int
	timeout time.Duration
	dataDir string
	devices int
	shards  int
	wal     bool
}

// parseFlags binds the flag set, parses args, and validates the result.
// Split from main so the validation rules are unit-testable without
// exec'ing the binary.
func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.StringVar(&o.addr, "addr", "127.0.0.1:0", "listen address")
	fs.IntVar(&o.rows, "rows", 20, "rows per provider")
	fs.IntVar(&o.workers, "workers", 2, "coprocessor worker pool size P per shard")
	fs.IntVar(&o.queue, "queue", 8, "ready-job queue depth per shard")
	fs.DurationVar(&o.timeout, "timeout", 30*time.Second, "per-job deadline")
	fs.StringVar(&o.dataDir, "data-dir", "", "write-ahead job store root; empty keeps jobs in memory")
	fs.IntVar(&o.devices, "devices-per-job", 1, "coprocessors attached per job; >1 enables intra-job parallel joins")
	fs.IntVar(&o.shards, "shards", 1, "simulated hosts in the fleet; contracts are routed by consistent hashing")
	fs.BoolVar(&o.wal, "wal", false, "require the durable write-ahead job store (needs -data-dir)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// validate rejects configurations the serving layer would otherwise accept
// silently or fail on late: a fleet needs at least one shard, every job at
// least one device, and asking for durability without saying where the WAL
// lives is a misconfiguration, not an in-memory fallback.
func (o *options) validate() error {
	if o.shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", o.shards)
	}
	if o.devices < 1 {
		return fmt.Errorf("-devices-per-job must be at least 1, got %d", o.devices)
	}
	if o.wal && o.dataDir == "" {
		return fmt.Errorf("-wal requires -data-dir: a durable job store needs a directory to live in")
	}
	return nil
}
