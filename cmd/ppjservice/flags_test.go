package main

import (
	"flag"
	"strings"
	"testing"
	"time"
)

func parse(t *testing.T, args ...string) (*options, error) {
	t.Helper()
	fs := flag.NewFlagSet("ppjservice", flag.ContinueOnError)
	fs.SetOutput(discard{})
	return parseFlags(fs, args)
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parse(t)
	if err != nil {
		t.Fatal(err)
	}
	if o.shards != 1 || o.devices != 1 || o.wal {
		t.Fatalf("defaults: %+v", o)
	}
	if o.workers != 2 || o.queue != 8 || o.timeout != 30*time.Second {
		t.Fatalf("defaults: %+v", o)
	}
	if o.maxUploadBytes != 0 || o.uploadWindow != 0 || o.uploadDeadline != 0 || o.chunkRows != 0 {
		t.Fatalf("upload defaults: %+v", o)
	}
	if o.scheduler != "" || o.tick != 0 {
		t.Fatalf("scheduler defaults: %+v", o)
	}
}

func TestParseFlagsScheduler(t *testing.T) {
	for _, policy := range []string{"fair", "fifo"} {
		o, err := parse(t, "-scheduler", policy, "-tick", "5s")
		if err != nil {
			t.Fatal(err)
		}
		if o.scheduler != policy || o.tick != 5*time.Second {
			t.Fatalf("parsed: %+v", o)
		}
	}
}

func TestParseFlagsUploadLimits(t *testing.T) {
	o, err := parse(t, "-max-upload-bytes", "1048576", "-upload-window", "4",
		"-upload-deadline", "30s", "-chunk-rows", "128")
	if err != nil {
		t.Fatal(err)
	}
	if o.maxUploadBytes != 1<<20 || o.uploadWindow != 4 || o.uploadDeadline != 30*time.Second || o.chunkRows != 128 {
		t.Fatalf("parsed: %+v", o)
	}
}

func TestParseFlagsValid(t *testing.T) {
	o, err := parse(t, "-shards", "3", "-devices-per-job", "2", "-wal", "-data-dir", "/tmp/x")
	if err != nil {
		t.Fatal(err)
	}
	if o.shards != 3 || o.devices != 2 || !o.wal || o.dataDir != "/tmp/x" {
		t.Fatalf("parsed: %+v", o)
	}
}

func TestParseFlagsRejects(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero shards", []string{"-shards", "0"}, "-shards"},
		{"negative shards", []string{"-shards", "-2"}, "-shards"},
		{"zero devices", []string{"-devices-per-job", "0"}, "-devices-per-job"},
		{"negative devices", []string{"-devices-per-job", "-1"}, "-devices-per-job"},
		{"wal without data-dir", []string{"-wal"}, "-wal requires -data-dir"},
		{"wal with shards without data-dir", []string{"-shards", "2", "-wal"}, "-wal requires -data-dir"},
		{"negative upload budget", []string{"-max-upload-bytes", "-1"}, "-max-upload-bytes"},
		{"negative upload window", []string{"-upload-window", "-3"}, "-upload-window"},
		{"negative upload deadline", []string{"-upload-deadline", "-2s"}, "-upload-deadline"},
		{"negative chunk rows", []string{"-chunk-rows", "-64"}, "-chunk-rows"},
		{"unknown scheduler", []string{"-scheduler", "lottery"}, "-scheduler"},
		{"negative tick", []string{"-tick", "-1s"}, "-tick"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parse(t, tc.args...); err == nil {
				t.Fatalf("args %v accepted, want rejection", tc.args)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("args %v: error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}
