package main

import (
	"ppj/internal/costmodel"
	"ppj/internal/oblivious"
)

// runAblation quantifies the design choices DESIGN.md calls out:
//
//  1. sorting network — the thesis builds on bitonic sort; Batcher's
//     odd-even merge network is oblivious too and needs fewer comparators,
//     bounding what a drop-in replacement would save;
//  2. the filter swap size Δ — the §5.2.2 cost is unimodal in Δ, and both
//     the paper's fixed-point Δ* and this repo's exact argmin sit at its
//     bottom;
//  3. Algorithm 6's segment size n* — smaller segments waste flushes,
//     larger ones break the ε guarantee; n* sits exactly on the frontier.
func runAblation(out *output) error {
	// --- 1. Sorting network ---
	out.printf("1. sorting network: transfers to obliviously sort n cells\n\n")
	out.printf("%-10s %14s %14s %10s\n", "n", "bitonic", "odd-even", "saving")
	out.csvRow("section", "x", "bitonic", "oddeven")
	for _, n := range []int64{1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		bi := oblivious.SortTransfers(n)
		oe := oblivious.SortOddEvenTransfers(n)
		out.printf("%-10d %14d %14d %9.1f%%\n", n, bi, oe, 100*(1-float64(oe)/float64(bi)))
		out.csvRow("network", n, bi, oe)
	}
	out.printf("(the thesis's formulas assume bitonic; an odd-even filter would cut the\n")
	out.printf("Algorithm 4/6 sort terms by the same fraction)\n\n")

	// --- 2. Filter swap size ---
	const omega, mu = 640_000, 6_400
	chosen := oblivious.ChooseDelta(omega, mu)
	out.printf("2. decoy-filter swap size, ω=%d μ=%d (power-of-two buffer sizes)\n\n", omega, mu)
	out.printf("%-12s %16s %10s\n", "delta", "transfers", "")
	for bufSize := oblivious.NextPow2(mu + 1); bufSize <= oblivious.NextPow2(omega); bufSize *= 2 {
		delta := bufSize - mu
		cost := oblivious.FilterTransfers(omega, mu, delta)
		marker := ""
		if delta == chosen {
			marker = "<- chosen"
		}
		out.printf("%-12d %16d %10s\n", delta, cost, marker)
		out.csvRow("filter", delta, cost, "")
	}
	paperDelta := costmodel.OptimalDeltaPaper(mu)
	exactDelta := costmodel.OptimalDeltaExact(omega, mu)
	out.printf("paper fixed-point Δ* = %.0f, exact continuous argmin = %d\n\n", paperDelta, exactDelta)

	// --- 3. Algorithm 6 segment size ---
	const l, s, m = 640_000, 6_400, 64
	const eps = 1e-20
	nStar := costmodel.OptimalSegment(l, s, m, eps)
	out.printf("3. Algorithm 6 segment size, L=%d S=%d M=%d, eps=%.0e (n* = %d)\n\n", l, s, m, eps, nStar)
	out.printf("%-10s %16s %14s %12s\n", "n", "cost (tuples)", "blemish bound", "within eps")
	for _, frac := range []struct {
		label string
		n     int64
	}{
		{"n*/4", nStar / 4}, {"n*/2", nStar / 2}, {"n*", nStar},
		{"2n*", nStar * 2}, {"4n*", nStar * 4},
	} {
		n := frac.n
		if n < 1 {
			n = 1
		}
		segments := (l + n - 1) / n
		omega6 := segments * m
		cost := 2*float64(l) + float64(omega6) + costmodel.FilterCost(omega6, s)
		bound := costmodel.BlemishBound(l, s, m, n)
		ok := "yes"
		if bound > eps {
			ok = "NO"
		}
		out.printf("%-10s %16.0f %14.2e %12s\n", frac.label, cost, bound, ok)
		out.csvRow("segment", n, cost, bound)
	}
	out.printf("(n* is the largest segment size still inside the privacy budget: cheaper\n")
	out.printf("points to its right all violate eps)\n")
	return nil
}
