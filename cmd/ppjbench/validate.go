package main

import (
	"fmt"

	"ppj/internal/core"
	"ppj/internal/costmodel"
	"ppj/internal/relation"
	"ppj/internal/sim"
	"ppj/internal/smc"
)

// runValidate executes every algorithm in the coprocessor simulator at
// reduced scale and compares the measured transfer counters against (a) the
// implementation's exact count functions and (b) the paper's closed forms.
// The implementation counts are required to match exactly; the paper's
// forms are approximations (power-of-two bitonic sizes, logical D reads),
// so only their ratio is reported.
func runValidate(out *output) error {
	out.csvRow("experiment", "measured", "exact_model", "paper_formula", "paper_ratio")

	// --- Chapter 4, |A|=32, |B|=64, N=4, M=2 ---
	const nA, nB, n, mem = 32, 64, 4, 2
	relA, relB := relation.GenWithMatchBound(relation.NewRand(77), nA, nB, n)
	eq, err := relation.NewEqui(relA.Schema, "key", relB.Schema, "key")
	if err != nil {
		return err
	}
	out.printf("Chapter 4 algorithms, |A|=%d |B|=%d N=%d M=%d\n", nA, nB, n, mem)
	out.printf("%-26s %12s %12s %14s %8s\n", "", "measured", "exact model", "paper formula", "ratio")

	type ch4run struct {
		name  string
		run   func(t *sim.Coprocessor, a, b sim.Table) (core.Result, error)
		exact int64
		paper float64
	}
	runs := []ch4run{
		{"Algorithm 1", func(t *sim.Coprocessor, a, b sim.Table) (core.Result, error) {
			return core.Join1(t, a, b, eq, n)
		}, core.Join1Transfers(nA, nB, n), costmodel.Alg1Cost(nA, nB, n)},
		{"Algorithm 2", func(t *sim.Coprocessor, a, b sim.Table) (core.Result, error) {
			return core.Join2(t, a, b, eq, n, 0)
		}, core.Join2Transfers(nA, nB, n, mem, 0), costmodel.Alg2Cost(nA, nB, n, mem)},
		{"Algorithm 3", func(t *sim.Coprocessor, a, b sim.Table) (core.Result, error) {
			return core.Join3(t, a, b, eq, n, false)
		}, core.Join3Transfers(nA, nB, n, false), costmodel.Alg3Cost(nA, nB, n, false)},
	}
	for _, r := range runs {
		h := sim.NewHost(0)
		cop, err := sim.NewCoprocessor(h, sim.Config{Memory: mem, Sealer: sim.PlainSealer{}, Seed: 5})
		if err != nil {
			return err
		}
		tabA, err := sim.LoadTable(h, cop.Sealer(), "A", relA)
		if err != nil {
			return err
		}
		tabB, err := sim.LoadTable(h, cop.Sealer(), "B", relB)
		if err != nil {
			return err
		}
		res, err := r.run(cop, tabA, tabB)
		if err != nil {
			return err
		}
		meas := int64(res.Stats.Transfers())
		status := "OK"
		if meas != r.exact {
			status = "MISMATCH"
		}
		out.printf("%-26s %12d %12d %14.0f %8.2f  %s\n",
			r.name, meas, r.exact, r.paper, float64(meas)/r.paper, status)
		out.csvRow(r.name, meas, r.exact, r.paper, float64(meas)/r.paper)
		if meas != r.exact {
			return fmt.Errorf("%s: measured %d != exact model %d", r.name, meas, r.exact)
		}
	}

	// --- Chapter 5, scaled setting: |X1|=|X2|=80 (L=6400), S=64 ---
	const x, s5 = 80, 64
	l := int64(x * x)
	relX, relY := genJoinSizedBench(101, x, x, s5)
	pred := relation.Pairwise(mustEqui(relX, relY))
	out.printf("\nChapter 5 algorithms, L=%d S=%d (scaled setting)\n", l, s5)
	out.printf("%-26s %12s %12s %14s %8s\n", "", "measured", "exact model", "paper formula", "ratio")

	for _, mem5 := range []int{8, 32} {
		for _, name := range []string{"Algorithm 4", "Algorithm 5", "Algorithm 6"} {
			if name == "Algorithm 4" && mem5 != 8 {
				continue // Algorithm 4 ignores memory
			}
			h := sim.NewHost(0)
			cop, err := sim.NewCoprocessor(h, sim.Config{Memory: mem5, Sealer: sim.PlainSealer{}, Seed: 5})
			if err != nil {
				return err
			}
			tabX, err := sim.LoadTable(h, cop.Sealer(), "X1", relX)
			if err != nil {
				return err
			}
			tabY, err := sim.LoadTable(h, cop.Sealer(), "X2", relY)
			if err != nil {
				return err
			}
			tabs := []sim.Table{tabX, tabY}
			var meas, exact int64
			var paper float64
			var exactHolds bool
			label := fmt.Sprintf("%s (M=%d)", name, mem5)
			switch name {
			case "Algorithm 4":
				res, err := core.Join4(cop, tabs, pred)
				if err != nil {
					return err
				}
				meas = int64(res.Stats.Transfers())
				exact = core.Join4Transfers([]int64{x, x}, s5)
				paper = costmodel.Alg4Cost(l, s5)
				exactHolds = meas == exact
				label = name
			case "Algorithm 5":
				res, err := core.Join5(cop, tabs, pred)
				if err != nil {
					return err
				}
				meas = int64(res.Stats.Transfers())
				exact = core.Join5Transfers([]int64{x, x}, s5, int64(mem5))
				paper = costmodel.Alg5Cost(l, s5, int64(mem5))
				exactHolds = meas == exact
			case "Algorithm 6":
				rep, err := core.Join6(cop, tabs, pred, 1e-10)
				if err != nil {
					return err
				}
				meas = int64(rep.Stats.Transfers())
				exact = core.Join6Transfers([]int64{x, x}, s5, int64(mem5), 1e-10)
				paper = costmodel.Alg6Cost(l, s5, int64(mem5), 1e-10).Total
				exactHolds = meas <= exact // upper bound: random-order reads
			}
			status := "OK"
			if !exactHolds {
				status = "MISMATCH"
			}
			out.printf("%-26s %12d %12d %14.0f %8.2f  %s\n",
				label, meas, exact, paper, float64(meas)/paper, status)
			out.csvRow(label, meas, exact, paper, float64(meas)/paper)
			if !exactHolds {
				return fmt.Errorf("%s: measured %d vs model %d", label, meas, exact)
			}
		}
	}
	out.printf("\nChapter 5 ratios > 1 reflect that the simulator counts the underlying\n")
	out.printf("per-table gets of D (and, for Algorithm 6, random-order reads fetch every\n")
	out.printf("table), while the paper counts one logical read per iTuple.\n")
	return nil
}

// runSMCDemo runs the executable garbled-circuit join on a toy input and
// the coprocessor join on the same input, comparing bytes moved — the
// paper's headline claim made concrete.
func runSMCDemo(out *output) error {
	aliceKeys := []uint64{3, 17, 42, 99}
	bobKeys := []uint64{17, 5, 42}
	const width = 16

	pairs, st, err := smc.PrivateEqualityJoin{Width: width}.Run(aliceKeys, bobKeys)
	if err != nil {
		return err
	}
	out.printf("inputs: %d x %d keys of %d bits\n\n", len(aliceKeys), len(bobKeys), width)
	out.printf("Yao garbled-circuit join (this repo's executable SMC baseline):\n")
	out.printf("  matches: %v\n", pairs)
	out.printf("  circuits: %d, oblivious transfers: %d\n", st.Pairs, st.OTs)
	out.printf("  bytes moved: %d (garbled tables %d, OT %d, labels %d)\n",
		st.TotalBytes, st.GarbledBytes, st.OTBytes, st.InputLabelSize)

	// Same join inside the coprocessor.
	relA := relation.NewRelation(relation.KeyedSchema())
	for i, k := range aliceKeys {
		relA.MustAppend(relation.Tuple{relation.IntValue(int64(k)), relation.IntValue(int64(i))})
	}
	relB := relation.NewRelation(relation.KeyedSchema())
	for i, k := range bobKeys {
		relB.MustAppend(relation.Tuple{relation.IntValue(int64(k)), relation.IntValue(int64(i))})
	}
	h := sim.NewHost(0)
	sealer, err := sim.NewRandomOCBSealer()
	if err != nil {
		return err
	}
	cop, err := sim.NewCoprocessor(h, sim.Config{Memory: 8, Sealer: sealer, Seed: 3})
	if err != nil {
		return err
	}
	tabA, err := sim.LoadTable(h, cop.Sealer(), "A", relA)
	if err != nil {
		return err
	}
	tabB, err := sim.LoadTable(h, cop.Sealer(), "B", relB)
	if err != nil {
		return err
	}
	res, err := core.Join5(cop, []sim.Table{tabA, tabB}, relation.Pairwise(mustEqui(relA, relB)))
	if err != nil {
		return err
	}
	tupleBytes := relA.Schema.TupleSize() + sealer.Overhead()
	copBytes := int64(res.Stats.Transfers()) * int64(tupleBytes)
	out.printf("\nAlgorithm 5 on a secure coprocessor, same input:\n")
	out.printf("  matches: %d\n", res.OutputLen)
	out.printf("  tuple transfers: %d (~%d bytes incl. OCB overhead)\n", res.Stats.Transfers(), copBytes)
	out.printf("\nSMC / coprocessor byte ratio: %.0fx\n", float64(st.TotalBytes)/float64(copBytes))
	out.csvRow("smc_bytes", st.TotalBytes)
	out.csvRow("coprocessor_bytes", copBytes)
	return nil
}

// genJoinSizedBench mirrors the core test generator: a pair of keyed
// relations with an exact join size s.
func genJoinSizedBench(seed uint64, nA, nB, s int) (*relation.Relation, *relation.Relation) {
	rng := relation.NewRand(seed)
	a := relation.NewRelation(relation.KeyedSchema())
	for i := 0; i < nA; i++ {
		a.MustAppend(relation.Tuple{relation.IntValue(int64(i)), relation.IntValue(rng.Int64N(1 << 30))})
	}
	b := relation.NewRelation(relation.KeyedSchema())
	for j := 0; j < s; j++ {
		b.MustAppend(relation.Tuple{relation.IntValue(int64(j % nA)), relation.IntValue(rng.Int64N(1 << 30))})
	}
	for j := s; j < nB; j++ {
		b.MustAppend(relation.Tuple{relation.IntValue(int64(nA) + rng.Int64N(1<<20)), relation.IntValue(rng.Int64N(1 << 30))})
	}
	return a, b
}

func mustEqui(a, b *relation.Relation) *relation.Equi {
	eq, err := relation.NewEqui(a.Schema, "key", b.Schema, "key")
	if err != nil {
		panic(err)
	}
	return eq
}

// runOnePass measures the one-pass Algorithm 6 extension (known S) against
// the standard two-pass Algorithm 6 at the scaled setting, quantifying the
// answer to the thesis's "does a one pass algorithm exist?" question.
func runOnePass(out *output) error {
	const x, s = 80, 64
	l := int64(x * x)
	relX, relY := genJoinSizedBench(211, x, x, s)
	pred := relation.Pairwise(mustEqui(relX, relY))
	out.printf("L=%d S=%d M=8, eps=1e-10\n\n", l, s)
	out.printf("%-24s %14s %14s %10s\n", "", "logical reads", "transfers", "blemish")
	out.csvRow("variant", "logical_reads", "transfers")

	run := func(onePass bool) (sim.Stats, bool, error) {
		h := sim.NewHost(0)
		cop, err := sim.NewCoprocessor(h, sim.Config{Memory: 8, Sealer: sim.PlainSealer{}, Seed: 5})
		if err != nil {
			return sim.Stats{}, false, err
		}
		tabX, err := sim.LoadTable(h, cop.Sealer(), "X1", relX)
		if err != nil {
			return sim.Stats{}, false, err
		}
		tabY, err := sim.LoadTable(h, cop.Sealer(), "X2", relY)
		if err != nil {
			return sim.Stats{}, false, err
		}
		tabs := []sim.Table{tabX, tabY}
		if onePass {
			rep, err := core.Join6OnePass(cop, tabs, pred, 1e-10, s)
			return rep.Stats, rep.Blemished, err
		}
		rep, err := core.Join6(cop, tabs, pred, 1e-10)
		return rep.Stats, rep.Blemished, err
	}
	two, b2, err := run(false)
	if err != nil {
		return err
	}
	one, b1, err := run(true)
	if err != nil {
		return err
	}
	out.printf("%-24s %14d %14d %10v\n", "Algorithm 6 (two-pass)", two.LogicalReads, two.Transfers(), b2)
	out.printf("%-24s %14d %14d %10v\n", "one-pass (S known)", one.LogicalReads, one.Transfers(), b1)
	out.csvRow("two-pass", two.LogicalReads, two.Transfers())
	out.csvRow("one-pass", one.LogicalReads, one.Transfers())
	out.printf("\nthe screening pass (exactly L = %d logical reads) disappears when S is\n", l)
	out.printf("public a priori; the random-order processing pass and filter are unchanged.\n")
	return nil
}
