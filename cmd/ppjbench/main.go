// Command ppjbench regenerates every table and figure of the paper's
// evaluation (§4.6 and §5.4) from the analytic cost model, and validates the
// model against transfer counts measured in the coprocessor simulator at
// reduced scale.
//
// Usage:
//
//	ppjbench                 # run everything
//	ppjbench fig5.2 table5.3 # run selected experiments
//	ppjbench -list           # list experiment names
//	ppjbench -csv out/       # additionally write CSV series
//
// The absolute numbers for Algorithms 4 and 6 differ from the thesis by a
// bounded factor because this implementation optimises the oblivious-filter
// swap size exactly (see DESIGN.md); every ordering, trend and crossover is
// preserved, and Algorithm 5 and the SMC reference match the paper exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// experiment names one regenerable artefact.
type experiment struct {
	name  string
	title string
	run   func(out *output) error
}

func experiments() []experiment {
	return []experiment{
		{"fig4.1", "Figure 4.1: performance relationship of Algorithms 1-3", runFig41},
		{"sfe", "§4.6.5: secure function evaluation vs Algorithm 1", runSFE},
		{"fig5.1", "Figure 5.1: Algorithm 5 cost vs memory size M", runFig51},
		{"fig5.2", "Figure 5.2: Algorithm 6 cost vs epsilon (setting 1)", runFig52},
		{"fig5.3", "Figure 5.3: Algorithm 6 cost vs memory size M", runFig53},
		{"fig5.4", "Figure 5.4: Algorithm 6 cost vs epsilon, all settings", runFig54},
		{"table5.1", "Table 5.1: privacy level vs communication cost", runTable51},
		{"table5.2", "Table 5.2: experiment settings", runTable52},
		{"table5.3", "Table 5.3: costs of SMC and Algorithms 4/5/6", runTable53},
		{"hardware", "Wall-clock estimates on IBM 4758/4764 profiles", runHardware},
		{"validate", "Measured-vs-analytic validation (simulator, reduced scale)", runValidate},
		{"smcdemo", "Executable SMC baseline vs coprocessor join (toy scale)", runSMCDemo},
		{"ablation", "Design-choice ablations: sort network, filter delta, segment size", runAblation},
		{"onepass", "One-pass Algorithm 6 (known S) vs the two-pass original", runOnePass},
	}
}

func main() {
	var (
		csvDir = flag.String("csv", "", "directory to write CSV series into")
		list   = flag.Bool("list", false, "list experiment names and exit")
	)
	flag.Parse()

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-10s %s\n", e.name, e.title)
		}
		return
	}
	selected := map[string]bool{}
	for _, arg := range flag.Args() {
		selected[arg] = true
	}
	ran := 0
	for _, e := range exps {
		if len(selected) > 0 && !selected[e.name] {
			continue
		}
		ran++
		fmt.Printf("==== %s ====\n", e.title)
		out := &output{}
		if err := e.run(out); err != nil {
			fmt.Fprintf(os.Stderr, "ppjbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Print(out.text.String())
		fmt.Println()
		if *csvDir != "" && out.csv.Len() > 0 {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "ppjbench:", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, strings.ReplaceAll(e.name, ".", "_")+".csv")
			if err := os.WriteFile(path, []byte(out.csv.String()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "ppjbench:", err)
				os.Exit(1)
			}
		}
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "ppjbench: no experiment matched; use -list")
		os.Exit(1)
	}
}

// output collects the human-readable report and an optional CSV series.
type output struct {
	text strings.Builder
	csv  strings.Builder
}

func (o *output) printf(format string, args ...any) {
	fmt.Fprintf(&o.text, format, args...)
}

func (o *output) csvRow(fields ...any) {
	parts := make([]string, len(fields))
	for i, f := range fields {
		parts[i] = fmt.Sprint(f)
	}
	o.csv.WriteString(strings.Join(parts, ","))
	o.csv.WriteByte('\n')
}
