package main

import (
	"fmt"
	"math"

	"ppj/internal/costmodel"
)

// runFig41 reproduces the Figure 4.1 performance-relationship map of §4.6:
// which Chapter 4 algorithm is cheapest as a function of α = N/|B| and
// γ = ⌈N/M⌉, for general joins and for equijoins.
func runFig41(out *output) error {
	const b = 10_000
	alphas := []float64{1.0 / b, 0.001, 0.01, 0.1, 1}
	gammas := []int64{1, 2, 3, 4, 5, 8, 16, 64}

	out.printf("|B| = %d; cell shows cheapest algorithm (general join / equijoin)\n\n", int(b))
	out.printf("%-10s", "alpha\\gam")
	for _, g := range gammas {
		out.printf("%14d", g)
	}
	out.printf("\n")
	out.csvRow("alpha", "gamma", "general_winner", "equijoin_winner", "cost1", "cost2", "cost3")
	for _, a := range alphas {
		out.printf("%-10.4g", a)
		for _, g := range gammas {
			gw := costmodel.Winner(b, a, g, false)
			ew := costmodel.Winner(b, a, g, true)
			c1, c2, c3 := costmodel.Ch4Costs(b, a, g)
			out.printf("%14s", gw+"/"+ew)
			out.csvRow(a, g, gw, ew, c1, c2, c3)
		}
		out.printf("\n")
	}
	out.printf("\npaper's claims checked:\n")
	out.printf("  γ=1: Algorithm 2 dominates (§4.6.1)          -> %v\n",
		costmodel.Winner(b, 0.001, 1, true) == "Alg2")
	alphaMin := 1.0 / b
	thr := 2 + alphaMin + 2*sq(math.Log2(2*alphaMin*b))
	out.printf("  general-join crossover at γ > %.2f (§4.6.2) -> Alg1 wins at γ=5: %v\n",
		thr, costmodel.Winner(b, alphaMin, 5, false) == "Alg1")
	out.printf("  equijoins: Alg3 beats Alg1 for all α (§4.6.3) -> %v\n",
		costmodel.Winner(b, 1, 64, true) == "Alg3")
	return nil
}

func sq(x float64) float64 { return x * x }

// runSFE reproduces the §4.6.5 comparison of Algorithm 1 with secure
// function evaluation, in bits, across α.
func runSFE(out *output) error {
	const (
		b = 10_000
		w = 64
	)
	p := costmodel.DefaultSFEParams()
	out.printf("|A| = |B| = %d, tuple width w = %d bits, k0=%d k1=%d l=n=%d\n\n",
		int(b), w, p.K0, p.K1, p.L)
	out.printf("%-10s %16s %16s %12s\n", "alpha", "SFE (bits)", "Alg1 (bits)", "SFE/Alg1")
	out.csvRow("alpha", "sfe_bits", "alg1_bits", "ratio")
	for _, alpha := range []float64{1.0 / b, 0.001, 0.01, 0.1, 1} {
		n := int64(alpha * b)
		if n < 1 {
			n = 1
		}
		sfe := costmodel.SFECostBits(p, b, n, w)
		alg1 := costmodel.Alg1CostBits(b, b, n, w)
		out.printf("%-10.4g %16.3g %16.3g %12.1f\n", alpha, sfe, alg1, sfe/alg1)
		out.csvRow(alpha, sfe, alg1, sfe/alg1)
	}
	out.printf("\n\"For low values of alpha, it can be seen that SFE can be orders of magnitude slower.\"\n")
	return nil
}

// runFig51 reproduces Figure 5.1: Algorithm 5's communication cost as a
// function of M under L = 640,000 and S = 6,400.
func runFig51(out *output) error {
	const l, s = 640_000, 6_400
	out.printf("L = %d, S = %d\n\n%-8s %16s %10s\n", l, s, "M", "cost (tuples)", "scans")
	out.csvRow("M", "cost", "scans")
	for m := int64(1); m <= s; m *= 2 {
		c := costmodel.Alg5Cost(l, s, m)
		scans := (s + m - 1) / m
		out.printf("%-8d %16.0f %10d\n", m, c, scans)
		out.csvRow(m, c, scans)
	}
	out.printf("%-8d %16.0f %10d   (minimum L + S)\n", int64(s), costmodel.Alg5Cost(l, s, s), 1)
	out.csvRow(s, costmodel.Alg5Cost(l, s, s), 1)
	return nil
}

// runFig52 reproduces Figure 5.2: Algorithm 6's cost as a function of ε
// under setting 1 (L = 640,000, S = 6,400, M = 64).
func runFig52(out *output) error {
	const l, s, m = 640_000, 6_400, 64
	out.printf("L = %d, S = %d, M = %d\n\n", l, s, m)
	out.printf("%-10s %10s %10s %16s\n", "epsilon", "n*", "segments", "cost (tuples)")
	out.csvRow("epsilon_exp", "nstar", "segments", "cost")
	for exp := -60; exp <= -5; exp += 5 {
		eps := math.Pow(10, float64(exp))
		br := costmodel.Alg6Cost(l, s, m, eps)
		out.printf("%-10.0e %10d %10d %16.0f\n", eps, br.NStar, br.Segments, br.Total)
		out.csvRow(exp, br.NStar, br.Segments, br.Total)
	}
	d1 := costmodel.Alg6Cost(l, s, m, 1e-60).Total - costmodel.Alg6Cost(l, s, m, 1e-50).Total
	d2 := costmodel.Alg6Cost(l, s, m, 1e-20).Total - costmodel.Alg6Cost(l, s, m, 1e-10).Total
	out.printf("\ncost reduction 1e-60 -> 1e-50: %.3g; 1e-20 -> 1e-10: %.3g\n", d1, d2)
	out.printf("(trading privacy is more profitable when epsilon is small, §5.3.3)\n")
	return nil
}

// runFig53 reproduces Figure 5.3: Algorithm 6's cost as a function of M
// under L = 640,000, S = 6,400, ε = 10⁻²⁰.
func runFig53(out *output) error {
	const l, s = 640_000, 6_400
	const eps = 1e-20
	out.printf("L = %d, S = %d, epsilon = %.0e\n\n", l, s, eps)
	out.printf("%-8s %10s %10s %16s\n", "M", "n*", "segments", "cost (tuples)")
	out.csvRow("M", "nstar", "segments", "cost")
	for m := int64(16); m < s; m *= 2 {
		br := costmodel.Alg6Cost(l, s, m, eps)
		out.printf("%-8d %10d %10d %16.0f\n", m, br.NStar, br.Segments, br.Total)
		out.csvRow(m, br.NStar, br.Segments, br.Total)
	}
	br := costmodel.Alg6Cost(l, s, s, eps)
	out.printf("%-8d %10d %10d %16.0f   (M >= S: minimum L + S)\n", int64(s), br.NStar, br.Segments, br.Total)
	out.csvRow(s, br.NStar, br.Segments, br.Total)
	return nil
}

// runFig54 reproduces Figure 5.4: Algorithm 6's cost (log10) versus ε under
// all three Table 5.2 settings.
func runFig54(out *output) error {
	settings := costmodel.Settings()
	out.printf("%-10s", "epsilon")
	for _, st := range settings {
		out.printf("%22s", st.Name)
	}
	out.printf("\n")
	out.csvRow("epsilon_exp", "setting1_log10", "setting2_log10", "setting3_log10")
	for exp := -60; exp <= -5; exp += 5 {
		eps := math.Pow(10, float64(exp))
		out.printf("%-10.0e", eps)
		row := []any{exp}
		for _, st := range settings {
			c := costmodel.Alg6Cost(st.L, st.S, st.M, eps).Total
			out.printf("%14.0f (10^%.2f)", c, math.Log10(c))
			row = append(row, fmt.Sprintf("%.4f", math.Log10(c)))
		}
		out.printf("\n")
		out.csvRow(row...)
	}
	out.printf("\nsetting 1 (small M) responds most to epsilon tuning (§5.4).\n")
	return nil
}
