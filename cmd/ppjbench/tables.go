package main

import (
	"ppj/internal/costmodel"
)

// runTable51 renders Table 5.1: the privacy level and communication cost of
// Algorithms 4, 5 and 6, with the closed forms instantiated at setting 1 so
// the magnitudes are visible next to the formulas.
func runTable51(out *output) error {
	st := costmodel.Settings()[0]
	eps := 1e-20
	out.printf("instantiated at %s (L=%d, S=%d, M=%d), Algorithm 6 at eps=%.0e\n\n",
		st.Name, st.L, st.S, st.M, eps)
	out.printf("%-6s %-22s %-52s %16s\n", "alg", "privacy level", "communication cost formula", "value")
	out.csvRow("alg", "privacy", "value")

	a4 := costmodel.Alg4Cost(st.L, st.S)
	out.printf("%-6s %-22s %-52s %16.3g\n", "4", "100%",
		"2L + ((L-S)/D*)(S+D*)[log2(S+D*)]^2", a4)
	out.csvRow(4, 1.0, a4)

	a5 := costmodel.Alg5Cost(st.L, st.S, st.M)
	out.printf("%-6s %-22s %-52s %16.3g\n", "5", "100%",
		"S + ceil(S/M)L", a5)
	out.csvRow(5, 1.0, a5)

	a6 := costmodel.Alg6Cost(st.L, st.S, st.M, eps)
	out.printf("%-6s %-22s %-52s %16.3g\n", "6", "(1-eps)x100%",
		"2L + ceil(L/n*)M + filter(ceil(L/n*)M, S)", a6.Total)
	out.csvRow(6, 1-eps, a6.Total)
	return nil
}

// runTable52 renders Table 5.2, the three experimental settings.
func runTable52(out *output) error {
	out.printf("%-12s %12s %12s %8s\n", "", "L", "S", "M")
	out.csvRow("setting", "L", "S", "M")
	for _, st := range costmodel.Settings() {
		out.printf("%-12s %12d %12d %8d\n", st.Name, st.L, st.S, st.M)
		out.csvRow(st.Name, st.L, st.S, st.M)
	}
	out.printf("\nsetting 2 has 4x setting 1's memory; setting 3 scales L and S by 4 at setting 2's memory.\n")
	return nil
}

// runTable53 renders Table 5.3: the communication costs of the reference
// SMC algorithm and Algorithms 4, 5 and 6 under each setting, plus the
// cost-reduction row. Paper values are printed alongside for comparison.
func runTable53(out *output) error {
	settings := costmodel.Settings()
	paper := map[string][]float64{
		"SMC":         {1.1e10, 1.1e10, 4.5e10},
		"4":           {2.3e8, 2.3e8, 1.2e9},
		"5":           {6.4e7, 1.6e7, 2.6e8},
		"6 (1e-20)":   {7.4e6, 3.4e6, 1.8e7},
		"6 (1e-10)":   {4.6e6, 2.8e6, 1.5e7},
		"reduction %": {88, 79, 93},
	}
	rows := []struct {
		name string
		calc func(st costmodel.Setting) float64
	}{
		{"SMC", func(st costmodel.Setting) float64 {
			return costmodel.SMCCost(costmodel.DefaultSMCParams(), st.L, st.S)
		}},
		{"4", func(st costmodel.Setting) float64 { return costmodel.Alg4Cost(st.L, st.S) }},
		{"5", func(st costmodel.Setting) float64 { return costmodel.Alg5Cost(st.L, st.S, st.M) }},
		{"6 (1e-20)", func(st costmodel.Setting) float64 {
			return costmodel.Alg6Cost(st.L, st.S, st.M, 1e-20).Total
		}},
		{"6 (1e-10)", func(st costmodel.Setting) float64 {
			return costmodel.Alg6Cost(st.L, st.S, st.M, 1e-10).Total
		}},
		{"reduction %", func(st costmodel.Setting) float64 {
			a5 := costmodel.Alg5Cost(st.L, st.S, st.M)
			a6 := costmodel.Alg6Cost(st.L, st.S, st.M, 1e-20).Total
			return 100 * (1 - a6/a5)
		}},
	}
	out.printf("%-14s", "")
	for _, st := range settings {
		out.printf("%24s", st.Name)
	}
	out.printf("\n")
	out.csvRow("row", "setting1", "setting1_paper", "setting2", "setting2_paper", "setting3", "setting3_paper")
	for _, r := range rows {
		out.printf("%-14s", r.name)
		csv := []any{r.name}
		for i, st := range settings {
			v := r.calc(st)
			out.printf("%12.3g (p:%7.2g)", v, paper[r.name][i])
			csv = append(csv, v, paper[r.name][i])
		}
		out.printf("\n")
		out.csvRow(csv...)
	}
	out.printf("\n(p: value printed in the thesis. Algorithm 4/6 differ by the exact-optimal\n")
	out.printf("swap size D*; Algorithm 5, SMC, and every ordering match the paper.)\n")
	return nil
}

// runHardware translates Table 5.3 into estimated wall-clock time on the
// two coprocessor generations the paper names (§1.1), addressing the
// final future-work item ("study the real performance") with a calibrated
// estimate in place of hardware we do not have.
func runHardware(out *output) error {
	const tupleBytes = 64
	out.printf("estimated wall-clock for Table 5.3, %d-byte tuples\n\n", tupleBytes)
	out.csvRow("profile", "setting", "smc_s", "alg4_s", "alg5_s", "alg6_s")
	for _, profile := range []costmodel.DeviceProfile{costmodel.IBM4758(), costmodel.IBM4764()} {
		out.printf("%s (%d MB protected memory, %.0f s/1e6 transfers)\n",
			profile.Name, profile.MemoryBytes>>20, profile.EstimateSeconds(1e6, tupleBytes))
		out.printf("  %-12s %12s %12s %12s %14s\n", "", "SMC", "Alg 4", "Alg 5", "Alg 6 (1e-20)")
		for _, e := range costmodel.EstimateTable(profile, tupleBytes) {
			out.printf("  %-12s %11.0fs %11.0fs %11.0fs %13.1fs\n",
				e.Setting.Name, e.SMCSec, e.Alg4Sec, e.Alg5Sec, e.Alg6Sec)
			out.csvRow(profile.Name, e.Setting.Name, e.SMCSec, e.Alg4Sec, e.Alg5Sec, e.Alg6Sec)
		}
	}
	out.printf("\nAlgorithm 6 is interactive-scale on either device; SMC is hours even\n")
	out.printf("ignoring its public-key operations (the estimate charges only transfers).\n")
	return nil
}
