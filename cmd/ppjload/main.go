// Command ppjload is the sustained-load driver for the serving layer: it
// boots an in-process multi-shard fleet behind one TCP listener, then
// sustains -tenants tenant accounts submitting -contracts contracts (each
// a full two-provider/one-recipient join driven over real client
// connections) with -concurrency groups in flight at once, until the work
// list is drained or -max-duration elapses.
//
// It reports the numbers an operator sizes the fleet with: end-to-end
// latency percentiles (p50/p95/p99 from registration to result receipt),
// completed-join throughput, registration spills, and typed refusal
// counts (per-tenant queue backpressure and tenant quota), as a JSON
// object. With -out the report is merged into an existing benchmark
// artefact under the "SustainedLoad" key — scripts/bench.sh uses this to
// fold the load run into BENCH_<n>.json next to the go test benchmarks.
//
// Refused submissions are retried with a small backoff (the refusals stay
// counted), so a quota- or backpressure-limited run measures the
// steady-state the limits shape rather than dying on the first refusal.
package main

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ppj/internal/fleet"
	"ppj/internal/relation"
	"ppj/internal/server"
	"ppj/internal/service"
)

type options struct {
	shards         int
	tenants        int
	contracts      int
	rows           int
	workers        int
	queue          int
	concurrency    int
	scheduler      string
	maxDuration    time.Duration
	tenantInFlight int
	tenantRate     float64
	tenantBurst    float64
	out            string
}

func parseFlags(fs *flag.FlagSet, args []string) (*options, error) {
	o := &options{}
	fs.IntVar(&o.shards, "shards", 2, "fleet width")
	fs.IntVar(&o.tenants, "tenants", 8, "tenant accounts; contract i belongs to tenant i mod N")
	fs.IntVar(&o.contracts, "contracts", 1000, "total contracts to run across all tenants")
	fs.IntVar(&o.rows, "rows", 8, "rows per provider relation")
	fs.IntVar(&o.workers, "workers", 2, "worker pool size per shard")
	fs.IntVar(&o.queue, "queue", 32, "ready-queue bound per shard (per tenant under the fair scheduler)")
	fs.IntVar(&o.concurrency, "concurrency", 16, "contract groups in flight at once")
	fs.StringVar(&o.scheduler, "scheduler", "", "ready-queue policy: fair (default) or fifo")
	fs.DurationVar(&o.maxDuration, "max-duration", time.Minute, "stop submitting new contracts after this long; 0 is unbounded")
	fs.IntVar(&o.tenantInFlight, "tenant-max-inflight", 0, "per-tenant cap on unsettled jobs (0 is unlimited)")
	fs.Float64Var(&o.tenantRate, "tenant-rate", 0, "per-tenant submission rate in jobs/second (0 disables)")
	fs.Float64Var(&o.tenantBurst, "tenant-burst", 0, "token-bucket capacity for -tenant-rate")
	fs.StringVar(&o.out, "out", "", "JSON artefact to merge the report into under \"SustainedLoad\"; empty prints to stdout only")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.shards < 1 || o.tenants < 1 || o.contracts < 1 || o.rows < 1 || o.workers < 1 || o.queue < 1 || o.concurrency < 1 {
		return nil, fmt.Errorf("-shards, -tenants, -contracts, -rows, -workers, -queue and -concurrency must all be at least 1")
	}
	if o.maxDuration < 0 {
		return nil, fmt.Errorf("-max-duration must not be negative, got %v", o.maxDuration)
	}
	switch o.scheduler {
	case "", server.PolicyFair, server.PolicyFIFO:
	default:
		return nil, fmt.Errorf("-scheduler must be %q or %q, got %q", server.PolicyFair, server.PolicyFIFO, o.scheduler)
	}
	return o, nil
}

// report is the JSON the run emits; field names are stable — the bench
// trajectory table keys off them.
type report struct {
	Shards            int     `json:"shards"`
	Tenants           int     `json:"tenants"`
	Contracts         int     `json:"contracts"`
	Completed         int     `json:"completed"`
	Failed            int     `json:"failed"`
	DurationSeconds   float64 `json:"duration_seconds"`
	ThroughputPerSec  float64 `json:"throughput_per_sec"`
	P50Millis         float64 `json:"p50_ms"`
	P95Millis         float64 `json:"p95_ms"`
	P99Millis         float64 `json:"p99_ms"`
	Spills            uint64  `json:"spills"`
	QuotaRefusals     uint64  `json:"quota_refusals"`
	QueueFullRefusals uint64  `json:"queue_full_refusals"`
	Scheduler         string  `json:"scheduler"`
}

func main() {
	o, err := parseFlags(flag.NewFlagSet("ppjload", flag.ExitOnError), os.Args[1:])
	check(err)

	rt, err := fleet.New(fleet.Config{Config: server.Config{
		Shards:            o.shards,
		Workers:           o.workers,
		QueueDepth:        o.queue,
		Memory:            64,
		Scheduler:         o.scheduler,
		TenantMaxInFlight: o.tenantInFlight,
		TenantRate:        o.tenantRate,
		TenantBurst:       o.tenantBurst,
	}})
	check(err)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	serveDone := make(chan error, 1)
	go func() { serveDone <- rt.Serve(ln) }()
	fmt.Printf("ppjload: %d shard(s) on %s, %d tenants x %d contracts, concurrency %d\n",
		o.shards, ln.Addr(), o.tenants, o.contracts, o.concurrency)

	ctx := context.Background()
	if o.maxDuration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.maxDuration)
		defer cancel()
	}

	var (
		quotaRefusals, queueRefusals atomic.Uint64
		failed                       atomic.Uint64
		latMu                        sync.Mutex
		latencies                    []time.Duration
	)
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < o.contracts; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				lat, err := runContract(ctx, rt, ln.Addr().String(), o, i, &quotaRefusals, &queueRefusals)
				if err != nil {
					failed.Add(1)
					log.Printf("contract %d: %v", i, err)
					continue
				}
				latMu.Lock()
				latencies = append(latencies, lat)
				latMu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	check(rt.Shutdown(shutCtx))
	ln.Close()
	check(<-serveDone)

	snap := rt.MetricsSnapshot()
	rep := report{
		Shards:            o.shards,
		Tenants:           o.tenants,
		Contracts:         o.contracts,
		Completed:         len(latencies),
		Failed:            int(failed.Load()),
		DurationSeconds:   elapsed.Seconds(),
		ThroughputPerSec:  float64(len(latencies)) / elapsed.Seconds(),
		Spills:            snap.Spills,
		QuotaRefusals:     quotaRefusals.Load(),
		QueueFullRefusals: queueRefusals.Load(),
		Scheduler:         snap.Fleet.Scheduler,
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		rep.P50Millis = float64(latencies[n*50/100].Microseconds()) / 1000
		rep.P95Millis = float64(latencies[min(n*95/100, n-1)].Microseconds()) / 1000
		rep.P99Millis = float64(latencies[min(n*99/100, n-1)].Microseconds()) / 1000
	}
	if rep.Completed == 0 {
		log.Fatal("no contract completed inside -max-duration")
	}

	js, err := json.MarshalIndent(rep, "", "  ")
	check(err)
	fmt.Printf("sustained load report:\n%s\n", js)
	if o.out != "" {
		check(mergeReport(o.out, rep))
		fmt.Printf("merged into %s under \"SustainedLoad\"\n", o.out)
	}
}

// runContract runs one contract end to end: sign, register (retrying
// typed refusals with backoff, counting each), upload both relations and
// receive the result over TCP. Returns the registration-to-receipt
// latency.
func runContract(ctx context.Context, rt *fleet.Router, addr string, o *options, i int, quotaRefusals, queueRefusals *atomic.Uint64) (time.Duration, error) {
	type party struct {
		pub  ed25519.PublicKey
		priv ed25519.PrivateKey
	}
	var parties [3]party
	for k := range parties {
		pub, priv, err := service.NewIdentity()
		if err != nil {
			return 0, err
		}
		parties[k] = party{pub, priv}
	}
	tenant := fmt.Sprintf("tenant-%d", i%o.tenants)
	c := &service.Contract{
		ID:     fmt.Sprintf("load-%s-%d", tenant, i),
		Tenant: tenant,
		Parties: []service.Party{
			{Name: "provA", Identity: parties[0].pub, Role: service.RoleProvider},
			{Name: "provB", Identity: parties[1].pub, Role: service.RoleProvider},
			{Name: "recip", Identity: parties[2].pub, Role: service.RoleRecipient},
		},
		Predicate: service.PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"},
		Algorithm: "alg5",
		Epsilon:   1e-9,
	}
	c.Sign(0, parties[0].priv)
	c.Sign(1, parties[1].priv)
	relA := relation.GenKeyed(relation.NewRand(uint64(2*i+1)), o.rows, 5)
	relB := relation.GenKeyed(relation.NewRand(uint64(2*i+2)), o.rows, 5)

	begin := time.Now()
	var job *server.Job
	for backoff := time.Millisecond; ; backoff = min(2*backoff, 50*time.Millisecond) {
		j, err := rt.Register(c)
		if err == nil {
			job = j
			break
		}
		switch {
		case errors.Is(err, server.ErrQuotaExceeded):
			quotaRefusals.Add(1)
		case errors.Is(err, server.ErrQueueFull):
			queueRefusals.Add(1)
		default:
			return 0, fmt.Errorf("register: %w", err)
		}
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("register: gave up after refusals: %w", ctx.Err())
		case <-time.After(backoff):
		}
	}
	_, sh, err := rt.ShardFor(c.ID)
	if err != nil {
		return 0, err
	}
	deviceKey := sh.Device().DeviceKey()
	client := func(k int, name string) *service.Client {
		return &service.Client{Name: name, Identity: parties[k].priv, DeviceKey: deviceKey, Expected: service.ExpectedStack()}
	}

	provide := func(k int, name string, rel *relation.Relation) error {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		cs, err := client(k, name).ConnectContract(conn, service.RoleProvider, c.ID)
		if err != nil {
			return err
		}
		return cs.SubmitRelation(c.ID, rel)
	}
	errc := make(chan error, 2)
	go func() { errc <- provide(0, "provA", relA) }()
	go func() { errc <- provide(1, "provB", relB) }()
	for k := 0; k < 2; k++ {
		if err := <-errc; err != nil {
			return 0, fmt.Errorf("upload: %w", err)
		}
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	cs, err := client(2, "recip").ConnectContract(conn, service.RoleRecipient, c.ID)
	if err != nil {
		return 0, err
	}
	res, err := cs.ReceiveResult()
	if err != nil {
		return 0, fmt.Errorf("receive: %w", err)
	}
	if res == nil {
		return 0, fmt.Errorf("empty result delivery")
	}
	<-job.Done()
	return time.Since(begin), nil
}

// mergeReport folds the report into path under the "SustainedLoad" key,
// preserving whatever benchmark entries the file already holds. The
// artefact keeps its one-line-per-entry shape (every value compact on the
// line naming it) — the bench trajectory table greps it that way.
func mergeReport(path string, rep report) error {
	doc := map[string]json.RawMessage{}
	var order []string
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
		// Preserve the file's entry order; top-level keys are unique, so
		// decoding key tokens at depth 1 recovers it.
		dec := json.NewDecoder(bytes.NewReader(raw))
		depth := 0
		for {
			tok, err := dec.Token()
			if err != nil {
				break
			}
			switch v := tok.(type) {
			case json.Delim:
				if v == '{' || v == '[' {
					depth++
				} else {
					depth--
				}
			case string:
				if depth == 1 {
					if _, known := doc[v]; known {
						order = append(order, v)
						// Skip the value so its own strings don't count.
						var skip json.RawMessage
						if err := dec.Decode(&skip); err != nil {
							return fmt.Errorf("reparsing %s: %w", path, err)
						}
					}
				}
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	if _, had := doc["SustainedLoad"]; !had {
		order = append(order, "SustainedLoad")
	}
	enc, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	doc["SustainedLoad"] = enc

	var out bytes.Buffer
	out.WriteString("{\n")
	for i, key := range order {
		var compact bytes.Buffer
		if err := json.Compact(&compact, doc[key]); err != nil {
			return err
		}
		fmt.Fprintf(&out, "  %q: %s", key, compact.Bytes())
		if i < len(order)-1 {
			out.WriteByte(',')
		}
		out.WriteByte('\n')
	}
	out.WriteString("}\n")
	return os.WriteFile(path, out.Bytes(), 0o644)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
