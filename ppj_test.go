package ppj

import (
	"testing"

	"ppj/internal/relation"
)

func testRelations(t *testing.T, seed uint64) (*Relation, *Relation) {
	t.Helper()
	a := relation.GenKeyed(relation.NewRand(seed), 8, 5)
	b := relation.GenKeyed(relation.NewRand(seed+1), 10, 5)
	return a, b
}

func TestEngineAllAlgorithms(t *testing.T) {
	relA, relB := testRelations(t, 1)
	pred, err := Equijoin(relA.Schema, "key", relB.Schema, "key")
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceJoin(relA, relB, pred)
	n := int64(MaxMatches(relA, relB, pred))
	if n == 0 {
		n = 1
	}
	for _, alg := range []Algorithm{Alg1, Alg2, Alg3, Alg4, Alg5, Alg6} {
		t.Run(alg.String(), func(t *testing.T) {
			eng, err := NewEngine(EngineConfig{Memory: 8, Seed: 3, Plain: true})
			if err != nil {
				t.Fatal(err)
			}
			ta, err := eng.Load("A", relA)
			if err != nil {
				t.Fatal(err)
			}
			tb, err := eng.Load("B", relB)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Join(alg, []TableRef{ta, tb}, Pairwise(pred), JoinOptions{
				N: n, Pred2: pred, Epsilon: 1e-9,
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Decode(res)
			if err != nil {
				t.Fatal(err)
			}
			if !relation.SameMultiset(got, want) {
				t.Fatalf("%s: join mismatch (%d vs %d rows)", alg, got.Len(), want.Len())
			}
		})
	}
}

func TestEngineValidation(t *testing.T) {
	relA, relB := testRelations(t, 2)
	pred, _ := Equijoin(relA.Schema, "key", relB.Schema, "key")
	eng, err := NewEngine(EngineConfig{Memory: 8, Plain: true})
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := eng.Load("A", relA)
	tb, _ := eng.Load("B", relB)
	tabs := []TableRef{ta, tb}
	if _, err := eng.Join(Alg1, tabs[:1], Pairwise(pred), JoinOptions{N: 1, Pred2: pred}); err == nil {
		t.Error("one table accepted by Alg1")
	}
	if _, err := eng.Join(Alg1, tabs, Pairwise(pred), JoinOptions{N: 1}); err == nil {
		t.Error("missing Pred2 accepted")
	}
	if _, err := eng.Join(Alg2, tabs, Pairwise(pred), JoinOptions{Pred2: pred}); err == nil {
		t.Error("missing N accepted")
	}
	if _, err := eng.Join(Algorithm(99), tabs, Pairwise(pred), JoinOptions{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	band, _ := BandJoin(relA.Schema, "key", relB.Schema, "key", 1)
	if _, err := eng.Join(Alg3, tabs, Pairwise(band), JoinOptions{N: 1, Pred2: band}); err == nil {
		t.Error("non-equi predicate accepted by Alg3")
	}
}

func TestEngineJoin6Full(t *testing.T) {
	relA, relB := testRelations(t, 3)
	pred, _ := Equijoin(relA.Schema, "key", relB.Schema, "key")
	eng, err := NewEngine(EngineConfig{Memory: 2, Seed: 5, Plain: true})
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := eng.Load("A", relA)
	tb, _ := eng.Load("B", relB)
	rep, err := eng.Join6Full([]TableRef{ta, tb}, Pairwise(pred), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.S != int64(ReferenceJoin(relA, relB, pred).Len()) {
		t.Fatalf("Join6Full S = %d", rep.S)
	}
}

func TestCostFacade(t *testing.T) {
	if len(PaperSettings()) != 3 {
		t.Fatal("PaperSettings wrong")
	}
	if CostAlg5(640000, 6400, 64) != 6400+100*640000 {
		t.Fatal("CostAlg5 wrong")
	}
	if CostSMC(640000, 6400) < 1e10 {
		t.Fatal("CostSMC wrong magnitude")
	}
	br := CostAlg6(640000, 6400, 64, 1e-20)
	if br.NStar <= 0 || br.Total <= 0 {
		t.Fatal("CostAlg6 breakdown empty")
	}
	if OptimalSegment(1000, 10, 64, 0) != 1000 {
		t.Fatal("OptimalSegment S<=M wrong")
	}
	if BlemishBound(1000, 100, 10, 0) != 1 {
		t.Fatal("BlemishBound edge wrong")
	}
	if Ch4Winner(10000, 0.0001, 1, false) != "Alg2" {
		t.Fatal("Ch4Winner wrong")
	}
	if CostAlg1(100, 100, 4) <= 0 || CostAlg2(100, 100, 4, 8) <= 0 || CostAlg3(100, 100, 4, false) <= 0 || CostAlg4(100, 10) <= 0 {
		t.Fatal("cost functions returned nonsense")
	}
}

func TestEngineTraceExposed(t *testing.T) {
	relA, relB := testRelations(t, 4)
	pred, _ := Equijoin(relA.Schema, "key", relB.Schema, "key")
	eng, err := NewEngine(EngineConfig{Memory: 8, Plain: true, TraceRecordLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := eng.Load("A", relA)
	tb, _ := eng.Load("B", relB)
	if _, err := eng.Join(Alg5, []TableRef{ta, tb}, Pairwise(pred), JoinOptions{}); err != nil {
		t.Fatal(err)
	}
	if eng.Host().Trace().Count() == 0 {
		t.Fatal("no trace recorded")
	}
	if eng.Coprocessor().Stats().Transfers() == 0 {
		t.Fatal("no transfers counted")
	}
}

func TestEngineAggregate(t *testing.T) {
	relA, relB := testRelations(t, 9)
	pred, _ := Equijoin(relA.Schema, "key", relB.Schema, "key")
	eng, err := NewEngine(EngineConfig{Memory: 4, Plain: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := eng.Load("A", relA)
	tb, _ := eng.Load("B", relB)
	got, err := eng.Aggregate([]TableRef{ta, tb}, Pairwise(pred), AggSpec{Kind: AggCount})
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceJoin(relA, relB, pred).Len()
	if got.Count != int64(want) || !got.Valid {
		t.Fatalf("COUNT = %d/%v, want %d", got.Count, got.Valid, want)
	}
	sum, err := eng.Aggregate([]TableRef{ta, tb}, Pairwise(pred), AggSpec{Kind: AggSum, Table: 1, Attr: "payload"})
	if err != nil {
		t.Fatal(err)
	}
	var wantSum float64
	for _, row := range ReferenceJoin(relA, relB, pred).Rows {
		wantSum += float64(row[3].I)
	}
	if sum.Value != wantSum {
		t.Fatalf("SUM = %g, want %g", sum.Value, wantSum)
	}
}

func TestEngineJoin6OnePass(t *testing.T) {
	relA, relB := testRelations(t, 12)
	pred, _ := Equijoin(relA.Schema, "key", relB.Schema, "key")
	s := int64(ReferenceJoin(relA, relB, pred).Len())
	eng, err := NewEngine(EngineConfig{Memory: 3, Plain: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := eng.Load("A", relA)
	tb, _ := eng.Load("B", relB)
	rep, err := eng.Join6OnePass([]TableRef{ta, tb}, Pairwise(pred), 1e-9, s)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := eng.Decode(rep.Result)
	if err != nil {
		t.Fatal(err)
	}
	if int64(rows.Len()) != s {
		t.Fatalf("one-pass rows = %d, want %d", rows.Len(), s)
	}
}
