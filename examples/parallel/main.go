// Parallel: several coprocessors attached to one host (§4.4.4, §5.3.5).
//
// "Consider a server which has more than one secure coprocessor attached.
// It is readily apparent that both the above algorithms are easy to
// parallelize with a linear speed-up in the number of processors." This
// example partitions the outer relation of Algorithm 2 over P devices and
// the iTuple range of Algorithm 4 over P devices (whose oblivious decoy
// filter becomes a parallel bitonic sort), reporting the per-device load.
//
// This example drives the internal parallel engines directly (they are not
// yet part of the stable facade).
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"

	"ppj/internal/core"
	"ppj/internal/relation"
	"ppj/internal/sim"
)

func main() {
	relA, relB := relation.GenWithMatchBound(relation.NewRand(5), 16, 32, 8)
	eq, err := relation.NewEqui(relA.Schema, "key", relB.Schema, "key")
	if err != nil {
		log.Fatal(err)
	}
	want := relation.ReferenceJoin(relA, relB, eq)
	fmt.Printf("inputs: |A|=%d |B|=%d, N=8, true join size %d\n\n", relA.Len(), relB.Len(), want.Len())

	fmt.Println("Algorithm 2, outer relation partitioned over P devices:")
	fmt.Printf("%4s %16s %16s\n", "P", "max transfers", "per-device share")
	base := uint64(0)
	for _, p := range []int{1, 2, 4, 8} {
		maxT := runParallel2(relA, relB, eq, p)
		if p == 1 {
			base = maxT
		}
		fmt.Printf("%4d %16d %15.2fx\n", p, maxT, float64(base)/float64(maxT))
	}

	fmt.Println("\nAlgorithm 4 with a parallel bitonic decoy filter:")
	fmt.Printf("%4s %16s %16s\n", "P", "max transfers", "per-device share")
	base = 0
	for _, p := range []int{1, 2, 4} {
		maxT := runParallel4(relA, relB, eq, p)
		if p == 1 {
			base = maxT
		}
		fmt.Printf("%4d %16d %15.2fx\n", p, maxT, float64(base)/float64(maxT))
	}
}

// runParallel2 returns the busiest device's transfer count.
func runParallel2(relA, relB *relation.Relation, eq *relation.Equi, p int) uint64 {
	h := sim.NewHost(0)
	cops := fleet(h, p, 8)
	tabA, err := sim.LoadTable(h, cops[0].Sealer(), "A", relA)
	if err != nil {
		log.Fatal(err)
	}
	tabB, err := sim.LoadTable(h, cops[0].Sealer(), "B", relB)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.ParallelJoin2(cops, tabA, tabB, eq, 8, 0)
	if err != nil {
		log.Fatal(err)
	}
	check(cops[0], res, relA, relB, eq)
	return busiest(cops)
}

// runParallel4 returns the busiest device's transfer count.
func runParallel4(relA, relB *relation.Relation, eq *relation.Equi, p int) uint64 {
	h := sim.NewHost(0)
	cops := fleet(h, p, 8)
	tabA, err := sim.LoadTable(h, cops[0].Sealer(), "A", relA)
	if err != nil {
		log.Fatal(err)
	}
	tabB, err := sim.LoadTable(h, cops[0].Sealer(), "B", relB)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.ParallelJoin4(cops, []sim.Table{tabA, tabB}, relation.Pairwise(eq))
	if err != nil {
		log.Fatal(err)
	}
	check(cops[0], res, relA, relB, eq)
	return busiest(cops)
}

func fleet(h *sim.Host, p, mem int) []*sim.Coprocessor {
	sealer, err := sim.NewRandomOCBSealer()
	if err != nil {
		log.Fatal(err)
	}
	cops := make([]*sim.Coprocessor, p)
	for i := range cops {
		cops[i], err = sim.NewCoprocessor(h, sim.Config{Memory: mem, Sealer: sealer, Seed: uint64(i) + 1})
		if err != nil {
			log.Fatal(err)
		}
	}
	return cops
}

func check(cop *sim.Coprocessor, res core.Result, relA, relB *relation.Relation, eq *relation.Equi) {
	got, err := core.DecodeOutput(cop, res)
	if err != nil {
		log.Fatal(err)
	}
	want := relation.ReferenceJoin(relA, relB, eq)
	if !relation.SameMultiset(got, want) {
		log.Fatalf("parallel join incorrect: %d vs %d rows", got.Len(), want.Len())
	}
}

func busiest(cops []*sim.Coprocessor) uint64 {
	maxT := uint64(0)
	for _, c := range cops {
		if tr := c.Stats().Transfers(); tr > maxT {
			maxT = tr
		}
	}
	return maxT
}
