// Epidemiology: aggregation over a join without materialising it — the
// future-work question of the thesis's Conclusions chapter, answered.
//
// "Aggregation queries output statistics over the join of two tables. It is
// not necessary to materialize the join result... Do efficient algorithms
// exist for this simplified task?" A study wants the NUMBER of patients
// whose drug-reaction record joins a flagged gene variant, and the average
// reaction severity — not the records themselves. With the accumulator
// inside the coprocessor, one fixed-order pass suffices and the host's view
// is independent even of the join size.
//
// The example also shows the query planner choosing algorithms: the same
// data asked for rows routes to a Chapter 5 join; asked for a statistic it
// routes to the aggregation pass at a fraction of the cost.
//
//	go run ./examples/epidemiology
package main

import (
	"fmt"
	"log"

	"ppj"
)

func main() {
	// Hospital: (key = variant id, payload = severity score).
	// Gene bank: (key = variant id, payload = variant class).
	hospital := ppj.GenKeyed(ppj.NewRand(21), 40, 15)
	geneBank := ppj.GenKeyed(ppj.NewRand(22), 25, 15)
	rels := []*ppj.Relation{hospital, geneBank}

	pred, err := ppj.Equijoin(hospital.Schema, "key", geneBank.Schema, "key")
	if err != nil {
		log.Fatal(err)
	}

	// 1. The materialising query: which patients match flagged variants?
	rows, plan, err := ppj.RunQuery(ppj.Query{Predicate: pred, Mode: ppj.OutputExact},
		rels, 16, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("row query  -> %s\n", plan)
	fmt.Printf("              %d matching patient-variant pairs materialised\n\n", rows.Len())

	// 2. The statistics the study actually needs: COUNT and AVG severity.
	count, planC, err := ppj.RunAggregateQuery(ppj.Query{
		Predicate: pred,
		Aggregate: &ppj.AggSpec{Kind: ppj.AggCount},
	}, rels, 16, 7)
	if err != nil {
		log.Fatal(err)
	}
	avg, _, err := ppj.RunAggregateQuery(ppj.Query{
		Predicate: pred,
		Aggregate: &ppj.AggSpec{Kind: ppj.AggAvg, Table: 0, Attr: "payload"},
	}, rels, 16, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agg query  -> %s\n", planC)
	fmt.Printf("              COUNT(*) = %d, AVG(severity) = %.2f\n\n", count.Count, avg.Value)

	fmt.Printf("cost comparison (predicted transfers): rows %.0f vs statistic %.0f\n",
		plan.PredictedCost, planC.PredictedCost)
	fmt.Println("the aggregate's host trace does not even reveal the join size —")
	fmt.Println("only L, the size of the cartesian product, which is public anyway.")
}
