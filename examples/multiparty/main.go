// Multiparty: a three-way join with Algorithm 6's privacy/efficiency dial.
//
// Chapter 5 generalises the problem to any number of databases joined over
// their cartesian product D = X₁ × … × X_J. Three agencies join their
// records on a shared key; Algorithm 6 visits D in an LFSR-random order and
// flushes fixed-size segments, trading a 1−ε privacy level for communication
// (Table 5.1). This example sweeps ε and reports the derived segment size
// n*, the flush count, and the measured transfers.
//
//	go run ./examples/multiparty
package main

import (
	"fmt"
	"log"

	"ppj"
)

func main() {
	x1 := ppj.GenKeyed(ppj.NewRand(1), 12, 6)
	x2 := ppj.GenKeyed(ppj.NewRand(2), 10, 6)
	x3 := ppj.GenKeyed(ppj.NewRand(3), 8, 6)
	rels := []*ppj.Relation{x1, x2, x3}

	// All three keys equal — a J-way equijoin as a MultiPredicate.
	pred := ppj.MultiPredicateFunc{
		Fn: func(ts []ppj.Tuple) bool {
			return ts[0][0].I == ts[1][0].I && ts[1][0].I == ts[2][0].I
		},
		Desc: "x1.key = x2.key = x3.key",
	}

	l := int64(x1.Len() * x2.Len() * x3.Len())
	fmt.Printf("three-way join over |D| = %d iTuples, coprocessor memory M = 4\n\n", l)
	fmt.Printf("%-10s %8s %10s %12s %10s %9s\n", "epsilon", "n*", "segments", "transfers", "results", "blemish")

	for _, eps := range []float64{0, 1e-12, 1e-6, 1e-3, 0.1} {
		eng, err := ppj.NewEngine(ppj.EngineConfig{Memory: 4, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		var tabs []ppj.TableRef
		for i, rel := range rels {
			tab, err := eng.Load(fmt.Sprintf("X%d", i+1), rel)
			if err != nil {
				log.Fatal(err)
			}
			tabs = append(tabs, tab)
		}
		rep, err := eng.Join6Full(tabs, pred, eps)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := eng.Decode(rep.Result)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.0e %8d %10d %12d %10d %9v\n",
			eps, rep.NStar, rep.Segments, rep.Stats.Transfers(), rows.Len(), rep.Blemished)
	}

	fmt.Println("\nlarger ε -> larger safe segments n* -> fewer flushes and a cheaper")
	fmt.Println("oblivious filter, at a blemish risk bounded by ε (Figure 5.2).")
}
