// Quickstart: the smallest complete privacy preserving join.
//
// Two parties hold keyed relations; the coprocessor computes their equijoin
// with Algorithm 5 (the multi-scan exact join) without the host learning
// anything beyond the public sizes (L, S, M).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ppj"
)

func main() {
	// Synthetic inputs: 20 and 30 rows with keys drawn from a small space
	// so the join is non-trivial.
	relA := ppj.GenKeyed(ppj.NewRand(1), 20, 12)
	relB := ppj.GenKeyed(ppj.NewRand(2), 30, 12)

	// An engine is a simulated untrusted host with one attached secure
	// coprocessor holding M = 16 tuples of protected memory.
	eng, err := ppj.NewEngine(ppj.EngineConfig{Memory: 16, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Providers upload their relations encrypted; the host stores only
	// ciphertext.
	tabA, err := eng.Load("A", relA)
	if err != nil {
		log.Fatal(err)
	}
	tabB, err := eng.Load("B", relB)
	if err != nil {
		log.Fatal(err)
	}

	pred, err := ppj.Equijoin(relA.Schema, "key", relB.Schema, "key")
	if err != nil {
		log.Fatal(err)
	}

	res, err := eng.Join(ppj.Alg5, []ppj.TableRef{tabA, tabB}, ppj.Pairwise(pred), ppj.JoinOptions{})
	if err != nil {
		log.Fatal(err)
	}

	rows, err := eng.Decode(res)
	if err != nil {
		log.Fatal(err)
	}

	want := ppj.ReferenceJoin(relA, relB, pred)
	fmt.Printf("join of %d x %d rows on key: %d results (reference: %d)\n",
		relA.Len(), relB.Len(), rows.Len(), want.Len())
	st := res.Stats
	fmt.Printf("coprocessor transfers: %d (gets %d, puts %d), host accesses traced: %d\n",
		st.Transfers(), st.Gets, st.Puts, eng.Host().Trace().Count())
	for i, row := range rows.Rows[:min(3, rows.Len())] {
		fmt.Printf("  row %d: A.key=%d A.payload=%d  B.key=%d B.payload=%d\n",
			i, row[0].I, row[1].I, row[2].I, row[3].I)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
