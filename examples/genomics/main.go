// Genomics: the paper's second motivating application (Chapter 1).
//
// "Epidemiological researchers may wish to study correlations between drug
// reactions and some genetic sequences, which may require joining DNA
// information from a gene bank with patient records from various
// hospitals." Disclosing patient records wholesale would violate HIPAA; the
// join must reveal only matching sequences. Sequences are represented as
// k-mer (shingle) sets and joined on Jaccard similarity — the paper's
// example of a similarity predicate — with Algorithm 4, the exact
// small-memory join, so the output holds precisely the matching pairs.
//
//	go run ./examples/genomics
package main

import (
	"fmt"
	"log"

	"ppj"
)

func main() {
	rng := ppj.NewRand(11)
	// Gene bank: 12 reference sequences; hospital: 18 patient samples.
	// Small shingle vocabulary so similar pairs occur.
	geneBank := ppj.GenSequences(rng, 12, 8, 12, 24)
	patients := ppj.GenSequences(rng, 18, 8, 12, 24)

	pred, err := ppj.JaccardJoin(geneBank.Schema, "kmers", patients.Schema, "kmers", 0.30)
	if err != nil {
		log.Fatal(err)
	}

	// A tiny device: Algorithm 4 needs only two tuples of memory, paying
	// for it with the oblivious decoy filter.
	eng, err := ppj.NewEngine(ppj.EngineConfig{Memory: 2, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	tg, err := eng.Load("genebank", geneBank)
	if err != nil {
		log.Fatal(err)
	}
	tp, err := eng.Load("patients", patients)
	if err != nil {
		log.Fatal(err)
	}

	res, err := eng.Join(ppj.Alg4, []ppj.TableRef{tg, tp}, ppj.Pairwise(pred), ppj.JoinOptions{})
	if err != nil {
		log.Fatal(err)
	}
	matches, err := eng.Decode(res)
	if err != nil {
		log.Fatal(err)
	}

	l := int64(geneBank.Len() * patients.Len())
	s := int64(matches.Len())
	fmt.Printf("gene bank: %d sequences, patients: %d samples (L = %d candidate pairs)\n",
		geneBank.Len(), patients.Len(), l)
	fmt.Printf("similar pairs (Jaccard > 0.30): %d — and only those leave the coprocessor\n", s)
	for i, row := range matches.Rows {
		if i >= 5 {
			fmt.Printf("  ... %d more\n", matches.Len()-5)
			break
		}
		fmt.Printf("  sequence %d ~ patient sample %d\n", row[0].I, row[2].I)
	}
	fmt.Printf("\nmeasured transfers: %d  |  Eqn 5.2 analytic cost: %.0f\n",
		res.Stats.Transfers(), ppj.CostAlg4(l, s))
	fmt.Printf("the host observed %d accesses, every one a function of (L, S) only\n",
		eng.Host().Trace().Count())
}
