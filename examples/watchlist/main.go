// Watchlist: the paper's first motivating application (Chapter 1).
//
// "Airlines and government agencies may wish to discover whether people are
// both on a passenger list and a list of potential terrorists, without
// revealing their respective lists." The match is fuzzy — "the national
// security application requires a fuzzy match on profiles" (§3.1) — so this
// example uses an arbitrary predicate (same passport, or same name with a
// close date of birth) with Algorithm 1, the general join for small
// coprocessor memories, and then demonstrates the privacy property: runs on
// different same-shaped inputs produce byte-identical host traces.
//
//	go run ./examples/watchlist
package main

import (
	"fmt"
	"log"
	"math"

	"ppj"
)

// fuzzyMatch is the arbitrary profile predicate: exact passport match, or
// same name with dates of birth in the same half-million-day band (the
// synthetic dob field spans a million values; real deployments would use a
// few days of data-entry noise).
func fuzzyMatch(a, b ppj.Tuple) bool {
	if a[3].S != "" && a[3].S == b[3].S {
		return true
	}
	return a[1].S == b[1].S && math.Abs(float64(a[2].I-b[2].I)) <= 500000
}

func run(seed uint64, n int, report bool) (traceDigest uint64) {
	watch := ppj.GenPersons(ppj.NewRand(seed), 15, 40)
	manifest := ppj.GenPersons(ppj.NewRand(seed+1000), 40, 40)

	pred := ppj.PredicateFunc{Fn: fuzzyMatch, Desc: "fuzzy profile match"}

	// Algorithm 1 targets devices with only a couple of tuples of memory —
	// the scratch area lives on the untrusted host.
	eng, err := ppj.NewEngine(ppj.EngineConfig{Memory: 2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	tw, err := eng.Load("watchlist", watch)
	if err != nil {
		log.Fatal(err)
	}
	tm, err := eng.Load("manifest", manifest)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Join(ppj.Alg1, []ppj.TableRef{tw, tm}, nil, ppj.JoinOptions{
		Pred2: pred, N: int64(n),
	})
	if err != nil {
		log.Fatal(err)
	}
	hits, err := eng.Decode(res)
	if err != nil {
		log.Fatal(err)
	}
	if report {
		fmt.Printf("watch list: %d profiles, manifest: %d passengers, match bound N=%d\n",
			watch.Len(), manifest.Len(), n)
		fmt.Printf("screening hits: %d (output padded to N*|watch| = %d oTuples; decoys dropped by recipient)\n",
			hits.Len(), res.OutputLen)
		for i, row := range hits.Rows {
			if i >= 4 {
				fmt.Printf("  ... %d more\n", hits.Len()-4)
				break
			}
			fmt.Printf("  flag: %-14s (dob %d) matches passenger %-14s (dob %d)\n",
				row[1].S, row[2].I, row[5].S, row[6].I)
		}
		fmt.Printf("cost: %d tuple transfers (analytic: %.0f)\n",
			res.Stats.Transfers(), ppj.CostAlg1(int64(watch.Len()), int64(manifest.Len()), int64(n)))
	}
	return eng.Host().Trace().Digest()
}

func main() {
	// The parties publicly agree on a safe match bound N before the join
	// (§4.3 "Setting N"); any correct upper bound works and the traces
	// depend only on it, never on the data.
	pred := ppj.PredicateFunc{Fn: fuzzyMatch, Desc: "fuzzy profile match"}
	n := 1
	for _, seed := range []uint64{1, 2} {
		w := ppj.GenPersons(ppj.NewRand(seed), 15, 40)
		m := ppj.GenPersons(ppj.NewRand(seed+1000), 40, 40)
		if got := ppj.MaxMatches(w, m, pred); got > n {
			n = got
		}
	}

	d1 := run(1, n, true)

	// Privacy demonstration: an entirely different watch list and manifest
	// of the same sizes (with the same declared N) induce the IDENTICAL
	// host access sequence — the adversary watching H learns nothing about
	// who is on either list.
	d2 := run(2, n, false)
	fmt.Printf("\ntrace digest, input set 1: %016x\n", d1)
	fmt.Printf("trace digest, input set 2: %016x\n", d2)
	if d1 == d2 {
		fmt.Println("identical access patterns: the host cannot tell the inputs apart")
	} else {
		fmt.Println("WARNING: traces differ (different N bound between runs)")
	}
}
