// Package query provides a small declarative layer over the join
// algorithms: a Query names the relations, the join predicate, an optional
// aggregate and an optional privacy budget; the Planner operationalises the
// paper's §4.6/§5.3.4 performance analysis to pick the cheapest algorithm
// whose guarantees satisfy the query; and Execute runs the plan on a
// coprocessor engine.
//
// This is the decision procedure behind Figure 4.1 and Table 5.1 turned
// into code: equijoins unlock Algorithm 3, γ = ⌈N/M⌉ arbitrates between
// Algorithms 1 and 2, exact-output requirements route to Chapter 5, memory
// and ε pick among Algorithms 4, 5 and 6, and aggregates skip
// materialisation entirely. Orderable two-way equijoins under the exact
// contract additionally admit Algorithm 7, the sort-based O(n log n)
// oblivious equijoin, which overtakes the scan-based plans past the
// cost-model crossover.
package query

import (
	"fmt"

	"ppj/internal/core"
	"ppj/internal/costmodel"
	"ppj/internal/relation"
	"ppj/internal/sim"
)

// OutputMode selects the privacy contract for the output size.
type OutputMode int

const (
	// PaddedN allows the Chapter 4 output shape: N·|A| oTuples, revealing
	// the public match bound N (Definition 1).
	PaddedN OutputMode = iota
	// Exact requires Chapter 5 semantics: exactly S result tuples, with S
	// the only size revealed (Definition 3).
	Exact
)

// String implements fmt.Stringer.
func (m OutputMode) String() string {
	if m == Exact {
		return "exact"
	}
	return "paddedN"
}

// Query describes a privacy preserving join request.
type Query struct {
	// Predicate is the 2-way join predicate (required unless Multi is set).
	Predicate relation.Predicate
	// Multi is the J-way predicate for more than two relations; forces
	// Chapter 5 algorithms.
	Multi relation.MultiPredicate
	// Mode selects padded (Chapter 4) or exact (Chapter 5) output.
	Mode OutputMode
	// Epsilon permits Algorithm 6 at privacy level 1−ε when positive.
	Epsilon float64
	// Aggregate, when non-nil, requests a statistic instead of rows.
	Aggregate *core.AggSpec
}

// Plan is the planner's decision.
type Plan struct {
	// Algorithm is 1..7, or 0 for the aggregation pass.
	Algorithm int
	// PredictedCost is the closed-form transfer estimate used to decide.
	PredictedCost float64
	// N is the Chapter 4 match bound (0 for Chapter 5 plans).
	N int64
	// Reason explains the choice in the analysis's terms.
	Reason string
}

// AlgorithmName renders the chosen algorithm in the contract vocabulary
// ("alg1".."alg7", or "aggregate" for the aggregation pass), so schedulers
// that plan per-contract (an "auto" algorithm in internal/server) can feed
// the decision back into the service execution path.
func (p Plan) AlgorithmName() string {
	if p.Algorithm == 0 {
		return "aggregate"
	}
	return fmt.Sprintf("alg%d", p.Algorithm)
}

// Devices returns how many of the requested coprocessors the chosen
// algorithm can exploit. Algorithms 2, 3 and 5 partition the outer relation
// (or the rank space) across any device count; Algorithm 4's parallel decoy
// filter and Algorithm 7's parallel sorts are parallel bitonic networks,
// which need a power-of-two fleet; the rest run on a single device.
func (p Plan) Devices(requested int) int {
	if requested < 1 {
		return 1
	}
	switch p.Algorithm {
	case 2, 3, 5:
		return requested
	case 4, 7:
		ps := 1
		for ps*2 <= requested {
			ps *= 2
		}
		return ps
	default:
		return 1
	}
}

// String renders the plan.
func (p Plan) String() string {
	if p.Algorithm == 0 {
		return fmt.Sprintf("aggregate pass (cost %.3g): %s", p.PredictedCost, p.Reason)
	}
	return fmt.Sprintf("Algorithm %d (cost %.3g): %s", p.Algorithm, p.PredictedCost, p.Reason)
}

// Planner resolves queries against concrete relations.
type Planner struct {
	// Memory is the target coprocessor's free memory M in tuples.
	Memory int64
}

// Plan picks the cheapest admissible algorithm for the query over the given
// relations. It inspects the plaintext relations to derive N and S — the
// same preprocessing the paper allows the coprocessor (§4.3 "Setting N";
// Algorithm 6's screening pass).
func (pl Planner) Plan(q Query, rels []*relation.Relation) (Plan, error) {
	if pl.Memory <= 0 {
		return Plan{}, fmt.Errorf("query: planner needs positive memory")
	}
	if len(rels) < 2 {
		return Plan{}, fmt.Errorf("query: need at least two relations")
	}
	if q.Aggregate != nil {
		mp, err := q.multiPred(rels)
		if err != nil {
			return Plan{}, err
		}
		_ = mp
		l := cartSize(rels)
		return Plan{
			Algorithm:     0,
			PredictedCost: float64(l) + 1,
			Reason:        "aggregates never materialise the join: one pass, accumulator inside T",
		}, nil
	}
	if len(rels) > 2 || q.Multi != nil && q.Predicate == nil {
		return pl.planCh5(q, rels)
	}
	if q.Mode == Exact {
		return pl.planCh5(q, rels)
	}
	return pl.planCh4(q, rels)
}

// planCh4 runs the §4.6 comparison of Algorithms 1, 2 and 3.
func (pl Planner) planCh4(q Query, rels []*relation.Relation) (Plan, error) {
	if q.Predicate == nil {
		return Plan{}, fmt.Errorf("query: Chapter 4 plans need a 2-way predicate")
	}
	a, b := rels[0], rels[1]
	n := matchBound(q.Predicate, a, b)
	if n == 0 {
		n = 1
	}
	c1 := costmodel.Alg1Cost(int64(a.Len()), int64(b.Len()), n)
	c2 := costmodel.Alg2Cost(int64(a.Len()), int64(b.Len()), n, pl.Memory)
	best := Plan{Algorithm: 1, PredictedCost: c1, N: n,
		Reason: "small-memory general join (scratch rounds + oblivious sorts)"}
	if c2 < best.PredictedCost {
		gamma := costmodel.Gamma(n, pl.Memory)
		best = Plan{Algorithm: 2, PredictedCost: c2, N: n,
			Reason: fmt.Sprintf("γ = ⌈N/M⌉ = %d passes beat the sort-based costs", gamma)}
	}
	if _, isEqui := q.Predicate.(*relation.Equi); isEqui {
		c3 := costmodel.Alg3Cost(int64(a.Len()), int64(b.Len()), n, false)
		if c3 < best.PredictedCost {
			best = Plan{Algorithm: 3, PredictedCost: c3, N: n,
				Reason: "equality predicate unlocks the sort-based equijoin"}
		}
	}
	return best, nil
}

// planCh5 runs the §5.3.4 comparison of Algorithms 4, 5 and 6.
func (pl Planner) planCh5(q Query, rels []*relation.Relation) (Plan, error) {
	mp, err := q.multiPred(rels)
	if err != nil {
		return Plan{}, err
	}
	l := cartSize(rels)
	s := joinSize(q, rels, mp)

	c4 := costmodel.Alg4Cost(l, s)
	c5 := costmodel.Alg5Cost(l, s, pl.Memory)
	best := Plan{Algorithm: 4, PredictedCost: c4,
		Reason: "two-tuple memory footprint with oblivious decoy filtering"}
	if c5 < best.PredictedCost {
		best = Plan{Algorithm: 5, PredictedCost: c5,
			Reason: fmt.Sprintf("⌈S/M⌉ = %d scans, no oblivious sort", core.Join5Scans(s, pl.Memory))}
	}
	if q.Epsilon > 0 {
		c6 := costmodel.Alg6Cost(l, s, pl.Memory, q.Epsilon)
		if c6.Total < best.PredictedCost {
			best = Plan{Algorithm: 6, PredictedCost: c6.Total,
				Reason: fmt.Sprintf("privacy budget ε = %g permits n* = %d segments of random order", q.Epsilon, c6.NStar)}
		}
	}
	// Algorithm 7 is admissible for two-way equijoins over an orderable
	// attribute: the sort-based pipeline needs a total order on keys. It
	// meets the same exact-output contract (S revealed, nothing else).
	if len(rels) == 2 && q.Predicate != nil {
		if eq, ok := q.Predicate.(*relation.Equi); ok && eq.Orderable() {
			c7 := costmodel.Alg7Cost(int64(rels[0].Len()), int64(rels[1].Len()), s)
			if c7 < best.PredictedCost {
				best = Plan{Algorithm: 7, PredictedCost: c7,
					Reason: "orderable equijoin past the crossover: sort-based O(n log n) pipeline beats the scans"}
			}
		}
	}
	return best, nil
}

// multiPred resolves the query's J-way predicate.
func (q Query) multiPred(rels []*relation.Relation) (relation.MultiPredicate, error) {
	if q.Multi != nil {
		return q.Multi, nil
	}
	if q.Predicate != nil && len(rels) == 2 {
		return relation.Pairwise(q.Predicate), nil
	}
	return nil, fmt.Errorf("query: no predicate covering %d relations", len(rels))
}

// matchBound computes the Chapter 4 N, using the O(|A|+|B|) histogram
// shortcut for Int64 equijoins and the paper's nested-loop preprocessing
// otherwise.
func matchBound(pred relation.Predicate, a, b *relation.Relation) int64 {
	if eq, ok := pred.(*relation.Equi); ok {
		if n, err := relation.EquijoinMatchBound(a, eq.AttrA, b, eq.AttrB); err == nil {
			return n
		}
	}
	return int64(relation.MaxMatches(a, b, pred))
}

// joinSize computes the Chapter 5 S, with the same histogram shortcut for
// two-way Int64 equijoins.
func joinSize(q Query, rels []*relation.Relation, mp relation.MultiPredicate) int64 {
	if len(rels) == 2 && q.Predicate != nil {
		if eq, ok := q.Predicate.(*relation.Equi); ok {
			if s, err := relation.EquijoinSize(rels[0], eq.AttrA, rels[1], eq.AttrB); err == nil {
				return s
			}
		}
	}
	return relation.CountMultiMatches(rels, mp)
}

func cartSize(rels []*relation.Relation) int64 {
	l := int64(1)
	for _, r := range rels {
		l *= int64(r.Len())
	}
	return l
}

// Execute plans the query and runs the chosen algorithm on a fresh engine
// (host + coprocessor with the planner's memory), returning the decoded
// result rows (or the aggregate via ExecuteAggregate).
func (pl Planner) Execute(q Query, rels []*relation.Relation, seed uint64) (*relation.Relation, Plan, error) {
	plan, err := pl.Plan(q, rels)
	if err != nil {
		return nil, Plan{}, err
	}
	if q.Aggregate != nil {
		return nil, plan, fmt.Errorf("query: use ExecuteAggregate for aggregate queries")
	}
	host := sim.NewHost(0)
	cop, err := sim.NewCoprocessor(host, sim.Config{Memory: int(pl.Memory), Seed: seed})
	if err != nil {
		return nil, Plan{}, err
	}
	tabs := make([]sim.Table, len(rels))
	for i, r := range rels {
		tabs[i], err = sim.LoadTable(host, cop.Sealer(), fmt.Sprintf("X%d", i+1), r)
		if err != nil {
			return nil, Plan{}, err
		}
	}

	var res core.Result
	switch plan.Algorithm {
	case 1:
		res, err = core.Join1(cop, tabs[0], tabs[1], q.Predicate, plan.N)
	case 2:
		res, err = core.Join2(cop, tabs[0], tabs[1], q.Predicate, plan.N, 0)
	case 3:
		res, err = core.Join3(cop, tabs[0], tabs[1], q.Predicate.(*relation.Equi), plan.N, false)
	case 7:
		res, err = core.Join7(cop, tabs[0], tabs[1], q.Predicate.(*relation.Equi))
	case 4, 5, 6:
		mp, merr := q.multiPred(rels)
		if merr != nil {
			return nil, Plan{}, merr
		}
		switch plan.Algorithm {
		case 4:
			res, err = core.Join4(cop, tabs, mp)
		case 5:
			res, err = core.Join5(cop, tabs, mp)
		default:
			var rep core.Join6Report
			rep, err = core.Join6(cop, tabs, mp, q.Epsilon)
			res = rep.Result
		}
	default:
		return nil, Plan{}, fmt.Errorf("query: plan selected unknown algorithm %d", plan.Algorithm)
	}
	if err != nil {
		return nil, Plan{}, err
	}
	rows, err := core.DecodeOutput(cop, res)
	if err != nil {
		return nil, Plan{}, err
	}
	return rows, plan, nil
}

// ExecuteAggregate plans and runs an aggregate query.
func (pl Planner) ExecuteAggregate(q Query, rels []*relation.Relation, seed uint64) (core.AggResult, Plan, error) {
	if q.Aggregate == nil {
		return core.AggResult{}, Plan{}, fmt.Errorf("query: no aggregate in query")
	}
	plan, err := pl.Plan(q, rels)
	if err != nil {
		return core.AggResult{}, Plan{}, err
	}
	mp, err := q.multiPred(rels)
	if err != nil {
		return core.AggResult{}, Plan{}, err
	}
	host := sim.NewHost(0)
	cop, err := sim.NewCoprocessor(host, sim.Config{Memory: int(pl.Memory), Seed: seed})
	if err != nil {
		return core.AggResult{}, Plan{}, err
	}
	tabs := make([]sim.Table, len(rels))
	for i, r := range rels {
		tabs[i], err = sim.LoadTable(host, cop.Sealer(), fmt.Sprintf("X%d", i+1), r)
		if err != nil {
			return core.AggResult{}, Plan{}, err
		}
	}
	res, err := core.Aggregate(cop, tabs, mp, *q.Aggregate)
	if err != nil {
		return core.AggResult{}, Plan{}, err
	}
	return res, plan, nil
}
