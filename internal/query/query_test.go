package query

import (
	"strings"
	"testing"

	"ppj/internal/core"
	"ppj/internal/relation"
)

func equi(t *testing.T, a, b *relation.Relation) *relation.Equi {
	t.Helper()
	eq, err := relation.NewEqui(a.Schema, "key", b.Schema, "key")
	if err != nil {
		t.Fatal(err)
	}
	return eq
}

func TestPlannerPicksAlg2WhenGammaSmall(t *testing.T) {
	// γ = 1 (N fits in memory): Algorithm 2 dominates (§4.6.1). Use a band
	// predicate so Algorithm 3 is not admissible.
	relA, relB := relation.GenWithMatchBound(relation.NewRand(1), 20, 40, 4)
	band, err := relation.NewBand(relA.Schema, "key", relB.Schema, "key", 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Planner{Memory: 64}.Plan(Query{Predicate: band}, []*relation.Relation{relA, relB})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != 2 {
		t.Fatalf("plan = %s, want Algorithm 2", plan)
	}
}

func TestPlannerPicksAlg1WhenGammaHuge(t *testing.T) {
	// §4.6.2: Algorithm 1 wins when γ exceeds 2 + α + 2(log₂ 2α|B|)². With
	// M = 1 that needs a large match bound: N = 200 over |B| = 300 gives
	// γ = 200 against a threshold of ~77.
	relA, relB := relation.GenWithMatchBound(relation.NewRand(2), 30, 300, 200)
	band, err := relation.NewBand(relA.Schema, "key", relB.Schema, "key", 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Planner{Memory: 1}.Plan(Query{Predicate: band}, []*relation.Relation{relA, relB})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != 1 {
		t.Fatalf("plan = %s, want Algorithm 1 (γ = 200)", plan)
	}
}

func TestPlannerPicksAlg3ForEquijoinLargeGamma(t *testing.T) {
	// Equijoin with γ >= 4: Algorithm 3 (§4.6.3).
	relA, relB := relation.GenWithMatchBound(relation.NewRand(3), 30, 60, 24)
	plan, err := Planner{Memory: 1}.Plan(Query{Predicate: equi(t, relA, relB)},
		[]*relation.Relation{relA, relB})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != 3 {
		t.Fatalf("plan = %s, want Algorithm 3", plan)
	}
}

func TestPlannerExactModeUsesCh5(t *testing.T) {
	relA, relB := relation.GenWithMatchBound(relation.NewRand(4), 10, 20, 3)
	plan, err := Planner{Memory: 8}.Plan(Query{Predicate: equi(t, relA, relB), Mode: Exact},
		[]*relation.Relation{relA, relB})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm < 4 {
		t.Fatalf("plan = %s, want a Chapter 5 algorithm", plan)
	}
}

func TestPlannerEpsilonUnlocksAlg6(t *testing.T) {
	// At the paper's own scales (Table 5.2 setting 1: L = 640,000,
	// S = 6,400, M = 64) Algorithm 5 wins without a privacy budget and
	// Algorithm 6 wins with one — the planner reproduces Table 5.3's
	// ordering. (The Plan call only evaluates closed forms plus one
	// screening pass, so full-scale relations are fine.)
	relA := relation.NewRelation(relation.KeyedSchema())
	relB := relation.NewRelation(relation.KeyedSchema())
	for i := 0; i < 800; i++ {
		relA.MustAppend(relation.Tuple{relation.IntValue(int64(i % 100)), relation.IntValue(int64(i))})
		relB.MustAppend(relation.Tuple{relation.IntValue(int64(i % 100)), relation.IntValue(int64(i))})
	}
	// Each key 0..99 appears 8x in each relation: S = 100 * 64 = 6400.
	rels := []*relation.Relation{relA, relB}
	q := Query{Predicate: equi(t, relA, relB), Mode: Exact}
	noBudget, err := Planner{Memory: 64}.Plan(q, rels)
	if err != nil {
		t.Fatal(err)
	}
	if noBudget.Algorithm != 5 {
		t.Fatalf("plan = %s, want Algorithm 5 without a budget", noBudget)
	}
	q.Epsilon = 1e-20
	withBudget, err := Planner{Memory: 64}.Plan(q, rels)
	if err != nil {
		t.Fatal(err)
	}
	if withBudget.Algorithm != 6 {
		t.Fatalf("plan = %s, want Algorithm 6 with ε budget", withBudget)
	}
	if withBudget.PredictedCost >= noBudget.PredictedCost {
		t.Fatal("Algorithm 6 chosen but not cheaper")
	}
}

func TestPlannerAggregateSkipsMaterialisation(t *testing.T) {
	relA, relB := relation.GenWithMatchBound(relation.NewRand(7), 10, 20, 3)
	plan, err := Planner{Memory: 4}.Plan(Query{
		Predicate: equi(t, relA, relB),
		Aggregate: &core.AggSpec{Kind: core.AggCount},
	}, []*relation.Relation{relA, relB})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != 0 {
		t.Fatalf("plan = %s, want aggregate pass", plan)
	}
	if plan.PredictedCost != float64(10*20+1) {
		t.Fatalf("predicted cost %g, want L+1", plan.PredictedCost)
	}
	if !strings.Contains(plan.String(), "aggregate") {
		t.Fatalf("plan string %q", plan.String())
	}
}

func TestExecuteMatchesReferenceAcrossRegimes(t *testing.T) {
	cases := []struct {
		name string
		mem  int64
		mode OutputMode
		eps  float64
	}{
		{"ch4-small-mem", 1, PaddedN, 0},
		{"ch4-large-mem", 64, PaddedN, 0},
		{"ch5-exact", 4, Exact, 0},
		{"ch5-budget", 2, Exact, 1e-9},
	}
	relA := relation.GenKeyed(relation.NewRand(8), 12, 5)
	relB := relation.GenKeyed(relation.NewRand(9), 15, 5)
	rels := []*relation.Relation{relA, relB}
	eq := equi(t, relA, relB)
	want := relation.ReferenceJoin(relA, relB, eq)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows, plan, err := Planner{Memory: tc.mem}.Execute(
				Query{Predicate: eq, Mode: tc.mode, Epsilon: tc.eps}, rels, 11)
			if err != nil {
				t.Fatal(err)
			}
			if !relation.SameMultiset(rows, want) {
				t.Fatalf("%s (plan %s): got %d rows, want %d", tc.name, plan, rows.Len(), want.Len())
			}
		})
	}
}

func TestExecuteThreeWay(t *testing.T) {
	mk := func(seed uint64, n int) *relation.Relation {
		return relation.GenKeyed(relation.NewRand(seed), n, 4)
	}
	rels := []*relation.Relation{mk(1, 5), mk(2, 6), mk(3, 4)}
	mp := relation.MultiPredicateFunc{
		Fn: func(ts []relation.Tuple) bool {
			return ts[0][0].I == ts[1][0].I && ts[1][0].I == ts[2][0].I
		},
		Desc: "keys all equal",
	}
	rows, plan, err := Planner{Memory: 4}.Execute(Query{Multi: mp, Mode: Exact}, rels, 13)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm < 4 {
		t.Fatalf("three-way plan = %s", plan)
	}
	want := relation.ReferenceMultiJoin(rels, mp)
	if !relation.SameMultiset(rows, want) {
		t.Fatalf("3-way: got %d rows, want %d", rows.Len(), want.Len())
	}
}

func TestExecuteAggregate(t *testing.T) {
	relA, relB := relation.GenWithMatchBound(relation.NewRand(10), 8, 16, 3)
	eq := equi(t, relA, relB)
	res, plan, err := Planner{Memory: 4}.ExecuteAggregate(Query{
		Predicate: eq,
		Aggregate: &core.AggSpec{Kind: core.AggCount},
	}, []*relation.Relation{relA, relB}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != 0 {
		t.Fatalf("plan = %s", plan)
	}
	want := relation.ReferenceJoin(relA, relB, eq).Len()
	if res.Count != int64(want) {
		t.Fatalf("COUNT = %d, want %d", res.Count, want)
	}
}

func TestPlannerValidation(t *testing.T) {
	relA, relB := relation.GenWithMatchBound(relation.NewRand(11), 4, 8, 2)
	rels := []*relation.Relation{relA, relB}
	if _, err := (Planner{}).Plan(Query{Predicate: equi(t, relA, relB)}, rels); err == nil {
		t.Error("zero memory accepted")
	}
	if _, err := (Planner{Memory: 4}).Plan(Query{Predicate: equi(t, relA, relB)}, rels[:1]); err == nil {
		t.Error("single relation accepted")
	}
	if _, err := (Planner{Memory: 4}).Plan(Query{}, rels); err == nil {
		t.Error("missing predicate accepted")
	}
	if _, _, err := (Planner{Memory: 4}).Execute(Query{
		Predicate: equi(t, relA, relB), Aggregate: &core.AggSpec{Kind: core.AggCount},
	}, rels, 1); err == nil {
		t.Error("Execute accepted aggregate query")
	}
	if _, _, err := (Planner{Memory: 4}).ExecuteAggregate(Query{Predicate: equi(t, relA, relB)}, rels, 1); err == nil {
		t.Error("ExecuteAggregate accepted row query")
	}
}
