package query

import (
	"strings"
	"testing"

	"ppj/internal/core"
	"ppj/internal/costmodel"
	"ppj/internal/relation"
)

func equi(t *testing.T, a, b *relation.Relation) *relation.Equi {
	t.Helper()
	eq, err := relation.NewEqui(a.Schema, "key", b.Schema, "key")
	if err != nil {
		t.Fatal(err)
	}
	return eq
}

func TestPlannerPicksAlg2WhenGammaSmall(t *testing.T) {
	// γ = 1 (N fits in memory): Algorithm 2 dominates (§4.6.1). Use a band
	// predicate so Algorithm 3 is not admissible.
	relA, relB := relation.GenWithMatchBound(relation.NewRand(1), 20, 40, 4)
	band, err := relation.NewBand(relA.Schema, "key", relB.Schema, "key", 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Planner{Memory: 64}.Plan(Query{Predicate: band}, []*relation.Relation{relA, relB})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != 2 {
		t.Fatalf("plan = %s, want Algorithm 2", plan)
	}
}

func TestPlannerPicksAlg1WhenGammaHuge(t *testing.T) {
	// §4.6.2: Algorithm 1 wins when γ exceeds 2 + α + 2(log₂ 2α|B|)². With
	// M = 1 that needs a large match bound: N = 200 over |B| = 300 gives
	// γ = 200 against a threshold of ~77.
	relA, relB := relation.GenWithMatchBound(relation.NewRand(2), 30, 300, 200)
	band, err := relation.NewBand(relA.Schema, "key", relB.Schema, "key", 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Planner{Memory: 1}.Plan(Query{Predicate: band}, []*relation.Relation{relA, relB})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != 1 {
		t.Fatalf("plan = %s, want Algorithm 1 (γ = 200)", plan)
	}
}

func TestPlannerPicksAlg3ForEquijoinLargeGamma(t *testing.T) {
	// Equijoin with γ >= 4: Algorithm 3 (§4.6.3).
	relA, relB := relation.GenWithMatchBound(relation.NewRand(3), 30, 60, 24)
	plan, err := Planner{Memory: 1}.Plan(Query{Predicate: equi(t, relA, relB)},
		[]*relation.Relation{relA, relB})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != 3 {
		t.Fatalf("plan = %s, want Algorithm 3", plan)
	}
}

func TestPlannerExactModeUsesCh5(t *testing.T) {
	relA, relB := relation.GenWithMatchBound(relation.NewRand(4), 10, 20, 3)
	plan, err := Planner{Memory: 8}.Plan(Query{Predicate: equi(t, relA, relB), Mode: Exact},
		[]*relation.Relation{relA, relB})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm < 4 {
		t.Fatalf("plan = %s, want a Chapter 5 algorithm", plan)
	}
}

func TestPlannerEpsilonUnlocksAlg6(t *testing.T) {
	// At the paper's own scales (Table 5.2 setting 1: L = 640,000,
	// S = 6,400, M = 64) Algorithm 5 wins without a privacy budget and
	// Algorithm 6 wins with one — the planner reproduces Table 5.3's
	// ordering. (The Plan call only evaluates closed forms plus one
	// screening pass, so full-scale relations are fine.) The join is posed
	// as a MultiPredicate so the scan-based comparison stays the paper's
	// own: a visible orderable Equi would admit Algorithm 7, which beats
	// both at this scale (TestPlannerAutoFlipsToAlg7).
	relA := relation.NewRelation(relation.KeyedSchema())
	relB := relation.NewRelation(relation.KeyedSchema())
	for i := 0; i < 800; i++ {
		relA.MustAppend(relation.Tuple{relation.IntValue(int64(i % 100)), relation.IntValue(int64(i))})
		relB.MustAppend(relation.Tuple{relation.IntValue(int64(i % 100)), relation.IntValue(int64(i))})
	}
	// Each key 0..99 appears 8x in each relation: S = 100 * 64 = 6400.
	rels := []*relation.Relation{relA, relB}
	q := Query{Multi: relation.Pairwise(equi(t, relA, relB)), Mode: Exact}
	noBudget, err := Planner{Memory: 64}.Plan(q, rels)
	if err != nil {
		t.Fatal(err)
	}
	if noBudget.Algorithm != 5 {
		t.Fatalf("plan = %s, want Algorithm 5 without a budget", noBudget)
	}
	q.Epsilon = 1e-20
	withBudget, err := Planner{Memory: 64}.Plan(q, rels)
	if err != nil {
		t.Fatal(err)
	}
	if withBudget.Algorithm != 6 {
		t.Fatalf("plan = %s, want Algorithm 6 with ε budget", withBudget)
	}
	if withBudget.PredictedCost >= noBudget.PredictedCost {
		t.Fatal("Algorithm 6 chosen but not cheaper")
	}
}

func TestPlannerAggregateSkipsMaterialisation(t *testing.T) {
	relA, relB := relation.GenWithMatchBound(relation.NewRand(7), 10, 20, 3)
	plan, err := Planner{Memory: 4}.Plan(Query{
		Predicate: equi(t, relA, relB),
		Aggregate: &core.AggSpec{Kind: core.AggCount},
	}, []*relation.Relation{relA, relB})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != 0 {
		t.Fatalf("plan = %s, want aggregate pass", plan)
	}
	if plan.PredictedCost != float64(10*20+1) {
		t.Fatalf("predicted cost %g, want L+1", plan.PredictedCost)
	}
	if !strings.Contains(plan.String(), "aggregate") {
		t.Fatalf("plan string %q", plan.String())
	}
}

func TestExecuteMatchesReferenceAcrossRegimes(t *testing.T) {
	cases := []struct {
		name string
		mem  int64
		mode OutputMode
		eps  float64
	}{
		{"ch4-small-mem", 1, PaddedN, 0},
		{"ch4-large-mem", 64, PaddedN, 0},
		{"ch5-exact", 4, Exact, 0},
		{"ch5-budget", 2, Exact, 1e-9},
	}
	relA := relation.GenKeyed(relation.NewRand(8), 12, 5)
	relB := relation.GenKeyed(relation.NewRand(9), 15, 5)
	rels := []*relation.Relation{relA, relB}
	eq := equi(t, relA, relB)
	want := relation.ReferenceJoin(relA, relB, eq)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows, plan, err := Planner{Memory: tc.mem}.Execute(
				Query{Predicate: eq, Mode: tc.mode, Epsilon: tc.eps}, rels, 11)
			if err != nil {
				t.Fatal(err)
			}
			if !relation.SameMultiset(rows, want) {
				t.Fatalf("%s (plan %s): got %d rows, want %d", tc.name, plan, rows.Len(), want.Len())
			}
		})
	}
}

func TestExecuteThreeWay(t *testing.T) {
	mk := func(seed uint64, n int) *relation.Relation {
		return relation.GenKeyed(relation.NewRand(seed), n, 4)
	}
	rels := []*relation.Relation{mk(1, 5), mk(2, 6), mk(3, 4)}
	mp := relation.MultiPredicateFunc{
		Fn: func(ts []relation.Tuple) bool {
			return ts[0][0].I == ts[1][0].I && ts[1][0].I == ts[2][0].I
		},
		Desc: "keys all equal",
	}
	rows, plan, err := Planner{Memory: 4}.Execute(Query{Multi: mp, Mode: Exact}, rels, 13)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm < 4 {
		t.Fatalf("three-way plan = %s", plan)
	}
	want := relation.ReferenceMultiJoin(rels, mp)
	if !relation.SameMultiset(rows, want) {
		t.Fatalf("3-way: got %d rows, want %d", rows.Len(), want.Len())
	}
}

func TestExecuteAggregate(t *testing.T) {
	relA, relB := relation.GenWithMatchBound(relation.NewRand(10), 8, 16, 3)
	eq := equi(t, relA, relB)
	res, plan, err := Planner{Memory: 4}.ExecuteAggregate(Query{
		Predicate: eq,
		Aggregate: &core.AggSpec{Kind: core.AggCount},
	}, []*relation.Relation{relA, relB}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != 0 {
		t.Fatalf("plan = %s", plan)
	}
	want := relation.ReferenceJoin(relA, relB, eq).Len()
	if res.Count != int64(want) {
		t.Fatalf("COUNT = %d, want %d", res.Count, want)
	}
}

func TestPlannerValidation(t *testing.T) {
	relA, relB := relation.GenWithMatchBound(relation.NewRand(11), 4, 8, 2)
	rels := []*relation.Relation{relA, relB}
	if _, err := (Planner{}).Plan(Query{Predicate: equi(t, relA, relB)}, rels); err == nil {
		t.Error("zero memory accepted")
	}
	if _, err := (Planner{Memory: 4}).Plan(Query{Predicate: equi(t, relA, relB)}, rels[:1]); err == nil {
		t.Error("single relation accepted")
	}
	if _, err := (Planner{Memory: 4}).Plan(Query{}, rels); err == nil {
		t.Error("missing predicate accepted")
	}
	if _, _, err := (Planner{Memory: 4}).Execute(Query{
		Predicate: equi(t, relA, relB), Aggregate: &core.AggSpec{Kind: core.AggCount},
	}, rels, 1); err == nil {
		t.Error("Execute accepted aggregate query")
	}
	if _, _, err := (Planner{Memory: 4}).ExecuteAggregate(Query{Predicate: equi(t, relA, relB)}, rels, 1); err == nil {
		t.Error("ExecuteAggregate accepted row query")
	}
}

// matchedKeys builds |A| = |B| = n relations where each row joins exactly
// once (S = n) — the workload whose alg5-vs-alg7 crossover the cost model
// solves in closed form.
func matchedKeys(n int) []*relation.Relation {
	relA := relation.NewRelation(relation.KeyedSchema())
	relB := relation.NewRelation(relation.KeyedSchema())
	for i := 0; i < n; i++ {
		relA.MustAppend(relation.Tuple{relation.IntValue(int64(i)), relation.IntValue(int64(i) * 3)})
		relB.MustAppend(relation.Tuple{relation.IntValue(int64(i)), relation.IntValue(int64(i) * 7)})
	}
	return []*relation.Relation{relA, relB}
}

// TestPlannerAutoFlipsToAlg7 pins the "auto" decision boundary: below the
// cost-model crossover the planner keeps the scan-based Chapter 5 plans,
// at and past it the sort-based Algorithm 7 wins, and the decision is
// exactly the closed-form cost comparison.
func TestPlannerAutoFlipsToAlg7(t *testing.T) {
	const mem = 64
	cross := costmodel.CrossoverN57(mem)
	if cross == 0 || cross > 1<<12 {
		t.Fatalf("implausible crossover %d for M=%d", cross, mem)
	}
	plan := func(n int) Plan {
		rels := matchedKeys(n)
		q := Query{Predicate: equi(t, rels[0], rels[1]), Mode: Exact}
		p, err := Planner{Memory: mem}.Plan(q, rels)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	below := plan(int(cross) / 4)
	if below.Algorithm == 7 {
		t.Fatalf("below crossover (n=%d): plan = %s, want a scan-based algorithm", cross/4, below)
	}
	if below.Algorithm < 4 {
		t.Fatalf("exact mode planned %s, want a Chapter 5 algorithm", below)
	}
	for _, n := range []int64{cross, 2 * cross} {
		p := plan(int(n))
		if p.Algorithm != 7 {
			t.Fatalf("past crossover (n=%d): plan = %s, want Algorithm 7", n, p)
		}
		if p.AlgorithmName() != "alg7" {
			t.Fatalf("AlgorithmName() = %q", p.AlgorithmName())
		}
		if want := costmodel.Alg7Cost(n, n, n); p.PredictedCost != want {
			t.Fatalf("n=%d: predicted cost %g, want closed form %g", n, p.PredictedCost, want)
		}
	}
	// The parallel variant sorts on a power-of-two fleet.
	if got := plan(int(cross)).Devices(6); got != 4 {
		t.Fatalf("Devices(6) = %d, want largest power of two 4", got)
	}
}

// TestPlannerNeverPicksAlg7WhenInadmissible drives every route on which
// Algorithm 7 must not be selected — padded output, J-way joins, opaque
// and non-equality predicates, non-orderable join attributes — at a scale
// where it would win on cost if admissibility were ignored.
func TestPlannerNeverPicksAlg7WhenInadmissible(t *testing.T) {
	rels := matchedKeys(1024)
	eq := equi(t, rels[0], rels[1])

	// Padded (Chapter 4) output: alg7's exact-S output shape breaks the
	// N·|A| contract.
	p, err := Planner{Memory: 64}.Plan(Query{Predicate: eq, Mode: PaddedN}, rels)
	if err != nil {
		t.Fatal(err)
	}
	if p.Algorithm == 7 || p.Algorithm > 3 {
		t.Fatalf("padded mode planned %s, want a Chapter 4 algorithm", p)
	}

	// An opaque MultiPredicate hides the equality structure.
	p, err = Planner{Memory: 64}.Plan(Query{Multi: relation.Pairwise(eq), Mode: Exact}, rels)
	if err != nil {
		t.Fatal(err)
	}
	if p.Algorithm == 7 {
		t.Fatalf("opaque multi predicate planned %s", p)
	}

	// A non-equality 2-way predicate.
	opaque := relation.PredicateFunc{Fn: func(a, b relation.Tuple) bool { return a[0].I == b[0].I }, Desc: "opaque"}
	p, err = Planner{Memory: 64}.Plan(Query{Predicate: opaque, Mode: Exact}, rels)
	if err != nil {
		t.Fatal(err)
	}
	if p.Algorithm == 7 {
		t.Fatalf("non-equi predicate planned %s", p)
	}

	// Three relations: alg7 is strictly binary.
	threeRels := append(matchedKeys(64), matchedKeys(64)[0])
	p, err = Planner{Memory: 64}.Plan(Query{
		Multi: relation.MultiPredicateFunc{Fn: func(ts []relation.Tuple) bool {
			return ts[0][0].I == ts[1][0].I && ts[1][0].I == ts[2][0].I
		}, Desc: "3way"},
		Mode: Exact,
	}, threeRels)
	if err != nil {
		t.Fatal(err)
	}
	if p.Algorithm == 7 {
		t.Fatalf("3-way join planned %s", p)
	}

	// A Set-typed join attribute has no total order: Equi admits it, the
	// sort-based pipeline must not.
	setSchema := relation.MustSchema(
		relation.Attr{Name: "key", Type: relation.Set, Width: 4},
		relation.Attr{Name: "payload", Type: relation.Int64},
	)
	setA, setB := relation.NewRelation(setSchema), relation.NewRelation(setSchema)
	for i := 0; i < 512; i++ {
		setA.MustAppend(relation.Tuple{relation.SetValue(uint32(i)), relation.IntValue(int64(i))})
		setB.MustAppend(relation.Tuple{relation.SetValue(uint32(i)), relation.IntValue(int64(i))})
	}
	setEq, err := relation.NewEqui(setSchema, "key", setSchema, "key")
	if err != nil {
		t.Fatal(err)
	}
	if setEq.Orderable() {
		t.Fatal("Set attribute reported as orderable")
	}
	p, err = Planner{Memory: 64}.Plan(Query{Predicate: setEq, Mode: Exact}, []*relation.Relation{setA, setB})
	if err != nil {
		t.Fatal(err)
	}
	if p.Algorithm == 7 {
		t.Fatalf("non-orderable equijoin planned %s", p)
	}
}

// TestExecuteRunsAlg7PastCrossover runs the full Execute path at a size the
// planner resolves to Algorithm 7 and checks the decoded rows.
func TestExecuteRunsAlg7PastCrossover(t *testing.T) {
	const mem = 4
	cross := costmodel.CrossoverN57(mem)
	if cross == 0 || cross > 256 {
		t.Skipf("crossover %d too large to execute in a unit test", cross)
	}
	rels := matchedKeys(int(cross))
	eq := equi(t, rels[0], rels[1])
	rows, plan, err := Planner{Memory: mem}.Execute(Query{Predicate: eq, Mode: Exact}, rels, 11)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != 7 {
		t.Fatalf("plan = %s, want Algorithm 7", plan)
	}
	want := relation.ReferenceJoin(rels[0], rels[1], eq)
	if !relation.SameMultiset(rows, want) {
		t.Fatalf("execute mismatch: got %d rows, want %d", rows.Len(), want.Len())
	}
}
