package costmodel

// Algorithm 7 (the sort-based O(n log n) oblivious equijoin, after
// Krastnikov et al.) is built from fixed networks, so its cost model is not
// an approximation like Eqns 5.2-5.7 but the exact transfer count of the
// implementation. The arithmetic below mirrors internal/oblivious's
// SortTransfers / DistributeTransfers closed forms (pinned equal by test)
// so this package stays free of simulator dependencies.

// nextPow2 returns the smallest power of two ≥ n (1 for n ≤ 1).
func nextPow2(n int64) int64 {
	m := int64(1)
	for m < n {
		m <<= 1
	}
	return m
}

// bitonicSortTransfers is the exact transfer count of the bitonic sort over
// n cells: (m−n) pad writes plus four transfers per comparator, with
// m = nextPow2(n) and (m/2)·k(k+1)/2 comparators for k = log₂ m.
func bitonicSortTransfers(n int64) int64 {
	if n <= 1 {
		return 0
	}
	m := nextPow2(n)
	var k int64
	for p := m; p > 1; p >>= 1 {
		k++
	}
	comparators := (m / 2) * k * (k + 1) / 2
	return (m - n) + 4*comparators
}

// distributeTransfers is the exact transfer count of the distribution
// network over m = 2^k cells: four per routing pair, m·log₂m − (m−1) pairs.
func distributeTransfers(m int64) int64 {
	var pairs int64
	for j := m / 2; j >= 1; j >>= 1 {
		pairs += m - j
	}
	return 4 * pairs
}

// Alg7Cost is the exact transfer cost of Algorithm 7 for |A| = aN, |B| = bN
// and join size S = s, mirroring core.Join7Transfers term by term:
//
//	2n + Sort(n) + 6n                                union build, key sort, scans
//	+ 2·[2n + Sort(n) + 2t + (m−t) + Dist(m) + 2S]  per-side expansion
//	+ Sort(S) + 3S                                  B alignment and stitch
//
// with n = aN+bN, t = min(n, S), m = nextPow2(S). Unlike Algorithms 2-6 the
// device memory M never appears: the algorithm's resident state is O(1)
// cells. Asymptotically the sorts dominate: O(n log²n + S log²S) with the
// bitonic networks, versus Algorithm 5's S + ⌈S/M⌉·L for L = |A|·|B|.
func Alg7Cost(aN, bN, s int64) float64 {
	n := aN + bN
	if n == 0 {
		return 0
	}
	total := 2*n + bitonicSortTransfers(n) + 6*n
	if s == 0 {
		return float64(total)
	}
	m := nextPow2(s)
	t := n
	if s < t {
		t = s
	}
	side := 2*n + bitonicSortTransfers(n) + 2*t + (m - t) +
		distributeTransfers(m) + 2*s
	return float64(total + 2*side + bitonicSortTransfers(s) + 3*s)
}

// CrossoverN57 returns the smallest n = |A| = |B| (doubling from 2) at
// which Algorithm 7 becomes cheaper than Algorithm 5 with device memory m
// on the matched-keys workload S = n (each row joins exactly once), or 0 if
// it never does up to n = 2²⁰. Past this point the planner's "auto" mode
// flips to the sort-based join; below it the scan-based joins win on
// constants.
func CrossoverN57(m int64) int64 {
	for n := int64(2); n <= 1<<20; n <<= 1 {
		if Alg7Cost(n, n, n) < Alg5Cost(n*n, n, m) {
			return n
		}
	}
	return 0
}
