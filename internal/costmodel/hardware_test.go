package costmodel

import "testing"

func TestDeviceProfiles(t *testing.T) {
	p58, p64 := IBM4758(), IBM4764()
	if p58.MemoryBytes != 4<<20 || p64.MemoryBytes != 64<<20 {
		t.Fatal("memory sizes do not match §1.1 (4 MB / 64 MB)")
	}
	// The 4764 must be strictly faster per transfer.
	if p64.SecondsPerTransfer(64) >= p58.SecondsPerTransfer(64) {
		t.Fatal("4764 not faster than 4758")
	}
}

func TestMemoryTuples(t *testing.T) {
	p := IBM4758()
	m := p.MemoryTuples(64, 0.5)
	if m <= 0 || m > p.MemoryBytes/64 {
		t.Fatalf("MemoryTuples = %d", m)
	}
	if p.MemoryTuples(0, 0.5) != 0 || p.MemoryTuples(64, 1.0) != 0 {
		t.Fatal("degenerate inputs not handled")
	}
	// A 4758 with half its 4MB reserved holds ~32k 64-byte tuples — far
	// more than the paper's M=64/256 working sets, which model the
	// single-chip trend (§1.1).
	if m < 10_000 {
		t.Fatalf("4758 should hold >10k 64-byte tuples, got %d", m)
	}
}

func TestEstimateSecondsScalesLinearly(t *testing.T) {
	p := IBM4764()
	one := p.EstimateSeconds(1, 64)
	million := p.EstimateSeconds(1e6, 64)
	if million <= one || million/one < 0.99e6 || million/one > 1.01e6 {
		t.Fatalf("estimate not linear: %g vs %g", one, million)
	}
}

func TestEstimateTableOrdering(t *testing.T) {
	for _, profile := range []DeviceProfile{IBM4758(), IBM4764()} {
		rows := EstimateTable(profile, 64)
		if len(rows) != 3 {
			t.Fatalf("want 3 settings, got %d", len(rows))
		}
		for _, r := range rows {
			// The paper's ordering must survive the conversion to seconds.
			if !(r.SMCSec > r.Alg4Sec && r.Alg4Sec > r.Alg5Sec && r.Alg5Sec > r.Alg6Sec) {
				t.Fatalf("%s %s: ordering broken: smc=%g a4=%g a5=%g a6=%g",
					profile.Name, r.Setting.Name, r.SMCSec, r.Alg4Sec, r.Alg5Sec, r.Alg6Sec)
			}
		}
		// Algorithm 6 at setting 1 should be interactive-scale on a 4764
		// (seconds to minutes), while SMC is hours+ — the practicality gap.
		if profile.Name == "IBM 4764" {
			if rows[0].Alg6Sec > 600 {
				t.Fatalf("Alg6 estimate implausibly slow: %g s", rows[0].Alg6Sec)
			}
			if rows[0].SMCSec < 3600 {
				t.Fatalf("SMC estimate implausibly fast: %g s", rows[0].SMCSec)
			}
		}
	}
}
