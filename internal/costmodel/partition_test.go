package costmodel

import "testing"

func TestSelectPartitionCase1(t *testing.T) {
	// N > F: one A tuple, F split between B and joined tuples.
	p := SelectPartition(100, 10, 0)
	if p.FA != 1 {
		t.Fatalf("case 1 should hold one A tuple, got %d", p.FA)
	}
	if p.Gamma != 10 { // ceil(100/10)
		t.Fatalf("gamma = %d, want 10", p.Gamma)
	}
	if p.Blk != 10 { // ceil(100/10)
		t.Fatalf("blk = %d, want 10", p.Blk)
	}
	if p.FJ != p.Blk {
		t.Fatalf("F_j = %d, want blk", p.FJ)
	}
	if p.FA+p.FB+p.FJ > 10+1 {
		t.Fatalf("partition exceeds F: %+v", p)
	}
}

func TestSelectPartitionCase2(t *testing.T) {
	// N <= F: Q outer tuples with all their matches resident.
	p := SelectPartition(3, 20, 1)
	f := int64(20 + 1 - 1)
	q := f / 4 // Q(1+N) <= F with N=3
	if p.FA != q {
		t.Fatalf("F_a = %d, want Q = %d", p.FA, q)
	}
	if p.FJ != q*3 {
		t.Fatalf("F_j = %d, want QN = %d", p.FJ, q*3)
	}
	if p.Gamma != 1 {
		t.Fatalf("case 2 should scan B once, gamma = %d", p.Gamma)
	}
	if p.FA+p.FB+p.FJ != f {
		t.Fatalf("partition does not exhaust F: %+v", p)
	}
}

func TestSelectPartitionDegenerate(t *testing.T) {
	if p := SelectPartition(5, 0, 0); p.FA != 0 || p.Gamma != 0 {
		t.Fatalf("no-memory partition = %+v", p)
	}
}

func TestBlockingNeverHelps(t *testing.T) {
	// §4.4.3: "blocking A is computationally more expensive than the
	// non-blocking case" — exhaustively over feasible (K, N').
	cases := []struct{ a, b, n, m int64 }{
		{100, 100, 16, 4},
		{50, 200, 8, 4},
		{64, 64, 32, 8},
	}
	for _, tc := range cases {
		best, holds := BlockingNeverHelps(tc.a, tc.b, tc.n, tc.m, 0)
		if !holds {
			t.Errorf("blocking beat Algorithm 2 for %+v (best blocked %.0f, alg2 %.0f)",
				tc, best, Alg2Cost(tc.a, tc.b, tc.n, tc.m))
		}
	}
}

func TestBlockedCostDegenerate(t *testing.T) {
	if BlockedAlg2Cost(10, 10, 4, 0, 1) != 0 || BlockedAlg2Cost(10, 10, 4, 1, 0) != 0 {
		t.Fatal("degenerate block shapes should cost 0 (rejected)")
	}
}
