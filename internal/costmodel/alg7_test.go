package costmodel_test

import (
	"testing"

	"ppj/internal/core"
	"ppj/internal/costmodel"
)

// TestAlg7CostMatchesImplementation pins the cost model to the
// implementation's exact closed form across a grid of shapes — the model is
// a transcription, not an approximation, so equality is exact.
func TestAlg7CostMatchesImplementation(t *testing.T) {
	shapes := []struct{ aN, bN, s int64 }{
		{0, 0, 0}, {1, 1, 1}, {5, 9, 0}, {8, 12, 6}, {63, 65, 64},
		{128, 128, 128}, {100, 300, 1000}, {2048, 2048, 2048}, {30, 30, 729},
	}
	for _, sh := range shapes {
		got := costmodel.Alg7Cost(sh.aN, sh.bN, sh.s)
		want := float64(core.Join7Transfers(sh.aN, sh.bN, sh.s))
		if got != want {
			t.Errorf("Alg7Cost(%d,%d,%d) = %v, want implementation count %v", sh.aN, sh.bN, sh.s, got, want)
		}
	}
}

// TestAlg7CrossoverAgainstCh5 places Algorithm 7 on the performance map:
// on the matched-keys workload (|A| = |B| = n, S = n, L = n²) the
// scan-based Algorithms 5 and 6 win at small n on constants, and the
// sort-based Algorithm 7 wins past a crossover that must exist and be
// moderate for realistic memories — the n² scans can't keep up with
// n log²n forever.
func TestAlg7CrossoverAgainstCh5(t *testing.T) {
	const m = 2048
	cross := costmodel.CrossoverN57(m)
	if cross == 0 {
		t.Fatal("Algorithm 7 never overtakes Algorithm 5")
	}
	if cross > 1<<14 {
		t.Fatalf("crossover n=%d implausibly large for M=%d", cross, m)
	}
	// Below the crossover alg5 wins, above it alg7 wins — and keeps winning.
	small := cross / 4
	if small >= 2 {
		if costmodel.Alg7Cost(small, small, small) < costmodel.Alg5Cost(small*small, small, m) {
			t.Fatalf("alg7 already cheaper at n=%d, below reported crossover %d", small, cross)
		}
	}
	for n := cross; n <= cross*16; n <<= 1 {
		a7 := costmodel.Alg7Cost(n, n, n)
		if a5 := costmodel.Alg5Cost(n*n, n, m); a7 >= a5 {
			t.Fatalf("n=%d: alg7 %v not cheaper than alg5 %v past crossover", n, a7, a5)
		}
		if a6 := costmodel.Alg6Cost(n*n, n, m, 1e-6).Total; n >= 4*cross && a7 >= a6 {
			t.Fatalf("n=%d: alg7 %v not cheaper than alg6 %v well past crossover", n, a7, a6)
		}
	}
	// At n = 4096 the separation is the headline: alg7 under a quarter of
	// alg5's transfers (the BENCH_8 acceptance bar).
	if a7, a5 := costmodel.Alg7Cost(4096, 4096, 4096), costmodel.Alg5Cost(4096*4096, 4096, m); a7 >= 0.25*a5 {
		t.Fatalf("alg7 %v not under 25%% of alg5 %v at n=4k", a7, a5)
	}
}

// TestAlg7CrossoverAgainstAlg3 pins the Chapter 4 comparison: Algorithm 3
// is Θ(|A|·|B|) even at N=1, so Algorithm 7 overtakes it too.
func TestAlg7CrossoverAgainstAlg3(t *testing.T) {
	var crossed bool
	for n := int64(2); n <= 1<<14; n <<= 1 {
		a7 := costmodel.Alg7Cost(n, n, n)
		a3 := costmodel.Alg3Cost(n, n, 1, false)
		if crossed && a7 >= a3 {
			t.Fatalf("n=%d: alg7 %v fell back behind alg3 %v", n, a7, a3)
		}
		if a7 < a3 {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("Algorithm 7 never overtakes Algorithm 3 up to n=2^14")
	}
}
