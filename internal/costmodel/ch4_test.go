package costmodel

import (
	"math"
	"testing"
)

func TestGamma(t *testing.T) {
	cases := []struct{ n, m, want int64 }{
		{0, 10, 1}, {1, 10, 1}, {10, 10, 1}, {11, 10, 2}, {100, 10, 10}, {101, 10, 11},
	}
	for _, tc := range cases {
		if got := Gamma(tc.n, tc.m); got != tc.want {
			t.Errorf("Gamma(%d,%d) = %d, want %d", tc.n, tc.m, got, tc.want)
		}
	}
}

func TestAlg1CostSpotValue(t *testing.T) {
	// |A|=|B|=100, N=4: 100 + 2·4·100 + 2·100·100 + 2·100·100·(log₂8)²
	want := 100.0 + 800 + 20000 + 20000*9
	if got := Alg1Cost(100, 100, 4); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Alg1Cost = %g, want %g", got, want)
	}
}

func TestAlg2CostSpotValue(t *testing.T) {
	// |A|=10, |B|=20, N=8, M=3 -> γ=3: 10 + 80 + 3·200 = 690
	if got := Alg2Cost(10, 20, 8, 3); got != 690 {
		t.Fatalf("Alg2Cost = %g, want 690", got)
	}
}

func TestAlg3CostSpotValue(t *testing.T) {
	// |A|=10, |B|=16, N=2: 10 + 20 + 16·16 + 3·160 = 766; presorted drops 256.
	if got := Alg3Cost(10, 16, 2, false); got != 766 {
		t.Fatalf("Alg3Cost = %g, want 766", got)
	}
	if got := Alg3Cost(10, 16, 2, true); got != 510 {
		t.Fatalf("Alg3Cost presorted = %g, want 510", got)
	}
}

func TestAlg1VariantDominatedForSmallAlpha(t *testing.T) {
	// §4.4.2: Algorithm 1 outperforms the variant for small α = N/|B|.
	b := int64(10000)
	n := int64(10) // α = 0.001
	if Alg1Cost(b, b, n) >= Alg1VariantCost(b, b) {
		t.Fatal("Algorithm 1 should beat its variant at small α")
	}
}

func TestGamma1Alg2Dominates(t *testing.T) {
	// §4.6.1: when γ = 1, Algorithm 2 dominates both others, even comparing
	// Algorithm 2 at α=1 against the others at α=1/|B|.
	for _, b := range []int64{1000, 10000, 100000} {
		alphaMin := 1 / float64(b)
		c1, _, c3 := Ch4Costs(b, alphaMin, 1)
		_, c2worst, _ := Ch4Costs(b, 1.0, 1)
		if c2worst >= c1 || c2worst >= c3 {
			t.Fatalf("|B|=%d: Alg2 (%.3g) should dominate Alg1 (%.3g) and Alg3 (%.3g) at γ=1",
				b, c2worst, c1, c3)
		}
	}
}

func TestGeneralJoinCrossover(t *testing.T) {
	// §4.6.2: at α = 1/|B|, Algorithm 1 outperforms Algorithm 2 exactly when
	// γ > 2 + α + 2(log₂ 2α|B|)² = 2 + 1/|B| + 2 (since log₂2 = 1).
	b := int64(10000)
	alpha := 1 / float64(b)
	threshold := 2 + alpha + 2*sq(log2(2*alpha*float64(b)))
	gLow := int64(math.Floor(threshold)) // γ = 4: below or at threshold
	gHigh := gLow + 1                    // γ = 5: above
	c1, c2low, _ := Ch4Costs(b, alpha, gLow)
	_, c2high, _ := Ch4Costs(b, alpha, gHigh)
	if c1 >= c2high {
		t.Fatalf("Alg1 (%.4g) should beat Alg2 (%.4g) at γ=%d", c1, c2high, gHigh)
	}
	if c1 <= c2low {
		t.Fatalf("Alg2 (%.4g) should beat Alg1 (%.4g) at γ=%d", c2low, c1, gLow)
	}
}

func TestEquijoinAlg3BeatsAlg1(t *testing.T) {
	// §4.6.3: Algorithm 3 outperforms Algorithm 1 for any α and |B|.
	for _, b := range []int64{100, 1000, 100000} {
		for _, alpha := range []float64{1 / float64(b), 0.01, 0.5, 1} {
			c1, _, c3 := Ch4Costs(b, alpha, 10)
			if c3 >= c1 {
				t.Errorf("|B|=%d α=%g: Alg3 (%.4g) should beat Alg1 (%.4g)", b, alpha, c3, c1)
			}
		}
	}
}

func TestEquijoinAlg2Alg3Crossover(t *testing.T) {
	// §4.6.3: γ ≤ 3 -> Alg2 wins regardless of |B|; γ ≥ 4 -> Alg3 wins for
	// |B| ≥ 1 (comparing 3|B|² + |B|(log|B|)² with γ|B|²).
	for _, b := range []int64{100, 10000, 1000000} {
		alpha := 0.001
		_, c2, c3 := Ch4Costs(b, alpha, 3)
		if c2 >= c3 {
			t.Errorf("|B|=%d γ=3: Alg2 (%.4g) should beat Alg3 (%.4g)", b, c2, c3)
		}
	}
	// γ ≥ 4 with |B| large enough that (log|B|)² < |B|.
	for _, b := range []int64{1000, 100000} {
		alpha := 0.001
		_, c2, c3 := Ch4Costs(b, alpha, 4)
		if c3 >= c2 {
			t.Errorf("|B|=%d γ=4: Alg3 (%.4g) should beat Alg2 (%.4g)", b, c3, c2)
		}
	}
}

func TestWinner(t *testing.T) {
	// Figure 4.1 qualitative regions.
	if w := Winner(10000, 0.0001, 1, false); w != "Alg2" {
		t.Errorf("γ=1 winner = %s, want Alg2", w)
	}
	if w := Winner(10000, 0.0001, 1, true); w != "Alg2" {
		t.Errorf("γ=1 equijoin winner = %s, want Alg2", w)
	}
	if w := Winner(10000, 0.0001, 50, false); w != "Alg1" {
		t.Errorf("γ=50 general winner = %s, want Alg1", w)
	}
	if w := Winner(10000, 0.0001, 50, true); w != "Alg3" {
		t.Errorf("γ=50 equijoin winner = %s, want Alg3", w)
	}
}

func TestSFEOrdersOfMagnitudeSlower(t *testing.T) {
	// §4.6.5: "For low values of α, it can be seen that SFE can be orders of
	// magnitude slower."
	p := DefaultSFEParams()
	b := int64(10000)
	w := int64(64)
	n := int64(10) // low α
	sfe := SFECostBits(p, b, n, w)
	alg1 := Alg1CostBits(b, b, n, w)
	if sfe < 100*alg1 {
		t.Fatalf("SFE (%.3g bits) should be >=100x Algorithm 1 (%.3g bits)", sfe, alg1)
	}
}

func TestSFECostSpotValue(t *testing.T) {
	p := DefaultSFEParams()
	b, n, w := int64(100), int64(5), int64(8)
	want := 8*50*64*float64(b*b)*16 + 32*50*100*float64(b*w) + 2*50*50*float64(n)*100*float64(b*w)
	if got := SFECostBits(p, b, n, w); math.Abs(got-want) > 1 {
		t.Fatalf("SFECostBits = %g, want %g", got, want)
	}
}
