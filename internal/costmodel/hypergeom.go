package costmodel

import "math"

// This file implements the blemish-probability machinery of §5.3.3.
// Algorithm 6 partitions the L iTuples into random segments of size n; a
// segment "blemishes" when it yields more than M join results, forcing a
// salvage pass that may leak. x(n), the number of results among n tuples
// drawn without replacement from L containing S results, is hypergeometric
// (Eqn 5.4):
//
//	P[x(n) = k] = C(S,k)·C(L−S, n−k) / C(L,n)
//
// The probability that at least one of the L/n segments blemishes is union-
// bounded by P_M(n) = (L/n)·P[x(n) > M] (the paper's Eqn 5.5 sums k from 1;
// the tail is computed here directly and exactly over k = M+1 … min(n,S),
// in log space to survive the 10⁻⁶⁰-scale values of Figure 5.4).

// logChoose returns ln C(a, b), or -Inf outside the support.
func logChoose(a, b int64) float64 {
	if b < 0 || b > a {
		return math.Inf(-1)
	}
	la, _ := math.Lgamma(float64(a) + 1)
	lb, _ := math.Lgamma(float64(b) + 1)
	lab, _ := math.Lgamma(float64(a-b) + 1)
	return la - lb - lab
}

// LogHyperPMF returns ln P[x(n) = k] for the hypergeometric distribution
// with population L, S successes, and n draws.
func LogHyperPMF(l, s, n, k int64) float64 {
	return logChoose(s, k) + logChoose(l-s, n-k) - logChoose(l, n)
}

// TailProbGreater returns P[x(n) > m] exactly (up to float rounding),
// summing the log-space PMF with log-sum-exp.
func TailProbGreater(l, s, n, m int64) float64 {
	hi := n
	if s < hi {
		hi = s
	}
	if m >= hi {
		return 0
	}
	lo := m + 1
	if lo < 0 {
		lo = 0
	}
	// log-sum-exp over k = lo..hi.
	maxLog := math.Inf(-1)
	logs := make([]float64, 0, hi-lo+1)
	for k := lo; k <= hi; k++ {
		lp := LogHyperPMF(l, s, n, k)
		logs = append(logs, lp)
		if lp > maxLog {
			maxLog = lp
		}
	}
	if math.IsInf(maxLog, -1) {
		return 0
	}
	var sum float64
	for _, lp := range logs {
		sum += math.Exp(lp - maxLog)
	}
	p := math.Exp(maxLog) * sum
	if p > 1 {
		p = 1
	}
	return p
}

// BlemishBound returns P_M(n) = min(1, (L/n)·P[x(n) > M]), the union bound
// on the probability that any segment of a random partition blemishes.
func BlemishBound(l, s, m, n int64) float64 {
	if n <= 0 {
		return 1
	}
	tail := TailProbGreater(l, s, n, m)
	segments := float64(l) / float64(n)
	p := segments * tail
	if p > 1 {
		p = 1
	}
	return p
}

// OptimalSegment computes n*, the largest segment size n ∈ [1, L] with
// P_M(n) ≤ ε (§5.3.3; the thesis's Eqn 5.6 says "arg min", but minimising n
// is trivially n = 1 — the intent, confirmed by the monotone cost decrease
// of Figure 5.2, is the largest safe n).
//
// Special cases fall out of the tail: when S ≤ M no segment can blemish and
// n* = L; when ε = 0 and S > M, only n ≤ M gives a provably zero tail, so
// n* = M and Algorithm 6 degenerates towards Algorithm 4's behaviour.
func OptimalSegment(l, s, m int64, eps float64) int64 {
	if l <= 0 {
		return 0
	}
	ok := func(n int64) bool { return BlemishBound(l, s, m, n) <= eps }
	if ok(l) {
		return l
	}
	// n = M is always safe: a segment of M tuples yields at most M results.
	lo := m
	if lo < 1 {
		lo = 1
	}
	if lo >= l {
		return l
	}
	if !ok(lo) {
		// ε smaller than even the zero-tail regime allows (only possible
		// for ε < 0); degrade to the always-safe segment size.
		return lo
	}
	// Exponential search for the first failing size, then bisection. The
	// bound is monotone increasing in n for all practical regimes; the
	// final answer is verified with ok() either way.
	hi := lo * 2
	for hi < l && ok(hi) {
		lo = hi
		hi *= 2
	}
	if hi > l {
		hi = l
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
