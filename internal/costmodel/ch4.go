// Package costmodel evaluates the closed-form cost expressions the paper's
// performance analysis is built on: the Chapter 4 algorithm costs and their
// Figure 4.1 performance-relationship regions, the §4.6.5 secure-function-
// evaluation comparison, the Chapter 5 algorithm costs with the optimal swap
// size Δ* (Eqn 5.1) and segment size n* (Eqn 5.6), the hypergeometric
// blemish probabilities (Eqns 5.4/5.5), and the reference SMC cost (Eqn
// 5.8). Every table and figure of the evaluation sections is a rendering of
// these functions; the simulator's measured counters validate them at
// reduced scale.
package costmodel

import "math"

// log2 is the binary logarithm used throughout the paper's formulas.
func log2(x float64) float64 { return math.Log2(x) }

// Gamma computes γ = max(1, ⌈N/(M−δ)⌉), the number of passes over B that
// Algorithm 2 makes per tuple of A (§4.4.3). δ, the bookkeeping allowance,
// is taken as 0 like in the §4.6 analysis.
func Gamma(n, m int64) int64 {
	if m <= 0 {
		panic("costmodel: memory must be positive")
	}
	g := (n + m - 1) / m
	if g < 1 {
		g = 1
	}
	return g
}

// Alg1Cost is the tuple-transfer cost of Algorithm 1 (general join, small
// memory, §4.4.1): |A| + 2N|A| + 2|A||B| + 2|A||B|(log₂(2N))².
func Alg1Cost(a, b, n int64) float64 {
	af, bf, nf := float64(a), float64(b), float64(n)
	return af + 2*nf*af + 2*af*bf + 2*af*bf*sq(log2(2*nf))
}

// Alg1VariantCost is the §4.4.2 variant that sorts all |B| outputs per A
// tuple instead of using scratch rounds: |A| + 2|A||B| + |A||B|(log₂|B|)².
func Alg1VariantCost(a, b int64) float64 {
	af, bf := float64(a), float64(b)
	return af + 2*af*bf + af*bf*sq(log2(bf))
}

// Alg2Cost is the tuple-transfer cost of Algorithm 2 (general join, larger
// memory, §4.4.3): |A| + N|A| + γ|A||B|.
func Alg2Cost(a, b, n, m int64) float64 {
	af, bf, nf := float64(a), float64(b), float64(n)
	return af + nf*af + float64(Gamma(n, m))*af*bf
}

// Alg3Cost is the tuple-transfer cost of Algorithm 3 (sort-based equijoin,
// §4.5.2): |A| + |A|N + |B|(log₂|B|)² + 3|A||B|. With preSorted, the data
// providers supplied sorted relations and the oblivious sort of B is
// skipped.
func Alg3Cost(a, b, n int64, preSorted bool) float64 {
	af, bf, nf := float64(a), float64(b), float64(n)
	c := af + af*nf + 3*af*bf
	if !preSorted {
		c += bf * sq(log2(bf))
	}
	return c
}

// Ch4Costs evaluates the three §4.6 rewritten cost formulas for |A| = |B|,
// parameterised by α = N/|B| and γ = ⌈N/M⌉.
//
//	Algorithm 1: |B| + 2|B|² + 2α|B|² + 2|B|²(log₂ 2α|B|)²
//	Algorithm 2: |B| + α|B|² + γ|B|²
//	Algorithm 3: |B| + 3|B|² + α|B|² + |B|(log₂|B|)²
func Ch4Costs(b int64, alpha float64, gamma int64) (c1, c2, c3 float64) {
	bf := float64(b)
	c1 = bf + 2*bf*bf + 2*alpha*bf*bf + 2*bf*bf*sq(log2(2*alpha*bf))
	c2 = bf + alpha*bf*bf + float64(gamma)*bf*bf
	c3 = bf + 3*bf*bf + alpha*bf*bf + bf*sq(log2(bf))
	return
}

// Winner identifies the cheapest Chapter 4 algorithm for the Figure 4.1
// performance-relationship map. equijoin selects whether Algorithm 3 (which
// only handles equality predicates) participates.
func Winner(b int64, alpha float64, gamma int64, equijoin bool) string {
	c1, c2, c3 := Ch4Costs(b, alpha, gamma)
	best, name := c1, "Alg1"
	if c2 < best {
		best, name = c2, "Alg2"
	}
	if equijoin && c3 < best {
		name = "Alg3"
	}
	return name
}

// SFEParams are the secure-circuit-evaluation parameters of §4.6.5, with the
// paper's minimum practical values as defaults (k₀=64, k₁=100, l=n=50).
type SFEParams struct {
	K0 int64 // supplemental key bits k₀
	K1 int64 // oblivious-transfer security parameter k₁
	L  int64 // cheating probability exponent for P_A
	N  int64 // cheating probability exponent for P_B
}

// DefaultSFEParams returns the §4.6.5 minimums.
func DefaultSFEParams() SFEParams { return SFEParams{K0: 64, K1: 100, L: 50, N: 50} }

// SFECostBits is the §4.6.5 communication cost of secure function
// evaluation for a general join of two w-bit-tuple relations of size |B|
// with match bound N, in bits:
//
//	8·l·k₀·|B|²·Ge(w) + 32·l·k₁·(|B|·w) + 2·n·l·N·k₁·(|B|·w)
//
// with Ge(w) = 2w (the L1-norm matching circuit lower bound).
func SFECostBits(p SFEParams, b, n, w int64) float64 {
	bf, nf, wf := float64(b), float64(n), float64(w)
	ge := 2 * wf
	return 8*float64(p.L)*float64(p.K0)*bf*bf*ge +
		32*float64(p.L)*float64(p.K1)*bf*wf +
		2*float64(p.N)*float64(p.L)*nf*float64(p.K1)*bf*wf
}

// Alg1CostBits converts Algorithm 1's tuple-transfer cost to bits for the
// §4.6.5 comparison ("we multiply the cost formula for Algorithm 1 with w").
func Alg1CostBits(a, b, n, w int64) float64 {
	return Alg1Cost(a, b, n) * float64(w)
}

func sq(x float64) float64 { return x * x }
