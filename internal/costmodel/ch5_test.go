package costmodel

import (
	"math"
	"testing"
)

func TestAlg5CostSpotValues(t *testing.T) {
	// Table 5.3: Algorithm 5 matches the paper's numbers exactly.
	cases := []struct {
		l, s, m int64
		want    float64
	}{
		{640000, 6400, 64, 6400 + 100*640000},      // 6.4e7
		{640000, 6400, 256, 6400 + 25*640000},      // 1.6e7
		{2560000, 25600, 256, 25600 + 100*2560000}, // ~2.6e8
	}
	for _, tc := range cases {
		if got := Alg5Cost(tc.l, tc.s, tc.m); got != tc.want {
			t.Errorf("Alg5Cost(%d,%d,%d) = %g, want %g", tc.l, tc.s, tc.m, got, tc.want)
		}
	}
}

func TestAlg5CostEmptyResult(t *testing.T) {
	// Even S=0 requires one full scan to discover that.
	if got := Alg5Cost(1000, 0, 10); got != 1000 {
		t.Fatalf("Alg5Cost(S=0) = %g, want 1000", got)
	}
}

func TestAlg5CostDecreasesWithMemory(t *testing.T) {
	// Figure 5.1: cost falls roughly as 1/M and approaches S + L as M -> S.
	l, s := int64(640000), int64(6400)
	prev := math.Inf(1)
	for m := int64(1); m <= s; m *= 2 {
		c := Alg5Cost(l, s, m)
		if c > prev {
			t.Fatalf("cost increased at M=%d", m)
		}
		prev = c
	}
	if got, want := Alg5Cost(l, s, s), float64(l+s); got != want {
		t.Fatalf("cost at M=S is %g, want L+S = %g", got, want)
	}
}

func TestSMCCostMatchesTable53(t *testing.T) {
	p := DefaultSMCParams()
	// Paper: 1.1e10 for settings 1-2 and 4.5e10 for setting 3.
	if got := SMCCost(p, 640000, 6400); math.Abs(got/1.1e10-1) > 0.05 {
		t.Fatalf("SMC setting 1 = %.4g, want ~1.1e10", got)
	}
	if got := SMCCost(p, 2560000, 25600); math.Abs(got/4.5e10-1) > 0.05 {
		t.Fatalf("SMC setting 3 = %.4g, want ~4.5e10", got)
	}
}

func TestAlg4CostShape(t *testing.T) {
	// Table 5.3: paper reports 2.3e8 / 2.3e8 / 1.2e9. Our exact-optimal Δ
	// gives ~0.77x those magnitudes (documented in DESIGN.md); require the
	// same order of magnitude and invariance to M.
	c1 := Alg4Cost(640000, 6400)
	if c1 < 1e8 || c1 > 3e8 {
		t.Fatalf("Alg4 setting 1 = %.4g, want ~2e8", c1)
	}
	c3 := Alg4Cost(2560000, 25600)
	if c3 < 5e8 || c3 > 1.5e9 {
		t.Fatalf("Alg4 setting 3 = %.4g, want ~1e9", c3)
	}
	if c3 <= c1 {
		t.Fatal("Alg4 cost should grow with problem scale")
	}
}

func TestTable53Ordering(t *testing.T) {
	// The headline result: SMC >> Alg4 > Alg5 > Alg6, in every setting, and
	// Alg4 beats SMC by at least one order of magnitude.
	p := DefaultSMCParams()
	for _, st := range Settings() {
		smc := SMCCost(p, st.L, st.S)
		a4 := Alg4Cost(st.L, st.S)
		a5 := Alg5Cost(st.L, st.S, st.M)
		a6 := Alg6Cost(st.L, st.S, st.M, 1e-20).Total
		if !(smc > 10*a4) {
			t.Errorf("%s: SMC (%.3g) not >=10x Alg4 (%.3g)", st.Name, smc, a4)
		}
		if !(a4 > a5) {
			t.Errorf("%s: Alg4 (%.3g) not > Alg5 (%.3g)", st.Name, a4, a5)
		}
		if !(a5 > a6) {
			t.Errorf("%s: Alg5 (%.3g) not > Alg6 (%.3g)", st.Name, a5, a6)
		}
	}
}

func TestTable53CostReductionRow(t *testing.T) {
	// Last row of Table 5.3: reduction of Alg6(1e-20) vs Alg5 is 88% / 79% /
	// 93% in the paper; allow a few points of slack for our exact Δ*.
	wants := []float64{0.88, 0.79, 0.93}
	for i, st := range Settings() {
		a5 := Alg5Cost(st.L, st.S, st.M)
		a6 := Alg6Cost(st.L, st.S, st.M, 1e-20).Total
		red := 1 - a6/a5
		if math.Abs(red-wants[i]) > 0.05 {
			t.Errorf("%s: cost reduction %.3f, paper %.2f", st.Name, red, wants[i])
		}
	}
}

func TestAlg6Table53Calibration(t *testing.T) {
	// Paper values: (7.4e6, 3.4e6, 1.8e7) at eps=1e-20 and (4.6e6, 2.8e6,
	// 1.5e7) at 1e-10. Require agreement within 15%.
	want20 := []float64{7.4e6, 3.4e6, 1.8e7}
	want10 := []float64{4.6e6, 2.8e6, 1.5e7}
	for i, st := range Settings() {
		got20 := Alg6Cost(st.L, st.S, st.M, 1e-20).Total
		got10 := Alg6Cost(st.L, st.S, st.M, 1e-10).Total
		if math.Abs(got20/want20[i]-1) > 0.15 {
			t.Errorf("%s eps=1e-20: %.4g, paper %.4g", st.Name, got20, want20[i])
		}
		if math.Abs(got10/want10[i]-1) > 0.15 {
			t.Errorf("%s eps=1e-10: %.4g, paper %.4g", st.Name, got10, want10[i])
		}
	}
}

func TestAlg6CostMonotoneInEps(t *testing.T) {
	// Figure 5.2: cost decreases monotonically as eps increases.
	l, s, m := int64(640000), int64(6400), int64(64)
	prev := math.Inf(1)
	for _, eps := range []float64{1e-60, 1e-50, 1e-40, 1e-30, 1e-20, 1e-10, 1e-5} {
		c := Alg6Cost(l, s, m, eps).Total
		if c > prev {
			t.Fatalf("cost increased at eps=%g", eps)
		}
		prev = c
	}
}

func TestAlg6CostReductionDiminishes(t *testing.T) {
	// Figure 5.2 discussion: trading privacy is more profitable when eps is
	// small than when it is large.
	l, s, m := int64(640000), int64(6400), int64(64)
	dSmall := Alg6Cost(l, s, m, 1e-60).Total - Alg6Cost(l, s, m, 1e-50).Total
	dLarge := Alg6Cost(l, s, m, 1e-20).Total - Alg6Cost(l, s, m, 1e-10).Total
	if dSmall <= dLarge {
		t.Fatalf("reduction at small eps (%.3g) should exceed reduction at large eps (%.3g)",
			dSmall, dLarge)
	}
}

func TestAlg6CostMonotoneInMemoryAndCollapses(t *testing.T) {
	// Figure 5.3: cost decreases in M and collapses to L+S once M >= S.
	l, s := int64(640000), int64(6400)
	prev := math.Inf(1)
	for m := int64(16); m <= s; m *= 2 {
		c := Alg6Cost(l, s, m, 1e-20).Total
		if c > prev+1 {
			t.Fatalf("cost increased at M=%d: %g > %g", m, c, prev)
		}
		prev = c
	}
	if got, want := Alg6Cost(l, s, s, 1e-20).Total, float64(l+s); got != want {
		t.Fatalf("cost at M=S is %g, want L+S=%g", got, want)
	}
}

func TestAlg6MemorySensitivity(t *testing.T) {
	// Figure 5.4 discussion: tuning eps matters more for small M.
	l, s := int64(640000), int64(6400)
	redSmallM := Alg6Cost(l, s, 64, 1e-40).Total - Alg6Cost(l, s, 64, 1e-10).Total
	redLargeM := Alg6Cost(l, s, 256, 1e-40).Total - Alg6Cost(l, s, 256, 1e-10).Total
	if redSmallM <= redLargeM {
		t.Fatalf("eps-tuning gain at M=64 (%.3g) should exceed gain at M=256 (%.3g)",
			redSmallM, redLargeM)
	}
}

func TestOptimalDeltaPaperFixedPoint(t *testing.T) {
	// Δ* solves Δ = μ·log₂(μ+Δ)/2.
	for _, mu := range []int64{100, 6400, 25600} {
		d := OptimalDeltaPaper(mu)
		want := float64(mu) * log2(float64(mu)+d) / 2
		if math.Abs(d-want) > 1e-6*want {
			t.Errorf("mu=%d: Δ*=%g does not satisfy fixed point (%g)", mu, d, want)
		}
	}
}

func TestOptimalDeltaExactIsLocalMin(t *testing.T) {
	omega, mu := int64(640000), int64(6400)
	d := OptimalDeltaExact(omega, mu)
	c := filterCostPaper(float64(omega), float64(mu), float64(d))
	for _, dd := range []int64{d - 1, d + 1} {
		if dd >= 1 && dd <= omega-mu {
			if filterCostPaper(float64(omega), float64(mu), float64(dd)) < c {
				t.Fatalf("Δ=%d not a local minimum", d)
			}
		}
	}
	// And clearly better than naive extremes.
	for _, dd := range []int64{1, omega - mu} {
		if filterCostPaper(float64(omega), float64(mu), float64(dd)) < c {
			t.Fatalf("Δ=%d beaten by extreme Δ=%d", d, dd)
		}
	}
}

func TestFilterCostZeroWhenNothingToRemove(t *testing.T) {
	if FilterCost(100, 100) != 0 || FilterCost(50, 100) != 0 {
		t.Fatal("filter cost should be 0 when omega <= mu")
	}
}

func TestSettingsTable52(t *testing.T) {
	s := Settings()
	if len(s) != 3 {
		t.Fatalf("want 3 settings, got %d", len(s))
	}
	if s[0].L != 640000 || s[0].S != 6400 || s[0].M != 64 {
		t.Fatalf("setting 1 = %+v", s[0])
	}
	if s[1].M != 4*s[0].M {
		t.Fatal("setting 2 must have 4x the memory of setting 1")
	}
	if s[2].L != 4*s[1].L || s[2].S != 4*s[1].S || s[2].M != s[1].M {
		t.Fatal("setting 3 must scale L and S by 4 at setting 2's memory")
	}
}

func TestAlg6LargeMemoryCollapse(t *testing.T) {
	br := Alg6Cost(1000, 10, 64, 1e-20)
	if br.Total != 1010 || br.Segments != 1 || br.NStar != 1000 {
		t.Fatalf("M>=S breakdown = %+v", br)
	}
}
