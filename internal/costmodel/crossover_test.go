package costmodel

import (
	"math"
	"testing"
)

func TestCrossoverGamma12MatchesAnalyticBoundary(t *testing.T) {
	// §4.6.2: Alg1 beats Alg2 once γ > 2 + α + 2(log₂ 2α|B|)².
	for _, b := range []int64{1000, 10000, 100000} {
		for _, alpha := range []float64{1 / float64(b), 0.001, 0.01} {
			got := CrossoverGamma12(b, alpha)
			want := int64(math.Floor(2+alpha+2*sq(log2(2*alpha*float64(b))))) + 1
			if got == 0 {
				if want <= b {
					t.Errorf("|B|=%d α=%g: no crossover found, analytic says γ=%d", b, alpha, want)
				}
				continue
			}
			// The integer scan and the analytic boundary agree to ±1.
			if got < want-1 || got > want+1 {
				t.Errorf("|B|=%d α=%g: crossover γ=%d, analytic %d", b, alpha, got, want)
			}
		}
	}
}

func TestCrossoverGamma12AtMinAlphaIsFive(t *testing.T) {
	// §4.6.2's headline case: at α = 1/|B|, Algorithm 1 wins for γ > 4.
	b := int64(10000)
	if got := CrossoverGamma12(b, 1/float64(b)); got != 5 {
		t.Fatalf("crossover at α=1/|B| is γ=%d, want 5", got)
	}
}

func TestCrossoverGamma23InPaperBand(t *testing.T) {
	// §4.6.3: "When γ <= 3, Algorithm 2 outperforms Algorithm 3 regardless
	// of |B|. ... When γ >= 4, Algorithm 3 outperforms Algorithm 2 whenever
	// |B| >= 1": the crossover is always 4 for sufficiently large |B|.
	for _, b := range []int64{1000, 10000, 1000000} {
		got := CrossoverGamma23(b, 0.001)
		if got != 4 {
			t.Errorf("|B|=%d: Alg2/Alg3 crossover γ=%d, want 4", b, got)
		}
	}
}
