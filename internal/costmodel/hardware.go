package costmodel

// The thesis's final future-work item wishes for measurements on real IBM
// coprocessors ("It would be interesting to implement our algorithms on an
// IBM secure coprocessor and study the real performance"). This file
// provides the next best thing: device profiles for the two coprocessors
// the paper names (§1.1) that translate tuple-transfer counts into
// estimated wall-clock time, so the Table 5.3 columns can be read in
// seconds as well as transfers.
//
// Every transfer between T and H moves one tuple across the PCI(-X) bus
// and encrypts or decrypts it (§4.3 "the number of transfers between the
// coprocessor and server also reflects the total number of encryption and
// decryption operations"). The estimate charges each transfer
//
//	tupleBytes/BusBytesPerSec + tupleBytes/AESBytesPerSec + PerOpOverhead
//
// with throughput figures from the devices' public data sheets; they are
// deliberately round numbers — the point is relative magnitude, not
// calibration.

// DeviceProfile characterises a secure coprocessor generation.
type DeviceProfile struct {
	Name string
	// MemoryBytes is the device's protected memory.
	MemoryBytes int64
	// BusBytesPerSec is the host-device transfer bandwidth.
	BusBytesPerSec float64
	// AESBytesPerSec is the symmetric crypto throughput.
	AESBytesPerSec float64
	// PerOpOverheadSec is the fixed cost of one transfer (driver, DMA
	// setup, OCB bookkeeping).
	PerOpOverheadSec float64
}

// IBM4758 is the first-generation profile (§1.1: 4 MB memory; 99 MHz 486
// class CPU, DES-era crypto engine retrofitted for AES-class throughput).
func IBM4758() DeviceProfile {
	return DeviceProfile{
		Name:             "IBM 4758",
		MemoryBytes:      4 << 20,
		BusBytesPerSec:   30e6, // 32-bit PCI, practical
		AESBytesPerSec:   20e6,
		PerOpOverheadSec: 3e-6,
	}
}

// IBM4764 is the second-generation profile (§1.1: 64 MB memory, PCI-X).
func IBM4764() DeviceProfile {
	return DeviceProfile{
		Name:             "IBM 4764",
		MemoryBytes:      64 << 20,
		BusBytesPerSec:   200e6,
		AESBytesPerSec:   100e6,
		PerOpOverheadSec: 1e-6,
	}
}

// MemoryTuples is the M the device supports for a given tuple size,
// reserving reserveFrac of memory for code and bookkeeping (the paper's δ
// and the firmware footprint).
func (p DeviceProfile) MemoryTuples(tupleBytes int64, reserveFrac float64) int64 {
	usable := float64(p.MemoryBytes) * (1 - reserveFrac)
	if usable <= 0 || tupleBytes <= 0 {
		return 0
	}
	return int64(usable) / tupleBytes
}

// SecondsPerTransfer estimates the wall-clock cost of moving and
// (de/en)crypting one tuple.
func (p DeviceProfile) SecondsPerTransfer(tupleBytes int64) float64 {
	b := float64(tupleBytes)
	return b/p.BusBytesPerSec + b/p.AESBytesPerSec + p.PerOpOverheadSec
}

// EstimateSeconds converts a transfer count into estimated wall-clock time.
func (p DeviceProfile) EstimateSeconds(transfers float64, tupleBytes int64) float64 {
	return transfers * p.SecondsPerTransfer(tupleBytes)
}

// Estimate bundles the Table 5.3 rows with wall-clock estimates for one
// device profile and tuple size.
type Estimate struct {
	Setting  Setting
	Profile  string
	Alg4Sec  float64
	Alg5Sec  float64
	Alg6Sec  float64 // at eps = 1e-20
	SMCSec   float64 // same per-byte cost applied to Eqn 5.8's tuple count
	TupleLen int64
}

// EstimateTable evaluates all settings under a profile.
func EstimateTable(p DeviceProfile, tupleBytes int64) []Estimate {
	out := make([]Estimate, 0, 3)
	for _, st := range Settings() {
		out = append(out, Estimate{
			Setting:  st,
			Profile:  p.Name,
			TupleLen: tupleBytes,
			Alg4Sec:  p.EstimateSeconds(Alg4Cost(st.L, st.S), tupleBytes),
			Alg5Sec:  p.EstimateSeconds(Alg5Cost(st.L, st.S, st.M), tupleBytes),
			Alg6Sec:  p.EstimateSeconds(Alg6Cost(st.L, st.S, st.M, 1e-20).Total, tupleBytes),
			SMCSec:   p.EstimateSeconds(SMCCost(DefaultSMCParams(), st.L, st.S), tupleBytes),
		})
	}
	return out
}
