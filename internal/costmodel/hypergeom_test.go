package costmodel

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

// exactHyperTail computes P[x > m] with big rationals for cross-validation.
func exactHyperTail(l, s, n, m int64) float64 {
	choose := func(a, b int64) *big.Rat {
		if b < 0 || b > a {
			return new(big.Rat)
		}
		return new(big.Rat).SetInt(new(big.Int).Binomial(a, b))
	}
	total := choose(l, n)
	sum := new(big.Rat)
	hi := n
	if s < hi {
		hi = s
	}
	for k := m + 1; k <= hi; k++ {
		term := new(big.Rat).Mul(choose(s, k), choose(l-s, n-k))
		sum.Add(sum, term)
	}
	if total.Sign() == 0 {
		return 0
	}
	sum.Quo(sum, total)
	f, _ := sum.Float64()
	return f
}

func TestLogHyperPMFSumsToOne(t *testing.T) {
	for _, tc := range []struct{ l, s, n int64 }{
		{20, 5, 7}, {50, 10, 20}, {100, 3, 99}, {10, 10, 5},
	} {
		var sum float64
		for k := int64(0); k <= tc.n; k++ {
			sum += math.Exp(LogHyperPMF(tc.l, tc.s, tc.n, k))
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("L=%d S=%d n=%d: PMF sums to %g", tc.l, tc.s, tc.n, sum)
		}
	}
}

func TestTailProbMatchesExact(t *testing.T) {
	for _, tc := range []struct{ l, s, n, m int64 }{
		{100, 20, 30, 5}, {100, 20, 30, 0}, {100, 20, 30, 19},
		{1000, 50, 100, 10}, {64, 8, 8, 2},
	} {
		got := TailProbGreater(tc.l, tc.s, tc.n, tc.m)
		want := exactHyperTail(tc.l, tc.s, tc.n, tc.m)
		rel := math.Abs(got - want)
		if want != 0 {
			rel /= want
		}
		if rel > 1e-8 {
			t.Errorf("Tail(L=%d,S=%d,n=%d,m=%d) = %g, want %g", tc.l, tc.s, tc.n, tc.m, got, want)
		}
	}
}

func TestTailProbZeroCases(t *testing.T) {
	// x(n) <= min(n, S): tails past the support are exactly zero.
	if TailProbGreater(100, 5, 50, 5) != 0 {
		t.Error("tail beyond S not zero")
	}
	if TailProbGreater(100, 50, 5, 5) != 0 {
		t.Error("tail beyond n not zero")
	}
}

func TestTailProbMonotoneInN(t *testing.T) {
	// More draws -> stochastically more successes.
	prev := 0.0
	for n := int64(10); n <= 200; n += 10 {
		p := TailProbGreater(1000, 100, n, 5)
		if p+1e-15 < prev {
			t.Fatalf("tail decreased at n=%d: %g < %g", n, p, prev)
		}
		prev = p
	}
}

func TestBlemishBoundEdges(t *testing.T) {
	if BlemishBound(1000, 100, 10, 0) != 1 {
		t.Error("n=0 should return 1")
	}
	if got := BlemishBound(1000, 5, 10, 500); got != 0 {
		t.Errorf("S<=M should give 0, got %g", got)
	}
	if got := BlemishBound(10, 10, 1, 10); got != 1 {
		t.Errorf("certain blemish should clamp to 1, got %g", got)
	}
}

func TestOptimalSegmentProperties(t *testing.T) {
	l, s, m := int64(640000), int64(6400), int64(64)
	for _, eps := range []float64{1e-60, 1e-20, 1e-10, 1e-5} {
		n := OptimalSegment(l, s, m, eps)
		if n < m || n > l {
			t.Fatalf("eps=%g: n*=%d out of range", eps, n)
		}
		if p := BlemishBound(l, s, m, n); p > eps {
			t.Fatalf("eps=%g: P_M(n*=%d) = %g > eps", eps, n, p)
		}
		if n < l {
			if p := BlemishBound(l, s, m, n+1); p <= eps {
				t.Fatalf("eps=%g: n*=%d not maximal (n*+1 also satisfies)", eps, n)
			}
		}
	}
}

func TestOptimalSegmentMonotoneInEps(t *testing.T) {
	l, s, m := int64(640000), int64(6400), int64(64)
	prev := int64(0)
	for _, eps := range []float64{1e-60, 1e-40, 1e-20, 1e-10, 1e-5} {
		n := OptimalSegment(l, s, m, eps)
		if n < prev {
			t.Fatalf("n* not monotone in eps: %d after %d", n, prev)
		}
		prev = n
	}
}

func TestOptimalSegmentSpecialCases(t *testing.T) {
	// S <= M: no segment can blemish, n* = L.
	if n := OptimalSegment(1000, 10, 64, 0); n != 1000 {
		t.Errorf("S<=M: n* = %d, want L", n)
	}
	// eps = 0, S > M: only n <= M has provably zero blemish.
	if n := OptimalSegment(1000, 100, 8, 0); n != 8 {
		t.Errorf("eps=0: n* = %d, want M", n)
	}
	if n := OptimalSegment(0, 0, 4, 0.5); n != 0 {
		t.Errorf("L=0: n* = %d, want 0", n)
	}
}

func TestOptimalSegmentSetting1Calibration(t *testing.T) {
	// Regression pin for the Figure 5.2/5.4 regeneration: setting 1 at
	// eps=1e-20 yields n* ~ 1.4k (computed value 1414).
	n := OptimalSegment(640000, 6400, 64, 1e-20)
	if n < 1200 || n > 1700 {
		t.Fatalf("setting-1 n* = %d, outside expected band [1200,1700]", n)
	}
}

func TestBlemishBoundProperty(t *testing.T) {
	f := func(lRaw, sRaw, mRaw, nRaw uint16) bool {
		l := int64(lRaw)%500 + 2
		s := int64(sRaw) % l
		m := int64(mRaw)%20 + 1
		n := int64(nRaw)%l + 1
		p := BlemishBound(l, s, m, n)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
