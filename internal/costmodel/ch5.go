package costmodel

import "math"

// filterCostPaper is the §5.2.2 repeated-oblivious-sort cost of keeping μ
// targets out of ω elements with swap size Δ, in element transfers:
//
//	4·C(ω,μ)(Δ) = (ω−μ)/Δ · (μ+Δ)·[log₂(μ+Δ)]²
//
// evaluated as the paper writes it (a continuous approximation of the
// integer round count).
func filterCostPaper(omega, mu float64, delta float64) float64 {
	if omega <= mu {
		return 0
	}
	return (omega - mu) / delta * (mu + delta) * sq(log2(mu+delta))
}

// OptimalDeltaPaper solves the paper's stationarity condition for Δ*
// (Eqn 5.1, §5.2.2): Δ* is "the first quadrant intersection point of the
// two curves Δ/μ and log₂(μ+Δ)/2", i.e. Δ = μ·log₂(μ+Δ)/2, which does not
// depend on ω. (The derivation drops a ln 2 factor; OptimalDeltaExact below
// minimises the true cost. Both are exposed so the paper's numbers can be
// reproduced either way.)
func OptimalDeltaPaper(mu int64) float64 {
	if mu <= 0 {
		return 1
	}
	muF := float64(mu)
	d := muF // initial guess
	for i := 0; i < 100; i++ {
		next := muF * log2(muF+d) / 2
		if math.Abs(next-d) < 1e-9*math.Max(1, d) {
			return next
		}
		d = next
	}
	return d
}

// OptimalDeltaExact finds the integer Δ ∈ [1, ω−μ] minimising the paper's
// filter cost expression. The cost is unimodal in Δ; a ternary search over
// the integers finds the argmin, clamped so a single full sort (Δ = ω−μ)
// is considered.
func OptimalDeltaExact(omega, mu int64) int64 {
	if omega <= mu+1 {
		return 1
	}
	lo, hi := int64(1), omega-mu
	cost := func(d int64) float64 { return filterCostPaper(float64(omega), float64(mu), float64(d)) }
	for hi-lo > 2 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if cost(m1) < cost(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	best := lo
	for d := lo + 1; d <= hi; d++ {
		if cost(d) < cost(best) {
			best = d
		}
	}
	return best
}

// FilterCost evaluates the §5.2.2 decoy-removal cost with the exact-optimal
// swap size.
func FilterCost(omega, mu int64) float64 {
	if omega <= mu {
		return 0
	}
	d := OptimalDeltaExact(omega, mu)
	return filterCostPaper(float64(omega), float64(mu), float64(d))
}

// Alg4Cost is Eqn 5.2, the communication cost of Algorithm 4 (small
// memory): 2L + (L−S)/Δ* · (S+Δ*)[log₂(S+Δ*)]².
func Alg4Cost(l, s int64) float64 {
	return 2*float64(l) + FilterCost(l, s)
}

// Alg5Cost is Eqn 5.3, the communication cost of Algorithm 5 (large
// memory): S + ⌈S/M⌉·L.
func Alg5Cost(l, s, m int64) float64 {
	if m <= 0 {
		panic("costmodel: memory must be positive")
	}
	scans := (s + m - 1) / m
	if scans < 1 {
		scans = 1 // even an empty result requires one scan to discover it
	}
	return float64(s) + float64(scans)*float64(l)
}

// Alg6Breakdown carries the components of Algorithm 6's cost (Eqn 5.7) so
// the figures can report them separately.
type Alg6Breakdown struct {
	NStar    int64   // optimal segment size n*
	Segments int64   // ⌈L/n*⌉
	Read     float64 // 2L (screening pass + processing pass)
	Write    float64 // ⌈L/n*⌉·M oTuples flushed
	Filter   float64 // oblivious decoy removal of the flushed list
	Total    float64
}

// Alg6Cost evaluates Eqn 5.7, the communication cost of Algorithm 6 at
// privacy level 1−ε:
//
//	2L + ⌈L/n*⌉·M + ((⌈L/n*⌉·M − S)/Δ*)·(S+Δ*)[log₂(S+Δ*)]²
//
// (The thesis's Eqn 5.7 prints the last factor with an unsquared logarithm;
// the squared form is the one consistent with §5.2.2 and with the Table 5.3
// magnitudes, and is used here.) When M ≥ S a single screening pass suffices
// and the cost collapses to the minimum L + S (§5.3.3).
func Alg6Cost(l, s, m int64, eps float64) Alg6Breakdown {
	if m >= s {
		return Alg6Breakdown{
			NStar:    l,
			Segments: 1,
			Read:     float64(l),
			Write:    float64(s),
			Total:    float64(l) + float64(s),
		}
	}
	nStar := OptimalSegment(l, s, m, eps)
	if nStar < 1 {
		nStar = 1
	}
	segments := (l + nStar - 1) / nStar
	omega := segments * int64(m)
	br := Alg6Breakdown{
		NStar:    nStar,
		Segments: segments,
		Read:     2 * float64(l),
		Write:    float64(omega),
		Filter:   FilterCost(omega, s),
	}
	br.Total = br.Read + br.Write + br.Filter
	return br
}

// SMCParams are the Eqn 5.8 parameters for the reference secure multi-party
// computation (Fairplay-style) comparator, with §5.4's values as defaults.
type SMCParams struct {
	Kappa0 int64 // κ₀ = 64
	Kappa1 int64 // κ₁ = 100
	Xi1    int64 // ξ₁: privacy-level repetitions (67 for 1−10⁻²⁰)
	Xi2    int64 // ξ₂
	W      int64 // ϖ: tuple width (1 when costs are counted in tuples)
}

// DefaultSMCParams returns the §5.4 setting (privacy level 1−10⁻²⁰).
func DefaultSMCParams() SMCParams {
	return SMCParams{Kappa0: 64, Kappa1: 100, Xi1: 67, Xi2: 67, W: 1}
}

// SMCCost evaluates Eqn 5.8, the communication cost of the reference SMC
// algorithm for joining two equal-size databases whose cartesian product has
// L tuples and whose join has S results:
//
//	ξ₁κ₀·L·Ge(ϖ) + 32·ξ₁κ₁·(ϖ√L) + 2·ξ₂ξ₁κ₁·(Sϖ)
//
// with Ge(ϖ) = 2ϖ. (√L = |B| for two equal-size inputs.)
func SMCCost(p SMCParams, l, s int64) float64 {
	lf, sf, wf := float64(l), float64(s), float64(p.W)
	ge := 2 * wf
	return float64(p.Xi1)*float64(p.Kappa0)*lf*ge +
		32*float64(p.Xi1)*float64(p.Kappa1)*wf*math.Sqrt(lf) +
		2*float64(p.Xi2)*float64(p.Xi1)*float64(p.Kappa1)*sf*wf
}

// Setting is one column of Table 5.2.
type Setting struct {
	Name string
	L    int64 // |D|, cartesian product size
	S    int64 // join result size
	M    int64 // coprocessor memory in tuples
}

// Settings returns the three L/S/M settings of Table 5.2.
func Settings() []Setting {
	return []Setting{
		{Name: "setting 1", L: 640_000, S: 6_400, M: 64},
		{Name: "setting 2", L: 640_000, S: 6_400, M: 256},
		{Name: "setting 3", L: 2_560_000, S: 25_600, M: 256},
	}
}
