package costmodel

// Exact crossover solvers for the Figure 4.1 performance-relationship map:
// the paper states the boundaries qualitatively (§4.6.2-§4.6.3); these
// functions compute them numerically so the region map's edges can be
// plotted and the claims tested at any parameter point.

// CrossoverGamma12 returns the smallest integer γ at which Algorithm 1
// becomes cheaper than Algorithm 2 for |A| = |B| = b and the given
// α = N/|B| (0 if Algorithm 1 never wins up to γ = |B|). The analytic
// boundary is γ > 2 + α + 2(log₂ 2α|B|)².
func CrossoverGamma12(b int64, alpha float64) int64 {
	for gamma := int64(1); gamma <= b; gamma++ {
		c1, c2, _ := Ch4Costs(b, alpha, gamma)
		if c1 < c2 {
			return gamma
		}
	}
	return 0
}

// CrossoverGamma23 returns the smallest integer γ at which Algorithm 3
// becomes cheaper than Algorithm 2 for |A| = |B| = b and the given α
// (0 if never up to γ = |B|). The paper shows this lands between γ = 3 and
// γ = 4 for large |B| (§4.6.3).
func CrossoverGamma23(b int64, alpha float64) int64 {
	for gamma := int64(1); gamma <= b; gamma++ {
		_, c2, c3 := Ch4Costs(b, alpha, gamma)
		if c3 < c2 {
			return gamma
		}
	}
	return 0
}
