package costmodel

// This file implements the §4.4.3 "Parameter Selection" analysis for
// Algorithm 2: how to split T's free memory F = M + 1 − δ between input
// tuples and result tuples, and why blocking the outer relation A never
// helps ("Understanding Blocking of A").

// MemoryPartition is a division of T's free memory for Algorithm 2.
type MemoryPartition struct {
	// FA, FB and FJ are the tuple counts reserved for A tuples, B tuples
	// and joined tuples (the paper's F_a, F_b, F_j).
	FA, FB, FJ int64
	// Gamma is the resulting number of passes over B per outer unit.
	Gamma int64
	// Blk is the number of joined tuples emitted per pass.
	Blk int64
}

// SelectPartition computes the §4.4.3 memory split for match bound N,
// memory M and bookkeeping allowance δ.
//
// Case 1 (N > F): blocking A does not help, so one A tuple is held and F
// is split between B tuples and joined tuples: blk = ⌈N/γ⌉ with
// γ = ⌈N/(M−δ)⌉, F_j = blk, F_b = M−δ−blk.
//
// Case 2 (N ≤ F): one scan of B per outer block suffices; Q is the largest
// integer with Q(1+N) ≤ F, and the split is F_a = Q, F_j = QN,
// F_b = F − Q(1+N).
func SelectPartition(n, m, delta int64) MemoryPartition {
	f := m + 1 - delta
	if f < 2 {
		return MemoryPartition{}
	}
	if n > f {
		usable := m - delta
		gamma := (n + usable - 1) / usable
		blk := (n + gamma - 1) / gamma
		return MemoryPartition{
			FA:    1,
			FB:    usable - blk,
			FJ:    blk,
			Gamma: gamma,
			Blk:   blk,
		}
	}
	q := f / (1 + n)
	if q < 1 {
		q = 1
	}
	return MemoryPartition{
		FA:    q,
		FB:    f - q*(1+n),
		FJ:    q * n,
		Gamma: 1,
		Blk:   n,
	}
}

// BlockedAlg2Cost is the §4.4.3 cost of the blocked variant that reads A in
// blocks of K tuples, reserving room for N' < N joined tuples per block
// member: ⌈|A|/K⌉·⌈N/N'⌉·|B| B-tuple transfers (plus the unchanged A reads
// and output writes). The section shows the non-blocking Algorithm 2 always
// does at least as well because KN' < M forces ⌈|A|/K⌉⌈N/N'⌉ ≥ |A|·γ/1.
func BlockedAlg2Cost(a, b, n, k, nPrime int64) float64 {
	if k < 1 || nPrime < 1 {
		return 0
	}
	blocks := (a + k - 1) / k
	passes := (n + nPrime - 1) / nPrime
	return float64(a) + float64(blocks*passes)*float64(b) + float64(n*a)
}

// BlockingNeverHelps checks §4.4.3's claim for a concrete configuration:
// for every feasible (K, N') with K·N' ≤ M−δ, the blocked cost is at least
// Algorithm 2's. It returns the best blocked cost found and whether the
// claim held.
func BlockingNeverHelps(a, b, n, m, delta int64) (bestBlocked float64, holds bool) {
	base := Alg2Cost(a, b, n, m)
	usable := m - delta
	holds = true
	bestBlocked = -1
	for k := int64(1); k <= usable; k++ {
		for nPrime := int64(1); k*nPrime <= usable; nPrime++ {
			c := BlockedAlg2Cost(a, b, n, k, nPrime)
			if bestBlocked < 0 || c < bestBlocked {
				bestBlocked = c
			}
			if c < base {
				holds = false
			}
		}
	}
	return bestBlocked, holds
}
