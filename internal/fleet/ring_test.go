package fleet

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomIDs draws contract IDs shaped like real tenant names: a word-ish
// prefix plus a serial, seeded so every run sees the same set.
func randomIDs(rng *rand.Rand, n int) []string {
	prefixes := []string{"contract", "tenant", "join", "acme", "hospital", "census"}
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("%s-%d-%08x", prefixes[rng.Intn(len(prefixes))], i, rng.Uint32())
	}
	return ids
}

// TestRingBalance pins the load split: over random contract-ID sets, no
// shard owns more than 2x the mean. The bound is what makes QueueDepth
// sizing per shard meaningful — a fleet whose ring could concentrate keys
// on one shard would turn spillover from a relief valve into the norm.
func TestRingBalance(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			ring := NewRing(n, 0)
			rng := rand.New(rand.NewSource(int64(1000 + n)))
			counts := make([]int, n)
			for _, id := range randomIDs(rng, keys) {
				counts[ring.Owner(id)]++
			}
			mean := float64(keys) / float64(n)
			for shard, c := range counts {
				if float64(c) > 2*mean {
					t.Errorf("shard %d owns %d keys, over 2x the mean %.0f (counts %v)", shard, c, mean, counts)
				}
				if c == 0 {
					t.Errorf("shard %d owns no keys (counts %v)", shard, counts)
				}
			}
		})
	}
}

// TestRingRemovalRemap pins the consistency property: deleting one shard
// moves only the keys that shard owned — every other key keeps its owner
// exactly — and the moved fraction is ~1/N, not a full reshuffle. This is
// what lets a fleet lose a host without re-routing (and so re-exposing the
// access patterns of) the surviving shards' contracts.
func TestRingRemovalRemap(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			full := NewRing(n, 0)
			rng := rand.New(rand.NewSource(int64(2000 + n)))
			ids := randomIDs(rng, keys)
			removed := n / 2
			remaining := make([]int, 0, n-1)
			for i := 0; i < n; i++ {
				if i != removed {
					remaining = append(remaining, i)
				}
			}
			partial := newRingIDs(remaining, 0)

			moved := 0
			for _, id := range ids {
				before, after := full.Owner(id), partial.Owner(id)
				if before == removed {
					moved++
					if after == removed {
						t.Fatalf("key %q still maps to removed shard %d", id, removed)
					}
					continue
				}
				if after != before {
					t.Fatalf("key %q not owned by removed shard moved %d -> %d", id, before, after)
				}
			}
			frac := float64(moved) / float64(keys)
			lo, hi := 1/(2*float64(n)), 2/float64(n)
			if frac < lo || frac > hi {
				t.Errorf("removing shard %d remapped %.3f of keys, want within [%.3f, %.3f] (~1/%d)", removed, frac, lo, hi, n)
			}
		})
	}
}

// TestRingDeterminism pins that ring construction is a pure function of
// (shard set, replicas): a restarted router must route recovered contracts
// exactly as its predecessor did.
func TestRingDeterminism(t *testing.T) {
	a, b := NewRing(5, 0), NewRing(5, 0)
	rng := rand.New(rand.NewSource(3000))
	for _, id := range randomIDs(rng, 2000) {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("two rings over the same shard set disagree on %q", id)
		}
	}
}
