package fleet

import (
	"context"
	"crypto/ed25519"
	"errors"
	"net"
	"sync"
	"testing"

	"ppj/internal/relation"
	"ppj/internal/server"
	"ppj/internal/service"
)

// runTCP drives a whole client group against a fleet address: two provider
// uploads and one recipient receive, all concurrent, pinned to the admitting
// shard's device key.
func runTCP(t *testing.T, g *group, addr string, deviceKey ed25519.PublicKey) (*relation.Relation, error) {
	t.Helper()
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		result  *relation.Relation
		firstEr error
	)
	record := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstEr == nil {
			firstEr = err
		}
	}
	provide := func(p testParty, rel *relation.Relation) {
		defer wg.Done()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			record(err)
			return
		}
		defer conn.Close()
		cs, err := g.client(p, deviceKey).ConnectContract(conn, service.RoleProvider, g.contract.ID)
		if err == nil {
			err = cs.SubmitRelation(g.contract.ID, rel)
		}
		record(err)
	}
	wg.Add(3)
	go provide(g.provA, g.relA)
	go provide(g.provB, g.relB)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			record(err)
			return
		}
		defer conn.Close()
		cs, err := g.client(g.recip, deviceKey).ConnectContract(conn, service.RoleRecipient, g.contract.ID)
		if err != nil {
			record(err)
			return
		}
		res, err := cs.ReceiveResult()
		mu.Lock()
		result = res
		mu.Unlock()
		record(err)
	}()
	wg.Wait()
	return result, firstEr
}

// TestFleetEndToEndTCP is the sharded acceptance scenario: a three-shard
// fleet behind one listener, one contract pinned to each shard plus a
// fourth landing wherever the ring puts it, all driven concurrently over
// TCP. Every recipient gets the reference join from its own shard's device,
// no registration spills, and the fleet snapshot is consistent with the
// per-shard ones.
func TestFleetEndToEndTCP(t *testing.T) {
	rt, err := New(Config{Config: server.Config{Shards: 3, Workers: 1, QueueDepth: 8, Memory: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", rt.NumShards())
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- rt.Serve(ln) }()

	algs := []string{"alg3", "alg5", "auto"}
	groups := make([]*group, 0, 4)
	for i := 0; i < 3; i++ {
		id := idOwnedBy(t, rt.ring, i, "e2e")
		groups = append(groups, newGroup(t, id, algs[i], uint64(2*i+1), uint64(2*i+2), 8+i, 9+i))
	}
	groups = append(groups, newGroup(t, "e2e-extra", "alg3", 11, 12, 7, 7))

	jobs := make([]*server.Job, len(groups))
	keys := make([]ed25519.PublicKey, len(groups))
	for i, g := range groups {
		jobs[i], err = rt.Register(g.contract)
		if err != nil {
			t.Fatal(err)
		}
		shard, sh, err := rt.ShardFor(g.contract.ID)
		if err != nil {
			t.Fatal(err)
		}
		if want := rt.Owner(g.contract.ID); shard != want {
			t.Fatalf("contract %q admitted on shard %d, ring owner is %d (no spill expected)", g.contract.ID, shard, want)
		}
		keys[i] = sh.Device().DeviceKey()
	}

	var wg sync.WaitGroup
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g *group) {
			defer wg.Done()
			result, err := runTCP(t, g, ln.Addr().String(), keys[i])
			if err != nil {
				t.Errorf("%s: %v", g.contract.ID, err)
				return
			}
			assertSameRows(t, result, g.wantJoin(), g.contract.ID)
		}(i, g)
	}
	wg.Wait()
	for i, j := range jobs {
		waitDone(t, j)
		if j.State() != server.StateDelivered {
			t.Errorf("%s: state %s, want delivered", groups[i].contract.ID, j.State())
		}
	}

	snap := rt.MetricsSnapshot()
	if snap.Fleet.Submitted != uint64(len(groups)) {
		t.Errorf("fleet submitted = %d, want %d", snap.Fleet.Submitted, len(groups))
	}
	if snap.Spills != 0 {
		t.Errorf("spills = %d, want 0", snap.Spills)
	}
	if snap.Fleet.Jobs["delivered"] != int64(len(groups)) {
		t.Errorf("fleet delivered gauge = %d, want %d", snap.Fleet.Jobs["delivered"], len(groups))
	}
	var perShardSubmitted uint64
	for _, ps := range snap.PerShard {
		perShardSubmitted += ps.Submitted
		var gauges int64
		for _, n := range ps.Jobs {
			gauges += n
		}
		if uint64(gauges) != ps.Submitted {
			t.Errorf("shard %d: state gauges sum to %d, submitted %d", ps.Shard, gauges, ps.Submitted)
		}
		if ps.Submitted == 0 {
			t.Errorf("shard %d served no jobs; want every shard loaded", ps.Shard)
		}
	}
	if perShardSubmitted != snap.Fleet.Submitted {
		t.Errorf("per-shard submitted sums to %d, fleet says %d", perShardSubmitted, snap.Fleet.Submitted)
	}

	if err := rt.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ln.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestSpilloverOnFullShard pins the relief valve end to end: a full ring
// owner refuses at registration time (side-effect free), the contract is
// admitted by the shard with headroom, sessions follow the directory to the
// admitting shard, and — once the whole fleet is saturated — the tenant
// finally sees ErrQueueFull with the failed reservation rolled back. The
// per-shard gauge invariant (sum of state gauges == submitted) must hold
// throughout: a spilled registration leaves no trace on the shard that
// refused it.
func TestSpilloverOnFullShard(t *testing.T) {
	// Workers are not started until the spill assertions are done, so
	// uploaded jobs park in the ready queue and hold it at capacity.
	rt, err := New(Config{Config: server.Config{Shards: 2, Workers: 1, QueueDepth: 1, Memory: 16}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background())

	// Fill shard 0: one contract it owns, fully ready (both uploads in and
	// the recipient parked) so the job sits in the queue.
	g1 := newGroupRels(t, idOwnedBy(t, rt.ring, 0, "fill"), "alg3",
		relation.GenKeyed(relation.NewRand(21), 6, 5), relation.GenKeyed(relation.NewRand(22), 6, 5))
	j1, err := rt.Register(g1.contract)
	if err != nil {
		t.Fatal(err)
	}
	key0 := rt.Shard(0).Device().DeviceKey()
	if err := g1.pipeProvider(rt.HandleConn, key0, g1.provA, g1.relA); err != nil {
		t.Fatal(err)
	}
	if err := g1.pipeProvider(rt.HandleConn, key0, g1.provB, g1.relB); err != nil {
		t.Fatal(err)
	}
	out1 := g1.pipeRecipient(rt.HandleConn, key0)
	waitQueueFull(t, rt.Shard(0))

	// A second contract owned by shard 0 must spill to shard 1.
	g2 := newGroupRels(t, idOwnedBy(t, rt.ring, 0, "spill"), "alg3",
		relation.GenKeyed(relation.NewRand(23), 5, 5), relation.GenKeyed(relation.NewRand(24), 7, 5))
	j2, err := rt.Register(g2.contract)
	if err != nil {
		t.Fatalf("spillover registration failed: %v", err)
	}
	if rt.Owner(g2.contract.ID) != 0 {
		t.Fatalf("test setup: %q should be owned by shard 0", g2.contract.ID)
	}
	shard, _, err := rt.ShardFor(g2.contract.ID)
	if err != nil {
		t.Fatal(err)
	}
	if shard != 1 {
		t.Fatalf("spilled contract admitted on shard %d, want 1", shard)
	}
	if s := rt.MetricsSnapshot(); s.Spills != 1 {
		t.Fatalf("spills = %d, want 1", s.Spills)
	}

	// Saturate shard 1 too, then a third registration must surface
	// ErrQueueFull to the tenant.
	key1 := rt.Shard(1).Device().DeviceKey()
	if err := g2.pipeProvider(rt.HandleConn, key1, g2.provA, g2.relA); err != nil {
		t.Fatal(err)
	}
	if err := g2.pipeProvider(rt.HandleConn, key1, g2.provB, g2.relB); err != nil {
		t.Fatal(err)
	}
	out2 := g2.pipeRecipient(rt.HandleConn, key1)
	waitQueueFull(t, rt.Shard(1))
	g3 := newGroupRels(t, idOwnedBy(t, rt.ring, 0, "reject"), "alg3",
		relation.GenKeyed(relation.NewRand(25), 4, 5), relation.GenKeyed(relation.NewRand(26), 4, 5))
	if _, err := rt.Register(g3.contract); !errors.Is(err, server.ErrQueueFull) {
		t.Fatalf("fleet-wide saturation: got %v, want ErrQueueFull", err)
	}
	if _, _, err := rt.ShardFor(g3.contract.ID); !errors.Is(err, server.ErrUnknownContract) {
		t.Fatalf("failed registration left a directory entry: %v", err)
	}

	// Gauge invariant across the spill, before anything runs.
	for _, ps := range rt.MetricsSnapshot().PerShard {
		var gauges int64
		for _, n := range ps.Jobs {
			gauges += n
		}
		if uint64(gauges) != ps.Submitted || ps.Submitted != 1 {
			t.Errorf("shard %d: gauges %d, submitted %d; want both 1", ps.Shard, gauges, ps.Submitted)
		}
	}

	// Drain: start workers, deliver both jobs, and re-register the refused
	// contract — the rolled-back reservation must not block it.
	rt.Start()
	waitDone(t, j1)
	waitDone(t, j2)
	if o := <-out1; o.err != nil {
		t.Fatal(o.err)
	} else {
		assertSameRows(t, o.result, g1.wantJoin(), g1.contract.ID)
	}
	if o := <-out2; o.err != nil {
		t.Fatal(o.err)
	} else {
		assertSameRows(t, o.result, g2.wantJoin(), g2.contract.ID)
	}
	j3, err := rt.Register(g3.contract)
	if err != nil {
		t.Fatalf("re-registration after rollback: %v", err)
	}
	driveToDelivered(t, rt.HandleConn, key0, g3, j3)

	snap := rt.MetricsSnapshot()
	if snap.Fleet.Submitted != 3 || snap.Fleet.Jobs["delivered"] != 3 {
		t.Errorf("fleet submitted %d delivered %d, want 3 and 3", snap.Fleet.Submitted, snap.Fleet.Jobs["delivered"])
	}
	if snap.Spills != 1 {
		t.Errorf("spills = %d, want 1", snap.Spills)
	}
}
