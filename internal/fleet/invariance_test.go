package fleet

import (
	"context"
	"testing"

	"ppj/internal/relation"
	"ppj/internal/server"
	"ppj/internal/sim"
)

// genJoinSized builds a pair of keyed relations with an exact join size s
// (each of the first s B rows matches exactly one A key; the rest miss),
// payloads and row order varying with seed. It mirrors the Algorithm 5
// public-parameter discipline from the core suite: two inputs from
// different seeds agree on (|A|, |B|, S) and nothing else.
func genJoinSized(seed uint64, nA, nB, s int) (*relation.Relation, *relation.Relation) {
	rng := relation.NewRand(seed)
	a := relation.NewRelation(relation.KeyedSchema())
	for i := 0; i < nA; i++ {
		a.MustAppend(relation.Tuple{relation.IntValue(int64(i)), relation.IntValue(rng.Int64N(1 << 30))})
	}
	b := relation.NewRelation(relation.KeyedSchema())
	rows := make([]relation.Tuple, 0, nB)
	for j := 0; j < s; j++ {
		rows = append(rows, relation.Tuple{
			relation.IntValue(int64(j % nA)),
			relation.IntValue(rng.Int64N(1 << 30)),
		})
	}
	for j := s; j < nB; j++ {
		rows = append(rows, relation.Tuple{
			relation.IntValue(int64(nA) + rng.Int64N(1<<20)),
			relation.IntValue(rng.Int64N(1 << 30)),
		})
	}
	for i := len(rows) - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		rows[i], rows[j] = rows[j], rows[i]
	}
	for _, r := range rows {
		b.MustAppend(r)
	}
	return a, b
}

// TestPerShardAccessPatternInvariance lifts the core obliviousness checks
// (Def. 1 §4.2, Def. 3 §5.1.2) to the fleet: each shard is its own
// adversary-observable host, so each shard's coprocessor counters must be
// a function of public parameters only. Two two-shard fleets run the same
// contract IDs — an Algorithm 3 job pinned to shard 0 and an Algorithm 5
// job pinned to shard 1 — over inputs that agree only on the public sizes
// ((|A|, |B|, N) for alg3; (|A|, |B|, S) for alg5), with different tuple
// contents, data seeds, and coprocessor seeds. Per-shard Stats must match
// exactly; a data-dependent counter anywhere in the sharded path (router,
// session handling, per-shard device) would split them.
func TestPerShardAccessPatternInvariance(t *testing.T) {
	runFleet := func(dataSeed, copSeed uint64) [2]sim.Stats {
		t.Helper()
		rt, err := New(Config{Config: server.Config{Shards: 2, Workers: 1, Memory: 16, Seed: copSeed}})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Shutdown(context.Background())
		rt.Start()

		// Same IDs in both runs: the ring is deterministic, so idOwnedBy
		// resolves identically and each job lands on the same shard.
		relA3, relB3 := relation.GenWithMatchBound(relation.NewRand(dataSeed), 9, 14, 3)
		g3 := newGroupRels(t, idOwnedBy(t, rt.ring, 0, "inv-alg3"), "alg3", relA3, relB3)
		relA5, relB5 := genJoinSized(dataSeed+1, 8, 12, 6)
		g5 := newGroupRels(t, idOwnedBy(t, rt.ring, 1, "inv-alg5"), "alg5", relA5, relB5)

		for shard, g := range map[int]*group{0: g3, 1: g5} {
			j, err := rt.Register(g.contract)
			if err != nil {
				t.Fatal(err)
			}
			if got, _, _ := rt.ShardFor(g.contract.ID); got != shard {
				t.Fatalf("contract %q admitted on shard %d, want %d", g.contract.ID, got, shard)
			}
			driveToDelivered(t, rt.HandleConn, rt.Shard(shard).Device().DeviceKey(), g, j)
		}

		snap := rt.MetricsSnapshot()
		return [2]sim.Stats{snap.PerShard[0].Coprocessor, snap.PerShard[1].Coprocessor}
	}

	run1 := runFleet(1001, 7)
	run2 := runFleet(2002, 8)
	for shard := range run1 {
		if run1[shard].Transfers() == 0 || run1[shard].PredEvals == 0 {
			t.Fatalf("shard %d: degenerate run %+v", shard, run1[shard])
		}
		if run1[shard] != run2[shard] {
			t.Errorf("shard %d access pattern depends on tuple contents or seeds:\n run1 %+v\n run2 %+v",
				shard, run1[shard], run2[shard])
		}
	}
}
