package fleet

import (
	"encoding/json"

	"ppj/internal/server"
)

// ShardMetrics is one shard's snapshot tagged with its index.
type ShardMetrics struct {
	Shard int `json:"shard"`
	server.Snapshot
}

// Snapshot is the fleet's admin view: every shard's own snapshot (the
// per-shard gauges an operator watches for a limping host), the aggregate
// across the fleet (key-wise sums; latency summaries merged sample-
// weighted), and the router's own counters.
type Snapshot struct {
	PerShard []ShardMetrics  `json:"per_shard"`
	Fleet    server.Snapshot `json:"fleet"`
	// Spills counts registrations the ring owner refused with ErrQueueFull
	// that were admitted by another shard. The per-shard gauges stay
	// consistent through a spill — the refusal is side-effect free — so
	// fleet.Submitted always equals the sum of every shard's state gauges.
	Spills uint64 `json:"spills"`
}

// MetricsSnapshot collects every shard's snapshot and the fleet aggregate.
func (r *Router) MetricsSnapshot() Snapshot {
	snap := Snapshot{Spills: r.spills.Load()}
	shardSnaps := make([]server.Snapshot, len(r.shards))
	for i, sh := range r.shards {
		shardSnaps[i] = sh.MetricsSnapshot()
		snap.PerShard = append(snap.PerShard, ShardMetrics{Shard: i, Snapshot: shardSnaps[i]})
	}
	snap.Fleet = aggregate(shardSnaps)
	return snap
}

// aggregate folds per-shard snapshots into fleet totals.
func aggregate(shards []server.Snapshot) server.Snapshot {
	out := server.Snapshot{
		Jobs:       make(map[string]int64),
		Algorithms: make(map[string]server.AlgSnapshot),
	}
	for _, s := range shards {
		out.Submitted += s.Submitted
		for state, n := range s.Jobs {
			out.Jobs[state] += n
		}
		out.QueueDepth += s.QueueDepth
		out.WALAppendFailures += s.WALAppendFailures
		for alg, a := range s.Algorithms {
			out.Algorithms[alg] = mergeAlg(out.Algorithms[alg], a)
		}
		out.Coprocessor.Add(s.Coprocessor)
		out.Devices.ParallelRuns += s.Devices.ParallelRuns
		out.Devices.Attached += s.Devices.Attached
		if s.Devices.Max > out.Devices.Max {
			out.Devices.Max = s.Devices.Max
		}
		out.ResultStoreBytes += s.ResultStoreBytes
		out.ResultStoreEvictions += s.ResultStoreEvictions
		out.ResultStoreRecoveryEvictions += s.ResultStoreRecoveryEvictions
		out.SortCacheBytes += s.SortCacheBytes
		out.SortCacheEvictions += s.SortCacheEvictions
		out.SortCacheHits += s.SortCacheHits
		out.SortCacheMisses += s.SortCacheMisses
		out.RecurrencesFired += s.RecurrencesFired
		out.RecurrencesSkipped += s.RecurrencesSkipped
		// Every shard runs the same template config, so the policy label is
		// uniform across the fleet.
		out.Scheduler = s.Scheduler
	}
	return out
}

// mergeAlg combines two per-algorithm summaries: counts add, the average
// is completion-weighted, min/max span both sides. A side with no
// completions contributes no latency.
func mergeAlg(a, b server.AlgSnapshot) server.AlgSnapshot {
	out := server.AlgSnapshot{Completed: a.Completed + b.Completed, Failed: a.Failed + b.Failed}
	switch {
	case a.Completed == 0:
		out.AvgMillis, out.MinMillis, out.MaxMillis = b.AvgMillis, b.MinMillis, b.MaxMillis
	case b.Completed == 0:
		out.AvgMillis, out.MinMillis, out.MaxMillis = a.AvgMillis, a.MinMillis, a.MaxMillis
	default:
		out.AvgMillis = (a.AvgMillis*float64(a.Completed) + b.AvgMillis*float64(b.Completed)) / float64(out.Completed)
		out.MinMillis = a.MinMillis
		if b.MinMillis < out.MinMillis {
			out.MinMillis = b.MinMillis
		}
		out.MaxMillis = a.MaxMillis
		if b.MaxMillis > out.MaxMillis {
			out.MaxMillis = b.MaxMillis
		}
	}
	return out
}

// JSON renders the fleet snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
