package fleet

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"ppj/internal/relation"
	"ppj/internal/server"
)

// TestShardRemovalRemapsOneNth pins the consistent-hashing property the
// ring exists for: draining one of N shards remaps only the keys that
// shard owned (about 1/N of the keyspace), every other key keeps its
// owner, and re-adding the shard restores the ORIGINAL assignment
// byte-for-byte — ring construction is a pure function of the live set.
func TestShardRemovalRemapsOneNth(t *testing.T) {
	const shards, sample = 4, 2000
	rt, err := New(Config{Config: server.Config{Shards: shards, Memory: 16}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background())

	before := make([]int, sample)
	ownedByDrained := 0
	const drained = 2
	for i := range before {
		before[i] = rt.Owner(fmt.Sprintf("key-%d", i))
		if before[i] == drained {
			ownedByDrained++
		}
	}
	if frac := float64(ownedByDrained) / sample; frac < 0.15 || frac > 0.35 {
		t.Fatalf("shard %d owns %.0f%% of the keyspace pre-drain; ring badly unbalanced", drained, 100*frac)
	}

	if err := rt.SetShardLive(drained, false); err != nil {
		t.Fatal(err)
	}
	if rt.ShardLive(drained) {
		t.Fatal("drained shard still reports live")
	}
	moved := 0
	for i := range before {
		after := rt.Owner(fmt.Sprintf("key-%d", i))
		if before[i] == drained {
			if after == drained {
				t.Fatalf("key-%d still owned by the drained shard", i)
			}
			moved++
		} else if after != before[i] {
			t.Fatalf("key-%d moved %d -> %d though its owner stayed live (not consistent hashing)", i, before[i], after)
		}
	}
	if moved != ownedByDrained {
		t.Fatalf("%d keys moved, want exactly the %d the drained shard owned", moved, ownedByDrained)
	}

	// Re-add: the assignment is restored exactly — no key remembers the
	// drain.
	if err := rt.SetShardLive(drained, true); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if got := rt.Owner(fmt.Sprintf("key-%d", i)); got != before[i] {
			t.Fatalf("key-%d owned by %d after re-add, want %d (original ring not restored)", i, got, before[i])
		}
	}

	// Guard rails: out-of-range index, redundant transitions, and the
	// last-live-shard refusal.
	if err := rt.SetShardLive(shards, false); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if err := rt.SetShardLive(0, true); err != nil {
		t.Fatalf("marking a live shard live = %v, want no-op nil", err)
	}
	for i := 1; i < shards; i++ {
		if err := rt.SetShardLive(i, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.SetShardLive(0, false); err == nil {
		t.Fatal("draining the last live shard accepted; the fleet could place nothing")
	}
}

// TestShardDrainSessionsAndSpillExclusion pins what draining does NOT do:
// a drained shard's already-admitted contract keeps its directory entry,
// its provider and recipient sessions still route to it, and its job runs
// to delivery — while NEW placements avoid it entirely: ring-owned keys
// remap to live shards, and a saturated live shard refuses with
// ErrQueueFull rather than spilling onto the drained one.
func TestShardDrainSessionsAndSpillExclusion(t *testing.T) {
	// Workers stay stopped until the placement assertions are done, so
	// ready jobs park in the queue and hold shard 0 at capacity.
	rt, err := New(Config{Config: server.Config{Shards: 2, Workers: 1, QueueDepth: 1, Memory: 16}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background())

	// A contract admitted by shard 1 before the drain.
	g1 := newGroupRels(t, idOwnedBy(t, rt.ring, 1, "drained"), "alg3",
		relation.GenKeyed(relation.NewRand(41), 6, 5), relation.GenKeyed(relation.NewRand(42), 5, 5))
	j1, err := rt.Register(g1.contract)
	if err != nil {
		t.Fatal(err)
	}
	if shard, _, _ := rt.ShardFor(g1.contract.ID); shard != 1 {
		t.Fatalf("test setup: %q admitted on shard %d, want 1", g1.contract.ID, shard)
	}

	if err := rt.SetShardLive(1, false); err != nil {
		t.Fatal(err)
	}

	// A key shard 1 used to own now places on shard 0 — a ring decision,
	// not a spill.
	g2 := newGroupRels(t, idOwnedBy(t, NewRing(2, rt.cfg.Replicas), 1, "remap"), "alg3",
		relation.GenKeyed(relation.NewRand(43), 5, 5), relation.GenKeyed(relation.NewRand(44), 6, 5))
	j2, err := rt.Register(g2.contract)
	if err != nil {
		t.Fatal(err)
	}
	if shard, _, _ := rt.ShardFor(g2.contract.ID); shard != 0 {
		t.Fatalf("remapped contract admitted on shard %d, want 0", shard)
	}
	if s := rt.MetricsSnapshot(); s.Spills != 0 {
		t.Fatalf("ring remap counted as %d spills, want 0", s.Spills)
	}

	// Saturate shard 0, then a further registration must surface
	// ErrQueueFull: the drained shard has headroom but is not a spill
	// target.
	key0 := rt.Shard(0).Device().DeviceKey()
	if err := g2.pipeProvider(rt.HandleConn, key0, g2.provA, g2.relA); err != nil {
		t.Fatal(err)
	}
	if err := g2.pipeProvider(rt.HandleConn, key0, g2.provB, g2.relB); err != nil {
		t.Fatal(err)
	}
	out2 := g2.pipeRecipient(rt.HandleConn, key0)
	waitQueueFull(t, rt.Shard(0))
	g3 := newGroupRels(t, idOwnedBy(t, rt.ring, 0, "refused"), "alg3",
		relation.GenKeyed(relation.NewRand(45), 4, 5), relation.GenKeyed(relation.NewRand(46), 4, 5))
	if _, err := rt.Register(g3.contract); !errors.Is(err, server.ErrQueueFull) {
		t.Fatalf("registration with only a drained shard free = %v, want ErrQueueFull", err)
	}
	if _, _, err := rt.ShardFor(g3.contract.ID); !errors.Is(err, server.ErrUnknownContract) {
		t.Fatalf("refused registration left a directory entry: %v", err)
	}

	// The drained shard's in-flight contract is undisturbed: sessions
	// still route to it through the directory and the job delivers.
	key1 := rt.Shard(1).Device().DeviceKey()
	if err := g1.pipeProvider(rt.HandleConn, key1, g1.provA, g1.relA); err != nil {
		t.Fatalf("provider session to drained shard: %v", err)
	}
	if err := g1.pipeProvider(rt.HandleConn, key1, g1.provB, g1.relB); err != nil {
		t.Fatalf("provider session to drained shard: %v", err)
	}
	out1 := g1.pipeRecipient(rt.HandleConn, key1)

	rt.Start()
	waitDone(t, j1)
	waitDone(t, j2)
	if o := <-out1; o.err != nil {
		t.Fatalf("drained shard's job failed: %v", o.err)
	} else {
		assertSameRows(t, o.result, g1.wantJoin(), g1.contract.ID)
	}
	if o := <-out2; o.err != nil {
		t.Fatal(o.err)
	} else {
		assertSameRows(t, o.result, g2.wantJoin(), g2.contract.ID)
	}

	// Re-add shard 1 and place on it again, end to end.
	if err := rt.SetShardLive(1, true); err != nil {
		t.Fatal(err)
	}
	g4 := newGroupRels(t, idOwnedBy(t, rt.ring, 1, "readd"), "alg3",
		relation.GenKeyed(relation.NewRand(47), 5, 5), relation.GenKeyed(relation.NewRand(48), 5, 5))
	if err := driveOne(rt, g4); err != nil {
		t.Fatal(err)
	}
	if shard, _, _ := rt.ShardFor(g4.contract.ID); shard != 1 {
		t.Fatalf("post-re-add contract admitted on shard %d, want 1", shard)
	}
}
