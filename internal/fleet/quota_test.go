package fleet

import (
	"errors"
	"sync"
	"testing"

	"ppj/internal/server"
)

// tenantGroup binds a group's contract to a tenant account and re-signs
// (Tenant feeds the contract digest).
func tenantGroup(t *testing.T, g *group, tenant string) *group {
	t.Helper()
	g.contract.Tenant = tenant
	g.contract.Sign(0, g.provA.priv)
	g.contract.Sign(1, g.provB.priv)
	return g
}

// TestQuotaRaceAcrossShards races 32 concurrent resubmissions of one
// tenant's two contracts — pinned to different shards — against the
// fleet-wide in-flight cap. The fleet injects ONE shared quota enforcer
// into every shard, so the cap holds across shards under the race: with
// two slots already held by the original registrations and a cap of
// four, exactly two resubmissions are admitted, every other refusal is
// the typed ErrQuotaExceeded, and settling the jobs frees the slots.
// Run with -race: the admission path is lock-protected check-then-commit
// and this is its concurrency conformance test.
func TestQuotaRaceAcrossShards(t *testing.T) {
	rt, err := New(Config{Config: server.Config{
		Shards: 2, Workers: 1, Memory: 16, TenantMaxInFlight: 4,
	}})
	if err != nil {
		t.Fatal(err)
	}
	g0 := tenantGroup(t, newGroup(t, idOwnedBy(t, rt.ring, 0, "qr"), "alg5", 1, 2, 5, 5), "acme")
	g1 := tenantGroup(t, newGroup(t, idOwnedBy(t, rt.ring, 1, "qr"), "alg5", 3, 4, 5, 5), "acme")
	if s0, s1 := rt.Owner(g0.contract.ID), rt.Owner(g1.contract.ID); s0 != 0 || s1 != 1 {
		t.Fatalf("contracts pinned to shards %d/%d, want 0/1", s0, s1)
	}
	j0, err := rt.Register(g0.contract)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := rt.Register(g1.contract)
	if err != nil {
		t.Fatal(err)
	}

	const racers = 32
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		admitted []*server.Job
		badErrs  []error
	)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := g0.contract.ID
			if i%2 == 1 {
				id = g1.contract.ID
			}
			j, err := rt.Resubmit(id)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				admitted = append(admitted, j)
			} else if !errors.Is(err, server.ErrQuotaExceeded) {
				badErrs = append(badErrs, err)
			}
		}(i)
	}
	wg.Wait()
	if len(badErrs) > 0 {
		t.Fatalf("racing resubmissions failed with non-quota errors: %v", badErrs)
	}
	if len(admitted) != 2 {
		t.Fatalf("race admitted %d resubmissions, want exactly cap(4) - held(2) = 2", len(admitted))
	}
	// The cap is saturated fleet-wide: both shards refuse.
	for _, id := range []string{g0.contract.ID, g1.contract.ID} {
		if _, err := rt.Resubmit(id); !errors.Is(err, server.ErrQuotaExceeded) {
			t.Fatalf("resubmit of %s at the cap = %v, want ErrQuotaExceeded", id, err)
		}
	}
	// The history is consistent: initial executions plus the two winners.
	total := 0
	for i := 0; i < rt.NumShards(); i++ {
		for _, id := range rt.Shard(i).Registry().ContractIDs() {
			total += len(rt.Shard(i).Registry().Executions(id))
		}
	}
	if total != 4 {
		t.Fatalf("fleet holds %d executions, want 4 (2 registrations + 2 admitted resubmissions)", total)
	}

	// Settling every job returns the slots; both shards admit again.
	live := append([]*server.Job{j0, j1}, admitted...)
	for _, j := range live {
		j.Cancel()
	}
	for _, j := range live {
		waitDone(t, j)
	}
	for _, id := range []string{g0.contract.ID, g1.contract.ID} {
		if _, err := rt.Resubmit(id); err != nil {
			t.Fatalf("resubmit of %s after slots freed: %v", id, err)
		}
	}
}

// TestFleetResubmitRouting pins Router.Resubmit's routing: the
// re-execution runs on the shard that holds the contract's history and
// upload digests (never spilled over), and resubmitting a contract the
// fleet never admitted is a typed unknown-contract error.
func TestFleetResubmitRouting(t *testing.T) {
	rt, err := New(Config{Config: server.Config{Shards: 2, Workers: 1, Memory: 16}})
	if err != nil {
		t.Fatal(err)
	}
	g := newGroup(t, idOwnedBy(t, rt.ring, 1, "rr"), "alg5", 7, 8, 5, 5)
	if _, err := rt.Register(g.contract); err != nil {
		t.Fatal(err)
	}
	j2, err := rt.Resubmit(g.contract.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Shard(1).Registry().Executions(g.contract.ID)); got != 2 {
		t.Fatalf("owning shard holds %d executions, want 2", got)
	}
	if j, err := rt.Shard(1).Registry().Lookup(g.contract.ID, ""); err != nil || j.ID() != j2.ID() {
		t.Fatalf("latest execution on the owning shard = %v (%v), want %q", j, err, j2.ID())
	}
	if _, err := rt.Resubmit("rr-never-registered"); !errors.Is(err, server.ErrUnknownContract) {
		t.Fatalf("resubmit of unknown contract = %v, want ErrUnknownContract", err)
	}
}
