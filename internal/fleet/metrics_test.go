package fleet

import (
	"context"
	"path/filepath"
	"testing"

	"ppj/internal/server"
)

// seedShardWAL hand-writes one shard's WAL: each contract registered, then
// driven through the given transition chain. Keeping every job recovered
// (never executed live) keeps the Algorithms latency summaries empty, so
// the fleet snapshot below is byte-for-byte deterministic.
type walTransition struct {
	from, to server.State
	cause    string
}

func seedShardWAL(t *testing.T, dir string, jobs map[*group][]walTransition, order []*group) {
	t.Helper()
	store, recs, err := server.OpenWALStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh dir replayed %d records", len(recs))
	}
	for _, g := range order {
		if err := store.LogRegistered(g.contract); err != nil {
			t.Fatal(err)
		}
		for _, tr := range jobs[g] {
			if err := store.LogTransition(g.contract.ID, tr.from, tr.to, tr.cause); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetMetricsGoldenSnapshot boots a two-shard fleet from hand-built
// per-shard WALs — shard 0 recovered one Delivered and one Failed job,
// shard 1 one Pending — and asserts the full fleet snapshot JSON byte for
// byte: per-shard sections in shard order, the cross-shard aggregate, and
// the router's spill counter. Any drift in the admin surface (a renamed
// key, a gauge that leaks across shards, an aggregate that double-counts)
// breaks the golden.
func TestFleetMetricsGoldenSnapshot(t *testing.T) {
	dir := t.TempDir()
	ring := NewRing(2, 0)
	gA := newGroup(t, idOwnedBy(t, ring, 0, "gm-a"), "alg5", 51, 52, 4, 4)
	gB := newGroup(t, idOwnedBy(t, ring, 0, "gm-b"), "alg5", 53, 54, 4, 4)
	gC := newGroup(t, idOwnedBy(t, ring, 1, "gm-c"), "alg5", 55, 56, 4, 4)

	seedShardWAL(t, filepath.Join(dir, "shard-0"), map[*group][]walTransition{
		gA: {
			{server.StatePending, server.StateUploading, ""},
			{server.StateUploading, server.StateRunning, ""},
			{server.StateRunning, server.StateDelivered, ""},
		},
		gB: {
			{server.StatePending, server.StateUploading, ""},
			{server.StateUploading, server.StateRunning, ""},
			{server.StateRunning, server.StateFailed, "context deadline exceeded"},
		},
	}, []*group{gA, gB})
	seedShardWAL(t, filepath.Join(dir, "shard-1"), map[*group][]walTransition{
		gC: nil,
	}, []*group{gC})

	rt, err := New(Config{Config: server.Config{Shards: 2, Workers: 1, Memory: 16, DataDir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background())

	// The recovered directory routes every contract to the shard whose WAL
	// registered it.
	for g, want := range map[*group]int{gA: 0, gB: 0, gC: 1} {
		if shard, _, err := rt.ShardFor(g.contract.ID); err != nil || shard != want {
			t.Fatalf("recovered routing for %q: shard %d err %v, want %d", g.contract.ID, shard, err, want)
		}
	}

	js, err := rt.MetricsSnapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "per_shard": [
    {
      "shard": 0,
      "submitted": 2,
      "jobs": {
        "delivered": 1,
        "failed": 1,
        "pending": 0,
        "running": 0,
        "stored": 0,
        "uploading": 0
      },
      "queue_depth": 0,
      "wal_append_failures": 0,
      "algorithms": {},
      "coprocessor": {
        "Gets": 0,
        "Puts": 0,
        "LogicalReads": 0,
        "Comparisons": 0,
        "PredEvals": 0,
        "DiskRequests": 0
      },
      "devices": {
        "parallel_runs": 0,
        "attached": 0,
        "max": 0
      },
      "result_store_bytes": 0,
      "result_store_evictions": 0,
      "result_store_recovery_evictions": 0,
      "sort_cache_bytes": 0,
      "sort_cache_evictions": 0,
      "sort_cache_hits": 0,
      "sort_cache_misses": 0,
      "scheduler": "fair",
      "recurrences_fired": 0,
      "recurrences_skipped": 0
    },
    {
      "shard": 1,
      "submitted": 1,
      "jobs": {
        "delivered": 0,
        "failed": 0,
        "pending": 1,
        "running": 0,
        "stored": 0,
        "uploading": 0
      },
      "queue_depth": 0,
      "wal_append_failures": 0,
      "algorithms": {},
      "coprocessor": {
        "Gets": 0,
        "Puts": 0,
        "LogicalReads": 0,
        "Comparisons": 0,
        "PredEvals": 0,
        "DiskRequests": 0
      },
      "devices": {
        "parallel_runs": 0,
        "attached": 0,
        "max": 0
      },
      "result_store_bytes": 0,
      "result_store_evictions": 0,
      "result_store_recovery_evictions": 0,
      "sort_cache_bytes": 0,
      "sort_cache_evictions": 0,
      "sort_cache_hits": 0,
      "sort_cache_misses": 0,
      "scheduler": "fair",
      "recurrences_fired": 0,
      "recurrences_skipped": 0
    }
  ],
  "fleet": {
    "submitted": 3,
    "jobs": {
      "delivered": 1,
      "failed": 1,
      "pending": 1,
      "running": 0,
      "stored": 0,
      "uploading": 0
    },
    "queue_depth": 0,
    "wal_append_failures": 0,
    "algorithms": {},
    "coprocessor": {
      "Gets": 0,
      "Puts": 0,
      "LogicalReads": 0,
      "Comparisons": 0,
      "PredEvals": 0,
      "DiskRequests": 0
    },
    "devices": {
      "parallel_runs": 0,
      "attached": 0,
      "max": 0
    },
    "result_store_bytes": 0,
    "result_store_evictions": 0,
    "result_store_recovery_evictions": 0,
    "sort_cache_bytes": 0,
    "sort_cache_evictions": 0,
    "sort_cache_hits": 0,
    "sort_cache_misses": 0,
    "scheduler": "fair",
    "recurrences_fired": 0,
    "recurrences_skipped": 0
  },
  "spills": 0
}`
	if string(js) != want {
		t.Fatalf("fleet metrics snapshot:\n%s\nwant:\n%s", js, want)
	}
}
