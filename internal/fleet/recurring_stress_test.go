package fleet

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ppj/internal/clock"
	"ppj/internal/relation"
	"ppj/internal/server"
	"ppj/internal/service"
)

// TestFleetRecurringStressRace mixes recurring and one-shot contracts
// across a two-shard fleet while a fake-clock ticker fires re-executions
// and a metrics poller reads fleet snapshots — all concurrently. Its
// teeth are under -race: the per-shard recurrence tables, the scheduler
// queues, the router directory, and the snapshot aggregation all race
// here. Afterwards the books must balance exactly: every recurring
// contract's execution history is 1 (the registration) plus the fires the
// metrics counted for it, and nothing was skipped (no quotas are
// configured, so every due fire must have been admitted).
func TestFleetRecurringStressRace(t *testing.T) {
	t0 := time.Unix(80_000, 0)
	fake := clock.NewFake(t0)
	rt, err := New(Config{Config: server.Config{Shards: 2, Workers: 2, QueueDepth: 64, Memory: 16, Clock: fake}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background())
	rt.Start()

	const recurring, oneshot, ticks = 5, 5, 12
	algs := []string{"alg3", "alg5", "auto"}

	recGroups := make([]*group, recurring)
	recJobs := make([]*server.Job, recurring)
	for i := range recGroups {
		recGroups[i] = newGroup(t, fmt.Sprintf("recur-stress-%d", i), algs[i%len(algs)],
			uint64(300+2*i), uint64(301+2*i), 5+i%3, 6+i%2)
		j, err := rt.RegisterScheduled(recGroups[i].contract, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		recJobs[i] = j
	}

	var wg sync.WaitGroup
	errCh := make(chan error, recurring+oneshot)

	// Ticker: advances the shared fake clock one interval at a time and
	// fires due recurrences fleet-wide, racing with the live workload.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ticks; i++ {
			fake.Advance(time.Minute)
			rt.Tick()
		}
	}()

	// Metrics poller: fleet snapshots mid-flight, with the aggregate fire
	// counter monotone.
	stopPoll := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastFired uint64
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			snap := rt.MetricsSnapshot()
			if snap.Fleet.RecurrencesFired < lastFired {
				t.Errorf("fleet recurrences_fired went backwards: %d -> %d", lastFired, snap.Fleet.RecurrencesFired)
				return
			}
			lastFired = snap.Fleet.RecurrencesFired
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// One-shot contracts run end to end while the ticker fires.
	for i := 0; i < oneshot; i++ {
		g := newGroup(t, fmt.Sprintf("oneshot-stress-%d", i), algs[i%len(algs)],
			uint64(400+2*i), uint64(401+2*i), 6+i%2, 5+i%3)
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			errCh <- driveOne(rt, g)
		}(g)
	}
	// Each recurring contract's FIRST execution also runs end to end,
	// concurrently with the fires appending further executions behind it.
	// Sessions pin the execution by job ID: a contract-addressed hello
	// resolves to the LATEST execution, which mid-stress may already be a
	// fired re-execution.
	for i := range recGroups {
		wg.Add(1)
		go func(g *group, j *server.Job) {
			defer wg.Done()
			errCh <- driveJobPinned(rt, g, j)
		}(recGroups[i], recJobs[i])
	}

	for i := 0; i < recurring+oneshot; i++ {
		if err := <-errCh; err != nil {
			t.Error(err)
		}
	}
	close(stopPoll)
	wg.Wait()

	snap := rt.MetricsSnapshot()
	if snap.Fleet.RecurrencesSkipped != 0 {
		t.Errorf("fleet skipped %d fires with no quotas configured", snap.Fleet.RecurrencesSkipped)
	}
	var historyFires uint64
	for _, g := range recGroups {
		_, sh, err := rt.ShardFor(g.contract.ID)
		if err != nil {
			t.Fatal(err)
		}
		execs := len(sh.Registry().Executions(g.contract.ID))
		if execs < 1 {
			t.Fatalf("%s: empty execution history", g.contract.ID)
		}
		historyFires += uint64(execs - 1)
		sc, ok := sh.Schedules()[g.contract.ID]
		if !ok {
			t.Fatalf("%s: schedule lost under stress", g.contract.ID)
		}
		if !sc.Next.After(fake.Now()) {
			t.Errorf("%s: due %v not in the future after the last tick", g.contract.ID, sc.Next)
		}
	}
	if snap.Fleet.RecurrencesFired != historyFires {
		t.Errorf("fleet counted %d fires, execution histories show %d", snap.Fleet.RecurrencesFired, historyFires)
	}
	if snap.Fleet.RecurrencesFired == 0 {
		t.Error("stress run fired no recurrences; ticker never overlapped the workload")
	}
}

// driveJobPinned runs one admitted execution end to end with every
// session addressed to j's ID explicitly, so concurrently fired
// re-executions of the same contract cannot absorb the uploads or the
// recipient.
func driveJobPinned(rt *Router, g *group, j *server.Job) error {
	id := g.contract.ID
	_, sh, err := rt.ShardFor(id)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	key := sh.Device().DeviceKey()

	provide := func(p testParty, rel *relation.Relation) error {
		serverEnd, clientEnd := net.Pipe()
		handler := make(chan error, 1)
		go func() {
			defer serverEnd.Close()
			handler <- rt.HandleConn(serverEnd)
		}()
		cs, err := g.client(p, key).ConnectJob(clientEnd, service.RoleProvider, id, j.ID())
		if err == nil {
			err = cs.SubmitRelation(id, rel)
		}
		if herr := <-handler; herr != nil && err == nil {
			err = herr
		}
		clientEnd.Close()
		return err
	}
	if err := provide(g.provA, g.relA); err != nil {
		return fmt.Errorf("%s: provider A: %w", id, err)
	}
	if err := provide(g.provB, g.relB); err != nil {
		return fmt.Errorf("%s: provider B: %w", id, err)
	}

	serverEnd, clientEnd := net.Pipe()
	go func() {
		defer serverEnd.Close()
		_ = rt.HandleConn(serverEnd)
	}()
	out := make(chan pipeOutcome, 1)
	go func() {
		defer clientEnd.Close()
		cs, err := g.client(g.recip, key).ConnectJob(clientEnd, service.RoleRecipient, id, j.ID())
		if err != nil {
			out <- pipeOutcome{err: err}
			return
		}
		res, err := cs.ReceiveResult()
		out <- pipeOutcome{result: res, err: err}
	}()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		return fmt.Errorf("%s: job hung in state %s", id, j.State())
	}
	o := <-out
	if o.err != nil {
		return fmt.Errorf("%s: recipient: %w", id, o.err)
	}
	if !relation.SameMultiset(o.result, g.wantJoin()) {
		return fmt.Errorf("%s: delivered rows differ from reference join", id)
	}
	return nil
}
