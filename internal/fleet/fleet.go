package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ppj/internal/server"
	"ppj/internal/server/wal"
	"ppj/internal/service"
)

// Config parameterises a Router. The embedded server.Config is the
// per-shard template: Config.Shards picks the fleet width, DataDir names
// the fleet root (shard i keeps its WAL under DataDir/shard-<i>/), and
// every other field applies to each shard verbatim. AdmissionControl is
// forced on per shard — it is the mechanism spillover rides on.
type Config struct {
	server.Config
	// Replicas is the number of virtual nodes per shard on the consistent-
	// hash ring. Defaults to DefaultReplicas.
	Replicas int
	// ShardFaults, when set, gives shard i its own fault registry (tests
	// only): the partial-fleet crash suite seals one shard's WAL while the
	// others run clean. Nil shards fall back to Config.Faults.
	ShardFaults func(shard int) *wal.Faults
}

// Router is the multi-host fleet: N shards behind one dispatch surface.
// Contracts are placed by consistent hashing on their ID; sessions are
// routed to the shard that admitted their contract (which, after a
// spillover, may differ from the ring owner — the directory, not the ring,
// is the routing authority).
type Router struct {
	cfg    Config
	shards []*server.Server

	// mu guards the routing state: the directory, the ring (rebuilt when a
	// shard's liveness changes), and the liveness flags themselves.
	mu   sync.RWMutex
	ring *Ring
	dir  map[string]int // contract ID -> admitting shard
	live []bool         // live[i]: shard i accepts new placements

	spills       atomic.Uint64
	shuttingDown atomic.Bool
}

// New builds the fleet: cfg.Shards servers (at least 1), each booted with
// its own device and — when DataDir is set — recovered independently from
// its own WAL directory, so one shard's torn log fails only that shard's
// interrupted jobs while the rest of the fleet comes back clean. Recovered
// contracts are re-entered into the routing directory on whichever shard
// recovered them.
func New(cfg Config) (*Router, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	r := &Router{cfg: cfg, ring: NewRing(n, cfg.Replicas), dir: make(map[string]int), live: make([]bool, n)}
	for i := range r.live {
		r.live[i] = true
	}
	// One quota enforcer is shared by every shard, so a tenant's in-flight
	// cap and submission rate hold fleet-wide no matter which shards its
	// contracts land on (spillover included).
	quotas := cfg.Quotas
	if quotas == nil {
		quotas = server.NewQuotas(server.QuotaConfig{
			MaxInFlight: cfg.TenantMaxInFlight,
			Rate:        cfg.TenantRate,
			Burst:       cfg.TenantBurst,
		}, cfg.QuotaNow)
	}
	for i := 0; i < n; i++ {
		scfg := cfg.Config
		scfg.Shards = 0 // each server is exactly one shard
		scfg.AdmissionControl = true
		scfg.Quotas = quotas
		if cfg.DataDir != "" {
			scfg.DataDir = filepath.Join(cfg.DataDir, "shard-"+strconv.Itoa(i))
		}
		if cfg.ShardFaults != nil {
			if f := cfg.ShardFaults(i); f != nil {
				scfg.Faults = f
			}
		}
		sh, err := server.New(scfg)
		if err != nil {
			r.closeShards()
			return nil, fmt.Errorf("fleet: booting shard %d: %w", i, err)
		}
		r.shards = append(r.shards, sh)
		for _, id := range sh.Registry().ContractIDs() {
			if prev, dup := r.dir[id]; dup {
				r.closeShards()
				return nil, fmt.Errorf("fleet: contract %q recovered on shards %d and %d", id, prev, i)
			}
			r.dir[id] = i
		}
	}
	return r, nil
}

// closeShards releases every shard booted so far (WAL descriptors and dir
// locks included) after a failed New.
func (r *Router) closeShards() {
	for _, sh := range r.shards {
		_ = sh.Shutdown(context.Background())
	}
}

// NumShards returns the fleet width.
func (r *Router) NumShards() int { return len(r.shards) }

// Shard exposes shard i (admin, tests).
func (r *Router) Shard(i int) *server.Server { return r.shards[i] }

// Owner returns the ring owner of a contract ID — where a registration is
// placed before any spillover. The ring covers only live shards.
func (r *Router) Owner(id string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.Owner(id)
}

// SetShardLive marks shard i live or drained for NEW placements and
// rebuilds the ring over the live set. Removal does not touch the shard
// itself: contracts it already admitted stay in the directory, their
// sessions keep routing to it, and its workers keep draining — only the
// ring forgets it, so new contract IDs remap (about 1/N of the keyspace,
// the consistent-hashing property the removal suite pins). Re-adding the
// shard restores the identical ring, because ring construction is
// deterministic in the live ID set. Draining the last live shard is
// refused: a fleet with an empty ring could place nothing.
func (r *Router) SetShardLive(i int, live bool) error {
	if i < 0 || i >= len(r.shards) {
		return fmt.Errorf("fleet: shard %d out of range [0, %d)", i, len(r.shards))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.live[i] == live {
		return nil
	}
	var ids []int
	for j, l := range r.live {
		if j == i {
			l = live
		}
		if l {
			ids = append(ids, j)
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("fleet: refusing to drain shard %d: it is the last live shard", i)
	}
	r.live[i] = live
	r.ring = newRingIDs(ids, r.cfg.Replicas)
	return nil
}

// ShardLive reports whether shard i currently accepts new placements.
func (r *Router) ShardLive(i int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.live[i]
}

// ShardFor resolves a registered contract to its admitting shard.
func (r *Router) ShardFor(id string) (int, *server.Server, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i, ok := r.dir[id]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %q", server.ErrUnknownContract, id)
	}
	return i, r.shards[i], nil
}

// Register admits a contract on the shard owning its ID. If that shard
// refuses with ErrQueueFull (registration-time backpressure), the contract
// spills to the least-loaded shard with queue headroom; only when every
// shard is full does the tenant see the backpressure error. The directory
// entry is reserved before the shard admission runs, so two racing
// registrations of one ID cannot land on different shards.
func (r *Router) Register(c *service.Contract) (*server.Job, error) {
	return r.admit(c, func(sh *server.Server) (*server.Job, error) {
		return sh.Register(c)
	})
}

// RegisterScheduled admits a recurring contract — placed, spilled, and
// routed exactly like Register — whose schedule lives on the admitting
// shard: that shard journals the due-times in its own WAL and fires the
// re-executions through its Resubmit path, keeping the contract's whole
// execution history in one crash domain.
func (r *Router) RegisterScheduled(c *service.Contract, every time.Duration) (*server.Job, error) {
	return r.admit(c, func(sh *server.Server) (*server.Job, error) {
		return sh.RegisterScheduled(c, every)
	})
}

// admit runs one contract admission with directory reservation and
// ErrQueueFull spillover; register performs the shard-level registration.
func (r *Router) admit(c *service.Contract, register func(*server.Server) (*server.Job, error)) (*server.Job, error) {
	if r.shuttingDown.Load() {
		return nil, server.ErrShuttingDown
	}
	// The primary is read under the same lock as the reservation, so a
	// concurrent SetShardLive cannot slip a ring rebuild between the route
	// decision and the directory entry.
	r.mu.Lock()
	if _, dup := r.dir[c.ID]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("fleet: contract %q already registered", c.ID)
	}
	primary := r.ring.Owner(c.ID)
	r.dir[c.ID] = primary // reservation: rolled back if no shard admits
	r.mu.Unlock()

	j, err := register(r.shards[primary])
	if err != nil && errors.Is(err, server.ErrQueueFull) {
		if spill, ok := r.leastLoaded(primary); ok {
			if js, errs := register(r.shards[spill]); errs == nil {
				r.mu.Lock()
				r.dir[c.ID] = spill
				r.mu.Unlock()
				r.spills.Add(1)
				return js, nil
			} else {
				err = fmt.Errorf("fleet: shard %d full, spill to shard %d failed: %w", primary, spill, errs)
			}
		}
	}
	if err != nil {
		r.mu.Lock()
		delete(r.dir, c.ID)
		r.mu.Unlock()
		return nil, err
	}
	return j, nil
}

// Tick fires due recurring contracts on every shard, returning the number
// of re-executions submitted fleet-wide. Shards whose Config.TickEvery is
// set tick themselves; this is the explicit seam for tests and for
// deployments that drive the fleet clock centrally.
func (r *Router) Tick() int {
	fired := 0
	for _, sh := range r.shards {
		fired += sh.Tick()
	}
	return fired
}

// Resubmit re-executes a registered contract on the shard that admitted it.
// There is no spillover: the contract's execution history, WAL, and cached
// sorted forms live on that shard, so a re-execution elsewhere would both
// split the history and forfeit the cache. Backpressure and tenant quotas
// surface as the shard's own typed refusals.
func (r *Router) Resubmit(contractID string) (*server.Job, error) {
	if r.shuttingDown.Load() {
		return nil, server.ErrShuttingDown
	}
	_, sh, err := r.ShardFor(contractID)
	if err != nil {
		return nil, err
	}
	return sh.Resubmit(contractID)
}

// leastLoaded picks the spill target: the live shard (other than skip)
// with queue headroom and the smallest load, ties broken by index so the
// choice is deterministic. ok is false when the whole fleet is saturated.
// Drained shards never receive spillover — they are finishing what they
// have.
func (r *Router) leastLoaded(skip int) (shard int, ok bool) {
	r.mu.RLock()
	live := append([]bool(nil), r.live...)
	r.mu.RUnlock()
	var best server.Load
	for i, sh := range r.shards {
		if i == skip || !live[i] {
			continue
		}
		l := sh.Load()
		if l.QueueDepth >= l.QueueCap {
			continue
		}
		if !ok || l.Less(best) {
			shard, best, ok = i, l, true
		}
	}
	return shard, ok
}

// HandleConn serves one connection end to end: it reads the hello, resolves
// the contract to its admitting shard through the directory, and hands the
// open session to that shard. An empty contract ID is accepted only when
// exactly one contract is registered fleet-wide, mirroring the registry's
// single-contract fallback.
func (r *Router) HandleConn(conn io.ReadWriter) error {
	sess, hello, err := service.ReadHello(conn)
	if err != nil {
		return err
	}
	id := hello.ContractID
	if id == "" && hello.JobID != "" {
		// A job-addressed hello with no contract still routes: job IDs are
		// "<contract>#<seq>" (or the contract ID itself), so the owning
		// contract is derivable.
		id = hello.JobID
		if i := strings.Index(id, "#"); i >= 0 {
			id = id[:i]
		}
	}
	sh, err := r.route(id)
	if err != nil {
		return err
	}
	return sh.HandleSession(sess, hello)
}

// route maps a hello's contract ID to the shard serving it.
func (r *Router) route(id string) (*server.Server, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id == "" {
		switch len(r.dir) {
		case 1:
			for _, i := range r.dir {
				return r.shards[i], nil
			}
		case 0:
			return nil, fmt.Errorf("%w: hello names no contract and none are registered", server.ErrUnknownContract)
		}
		return nil, fmt.Errorf("%w; %d are registered across the fleet", server.ErrAmbiguousContract, len(r.dir))
	}
	i, ok := r.dir[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", server.ErrUnknownContract, id)
	}
	return r.shards[i], nil
}

// Start launches every shard's worker pool.
func (r *Router) Start() {
	for _, sh := range r.shards {
		sh.Start()
	}
}

// Serve accepts connections from ln until it closes, routing each in its
// own goroutine. Accept errors after Shutdown are reported as a clean exit.
func (r *Router) Serve(ln net.Listener) error {
	r.Start()
	var conns sync.WaitGroup
	defer conns.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if r.shuttingDown.Load() {
				return nil
			}
			return err
		}
		conns.Add(1)
		go func(conn net.Conn) {
			defer conns.Done()
			defer conn.Close()
			if err := r.HandleConn(conn); err != nil {
				r.logf("fleet: %v", err)
			}
		}(conn)
	}
}

// Shutdown drains every shard concurrently, with each shard's own graceful
// semantics (queued and gathering jobs fail with ErrShuttingDown, in-flight
// jobs run out, stores close). The first error per shard is joined.
func (r *Router) Shutdown(ctx context.Context) error {
	r.shuttingDown.Store(true)
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		wg.Add(1)
		go func(i int, sh *server.Server) {
			defer wg.Done()
			errs[i] = sh.Shutdown(ctx)
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}
