package fleet

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"ppj/internal/server"
	"ppj/internal/server/wal"
)

// TestPartialFleetCrash is the acceptance scenario for sharded crash
// domains: a three-shard durable fleet where shard 1's WAL is sealed (the
// host "dies") at its job's uploading->running boundary while shards 0 and
// 2 run clean. Every job still delivers live — a dead log does not stop
// the in-memory host — but the durable histories now disagree, and a fleet
// restarted on the same data dir must recover each shard independently:
//
//   - shards 0 and 2 come back with Delivered tombstones;
//   - shard 1's running job recovers as ErrInterrupted, and a contract it
//     admitted but never started resumes live and completes on the new
//     incarnation;
//   - the routing directory is rebuilt from the shard WALs, so every
//     contract answers on the shard that owned it before the crash.
//
// Alongside the crash semantics the test pins the closed form: with a
// pinned Config.Seed, each shard's coprocessor counters equal a standalone
// single-shard server running the identical contract — sharding changes
// where a job runs, never what its host observes.
func TestPartialFleetCrash(t *testing.T) {
	const seed = 777
	dir := t.TempDir()
	crashSite := server.TransitionSite(server.StateUploading, server.StateRunning)
	faults := wal.NewFaults()
	faults.Set(crashSite, wal.Always(wal.ErrCrashed))
	cfg := func() Config {
		return Config{Config: server.Config{Shards: 3, Workers: 1, Memory: 16, DataDir: dir, Seed: seed}}
	}

	boot := cfg()
	boot.ShardFaults = func(shard int) *wal.Faults {
		if shard == 1 {
			return faults
		}
		return nil
	}
	rt1, err := New(boot)
	if err != nil {
		t.Fatal(err)
	}
	rt1.Start()

	// One contract pinned to each shard, plus one more on the doomed shard
	// that is registered (durably) but never driven — it must survive the
	// crash as a live Pending job.
	groups := make([]*group, 3)
	for i := range groups {
		groups[i] = newGroup(t, idOwnedBy(t, rt1.ring, i, "pfc"), "alg5",
			uint64(31+2*i), uint64(32+2*i), 6, 6)
		if _, err := rt1.Register(groups[i].contract); err != nil {
			t.Fatal(err)
		}
		if shard, _, _ := rt1.ShardFor(groups[i].contract.ID); shard != i {
			t.Fatalf("contract %q admitted on shard %d, want %d", groups[i].contract.ID, shard, i)
		}
	}
	gPend := newGroup(t, idOwnedBy(t, rt1.ring, 1, "pfc-pend"), "alg5", 41, 42, 5, 5)
	if _, err := rt1.Register(gPend.contract); err != nil {
		t.Fatal(err)
	}

	for i, g := range groups {
		j, _, err := jobOn(rt1, g.contract.ID)
		if err != nil {
			t.Fatal(err)
		}
		driveToDelivered(t, rt1.HandleConn, rt1.Shard(i).Device().DeviceKey(), g, j)
	}

	// Pre-crash snapshot: only the doomed shard saw WAL append failures —
	// one per post-seal append (uploading->running, the result-stored
	// manifest record, running->stored, stored->delivered).
	snap1 := rt1.MetricsSnapshot()
	for i, want := range []uint64{0, 4, 0} {
		if got := snap1.PerShard[i].WALAppendFailures; got != want {
			t.Errorf("shard %d wal_append_failures = %d, want %d", i, got, want)
		}
	}
	if snap1.Fleet.WALAppendFailures != 4 {
		t.Errorf("fleet wal_append_failures = %d, want 4", snap1.Fleet.WALAppendFailures)
	}

	// Closed form: each shard's coprocessor counters equal a standalone
	// same-seed server executing the identical contract.
	for i, g := range groups {
		solo, err := server.New(server.Config{Workers: 1, Memory: 16, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		solo.Start()
		j, err := solo.Register(g.contract)
		if err != nil {
			t.Fatal(err)
		}
		driveToDelivered(t, solo.HandleConn, solo.Device().DeviceKey(), g, j)
		want := solo.MetricsSnapshot().Coprocessor
		if got := snap1.PerShard[i].Coprocessor; got != want {
			t.Errorf("shard %d coprocessor stats diverge from single-shard closed form:\n got %+v\nwant %+v", i, got, want)
		}
		if want.Gets == 0 || want.PredEvals == 0 {
			t.Errorf("closed form for shard %d is vacuous: %+v", i, want)
		}
		if err := solo.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// Whole-process crash: rt1 is abandoned without Shutdown. Shard 1's
	// durable history ends at Uploading; shards 0 and 2 logged Delivered.
	rt2, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	wantTable := fmt.Sprintf(""+
		"shard 0:\n  %s delivered err=<nil>\n"+
		"shard 1:\n  %s failed err=%v\n  %s pending err=<nil>\n"+
		"shard 2:\n  %s delivered err=<nil>\n",
		groups[0].contract.ID, groups[1].contract.ID, server.ErrInterrupted,
		gPend.contract.ID, groups[2].contract.ID)
	if got := renderFleetJobTable(rt2); got != wantTable {
		t.Fatalf("recovered fleet job table:\n%s\nwant:\n%s", got, wantTable)
	}

	// The directory is rebuilt from the shard WALs.
	for i, g := range groups {
		if shard, _, err := rt2.ShardFor(g.contract.ID); err != nil || shard != i {
			t.Fatalf("recovered routing for %q: shard %d err %v, want shard %d", g.contract.ID, shard, err, i)
		}
	}

	// Shard 1's interrupted job carries the typed sentinel, and a
	// reconnecting recipient gets the verdict immediately.
	jInt, sh1, err := jobOn(rt2, groups[1].contract.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jInt.State() != server.StateFailed || !errors.Is(jInt.Err(), server.ErrInterrupted) {
		t.Fatalf("interrupted job recovered as %s err=%v", jInt.State(), jInt.Err())
	}
	if o := <-groups[1].pipeRecipient(rt2.HandleConn, sh1.Device().DeviceKey()); o.err == nil || !strings.Contains(o.err.Error(), "interrupted") {
		t.Fatalf("recipient on crashed shard got %+v, want interrupted verdict", o)
	}
	// Survivors keep serving: a delivered result lives in the shard's
	// durable result store, so a reconnecting recipient is handed the
	// exact join again across the whole-fleet restart.
	_, sh0, err := rt2.ShardFor(groups[0].contract.ID)
	if err != nil {
		t.Fatal(err)
	}
	if o := <-groups[0].pipeRecipient(rt2.HandleConn, sh0.Device().DeviceKey()); o.err != nil {
		t.Fatalf("recipient on surviving shard refused: %v (want re-fetch from the result store)", o.err)
	} else {
		assertSameRows(t, o.result, groups[0].wantJoin(), "survivor refetch")
	}

	// The pending contract resumes live on the recovered fleet.
	rt2.Start()
	jPend, shP, err := jobOn(rt2, gPend.contract.ID)
	if err != nil {
		t.Fatal(err)
	}
	driveToDelivered(t, rt2.HandleConn, shP.Device().DeviceKey(), gPend, jPend)

	// A second restart reaches the identical verdicts — per-shard recovery
	// wrote its conclusions back to each WAL.
	table2 := renderFleetJobTable(rt2)
	if err := rt2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rt3, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := renderFleetJobTable(rt3); got != table2 {
		t.Fatalf("second fleet recovery diverged:\n%s\nfirst recovery:\n%s", got, table2)
	}
	j3, _, err := jobOn(rt3, groups[1].contract.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(j3.Err(), server.ErrInterrupted) {
		t.Fatalf("second recovery err = %v, want the typed sentinel to survive replay", j3.Err())
	}
	if err := rt3.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestTornResultManifest tears a shard's result-store manifest mid-write:
// shard 1's WAL is sealed at the result-stored faultpoint, so the segment
// reaches disk but its manifest record (and every later transition) does
// not. The live fleet still delivers — the outcome is cached in memory —
// but a restart must reconcile the disagreement per shard:
//
//   - shard 0 (healthy) recovers Delivered with its result intact and
//     re-serves the exact join from the durable store;
//   - shard 1's durable history ends at Running, so its job recovers as
//     the interrupted tombstone, and the orphan segment — present on disk
//     at crash time — is removed, counted once in the shard's
//     result_store_recovery_evictions and nowhere else.
func TestTornResultManifest(t *testing.T) {
	const seed = 888
	dir := t.TempDir()
	faults := wal.NewFaults()
	faults.Set(server.SiteResultStored, wal.Always(wal.ErrCrashed))
	cfg := func() Config {
		return Config{Config: server.Config{Shards: 2, Workers: 1, Memory: 16, DataDir: dir, Seed: seed}}
	}

	boot := cfg()
	boot.ShardFaults = func(shard int) *wal.Faults {
		if shard == 1 {
			return faults
		}
		return nil
	}
	rt1, err := New(boot)
	if err != nil {
		t.Fatal(err)
	}
	rt1.Start()

	gOK := newGroup(t, idOwnedBy(t, rt1.ring, 0, "trm-ok"), "alg5", 61, 62, 5, 5)
	gTorn := newGroup(t, idOwnedBy(t, rt1.ring, 1, "trm-torn"), "alg5", 63, 64, 5, 5)
	for i, g := range []*group{gOK, gTorn} {
		if _, err := rt1.Register(g.contract); err != nil {
			t.Fatal(err)
		}
		j, _, err := jobOn(rt1, g.contract.ID)
		if err != nil {
			t.Fatal(err)
		}
		driveToDelivered(t, rt1.HandleConn, rt1.Shard(i).Device().DeviceKey(), g, j)
	}

	// The seal hit at the manifest append, so only the torn shard counts
	// refused appends: result-stored, running->stored, stored->delivered.
	snap1 := rt1.MetricsSnapshot()
	for i, want := range []uint64{0, 3} {
		if got := snap1.PerShard[i].WALAppendFailures; got != want {
			t.Errorf("shard %d wal_append_failures = %d, want %d", i, got, want)
		}
	}
	// The orphan segment made it to disk before the tear.
	tornSegs := filepath.Join(dir, "shard-1", "results", "*.res")
	if segs, _ := filepath.Glob(tornSegs); len(segs) != 1 {
		t.Fatalf("torn shard has %d segments pre-crash, want the orphan", len(segs))
	}

	// Whole-process crash: rt1 abandoned without Shutdown.
	rt2, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}

	// Healthy shard: Delivered tombstone, result re-served byte-identically
	// from its durable store.
	jOK, shOK, err := jobOn(rt2, gOK.contract.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jOK.State() != server.StateDelivered {
		t.Fatalf("healthy job recovered as %s, want delivered", jOK.State())
	}
	if o := <-gOK.pipeRecipient(rt2.HandleConn, shOK.Device().DeviceKey()); o.err != nil {
		t.Fatalf("healthy shard refused refetch: %v", o.err)
	} else {
		assertSameRows(t, o.result, gOK.wantJoin(), "healthy refetch")
	}

	// Torn shard: consistent interrupted tombstone — the job never durably
	// reached Stored, so recipients get the crash verdict, not an eviction.
	jTorn, shTorn, err := jobOn(rt2, gTorn.contract.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jTorn.State() != server.StateFailed || !errors.Is(jTorn.Err(), server.ErrInterrupted) {
		t.Fatalf("torn job recovered as %s err=%v, want interrupted failure", jTorn.State(), jTorn.Err())
	}
	if o := <-gTorn.pipeRecipient(rt2.HandleConn, shTorn.Device().DeviceKey()); o.err == nil || !strings.Contains(o.err.Error(), "interrupted") {
		t.Fatalf("torn shard recipient got %+v, want interrupted verdict", o)
	}

	// The orphan segment is reclaimed, and only the torn shard counts a
	// recovery eviction; the healthy shard's result still occupies bytes.
	if segs, _ := filepath.Glob(tornSegs); len(segs) != 0 {
		t.Fatalf("orphan segment survived recovery: %v", segs)
	}
	snap2 := rt2.MetricsSnapshot()
	for i, want := range []uint64{0, 1} {
		if got := snap2.PerShard[i].ResultStoreRecoveryEvictions; got != want {
			t.Errorf("shard %d result_store_recovery_evictions = %d, want %d", i, got, want)
		}
	}
	if snap2.Fleet.ResultStoreRecoveryEvictions != 1 {
		t.Errorf("fleet result_store_recovery_evictions = %d, want 1", snap2.Fleet.ResultStoreRecoveryEvictions)
	}
	if snap2.PerShard[0].ResultStoreBytes == 0 {
		t.Error("healthy shard's stored result vanished from the store")
	}
	if snap2.PerShard[1].ResultStoreBytes != 0 {
		t.Errorf("torn shard still accounts %d result bytes", snap2.PerShard[1].ResultStoreBytes)
	}

	// A second restart reaches the identical table — recovery wrote the
	// interrupted verdict back to the torn shard's (healthy, reopened) WAL.
	table := renderFleetJobTable(rt2)
	if err := rt2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rt3, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := renderFleetJobTable(rt3); got != table {
		t.Fatalf("second recovery diverged:\n%s\nfirst recovery:\n%s", got, table)
	}
	if err := rt3.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// jobOn resolves a contract to its job and admitting shard through the
// router directory.
func jobOn(rt *Router, id string) (*server.Job, *server.Server, error) {
	_, sh, err := rt.ShardFor(id)
	if err != nil {
		return nil, nil, err
	}
	j, err := sh.Registry().Lookup(id, "")
	if err != nil {
		return nil, nil, err
	}
	return j, sh, nil
}
