package fleet

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ppj/internal/relation"
	"ppj/internal/server"
)

// TestFleetConcurrentStress hammers a two-shard fleet from three sides at
// once — tenants registering contracts through the router, whole jobs
// running end to end on both shards, and a metrics poller reading fleet
// snapshots throughout — and checks the final books balance. Its real
// teeth are under -race (CI runs the package that way): the router
// directory, the spill path, and the cross-shard snapshot aggregation are
// all exercised while racing.
func TestFleetConcurrentStress(t *testing.T) {
	rt, err := New(Config{Config: server.Config{Shards: 2, Workers: 2, QueueDepth: 32, Memory: 16}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown(context.Background())
	rt.Start()

	const jobs = 12
	algs := []string{"alg3", "alg5", "auto"}
	groups := make([]*group, jobs)
	for i := range groups {
		groups[i] = newGroup(t, fmt.Sprintf("stress-%d", i), algs[i%len(algs)],
			uint64(100+2*i), uint64(101+2*i), 6+i%3, 7+i%2)
	}

	// Metrics poller: reads fleet snapshots concurrently with everything
	// else and checks the monotonic/consistency properties that must hold
	// mid-flight.
	pollDone := make(chan struct{})
	stopPoll := make(chan struct{})
	go func() {
		defer close(pollDone)
		var lastSubmitted uint64
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			snap := rt.MetricsSnapshot()
			if snap.Fleet.Submitted < lastSubmitted {
				t.Errorf("fleet submitted went backwards: %d -> %d", lastSubmitted, snap.Fleet.Submitted)
				return
			}
			lastSubmitted = snap.Fleet.Submitted
			if len(snap.PerShard) != 2 {
				t.Errorf("snapshot has %d shards, want 2", len(snap.PerShard))
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	errCh := make(chan error, jobs)
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			errCh <- driveOne(rt, g)
		}(g)
	}
	wg.Wait()
	close(stopPoll)
	<-pollDone
	for i := 0; i < jobs; i++ {
		if err := <-errCh; err != nil {
			t.Error(err)
		}
	}

	snap := rt.MetricsSnapshot()
	if snap.Fleet.Submitted != jobs {
		t.Errorf("fleet submitted = %d, want %d", snap.Fleet.Submitted, jobs)
	}
	if snap.Fleet.Jobs["delivered"] != jobs {
		t.Errorf("fleet delivered = %d, want %d", snap.Fleet.Jobs["delivered"], jobs)
	}
	var perShard uint64
	for _, ps := range snap.PerShard {
		perShard += ps.Submitted
		var gauges int64
		for _, n := range ps.Jobs {
			gauges += n
		}
		if uint64(gauges) != ps.Submitted {
			t.Errorf("shard %d: gauges sum %d, submitted %d", ps.Shard, gauges, ps.Submitted)
		}
	}
	if perShard != snap.Fleet.Submitted {
		t.Errorf("per-shard submitted sums to %d, fleet says %d", perShard, snap.Fleet.Submitted)
	}
}

// driveOne registers and runs one group end to end against the router,
// error-returning throughout so it is safe off the test goroutine.
func driveOne(rt *Router, g *group) error {
	j, err := rt.Register(g.contract)
	if err != nil {
		return fmt.Errorf("%s: register: %w", g.contract.ID, err)
	}
	return driveAdmitted(rt, g, j)
}

// driveAdmitted runs an already-admitted group's job end to end against
// the router — the shared back half of driveOne and the recurring stress
// driver (whose admissions go through RegisterScheduled instead).
func driveAdmitted(rt *Router, g *group, j *server.Job) error {
	id := g.contract.ID
	_, sh, err := rt.ShardFor(id)
	if err != nil {
		return fmt.Errorf("%s: %w", id, err)
	}
	key := sh.Device().DeviceKey()

	if err := g.pipeProvider(rt.HandleConn, key, g.provA, g.relA); err != nil {
		return fmt.Errorf("%s: provider A: %w", id, err)
	}
	if err := g.pipeProvider(rt.HandleConn, key, g.provB, g.relB); err != nil {
		return fmt.Errorf("%s: provider B: %w", id, err)
	}
	out := g.pipeRecipient(rt.HandleConn, key)
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		return fmt.Errorf("%s: job hung in state %s", id, j.State())
	}
	o := <-out
	if o.err != nil {
		return fmt.Errorf("%s: recipient: %w", id, o.err)
	}
	if !relation.SameMultiset(o.result, g.wantJoin()) {
		return fmt.Errorf("%s: delivered rows differ from reference join", id)
	}
	return nil
}
