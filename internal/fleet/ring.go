// Package fleet scales the join server past one host: a shard router owns
// N server.Servers — each a full simulated host with its own attested
// device, coprocessor worker pool, sealer, and (when durable) write-ahead
// log under DataDir/shard-<i>/ — and dispatches contracts across them by
// consistent hashing on the contract ID, spilling to the least-loaded shard
// when the owner refuses with ErrQueueFull. Crash domains follow the
// shards: one host dying interrupts only the jobs its WAL recorded, and a
// restarted fleet recovers every shard independently. The adversary model
// is unchanged — each shard's host sees exactly the access pattern a
// single-host deployment of its workload would produce, which the
// invariance suite pins per shard.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the number of virtual nodes each shard projects onto
// the ring. More replicas smooth the load split (the ring property test
// pins a 2x-of-mean bound) at a small fixed cost in ring size.
const DefaultReplicas = 128

// ringPoint is one virtual node: a position on the 64-bit ring owned by a
// shard.
type ringPoint struct {
	pos   uint64
	shard int
}

// Ring is a consistent-hash ring over shard indices. Construction is
// deterministic: the same shard set and replica count always yield the same
// key->shard mapping, so a restarted router routes recovered contracts
// exactly as the dead one did, and removing a shard remaps only the keys
// that shard owned (its virtual nodes vanish; every other point is
// unmoved).
type Ring struct {
	points   []ringPoint
	replicas int
}

// NewRing builds a ring over shards 0..n-1.
func NewRing(n, replicas int) *Ring {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return newRingIDs(ids, replicas)
}

// newRingIDs builds a ring over an explicit shard set. The property tests
// use it to compare the full ring against the ring with one shard removed.
func newRingIDs(ids []int, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{points: make([]ringPoint, 0, len(ids)*replicas), replicas: replicas}
	for _, id := range ids {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{pos: ringHash(fmt.Sprintf("shard-%d/%d", id, v)), shard: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// Hash collisions between virtual nodes are broken by shard index so
		// the mapping stays deterministic across constructions.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Owner maps a contract ID to the shard owning it: the first virtual node
// at or clockwise of the key's position.
func (r *Ring) Owner(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].shard
}

// ringHash is FNV-1a, 64-bit, pushed through a splitmix64-style avalanche
// finalizer. Raw FNV of near-identical strings ("shard-0/1", "shard-0/2",
// ...) clusters on the ring badly enough to break the 2x-of-mean balance
// bound; the finalizer spreads those low-entropy differences across all 64
// bits (the balance property test quantifies the result).
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
