package fleet

import (
	"context"
	"crypto/ed25519"
	"errors"
	"net"
	"strings"
	"testing"

	"ppj/internal/relation"
	"ppj/internal/server"
	"ppj/internal/service"
)

// pipeProviderBoth is pipeProvider with the two verdicts kept apart: the
// refusal tests need to assert the handler's typed error and the client's
// surfaced refusal independently.
func pipeProviderBoth(handle connHandler, deviceKey ed25519.PublicKey, g *group, p testParty, rel *relation.Relation) (handlerErr, clientErr error) {
	serverEnd, clientEnd := net.Pipe()
	handler := make(chan error, 1)
	go func() {
		defer serverEnd.Close()
		handler <- handle(serverEnd)
	}()
	cs, err := g.client(p, deviceKey).ConnectContract(clientEnd, service.RoleProvider, g.contract.ID)
	if err == nil {
		err = cs.SubmitRelation(g.contract.ID, rel)
	}
	herr := <-handler
	clientEnd.Close()
	return herr, err
}

// TestUploadLimitsThroughRouter proves the ingest limits thread from the
// fleet config down through every shard: an upload whose declaration cannot
// fit MaxUploadBytes is refused at the begin frame — before a single sealed
// row crosses the wire — the refusal reaches both sides typed, the party's
// upload slot is released, and the job still completes once honest inputs
// arrive.
func TestUploadLimitsThroughRouter(t *testing.T) {
	rt, err := New(Config{Config: server.Config{
		Shards:         2,
		Workers:        1,
		QueueDepth:     4,
		Memory:         8,
		MaxUploadBytes: 2048,
		UploadWindow:   2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Shutdown(context.Background())

	g := newGroup(t, "limits-1", "alg5", 71, 72, 6, 8)
	j, err := rt.Register(g.contract)
	if err != nil {
		t.Fatal(err)
	}
	_, sh, err := rt.ShardFor(g.contract.ID)
	if err != nil {
		t.Fatal(err)
	}
	key := sh.Device().DeviceKey()

	// 200 declared rows need 200 sealed rows of ≥33 bytes — over 2048 by any
	// accounting — so the shard must refuse at begin.
	oversize := relation.GenKeyed(relation.NewRand(73), 200, 5)
	herr, cerr := pipeProviderBoth(rt.HandleConn, key, g, g.provA, oversize)
	if !errors.Is(herr, service.ErrUploadTooLarge) {
		t.Fatalf("handler verdict %v, want ErrUploadTooLarge", herr)
	}
	if cerr == nil || !strings.Contains(cerr.Error(), "size limit") {
		t.Fatalf("client verdict %v, want the size-limit refusal", cerr)
	}
	if j.State() == server.StateFailed {
		t.Fatalf("refused upload failed the job: %v", j.Err())
	}

	// The slot released: the same provider retries with an honest relation
	// and the job runs to delivery under the configured window.
	driveToDelivered(t, rt.HandleConn, key, g, j)

	snap := sh.MetricsSnapshot()
	if snap.Jobs["delivered"] != 1 {
		t.Fatalf("delivered gauge = %d after retry, want 1: %+v", snap.Jobs["delivered"], snap.Jobs)
	}
}

// TestUploadLimitsPerShard pins that each shard enforces the limit
// independently — a second contract landing on the other shard sees the
// same refusal.
func TestUploadLimitsPerShard(t *testing.T) {
	rt, err := New(Config{Config: server.Config{
		Shards:         2,
		Workers:        1,
		QueueDepth:     4,
		Memory:         8,
		MaxUploadBytes: 1024,
	}})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Shutdown(context.Background())

	oversize := relation.GenKeyed(relation.NewRand(74), 100, 5)
	for shard := 0; shard < rt.NumShards(); shard++ {
		id := idOwnedBy(t, rt.ring, shard, "limits-shard")
		g := newGroupRels(t, id, "alg5",
			relation.GenKeyed(relation.NewRand(uint64(shard)+75), 5, 5),
			relation.GenKeyed(relation.NewRand(uint64(shard)+77), 5, 5))
		j, err := rt.Register(g.contract)
		if err != nil {
			t.Fatal(err)
		}
		key := rt.Shard(shard).Device().DeviceKey()
		herr, _ := pipeProviderBoth(rt.HandleConn, key, g, g.provA, oversize)
		if !errors.Is(herr, service.ErrUploadTooLarge) {
			t.Fatalf("shard %d verdict %v, want ErrUploadTooLarge", shard, herr)
		}
		driveToDelivered(t, rt.HandleConn, key, g, j)
	}
}
