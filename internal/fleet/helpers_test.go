package fleet

import (
	"crypto/ed25519"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"ppj/internal/relation"
	"ppj/internal/server"
	"ppj/internal/service"
)

// connHandler abstracts "the serving side of one connection" so the same
// drivers exercise both the router (Router.HandleConn) and a standalone
// single-shard server (Server.HandleConn) — the latter supplies the
// closed-form baselines the sharded path is asserted against.
type connHandler func(io.ReadWriter) error

type testParty struct {
	name string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

func newParty(t *testing.T, name string) testParty {
	t.Helper()
	pub, priv, err := service.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	return testParty{name: name, pub: pub, priv: priv}
}

// group is one contract with its three parties and input relations.
type group struct {
	contract   *service.Contract
	provA      testParty
	provB      testParty
	recip      testParty
	relA, relB *relation.Relation
}

// newGroupRels builds a signed two-provider/one-recipient contract over
// explicit input relations (the invariance tests control contents exactly).
func newGroupRels(t *testing.T, id, alg string, relA, relB *relation.Relation) *group {
	t.Helper()
	g := &group{
		provA: newParty(t, id+"-provA"),
		provB: newParty(t, id+"-provB"),
		recip: newParty(t, id+"-recip"),
		relA:  relA,
		relB:  relB,
	}
	g.contract = &service.Contract{
		ID: id,
		Parties: []service.Party{
			{Name: g.provA.name, Identity: g.provA.pub, Role: service.RoleProvider},
			{Name: g.provB.name, Identity: g.provB.pub, Role: service.RoleProvider},
			{Name: g.recip.name, Identity: g.recip.pub, Role: service.RoleRecipient},
		},
		Predicate: service.PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"},
		Algorithm: alg,
		Epsilon:   1e-9,
	}
	g.contract.Sign(0, g.provA.priv)
	g.contract.Sign(1, g.provB.priv)
	return g
}

func newGroup(t *testing.T, id, alg string, seedA, seedB uint64, rowsA, rowsB int) *group {
	t.Helper()
	return newGroupRels(t, id, alg,
		relation.GenKeyed(relation.NewRand(seedA), rowsA, 5),
		relation.GenKeyed(relation.NewRand(seedB), rowsB, 5))
}

func (g *group) client(p testParty, deviceKey ed25519.PublicKey) *service.Client {
	return &service.Client{
		Name:      p.name,
		Identity:  p.priv,
		DeviceKey: deviceKey,
		Expected:  service.ExpectedStack(),
	}
}

func (g *group) wantJoin() *relation.Relation {
	eq, _ := relation.NewEqui(g.relA.Schema, "key", g.relB.Schema, "key")
	return relation.ReferenceJoin(g.relA, g.relB, eq)
}

// pipeProvider drives one provider upload over a net.Pipe against handle.
// Error-returning (no testing.T) so stress drivers can run it off the test
// goroutine.
func (g *group) pipeProvider(handle connHandler, deviceKey ed25519.PublicKey, p testParty, rel *relation.Relation) error {
	serverEnd, clientEnd := net.Pipe()
	handler := make(chan error, 1)
	go func() {
		defer serverEnd.Close()
		handler <- handle(serverEnd)
	}()
	cs, err := g.client(p, deviceKey).ConnectContract(clientEnd, service.RoleProvider, g.contract.ID)
	if err == nil {
		err = cs.SubmitRelation(g.contract.ID, rel)
	}
	if herr := <-handler; herr != nil && err == nil {
		err = herr
	}
	clientEnd.Close()
	return err
}

type pipeOutcome struct {
	result *relation.Relation
	err    error
}

// pipeRecipient parks the recipient over a net.Pipe; the returned channel
// yields the delivered result (or failure) once the job settles.
func (g *group) pipeRecipient(handle connHandler, deviceKey ed25519.PublicKey) <-chan pipeOutcome {
	serverEnd, clientEnd := net.Pipe()
	go func() {
		defer serverEnd.Close()
		_ = handle(serverEnd)
	}()
	out := make(chan pipeOutcome, 1)
	go func() {
		defer clientEnd.Close()
		cs, err := g.client(g.recip, deviceKey).ConnectContract(clientEnd, service.RoleRecipient, g.contract.ID)
		if err != nil {
			out <- pipeOutcome{err: err}
			return
		}
		res, err := cs.ReceiveResult()
		out <- pipeOutcome{result: res, err: err}
	}()
	return out
}

// driveToDelivered pushes one group's job through the full lifecycle and
// asserts the delivered rows equal the reference join.
func driveToDelivered(t *testing.T, handle connHandler, deviceKey ed25519.PublicKey, g *group, j *server.Job) {
	t.Helper()
	if err := g.pipeProvider(handle, deviceKey, g.provA, g.relA); err != nil {
		t.Fatal(err)
	}
	if err := g.pipeProvider(handle, deviceKey, g.provB, g.relB); err != nil {
		t.Fatal(err)
	}
	out := g.pipeRecipient(handle, deviceKey)
	waitDone(t, j)
	if o := <-out; o.err != nil {
		t.Fatal(o.err)
	} else {
		assertSameRows(t, o.result, g.wantJoin(), g.contract.ID)
	}
}

// waitQueueFull polls until a shard's ready queue hits capacity — jobs are
// enqueued from session-handler goroutines, so the depth is eventually
// consistent with the drivers.
func waitQueueFull(t *testing.T, sh *server.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if l := sh.Load(); l.QueueDepth >= l.QueueCap {
			return
		}
		if time.Now().After(deadline) {
			l := sh.Load()
			t.Fatalf("queue stuck at %d/%d", l.QueueDepth, l.QueueCap)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitDone(t *testing.T, j *server.Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s hung in state %s", j.Contract().ID, j.State())
	}
}

func assertSameRows(t *testing.T, got, want *relation.Relation, label string) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: no result", label)
	}
	gotSet, wantSet := relation.Multiset(got), relation.Multiset(want)
	if got.Len() != want.Len() || len(gotSet) != len(wantSet) {
		t.Fatalf("%s: got %d rows, want %d", label, got.Len(), want.Len())
	}
	for k, v := range wantSet {
		if gotSet[k] != v {
			t.Fatalf("%s: row multiplicity mismatch", label)
		}
	}
}

// renderFleetJobTable is the deterministic fleet-wide job-table view the
// crash suite asserts byte-for-byte: shards in index order, each shard's
// jobs in registration order.
func renderFleetJobTable(rt *Router) string {
	var b strings.Builder
	for i := 0; i < rt.NumShards(); i++ {
		fmt.Fprintf(&b, "shard %d:\n", i)
		for _, j := range rt.Shard(i).Registry().Jobs() {
			fmt.Fprintf(&b, "  %s %s err=%v\n", j.Contract().ID, j.State(), j.Err())
		}
	}
	return b.String()
}

// idOwnedBy derives a contract ID with the given prefix that the ring maps
// to the wanted shard — the crash and invariance suites pin workloads to
// specific shards with it. Deterministic: the ring is a pure function of
// (shard count, replicas), so the same prefix always resolves to the same
// ID across runs and restarts.
func idOwnedBy(t *testing.T, ring *Ring, shard int, prefix string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("%s-%d", prefix, i)
		if ring.Owner(id) == shard {
			return id
		}
	}
	t.Fatalf("no ID with prefix %q maps to shard %d", prefix, shard)
	return ""
}
