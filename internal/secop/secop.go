// Package secop models the secure-coprocessor device platform of §2.2: the
// three features that let a remote party trust computation on an IBM
// 4758-class device — tamper detection/response, secure bootstrapping, and
// outbound authentication (OA). The join simulator (internal/sim) models
// the device's computational interface; this package models its trust
// story, which the service layer uses to authenticate the join code to the
// data providers before they release any data.
//
// The physical sensing grids are simulated by an explicit tamper signal;
// everything downstream of the signal (zeroization, refusal to attest) is
// implemented as on the real device.
package secop

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// ErrZeroized is returned by every operation after tamper response fired.
var ErrZeroized = errors.New("secop: device zeroized after tamper detection")

// ErrNotLoaded is returned when attestation is requested before the code
// hierarchy is fully loaded.
var ErrNotLoaded = errors.New("secop: boot hierarchy incomplete")

// Layer identifies a level of the privilege hierarchy (§2.2.2): "a typical
// hierarchy is Miniboot, OS, and applications with Miniboot having the
// highest privilege".
type Layer int

const (
	// Miniboot is the manufacturer-installed root of trust.
	Miniboot Layer = iota
	// OS is the operating system layer.
	OS
	// App is the application layer (the join code).
	App
	numLayers
)

// String implements fmt.Stringer.
func (l Layer) String() string {
	switch l {
	case Miniboot:
		return "miniboot"
	case OS:
		return "os"
	case App:
		return "app"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// CodeImage is a software load for one layer.
type CodeImage struct {
	Layer Layer
	Name  string
	Code  []byte
}

// Digest is the measurement of an image.
func (c CodeImage) Digest() [32]byte {
	h := sha256.New()
	h.Write([]byte(c.Name))
	h.Write([]byte{0})
	h.Write(c.Code)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Certificate is one link of the outbound-authentication chain: the signer
// layer vouches for the subject layer's measured image and public key.
type Certificate struct {
	SubjectLayer  Layer
	SubjectName   string
	SubjectDigest [32]byte
	SubjectKey    ed25519.PublicKey
	SignerKey     ed25519.PublicKey
	Signature     []byte
}

// payload serialises the signed portion.
func (c Certificate) payload() []byte {
	out := []byte{byte(c.SubjectLayer)}
	out = append(out, byte(len(c.SubjectName)))
	out = append(out, c.SubjectName...)
	out = append(out, c.SubjectDigest[:]...)
	out = append(out, c.SubjectKey...)
	return out
}

// Device is a simulated tamper-responding secure coprocessor.
type Device struct {
	zeroized bool
	// deviceKey is the primary secret destroyed on tamper (§2.2.2: "Upon
	// detection of tamper, the memory is zeroized which destroys the
	// primary secret of the device, the private key").
	deviceKey ed25519.PrivateKey
	devicePub ed25519.PublicKey
	layers    [numLayers]*loadedLayer
}

type loadedLayer struct {
	image CodeImage
	priv  ed25519.PrivateKey
	cert  Certificate
}

// NewDevice manufactures a device: the factory installs the device key pair
// (the hardware root) and ships it with the minimum software configuration.
func NewDevice() (*Device, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("secop: manufacturing device: %w", err)
	}
	return &Device{deviceKey: priv, devicePub: pub}, nil
}

// DeviceKey returns the device's public key — the value the manufacturer
// publishes and relying parties pin.
func (d *Device) DeviceKey() ed25519.PublicKey { return d.devicePub }

// Load installs a code image at its layer. Layers must be loaded in
// privilege order (Miniboot, then OS, then App); each load extends the
// trust boundary (§2.2.2) by certifying the new layer's key and
// measurement with the previous layer's key (the device key for Miniboot).
func (d *Device) Load(img CodeImage) error {
	if d.zeroized {
		return ErrZeroized
	}
	if img.Layer < 0 || img.Layer >= numLayers {
		return fmt.Errorf("secop: unknown layer %d", img.Layer)
	}
	if img.Layer > 0 && d.layers[img.Layer-1] == nil {
		return fmt.Errorf("secop: cannot load %s before %s", img.Layer, img.Layer-1)
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return fmt.Errorf("secop: layer key: %w", err)
	}
	cert := Certificate{
		SubjectLayer:  img.Layer,
		SubjectName:   img.Name,
		SubjectDigest: img.Digest(),
		SubjectKey:    pub,
	}
	if img.Layer == Miniboot {
		cert.SignerKey = d.devicePub
		cert.Signature = ed25519.Sign(d.deviceKey, cert.payload())
	} else {
		parent := d.layers[img.Layer-1]
		cert.SignerKey = parent.cert.SubjectKey
		cert.Signature = ed25519.Sign(parent.priv, cert.payload())
	}
	d.layers[img.Layer] = &loadedLayer{image: img, priv: priv, cert: cert}
	// Loading a layer invalidates everything above it (reload required).
	for l := img.Layer + 1; l < numLayers; l++ {
		d.layers[l] = nil
	}
	return nil
}

// Tamper simulates the sensing grids detecting intrusion: memory is
// zeroized and the device is permanently disabled.
func (d *Device) Tamper() {
	d.zeroized = true
	for i := range d.deviceKey {
		d.deviceKey[i] = 0
	}
	for i := range d.layers {
		if d.layers[i] != nil {
			for j := range d.layers[i].priv {
				d.layers[i].priv[j] = 0
			}
			d.layers[i] = nil
		}
	}
}

// Zeroized reports whether tamper response has fired.
func (d *Device) Zeroized() bool { return d.zeroized }

// Attestation is the outbound-authentication evidence: the certificate
// chain from the device key down to the application, plus a signature over
// a caller-chosen challenge by the application layer's key.
type Attestation struct {
	Chain     []Certificate // Miniboot, OS, App
	Challenge []byte
	Signature []byte
}

// Attest produces outbound authentication for a relying party's challenge:
// proof that a particular software stack runs within this untampered
// device (§2.2.2).
func (d *Device) Attest(challenge []byte) (Attestation, error) {
	if d.zeroized {
		return Attestation{}, ErrZeroized
	}
	var chain []Certificate
	for l := Layer(0); l < numLayers; l++ {
		if d.layers[l] == nil {
			return Attestation{}, fmt.Errorf("%w: layer %s missing", ErrNotLoaded, l)
		}
		chain = append(chain, d.layers[l].cert)
	}
	app := d.layers[App]
	return Attestation{
		Chain:     chain,
		Challenge: append([]byte(nil), challenge...),
		Signature: ed25519.Sign(app.priv, challenge),
	}, nil
}

// AppSign signs arbitrary data with the application layer's key (used by
// the service layer to bind session parameters to the attested code).
func (d *Device) AppSign(data []byte) ([]byte, error) {
	if d.zeroized {
		return nil, ErrZeroized
	}
	if d.layers[App] == nil {
		return nil, ErrNotLoaded
	}
	return ed25519.Sign(d.layers[App].priv, data), nil
}

// AppKey returns the attested application layer's public key.
func (d *Device) AppKey() (ed25519.PublicKey, error) {
	if d.zeroized {
		return nil, ErrZeroized
	}
	if d.layers[App] == nil {
		return nil, ErrNotLoaded
	}
	return d.layers[App].cert.SubjectKey, nil
}

// ExpectedStack pins the measurements a relying party trusts: a map from
// layer to the digest of the known, trusted image.
type ExpectedStack map[Layer][32]byte

// Verify checks an attestation against a pinned device key and expected
// software measurements, implementing the relying party of §2.2.2: "when
// given chains of signed certificates, a relying party will be able to
// authenticate a particular software entity within a particular untampered
// platform".
func Verify(deviceKey ed25519.PublicKey, expected ExpectedStack, att Attestation, challenge []byte) error {
	if len(att.Chain) != int(numLayers) {
		return fmt.Errorf("secop: chain has %d links, want %d", len(att.Chain), numLayers)
	}
	signer := deviceKey
	for l := Layer(0); l < numLayers; l++ {
		cert := att.Chain[l]
		if cert.SubjectLayer != l {
			return fmt.Errorf("secop: link %d is for layer %s", l, cert.SubjectLayer)
		}
		if !cert.SignerKey.Equal(signer) {
			return fmt.Errorf("secop: layer %s signed by unexpected key", l)
		}
		if !ed25519.Verify(signer, cert.payload(), cert.Signature) {
			return fmt.Errorf("secop: layer %s certificate signature invalid", l)
		}
		if want, ok := expected[l]; ok && want != cert.SubjectDigest {
			return fmt.Errorf("secop: layer %s runs unexpected code %q", l, cert.SubjectName)
		}
		signer = cert.SubjectKey
	}
	if string(att.Challenge) != string(challenge) {
		return errors.New("secop: challenge mismatch (replay?)")
	}
	appKey := att.Chain[App].SubjectKey
	if !ed25519.Verify(appKey, challenge, att.Signature) {
		return errors.New("secop: challenge signature invalid")
	}
	return nil
}
