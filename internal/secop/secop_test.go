package secop

import (
	"errors"
	"strings"
	"testing"
)

func loadedDevice(t *testing.T) (*Device, ExpectedStack) {
	t.Helper()
	d, err := NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	images := []CodeImage{
		{Layer: Miniboot, Name: "miniboot-v1", Code: []byte("mb")},
		{Layer: OS, Name: "cp/q-v2", Code: []byte("os")},
		{Layer: App, Name: "ppjoin-v1", Code: []byte("join code")},
	}
	exp := ExpectedStack{}
	for _, img := range images {
		if err := d.Load(img); err != nil {
			t.Fatal(err)
		}
		exp[img.Layer] = img.Digest()
	}
	return d, exp
}

func TestAttestationVerifies(t *testing.T) {
	d, exp := loadedDevice(t)
	challenge := []byte("nonce-123")
	att, err := d.Attest(challenge)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(d.DeviceKey(), exp, att, challenge); err != nil {
		t.Fatalf("valid attestation rejected: %v", err)
	}
}

func TestAttestationRejectsWrongCode(t *testing.T) {
	d, exp := loadedDevice(t)
	// Relying party expects different app code.
	exp[App] = CodeImage{Layer: App, Name: "evil", Code: []byte("x")}.Digest()
	att, err := d.Attest([]byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	err = Verify(d.DeviceKey(), exp, att, []byte("c"))
	if err == nil || !strings.Contains(err.Error(), "unexpected code") {
		t.Fatalf("wrong code accepted: %v", err)
	}
}

func TestAttestationRejectsWrongDevice(t *testing.T) {
	d1, exp := loadedDevice(t)
	d2, _ := loadedDevice(t)
	att, err := d1.Attest([]byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if Verify(d2.DeviceKey(), exp, att, []byte("c")) == nil {
		t.Fatal("attestation accepted under wrong device key")
	}
}

func TestAttestationRejectsReplay(t *testing.T) {
	d, exp := loadedDevice(t)
	att, err := d.Attest([]byte("old"))
	if err != nil {
		t.Fatal(err)
	}
	if Verify(d.DeviceKey(), exp, att, []byte("fresh")) == nil {
		t.Fatal("replayed attestation accepted")
	}
}

func TestAttestationRejectsTamperedChain(t *testing.T) {
	d, exp := loadedDevice(t)
	att, err := d.Attest([]byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	att.Chain[App].SubjectName = "renamed"
	att.Chain[App].SubjectDigest = CodeImage{Layer: App, Name: "renamed", Code: []byte("y")}.Digest()
	exp[App] = att.Chain[App].SubjectDigest
	if Verify(d.DeviceKey(), exp, att, []byte("c")) == nil {
		t.Fatal("tampered chain accepted")
	}
}

func TestBootOrderEnforced(t *testing.T) {
	d, err := NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Load(CodeImage{Layer: App, Name: "app", Code: []byte("x")}); err == nil {
		t.Fatal("app loaded before miniboot")
	}
	if err := d.Load(CodeImage{Layer: OS, Name: "os", Code: []byte("x")}); err == nil {
		t.Fatal("os loaded before miniboot")
	}
	if _, err := d.Attest([]byte("c")); !errors.Is(err, ErrNotLoaded) {
		t.Fatalf("attest on empty device: %v", err)
	}
}

func TestReloadInvalidatesUpperLayers(t *testing.T) {
	d, _ := loadedDevice(t)
	// Reloading the OS must drop the app layer.
	if err := d.Load(CodeImage{Layer: OS, Name: "cp/q-v3", Code: []byte("os2")}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Attest([]byte("c")); !errors.Is(err, ErrNotLoaded) {
		t.Fatalf("attest after OS reload should need app reload: %v", err)
	}
}

func TestTamperZeroizes(t *testing.T) {
	d, _ := loadedDevice(t)
	d.Tamper()
	if !d.Zeroized() {
		t.Fatal("device not zeroized")
	}
	if _, err := d.Attest([]byte("c")); !errors.Is(err, ErrZeroized) {
		t.Fatalf("attest after tamper: %v", err)
	}
	if err := d.Load(CodeImage{Layer: Miniboot, Name: "mb", Code: []byte("x")}); !errors.Is(err, ErrZeroized) {
		t.Fatalf("load after tamper: %v", err)
	}
	if _, err := d.AppSign([]byte("x")); !errors.Is(err, ErrZeroized) {
		t.Fatalf("sign after tamper: %v", err)
	}
}

func TestAppSignVerifiable(t *testing.T) {
	d, _ := loadedDevice(t)
	sig, err := d.AppSign([]byte("session params"))
	if err != nil {
		t.Fatal(err)
	}
	key, err := d.AppKey()
	if err != nil {
		t.Fatal(err)
	}
	att, _ := d.Attest([]byte("c"))
	if !att.Chain[App].SubjectKey.Equal(key) {
		t.Fatal("AppKey does not match attested key")
	}
	_ = sig
}

func TestDigestDependsOnNameAndCode(t *testing.T) {
	a := CodeImage{Layer: App, Name: "x", Code: []byte("code")}
	b := CodeImage{Layer: App, Name: "y", Code: []byte("code")}
	c := CodeImage{Layer: App, Name: "x", Code: []byte("CODE")}
	if a.Digest() == b.Digest() || a.Digest() == c.Digest() {
		t.Fatal("digest collisions across distinct images")
	}
}

func TestLayerString(t *testing.T) {
	if Miniboot.String() != "miniboot" || OS.String() != "os" || App.String() != "app" {
		t.Fatal("layer names wrong")
	}
}
