package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"ppj/internal/server/wal"
	"ppj/internal/service"
)

// renderJobTable is the deterministic job-table view the recovery suite
// asserts byte-for-byte: one line per registered job, in registration
// order.
func renderJobTable(s *Server) string {
	var b strings.Builder
	for _, j := range s.Registry().Jobs() {
		fmt.Fprintf(&b, "%s %s err=%v\n", j.Contract().ID, j.State(), j.Err())
	}
	return b.String()
}

// driveToDelivered pushes one group's job through the full lifecycle on a
// started server.
func driveToDelivered(t *testing.T, srv *Server, g *group, j *Job) {
	t.Helper()
	if err := g.pipeProvider(t, srv, g.provA, g.relA); err != nil {
		t.Fatal(err)
	}
	if err := g.pipeProvider(t, srv, g.provB, g.relB); err != nil {
		t.Fatal(err)
	}
	out := g.pipeRecipient(t, srv)
	waitDone(t, j)
	if o := <-out; o.err != nil {
		t.Fatal(o.err)
	} else {
		assertSameRows(t, o.result, g.wantJoin(), g.contract.ID)
	}
}

// TestRecoverRebuildsJobTable is the golden-state acceptance test: a
// server with a WAL runs one job to Delivered, cancels another, leaves a
// third Pending, and "crashes" (is abandoned without Shutdown). A new
// server on the same data dir must rebuild the exact job table and report
// the exact metrics snapshot, byte for byte.
func TestRecoverRebuildsJobTable(t *testing.T) {
	dir := t.TempDir()
	srv1, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv1.Start()

	gA := newGroup(t, "rec-a", "alg5", 81, 82, 5, 5)
	jA, err := srv1.Register(gA.contract)
	if err != nil {
		t.Fatal(err)
	}
	driveToDelivered(t, srv1, gA, jA)

	gB := newGroup(t, "rec-b", "alg5", 83, 84, 5, 5)
	jB, err := srv1.Register(gB.contract)
	if err != nil {
		t.Fatal(err)
	}
	jB.Cancel()
	waitDone(t, jB)

	gC := newGroup(t, "rec-c", "alg5", 85, 86, 5, 5)
	if _, err := srv1.Register(gC.contract); err != nil {
		t.Fatal(err)
	}
	// Host crash: srv1 is abandoned with its WAL intact.

	srv2, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	wantTable := "" +
		"rec-a delivered err=<nil>\n" +
		"rec-b failed err=context canceled\n" +
		"rec-c pending err=<nil>\n"
	if got := renderJobTable(srv2); got != wantTable {
		t.Fatalf("recovered job table:\n%s\nwant:\n%s", got, wantTable)
	}

	js, err := srv2.MetricsSnapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	wantSnap := `{
  "submitted": 3,
  "jobs": {
    "delivered": 1,
    "failed": 1,
    "pending": 1,
    "running": 0,
    "stored": 0,
    "uploading": 0
  },
  "queue_depth": 0,
  "wal_append_failures": 0,
  "algorithms": {},
  "coprocessor": {
    "Gets": 0,
    "Puts": 0,
    "LogicalReads": 0,
    "Comparisons": 0,
    "PredEvals": 0,
    "DiskRequests": 0
  },
  "devices": {
    "parallel_runs": 0,
    "attached": 0,
    "max": 0
  },
  "result_store_bytes": 292,
  "result_store_evictions": 0,
  "result_store_recovery_evictions": 0,
  "sort_cache_bytes": 0,
  "sort_cache_evictions": 0,
  "sort_cache_hits": 0,
  "sort_cache_misses": 0,
  "scheduler": "fair",
  "recurrences_fired": 0,
  "recurrences_skipped": 0
}`
	if string(js) != wantSnap {
		t.Fatalf("recovered metrics snapshot:\n%s\nwant:\n%s", js, wantSnap)
	}

	// Registrations are durable: re-admitting a recovered contract is a
	// duplicate.
	if _, err := srv2.Register(gA.contract); err == nil {
		t.Fatal("re-registration of recovered contract accepted")
	}
	// The recovered-failed job answers a reconnecting recipient at once.
	if o := <-gB.pipeRecipient(t, srv2); o.err == nil || !strings.Contains(o.err.Error(), "canceled") {
		t.Fatalf("recovered-failed recipient outcome = %+v, want replayed cancellation", o)
	}
	// The recovered-Delivered job's result outlived the crash in the
	// durable result store (the 292 bytes in the snapshot above): a
	// reconnecting recipient is served the exact join again, across the
	// restart.
	if o := <-gA.pipeRecipient(t, srv2); o.err != nil {
		t.Fatalf("recovered-delivered re-fetch refused: %v", o.err)
	} else {
		assertSameRows(t, o.result, gA.wantJoin(), "rec-a refetch")
	}

	// The Pending job resumed live: drive it to Delivered on the new
	// server (clients pin the new device key; identities came from the
	// recovered contract).
	srv2.Start()
	jC, err := srv2.Registry().Lookup("rec-c", "")
	if err != nil {
		t.Fatal(err)
	}
	driveToDelivered(t, srv2, gC, jC)

	// A third incarnation sees the final table — recovery is idempotent.
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv3, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	wantTable = "" +
		"rec-a delivered err=<nil>\n" +
		"rec-b failed err=context canceled\n" +
		"rec-c delivered err=<nil>\n"
	if got := renderJobTable(srv3); got != wantTable {
		t.Fatalf("second recovery job table:\n%s\nwant:\n%s", got, wantTable)
	}
}

// TestCrashBetweenTransitions freezes the WAL at every adjacent state
// boundary via crash faultpoints, restarts on the same dir, and asserts
// the deterministic recovered verdict: a job whose durable state was
// Pending resumes; Uploading or Running at crash time is ErrInterrupted —
// even when the in-memory job went further (or failed differently) after
// the crash instant; Stored at crash time resumes serving its durable
// result to reconnecting recipients.
func TestCrashBetweenTransitions(t *testing.T) {
	cases := []struct {
		name      string
		crashSite string
		cancel    bool // cancel after the first upload instead of finishing
		wantState State
		wantErr   error // nil means the job must be live or serving
	}{
		{"pending-uploading", TransitionSite(StatePending, StateUploading), false, StatePending, nil},
		{"uploading-running", TransitionSite(StateUploading, StateRunning), false, StateFailed, ErrInterrupted},
		{"running-stored", TransitionSite(StateRunning, StateStored), false, StateFailed, ErrInterrupted},
		{"stored-delivered", TransitionSite(StateStored, StateDelivered), false, StateStored, nil},
		{"uploading-failed", TransitionSite(StateUploading, StateFailed), true, StateFailed, ErrInterrupted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			faults := wal.NewFaults()
			faults.Set(tc.crashSite, wal.Always(wal.ErrCrashed))
			srv1, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, Faults: faults})
			if err != nil {
				t.Fatal(err)
			}
			srv1.Start()
			g := newGroup(t, "crash-"+tc.name, "alg5", 91, 92, 5, 5)
			j, err := srv1.Register(g.contract)
			if err != nil {
				t.Fatal(err)
			}
			if tc.cancel {
				if err := g.pipeProvider(t, srv1, g.provA, g.relA); err != nil {
					t.Fatal(err)
				}
				j.Cancel()
				waitDone(t, j)
			} else {
				driveToDelivered(t, srv1, g, j)
			}
			// Abandon srv1: the WAL was sealed at the crash site, so the
			// durable history ends just before that transition.

			srv2, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			j2, err := srv2.Registry().Lookup(g.contract.ID, "")
			if err != nil {
				t.Fatal(err)
			}
			if j2.State() != tc.wantState {
				t.Fatalf("recovered state = %s, want %s (err %v)", j2.State(), tc.wantState, j2.Err())
			}
			if tc.wantErr != nil {
				if !errors.Is(j2.Err(), tc.wantErr) {
					t.Fatalf("recovered err = %v, want %v", j2.Err(), tc.wantErr)
				}
				// Reconnecting recipients get the interrupted verdict
				// immediately instead of hanging.
				if o := <-g.pipeRecipient(t, srv2); o.err == nil || !strings.Contains(o.err.Error(), "interrupted") {
					t.Fatalf("recipient outcome = %+v, want interrupted failure", o)
				}
			} else if tc.wantState == StateStored {
				// The result survived in the durable store: a reconnecting
				// recipient is served the exact join without re-running
				// anything, and the served fetch completes the lifecycle.
				if o := <-g.pipeRecipient(t, srv2); o.err != nil {
					t.Fatalf("stored-job re-fetch refused: %v", o.err)
				} else {
					assertSameRows(t, o.result, g.wantJoin(), tc.name)
				}
				waitDone(t, j2)
				if j2.State() != StateDelivered {
					t.Fatalf("served job ended %s, want Delivered", j2.State())
				}
			} else {
				// The resumed job runs to completion on the new server.
				srv2.Start()
				driveToDelivered(t, srv2, g, j2)
			}

			// A second restart reaches the identical verdict: recovery
			// wrote its conclusions back to the WAL.
			table2 := renderJobTable(srv2)
			if err := srv2.Shutdown(context.Background()); err != nil {
				t.Fatal(err)
			}
			srv3, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if got := renderJobTable(srv3); got != table2 {
				t.Fatalf("second recovery diverged:\n%s\nfirst recovery:\n%s", got, table2)
			}
			if tc.wantErr != nil {
				j3, _ := srv3.Registry().Lookup(g.contract.ID, "")
				if !errors.Is(j3.Err(), tc.wantErr) {
					t.Fatalf("second recovery err = %v, want the typed sentinel to survive replay", j3.Err())
				}
			}
		})
	}
}

// TestRecoveryAfterWriteFaults runs the server through injected storage
// failures — short write, torn final record, fsync failure — restarts on
// the same WAL dir, and asserts the deterministic recovered job table.
func TestRecoveryAfterWriteFaults(t *testing.T) {
	cases := []struct {
		name string
		set  func(f *wal.Faults)
		// Appends in a full run: 1=registration, 2=pending->uploading,
		// 3=uploading->running, 4=result-stored manifest, 5=running->stored,
		// 6=stored->delivered.
		wantState State
		wantErr   error
	}{
		// Registration durable, first transition torn off: durable state
		// Pending, job resumes.
		{"short-write", func(f *wal.Faults) { f.Set(wal.SiteAppend, wal.FailNth(2, wal.ErrShortWrite)) }, StatePending, nil},
		// Uploading durable, running record torn mid-header.
		{"torn-tail", func(f *wal.Faults) { f.Set(wal.SiteAppend, wal.FailNth(3, wal.ErrTornWrite)) }, StateFailed, ErrInterrupted},
		// Record written, fsync fails: the record is on disk and recovery
		// observes Uploading.
		{"fsync-fail", func(f *wal.Faults) { f.Set(wal.SiteSync, wal.FailNth(2, errors.New("fsync: input/output error"))) }, StateFailed, ErrInterrupted},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			faults := wal.NewFaults()
			tc.set(faults)
			srv1, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, Faults: faults})
			if err != nil {
				t.Fatal(err)
			}
			srv1.Start()
			g := newGroup(t, "fault-"+tc.name, "alg5", 95, 96, 5, 5)
			j, err := srv1.Register(g.contract)
			if err != nil {
				t.Fatal(err)
			}
			driveToDelivered(t, srv1, g, j)

			srv2, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			j2, err := srv2.Registry().Lookup(g.contract.ID, "")
			if err != nil {
				t.Fatal(err)
			}
			if j2.State() != tc.wantState {
				t.Fatalf("recovered state = %s (err %v), want %s", j2.State(), j2.Err(), tc.wantState)
			}
			if tc.wantErr != nil {
				if !errors.Is(j2.Err(), tc.wantErr) {
					t.Fatalf("recovered err = %v, want %v", j2.Err(), tc.wantErr)
				}
			} else {
				srv2.Start()
				driveToDelivered(t, srv2, g, j2)
			}
		})
	}
}

// TestRegistrationNotDurableRejected: when the WAL cannot record an
// admission, the tenant is refused up front and the registry stays clean —
// no job exists that a crash would silently lose.
func TestRegistrationNotDurableRejected(t *testing.T) {
	dir := t.TempDir()
	faults := wal.NewFaults()
	faults.Set(SiteRegister, wal.Always(wal.ErrCrashed))
	srv, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	g := newGroup(t, "undurable", "alg5", 97, 98, 4, 4)
	if _, err := srv.Register(g.contract); !errors.Is(err, wal.ErrCrashed) {
		t.Fatalf("registration error = %v, want wrapped wal.ErrCrashed", err)
	}
	if _, err := srv.Registry().Lookup(g.contract.ID, ""); err == nil {
		t.Fatal("unlogged registration left in registry")
	}
	if got := srv.MetricsSnapshot().Submitted; got != 0 {
		t.Fatalf("submitted = %d after refused registration", got)
	}
	srv2, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if n := srv2.Registry().Len(); n != 0 {
		t.Fatalf("recovered %d jobs from refused registration", n)
	}
}

// bulkContract builds a minimal signed two-provider contract for WAL
// volume tests.
func bulkContract(tb testing.TB, id string) *service.Contract {
	tb.Helper()
	newKeys := func() ([]byte, []byte) {
		pub, priv, err := service.NewIdentity()
		if err != nil {
			tb.Fatal(err)
		}
		return pub, priv
	}
	pubA, privA := newKeys()
	pubB, privB := newKeys()
	pubR, _ := newKeys()
	c := &service.Contract{
		ID: id,
		Parties: []service.Party{
			{Name: id + "-provA", Identity: pubA, Role: service.RoleProvider},
			{Name: id + "-provB", Identity: pubB, Role: service.RoleProvider},
			{Name: id + "-recip", Identity: pubR, Role: service.RoleRecipient},
		},
		Predicate: service.PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"},
		Algorithm: "alg5",
		Epsilon:   1e-9,
	}
	c.Sign(0, privA)
	c.Sign(1, privB)
	return c
}

// buildBulkWAL writes an n-job WAL: every job registered, driven through
// Pending→Uploading→Running, and ended in a terminal state (even jobs
// delivered, odd jobs failed).
func buildBulkWAL(tb testing.TB, dir string, n int) {
	tb.Helper()
	store, recs, err := OpenWALStore(dir, nil)
	if err != nil {
		tb.Fatal(err)
	}
	if len(recs) != 0 {
		tb.Fatalf("fresh dir replayed %d records", len(recs))
	}
	for i := 0; i < n; i++ {
		c := bulkContract(tb, fmt.Sprintf("bulk-%04d", i))
		if err := store.LogRegistered(c); err != nil {
			tb.Fatal(err)
		}
		transitions := []struct {
			from, to State
			cause    string
		}{
			{StatePending, StateUploading, ""},
			{StateUploading, StateRunning, ""},
		}
		if i%2 == 0 {
			transitions = append(transitions, struct {
				from, to State
				cause    string
			}{StateRunning, StateDelivered, ""})
		} else {
			transitions = append(transitions, struct {
				from, to State
				cause    string
			}{StateRunning, StateFailed, "context deadline exceeded"})
		}
		for _, tr := range transitions {
			if err := store.LogTransition(c.ID, tr.from, tr.to, tr.cause); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err := store.Close(); err != nil {
		tb.Fatal(err)
	}
}

func checkBulkRecovery(tb testing.TB, srv *Server, n int) {
	tb.Helper()
	if got := srv.Registry().Len(); got != n {
		tb.Fatalf("recovered %d jobs, want %d", got, n)
	}
	snap := srv.MetricsSnapshot()
	if snap.Submitted != uint64(n) {
		tb.Fatalf("submitted = %d, want %d", snap.Submitted, n)
	}
	if d, f := snap.Jobs["delivered"], snap.Jobs["failed"]; d != int64((n+1)/2) || f != int64(n/2) {
		tb.Fatalf("delivered/failed = %d/%d, want %d/%d", d, f, (n+1)/2, n/2)
	}
}

// TestRecover1kJobsUnder1s pins the recovery-latency acceptance bound: a
// 1000-job WAL (4 records per job, signature re-verification included)
// rebuilds in under a second.
func TestRecover1kJobsUnder1s(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-job WAL build is not short")
	}
	dir := t.TempDir()
	const n = 1000
	buildBulkWAL(t, dir, n)
	start := time.Now()
	srv, err := New(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	checkBulkRecovery(t, srv, n)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		t.Logf("recovery of %d-job WAL took %s (bound not enforced under -race)", n, elapsed)
	} else if elapsed > time.Second {
		t.Fatalf("recovery of %d-job WAL took %s, want < 1s", n, elapsed)
	}
}

// BenchmarkRecover1kJobs measures New() on a 1000-job WAL — replay,
// contract decode + re-verification, and job-table rebuild.
func BenchmarkRecover1kJobs(b *testing.B) {
	dir := b.TempDir()
	const n = 1000
	buildBulkWAL(b, dir, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := New(Config{DataDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		checkBulkRecovery(b, srv, n)
		if err := srv.Shutdown(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
