package server

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrQuotaExceeded reports a submission refused by a tenant's admission
// quota — the in-flight cap or the token-bucket submission rate. Like
// ErrQueueFull it is typed backpressure: the refusal happens before any
// WAL append or metric mutation, so a refused submission leaves no trace
// and the gauge invariant (sum of state gauges == submitted) holds.
var ErrQuotaExceeded = errors.New("server: tenant quota exceeded")

// QuotaConfig bounds one tenant's admission.
type QuotaConfig struct {
	// MaxInFlight caps a tenant's unsettled jobs (states before Stored /
	// terminal). Zero or negative: unlimited.
	MaxInFlight int
	// Rate is the token-bucket refill rate in submissions per second. Zero
	// or negative: unlimited (the bucket is bypassed).
	Rate float64
	// Burst is the bucket capacity. When Rate > 0 and Burst < 1 the
	// capacity is 1, so a conforming tenant can always eventually submit.
	Burst float64
}

// unlimited reports a config that admits everything.
func (c QuotaConfig) unlimited() bool { return c.MaxInFlight <= 0 && c.Rate <= 0 }

// Quotas enforces per-tenant admission quotas: a cap on in-flight jobs and
// a token-bucket submission rate. All tenants share one config; state is
// tracked per tenant name (the contract's Tenant field, "" for the
// anonymous tenant). A fleet injects one shared Quotas into every shard so
// the caps hold fleet-wide regardless of where a contract lands.
//
// Acquire is strictly check-then-commit: a refusal mutates nothing — no
// token is consumed, no slot is held — mirroring the AdmissionControl
// invariant that refused work leaves no trace.
type Quotas struct {
	cfg QuotaConfig
	now func() time.Time

	mu      sync.Mutex
	tenants map[string]*tenantState
}

// tenantState is one tenant's live quota state.
type tenantState struct {
	inFlight int
	tokens   float64
	last     time.Time
}

// NewQuotas builds a quota enforcer. now overrides the clock (tests); nil
// uses time.Now. A zero config admits everything.
func NewQuotas(cfg QuotaConfig, now func() time.Time) *Quotas {
	if now == nil {
		now = time.Now
	}
	return &Quotas{cfg: cfg, now: now, tenants: make(map[string]*tenantState)}
}

// burst is the effective bucket capacity.
func (q *Quotas) burst() float64 {
	if q.cfg.Burst < 1 {
		return 1
	}
	return q.cfg.Burst
}

// state returns (creating if needed) a tenant's state. Callers hold mu.
func (q *Quotas) state(tenant string) *tenantState {
	ts, ok := q.tenants[tenant]
	if !ok {
		ts = &tenantState{tokens: q.burst(), last: q.now()}
		q.tenants[tenant] = ts
	}
	return ts
}

// refillLocked advances a tenant's bucket to the current clock.
func (q *Quotas) refillLocked(ts *tenantState) {
	now := q.now()
	if dt := now.Sub(ts.last).Seconds(); dt > 0 && q.cfg.Rate > 0 {
		ts.tokens += dt * q.cfg.Rate
		if max := q.burst(); ts.tokens > max {
			ts.tokens = max
		}
	}
	ts.last = now
}

// Acquire admits one submission for a tenant or refuses it with
// ErrQuotaExceeded. On success the tenant holds one in-flight slot until
// Release. Every check happens before any mutation: a refused submission
// consumes no token and holds no slot.
func (q *Quotas) Acquire(tenant string) error {
	if q == nil || q.cfg.unlimited() {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	ts := q.state(tenant)
	q.refillLocked(ts)
	if q.cfg.MaxInFlight > 0 && ts.inFlight >= q.cfg.MaxInFlight {
		return fmt.Errorf("%w: tenant %q has %d jobs in flight (cap %d)",
			ErrQuotaExceeded, tenant, ts.inFlight, q.cfg.MaxInFlight)
	}
	if q.cfg.Rate > 0 && ts.tokens < 1 {
		return fmt.Errorf("%w: tenant %q submission rate exceeded", ErrQuotaExceeded, tenant)
	}
	if q.cfg.Rate > 0 {
		ts.tokens--
	}
	ts.inFlight++
	return nil
}

// Release returns a tenant's in-flight slot when its job settles (reaches
// Stored or a terminal state).
func (q *Quotas) Release(tenant string) {
	if q == nil || q.cfg.unlimited() {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	ts := q.state(tenant)
	if ts.inFlight > 0 {
		ts.inFlight--
	}
}

// restore re-occupies a tenant's in-flight slot for a live job rebuilt by
// crash recovery, without consuming a token — the original submission
// already paid it.
func (q *Quotas) restore(tenant string) {
	if q == nil || q.cfg.unlimited() {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.state(tenant).inFlight++
}

// InFlight reports a tenant's held slots (tests and introspection).
func (q *Quotas) InFlight(tenant string) int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if ts, ok := q.tenants[tenant]; ok {
		return ts.inFlight
	}
	return 0
}
