package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"ppj/internal/service"
)

// ErrResultUnavailable answers a recipient connecting to a job whose
// result was already delivered. Result rows are retained neither in memory
// after delivery nor in the WAL (only the Delivered verdict is durable),
// so a late or reconnecting recipient — including one reconnecting to a
// Delivered tombstone after a host restart — gets this definite typed
// refusal instead of a replayed result.
var ErrResultUnavailable = errors.New("server: result already delivered; no longer available")

// State is a job's position in its lifecycle. States only move forward:
//
//	Pending → Uploading → Running → Delivered
//	                 \________\___→ Failed
//
// A ready job (all uploads in, all recipients connected) sits in the FIFO
// queue in state Uploading until a worker picks it up; the queue-depth
// gauge counts those.
type State int32

const (
	// StatePending: the contract is registered, no party has connected.
	StatePending State = iota
	// StateUploading: sessions are active; provider relations are arriving.
	StateUploading
	// StateRunning: a worker is executing the join inside T.
	StateRunning
	// StateDelivered: every recipient received the sealed result.
	StateDelivered
	// StateFailed: the job ended without delivering a result (join error,
	// queue backpressure, cancellation, deadline, or shutdown). Recipients
	// that connected are told why.
	StateFailed

	numStates = 5
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateUploading:
		return "uploading"
	case StateRunning:
		return "running"
	case StateDelivered:
		return "delivered"
	case StateFailed:
		return "failed"
	}
	return "unknown"
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDelivered || s == StateFailed }

// Job is one execution of a registered contract: it gathers the parties'
// sessions, waits in the ready queue, runs on a worker, and delivers.
type Job struct {
	svc    *service.Service
	srv    *Server
	ctx    context.Context
	cancel context.CancelFunc

	providers      int
	wantRecipients int

	mu         sync.Mutex
	state      State
	uploaded   int
	recipients []parkedRecipient
	enqueued   bool
	err        error
	runStart   time.Time

	// done closes after the terminal transition and all deliveries.
	done chan struct{}
}

// parkedRecipient is a recipient session awaiting the result.
type parkedRecipient struct {
	name string
	sess *service.Session
}

// Contract returns the contract this job executes.
func (j *Job) Contract() *service.Contract { return j.svc.Contract }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the failure cause of a Failed job (nil otherwise).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Done returns a channel that closes once the job reaches a terminal state
// and every connected recipient has been answered.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel aborts the job: queued or gathering jobs fail with
// context.Canceled; a running job fails as soon as its worker observes the
// cancellation.
func (j *Job) Cancel() { j.cancel() }

// setStateLocked transitions the state, keeps the per-state gauges
// consistent, and appends the transition to the job store. Failure causes
// are durable (j.err is always set before the transition to StateFailed),
// so recovery can replay them; a store error is logged but does not undo
// the in-memory transition — the crash-recovery path owns that gap.
// Callers hold j.mu.
func (j *Job) setStateLocked(to State) {
	from := j.state
	j.srv.metrics.stateMove(from, to)
	j.state = to
	cause := ""
	if to == StateFailed && j.err != nil {
		cause = j.err.Error()
	}
	if err := j.srv.store.LogTransition(j.svc.Contract.ID, from, to, cause); err != nil {
		// The in-memory lifecycle keeps going, but every transition lost
		// here widens the gap a crash would expose — count it so operators
		// see the durability alarm, not just per-transition log lines.
		j.srv.metrics.walAppendFailed()
		j.srv.logf("server: wal: contract %s %s->%s: %v", j.svc.Contract.ID, from, to, err)
	}
}

// noteSession records that a party connected, moving Pending → Uploading.
func (j *Job) noteSession() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StatePending {
		j.setStateLocked(StateUploading)
	}
}

// readyLocked reports (once) that every provider uploaded and every
// recipient is parked; the caller must then enqueue the job.
func (j *Job) readyLocked() bool {
	if j.enqueued || j.state.Terminal() {
		return false
	}
	if j.uploaded >= j.providers && len(j.recipients) >= j.wantRecipients {
		j.enqueued = true
		return true
	}
	return false
}

// providerUploaded counts a completed upload and enqueues the job when it
// becomes ready.
func (j *Job) providerUploaded() {
	j.mu.Lock()
	j.uploaded++
	ready := j.readyLocked()
	j.mu.Unlock()
	if ready {
		j.srv.enqueue(j)
	}
}

// addRecipient parks a recipient session for delivery. If the job already
// failed, the recipient is answered immediately.
func (j *Job) addRecipient(name string, sess *service.Session) error {
	j.mu.Lock()
	if j.state.Terminal() {
		out := service.Outcome{Err: j.err, Algorithm: j.svc.Contract.Algorithm}
		if j.state == StateDelivered {
			// A Delivered job holds no result rows (they are dropped after
			// delivery and never persisted), so delivering j.err == nil here
			// would hand Deliver an outcome with no Schema and panic. The
			// recipient gets a typed refusal instead.
			out.Err = ErrResultUnavailable
		}
		j.mu.Unlock()
		return j.svc.Deliver(sess, out)
	}
	if j.state == StatePending {
		j.setStateLocked(StateUploading)
	}
	j.recipients = append(j.recipients, parkedRecipient{name: name, sess: sess})
	ready := j.readyLocked()
	j.mu.Unlock()
	if ready {
		j.srv.enqueue(j)
	}
	return nil
}

// startRun marks the job Running. It returns false when the job reached a
// terminal state before a worker picked it up (cancellation, deadline,
// shutdown).
func (j *Job) startRun() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.setStateLocked(StateRunning)
	j.runStart = time.Now()
	return true
}

// finish delivers a computed outcome to every parked recipient and settles
// the terminal state. No-op if the job already failed (e.g. deadline fired
// mid-run).
func (j *Job) finish(out service.Outcome) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	recips := j.recipients
	j.recipients = nil
	j.err = out.Err
	if out.Err != nil {
		j.setStateLocked(StateFailed)
	} else {
		j.setStateLocked(StateDelivered)
	}
	elapsed := time.Since(j.runStart)
	j.mu.Unlock()
	j.cancel()
	for _, r := range recips {
		// Best effort: a recipient that hung up forfeits its copy; the
		// others still get theirs.
		_ = j.svc.Deliver(r.sess, out)
	}
	j.srv.metrics.recordRun(out.Algorithm, out.Err == nil, elapsed)
	j.srv.metrics.addStats(out.Stats)
	j.srv.metrics.recordDevices(out.Devices)
	close(j.done)
}

// fail moves the job to Failed with the given cause, answering any parked
// recipients. skipRunning leaves in-flight jobs alone (graceful shutdown
// drains them). Returns true if this call performed the transition.
func (j *Job) fail(cause error, skipRunning bool) bool {
	j.mu.Lock()
	if j.state.Terminal() || (skipRunning && j.state == StateRunning) {
		j.mu.Unlock()
		return false
	}
	j.err = cause
	recips := j.recipients
	j.recipients = nil
	j.setStateLocked(StateFailed)
	j.mu.Unlock()
	j.cancel()
	out := service.Outcome{Err: cause, Algorithm: j.svc.Contract.Algorithm}
	for _, r := range recips {
		_ = j.svc.Deliver(r.sess, out)
	}
	j.srv.metrics.recordFailure(j.svc.Contract.Algorithm)
	close(j.done)
	return true
}

// watch enforces the job's context: cancellation or deadline expiry fails
// the job wherever it is in the lifecycle (a running job is failed so its
// recipients learn the outcome even if the worker is still grinding).
func (j *Job) watch() {
	select {
	case <-j.ctx.Done():
		j.fail(j.ctx.Err(), false)
	case <-j.done:
	}
}
