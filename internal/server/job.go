package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ppj/internal/service"
)

// ErrResultUnavailable answers a recipient connecting to a job whose
// result is gone without a durable eviction verdict — a job whose result
// never reached the store and whose Delivered tombstone predates any
// manifest. Evictions the store can vouch for answer with the richer
// ErrResultEvicted instead.
var ErrResultUnavailable = errors.New("server: result already delivered; no longer available")

// ErrResultEvicted answers a recipient connecting to a job whose result
// was durably stored once but has since been evicted. Match with
// errors.Is; the concrete *ResultEvictedError carries the cause (TTL
// expiry, byte-cap LRU, a torn segment, or a pre-store-era delivery) so
// clients can distinguish "gone forever" flavours.
var ErrResultEvicted = errors.New("server: result evicted from the durable store")

// ResultEvictedError is the concrete ErrResultEvicted with its cause.
type ResultEvictedError struct{ Cause string }

// Error implements error.
func (e *ResultEvictedError) Error() string {
	return fmt.Sprintf("server: result evicted from the durable store (%s)", e.Cause)
}

// Is matches the ErrResultEvicted sentinel.
func (e *ResultEvictedError) Is(target error) bool { return target == ErrResultEvicted }

// State is a job's position in its lifecycle. States only move forward:
//
//	Pending → Uploading → Running → Stored → Delivered
//	                 \________\___→ Failed
//
// A ready job (all uploads in, all recipients connected) sits in the FIFO
// queue in state Uploading until a worker picks it up; the queue-depth
// gauge counts those. A successful run lands in Stored — the sealed result
// is in the durable result store and recipients are being (re)served from
// it — and moves to Delivered once every contracted recipient has fetched
// its copy. (Stored's ordinal sits after Failed so WAL records from older
// logs replay unchanged.)
type State int32

const (
	// StatePending: the contract is registered, no party has connected.
	StatePending State = iota
	// StateUploading: sessions are active; provider relations are arriving.
	StateUploading
	// StateRunning: a worker is executing the join inside T.
	StateRunning
	// StateDelivered: every recipient received the sealed result.
	StateDelivered
	// StateFailed: the job ended without delivering a result (join error,
	// queue backpressure, cancellation, deadline, or shutdown). Recipients
	// that connected are told why.
	StateFailed
	// StateStored: the run succeeded and the sealed result sits in the
	// durable result store; delivery to the contracted recipients is in
	// progress (possibly across disconnects and restarts).
	StateStored

	numStates = 6
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateUploading:
		return "uploading"
	case StateRunning:
		return "running"
	case StateDelivered:
		return "delivered"
	case StateFailed:
		return "failed"
	case StateStored:
		return "stored"
	}
	return "unknown"
}

// Terminal reports whether the state is final. Stored is deliberately not
// terminal: the job still owes deliveries.
func (s State) Terminal() bool { return s == StateDelivered || s == StateFailed }

// Settled reports that the job's outcome is decided (result stored, or the
// job terminal): recipients waiting on it can be answered.
func (s State) Settled() bool { return s.Terminal() || s == StateStored }

// Job is one execution of a registered contract: it gathers the parties'
// sessions, waits in the ready queue, runs on a worker, stores its result,
// and serves deliveries from the store until every recipient has fetched.
type Job struct {
	svc    *service.Service
	srv    *Server
	ctx    context.Context
	cancel context.CancelFunc

	// id is this execution's identity: equal to the contract ID for a
	// contract's first job (so WAL logs and clients from before re-execution
	// replay and route unchanged), "<contract>#<seq>" for resubmissions.
	id  string
	seq int
	// tenant is the contract's quota account; quotaHeld marks an in-flight
	// slot this job must release when it settles.
	tenant    string
	quotaHeld bool
	// priority is the contract's scheduling class, copied at admission so
	// the scheduler never reaches back into the contract.
	priority int

	providers      int
	wantRecipients int

	mu       sync.Mutex
	state    State
	uploaded int
	// present names the distinct recipients currently connected and
	// waiting (readiness counts them); served names those that completed a
	// fetch since the result was stored.
	present  map[string]bool
	served   map[string]bool
	enqueued bool
	err      error
	runStart time.Time
	// out caches the outcome between Stored and Delivered so first-wave
	// recipients are served without a store read; re-fetches after
	// Delivered load from the result store.
	out *service.Outcome

	// settled closes when the outcome is decided (result stored, or the
	// job failed): recipients waiting on the job wake up and serve
	// themselves.
	settled    chan struct{}
	settleOnce sync.Once
	// done closes after the terminal transition: Delivered once every
	// contracted recipient fetched, or Failed.
	done     chan struct{}
	doneOnce sync.Once
}

// Contract returns the contract this job executes.
func (j *Job) Contract() *service.Contract { return j.svc.Contract }

// ID returns the job's per-execution identity: the contract ID for a
// contract's first execution, "<contract>#<seq>" for resubmissions.
func (j *Job) ID() string { return j.id }

// Seq returns the job's 1-based position in its contract's execution
// history.
func (j *Job) Seq() int { return j.seq }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the failure cause of a Failed job (nil otherwise).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Done returns a channel that closes once the job reaches a terminal state
// and every connected recipient has been answered.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel aborts the job: queued or gathering jobs fail with
// context.Canceled; a running job fails as soon as its worker observes the
// cancellation.
func (j *Job) Cancel() { j.cancel() }

// setStateLocked transitions the state, keeps the per-state gauges
// consistent, and appends the transition to the job store. Failure causes
// are durable (j.err is always set before the transition to StateFailed),
// so recovery can replay them; a store error is logged but does not undo
// the in-memory transition — the crash-recovery path owns that gap.
// Callers hold j.mu.
func (j *Job) setStateLocked(to State) {
	from := j.state
	j.srv.metrics.stateMove(from, to)
	j.state = to
	cause := ""
	if to == StateFailed && j.err != nil {
		cause = j.err.Error()
	}
	if err := j.srv.store.LogTransition(j.id, from, to, cause); err != nil {
		// The in-memory lifecycle keeps going, but every transition lost
		// here widens the gap a crash would expose — count it so operators
		// see the durability alarm, not just per-transition log lines.
		j.srv.metrics.walAppendFailed()
		j.srv.logf("server: wal: job %s %s->%s: %v", j.id, from, to, err)
	}
}

// noteSession records that a party connected, moving Pending → Uploading.
func (j *Job) noteSession() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StatePending {
		j.setStateLocked(StateUploading)
	}
}

// readyLocked reports (once) that every provider uploaded and every
// recipient is connected; the caller must then enqueue the job.
func (j *Job) readyLocked() bool {
	if j.enqueued || j.state.Terminal() {
		return false
	}
	if j.uploaded >= j.providers && len(j.present) >= j.wantRecipients {
		j.enqueued = true
		return true
	}
	return false
}

// providerUploaded counts a completed upload and enqueues the job when it
// becomes ready.
func (j *Job) providerUploaded() {
	j.mu.Lock()
	j.uploaded++
	ready := j.readyLocked()
	j.mu.Unlock()
	if ready {
		j.srv.enqueue(j)
	}
}

// noteRecipient registers a connected recipient, moving Pending →
// Uploading and enqueueing the job when it becomes ready. Recipients
// arriving after the outcome is settled never affect readiness — they are
// served straight from the settled job.
func (j *Job) noteRecipient(name string) {
	j.mu.Lock()
	if j.state.Settled() {
		j.mu.Unlock()
		return
	}
	if j.state == StatePending {
		j.setStateLocked(StateUploading)
	}
	if j.present == nil {
		j.present = make(map[string]bool)
	}
	j.present[name] = true
	ready := j.readyLocked()
	j.mu.Unlock()
	if ready {
		j.srv.enqueue(j)
	}
}

// settle wakes every recipient waiting on the outcome and returns the
// job's tenant quota slot — the outcome is decided, so the job no longer
// counts against the in-flight cap. Idempotent.
func (j *Job) settle() {
	j.settleOnce.Do(func() {
		if j.quotaHeld {
			j.srv.quotas.Release(j.tenant)
		}
		close(j.settled)
	})
}

// closeDone performs the done close. Idempotent, because a job can reach
// Delivered through concurrent recipient completions and recovery paths.
func (j *Job) closeDone() { j.doneOnce.Do(func() { close(j.done) }) }

// Settled returns a channel that closes once the job's outcome is decided
// (result stored, or the job failed).
func (j *Job) Settled() <-chan struct{} { return j.settled }

// outcomeForDelivery resolves what a waking recipient is served: the
// failure verdict, the cached in-memory outcome, or the result loaded back
// from the durable store. A missing or evicted result returns the typed
// refusal (ErrResultEvicted / ErrResultUnavailable) for the caller to
// deliver in-band.
func (j *Job) outcomeForDelivery() (service.Outcome, error) {
	j.mu.Lock()
	state, jerr, out := j.state, j.err, j.out
	j.mu.Unlock()
	if state == StateFailed {
		return service.Outcome{Err: jerr, Algorithm: j.svc.Contract.Algorithm}, nil
	}
	if out != nil {
		return *out, nil
	}
	return j.srv.loadResult(j.id)
}

// recipientServed counts a completed fetch; once every contracted
// recipient has fetched, the job transitions Stored → Delivered and done
// closes. The result stays in the store for re-fetches until evicted.
func (j *Job) recipientServed(name string) {
	j.mu.Lock()
	if j.state != StateStored {
		j.mu.Unlock()
		return
	}
	if j.served == nil {
		j.served = make(map[string]bool)
	}
	j.served[name] = true
	if len(j.served) < j.wantRecipients {
		j.mu.Unlock()
		return
	}
	j.setStateLocked(StateDelivered)
	j.out = nil // later re-fetches load from the store
	j.mu.Unlock()
	j.closeDone()
}

// startRun marks the job Running. It returns false when the job reached a
// terminal state before a worker picked it up (cancellation, deadline,
// shutdown).
func (j *Job) startRun() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.setStateLocked(StateRunning)
	j.runStart = time.Now()
	return true
}

// finish settles a computed outcome. A failure settles Failed and wakes
// waiting recipients with the verdict. A success persists the sealed
// result to the durable store and its manifest record to the WAL first,
// then transitions Running → Stored: if the process dies mid-persist, the
// WAL never says Stored and recovery fails the job as interrupted instead
// of pointing recipients at nothing. Recipients then serve themselves
// (Server.serveRecipient); the last contracted fetch moves Stored →
// Delivered. No-op if the job already failed (e.g. deadline fired
// mid-run).
func (j *Job) finish(out service.Outcome) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	if out.Err != nil {
		j.err = out.Err
		j.setStateLocked(StateFailed)
		elapsed := time.Since(j.runStart)
		j.mu.Unlock()
		j.settle()
		j.cancel()
		j.srv.metrics.recordRun(out.Algorithm, false, elapsed)
		j.srv.metrics.addStats(out.Stats)
		j.srv.metrics.recordDevices(out.Devices)
		j.closeDone()
		return
	}
	j.mu.Unlock()
	j.srv.storeResult(j.id, &out)
	j.mu.Lock()
	if j.state.Terminal() {
		// Failed while persisting (deadline, shutdown): the verdict stands;
		// the stored segment is an orphan the next recovery removes.
		j.mu.Unlock()
		return
	}
	j.out = &out
	j.setStateLocked(StateStored)
	elapsed := time.Since(j.runStart)
	j.mu.Unlock()
	j.settle()
	// The job deadline no longer governs: the result is durable, and
	// delivery pace belongs to the recipients (and the store's TTL).
	j.cancel()
	j.srv.metrics.recordRun(out.Algorithm, true, elapsed)
	j.srv.metrics.addStats(out.Stats)
	j.srv.metrics.recordDevices(out.Devices)
}

// fail moves the job to Failed with the given cause, waking any waiting
// recipients with it. skipRunning leaves in-flight jobs alone (graceful
// shutdown drains them); a job whose result is already Stored can no
// longer fail — the outcome is durable. Returns true if this call
// performed the transition.
func (j *Job) fail(cause error, skipRunning bool) bool {
	j.mu.Lock()
	if j.state.Terminal() || j.state == StateStored || (skipRunning && j.state == StateRunning) {
		j.mu.Unlock()
		return false
	}
	j.err = cause
	j.setStateLocked(StateFailed)
	j.mu.Unlock()
	j.settle()
	j.cancel()
	j.srv.metrics.recordFailure(j.svc.Contract.Algorithm)
	j.closeDone()
	return true
}

// watch enforces the job's context: cancellation or deadline expiry fails
// the job wherever it is in the lifecycle (a running job is failed so its
// recipients learn the outcome even if the worker is still grinding). A
// settled job is out of the deadline's reach — a stored result waits for
// its recipients as long as the store keeps it.
func (j *Job) watch() {
	select {
	case <-j.ctx.Done():
		j.fail(j.ctx.Err(), false)
	case <-j.settled:
	}
}
