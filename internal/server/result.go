package server

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"ppj/internal/relation"
	"ppj/internal/server/resultstore"
	"ppj/internal/service"
)

// resultMeta is the stored half of an Outcome that is not rows: everything
// delivery needs to rebuild the begin frame after a restart. It is sealed
// inside the segment's header record (the aggregate cell in particular
// must never sit on the host's disk in plaintext).
type resultMeta struct {
	Attrs     []relation.Attr
	HasSchema bool
	Padded    bool
	Agg       []byte
	Algorithm string
	Devices   int
}

// encodeResultMeta serialises an outcome's non-row fields.
func encodeResultMeta(out *service.Outcome) ([]byte, error) {
	m := resultMeta{Padded: out.Padded, Agg: out.Agg, Algorithm: out.Algorithm, Devices: out.Devices}
	if out.Schema != nil {
		m.HasSchema = true
		m.Attrs = make([]relation.Attr, out.Schema.NumAttrs())
		for i := range m.Attrs {
			m.Attrs[i] = out.Schema.Attr(i)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("server: encoding result meta: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeResultMeta is encodeResultMeta's inverse (rows are attached by the
// caller).
func decodeResultMeta(raw []byte) (service.Outcome, error) {
	var m resultMeta
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&m); err != nil {
		return service.Outcome{}, fmt.Errorf("server: decoding result meta: %w", err)
	}
	out := service.Outcome{Padded: m.Padded, Agg: m.Agg, Algorithm: m.Algorithm, Devices: m.Devices}
	if m.HasSchema {
		schema, err := relation.NewSchema(m.Attrs...)
		if err != nil {
			return service.Outcome{}, err
		}
		out.Schema = schema
	}
	return out, nil
}

// walJournal routes the result store's manifest events into the server's
// job Store, so the manifest and the job lifecycle share one log. An
// append the log refuses is counted like any lost transition: the live
// index keeps going, and a non-zero counter means recovery would lag it.
type walJournal struct{ s *Server }

// ResultStored implements resultstore.Journal.
func (w walJournal) ResultStored(id string, size int64) error {
	if err := w.s.store.LogResultStored(id, size); err != nil {
		w.s.metrics.walAppendFailed()
		w.s.logf("server: wal: result stored %s: %v", id, err)
		return err
	}
	return nil
}

// ResultEvicted implements resultstore.Journal.
func (w walJournal) ResultEvicted(id, cause string) error {
	if err := w.s.store.LogResultEvicted(id, cause); err != nil {
		w.s.metrics.walAppendFailed()
		w.s.logf("server: wal: result evicted %s (%s): %v", id, cause, err)
		return err
	}
	return nil
}

// storeResult persists a successful outcome to the result store (segment
// plus manifest record). Failures don't fail the job: the outcome stays
// cached in memory for this process's recipients, the refusal or error is
// durable where it can be (a cap refusal tombstones the ID), and a crash
// before every recipient fetched resolves against whatever the WAL says.
func (s *Server) storeResult(id string, out *service.Outcome) {
	meta, err := encodeResultMeta(out)
	if err != nil {
		s.logf("server: result store: %s: %v", id, err)
		return
	}
	if err := s.results.Put(id, meta, out.Rows); err != nil {
		s.logf("server: result store: %s: %v", id, err)
	}
}

// loadResult rebuilds a delivery outcome from the result store. Gone
// results map to the typed refusals recipients are answered with:
// *ResultEvictedError (with its durable cause) for anything the store
// tombstoned, ErrResultUnavailable when there is no trace at all.
func (s *Server) loadResult(id string) (service.Outcome, error) {
	meta, rows, err := s.results.Get(id)
	if err != nil {
		var ev *resultstore.EvictedError
		if errors.As(err, &ev) {
			return service.Outcome{}, &ResultEvictedError{Cause: string(ev.Cause)}
		}
		return service.Outcome{}, ErrResultUnavailable
	}
	out, err := decodeResultMeta(meta)
	if err != nil {
		return service.Outcome{}, err
	}
	out.Rows = rows
	return out, nil
}

// serveRecipient is a recipient connection's whole life after the
// handshake: register presence (feeding job readiness), wait for the
// outcome to settle, then deliver — streamed from the hello's resume
// offset on v2 sessions, one-shot on older ones. A completed fetch counts
// toward the Stored → Delivered transition; a broken stream leaves the
// job Stored and the result in the store, so the recipient can reconnect
// and resume. Gone results are refused in-band with the typed eviction
// verdict, which is also returned to the serving layer.
func (s *Server) serveRecipient(j *Job, name string, sess *service.Session, resume uint32) error {
	j.noteRecipient(name)
	<-j.Settled()
	out, err := j.outcomeForDelivery()
	if err != nil {
		_ = j.svc.DeliverStream(sess, service.Outcome{Err: err, Algorithm: j.svc.Contract.Algorithm}, 0)
		return err
	}
	if err := j.svc.DeliverStream(sess, out, resume); err != nil {
		return fmt.Errorf("server: delivering to %s: %w", name, err)
	}
	j.recipientServed(name)
	return nil
}
