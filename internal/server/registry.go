package server

import (
	"errors"
	"fmt"
	"sync"

	"ppj/internal/service"
)

// ErrUnknownContract reports a hello that names no registered contract.
var ErrUnknownContract = errors.New("server: unknown contract")

// ErrUnknownJob reports a hello whose JobID names no execution of its
// contract.
var ErrUnknownJob = errors.New("server: unknown job")

// ErrAmbiguousContract reports an ID-less hello that cannot be routed
// because several contracts are registered; the connection is refused with
// this typed error rather than guessed at (or left hanging).
var ErrAmbiguousContract = errors.New("server: ambiguous contract: hello names no contract")

// contractEntry is one registered contract and its execution history, in
// submission order. jobs[0] is the original Register; later entries are
// Resubmit re-executions.
type contractEntry struct {
	contract *service.Contract
	jobs     []*Job
}

// Registry maps contract IDs to their execution histories and job IDs to
// jobs, so one listener can serve sessions for any registered contract and
// any execution of it: the hello's ContractID routes the connection
// (§3.3.3's "contracts are kept encrypted at the server", made
// multi-tenant), and its JobID — empty for "latest" — picks the run.
type Registry struct {
	mu        sync.RWMutex
	contracts map[string]*contractEntry
	jobsByID  map[string]*Job
	order     []string // contract IDs in registration order
}

func newRegistry() *Registry {
	return &Registry{
		contracts: make(map[string]*contractEntry),
		jobsByID:  make(map[string]*Job),
	}
}

// add registers a contract's first job under its contract ID.
func (r *Registry) add(j *Job) error {
	id := j.Contract().ID
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.contracts[id]; dup {
		return fmt.Errorf("server: contract %q already registered", id)
	}
	r.contracts[id] = &contractEntry{contract: j.Contract(), jobs: []*Job{j}}
	r.jobsByID[j.ID()] = j
	r.order = append(r.order, id)
	return nil
}

// addExecution appends a re-execution to its contract's history.
func (r *Registry) addExecution(j *Job) error {
	id := j.Contract().ID
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.contracts[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownContract, id)
	}
	if _, dup := r.jobsByID[j.ID()]; dup {
		return fmt.Errorf("server: job %q already registered", j.ID())
	}
	e.jobs = append(e.jobs, j)
	r.jobsByID[j.ID()] = j
	return nil
}

// Lookup resolves a hello's (contract ID, job ID) pair to a job. An empty
// job ID selects the contract's latest execution — what every pre-job
// client asks for, and identical to the old behavior for never-resubmitted
// contracts. An empty contract ID is accepted only when exactly one
// contract is registered (backward compatibility with single-contract
// clients that predate ContractID in the hello).
func (r *Registry) Lookup(contractID, jobID string) (*Job, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if contractID == "" && jobID != "" {
		contractID = contractOfJob(jobID)
	}
	if contractID == "" {
		if len(r.order) == 0 {
			return nil, fmt.Errorf("%w: hello names no contract and none are registered", ErrUnknownContract)
		}
		if len(r.order) > 1 {
			return nil, fmt.Errorf("%w; %d are registered", ErrAmbiguousContract, len(r.order))
		}
		contractID = r.order[0]
	}
	e, ok := r.contracts[contractID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownContract, contractID)
	}
	if jobID == "" {
		return e.jobs[len(e.jobs)-1], nil
	}
	j, ok := r.jobsByID[jobID]
	if !ok || j.Contract().ID != contractID {
		return nil, fmt.Errorf("%w: %q has no execution %q", ErrUnknownJob, contractID, jobID)
	}
	return j, nil
}

// has reports whether a contract ID is registered. Register's admission
// section uses it for the duplicate check that must precede the WAL append
// (a refused duplicate must leave no record behind).
func (r *Registry) has(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.contracts[id]
	return ok
}

// Contract returns a registered contract.
func (r *Registry) Contract(id string) (*service.Contract, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.contracts[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownContract, id)
	}
	return e.contract, nil
}

// Executions returns a contract's jobs in submission order.
func (r *Registry) Executions(id string) []*Job {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.contracts[id]
	if !ok {
		return nil
	}
	return append([]*Job(nil), e.jobs...)
}

// Jobs returns every job — all executions of all contracts — in contract
// registration order, executions in submission order within a contract.
func (r *Registry) Jobs() []*Job {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Job
	for _, id := range r.order {
		out = append(out, r.contracts[id].jobs...)
	}
	return out
}

// ContractIDs returns the registered contract IDs in registration order.
func (r *Registry) ContractIDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Len returns the number of registered contracts.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.order)
}
