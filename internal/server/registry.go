package server

import (
	"errors"
	"fmt"
	"sync"
)

// ErrUnknownContract reports a hello that names no registered contract.
var ErrUnknownContract = errors.New("server: unknown contract")

// ErrAmbiguousContract reports an ID-less hello that cannot be routed
// because several contracts are registered; the connection is refused with
// this typed error rather than guessed at (or left hanging).
var ErrAmbiguousContract = errors.New("server: ambiguous contract: hello names no contract")

// Registry maps contract IDs to their jobs, so one listener can serve
// sessions for any registered contract: the hello's ContractID routes the
// connection (§3.3.3's "contracts are kept encrypted at the server", made
// multi-tenant).
type Registry struct {
	mu    sync.RWMutex
	jobs  map[string]*Job
	order []string
}

func newRegistry() *Registry {
	return &Registry{jobs: make(map[string]*Job)}
}

// add registers a job under its contract ID.
func (r *Registry) add(j *Job) error {
	id := j.Contract().ID
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.jobs[id]; dup {
		return fmt.Errorf("server: contract %q already registered", id)
	}
	r.jobs[id] = j
	r.order = append(r.order, id)
	return nil
}

// Lookup resolves a contract ID to its job. An empty ID is accepted only
// when exactly one contract is registered (backward compatibility with
// single-contract clients that predate ContractID in the hello).
func (r *Registry) Lookup(id string) (*Job, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id == "" {
		if len(r.order) == 1 {
			return r.jobs[r.order[0]], nil
		}
		if len(r.order) == 0 {
			return nil, fmt.Errorf("%w: hello names no contract and none are registered", ErrUnknownContract)
		}
		return nil, fmt.Errorf("%w; %d are registered", ErrAmbiguousContract, len(r.order))
	}
	j, ok := r.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownContract, id)
	}
	return j, nil
}

// has reports whether id is registered. Register's admission section uses
// it for the duplicate check that must precede the WAL append (a refused
// duplicate must leave no record behind).
func (r *Registry) has(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.jobs[id]
	return ok
}

// Jobs returns every registered job in registration order.
func (r *Registry) Jobs() []*Job {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Job, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.jobs[id])
	}
	return out
}

// Len returns the number of registered contracts.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.order)
}
