package server

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"ppj/internal/service"
)

// stallConn wraps a conn and freezes its write side after a byte budget: the
// handshake and the first chunks pass, then the producer goes silent
// mid-stream — the shape of a stalled or vanished provider that holds its
// TCP connection open.
type stallConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
	quit   chan struct{}
}

func (c *stallConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	over := c.budget-len(p) < 0
	if !over {
		c.budget -= len(p)
	}
	c.mu.Unlock()
	if over {
		<-c.quit
		return 0, net.ErrClosed
	}
	return c.Conn.Write(p)
}

// TestUploadDeadlineFailsStalledJob pins the server-side recovery story for
// the streaming ingest: a provider that stalls mid-upload must not pin a
// session goroutine forever. Config.UploadDeadline bounds the upload, the
// handler surfaces service.ErrUploadTruncated, the job fails with the same
// typed verdict, and the metrics gauges stay consistent.
func TestUploadDeadlineFailsStalledJob(t *testing.T) {
	srv, err := New(Config{
		Workers:        1,
		QueueDepth:     4,
		Memory:         8,
		JobTimeout:     time.Minute,
		UploadDeadline: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() { srv.Shutdown(context.Background()) })

	g := newGroup(t, "stall-1", "alg5", 61, 62, 600, 4)
	j, err := srv.Register(g.contract)
	if err != nil {
		t.Fatal(err)
	}

	serverEnd, clientEnd := net.Pipe()
	quit := make(chan struct{})
	t.Cleanup(func() { close(quit); clientEnd.Close(); serverEnd.Close() })

	handler := make(chan error, 1)
	go func() { handler <- srv.HandleConn(serverEnd) }()

	// ~8KB covers the handshake (~500B), the begin frame and the first
	// handful of 4-row chunks of the 600-row relation; the stream then
	// freezes with most of the declaration outstanding.
	stalled := &stallConn{Conn: clientEnd, budget: 8 << 10, quit: quit}
	go func() {
		cs, err := g.client(g.provA, srv).ConnectContract(stalled, service.RoleProvider, g.contract.ID)
		if err != nil {
			return
		}
		_ = cs.SubmitRelationOpts(g.contract.ID, g.relA, service.UploadOptions{ChunkRows: 4})
	}()

	select {
	case herr := <-handler:
		if !errors.Is(herr, service.ErrUploadTruncated) {
			t.Fatalf("handler returned %v, want ErrUploadTruncated", herr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("handler still blocked on the stalled upload after 10s")
	}

	waitDone(t, j)
	if j.State() != StateFailed {
		t.Fatalf("job state %s after upload stall, want failed", j.State())
	}
	if !errors.Is(j.Err(), service.ErrUploadTruncated) {
		t.Fatalf("job failed with %v, want ErrUploadTruncated", j.Err())
	}

	snap := srv.MetricsSnapshot()
	var sum int64
	for _, v := range snap.Jobs {
		sum += v
	}
	if uint64(sum) != snap.Submitted {
		t.Fatalf("gauges sum to %d, submitted %d: %+v", sum, snap.Submitted, snap.Jobs)
	}
	if snap.Jobs["failed"] != 1 {
		t.Fatalf("failed gauge = %d, want 1: %+v", snap.Jobs["failed"], snap.Jobs)
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth %d after failed upload, want 0", snap.QueueDepth)
	}
}

// TestUploadDeadlineSparesHealthyUpload is the other half of the guarantee:
// a deadline generous enough for an honest stream must not clip it.
func TestUploadDeadlineSparesHealthyUpload(t *testing.T) {
	srv, err := New(Config{
		Workers:        1,
		QueueDepth:     4,
		Memory:         16,
		UploadDeadline: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() { srv.Shutdown(context.Background()) })

	g := newGroup(t, "stall-2", "alg5", 63, 64, 6, 8)
	j, err := srv.Register(g.contract)
	if err != nil {
		t.Fatal(err)
	}
	recv := g.pipeRecipient(t, srv)
	if err := g.pipeProvider(t, srv, g.provA, g.relA); err != nil {
		t.Fatal(err)
	}
	if err := g.pipeProvider(t, srv, g.provB, g.relB); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != StateDelivered {
		t.Fatalf("job state %s, want delivered (err %v)", j.State(), j.Err())
	}
	out := <-recv
	if out.err != nil {
		t.Fatal(out.err)
	}
	assertSameRows(t, out.result, g.wantJoin(), "deadline-spared join")
}
