package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"testing"
	"time"

	"ppj/internal/clock"
	"ppj/internal/server/wal"
	"ppj/internal/service"
)

// renderSchedules is the deterministic view the recurrence crash suite
// asserts byte-for-byte: every live schedule, sorted by contract ID, with
// its interval and next due instant.
func renderSchedules(s *Server) string {
	scheds := s.Schedules()
	ids := make([]string, 0, len(scheds))
	for id := range scheds {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		sc := scheds[id]
		fmt.Fprintf(&b, "%s every=%s next=%d\n", id, sc.Every, sc.Next.UnixNano())
	}
	return b.String()
}

// TestRecurringFiresWithinOneTick pins the basic recurrence contract on a
// fake clock: nothing fires before the due instant, the first Tick at or
// after it resubmits exactly once, the schedule advances exactly one
// interval, and a repeated Tick at the same instant is a no-op.
func TestRecurringFiresWithinOneTick(t *testing.T) {
	t0 := time.Unix(1_000, 0)
	fake := clock.NewFake(t0)
	srv, err := New(Config{Workers: 1, Memory: 16, Clock: fake})
	if err != nil {
		t.Fatal(err)
	}
	g := tenantGroup(t, "recur", "acme", 70)
	if _, err := srv.RegisterScheduled(g.contract, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := srv.RegisterScheduled(g.contract, time.Minute); err != nil {
		t.Fatal(err)
	}
	if sc, ok := srv.Schedules()["recur"]; !ok || sc.Every != time.Minute || !sc.Next.Equal(t0.Add(time.Minute)) {
		t.Fatalf("schedule after registration = %+v, want every=1m next=t0+1m", sc)
	}
	if fired := srv.Tick(); fired != 0 {
		t.Fatalf("Tick before due fired %d", fired)
	}
	fake.Advance(time.Minute - time.Second)
	if fired := srv.Tick(); fired != 0 {
		t.Fatalf("Tick one second early fired %d", fired)
	}
	fake.Advance(time.Second) // exactly the due instant
	if fired := srv.Tick(); fired != 1 {
		t.Fatalf("Tick at due fired %d, want 1", fired)
	}
	if n := len(srv.Registry().Executions("recur")); n != 2 {
		t.Fatalf("history has %d executions after the fire, want 2", n)
	}
	if j2, err := srv.Registry().Lookup("recur", "recur#2"); err != nil || j2.State() != StatePending {
		t.Fatalf("fired re-execution = %v (%v), want pending recur#2", j2, err)
	}
	if sc := srv.Schedules()["recur"]; !sc.Next.Equal(t0.Add(2 * time.Minute)) {
		t.Fatalf("schedule advanced to %v, want t0+2m", sc.Next)
	}
	if fired := srv.Tick(); fired != 0 {
		t.Fatalf("repeated Tick at the same instant fired %d", fired)
	}
	snap := srv.MetricsSnapshot()
	if snap.RecurrencesFired != 1 || snap.RecurrencesSkipped != 0 {
		t.Fatalf("fired/skipped = %d/%d, want 1/0", snap.RecurrencesFired, snap.RecurrencesSkipped)
	}
}

// TestRecurringSkipsMissedIntervals pins catch-up semantics: a clock that
// jumps many intervals (a stalled tick loop, a long outage) produces ONE
// fire and a due instant in the future — never a burst of back-to-back
// re-executions demanding uploads the providers are not offering.
func TestRecurringSkipsMissedIntervals(t *testing.T) {
	t0 := time.Unix(2_000, 0)
	fake := clock.NewFake(t0)
	srv, err := New(Config{Workers: 1, Memory: 16, Clock: fake})
	if err != nil {
		t.Fatal(err)
	}
	g := tenantGroup(t, "recur-gap", "acme", 71)
	if _, err := srv.RegisterScheduled(g.contract, time.Minute); err != nil {
		t.Fatal(err)
	}
	fake.Advance(10*time.Minute + 30*time.Second)
	if fired := srv.Tick(); fired != 1 {
		t.Fatalf("Tick after a 10-interval gap fired %d, want 1", fired)
	}
	if sc := srv.Schedules()["recur-gap"]; !sc.Next.Equal(t0.Add(11 * time.Minute)) {
		t.Fatalf("post-gap due = %v, want t0+11m (whole missed intervals skipped)", sc.Next)
	}
	if n := len(srv.Registry().Executions("recur-gap")); n != 2 {
		t.Fatalf("history has %d executions, want 2 (no catch-up burst)", n)
	}
}

// TestRecurringScheduleSurvivesRestart is the tentpole's durability
// acceptance: a schedule registered before a restart recovers byte-for-
// byte (same interval, same absolute due instant — not "now + every"),
// fires within one tick of its due time on the restarted server, and the
// advanced due-time is itself durable across a further restart.
func TestRecurringScheduleSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(50_000, 0)
	srv1, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, Clock: clock.NewFake(t0)})
	if err != nil {
		t.Fatal(err)
	}
	g := tenantGroup(t, "recur-restart", "acme", 72)
	if _, err := srv1.RegisterScheduled(g.contract, time.Minute); err != nil {
		t.Fatal(err)
	}
	want := renderSchedules(srv1)
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart with the clock unmoved: the schedule is exactly as journaled.
	fake2 := clock.NewFake(t0)
	srv2, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, Clock: fake2})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderSchedules(srv2); got != want {
		t.Fatalf("recovered schedules:\n%s\nwant:\n%s", got, want)
	}
	// The recovered schedule fires within one tick of its due instant.
	// (srv1's clean Shutdown durably failed the still-queued seq=1 job —
	// that is the shutdown contract, and the history must show it.)
	fake2.Advance(time.Minute)
	if fired := srv2.Tick(); fired != 1 {
		t.Fatalf("recovered schedule fired %d at due, want 1", fired)
	}
	wantExecs := "recur-restart seq=1 failed err=server: shutting down\n" +
		"recur-restart#2 seq=2 pending err=<nil>\n"
	if got := renderExecutions(srv2); got != wantExecs {
		t.Fatalf("executions after recovered fire:\n%s\nwant:\n%s", got, wantExecs)
	}
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Third boot, clock at the fire instant: the ADVANCED due-time was
	// journaled, so nothing re-fires and the history is stable — twice.
	// srv2's Shutdown failed the queued seq=2 the same way srv1 failed
	// seq=1; with both executions terminal, further clean restarts leave
	// every byte unchanged.
	wantSched := "recur-restart every=1m0s next=" + fmt.Sprint(t0.Add(2*time.Minute).UnixNano()) + "\n"
	wantExecs = "recur-restart seq=1 failed err=server: shutting down\n" +
		"recur-restart#2 seq=2 failed err=server: shutting down\n"
	for i := 0; i < 2; i++ {
		srvN, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, Clock: clock.NewFake(t0.Add(time.Minute))})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderSchedules(srvN); got != wantSched {
			t.Fatalf("boot %d schedules:\n%s\nwant:\n%s", i+3, got, wantSched)
		}
		if fired := srvN.Tick(); fired != 0 {
			t.Fatalf("boot %d re-fired %d times at the already-journaled instant", i+3, fired)
		}
		if got := renderExecutions(srvN); got != wantExecs {
			t.Fatalf("boot %d executions:\n%s\nwant:\n%s", i+3, got, wantExecs)
		}
		if err := srvN.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashDuringScheduleAdvanceRecoversByteForByte seals the WAL at the
// TypeScheduled fault site on the FIRE's append (the registration-time
// schedule record is allowed through): the fire is refused and counted as
// a skip, no ghost re-execution exists in memory or on disk, the
// in-memory schedule stays at its durable word, and two successive
// restarts recover the original schedule byte-for-byte.
func TestCrashDuringScheduleAdvanceRecoversByteForByte(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Unix(9_000, 0)
	faults := wal.NewFaults()
	faults.Set(SiteScheduled, wal.FailNth(2, wal.ErrCrashed))
	fake := clock.NewFake(t0)
	srv1, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, Faults: faults, Clock: fake, TenantMaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	g := tenantGroup(t, "recur-crash", "acme", 90)
	if _, err := srv1.RegisterScheduled(g.contract, time.Minute); err != nil {
		t.Fatal(err)
	}
	wantSched := renderSchedules(srv1)
	wantExecs := "recur-crash seq=1 pending err=<nil>\n"

	fake.Advance(time.Minute)
	if fired := srv1.Tick(); fired != 0 {
		t.Fatalf("fire against the sealed WAL reported %d fires", fired)
	}
	snap := srv1.MetricsSnapshot()
	if snap.RecurrencesFired != 0 || snap.RecurrencesSkipped != 1 {
		t.Fatalf("fired/skipped = %d/%d, want 0/1", snap.RecurrencesFired, snap.RecurrencesSkipped)
	}
	// The in-memory schedule did NOT advance past its durable word, and no
	// ghost execution was born.
	if got := renderSchedules(srv1); got != wantSched {
		t.Fatalf("in-memory schedule drifted from the durable word:\n%s\nwant:\n%s", got, wantSched)
	}
	if got := renderExecutions(srv1); got != wantExecs {
		t.Fatalf("executions after the refused fire:\n%s\nwant:\n%s", got, wantExecs)
	}

	// Two successive recoveries agree with the pre-crash durable state,
	// byte-for-byte — the idempotence half of the crash contract. The
	// recovery servers are abandoned, not shut down: a clean Shutdown
	// would durably fail the recovered pending job, which is exactly the
	// mutation idempotent recovery must not introduce. (fcntl locks do
	// not conflict within one process, so the relock succeeds.)
	for i := 0; i < 2; i++ {
		srvN, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, Clock: clock.NewFake(t0)})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderSchedules(srvN); got != wantSched {
			t.Fatalf("recovery %d schedules:\n%s\nwant:\n%s", i+1, got, wantSched)
		}
		if got := renderExecutions(srvN); got != wantExecs {
			t.Fatalf("recovery %d executions:\n%s\nwant:\n%s", i+1, got, wantExecs)
		}
	}
}

// TestCrashDuringScheduleRegistrationKeepsContract seals the WAL at the
// registration-time schedule append: the contract's own registration is
// already durable, so RegisterScheduled returns the crash error, the
// contract stays admitted with its first job live, and recovery finds a
// registered contract with NO recurrence.
func TestCrashDuringScheduleRegistrationKeepsContract(t *testing.T) {
	dir := t.TempDir()
	faults := wal.NewFaults()
	faults.Set(SiteScheduled, wal.Always(wal.ErrCrashed))
	srv1, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	g := tenantGroup(t, "recur-reg-crash", "acme", 91)
	if _, err := srv1.RegisterScheduled(g.contract, time.Minute); !errors.Is(err, wal.ErrCrashed) {
		t.Fatalf("RegisterScheduled against the sealed WAL = %v, want wrapped wal.ErrCrashed", err)
	}
	if len(srv1.Schedules()) != 0 {
		t.Fatal("refused schedule left a live recurrence")
	}
	if n := len(srv1.Registry().Executions(g.contract.ID)); n != 1 {
		t.Fatalf("contract has %d executions, want 1 (the admitted registration)", n)
	}

	srv2, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderExecutions(srv2); got != "recur-reg-crash seq=1 pending err=<nil>\n" {
		t.Fatalf("recovered executions:\n%s", got)
	}
	if len(srv2.Schedules()) != 0 {
		t.Fatal("recovery invented a schedule the WAL never recorded")
	}
}

// TestRecurringSkipsWhenQuotaRefuses pins the fire/quota interaction: a
// due fire whose Resubmit the tenant quota refuses is counted as a skip,
// the schedule still advances (durably — no tight retry loop), and the
// next interval fires normally once the slot frees.
func TestRecurringSkipsWhenQuotaRefuses(t *testing.T) {
	t0 := time.Unix(3_000, 0)
	fake := clock.NewFake(t0)
	srv, err := New(Config{Workers: 1, Memory: 16, Clock: fake, TenantMaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := tenantGroup(t, "recur-quota", "acme", 92)
	j1, err := srv.RegisterScheduled(g.contract, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// The pending first job holds the tenant's only in-flight slot.
	fake.Advance(time.Minute)
	if fired := srv.Tick(); fired != 0 {
		t.Fatalf("quota-refused fire reported %d fires", fired)
	}
	snap := srv.MetricsSnapshot()
	if snap.RecurrencesSkipped != 1 {
		t.Fatalf("skipped = %d, want 1", snap.RecurrencesSkipped)
	}
	// The schedule advanced despite the refusal: re-ticking now is a no-op.
	if fired := srv.Tick(); fired != 0 {
		t.Fatal("advanced schedule re-fired at the same instant")
	}
	// Free the slot; the next interval fires.
	j1.Cancel()
	waitDone(t, j1)
	fake.Advance(time.Minute)
	if fired := srv.Tick(); fired != 1 {
		t.Fatalf("fire after the slot freed = %d, want 1", fired)
	}
	if n := len(srv.Registry().Executions("recur-quota")); n != 2 {
		t.Fatalf("history has %d executions, want 2", n)
	}
}

// TestConnectJobAfterResubmittedResultTTLEvicted pins the typed verdict a
// recipient gets when addressing a RESUBMITTED execution (a "#2" job ID
// over the wire) whose stored result the TTL already expired: the precise
// *ResultEvictedError with cause "ttl", not a generic failure — and the
// eviction clock is the server's injected fake clock, so the expiry is
// deterministic.
func TestConnectJobAfterResubmittedResultTTLEvicted(t *testing.T) {
	t0 := time.Unix(7_000, 0)
	fake := clock.NewFake(t0)
	srv, err := New(Config{Workers: 1, Memory: 16, DataDir: t.TempDir(), Clock: fake, ResultTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	g := newGroup(t, "ttl-resub", "alg5", 85, 86, 5, 5)
	j1, err := srv.Register(g.contract)
	if err != nil {
		t.Fatal(err)
	}
	driveToDelivered(t, srv, g, j1)
	j2, err := srv.Resubmit(g.contract.ID)
	if err != nil {
		t.Fatal(err)
	}
	driveToDelivered(t, srv, g, j2)

	// Both results live while the TTL has not elapsed.
	if _, err := srv.loadResult(j2.ID()); err != nil {
		t.Fatalf("resubmitted result unavailable before expiry: %v", err)
	}
	fake.Advance(2 * time.Hour)

	var ev *ResultEvictedError
	if _, err := srv.loadResult(j2.ID()); !errors.As(err, &ev) || ev.Cause != "ttl" {
		t.Fatalf("loadResult(%s) after expiry = %v, want *ResultEvictedError (ttl)", j2.ID(), err)
	}
	if !errors.Is(ev, ErrResultEvicted) {
		t.Fatal("ResultEvictedError does not match the ErrResultEvicted sentinel")
	}

	// The same verdict arrives in-band for a recipient addressing the
	// resubmitted execution explicitly by job ID.
	serverEnd, clientEnd := net.Pipe()
	go func() {
		defer serverEnd.Close()
		_ = srv.HandleConn(serverEnd)
	}()
	cs, err := g.client(g.recip, srv).ConnectJob(clientEnd, service.RoleRecipient, g.contract.ID, j2.ID())
	if err != nil {
		t.Fatal(err)
	}
	_, err = cs.ReceiveResult()
	clientEnd.Close()
	if err == nil || !strings.Contains(err.Error(), "evicted") || !strings.Contains(err.Error(), "(ttl)") {
		t.Fatalf("ConnectJob(%s) after expiry = %v, want the in-band ttl eviction verdict", j2.ID(), err)
	}
}
