package server

import (
	"errors"
	"fmt"
	"net"
	"testing"

	"ppj/internal/oblivious"
	"ppj/internal/relation"
	"ppj/internal/service"
	"ppj/internal/sim"
)

// copDelta subtracts two metric snapshots' aggregated coprocessor
// counters, isolating the cost of the executions between them.
func copDelta(before, after Snapshot) sim.Stats {
	return sim.Stats{
		Gets:         after.Coprocessor.Gets - before.Coprocessor.Gets,
		Puts:         after.Coprocessor.Puts - before.Coprocessor.Puts,
		LogicalReads: after.Coprocessor.LogicalReads - before.Coprocessor.LogicalReads,
		Comparisons:  after.Coprocessor.Comparisons - before.Coprocessor.Comparisons,
		PredEvals:    after.Coprocessor.PredEvals - before.Coprocessor.PredEvals,
		DiskRequests: after.Coprocessor.DiskRequests - before.Coprocessor.DiskRequests,
	}
}

// runExecution drives one full execution of g's contract over pipes — both
// providers upload g's relations, the recipient receives — and waits for
// the job to settle.
func runExecution(t *testing.T, srv *Server, g *group, j *Job) *relation.Relation {
	t.Helper()
	if err := g.pipeProvider(t, srv, g.provA, g.relA); err != nil {
		t.Fatal(err)
	}
	if err := g.pipeProvider(t, srv, g.provB, g.relB); err != nil {
		t.Fatal(err)
	}
	out := <-g.pipeRecipient(t, srv)
	if out.err != nil {
		t.Fatal(out.err)
	}
	waitDone(t, j)
	if j.State() != StateDelivered {
		t.Fatalf("job %s ended %s: %v", j.ID(), j.State(), j.Err())
	}
	return out.result
}

// reexecVariantInputs builds relation pairs agreeing only on the public
// parameters (|A| = |B| = 12, S = 8): variant 0 joins eight distinct keys
// one-to-one, variant 1 reaches the same S with one key of multiplicity
// 2 x 4. Payloads, keys, and row orders all differ with the seed.
func reexecVariantInputs(variant int, seed uint64) (*relation.Relation, *relation.Relation) {
	if variant == 0 {
		return genJoinSized(seed, 12, 12, 8)
	}
	rng := relation.NewRand(seed)
	a := relation.NewRelation(relation.KeyedSchema())
	for i := 0; i < 2; i++ {
		a.MustAppend(relation.Tuple{relation.IntValue(5), relation.IntValue(rng.Int64N(1 << 30))})
	}
	for i := 0; i < 10; i++ {
		a.MustAppend(relation.Tuple{relation.IntValue(100 + int64(i)), relation.IntValue(rng.Int64N(1 << 30))})
	}
	b := relation.NewRelation(relation.KeyedSchema())
	for i := 0; i < 4; i++ {
		b.MustAppend(relation.Tuple{relation.IntValue(5), relation.IntValue(rng.Int64N(1 << 30))})
	}
	for i := 0; i < 8; i++ {
		b.MustAppend(relation.Tuple{relation.IntValue(900 + int64(i)), relation.IntValue(rng.Int64N(1 << 30))})
	}
	return a, b
}

// reexecOutcome is one server's observable cost profile across a cold
// execution and a warm re-execution of the same contract.
type reexecOutcome struct {
	cold, warm              sim.Stats
	coldHits, coldMisses    uint64
	warmHits, warmMisses    uint64
	cacheBytesAfterCold     int64
	firstJobSeq, warmJobSeq int
}

// runColdWarm registers an alg7 contract on a fresh server with P devices
// per job, executes it, resubmits, and executes again with the identical
// uploads, measuring each run through the metrics surface only — exactly
// what an operator of the real service could observe.
func runColdWarm(t *testing.T, p int, relA, relB *relation.Relation) reexecOutcome {
	t.Helper()
	srv, err := New(Config{Workers: 1, Memory: 16, DevicesPerJob: p})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	g := newGroupRels(t, "reexec-inv", "alg7", relA, relB)
	want := g.wantJoin()
	j, err := srv.Register(g.contract)
	if err != nil {
		t.Fatal(err)
	}
	base := srv.MetricsSnapshot()
	coldRes := runExecution(t, srv, g, j)
	mid := srv.MetricsSnapshot()
	j2, err := srv.Resubmit(g.contract.ID)
	if err != nil {
		t.Fatal(err)
	}
	warmRes := runExecution(t, srv, g, j2)
	end := srv.MetricsSnapshot()
	assertSameRows(t, coldRes, want, "cold execution")
	assertSameRows(t, warmRes, want, "warm re-execution")
	return reexecOutcome{
		cold:                copDelta(base, mid),
		warm:                copDelta(mid, end),
		coldHits:            mid.SortCacheHits - base.SortCacheHits,
		coldMisses:          mid.SortCacheMisses - base.SortCacheMisses,
		warmHits:            end.SortCacheHits - mid.SortCacheHits,
		warmMisses:          end.SortCacheMisses - mid.SortCacheMisses,
		cacheBytesAfterCold: mid.SortCacheBytes,
		firstJobSeq:         j.Seq(),
		warmJobSeq:          j2.Seq(),
	}
}

// TestReexecutionAccessPatternInvariance is the tentpole leakage pin at
// the serving layer: two servers run the same contract twice over inputs
// that agree only on the public sizes (|A|, |B|, S). The cold executions
// must charge identical coprocessor stats, and the warm re-executions —
// each served from its own server's sorted-relation cache — must also
// charge identical stats, serially and at P in {2, 4}. Serially, the warm
// saving additionally matches the closed form: per side the cache removes
// the wrap (2q), the pre-sort's 4·Comparators(NextPow2(q)), and the
// readback (q is folded into the restore). So the hit/miss bit itself
// reveals only what the sizes already reveal.
func TestReexecutionAccessPatternInvariance(t *testing.T) {
	const q = 12 // per-side row count; S = 8 — all public
	for _, p := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			a1, b1 := reexecVariantInputs(0, 60601)
			a2, b2 := reexecVariantInputs(1, 70702)
			r1 := runColdWarm(t, p, a1, b1)
			r2 := runColdWarm(t, p, a2, b2)
			for _, r := range []reexecOutcome{r1, r2} {
				if r.coldHits != 0 || r.coldMisses != 2 {
					t.Fatalf("cold cache use: %d hits / %d misses, want 0/2", r.coldHits, r.coldMisses)
				}
				if r.warmHits != 2 || r.warmMisses != 0 {
					t.Fatalf("warm cache use: %d hits / %d misses, want 2/0", r.warmHits, r.warmMisses)
				}
				if r.firstJobSeq != 1 || r.warmJobSeq != 2 {
					t.Fatalf("execution sequence: %d then %d, want 1 then 2", r.firstJobSeq, r.warmJobSeq)
				}
			}
			if r1.cold != r2.cold {
				t.Fatalf("cold schedule depends on tuple contents:\n server1 %+v\n server2 %+v", r1.cold, r2.cold)
			}
			if r1.warm != r2.warm {
				t.Fatalf("warm schedule depends on tuple contents:\n server1 %+v\n server2 %+v", r1.warm, r2.warm)
			}
			if r1.cacheBytesAfterCold != r2.cacheBytesAfterCold {
				t.Fatalf("cached bytes depend on tuple contents: %d vs %d",
					r1.cacheBytesAfterCold, r2.cacheBytesAfterCold)
			}
			if p == 1 {
				perSide := 2*int64(q) + 4*oblivious.Comparators(oblivious.NextPow2(q))
				saved := int64(r1.cold.Transfers()) - int64(r1.warm.Transfers())
				if saved != 2*perSide {
					t.Fatalf("warm re-execution saved %d transfers, want the closed form 2·(2q + 4·Comparators(NextPow2(q))) = %d",
						saved, 2*perSide)
				}
			}
		})
	}
}

// TestReexecutionWarmSkipsPreSortAt4096 is the acceptance scenario at
// scale: an alg7 contract over 2048 rows per side (union n = 4096). The
// warm re-execution must skip both per-side pre-sorts, with the
// end-to-end transfer delta — measured through the metrics surface across
// upload, join, and delivery — exactly the closed form.
func TestReexecutionWarmSkipsPreSortAt4096(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4096 oblivious join in -short mode")
	}
	const nSide = 2048
	relA, relB := genJoinSized(99, nSide, nSide, 16)
	r := runColdWarm(t, 1, relA, relB)
	if r.warmHits != 2 || r.warmMisses != 0 {
		t.Fatalf("warm cache use: %d hits / %d misses, want 2/0", r.warmHits, r.warmMisses)
	}
	perSide := 2*int64(nSide) + 4*oblivious.Comparators(int64(nSide))
	saved := int64(r.cold.Transfers()) - int64(r.warm.Transfers())
	if saved != 2*perSide {
		t.Fatalf("warm re-execution saved %d transfers, want 2·(2q + 4·Comparators(q)) = %d", saved, 2*perSide)
	}
}

// TestReexecutionHistoryAndJobAddressing pins the identity model: a
// contract's executions accumulate as jobs "<id>", "<id>#2", "<id>#3"; an
// empty hello JobID routes to the latest; an explicit JobID addresses one
// specific execution — including re-fetching a past execution's stored
// result after later runs; and a re-execution whose one upload changed
// (same sizes, different bytes) hits the cache only on the unchanged
// side, because the key digests the content inside the seal boundary.
func TestReexecutionHistoryAndJobAddressing(t *testing.T) {
	srv, err := New(Config{Workers: 1, Memory: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	relA, relB := genJoinSized(123, 10, 10, 6)
	g := newGroupRels(t, "reexec-hist", "alg7", relA, relB)
	j1, err := srv.Register(g.contract)
	if err != nil {
		t.Fatal(err)
	}
	res1 := runExecution(t, srv, g, j1)

	j2, err := srv.Resubmit(g.contract.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID() != g.contract.ID+"#2" || j2.Seq() != 2 {
		t.Fatalf("second execution is %q seq %d, want %q seq 2", j2.ID(), j2.Seq(), g.contract.ID+"#2")
	}
	runExecution(t, srv, g, j2)

	// Third execution with side B re-uploaded under the same sizes but
	// different payload bytes: A hits, B misses.
	relB2 := relation.NewRelation(relation.KeyedSchema())
	for i, row := range relB.Rows {
		relB2.MustAppend(relation.Tuple{row[0], relation.IntValue(int64(i) + 777_777)})
	}
	g.relB = relB2
	mid := srv.MetricsSnapshot()
	j3, err := srv.Resubmit(g.contract.ID)
	if err != nil {
		t.Fatal(err)
	}
	res3 := runExecution(t, srv, g, j3)
	end := srv.MetricsSnapshot()
	if hits, misses := end.SortCacheHits-mid.SortCacheHits, end.SortCacheMisses-mid.SortCacheMisses; hits != 1 || misses != 1 {
		t.Fatalf("changed-upload run: %d hits / %d misses, want 1 hit (unchanged A) and 1 miss (changed B)", hits, misses)
	}
	eq, _ := relation.NewEqui(relA.Schema, "key", relB2.Schema, "key")
	assertSameRows(t, res3, relation.ReferenceJoin(relA, relB2, eq), "third execution")

	execs := srv.Registry().Executions(g.contract.ID)
	if len(execs) != 3 {
		t.Fatalf("execution history has %d entries, want 3", len(execs))
	}
	for i, wantID := range []string{g.contract.ID, g.contract.ID + "#2", g.contract.ID + "#3"} {
		if execs[i].ID() != wantID || execs[i].Seq() != i+1 {
			t.Fatalf("history[%d] = %q seq %d, want %q seq %d", i, execs[i].ID(), execs[i].Seq(), wantID, i+1)
		}
	}

	// Latest-by-default and explicit addressing through the registry.
	if j, err := srv.Registry().Lookup(g.contract.ID, ""); err != nil || j.ID() != j3.ID() {
		t.Fatalf("empty JobID resolved to %v (%v), want the latest execution %q", j, err, j3.ID())
	}
	if j, err := srv.Registry().Lookup(g.contract.ID, g.contract.ID+"#2"); err != nil || j.ID() != j2.ID() {
		t.Fatalf("explicit JobID resolved to %v (%v), want %q", j, err, j2.ID())
	}
	if _, err := srv.Registry().Lookup(g.contract.ID, g.contract.ID+"#9"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown JobID error = %v, want ErrUnknownJob", err)
	}

	// A recipient addressing the FIRST execution over the wire still
	// receives that run's stored result, two executions later.
	serverEnd, clientEnd := net.Pipe()
	go func() {
		defer serverEnd.Close()
		_ = srv.HandleConn(serverEnd)
	}()
	cs, err := g.client(g.recip, srv).ConnectJob(clientEnd, service.RoleRecipient, g.contract.ID, j1.ID())
	if err != nil {
		t.Fatal(err)
	}
	refetched, err := cs.ReceiveResult()
	clientEnd.Close()
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, refetched, res1, "re-fetch of execution 1 by JobID")
}

// TestResubmitValidation pins the identity model's refusals: '#' is
// reserved in contract IDs, and resubmitting an unregistered contract is
// a typed unknown-contract error.
func TestResubmitValidation(t *testing.T) {
	srv, err := New(Config{Workers: 1, Memory: 16})
	if err != nil {
		t.Fatal(err)
	}
	g := newGroup(t, "bad#id", "alg5", 1, 2, 4, 4)
	if _, err := srv.Register(g.contract); err == nil {
		t.Fatal("contract ID containing '#' was registered")
	}
	if _, err := srv.Resubmit("never-registered"); !errors.Is(err, ErrUnknownContract) {
		t.Fatalf("resubmit of unknown contract = %v, want ErrUnknownContract", err)
	}
}
