//go:build !unix

package wal

import "os"

// Non-unix builds have no fcntl record locks; the WAL still works, but the
// one-process-per-data-dir guard is not enforced.
func lockFile(*os.File) error { return nil }

func unlockFile(*os.File) {}
