package wal

import (
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
)

// lockChildEnv tells a re-executed copy of the test binary to act as the
// second server process contending for the data-dir lock.
const lockChildEnv = "PPJ_WAL_LOCK_DIR"

// TestDirLockExcludesSecondProcess: two server processes pointed at the
// same data dir would corrupt each other's log, so the second must be
// refused up front. fcntl locks only conflict across processes, so the
// contender is a re-exec of this test binary (the child branch below).
func TestDirLockExcludesSecondProcess(t *testing.T) {
	if dir := os.Getenv(lockChildEnv); dir != "" {
		// Child process: report whether the parent's lock excludes us.
		if _, err := LockDir(dir); err != nil {
			t.Log("child: lock refused:", err)
			os.Stdout.WriteString("child-refused\n")
		} else {
			os.Stdout.WriteString("child-acquired\n")
		}
		return
	}
	if runtime.GOOS == "windows" {
		t.Skip("no advisory data-dir lock on windows")
	}
	dir := t.TempDir()
	l, err := LockDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()

	cmd := exec.Command(os.Args[0], "-test.run=TestDirLockExcludesSecondProcess$", "-test.v")
	cmd.Env = append(os.Environ(), lockChildEnv+"="+dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("re-exec failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "child-refused") {
		t.Fatalf("second process acquired the held lock:\n%s", out)
	}

	// Within one process, reacquiring must succeed: the recovery tests
	// simulate a crash by abandoning a server (lock still open) and booting
	// a successor in the same process.
	l2, err := LockDir(dir)
	if err != nil {
		t.Fatalf("same-process reacquire refused: %v", err)
	}
	if err := l2.Release(); err != nil {
		t.Fatal(err)
	}

	// After the holder releases, a fresh process-level acquire succeeds.
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	l3, err := LockDir(dir)
	if err != nil {
		t.Fatalf("acquire after release refused: %v", err)
	}
	if err := l3.Release(); err != nil {
		t.Fatal(err)
	}
	if err := l3.Release(); err != nil {
		t.Fatal("Release is not idempotent:", err)
	}
}
