package wal

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// Fault-injection sites fired by the log itself. The server's WAL store
// fires additional sites ("register", "state:<from>-><to>") through the
// same registry, so one Faults value scripts a whole crash schedule.
const (
	// SiteAppend fires before a record frame is written. A hook returning
	// ErrShortWrite or ErrTornWrite leaves a partial frame on disk; any
	// other non-nil error (including ErrCrashed) writes nothing. All seal
	// the log.
	SiteAppend = "append"
	// SiteSync fires after the frame is written, before fsync. A non-nil
	// error fails the append with the record already on disk — the
	// fsync-failure case, after which the log refuses further writes.
	SiteSync = "sync"
)

// Injectable failures understood by Log.Append. ErrCrashed doubles as the
// error every append returns once the log is sealed.
var (
	// ErrShortWrite makes the append persist only the first half of the
	// frame before failing, as a kernel short write would.
	ErrShortWrite = fmt.Errorf("wal: injected short write: %w", io.ErrShortWrite)
	// ErrTornWrite makes the append persist only a few header bytes and
	// then seal the log, simulating power loss mid-write; unlike
	// ErrShortWrite no error surfaces to the writer's caller semantics —
	// the torn frame is simply what recovery finds.
	ErrTornWrite = errors.New("wal: injected torn write")
	// ErrCrashed reports an append refused because the log is sealed — by
	// Crash, by a crash faultpoint, or by any earlier injected failure.
	ErrCrashed = errors.New("wal: log crashed")
)

// FaultFunc is one hook: a non-nil return injects that failure at the site.
type FaultFunc func() error

// Faults is a registry of named fault-injection hooks. It is build-tag-free
// and inert by default: a nil *Faults (the production configuration) fires
// nothing, so the hot path costs one nil check.
type Faults struct {
	mu sync.Mutex
	m  map[string]FaultFunc
}

// NewFaults returns an empty registry.
func NewFaults() *Faults { return &Faults{m: make(map[string]FaultFunc)} }

// Set installs fn at site, replacing any previous hook. A nil fn clears it.
func (f *Faults) Set(site string, fn FaultFunc) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if fn == nil {
		delete(f.m, site)
		return
	}
	f.m[site] = fn
}

// Fire runs the hook at site, if any. Nil receiver and unset sites fire
// nothing.
func (f *Faults) Fire(site string) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	fn := f.m[site]
	f.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// FailNth returns a hook that injects err on its n-th invocation (1-based)
// and fires clean otherwise — the building block for scripted schedules
// ("fail the third transition append").
func FailNth(n int, err error) FaultFunc {
	var (
		mu    sync.Mutex
		calls int
	)
	return func() error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls == n {
			return err
		}
		return nil
	}
}

// Always returns a hook that injects err on every invocation.
func Always(err error) FaultFunc { return func() error { return err } }
