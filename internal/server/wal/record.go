// Package wal is the job server's write-ahead log: an append-only,
// checksummed, length-prefixed record stream of contract registrations and
// job state transitions. The untrusted host H of the PPJ model can crash or
// misbehave at any instant; the WAL is what lets a restarted server give
// every tenant a deterministic answer about every job it ever admitted —
// the serving-layer analogue of the paper's "T is the only trusted party"
// stance, where H's only obligations are storage and liveness.
//
// On-disk format, one record per event:
//
//	record  := length(u32 BE) || crc32(u32 BE) || payload
//	payload := type(u8) || body
//
// The CRC (IEEE) covers the payload. Replay accepts any prefix of valid
// records: the first torn, truncated, or corrupt record ends the replay and
// everything from it on is discarded as a torn tail (the crash happened
// mid-write), never surfaced as a recovery error.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Type discriminates WAL records.
type Type uint8

const (
	// TypeRegistered records a contract admitted to the registry; the body
	// is the serialised contract.
	TypeRegistered Type = 1
	// TypeTransition records one job state transition.
	TypeTransition Type = 2
	// TypeResultStored records that a job's sealed result was written to the
	// durable result store: the store's manifest is journaled through the
	// same log as the job lifecycle, so one replay rebuilds both.
	TypeResultStored Type = 3
	// TypeResultEvicted records that a stored result was removed (TTL expiry,
	// byte-cap LRU eviction, or a torn segment found at recovery); Cause
	// names which, so a reconnecting recipient learns why the result is gone.
	TypeResultEvicted Type = 4
	// TypeResubmitted records a re-execution of a registered contract: the
	// body names the contract and the fresh job ID the server minted for
	// the run, so replay rebuilds the contract's execution history in
	// submission order.
	TypeResubmitted Type = 5
	// TypeCacheStored records a sorted-relation cache entry entering the
	// durable sort cache; ContractID carries the cache key and Bytes the
	// accounted segment size. Mirrors TypeResultStored for the second
	// store.
	TypeCacheStored Type = 6
	// TypeCacheEvicted records a sorted-relation cache entry leaving the
	// sort cache with its cause. Mirrors TypeResultEvicted.
	TypeCacheEvicted Type = 7
	// TypeScheduled records a contract's recurrence: the fixed re-execution
	// interval and the next due instant. One is appended when a recurring
	// contract registers and another every time the schedule fires (the
	// advanced due-time), so the last record per contract is the schedule's
	// durable word and a restarted server resumes firing from exactly where
	// the dead one left off.
	TypeScheduled Type = 8
)

// MaxPayload bounds a record payload. Contracts are a few KB; anything
// larger in a length prefix is corruption, not data.
const MaxPayload = 1 << 20

// headerSize is the frame prefix: u32 length + u32 crc.
const headerSize = 8

// Record is one durable event. Exactly one of the two shapes is populated,
// selected by Type: a registration carries Contract; a transition carries
// ContractID, From, To and (for failures) Cause.
type Record struct {
	Type Type
	// Contract is the serialised contract (TypeRegistered only). The codec
	// is the caller's — the WAL stores opaque bytes so it depends on no
	// higher layer.
	Contract []byte
	// ContractID names the job of a transition or stored/evicted result
	// (for first executions the job ID equals the contract ID, so old logs
	// replay unchanged), the contract of a resubmission, and the cache key
	// of the cache-manifest records.
	ContractID string
	// JobID is the per-execution job ID a resubmission minted
	// (TypeResubmitted only).
	JobID string
	// From, To are the lifecycle states of a transition, as the server's
	// State values. They must fit a byte.
	From, To int32
	// Cause is the failure cause recorded on transitions into the failed
	// state, and the eviction cause of a TypeResultEvicted record; empty
	// otherwise.
	Cause string
	// Bytes is the stored result's accounted size (TypeResultStored only).
	Bytes int64
	// Every is a recurrence's fixed interval in nanoseconds and Due its
	// next due instant in Unix nanoseconds (TypeScheduled only).
	Every, Due int64
}

var errEncode = errors.New("wal: cannot encode record")

// encodePayload renders the type byte and body. Encoding is canonical:
// decodePayload(encodePayload(r)) == r and re-encoding reproduces the
// identical bytes, which the fuzz harness relies on.
func (r Record) encodePayload() ([]byte, error) {
	switch r.Type {
	case TypeRegistered:
		if len(r.Contract) == 0 {
			return nil, fmt.Errorf("%w: registration without contract bytes", errEncode)
		}
		p := make([]byte, 1+len(r.Contract))
		p[0] = byte(TypeRegistered)
		copy(p[1:], r.Contract)
		return p, nil
	case TypeTransition:
		if len(r.ContractID) > 0xffff || len(r.Cause) > 0xffff {
			return nil, fmt.Errorf("%w: oversized transition fields", errEncode)
		}
		if r.From < 0 || r.From > 0xff || r.To < 0 || r.To > 0xff {
			return nil, fmt.Errorf("%w: state out of byte range", errEncode)
		}
		p := make([]byte, 0, 1+2+len(r.ContractID)+2+2+len(r.Cause))
		p = append(p, byte(TypeTransition))
		p = binary.BigEndian.AppendUint16(p, uint16(len(r.ContractID)))
		p = append(p, r.ContractID...)
		p = append(p, byte(r.From), byte(r.To))
		p = binary.BigEndian.AppendUint16(p, uint16(len(r.Cause)))
		p = append(p, r.Cause...)
		return p, nil
	case TypeResultStored, TypeCacheStored:
		if len(r.ContractID) > 0xffff {
			return nil, fmt.Errorf("%w: oversized contract id", errEncode)
		}
		if r.Bytes < 0 {
			return nil, fmt.Errorf("%w: negative stored size", errEncode)
		}
		p := make([]byte, 0, 1+2+len(r.ContractID)+8)
		p = append(p, byte(r.Type))
		p = binary.BigEndian.AppendUint16(p, uint16(len(r.ContractID)))
		p = append(p, r.ContractID...)
		p = binary.BigEndian.AppendUint64(p, uint64(r.Bytes))
		return p, nil
	case TypeResultEvicted, TypeCacheEvicted:
		if len(r.ContractID) > 0xffff || len(r.Cause) > 0xffff {
			return nil, fmt.Errorf("%w: oversized eviction fields", errEncode)
		}
		p := make([]byte, 0, 1+2+len(r.ContractID)+2+len(r.Cause))
		p = append(p, byte(r.Type))
		p = binary.BigEndian.AppendUint16(p, uint16(len(r.ContractID)))
		p = append(p, r.ContractID...)
		p = binary.BigEndian.AppendUint16(p, uint16(len(r.Cause)))
		p = append(p, r.Cause...)
		return p, nil
	case TypeResubmitted:
		if len(r.ContractID) > 0xffff || len(r.JobID) > 0xffff {
			return nil, fmt.Errorf("%w: oversized resubmission fields", errEncode)
		}
		if len(r.JobID) == 0 {
			return nil, fmt.Errorf("%w: resubmission without job id", errEncode)
		}
		p := make([]byte, 0, 1+2+len(r.ContractID)+2+len(r.JobID))
		p = append(p, byte(TypeResubmitted))
		p = binary.BigEndian.AppendUint16(p, uint16(len(r.ContractID)))
		p = append(p, r.ContractID...)
		p = binary.BigEndian.AppendUint16(p, uint16(len(r.JobID)))
		p = append(p, r.JobID...)
		return p, nil
	case TypeScheduled:
		if len(r.ContractID) > 0xffff {
			return nil, fmt.Errorf("%w: oversized contract id", errEncode)
		}
		if r.Every <= 0 {
			return nil, fmt.Errorf("%w: schedule without a positive interval", errEncode)
		}
		if r.Due < 0 {
			return nil, fmt.Errorf("%w: negative schedule due time", errEncode)
		}
		p := make([]byte, 0, 1+2+len(r.ContractID)+8+8)
		p = append(p, byte(TypeScheduled))
		p = binary.BigEndian.AppendUint16(p, uint16(len(r.ContractID)))
		p = append(p, r.ContractID...)
		p = binary.BigEndian.AppendUint64(p, uint64(r.Every))
		p = binary.BigEndian.AppendUint64(p, uint64(r.Due))
		return p, nil
	}
	return nil, fmt.Errorf("%w: unknown type %d", errEncode, r.Type)
}

// encodeFrame renders the full framed record: header + payload.
func (r Record) encodeFrame() ([]byte, error) {
	payload, err := r.encodePayload()
	if err != nil {
		return nil, err
	}
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d bytes exceeds cap", errEncode, len(payload))
	}
	frame := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[headerSize:], payload)
	return frame, nil
}

var errDecode = errors.New("wal: invalid record")

// decodePayload parses one checksummed payload. It rejects trailing bytes
// so every valid payload has exactly one encoding.
func decodePayload(p []byte) (Record, error) {
	if len(p) < 1 {
		return Record{}, fmt.Errorf("%w: empty payload", errDecode)
	}
	switch Type(p[0]) {
	case TypeRegistered:
		if len(p) == 1 {
			return Record{}, fmt.Errorf("%w: registration without contract bytes", errDecode)
		}
		return Record{Type: TypeRegistered, Contract: append([]byte(nil), p[1:]...)}, nil
	case TypeTransition:
		body := p[1:]
		if len(body) < 2 {
			return Record{}, fmt.Errorf("%w: short transition", errDecode)
		}
		idLen := int(binary.BigEndian.Uint16(body[0:2]))
		body = body[2:]
		if len(body) < idLen+2+2 {
			return Record{}, fmt.Errorf("%w: short transition", errDecode)
		}
		id := string(body[:idLen])
		from, to := int32(body[idLen]), int32(body[idLen+1])
		body = body[idLen+2:]
		causeLen := int(binary.BigEndian.Uint16(body[0:2]))
		body = body[2:]
		if len(body) != causeLen {
			return Record{}, fmt.Errorf("%w: transition length mismatch", errDecode)
		}
		return Record{Type: TypeTransition, ContractID: id, From: from, To: to, Cause: string(body)}, nil
	case TypeResultStored, TypeCacheStored:
		body := p[1:]
		if len(body) < 2 {
			return Record{}, fmt.Errorf("%w: short stored record", errDecode)
		}
		idLen := int(binary.BigEndian.Uint16(body[0:2]))
		body = body[2:]
		if len(body) != idLen+8 {
			return Record{}, fmt.Errorf("%w: stored record length mismatch", errDecode)
		}
		size := binary.BigEndian.Uint64(body[idLen:])
		if size > 1<<62 {
			return Record{}, fmt.Errorf("%w: stored size out of range", errDecode)
		}
		return Record{Type: Type(p[0]), ContractID: string(body[:idLen]), Bytes: int64(size)}, nil
	case TypeResultEvicted, TypeCacheEvicted:
		body := p[1:]
		if len(body) < 2 {
			return Record{}, fmt.Errorf("%w: short evicted record", errDecode)
		}
		idLen := int(binary.BigEndian.Uint16(body[0:2]))
		body = body[2:]
		if len(body) < idLen+2 {
			return Record{}, fmt.Errorf("%w: short evicted record", errDecode)
		}
		id := string(body[:idLen])
		causeLen := int(binary.BigEndian.Uint16(body[idLen : idLen+2]))
		body = body[idLen+2:]
		if len(body) != causeLen {
			return Record{}, fmt.Errorf("%w: evicted record length mismatch", errDecode)
		}
		return Record{Type: Type(p[0]), ContractID: id, Cause: string(body)}, nil
	case TypeResubmitted:
		body := p[1:]
		if len(body) < 2 {
			return Record{}, fmt.Errorf("%w: short resubmission record", errDecode)
		}
		idLen := int(binary.BigEndian.Uint16(body[0:2]))
		body = body[2:]
		if len(body) < idLen+2 {
			return Record{}, fmt.Errorf("%w: short resubmission record", errDecode)
		}
		id := string(body[:idLen])
		jobLen := int(binary.BigEndian.Uint16(body[idLen : idLen+2]))
		body = body[idLen+2:]
		if len(body) != jobLen || jobLen == 0 {
			return Record{}, fmt.Errorf("%w: resubmission length mismatch", errDecode)
		}
		return Record{Type: TypeResubmitted, ContractID: id, JobID: string(body)}, nil
	case TypeScheduled:
		body := p[1:]
		if len(body) < 2 {
			return Record{}, fmt.Errorf("%w: short schedule record", errDecode)
		}
		idLen := int(binary.BigEndian.Uint16(body[0:2]))
		body = body[2:]
		if len(body) != idLen+16 {
			return Record{}, fmt.Errorf("%w: schedule record length mismatch", errDecode)
		}
		every := int64(binary.BigEndian.Uint64(body[idLen : idLen+8]))
		due := int64(binary.BigEndian.Uint64(body[idLen+8:]))
		if every <= 0 || due < 0 {
			return Record{}, fmt.Errorf("%w: schedule interval/due out of range", errDecode)
		}
		return Record{Type: TypeScheduled, ContractID: string(body[:idLen]), Every: every, Due: due}, nil
	}
	return Record{}, fmt.Errorf("%w: unknown type %d", errDecode, p[0])
}

// readFrame reads one framed record. Any malformation — short header, a
// length beyond MaxPayload, a truncated payload, a CRC mismatch, an
// undecodable payload — is reported as an error; Replay turns that into
// torn-tail truncation.
func readFrame(r io.Reader) (Record, int64, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Record{}, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n == 0 || n > MaxPayload {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", errDecode, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, 0, err
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[4:8]) {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", errDecode)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, int64(headerSize + int(n)), nil
}

// Replay decodes records from r until EOF or the first invalid byte. It
// never fails: a torn or corrupt record ends the replay and the returned
// offset marks the end of the last valid record, so callers can truncate
// the tail. Arbitrary input therefore yields some (possibly empty) prefix
// of records — the property FuzzWALDecode pins.
func Replay(r io.Reader) ([]Record, int64) {
	var (
		recs []Record
		off  int64
	)
	for {
		rec, n, err := readFrame(r)
		if err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += n
	}
}
