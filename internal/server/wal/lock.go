package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// LockFileName is the advisory lock file guarding a data directory.
const LockFileName = "wal.lock"

// DirLock is an advisory, process-exclusive lock on a WAL data directory.
// Two server processes pointed at the same data dir would interleave
// O_APPEND frames and run Recover/Truncate against each other's live log,
// so the store refuses to share: the second process fails fast instead of
// corrupting the history. The lock is a POSIX fcntl record lock, so the
// kernel releases it when the owning process dies — a crash never leaves a
// stale lock behind — and reacquiring from within the same process
// succeeds (fcntl locks are held per process), which is also what lets the
// recovery tests simulate a crash by abandoning a server in-process.
type DirLock struct {
	f *os.File
}

// LockDir acquires dir's advisory lock, creating dir and the lock file as
// needed, and fails fast when another process holds it.
func LockDir(dir string) (*DirLock, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, LockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: data dir %s is locked by another process: %w", dir, err)
	}
	return &DirLock{f: f}, nil
}

// Release drops the lock and closes the lock file. Idempotent.
func (l *DirLock) Release() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	unlockFile(f)
	return f.Close()
}
