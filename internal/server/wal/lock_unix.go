//go:build unix

package wal

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive POSIX record lock over the whole file
// (start 0, len 0). fcntl locks — unlike flock — conflict only across
// processes: a second acquisition within the owning process succeeds,
// while another process gets EAGAIN/EACCES immediately (F_SETLK, not
// F_SETLKW, so nobody blocks waiting for a live server to exit).
func lockFile(f *os.File) error {
	lk := syscall.Flock_t{Type: syscall.F_WRLCK}
	return syscall.FcntlFlock(f.Fd(), syscall.F_SETLK, &lk)
}

func unlockFile(f *os.File) {
	lk := syscall.Flock_t{Type: syscall.F_UNLCK}
	_ = syscall.FcntlFlock(f.Fd(), syscall.F_SETLK, &lk)
}
