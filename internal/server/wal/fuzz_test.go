package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode fuzzes the record decoder with arbitrary bytes. The
// invariants: Replay never panics, decodes some prefix of the input,
// stops at the first invalid byte (torn/corrupt tails truncate rather
// than failing), and — because the encoding is canonical — re-encoding
// the decoded records reproduces exactly the bytes it consumed.
func FuzzWALDecode(f *testing.F) {
	for _, r := range sampleRecordsFuzzSeed() {
		frame, err := r.encodeFrame()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	var stream []byte
	for _, r := range sampleRecordsFuzzSeed() {
		frame, _ := r.encodeFrame()
		stream = append(stream, frame...)
	}
	f.Add(stream)                                 // several valid records
	f.Add(stream[:len(stream)-3])                 // torn tail
	f.Add(append(stream, 0xde, 0xad, 0xbe, 0xef)) // garbage tail
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // huge claimed length

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, off := Replay(bytes.NewReader(data))
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("offset %d out of range [0, %d]", off, len(data))
		}
		var reenc []byte
		for i, r := range recs {
			frame, err := r.encodeFrame()
			if err != nil {
				t.Fatalf("decoded record %d does not re-encode: %+v: %v", i, r, err)
			}
			reenc = append(reenc, frame...)
		}
		if !bytes.Equal(reenc, data[:off]) {
			t.Fatalf("re-encoding %d records gave %d bytes, want the %d consumed bytes to match", len(recs), len(reenc), off)
		}
		// The remainder must be a tail Replay rejects from its first byte:
		// replaying it again consumes nothing... unless it is itself a
		// valid stream that was misaligned, which canonical framing rules
		// out only for the first record. Cheap sanity: replay of the
		// truncated prefix reproduces the same records.
		again, off2 := Replay(bytes.NewReader(data[:off]))
		if off2 != off || len(again) != len(recs) {
			t.Fatalf("replay of valid prefix: %d records / %d bytes, want %d / %d", len(again), off2, len(recs), off)
		}
	})
}

func sampleRecordsFuzzSeed() []Record {
	return []Record{
		{Type: TypeRegistered, Contract: []byte("gob-bytes-of-a-contract")},
		{Type: TypeTransition, ContractID: "tenant-1", From: 0, To: 1},
		{Type: TypeTransition, ContractID: "tenant-1", From: 2, To: 4, Cause: "server: job interrupted by host crash"},
		{Type: TypeResultStored, ContractID: "tenant-1", Bytes: 4096},
		{Type: TypeResultEvicted, ContractID: "tenant-1", Cause: "ttl"},
		{Type: TypeResubmitted, ContractID: "tenant-1", JobID: "tenant-1#2"},
		{Type: TypeCacheStored, ContractID: "tenant-1|A|12|deadbeef", Bytes: 1024},
		{Type: TypeCacheEvicted, ContractID: "tenant-1|A|12|deadbeef", Cause: "cap"},
		{Type: TypeScheduled, ContractID: "tenant-1", Every: 60_000_000_000, Due: 1_700_000_000_000_000_000},
	}
}
