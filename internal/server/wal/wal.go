package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// FileName is the log's file name inside its data directory.
const FileName = "wal.log"

// Log is an append-only record writer. Every Append is fsynced before it
// returns, so an acknowledged record survives a host crash. Once any write
// or injected fault fails, the log seals itself: later appends return
// ErrCrashed rather than writing after an unknown on-disk state (the same
// stance production WALs take after an fsync error).
type Log struct {
	mu      sync.Mutex
	f       *os.File
	faults  *Faults
	crashed bool
	closed  bool
}

// Open opens (creating as needed) dir's log for appending. Callers
// reopening after a crash should run Recover first so a torn tail is
// truncated before new records follow it.
func Open(dir string, faults *Faults) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Log{f: f, faults: faults}, nil
}

// Append encodes, writes, and fsyncs one record, firing the SiteAppend and
// SiteSync faultpoints around the write.
func (l *Log) Append(rec Record) error {
	frame, err := rec.encodeFrame()
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCrashed
	}
	if err := l.faults.Fire(SiteAppend); err != nil {
		l.crashed = true
		switch {
		case errors.Is(err, ErrShortWrite):
			l.f.Write(frame[:len(frame)/2])
			l.f.Sync()
		case errors.Is(err, ErrTornWrite):
			n := headerSize - 2
			if n > len(frame) {
				n = len(frame)
			}
			l.f.Write(frame[:n])
			l.f.Sync()
		}
		return err
	}
	if _, err := l.f.Write(frame); err != nil {
		l.crashed = true
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.faults.Fire(SiteSync); err != nil {
		l.crashed = true
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.crashed = true
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Crash seals the log: nothing further is written and every later Append
// returns ErrCrashed. Tests use it (via faultpoints) to freeze the on-disk
// state at a chosen instant; the process then "dies" by abandoning the
// server and recovering from the directory.
func (l *Log) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.crashed = true
}

// Close releases the file; further appends return ErrCrashed. It does not
// sync (Append already did) and is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.crashed = true
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// Recover replays dir's log, returning every durable record and truncating
// any torn or corrupt tail so the next Open appends after the last valid
// record. A missing directory or file is an empty history, not an error.
func Recover(dir string) ([]Record, error) {
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_RDWR, 0)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	recs, off := Replay(bufio.NewReader(f))
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if fi.Size() > off {
		if err := f.Truncate(off); err != nil {
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
	}
	return recs, nil
}
