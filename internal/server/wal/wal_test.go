package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Type: TypeRegistered, Contract: []byte("contract-bytes-for-alpha")},
		{Type: TypeTransition, ContractID: "alpha", From: 0, To: 1},
		{Type: TypeTransition, ContractID: "alpha", From: 1, To: 4, Cause: "context canceled"},
		{Type: TypeRegistered, Contract: bytes.Repeat([]byte{0xab}, 300)},
		{Type: TypeTransition, ContractID: "", From: 0, To: 0, Cause: ""},
		{Type: TypeScheduled, ContractID: "alpha", Every: 5_000_000_000, Due: 1_000_000_000},
	}
}

func appendAll(t *testing.T, dir string, recs []Record) {
	t.Helper()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func recordsEqual(a, b Record) bool {
	return a.Type == b.Type && bytes.Equal(a.Contract, b.Contract) &&
		a.ContractID == b.ContractID && a.From == b.From && a.To == b.To && a.Cause == b.Cause &&
		a.Every == b.Every && a.Due == b.Due
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleRecords()
	appendAll(t, dir, want)
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(got[i], want[i]) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRecoverMissingDir(t *testing.T) {
	recs, err := Recover(filepath.Join(t.TempDir(), "never-created"))
	if err != nil || recs != nil {
		t.Fatalf("Recover on missing dir = %v, %v", recs, err)
	}
}

// TestRecoverTruncatesTornTail appends garbage and partial frames after
// valid records and checks recovery keeps the valid prefix, truncates the
// file, and appends cleanly afterwards.
func TestRecoverTruncatesTornTail(t *testing.T) {
	full := sampleRecords()
	frames := make([][]byte, len(full))
	for i, r := range full {
		f, err := r.encodeFrame()
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}
	tails := map[string][]byte{
		"half-frame":    frames[2][:len(frames[2])/2],
		"header-only":   frames[2][:5],
		"flipped-crc":   append(append([]byte{}, frames[2][:6]...), frames[2][6]^0xff, frames[2][7]),
		"garbage":       {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01},
		"huge-length":   {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3},
		"corrupt-runon": append(append([]byte{}, frames[2]...), frames[3]...),
	}
	// corrupt-runon: flip a payload byte of the first tail frame so it and
	// everything after is discarded even though a "valid" frame follows.
	tails["corrupt-runon"][headerSize] ^= 0xff

	for name, tail := range tails {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			appendAll(t, dir, full[:2])
			path := filepath.Join(dir, FileName)
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			got, err := Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 2 || !recordsEqual(got[0], full[0]) || !recordsEqual(got[1], full[1]) {
				t.Fatalf("recovered %+v, want first two sample records", got)
			}
			wantSize := int64(len(frames[0]) + len(frames[1]))
			if fi, err := os.Stat(path); err != nil || fi.Size() != wantSize {
				t.Fatalf("post-recovery size = %v (%v), want %d", fi.Size(), err, wantSize)
			}
			// The truncated log accepts new records where the tail was.
			appendAll(t, dir, full[2:3])
			got, err = Recover(dir)
			if err != nil || len(got) != 3 || !recordsEqual(got[2], full[2]) {
				t.Fatalf("append after truncation: %+v, %v", got, err)
			}
		})
	}
}

func TestAppendFaultShortWrite(t *testing.T) {
	dir := t.TempDir()
	faults := NewFaults()
	faults.Set(SiteAppend, FailNth(2, ErrShortWrite))
	l, err := Open(dir, faults)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := l.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recs[1]); !errors.Is(err, ErrShortWrite) {
		t.Fatalf("injected append error = %v, want ErrShortWrite", err)
	}
	// The log is sealed: later appends are refused without touching disk.
	if err := l.Append(recs[2]); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-fault append error = %v, want ErrCrashed", err)
	}
	l.Close()

	got, err := Recover(dir)
	if err != nil || len(got) != 1 || !recordsEqual(got[0], recs[0]) {
		t.Fatalf("recovery after short write = %+v, %v; want only the first record", got, err)
	}
}

func TestAppendFaultSyncFailure(t *testing.T) {
	dir := t.TempDir()
	faults := NewFaults()
	injected := errors.New("fsync: input/output error")
	faults.Set(SiteSync, FailNth(2, injected))
	l, err := Open(dir, faults)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := l.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recs[1]); !errors.Is(err, injected) {
		t.Fatalf("injected sync error = %v", err)
	}
	if err := l.Append(recs[2]); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-fault append error = %v, want ErrCrashed", err)
	}
	l.Close()
	// The frame was fully written before the failed sync; recovery may
	// legitimately observe it.
	got, err := Recover(dir)
	if err != nil || len(got) != 2 {
		t.Fatalf("recovery after sync failure = %d records (%v), want 2", len(got), err)
	}
}

func TestCrashSealsLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := l.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	l.Crash()
	if err := l.Append(recs[1]); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append after Crash = %v, want ErrCrashed", err)
	}
	got, err := Recover(dir)
	if err != nil || len(got) != 1 {
		t.Fatalf("recovery after Crash = %d records (%v), want 1", len(got), err)
	}
}

func TestEncodeRejectsMalformedRecords(t *testing.T) {
	bad := []Record{
		{Type: TypeRegistered},           // no contract bytes
		{Type: Type(9)},                  // unknown type
		{Type: TypeTransition, From: -1}, // state out of range
		{Type: TypeTransition, To: 300},  // state out of range
		{Type: TypeRegistered, Contract: make([]byte, MaxPayload+1)}, // over cap
		{Type: TypeScheduled, ContractID: "c", Every: 0, Due: 1},     // no interval
		{Type: TypeScheduled, ContractID: "c", Every: 1, Due: -1},    // negative due
	}
	for i, r := range bad {
		if _, err := r.encodeFrame(); err == nil {
			t.Fatalf("record %d encoded despite being malformed", i)
		}
	}
}

func TestFaultsRegistry(t *testing.T) {
	var nilFaults *Faults
	if err := nilFaults.Fire("anything"); err != nil {
		t.Fatalf("nil Faults fired %v", err)
	}
	f := NewFaults()
	if err := f.Fire("unset"); err != nil {
		t.Fatalf("unset site fired %v", err)
	}
	boom := errors.New("boom")
	f.Set("site", Always(boom))
	if err := f.Fire("site"); !errors.Is(err, boom) {
		t.Fatalf("Always hook fired %v", err)
	}
	f.Set("site", nil)
	if err := f.Fire("site"); err != nil {
		t.Fatalf("cleared site fired %v", err)
	}
	nth := FailNth(3, boom)
	f.Set("site", nth)
	for i := 1; i <= 4; i++ {
		err := f.Fire("site")
		if (i == 3) != (err != nil) {
			t.Fatalf("FailNth call %d fired %v", i, err)
		}
	}
}
