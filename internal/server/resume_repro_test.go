package server

import (
	"fmt"
	"testing"

	"ppj/internal/relation"
	"ppj/internal/service"
)

// Repro: a recipient that consumed every chunk but lost the connection
// before the end frame reconnects with resume == TotalChunks. With a
// partial last chunk (rows % 64 != 0) the server computes a negative
// StreamRows and the fetch can never complete.
func TestResumeAtTotalChunksPartialLastChunk(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	size := 65 // 2 chunks: 64 + 1 (partial last chunk)
	relA, relB := genJoinSized(uint64(size)+17, 8, size+4, size)
	g := newGroupRels(t, "res-at-total", "alg5", relA, relB)
	if _, err := srv.Register(g.contract); err != nil {
		t.Fatal(err)
	}
	if err := g.pipeProvider(t, srv, g.provA, g.relA); err != nil {
		t.Fatal(err)
	}
	if err := g.pipeProvider(t, srv, g.provB, g.relB); err != nil {
		t.Fatal(err)
	}

	// First leg: full fetch to learn the total chunk count.
	f := &service.ResultFetch{}
	if err := g.fetchLeg(srv, f, 0); err != nil {
		t.Fatal(err)
	}
	total := f.Chunks
	fmt.Printf("total chunks: %d\n", total)

	// Simulate a recipient that consumed all chunks but missed the end
	// frame: Chunks == total, Done == false.
	f2 := &service.ResultFetch{Chunks: total, Rows: relation.NewRelation(f.Rows.Schema)}
	err = g.fetchLeg(srv, f2, 0)
	if err != nil {
		t.Fatalf("resume at offset %d (== total chunks): %v", total, err)
	}
	if !f2.Done {
		t.Fatal("fetch finished without the end frame")
	}
}
