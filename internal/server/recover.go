package server

import (
	"context"
	"errors"
	"fmt"

	"ppj/internal/server/resultstore"
	"ppj/internal/server/wal"
	"ppj/internal/service"
)

// ErrInterrupted is the typed cause given to jobs that were Uploading or
// Running when the host crashed: their uploads lived only in the dead
// process's memory, so recovery fails them deterministically — tenants get
// a definite answer instead of a silently vanished job.
var ErrInterrupted = errors.New("server: job interrupted by host crash")

// RecoveredError carries a failure cause replayed from the WAL. The
// original typed error died with the old process; only its message is
// durable, so recovered failures compare by string, except ErrInterrupted
// which recovery maps back to the sentinel.
type RecoveredError struct{ Cause string }

// Error implements error.
func (e *RecoveredError) Error() string { return e.Cause }

// recoveredJob is one job's last durable state, folded from WAL records.
type recoveredJob struct {
	contract *service.Contract
	state    State
	cause    string
	// resultStored reports a result-stored manifest record for the
	// contract; evictCause carries the last result-evicted record's cause.
	// Together with the segments the result store's scan found on disk,
	// they drive the recovery reconciliation in recoverResult.
	resultStored bool
	evictCause   string
}

// foldRecords replays WAL records into per-contract final states,
// preserving registration order. Transitions simply overwrite the state —
// the log is the authority on ordering — and transitions for unregistered
// contracts (possible only through manual log surgery) are dropped.
func foldRecords(recs []wal.Record) ([]*recoveredJob, error) {
	byID := make(map[string]*recoveredJob)
	var order []*recoveredJob
	for _, rec := range recs {
		switch rec.Type {
		case wal.TypeRegistered:
			c, err := decodeContract(rec.Contract)
			if err != nil {
				return nil, err
			}
			if _, dup := byID[c.ID]; dup {
				return nil, fmt.Errorf("server: wal registers contract %q twice", c.ID)
			}
			rj := &recoveredJob{contract: c, state: StatePending}
			byID[c.ID] = rj
			order = append(order, rj)
		case wal.TypeTransition:
			rj, ok := byID[rec.ContractID]
			if !ok {
				continue
			}
			if rec.To < 0 || rec.To >= numStates {
				return nil, fmt.Errorf("server: wal transition to unknown state %d", rec.To)
			}
			rj.state = State(rec.To)
			rj.cause = rec.Cause
		case wal.TypeResultStored:
			if rj, ok := byID[rec.ContractID]; ok {
				rj.resultStored = true
			}
		case wal.TypeResultEvicted:
			if rj, ok := byID[rec.ContractID]; ok {
				rj.evictCause = rec.Cause
			}
		}
	}
	return order, nil
}

// recover rebuilds the registry and job table from replayed WAL records.
// Jobs that were Pending resume live (no data had arrived; the parties
// simply reconnect). Jobs that were Uploading or Running are failed with
// ErrInterrupted — and that verdict is appended to the WAL, so a second
// restart reaches the identical table. Jobs that were Stored resume
// serving their result from the durable store; Delivered and Failed jobs
// become tombstones that answer reconnecting recipients immediately. The
// result store is then reconciled against the replayed manifest: stored
// results with no surviving segment are tombstoned as torn, evictions the
// manifest recorded are rematerialised, and orphan segments whose
// manifest record never made the log are dropped.
func (s *Server) recover(recs []wal.Record) error {
	folded, err := foldRecords(recs)
	if err != nil {
		return err
	}
	manifested := make(map[string]bool, len(folded))
	for _, rj := range folded {
		if err := s.recoverJob(rj); err != nil {
			return fmt.Errorf("server: recovering contract %q: %w", rj.contract.ID, err)
		}
		s.recoverResult(rj)
		if rj.resultStored {
			manifested[rj.contract.ID] = true
		}
	}
	for _, id := range s.results.IDs() {
		if !manifested[id] {
			s.results.Remove(id)
		}
	}
	return nil
}

// recoverResult reconciles one job's durable result manifest against what
// the result store's scan found on disk.
func (s *Server) recoverResult(rj *recoveredJob) {
	id := rj.contract.ID
	switch {
	case rj.evictCause != "":
		// The manifest's last word is an eviction: rematerialise the
		// tombstone (quietly — the record is already durable).
		s.results.MarkEvicted(id, resultstore.Cause(rj.evictCause))
	case rj.resultStored && !s.results.Has(id):
		// The manifest says stored, but no intact segment survived (torn
		// segments were dropped by the scan): tombstone as torn, journaled
		// so the next replay agrees.
		s.results.MarkLost(id)
	case rj.resultStored && !rj.state.Settled():
		// The crash hit between the manifest append and the Stored
		// transition: the job recovers as interrupted, so its intact
		// segment serves no one. Evict it, journaled.
		s.results.Discard(id, resultstore.CauseTorn)
	case rj.state == StateDelivered && !rj.resultStored:
		// A job delivered before the result store existed: its result was
		// never persisted, so reconnecting recipients get the typed
		// pre-store eviction instead of a bare "unavailable".
		s.results.MarkEvicted(id, resultstore.CausePreStore)
	}
}

func (s *Server) recoverJob(rj *recoveredJob) error {
	svc, err := service.NewServiceWithDevice(s.device, rj.contract, s.cfg.Memory, s.cfg.Seed)
	if err != nil {
		return err
	}
	svc.Devices = s.cfg.DevicesPerJob
	svc.MaxUploadBytes = s.cfg.MaxUploadBytes
	svc.UploadWindow = s.cfg.UploadWindow
	svc.AllowLegacyUpload = s.cfg.AllowLegacyUpload
	providers, recipients := rj.contract.CountRoles()
	ctx, cancel := context.WithCancel(context.Background())
	if s.cfg.JobTimeout > 0 && !rj.state.Settled() {
		ctx, cancel = context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	}
	j := &Job{
		svc:            svc,
		srv:            s,
		ctx:            ctx,
		cancel:         cancel,
		providers:      providers,
		wantRecipients: recipients,
		state:          rj.state,
		settled:        make(chan struct{}),
		done:           make(chan struct{}),
	}
	if err := s.registry.add(j); err != nil {
		cancel()
		return err
	}
	s.metrics.jobRecovered(rj.state)
	switch {
	case rj.state == StatePending:
		go j.watch()
	case rj.state == StateStored:
		// The result outlived the process in the durable store; the job
		// resumes serving it from there (outcomeForDelivery finds no cached
		// outcome and loads the segment). The outcome is settled and there
		// is nothing left to run, cancel, or time out — but done stays
		// open: the job still owes deliveries.
		j.settle()
		cancel()
	case rj.state.Terminal():
		j.err = recoveredCause(rj)
		j.settle()
		cancel()
		j.closeDone()
	default:
		// Uploading or Running at crash time: the uploads are gone. fail()
		// appends the interrupted verdict to the WAL and settles metrics,
		// making a second recovery idempotent.
		j.fail(ErrInterrupted, false)
	}
	return nil
}

// recoveredCause reconstructs a terminal job's error from its recorded
// cause. Delivered jobs have none; ErrInterrupted survives restarts as the
// sentinel so errors.Is keeps working across any number of recoveries.
func recoveredCause(rj *recoveredJob) error {
	if rj.state != StateFailed {
		return nil
	}
	switch rj.cause {
	case ErrInterrupted.Error():
		return ErrInterrupted
	case "":
		return &RecoveredError{Cause: "failure cause not recorded"}
	}
	return &RecoveredError{Cause: rj.cause}
}
