package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"ppj/internal/server/resultstore"
	"ppj/internal/server/wal"
	"ppj/internal/service"
)

// ErrInterrupted is the typed cause given to jobs that were Uploading or
// Running when the host crashed: their uploads lived only in the dead
// process's memory, so recovery fails them deterministically — tenants get
// a definite answer instead of a silently vanished job.
var ErrInterrupted = errors.New("server: job interrupted by host crash")

// RecoveredError carries a failure cause replayed from the WAL. The
// original typed error died with the old process; only its message is
// durable, so recovered failures compare by string, except ErrInterrupted
// which recovery maps back to the sentinel.
type RecoveredError struct{ Cause string }

// Error implements error.
func (e *RecoveredError) Error() string { return e.Cause }

// recoveredContract is one registered contract and its execution history,
// folded from WAL records. jobs[0] is the original registration; later
// entries are resubmissions, in log order.
type recoveredContract struct {
	contract *service.Contract
	jobs     []*recoveredJob
}

// recoveredJob is one execution's last durable state, folded from WAL
// records.
type recoveredJob struct {
	id    string
	seq   int
	state State
	cause string
	// resultStored reports a result-stored manifest record for the job;
	// evictCause carries the last result-evicted record's cause. Together
	// with the segments the result store's scan found on disk, they drive
	// the recovery reconciliation in recoverResult.
	resultStored bool
	evictCause   string
}

// recoveredCache is one sort-cache key's last durable manifest word.
type recoveredCache struct {
	stored     bool
	evictCause string
}

// foldRecords replays WAL records into per-contract execution histories
// (registration order, executions in submission order) plus the sort-cache
// manifest. Transition and result-manifest records address executions by
// job ID — which is the contract ID itself for first executions, so logs
// written before re-execution existed fold identically. Transitions simply
// overwrite the state — the log is the authority on ordering — and records
// for unregistered contracts or unborn jobs (possible only through manual
// log surgery) are dropped.
func foldRecords(recs []wal.Record) ([]*recoveredContract, map[string]*recoveredCache, map[string]Schedule, error) {
	byContract := make(map[string]*recoveredContract)
	byJob := make(map[string]*recoveredJob)
	cache := make(map[string]*recoveredCache)
	schedules := make(map[string]Schedule)
	var order []*recoveredContract
	for _, rec := range recs {
		switch rec.Type {
		case wal.TypeRegistered:
			c, err := decodeContract(rec.Contract)
			if err != nil {
				return nil, nil, nil, err
			}
			if _, dup := byContract[c.ID]; dup {
				return nil, nil, nil, fmt.Errorf("server: wal registers contract %q twice", c.ID)
			}
			rc := &recoveredContract{contract: c}
			rj := &recoveredJob{id: c.ID, seq: 1, state: StatePending}
			rc.jobs = append(rc.jobs, rj)
			byContract[c.ID] = rc
			byJob[rj.id] = rj
			order = append(order, rc)
		case wal.TypeResubmitted:
			rc, ok := byContract[rec.ContractID]
			if !ok {
				continue
			}
			if _, dup := byJob[rec.JobID]; dup {
				return nil, nil, nil, fmt.Errorf("server: wal resubmits job %q twice", rec.JobID)
			}
			rj := &recoveredJob{id: rec.JobID, seq: len(rc.jobs) + 1, state: StatePending}
			rc.jobs = append(rc.jobs, rj)
			byJob[rj.id] = rj
		case wal.TypeTransition:
			rj, ok := byJob[rec.ContractID]
			if !ok {
				continue
			}
			if rec.To < 0 || rec.To >= numStates {
				return nil, nil, nil, fmt.Errorf("server: wal transition to unknown state %d", rec.To)
			}
			rj.state = State(rec.To)
			rj.cause = rec.Cause
		case wal.TypeResultStored:
			if rj, ok := byJob[rec.ContractID]; ok {
				rj.resultStored = true
			}
		case wal.TypeResultEvicted:
			if rj, ok := byJob[rec.ContractID]; ok {
				rj.evictCause = rec.Cause
			}
		case wal.TypeCacheStored:
			cache[rec.ContractID] = &recoveredCache{stored: true}
		case wal.TypeCacheEvicted:
			cr, ok := cache[rec.ContractID]
			if !ok {
				cr = &recoveredCache{}
				cache[rec.ContractID] = cr
			}
			cr.evictCause = rec.Cause
		case wal.TypeScheduled:
			// Schedule records for unregistered contracts (log surgery) are
			// dropped below; here the last record per contract simply wins —
			// each fire appends the advanced due-time, so the log's final
			// word is the live schedule.
			if _, ok := byContract[rec.ContractID]; ok {
				schedules[rec.ContractID] = Schedule{
					Every: time.Duration(rec.Every),
					Next:  time.Unix(0, rec.Due),
				}
			}
		}
	}
	return order, cache, schedules, nil
}

// recover rebuilds the registry, the job table, the tenant quota slots, and
// the sort cache from replayed WAL records. Jobs that were Pending resume
// live (no data had arrived; the parties simply reconnect). Jobs that were
// Uploading or Running are failed with ErrInterrupted — and that verdict is
// appended to the WAL, so a second restart reaches the identical table.
// Jobs that were Stored resume serving their result from the durable
// store; Delivered and Failed jobs become tombstones that answer
// reconnecting recipients. Live jobs re-occupy their tenant's in-flight
// quota slots (without consuming tokens — the original submission paid).
// Both stores are then reconciled against the replayed manifest: stored
// entries with no surviving segment are tombstoned as torn, evictions the
// manifest recorded are rematerialised, and orphan segments whose manifest
// record never made the log are dropped — for the sort cache that means a
// torn cache-stored record costs exactly the cached sorted form; the job
// itself stays runnable cold.
func (s *Server) recover(recs []wal.Record) error {
	folded, cacheMan, schedules, err := foldRecords(recs)
	if err != nil {
		return err
	}
	manifested := make(map[string]bool)
	for _, rc := range folded {
		for _, rj := range rc.jobs {
			if err := s.recoverJob(rc.contract, rj); err != nil {
				return fmt.Errorf("server: recovering job %q: %w", rj.id, err)
			}
			s.recoverResult(rj)
			if rj.resultStored {
				manifested[rj.id] = true
			}
		}
	}
	for _, id := range s.results.IDs() {
		if !manifested[id] {
			s.results.Remove(id)
		}
	}
	live := make(map[string]bool)
	for key, cr := range cacheMan {
		switch {
		case cr.evictCause != "":
			s.sortcache.MarkEvicted(key, resultstore.Cause(cr.evictCause))
		case cr.stored && !s.sortcache.Has(key):
			s.sortcache.MarkLost(key)
		case cr.stored:
			live[key] = true
		}
	}
	for _, key := range s.sortcache.IDs() {
		if !live[key] {
			s.sortcache.Remove(key)
		}
	}
	// Recurring schedules resume at their journaled due instants — not
	// "now + every" — so a due-time survives any number of restarts
	// unchanged and Tick fires it as soon as the clock catches up.
	for id, sc := range schedules {
		s.recur[id] = &recurrence{every: sc.Every, next: sc.Next}
	}
	return nil
}

// recoverResult reconciles one job's durable result manifest against what
// the result store's scan found on disk.
func (s *Server) recoverResult(rj *recoveredJob) {
	id := rj.id
	switch {
	case rj.evictCause != "":
		// The manifest's last word is an eviction: rematerialise the
		// tombstone (quietly — the record is already durable).
		s.results.MarkEvicted(id, resultstore.Cause(rj.evictCause))
	case rj.resultStored && !s.results.Has(id):
		// The manifest says stored, but no intact segment survived (torn
		// segments were dropped by the scan): tombstone as torn, journaled
		// so the next replay agrees.
		s.results.MarkLost(id)
	case rj.resultStored && !rj.state.Settled():
		// The crash hit between the manifest append and the Stored
		// transition: the job recovers as interrupted, so its intact
		// segment serves no one. Evict it, journaled.
		s.results.Discard(id, resultstore.CauseTorn)
	case rj.state == StateDelivered && !rj.resultStored:
		// A job delivered before the result store existed: its result was
		// never persisted, so reconnecting recipients get the typed
		// pre-store eviction instead of a bare "unavailable".
		s.results.MarkEvicted(id, resultstore.CausePreStore)
	}
}

func (s *Server) recoverJob(c *service.Contract, rj *recoveredJob) error {
	svc, err := s.newService(c)
	if err != nil {
		return err
	}
	providers, recipients := c.CountRoles()
	ctx, cancel := context.WithCancel(context.Background())
	if s.cfg.JobTimeout > 0 && !rj.state.Settled() {
		ctx, cancel = context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	}
	j := &Job{
		svc:            svc,
		srv:            s,
		id:             rj.id,
		seq:            rj.seq,
		tenant:         c.Tenant,
		priority:       c.Priority,
		ctx:            ctx,
		cancel:         cancel,
		providers:      providers,
		wantRecipients: recipients,
		state:          rj.state,
		settled:        make(chan struct{}),
		done:           make(chan struct{}),
	}
	if rj.seq == 1 {
		err = s.registry.add(j)
	} else {
		err = s.registry.addExecution(j)
	}
	if err != nil {
		cancel()
		return err
	}
	s.metrics.jobRecovered(rj.state)
	// A job recovering into a live state re-occupies its tenant's in-flight
	// slot; settle (including the fail below) releases it. Settled states
	// returned their slot before the crash.
	if !rj.state.Settled() {
		s.quotas.restore(j.tenant)
		j.quotaHeld = true
	}
	switch {
	case rj.state == StatePending:
		go j.watch()
	case rj.state == StateStored:
		// The result outlived the process in the durable store; the job
		// resumes serving it from there (outcomeForDelivery finds no cached
		// outcome and loads the segment). The outcome is settled and there
		// is nothing left to run, cancel, or time out — but done stays
		// open: the job still owes deliveries.
		j.settle()
		cancel()
	case rj.state.Terminal():
		j.err = recoveredCause(rj)
		j.settle()
		cancel()
		j.closeDone()
	default:
		// Uploading or Running at crash time: the uploads are gone. fail()
		// appends the interrupted verdict to the WAL and settles metrics,
		// making a second recovery idempotent.
		j.fail(ErrInterrupted, false)
	}
	return nil
}

// recoveredCause reconstructs a terminal job's error from its recorded
// cause. Delivered jobs have none; ErrInterrupted survives restarts as the
// sentinel so errors.Is keeps working across any number of recoveries.
func recoveredCause(rj *recoveredJob) error {
	if rj.state != StateFailed {
		return nil
	}
	switch rj.cause {
	case ErrInterrupted.Error():
		return ErrInterrupted
	case "":
		return &RecoveredError{Cause: "failure cause not recorded"}
	}
	return &RecoveredError{Cause: rj.cause}
}

// contractOfJob derives the contract ID a job ID belongs to: job IDs are
// "<contract>#<seq>" for resubmissions and the contract ID itself for first
// executions. The fleet router uses it to route job-addressed hellos to the
// shard that owns the contract.
func contractOfJob(jobID string) string {
	if i := strings.Index(jobID, "#"); i >= 0 {
		return jobID[:i]
	}
	return jobID
}
