package server

import (
	"context"
	"errors"
	"fmt"

	"ppj/internal/server/wal"
	"ppj/internal/service"
)

// ErrInterrupted is the typed cause given to jobs that were Uploading or
// Running when the host crashed: their uploads lived only in the dead
// process's memory, so recovery fails them deterministically — tenants get
// a definite answer instead of a silently vanished job.
var ErrInterrupted = errors.New("server: job interrupted by host crash")

// RecoveredError carries a failure cause replayed from the WAL. The
// original typed error died with the old process; only its message is
// durable, so recovered failures compare by string, except ErrInterrupted
// which recovery maps back to the sentinel.
type RecoveredError struct{ Cause string }

// Error implements error.
func (e *RecoveredError) Error() string { return e.Cause }

// recoveredJob is one job's last durable state, folded from WAL records.
type recoveredJob struct {
	contract *service.Contract
	state    State
	cause    string
}

// foldRecords replays WAL records into per-contract final states,
// preserving registration order. Transitions simply overwrite the state —
// the log is the authority on ordering — and transitions for unregistered
// contracts (possible only through manual log surgery) are dropped.
func foldRecords(recs []wal.Record) ([]*recoveredJob, error) {
	byID := make(map[string]*recoveredJob)
	var order []*recoveredJob
	for _, rec := range recs {
		switch rec.Type {
		case wal.TypeRegistered:
			c, err := decodeContract(rec.Contract)
			if err != nil {
				return nil, err
			}
			if _, dup := byID[c.ID]; dup {
				return nil, fmt.Errorf("server: wal registers contract %q twice", c.ID)
			}
			rj := &recoveredJob{contract: c, state: StatePending}
			byID[c.ID] = rj
			order = append(order, rj)
		case wal.TypeTransition:
			rj, ok := byID[rec.ContractID]
			if !ok {
				continue
			}
			if rec.To < 0 || rec.To >= numStates {
				return nil, fmt.Errorf("server: wal transition to unknown state %d", rec.To)
			}
			rj.state = State(rec.To)
			rj.cause = rec.Cause
		}
	}
	return order, nil
}

// recover rebuilds the registry and job table from replayed WAL records.
// Jobs that were Pending resume live (no data had arrived; the parties
// simply reconnect). Jobs that were Uploading or Running are failed with
// ErrInterrupted — and that verdict is appended to the WAL, so a second
// restart reaches the identical table. Terminal jobs become tombstones
// that answer reconnecting recipients immediately.
func (s *Server) recover(recs []wal.Record) error {
	folded, err := foldRecords(recs)
	if err != nil {
		return err
	}
	for _, rj := range folded {
		if err := s.recoverJob(rj); err != nil {
			return fmt.Errorf("server: recovering contract %q: %w", rj.contract.ID, err)
		}
	}
	return nil
}

func (s *Server) recoverJob(rj *recoveredJob) error {
	svc, err := service.NewServiceWithDevice(s.device, rj.contract, s.cfg.Memory, s.cfg.Seed)
	if err != nil {
		return err
	}
	svc.Devices = s.cfg.DevicesPerJob
	providers, recipients := rj.contract.CountRoles()
	ctx, cancel := context.WithCancel(context.Background())
	if s.cfg.JobTimeout > 0 && !rj.state.Terminal() {
		ctx, cancel = context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	}
	j := &Job{
		svc:            svc,
		srv:            s,
		ctx:            ctx,
		cancel:         cancel,
		providers:      providers,
		wantRecipients: recipients,
		state:          rj.state,
		done:           make(chan struct{}),
	}
	if err := s.registry.add(j); err != nil {
		cancel()
		return err
	}
	s.metrics.jobRecovered(rj.state)
	switch {
	case rj.state == StatePending:
		go j.watch()
	case rj.state.Terminal():
		j.err = recoveredCause(rj)
		cancel()
		close(j.done)
	default:
		// Uploading or Running at crash time: the uploads are gone. fail()
		// appends the interrupted verdict to the WAL and settles metrics,
		// making a second recovery idempotent.
		j.fail(ErrInterrupted, false)
	}
	return nil
}

// recoveredCause reconstructs a terminal job's error from its recorded
// cause. Delivered jobs have none; ErrInterrupted survives restarts as the
// sentinel so errors.Is keeps working across any number of recoveries.
func recoveredCause(rj *recoveredJob) error {
	if rj.state != StateFailed {
		return nil
	}
	switch rj.cause {
	case ErrInterrupted.Error():
		return ErrInterrupted
	case "":
		return &RecoveredError{Cause: "failure cause not recorded"}
	}
	return &RecoveredError{Cause: rj.cause}
}
