package server

import (
	"fmt"
	"sync"
)

// Scheduler policy names accepted by Config.Scheduler.
const (
	// PolicyFair is the default: weighted deficit round-robin across
	// per-tenant queues with per-contract priority classes. The QueueDepth
	// bound applies per tenant, so one tenant flooding its queue full
	// refuses only that tenant's jobs with ErrQueueFull.
	PolicyFair = "fair"
	// PolicyFIFO is the historical discipline: one bounded queue shared by
	// every tenant, served strictly in arrival order.
	PolicyFIFO = "fifo"
)

// Scheduler is the ready-queue seam between job readiness and the worker
// pool. Implementations own the queueing discipline; the server owns
// everything around it (metrics, failing refused jobs, shutdown order).
type Scheduler interface {
	// Enqueue admits a ready job, or refuses it with a typed error:
	// ErrQueueFull when the discipline's bound is hit (per tenant for the
	// fair scheduler, globally for FIFO), ErrShuttingDown after Close.
	// A refused job is not queued; the caller fails it.
	Enqueue(j *Job) error
	// Next blocks until a job is ready to run, returning ok=false once the
	// scheduler is closed and drained.
	Next() (j *Job, ok bool)
	// Close stops the scheduler, wakes every blocked Next, and returns the
	// jobs still queued (they will never run; the caller fails them).
	Close() []*Job
	// Depth is the total number of queued jobs.
	Depth() int
	// Cap is the discipline's nominal bound — the per-tenant bound for
	// fair, the whole queue for FIFO. Load/spillover ordering reads it.
	Cap() int
	// Full reports whether registration-time admission control should
	// refuse new contracts: total depth at or over the nominal bound.
	Full() bool
}

// newScheduler builds the configured discipline. Empty policy selects
// fair; unknown policies are a construction error, not a silent fallback.
func newScheduler(policy string, depth int, weights map[string]int) (Scheduler, error) {
	switch policy {
	case "", PolicyFair:
		return newFairScheduler(depth, weights), nil
	case PolicyFIFO:
		return newFIFOScheduler(depth), nil
	}
	return nil, fmt.Errorf("server: unknown scheduler policy %q (want %q or %q)", policy, PolicyFair, PolicyFIFO)
}

// fifoScheduler is the historical single bounded FIFO: arrival order,
// one global bound, no tenant awareness.
type fifoScheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Job
	bound  int
	closed bool
}

func newFIFOScheduler(bound int) *fifoScheduler {
	s := &fifoScheduler{bound: bound}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Enqueue implements Scheduler.
func (s *fifoScheduler) Enqueue(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrShuttingDown
	}
	if len(s.queue) >= s.bound {
		return fmt.Errorf("%w (depth %d)", ErrQueueFull, s.bound)
	}
	s.queue = append(s.queue, j)
	s.cond.Signal()
	return nil
}

// Next implements Scheduler.
func (s *fifoScheduler) Next() (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return nil, false
	}
	j := s.queue[0]
	s.queue = s.queue[1:]
	return j, true
}

// Close implements Scheduler.
func (s *fifoScheduler) Close() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	drained := s.queue
	s.queue = nil
	s.closed = true
	s.cond.Broadcast()
	return drained
}

// Depth implements Scheduler.
func (s *fifoScheduler) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Cap implements Scheduler.
func (s *fifoScheduler) Cap() int { return s.bound }

// Full implements Scheduler.
func (s *fifoScheduler) Full() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) >= s.bound
}

// numClasses is the per-tenant priority ladder: high, normal, low. A
// contract's Priority field maps onto it by sign, so any int collapses to
// three classes and the starvation analysis stays three-deep.
const numClasses = 3

// classOf maps a contract priority to its class index (0 runs first).
func classOf(priority int) int {
	switch {
	case priority > 0:
		return 0
	case priority < 0:
		return 2
	}
	return 1
}

// tenantQueue is one tenant's ready jobs and deficit-round-robin state.
type tenantQueue struct {
	tenant  string
	classes [numClasses][]*Job
	queued  int
	weight  int
	// deficit is the tenant's banked service credit in job units. It is
	// topped up by weight when the round-robin cursor selects the tenant
	// with an empty bank, spent one unit per dequeue, and reset to zero
	// when the tenant's queue empties — an idle tenant banks nothing, so
	// no deficit ever exceeds the tenant's weight (the fairness property
	// test pins exactly this bound).
	deficit int
}

// pop removes the tenant's next job: the head of its highest non-empty
// priority class, FIFO within a class.
func (t *tenantQueue) pop() *Job {
	for c := range t.classes {
		if len(t.classes[c]) > 0 {
			j := t.classes[c][0]
			t.classes[c] = t.classes[c][1:]
			t.queued--
			return j
		}
	}
	return nil
}

// fairScheduler is weighted deficit round-robin across per-tenant queues.
// Each tenant owns a bounded queue (the QueueDepth bound applies per
// tenant) split into priority classes; the dispatcher cycles the active
// tenants, topping up each tenant's deficit by its weight and dequeueing
// one job per unit. With unit job cost this degenerates to weighted
// round-robin, which gives the starvation bound the tests pin: between
// two consecutive dequeues for a tenant of weight w, at most
// ceil(W/w) - 1 rounds of other tenants' jobs run, where W is the sum of
// active weights — a trickling tenant's wait is a constant factor of its
// fair share no matter how hard the others flood.
type fairScheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	bound   int // per-tenant queue bound
	weights map[string]int

	tenants map[string]*tenantQueue
	active  []*tenantQueue // tenants with queued jobs, round-robin order
	cursor  int
	depth   int
	closed  bool
}

func newFairScheduler(bound int, weights map[string]int) *fairScheduler {
	s := &fairScheduler{bound: bound, weights: weights, tenants: make(map[string]*tenantQueue)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// weight resolves a tenant's fair-share weight, floored at 1 so every
// tenant always makes progress.
func (s *fairScheduler) weight(tenant string) int {
	if w := s.weights[tenant]; w > 1 {
		return w
	}
	return 1
}

// Enqueue implements Scheduler. The bound is per tenant, and so is the
// refusal: a flooding tenant hitting its bound gets ErrQueueFull naming
// it, while every other tenant's queue is untouched.
func (s *fairScheduler) Enqueue(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrShuttingDown
	}
	tq, ok := s.tenants[j.tenant]
	if !ok {
		tq = &tenantQueue{tenant: j.tenant, weight: s.weight(j.tenant)}
		s.tenants[j.tenant] = tq
	}
	if tq.queued >= s.bound {
		return fmt.Errorf("%w (tenant %q, depth %d)", ErrQueueFull, j.tenant, s.bound)
	}
	c := classOf(j.priority)
	tq.classes[c] = append(tq.classes[c], j)
	tq.queued++
	if tq.queued == 1 {
		s.active = append(s.active, tq)
	}
	s.depth++
	s.cond.Signal()
	return nil
}

// Next implements Scheduler.
func (s *fairScheduler) Next() (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.depth == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.depth == 0 {
		return nil, false
	}
	return s.pickLocked(), true
}

// pickLocked runs one DRR dispatch step. Callers hold mu and guarantee
// depth > 0, so active is non-empty and the selected tenant has a job.
func (s *fairScheduler) pickLocked() *Job {
	if s.cursor >= len(s.active) {
		s.cursor = 0
	}
	tq := s.active[s.cursor]
	if tq.deficit < 1 {
		tq.deficit += tq.weight
	}
	j := tq.pop()
	tq.deficit--
	s.depth--
	switch {
	case tq.queued == 0:
		// The tenant's queue drained: it leaves the round and forfeits any
		// banked credit, so an idle tenant cannot hoard deficit.
		tq.deficit = 0
		s.active = append(s.active[:s.cursor], s.active[s.cursor+1:]...)
		if s.cursor >= len(s.active) {
			s.cursor = 0
		}
	case tq.deficit < 1:
		// Credit spent: the round moves on.
		s.cursor = (s.cursor + 1) % len(s.active)
	}
	return j
}

// Close implements Scheduler.
func (s *fairScheduler) Close() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var drained []*Job
	// Drain in dispatch order so shutdown failure order matches what the
	// scheduler would have run.
	for s.depth > 0 {
		drained = append(drained, s.pickLocked())
	}
	s.closed = true
	s.cond.Broadcast()
	return drained
}

// Depth implements Scheduler.
func (s *fairScheduler) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depth
}

// Cap implements Scheduler.
func (s *fairScheduler) Cap() int { return s.bound }

// Full implements Scheduler. Admission control keys off the total depth
// against the nominal bound: a shard whose scheduler holds a full bound's
// worth of jobs (across any mix of tenants) should spill new contracts,
// even though an under-bound tenant could still Enqueue.
func (s *fairScheduler) Full() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depth >= s.bound
}

// TenantsQueued reports how many tenants currently have queued jobs
// (admin introspection; the fleet snapshot aggregates it).
func (s *fairScheduler) TenantsQueued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}
