package server

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"ppj/internal/server/wal"
	"ppj/internal/service"
)

// Store abstracts job durability: the server tells it about contract
// registrations and every job state transition. The in-memory NopStore
// preserves the pre-WAL behavior (nothing survives the process); WALStore
// makes both durable so a restarted server can rebuild its registry and
// job table.
type Store interface {
	// LogRegistered records a contract admitted to the registry. An error
	// fails the registration: a job whose admission is not durable would be
	// silently lost by a crash.
	LogRegistered(c *service.Contract) error
	// LogTransition records a job state transition; cause carries the
	// failure reason for transitions into StateFailed.
	LogTransition(contractID string, from, to State, cause string) error
	// LogResultStored records a sealed result entering the durable result
	// store with its accounted size — the store's manifest rides the same
	// log as the job lifecycle, so one replay rebuilds both.
	LogResultStored(contractID string, bytes int64) error
	// LogResultEvicted records a stored result leaving the store, with its
	// eviction cause ("ttl", "cap", "torn", "pre-store").
	LogResultEvicted(contractID, cause string) error
	// LogResubmitted records a re-execution of a registered contract under
	// the freshly minted job ID. An error fails the resubmission, exactly
	// as LogRegistered fails a registration.
	LogResubmitted(contractID, jobID string) error
	// LogCacheStored records a sorted-relation cache entry entering the
	// durable sort cache under its cache key, with its accounted size.
	LogCacheStored(key string, bytes int64) error
	// LogCacheEvicted records a sort-cache entry leaving the cache with its
	// eviction cause.
	LogCacheEvicted(key, cause string) error
	// LogScheduled records a contract's recurrence word: its fixed
	// re-execution interval and next due instant. Appended at recurring
	// registration and again on every fire (the advanced due-time); the
	// last record per contract is authoritative at recovery.
	LogScheduled(contractID string, every time.Duration, due time.Time) error
	// Close releases the store.
	Close() error
}

// NopStore is the in-memory default: nothing is persisted and every job
// dies with the process.
type NopStore struct{}

// LogRegistered implements Store.
func (NopStore) LogRegistered(*service.Contract) error { return nil }

// LogTransition implements Store.
func (NopStore) LogTransition(string, State, State, string) error { return nil }

// LogResultStored implements Store.
func (NopStore) LogResultStored(string, int64) error { return nil }

// LogResultEvicted implements Store.
func (NopStore) LogResultEvicted(string, string) error { return nil }

// LogResubmitted implements Store.
func (NopStore) LogResubmitted(string, string) error { return nil }

// LogCacheStored implements Store.
func (NopStore) LogCacheStored(string, int64) error { return nil }

// LogCacheEvicted implements Store.
func (NopStore) LogCacheEvicted(string, string) error { return nil }

// LogScheduled implements Store.
func (NopStore) LogScheduled(string, time.Duration, time.Time) error { return nil }

// Close implements Store.
func (NopStore) Close() error { return nil }

// SiteRegister is the faultpoint fired before a registration record is
// appended to the WAL.
const SiteRegister = "register"

// SiteResultStored is the faultpoint fired before a result-stored
// manifest record is appended — the instant the fleet crash suite tears
// to leave a segment on disk that the manifest never acknowledged.
const SiteResultStored = "result:stored"

// SiteResultEvicted is the faultpoint fired before a result-evicted
// manifest record is appended.
const SiteResultEvicted = "result:evicted"

// SiteResubmit is the faultpoint fired before a resubmission record is
// appended — tearing here freezes the log with the contract registered but
// the re-execution unborn, the crash instant the re-execution recovery
// suite pins.
const SiteResubmit = "resubmit"

// SiteCacheStored is the faultpoint fired before a cache-stored manifest
// record is appended.
const SiteCacheStored = "cache:stored"

// SiteCacheEvicted is the faultpoint fired before a cache-evicted manifest
// record is appended.
const SiteCacheEvicted = "cache:evicted"

// SiteScheduled is the faultpoint fired before a schedule record is
// appended — both the one written at recurring registration and the
// advanced due-time written on every fire. Tearing here freezes the
// durable schedule at its previous word, the crash instant the recurrence
// recovery suite pins.
const SiteScheduled = "schedule"

// TransitionSite names the faultpoint fired before a from→to transition
// record is appended, e.g. "state:uploading->running". A hook returning
// wal.ErrCrashed at such a site freezes the on-disk log between two
// adjacent job states — the crash-between-transition schedules of the
// recovery suite.
func TransitionSite(from, to State) string {
	return "state:" + from.String() + "->" + to.String()
}

// WALStore persists registrations and transitions to an append-only,
// checksummed write-ahead log. It holds the data dir's advisory lock for
// its whole lifetime: one store (one server process) per directory.
type WALStore struct {
	log    *wal.Log
	faults *wal.Faults
	lock   *wal.DirLock
}

// OpenWALStore locks dir against other processes, recovers its log —
// truncating any torn tail — and opens it for appending, returning the
// store and the replayed records in write order. faults may be nil
// (production). A dir already locked by another server process is refused
// before recovery runs, so two processes can never truncate or interleave
// each other's live log.
func OpenWALStore(dir string, faults *wal.Faults) (*WALStore, []wal.Record, error) {
	lock, err := wal.LockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	recs, err := wal.Recover(dir)
	if err != nil {
		lock.Release()
		return nil, nil, err
	}
	log, err := wal.Open(dir, faults)
	if err != nil {
		lock.Release()
		return nil, nil, err
	}
	return &WALStore{log: log, faults: faults, lock: lock}, recs, nil
}

// LogRegistered implements Store.
func (s *WALStore) LogRegistered(c *service.Contract) error {
	if err := s.fire(SiteRegister); err != nil {
		return err
	}
	raw, err := encodeContract(c)
	if err != nil {
		return err
	}
	return s.log.Append(wal.Record{Type: wal.TypeRegistered, Contract: raw})
}

// LogTransition implements Store.
func (s *WALStore) LogTransition(id string, from, to State, cause string) error {
	if err := s.fire(TransitionSite(from, to)); err != nil {
		return err
	}
	return s.log.Append(wal.Record{
		Type:       wal.TypeTransition,
		ContractID: id,
		From:       int32(from),
		To:         int32(to),
		Cause:      cause,
	})
}

// LogResultStored implements Store.
func (s *WALStore) LogResultStored(id string, bytes int64) error {
	if err := s.fire(SiteResultStored); err != nil {
		return err
	}
	return s.log.Append(wal.Record{Type: wal.TypeResultStored, ContractID: id, Bytes: bytes})
}

// LogResultEvicted implements Store.
func (s *WALStore) LogResultEvicted(id, cause string) error {
	if err := s.fire(SiteResultEvicted); err != nil {
		return err
	}
	return s.log.Append(wal.Record{Type: wal.TypeResultEvicted, ContractID: id, Cause: cause})
}

// LogResubmitted implements Store.
func (s *WALStore) LogResubmitted(contractID, jobID string) error {
	if err := s.fire(SiteResubmit); err != nil {
		return err
	}
	return s.log.Append(wal.Record{Type: wal.TypeResubmitted, ContractID: contractID, JobID: jobID})
}

// LogCacheStored implements Store.
func (s *WALStore) LogCacheStored(key string, bytes int64) error {
	if err := s.fire(SiteCacheStored); err != nil {
		return err
	}
	return s.log.Append(wal.Record{Type: wal.TypeCacheStored, ContractID: key, Bytes: bytes})
}

// LogCacheEvicted implements Store.
func (s *WALStore) LogCacheEvicted(key, cause string) error {
	if err := s.fire(SiteCacheEvicted); err != nil {
		return err
	}
	return s.log.Append(wal.Record{Type: wal.TypeCacheEvicted, ContractID: key, Cause: cause})
}

// LogScheduled implements Store.
func (s *WALStore) LogScheduled(contractID string, every time.Duration, due time.Time) error {
	if err := s.fire(SiteScheduled); err != nil {
		return err
	}
	return s.log.Append(wal.Record{
		Type:       wal.TypeScheduled,
		ContractID: contractID,
		Every:      every.Nanoseconds(),
		Due:        due.UnixNano(),
	})
}

// Close implements Store, releasing the data-dir lock after the log.
func (s *WALStore) Close() error {
	err := s.log.Close()
	if lerr := s.lock.Release(); err == nil {
		err = lerr
	}
	return err
}

// fire runs a server-level faultpoint; a wal.ErrCrashed injection seals
// the log so nothing after the simulated crash instant reaches disk.
func (s *WALStore) fire(site string) error {
	err := s.faults.Fire(site)
	if err != nil && errors.Is(err, wal.ErrCrashed) {
		s.log.Crash()
	}
	return err
}

// encodeContract serialises a contract for a registration record. Gob
// round-trips every exported field, signatures included, so recovery can
// re-verify the contract exactly as Register did.
func encodeContract(c *service.Contract) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("server: encoding contract %q: %w", c.ID, err)
	}
	return buf.Bytes(), nil
}

// decodeContract is encodeContract's inverse.
func decodeContract(raw []byte) (*service.Contract, error) {
	var c service.Contract
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&c); err != nil {
		return nil, fmt.Errorf("server: decoding contract record: %w", err)
	}
	return &c, nil
}
