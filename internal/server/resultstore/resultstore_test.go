package resultstore

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"ppj/internal/clock"
)

// recJournal records manifest events in order, standing in for the server's
// WAL seam.
type recJournal struct {
	mu     sync.Mutex
	events []string
}

func (j *recJournal) ResultStored(id string, bytes int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, fmt.Sprintf("stored %s", id))
	return nil
}

func (j *recJournal) ResultEvicted(id, cause string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, fmt.Sprintf("evicted %s %s", id, cause))
	return nil
}

func (j *recJournal) log() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.events...)
}

// mkRows builds n rows of the given size with distinct contents.
func mkRows(n, size int) [][]byte {
	rows := make([][]byte, n)
	for i := range rows {
		r := make([]byte, size)
		for j := range r {
			r[j] = byte(i + j + 1)
		}
		rows[i] = r
	}
	return rows
}

func wantRows(t *testing.T, s *Store, id string, meta []byte, rows [][]byte) {
	t.Helper()
	gotMeta, gotRows, err := s.Get(id)
	if err != nil {
		t.Fatalf("Get(%s): %v", id, err)
	}
	if string(gotMeta) != string(meta) {
		t.Fatalf("Get(%s) meta = %q, want %q", id, gotMeta, meta)
	}
	if len(gotRows) != len(rows) {
		t.Fatalf("Get(%s) returned %d rows, want %d", id, len(gotRows), len(rows))
	}
	for i := range rows {
		if string(gotRows[i]) != string(rows[i]) {
			t.Fatalf("Get(%s) row %d differs", id, i)
		}
	}
}

// TestPutGetPersist is the round-trip contract: results stored in one
// incarnation are served byte-identically by the next, whether the rows
// come from the memory cache or back off the sealed segment.
func TestPutGetPersist(t *testing.T) {
	dir := t.TempDir()
	rows := mkRows(5, 40)
	s, err := Open(Config{Dir: dir, MemCacheBytes: 1}) // force segment reads
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("job-a", []byte("meta-a"), rows); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("job-empty", []byte("meta-e"), nil); err != nil {
		t.Fatal(err)
	}
	wantRows(t, s, "job-a", []byte("meta-a"), rows)
	wantRows(t, s, "job-empty", []byte("meta-e"), nil)
	if _, _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: %v, want ErrNotFound", err)
	}
	if err := s.Put("job-a", nil, nil); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("second Put: %v, want ErrDuplicate", err)
	}
	bytes := s.Bytes()
	if bytes <= 0 {
		t.Fatalf("accounted bytes = %d", bytes)
	}
	s.Close()

	// A fresh store on the same dir rebuilds the index from the segments
	// alone; the at-rest key survives in the key file.
	s2, err := Open(Config{Dir: dir, MemCacheBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Bytes(); got != bytes {
		t.Fatalf("recovered bytes = %d, want %d", got, bytes)
	}
	wantRows(t, s2, "job-a", []byte("meta-a"), rows)
	wantRows(t, s2, "job-empty", []byte("meta-e"), nil)
}

// TestMemoryOnlyMode pins the Dir=="" contract: everything works, nothing
// persists.
func TestMemoryOnlyMode(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows := mkRows(3, 8)
	if err := s.Put("m", []byte("meta"), rows); err != nil {
		t.Fatal(err)
	}
	wantRows(t, s, "m", []byte("meta"), rows)
	if want := int64(len("meta") + 3*8); s.Bytes() != want {
		t.Fatalf("memory accounting = %d, want %d", s.Bytes(), want)
	}
}

// TestLRUCapEviction drives the byte cap: the least-recently-read result
// is evicted (a Get refreshes recency), the tombstone carries CauseCap,
// the eviction is journaled, and accounted bytes never exceed the cap.
func TestLRUCapEviction(t *testing.T) {
	j := &recJournal{}
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	// Size one result, then set the cap to hold exactly two of them.
	if err := s.Put("a", []byte("m"), mkRows(4, 32)); err != nil {
		t.Fatal(err)
	}
	one := s.Bytes()
	s.cfg.MaxBytes = 2 * one
	if err := s.Put("b", []byte("m"), mkRows(4, 32)); err != nil {
		t.Fatal(err)
	}
	// Touch a so b becomes the LRU victim.
	if _, _, err := s.Get("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("c", []byte("m"), mkRows(4, 32)); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() > s.cfg.MaxBytes {
		t.Fatalf("bytes %d exceed cap %d", s.Bytes(), s.cfg.MaxBytes)
	}
	if s.Has("b") || !s.Has("a") || !s.Has("c") {
		t.Fatalf("LRU evicted the wrong result: a=%v b=%v c=%v", s.Has("a"), s.Has("b"), s.Has("c"))
	}
	if _, err := os.Stat(SegmentPath(dir, "b")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("evicted segment still on disk: %v", err)
	}
	_, _, err = s.Get("b")
	var ev *EvictedError
	if !errors.As(err, &ev) || ev.Cause != CauseCap {
		t.Fatalf("evicted Get: %v, want EvictedError cap", err)
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions())
	}
	want := []string{"stored a", "stored b", "evicted b cap", "stored c"}
	if got := j.log(); !equalStrings(got, want) {
		t.Fatalf("journal = %v, want %v", got, want)
	}
}

// TestTooLargeTombstone pins the admission check: a result alone larger
// than the cap is refused before anything is written, and the ID is
// tombstoned CauseCap so later readers get a definite verdict.
func TestTooLargeTombstone(t *testing.T) {
	j := &recJournal{}
	s, err := Open(Config{Dir: t.TempDir(), MaxBytes: 64, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("huge", []byte("m"), mkRows(8, 64)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized Put: %v, want ErrTooLarge", err)
	}
	if s.Bytes() != 0 {
		t.Fatalf("refused Put accounted %d bytes", s.Bytes())
	}
	var ev *EvictedError
	if _, _, err := s.Get("huge"); !errors.As(err, &ev) || ev.Cause != CauseCap {
		t.Fatalf("Get after refusal: %v, want EvictedError cap", err)
	}
	if got := j.log(); !equalStrings(got, []string{"evicted huge cap"}) {
		t.Fatalf("journal = %v", got)
	}
}

// TestTTLExpiry drives lazy expiry through the injected clock.
func TestTTLExpiry(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	j := &recJournal{}
	s, err := Open(Config{Dir: t.TempDir(), TTL: time.Minute, Journal: j,
		Now: fake.NowFunc()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("old", []byte("m"), mkRows(2, 8)); err != nil {
		t.Fatal(err)
	}
	fake.Advance(30 * time.Second)
	if err := s.Put("young", []byte("m"), mkRows(2, 8)); err != nil {
		t.Fatal(err)
	}
	fake.Advance(45 * time.Second) // old is 75s stale, young 45s
	var ev *EvictedError
	if _, _, err := s.Get("old"); !errors.As(err, &ev) || ev.Cause != CauseTTL {
		t.Fatalf("expired Get: %v, want EvictedError ttl", err)
	}
	if !s.Has("young") {
		t.Fatal("unexpired result swept")
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions())
	}
	if got := j.log(); !equalStrings(got, []string{"stored old", "stored young", "evicted old ttl"}) {
		t.Fatalf("journal = %v", got)
	}
}

// TestTornSegmentScan pins the recovery contract for a torn write: the
// header frame is self-checksummed, so a segment corrupted after it is
// deleted, tombstoned as torn under the right contract ID, journaled, and
// counted as a recovery eviction — while intact neighbours survive.
func TestTornSegmentScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("intact", []byte("m"), mkRows(3, 24)); err != nil {
		t.Fatal(err)
	}
	intact := s.Bytes()
	if err := s.Put("torn", []byte("m"), mkRows(3, 24)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one ciphertext byte near the tail — past the header frame.
	path := SegmentPath(dir, "torn")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-5] ^= 0xff
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}

	j := &recJournal{}
	s2, err := Open(Config{Dir: dir, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has("intact") || s2.Has("torn") {
		t.Fatalf("scan verdicts: intact=%v torn=%v", s2.Has("intact"), s2.Has("torn"))
	}
	if s2.Bytes() != intact {
		t.Fatalf("recovered bytes = %d, want %d", s2.Bytes(), intact)
	}
	var ev *EvictedError
	if _, _, err := s2.Get("torn"); !errors.As(err, &ev) || ev.Cause != CauseTorn {
		t.Fatalf("torn Get: %v, want EvictedError torn", err)
	}
	if s2.RecoveryEvictions() != 1 {
		t.Fatalf("recovery evictions = %d, want 1", s2.RecoveryEvictions())
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn segment not deleted: %v", err)
	}
	if got := j.log(); !equalStrings(got, []string{"evicted torn torn"}) {
		t.Fatalf("journal = %v", got)
	}
}

// TestReconcileVerbs pins the three recovery reconciliation verbs the
// server drives: MarkLost (manifest says stored, no segment), Discard
// (segment present, job never durably Stored), Remove (orphan segment
// with no manifest record).
func TestReconcileVerbs(t *testing.T) {
	j := &recJournal{}
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Journal: j})
	if err != nil {
		t.Fatal(err)
	}

	// MarkLost: tombstone torn, journaled, counted — and idempotent.
	s.MarkLost("lost")
	s.MarkLost("lost")
	if c, ok := s.EvictedCause("lost"); !ok || c != CauseTorn {
		t.Fatalf("MarkLost cause = %v %v", c, ok)
	}
	if s.RecoveryEvictions() != 1 {
		t.Fatalf("MarkLost recovery evictions = %d, want 1", s.RecoveryEvictions())
	}

	// MarkEvicted: quiet rematerialisation — no journal entry, no count.
	s.MarkEvicted("old-era", CausePreStore)
	if c, _ := s.EvictedCause("old-era"); c != CausePreStore {
		t.Fatalf("MarkEvicted cause = %v", c)
	}

	// Discard: drops a live entry with a journaled verdict and a count.
	if err := s.Put("stranded", []byte("m"), mkRows(1, 8)); err != nil {
		t.Fatal(err)
	}
	s.Discard("stranded", CauseTorn)
	s.Discard("stranded", CauseTorn) // idempotent: entry already gone
	if s.Has("stranded") {
		t.Fatal("Discard left the entry live")
	}
	if c, _ := s.EvictedCause("stranded"); c != CauseTorn {
		t.Fatalf("Discard cause = %v", c)
	}

	// Remove: drops an orphan without a tombstone, still counted.
	if err := s.Put("orphan", []byte("m"), mkRows(1, 8)); err != nil {
		t.Fatal(err)
	}
	s.Remove("orphan")
	if s.Has("orphan") {
		t.Fatal("Remove left the entry live")
	}
	if _, ok := s.EvictedCause("orphan"); ok {
		t.Fatal("Remove left a tombstone")
	}
	if _, _, err := s.Get("orphan"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("removed Get: %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(SegmentPath(dir, "orphan")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("Remove left the segment on disk")
	}
	if s.RecoveryEvictions() != 3 {
		t.Fatalf("recovery evictions = %d, want 3 (lost+stranded+orphan)", s.RecoveryEvictions())
	}
	want := []string{"evicted lost torn", "stored stranded", "evicted stranded torn", "stored orphan"}
	if got := j.log(); !equalStrings(got, want) {
		t.Fatalf("journal = %v, want %v", got, want)
	}
	if got := s.String(); !strings.Contains(got, "live=0") {
		t.Fatalf("String() = %q", got)
	}
}

func equalStrings(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
