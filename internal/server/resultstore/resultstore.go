// Package resultstore is the server's durable tier for sealed join
// results. The paper's protocol ends with T re-encrypting the result for
// the recipient; this store is what lets that hand-off survive a slow,
// disconnected, or restarted recipient — and "Equi-Joins over Encrypted
// Data for Series of Queries" (PAPERS.md) motivates keeping sealed outputs
// around as the substrate for a tenant's series of queries.
//
// A result is written once at job completion and read any number of times
// by delivery. Small results stay cached in memory; every result also
// spills to a per-job segment file of CRC-framed, OCB-sealed records (the
// at-rest analogue of the session sealer — the host's disk never sees
// plaintext). The store's manifest — which results exist and which were
// evicted, and why — is journaled through the server's WAL seam, so one
// log replay rebuilds the job table and the result index together.
// Results are evicted lazily by TTL and LRU under a byte cap; an eviction
// leaves a tombstone carrying its cause, so a recipient reconnecting to a
// gone result learns "gone forever", not "retry later".
package resultstore

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ppj/internal/ocb"
)

// Cause classifies why a result left the store.
type Cause string

const (
	// CauseTTL: the result outlived Config.TTL.
	CauseTTL Cause = "ttl"
	// CauseCap: LRU eviction under Config.MaxBytes (or a single result
	// larger than the whole cap, refused at Put).
	CauseCap Cause = "cap"
	// CausePreStore: the job delivered before the durable store existed, so
	// there was never a segment to recover.
	CausePreStore Cause = "pre-store"
	// CauseTorn: the segment was torn or corrupt when recovery (or a read)
	// validated it — the bytes on disk no longer match what was stored.
	CauseTorn Cause = "torn"
)

// ErrNotFound reports an ID the store has never held (and holds no
// tombstone for).
var ErrNotFound = errors.New("resultstore: no result for contract")

// ErrTooLarge refuses a Put whose accounted size alone exceeds MaxBytes;
// the store tombstones the ID with CauseCap so later readers get a
// definite eviction verdict.
var ErrTooLarge = errors.New("resultstore: result exceeds store byte cap")

// ErrDuplicate refuses a second Put for an ID already stored.
var ErrDuplicate = errors.New("resultstore: result already stored")

// EvictedError reports a result that was stored once but is gone, and why.
type EvictedError struct {
	ID    string
	Cause Cause
}

// Error implements error.
func (e *EvictedError) Error() string {
	return fmt.Sprintf("resultstore: result for %s evicted (%s)", e.ID, e.Cause)
}

// Journal is the manifest seam: the store reports every durable index
// change through it, and the server routes both calls into the job WAL so
// one replay rebuilds jobs and results together. A nil Journal journals
// nothing (memory-only operation).
type Journal interface {
	// ResultStored records a result entering the store with its accounted
	// size.
	ResultStored(id string, bytes int64) error
	// ResultEvicted records a result leaving the store with its cause.
	ResultEvicted(id string, cause string) error
}

// Config parameterises a Store.
type Config struct {
	// Dir is the segment directory. Empty keeps results in memory only
	// (nothing survives the process, but caps and TTL still apply).
	Dir string
	// MaxBytes caps the store's total accounted bytes; 0 is unbounded.
	// Writes evict least-recently-used results first, before the new
	// segment lands, so on-disk bytes never exceed the cap.
	MaxBytes int64
	// TTL expires results that have sat unread for this long; 0 disables.
	TTL time.Duration
	// MemCacheBytes is the per-result threshold under which plaintext rows
	// stay cached in memory alongside the segment (reads skip the disk).
	// 0 selects DefaultMemCacheBytes.
	MemCacheBytes int64
	// Journal receives manifest events; nil journals nothing.
	Journal Journal
	// Now overrides the clock (tests). Nil uses time.Now.
	Now func() time.Time
}

// DefaultMemCacheBytes is the default in-memory caching threshold: results
// accounted under 64 KiB keep their rows resident.
const DefaultMemCacheBytes = 64 << 10

// keyFile holds the store's at-rest sealing key under Dir. It stands in
// for key material in T's non-volatile storage: the host dir holds only
// ciphertext segments, and the key never appears inside one.
const keyFile = "result.key"

// entry is one stored result.
type entry struct {
	id    string
	meta  []byte
	rows  [][]byte // plaintext row cache; nil when only the segment has them
	size  int64    // accounted bytes (segment size on disk, or memory size)
	path  string   // segment path; "" in memory-only mode
	used  uint64   // LRU clock value of the last touch
	added time.Time
}

// Store is a disk-spilling, size-capped, TTL'd store of sealed results.
type Store struct {
	cfg  Config
	mode *ocb.Mode // at-rest sealer (dir mode only)

	mu      sync.Mutex
	entries map[string]*entry
	evicted map[string]Cause // tombstones for results that are gone
	bytes   int64
	clock   uint64

	evictions         uint64
	recoveryEvictions uint64
}

// Open creates or recovers a store. With Dir set, it loads (or creates)
// the sealing key and scans the directory: every segment is fully
// validated — framing, CRCs, seal tags, declared row count — and a torn or
// corrupt one is deleted, tombstoned with CauseTorn, journaled as evicted,
// and counted as a recovery eviction. The caller cross-references the
// surviving index against its replayed manifest (see Reconcile helpers).
func Open(cfg Config) (*Store, error) {
	if cfg.MemCacheBytes <= 0 {
		cfg.MemCacheBytes = DefaultMemCacheBytes
	}
	s := &Store{
		cfg:     cfg,
		entries: make(map[string]*entry),
		evicted: make(map[string]Cause),
	}
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o700); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	key, err := loadOrCreateKey(filepath.Join(cfg.Dir, keyFile))
	if err != nil {
		return nil, err
	}
	s.mode, err = ocb.New(key)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadOrCreateKey reads the at-rest key, drawing a fresh one on first use.
func loadOrCreateKey(path string) ([]byte, error) {
	key, err := os.ReadFile(path)
	if err == nil {
		if len(key) != 16 {
			return nil, fmt.Errorf("resultstore: key file %s is %d bytes, want 16", path, len(key))
		}
		return key, nil
	}
	if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	key = make([]byte, 16)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("resultstore: drawing key: %w", err)
	}
	if err := os.WriteFile(path, key, 0o600); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return key, nil
}

// SegmentPath returns the segment file a contract's result spills to. The
// name is a digest of the ID so arbitrary contract IDs map to safe file
// names; exported so crash tests can tear a specific segment.
func SegmentPath(dir, id string) string {
	sum := sha256.Sum256([]byte(id))
	return filepath.Join(dir, "seg-"+hex.EncodeToString(sum[:8])+".res")
}

// scan rebuilds the index from the segment directory.
func (s *Store) scan() error {
	glob, err := filepath.Glob(filepath.Join(s.cfg.Dir, "seg-*.res"))
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	for _, path := range glob {
		id, meta, rows, size, err := readSegment(path, s.mode)
		if err != nil {
			// A torn segment: the crash (or the fault hook) interrupted the
			// write, or the host corrupted the bytes. The result is lost;
			// keep a definite tombstone and count the loss.
			os.Remove(path)
			if id != "" {
				s.evicted[id] = CauseTorn
				s.recoveryEvictions++
				if s.cfg.Journal != nil {
					_ = s.cfg.Journal.ResultEvicted(id, string(CauseTorn))
				}
			}
			continue
		}
		e := &entry{id: id, meta: meta, size: size, path: path, used: s.clock, added: s.now()}
		s.clock++
		if size <= s.cfg.MemCacheBytes {
			e.rows = rows
		}
		s.entries[id] = e
		s.bytes += size
	}
	return nil
}

func (s *Store) now() time.Time {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return time.Now()
}

// accountedSize computes what a result will be charged: its segment's
// exact on-disk size in dir mode, its plain memory footprint otherwise.
func (s *Store) accountedSize(id string, meta []byte, rows [][]byte) int64 {
	if s.cfg.Dir != "" {
		return segmentSize(id, meta, rows)
	}
	n := int64(len(meta))
	for _, r := range rows {
		n += int64(len(r))
	}
	return n
}

// Put stores one job's result. The write is admission-checked first: a
// result alone larger than MaxBytes is refused with ErrTooLarge (and
// tombstoned CauseCap), and least-recently-used results are evicted until
// the new segment fits — before it is written, so the directory's bytes
// never exceed the cap, even transiently. A Journal error is returned
// after the entry is live: the result serves from this process, but a
// restart will treat the unmanifested segment as an orphan.
func (s *Store) Put(id string, meta []byte, rows [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.entries[id]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, id)
	}
	s.sweepExpiredLocked()
	size := s.accountedSize(id, meta, rows)
	if s.cfg.MaxBytes > 0 && size > s.cfg.MaxBytes {
		s.tombstoneLocked(id, CauseCap, true)
		return fmt.Errorf("%w: %d bytes against cap %d", ErrTooLarge, size, s.cfg.MaxBytes)
	}
	for s.cfg.MaxBytes > 0 && s.bytes+size > s.cfg.MaxBytes {
		if !s.evictLRULocked() {
			break
		}
	}
	e := &entry{id: id, meta: meta, size: size, used: s.clock, added: s.now()}
	s.clock++
	if s.cfg.Dir != "" {
		e.path = SegmentPath(s.cfg.Dir, id)
		if err := writeSegment(e.path, s.mode, id, meta, rows); err != nil {
			os.Remove(e.path)
			return err
		}
		if size <= s.cfg.MemCacheBytes {
			e.rows = rows
		}
	} else {
		e.rows = rows
	}
	s.entries[id] = e
	s.bytes += size
	delete(s.evicted, id)
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.ResultStored(id, size); err != nil {
			return fmt.Errorf("resultstore: journaling %s: %w", id, err)
		}
	}
	return nil
}

// Get returns a stored result's meta and plaintext rows, refreshing its
// LRU position. A gone result answers with its tombstone's *EvictedError;
// an ID never stored answers ErrNotFound.
func (s *Store) Get(id string) (meta []byte, rows [][]byte, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepExpiredLocked()
	e, ok := s.entries[id]
	if !ok {
		if cause, gone := s.evicted[id]; gone {
			return nil, nil, &EvictedError{ID: id, Cause: cause}
		}
		return nil, nil, ErrNotFound
	}
	e.used = s.clock
	s.clock++
	if e.rows != nil {
		return e.meta, e.rows, nil
	}
	_, _, segRows, _, rerr := readSegment(e.path, s.mode)
	if rerr != nil {
		// The segment rotted underneath us: treat it like a torn segment
		// found at recovery — evict with a definite cause.
		s.dropLocked(e, CauseTorn, true)
		s.evictions++
		return nil, nil, &EvictedError{ID: id, Cause: CauseTorn}
	}
	return e.meta, segRows, nil
}

// Has reports whether the store currently holds a live result for id.
func (s *Store) Has(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[id]
	return ok
}

// EvictedCause returns the tombstoned eviction cause for id, if any.
func (s *Store) EvictedCause(id string) (Cause, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.evicted[id]
	return c, ok
}

// IDs lists the live result IDs (recovery reconciliation).
func (s *Store) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.entries))
	for id := range s.entries {
		ids = append(ids, id)
	}
	return ids
}

// Bytes reports the store's accounted size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Evictions reports results evicted at runtime (TTL, cap, rot).
func (s *Store) Evictions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// RecoveryEvictions reports results lost at recovery: torn segments,
// manifest-stored results with no surviving segment, and orphan segments
// whose manifest record never reached the log.
func (s *Store) RecoveryEvictions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recoveryEvictions
}

// MarkLost tombstones a result the manifest says was stored but whose
// segment did not survive (recovery cross-reference). Counted as a
// recovery eviction and journaled so the next replay agrees.
func (s *Store) MarkLost(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, live := s.entries[id]; live {
		return
	}
	if _, done := s.evicted[id]; done {
		return
	}
	s.recoveryEvictions++
	s.tombstoneLocked(id, CauseTorn, true)
}

// MarkEvicted tombstones a result without journaling or counting — used
// by recovery to materialise evictions the manifest already records, and
// to tombstone pre-store-era Delivered jobs.
func (s *Store) MarkEvicted(id string, cause Cause) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, live := s.entries[id]; live {
		return
	}
	s.evicted[id] = cause
}

// Discard evicts a live result at recovery: the crash hit after the
// manifest append but before the job durably reached Stored, so the
// segment serves no one. The drop is journaled with the given cause and
// counted as a recovery eviction, making the next replay agree without
// re-counting.
func (s *Store) Discard(id string, cause Cause) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return
	}
	s.recoveryEvictions++
	s.dropLocked(e, cause, true)
}

// Remove drops a live result and its segment without a tombstone: an
// orphan whose manifest record never made the log (the crash tore Put
// between the segment write and the journal append). The job itself never
// durably reached Stored, so recipients are answered by its interrupted
// verdict, not an eviction — but the loss is still counted as a recovery
// eviction so operators see the tear.
func (s *Store) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[id]; ok {
		delete(s.entries, id)
		s.bytes -= e.size
		if e.path != "" {
			os.Remove(e.path)
		}
		s.recoveryEvictions++
	}
}

// tombstoneLocked records an eviction: cause tombstone plus journal entry.
func (s *Store) tombstoneLocked(id string, cause Cause, journal bool) {
	s.evicted[id] = cause
	if journal && s.cfg.Journal != nil {
		_ = s.cfg.Journal.ResultEvicted(id, string(cause))
	}
}

// dropLocked removes a live entry with an eviction verdict.
func (s *Store) dropLocked(e *entry, cause Cause, journal bool) {
	delete(s.entries, e.id)
	s.bytes -= e.size
	if e.path != "" {
		os.Remove(e.path)
	}
	s.tombstoneLocked(e.id, cause, journal)
}

// evictLRULocked evicts the least-recently-used result. False when empty.
func (s *Store) evictLRULocked() bool {
	var victim *entry
	for _, e := range s.entries {
		if victim == nil || e.used < victim.used {
			victim = e
		}
	}
	if victim == nil {
		return false
	}
	s.dropLocked(victim, CauseCap, true)
	s.evictions++
	return true
}

// sweepExpiredLocked lazily evicts results past the TTL.
func (s *Store) sweepExpiredLocked() {
	if s.cfg.TTL <= 0 {
		return
	}
	cutoff := s.now().Add(-s.cfg.TTL)
	for _, e := range s.entries {
		if !e.added.IsZero() && e.added.Before(cutoff) {
			s.dropLocked(e, CauseTTL, true)
			s.evictions++
		}
	}
}

// Close releases the store. Segments are reopened per read, so there is
// nothing to flush; Close exists for lifecycle symmetry.
func (s *Store) Close() error { return nil }

// String renders a one-line summary (debug logs).
func (s *Store) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "resultstore{live=%d bytes=%d evicted=%d}", len(s.entries), s.bytes, len(s.evicted))
	return b.String()
}
