package resultstore

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"ppj/internal/ocb"
)

// Segment file layout — one file per stored result:
//
//	segment := magic(8) || header-frame || row-frame*
//	frame   := length(u32 BE) || crc32c(u32 BE) || payload
//
// The header frame's payload is
//
//	idLen(u16 BE) || contractID || rowCount(u32 BE) || sealed(meta)
//
// and each row frame's payload is one sealed row. The contract ID and row
// count are plaintext (both already appear in the WAL manifest); meta and
// rows are sealed under the store's at-rest OCB key with a fresh random
// nonce per record — the host's disk holds only ciphertext, exactly like
// the host's RAM during a join. The CRC (Castagnoli, the same polynomial
// as the wire protocol's chunk chain) covers the full payload, so a torn
// write, a truncated tail, or flipped bits all fail validation before any
// ciphertext is opened.

// segMagic identifies a result segment and pins its format version.
var segMagic = []byte("PPJRES1\n")

// segCRCTable is the Castagnoli table segment frames are checksummed with.
var segCRCTable = crc32.MakeTable(crc32.Castagnoli)

// errSegment reports a torn, truncated, or corrupt segment.
var errSegment = errors.New("resultstore: torn segment")

// maxSegFrame bounds one frame's payload; larger lengths are corruption.
const maxSegFrame = 1 << 28

// sealedLen is the sealed wire size of an n-byte plaintext record.
func sealedLen(n int) int64 { return int64(ocb.NonceSize + n + ocb.TagSize) }

// segFrameOverhead is the per-frame framing cost (length + CRC).
const segFrameOverhead = 8

// segmentSize computes a segment's exact on-disk size before writing it,
// so cap admission and LRU eviction run against the true byte cost.
func segmentSize(id string, meta []byte, rows [][]byte) int64 {
	size := int64(len(segMagic))
	size += segFrameOverhead + 2 + int64(len(id)) + 4 + sealedLen(len(meta))
	for _, r := range rows {
		size += segFrameOverhead + sealedLen(len(r))
	}
	return size
}

// sealRecord seals one record under the store key with a fresh nonce,
// producing nonce || ciphertext || tag.
func sealRecord(mode *ocb.Mode, pt []byte) ([]byte, error) {
	var nonce [ocb.NonceSize]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, fmt.Errorf("resultstore: drawing nonce: %w", err)
	}
	out := make([]byte, ocb.NonceSize, ocb.NonceSize+len(pt)+ocb.TagSize)
	copy(out, nonce[:])
	return mode.Seal(out, nonce, pt), nil
}

// openRecord inverts sealRecord.
func openRecord(mode *ocb.Mode, sealed []byte) ([]byte, error) {
	if len(sealed) < ocb.NonceSize+ocb.TagSize {
		return nil, fmt.Errorf("%w: short sealed record", errSegment)
	}
	var nonce [ocb.NonceSize]byte
	copy(nonce[:], sealed[:ocb.NonceSize])
	pt, err := mode.Open(nil, nonce, sealed[ocb.NonceSize:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errSegment, err)
	}
	return pt, nil
}

// writeFrame appends one CRC frame to w.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [segFrameOverhead]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, segCRCTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads and verifies one CRC frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [segFrameOverhead]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", errSegment, err)
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > maxSegFrame {
		return nil, fmt.Errorf("%w: frame length %d", errSegment, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: %v", errSegment, err)
	}
	if crc32.Checksum(payload, segCRCTable) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: frame checksum mismatch", errSegment)
	}
	return payload, nil
}

// writeSegment writes one result's segment and fsyncs it: after return,
// the bytes a recovery scan will validate are on disk.
func writeSegment(path string, mode *ocb.Mode, id string, meta []byte, rows [][]byte) error {
	if len(id) > 0xffff {
		return fmt.Errorf("resultstore: contract id too long (%d bytes)", len(id))
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	defer f.Close()
	w := bytes.NewBuffer(make([]byte, 0, segmentSize(id, meta, rows)))
	w.Write(segMagic)

	hdr := make([]byte, 0, 2+len(id)+4)
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(len(id)))
	hdr = append(hdr, id...)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(rows)))
	sealedMeta, err := sealRecord(mode, meta)
	if err != nil {
		return err
	}
	if err := writeFrame(w, append(hdr, sealedMeta...)); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	for _, row := range rows {
		sealed, err := sealRecord(mode, row)
		if err != nil {
			return err
		}
		if err := writeFrame(w, sealed); err != nil {
			return fmt.Errorf("resultstore: %w", err)
		}
	}
	if _, err := f.Write(w.Bytes()); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	return f.Close()
}

// readSegment validates a whole segment and returns its contents. The
// contract ID is returned even when validation fails later in the file —
// the header frame is self-checksummed — so a torn segment can still be
// tombstoned under the right ID.
func readSegment(path string, mode *ocb.Mode) (id string, meta []byte, rows [][]byte, size int64, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", nil, nil, 0, fmt.Errorf("%w: %v", errSegment, err)
	}
	size = int64(len(raw))
	r := bytes.NewReader(raw)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, segMagic) {
		return "", nil, nil, size, fmt.Errorf("%w: bad magic", errSegment)
	}
	header, err := readFrame(r)
	if err != nil {
		return "", nil, nil, size, err
	}
	if len(header) < 2 {
		return "", nil, nil, size, fmt.Errorf("%w: short header", errSegment)
	}
	idLen := int(binary.BigEndian.Uint16(header[0:2]))
	if len(header) < 2+idLen+4 {
		return "", nil, nil, size, fmt.Errorf("%w: short header", errSegment)
	}
	id = string(header[2 : 2+idLen])
	rowCount := binary.BigEndian.Uint32(header[2+idLen : 2+idLen+4])
	if rowCount > maxSegFrame/segFrameOverhead {
		return id, nil, nil, size, fmt.Errorf("%w: row count %d", errSegment, rowCount)
	}
	meta, err = openRecord(mode, header[2+idLen+4:])
	if err != nil {
		return id, nil, nil, size, err
	}
	rows = make([][]byte, 0, rowCount)
	for i := uint32(0); i < rowCount; i++ {
		sealed, err := readFrame(r)
		if err != nil {
			return id, nil, nil, size, err
		}
		row, err := openRecord(mode, sealed)
		if err != nil {
			return id, nil, nil, size, err
		}
		rows = append(rows, row)
	}
	if r.Len() != 0 {
		return id, nil, nil, size, fmt.Errorf("%w: %d trailing bytes", errSegment, r.Len())
	}
	return id, meta, rows, size, nil
}
