package server

import (
	"math/rand"
	"testing"
)

// legalMoves are the job lifecycle's forward edges (see State): Pending
// gains a session, Uploading is picked up by a worker, Running persists
// its result, Stored serves its last recipient. Every pre-Stored state
// can fail; a Stored job cannot (its result is already durable), so its
// only edge is Delivered.
var legalMoves = map[State][]State{
	StatePending:   {StateUploading, StateFailed},
	StateUploading: {StateRunning, StateFailed},
	StateRunning:   {StateStored, StateFailed},
	StateStored:    {StateDelivered},
}

// TestMetricsGaugeInvariant drives random legal lifecycle histories —
// submissions, transitions, and WAL recoveries — from a seeded math/rand
// and asserts after every step that no per-state gauge goes negative and
// the gauges always sum to submitted. The serving tests only observe this
// invariant incidentally at quiescence; this pins it at every
// intermediate step.
func TestMetricsGaugeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(20080415)) // seeded: failures replay exactly
	m := newMetrics()
	var live []State // states of non-terminal jobs

	check := func(step int) {
		t.Helper()
		var sum int64
		for s := StatePending; s < numStates; s++ {
			v := m.gauges[s].Load()
			if v < 0 {
				t.Fatalf("step %d: gauge %s = %d, negative", step, s, v)
			}
			sum += v
		}
		if uint64(sum) != m.submitted.Load() {
			t.Fatalf("step %d: gauges sum to %d, submitted %d", step, sum, m.submitted.Load())
		}
	}

	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(10); {
		case op == 0: // a recovered job lands directly in its replayed state
			m.jobRecovered(State(rng.Intn(numStates)))
		case op <= 3 || len(live) == 0: // new registration
			m.jobSubmitted()
			live = append(live, StatePending)
		default: // advance a random live job along a legal edge
			i := rng.Intn(len(live))
			nexts := legalMoves[live[i]]
			to := nexts[rng.Intn(len(nexts))]
			m.stateMove(live[i], to)
			if to.Terminal() {
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				live[i] = to
			}
		}
		check(step)
	}

	// The exported snapshot agrees with the raw gauges.
	snap := m.Snapshot()
	var sum int64
	for _, v := range snap.Jobs {
		sum += v
	}
	if uint64(sum) != snap.Submitted {
		t.Fatalf("snapshot gauges sum to %d, submitted %d: %+v", sum, snap.Submitted, snap.Jobs)
	}
}
