package server

import (
	"errors"
	"testing"
	"time"

	"ppj/internal/clock"
	"ppj/internal/relation"
)

// tenantGroup is newGroup with the contract bound to a tenant account
// (the Tenant field feeds the contract digest, so it is set before the
// providers sign).
func tenantGroup(t *testing.T, id, tenant string, seed uint64) *group {
	t.Helper()
	g := newGroup(t, id, "alg5", seed, seed+1, 6, 6)
	g.contract.Tenant = tenant
	g.contract.Sign(0, g.provA.priv)
	g.contract.Sign(1, g.provB.priv)
	return g
}

// TestQuotaRefusalLeavesNoTrace pins the admission contract: a submission
// refused by the in-flight cap fails with the typed ErrQuotaExceeded
// BEFORE any WAL append or metric mutation — the metrics snapshot is
// unchanged and a restart on the same directory recovers only the
// admitted work. Register and Resubmit share the gate; other tenants are
// untouched; settling the held job frees the slot.
func TestQuotaRefusalLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, TenantMaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	g1 := tenantGroup(t, "quota-a", "acme", 10)
	j1, err := srv.Register(g1.contract)
	if err != nil {
		t.Fatal(err)
	}

	before := srv.MetricsSnapshot()
	g2 := tenantGroup(t, "quota-b", "acme", 20)
	if _, err := srv.Register(g2.contract); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second submission error = %v, want ErrQuotaExceeded", err)
	}
	if _, err := srv.Resubmit(g1.contract.ID); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("resubmission error = %v, want ErrQuotaExceeded", err)
	}
	after := srv.MetricsSnapshot()
	if before.Submitted != after.Submitted || before.WALAppendFailures != after.WALAppendFailures {
		t.Fatalf("refusal mutated metrics: %+v -> %+v", before, after)
	}
	for state, n := range before.Jobs {
		if after.Jobs[state] != n {
			t.Fatalf("refusal moved the %s gauge: %d -> %d", state, n, after.Jobs[state])
		}
	}

	// Another tenant's submission is not collateral damage.
	g3 := tenantGroup(t, "quota-c", "initech", 30)
	if _, err := srv.Register(g3.contract); err != nil {
		t.Fatal(err)
	}

	// Settling the held job frees the slot: the refused contract admits.
	j1.Cancel()
	waitDone(t, j1)
	if _, err := srv.Register(g2.contract); err != nil {
		t.Fatalf("registration after the slot freed: %v", err)
	}

	// The refusals left no WAL record: recovery sees exactly the three
	// admitted contracts, one execution each.
	srv2, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv2.Registry().Len(); got != 3 {
		t.Fatalf("recovered %d contracts, want the 3 admitted ones", got)
	}
	for _, id := range []string{"quota-a", "quota-b", "quota-c"} {
		if n := len(srv2.Registry().Executions(id)); n != 1 {
			t.Fatalf("contract %s recovered %d executions, want 1 (refused resubmission must leave no record)", id, n)
		}
	}
}

// TestQuotaTokenBucketRefill is the token-bucket property test under a
// fake clock: across a long pseudo-random schedule of clock advances, the
// enforcer's admit/refuse decisions match an independently tracked
// reference bucket exactly, and a conforming tenant is always eventually
// admitted after 1/Rate seconds.
func TestQuotaTokenBucketRefill(t *testing.T) {
	const rate, burst = 2.0, 3.0
	fake := clock.NewFake(time.Unix(1_000_000, 0))
	q := NewQuotas(QuotaConfig{Rate: rate, Burst: burst}, fake.NowFunc())

	// Reference bucket, mirroring the documented semantics: refill
	// rate·dt capped at burst, admit iff a full token is present.
	tokens, last := burst, fake.Now()
	rng := relation.NewRand(99)
	admitted, refused := 0, 0
	for i := 0; i < 2000; i++ {
		now := fake.Advance(time.Duration(rng.Int64N(1500)) * time.Millisecond)
		if dt := now.Sub(last).Seconds(); dt > 0 {
			tokens += dt * rate
			if tokens > burst {
				tokens = burst
			}
		}
		last = now
		err := q.Acquire("t")
		if tokens >= 1 {
			if err != nil {
				t.Fatalf("step %d: refused with %.3f tokens banked: %v", i, tokens, err)
			}
			tokens--
			admitted++
			q.Release("t")
		} else {
			if !errors.Is(err, ErrQuotaExceeded) {
				t.Fatalf("step %d: admitted with %.3f tokens banked (err=%v)", i, tokens, err)
			}
			refused++
		}
	}
	if admitted == 0 || refused == 0 {
		t.Fatalf("degenerate schedule: %d admitted, %d refused", admitted, refused)
	}

	// Liveness: drain the bucket dry, then one refill interval admits.
	for q.Acquire("t") == nil {
		q.Release("t")
	}
	fake.Advance(time.Duration(float64(time.Second) / rate))
	if err := q.Acquire("t"); err != nil {
		t.Fatalf("conforming tenant refused after a full refill interval: %v", err)
	}
}

// TestQuotaBurstFloorAndIsolation pins two edges: Burst < 1 still admits
// (capacity floors at one token, so rate limiting can never deadlock a
// tenant), and one tenant exhausting its bucket leaves other tenants'
// buckets untouched.
func TestQuotaBurstFloorAndIsolation(t *testing.T) {
	fake := clock.NewFake(time.Unix(5_000, 0))
	q := NewQuotas(QuotaConfig{Rate: 1, Burst: 0}, fake.NowFunc())
	if err := q.Acquire("t"); err != nil {
		t.Fatalf("first acquire against the floored burst: %v", err)
	}
	if err := q.Acquire("t"); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second immediate acquire = %v, want ErrQuotaExceeded", err)
	}
	if err := q.Acquire("other"); err != nil {
		t.Fatalf("tenant isolation: %v", err)
	}
	fake.Advance(time.Second)
	if err := q.Acquire("t"); err != nil {
		t.Fatalf("acquire after refill: %v", err)
	}
}
