package server

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppj/internal/clock"
	"ppj/internal/relation"
	"ppj/internal/service"
)

// newGroupRels builds a signed two-provider/one-recipient contract over
// explicit input relations (the delivery tests control result sizes
// exactly).
func newGroupRels(t *testing.T, id, alg string, relA, relB *relation.Relation) *group {
	t.Helper()
	g := &group{
		provA: newParty(t, id+"-provA"),
		provB: newParty(t, id+"-provB"),
		recip: newParty(t, id+"-recip"),
		relA:  relA,
		relB:  relB,
	}
	g.contract = &service.Contract{
		ID: id,
		Parties: []service.Party{
			{Name: g.provA.name, Identity: g.provA.pub, Role: service.RoleProvider},
			{Name: g.provB.name, Identity: g.provB.pub, Role: service.RoleProvider},
			{Name: g.recip.name, Identity: g.recip.pub, Role: service.RoleRecipient},
		},
		Predicate: service.PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"},
		Algorithm: alg,
		Epsilon:   1e-9,
	}
	g.contract.Sign(0, g.provA.priv)
	g.contract.Sign(1, g.provB.priv)
	return g
}

// genJoinSized builds a pair of keyed relations whose equijoin has exactly s
// rows (each of the first s B rows matches exactly one A key; the rest
// miss), so an unpadded algorithm's result stream has exactly s rows —
// the geometry the chunk-boundary grid needs.
func genJoinSized(seed uint64, nA, nB, s int) (*relation.Relation, *relation.Relation) {
	rng := relation.NewRand(seed)
	a := relation.NewRelation(relation.KeyedSchema())
	for i := 0; i < nA; i++ {
		a.MustAppend(relation.Tuple{relation.IntValue(int64(i)), relation.IntValue(rng.Int64N(1 << 30))})
	}
	b := relation.NewRelation(relation.KeyedSchema())
	for j := 0; j < s; j++ {
		b.MustAppend(relation.Tuple{relation.IntValue(int64(j % nA)), relation.IntValue(rng.Int64N(1 << 30))})
	}
	for j := s; j < nB; j++ {
		b.MustAppend(relation.Tuple{relation.IntValue(int64(nA) + rng.Int64N(1<<20)), relation.IntValue(rng.Int64N(1 << 30))})
	}
	return a, b
}

// fetchLeg runs one recipient connection: connect with f's accumulated
// resume offset in the hello, then fetch up to pause more chunks (0 fetches
// to completion). A paused leg abandons the connection mid-stream, exactly
// like a vanished recipient.
func (g *group) fetchLeg(srv *Server, f *service.ResultFetch, pause uint32) error {
	serverEnd, clientEnd := net.Pipe()
	defer clientEnd.Close()
	go func() {
		defer serverEnd.Close()
		_ = srv.HandleConn(serverEnd)
	}()
	cs, err := g.client(g.recip, srv).ConnectContractResume(clientEnd, service.RoleRecipient, g.contract.ID, f.Chunks)
	if err != nil {
		return err
	}
	f.PauseAfter = pause
	return cs.FetchResult(f)
}

// assertSameRowSequence asserts got and want hold the byte-identical rows
// in the identical order — the reassembly identity the resume property
// pins (assertSameRows only compares multisets).
func assertSameRowSequence(t *testing.T, got, want *relation.Relation, label string) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil relation (got=%v want=%v)", label, got == nil, want == nil)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: got %d rows, want %d", label, got.Len(), want.Len())
	}
	for i := range got.Rows {
		ge, err := got.Schema.Encode(got.Rows[i])
		if err != nil {
			t.Fatal(err)
		}
		we, err := want.Schema.Encode(want.Rows[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ge, we) {
			t.Fatalf("%s: row %d differs", label, i)
		}
	}
}

// TestResumableDeliveryProperty is the tentpole's acceptance property: for
// {alg3, alg5} and result sizes straddling the 64-row chunk boundary, a
// recipient that fetches in paused legs — disconnecting at a different
// chunk offset each time, with a whole-process server crash and WAL+
// manifest recovery in the middle — reassembles exactly the join a
// one-shot fetch yields, and a post-Delivered re-fetch straight from the
// durable store is row-for-row identical to the resumed assembly.
func TestResumableDeliveryProperty(t *testing.T) {
	for _, alg := range []string{"alg3", "alg5"} {
		for _, size := range []int{0, 1, 63, 64, 65} {
			t.Run(fmt.Sprintf("%s-%d", alg, size), func(t *testing.T) {
				dir := t.TempDir()
				srv, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
				if err != nil {
					t.Fatal(err)
				}
				srv.Start()
				id := fmt.Sprintf("res-%s-%d", alg, size)
				var g *group
				if alg == "alg3" {
					// Join3's padded output is |A|*N rows; N=1 makes the
					// stream exactly |A| = size rows.
					var relA, relB *relation.Relation
					if size == 0 {
						relA = relation.NewRelation(relation.KeyedSchema())
						relB = relation.GenKeyed(relation.NewRand(7), 8, 5)
					} else {
						relA, relB = relation.GenWithMatchBound(relation.NewRand(uint64(size)+11), size, 8, 1)
					}
					g = newGroupRels(t, id, alg, relA, relB)
				} else {
					relA, relB := genJoinSized(uint64(size)+17, 8, size+4, size)
					g = newGroupRels(t, id, alg, relA, relB)
				}
				j, err := srv.Register(g.contract)
				if err != nil {
					t.Fatal(err)
				}
				if err := g.pipeProvider(t, srv, g.provA, g.relA); err != nil {
					t.Fatal(err)
				}
				if err := g.pipeProvider(t, srv, g.provB, g.relB); err != nil {
					t.Fatal(err)
				}

				f := &service.ResultFetch{}
				err = g.fetchLeg(srv, f, 1)
				if alg == "alg3" && size == 0 {
					// alg3 refuses an empty relation; the verdict is the
					// delivery, and it must arrive in-band on the stream.
					if err == nil || !strings.Contains(err.Error(), "join failed") {
						t.Fatalf("degenerate alg3 delivery: %v", err)
					}
					return
				}
				// Resume loop with widening strides, restarting the whole
				// server at the first pause: the job must recover in Stored
				// and keep serving the remainder from the durable segment.
				restarted := false
				leg := 1
				for errors.Is(err, service.ErrFetchPaused) {
					if !restarted {
						srv2, rerr := New(Config{Workers: 1, Memory: 16, DataDir: dir})
						if rerr != nil {
							t.Fatal(rerr)
						}
						srv2.Start()
						j2, lerr := srv2.Registry().Lookup(g.contract.ID, "")
						if lerr != nil {
							t.Fatal(lerr)
						}
						if j2.State() != StateStored {
							t.Fatalf("recovered mid-fetch as %s, want stored", j2.State())
						}
						srv, j = srv2, j2
						restarted = true
					}
					leg++
					err = g.fetchLeg(srv, f, uint32(leg))
				}
				if err != nil {
					t.Fatalf("fetch leg %d (offset %d): %v", leg, f.Chunks, err)
				}
				if !f.Done {
					t.Fatal("fetch finished without the end frame")
				}
				assertSameRows(t, f.Rows, g.wantJoin(), "resumed assembly")
				waitDone(t, j)
				if j.State() != StateDelivered {
					t.Fatalf("served job in state %s, want delivered", j.State())
				}

				// Byte identity across the store: a fresh one-shot fetch
				// reads the segment back and must reassemble the identical
				// row sequence the resumed legs produced.
				f2 := &service.ResultFetch{}
				if err := g.fetchLeg(srv, f2, 0); err != nil {
					t.Fatalf("post-delivery re-fetch: %v", err)
				}
				assertSameRowSequence(t, f2.Rows, f.Rows, "store re-fetch")
			})
		}
	}
}

// TestResultEvictionCauses pins the typed "gone forever" verdicts: a
// result evicted by the LRU byte cap, expired by TTL, or never persisted
// at all (a Delivered tombstone from a log that predates the result
// store) each answer a reconnecting recipient with ErrResultEvicted
// carrying the exact cause, in-band on the delivery stream.
func TestResultEvictionCauses(t *testing.T) {
	t.Run("cap", func(t *testing.T) {
		relA, relB := genJoinSized(91, 5, 9, 5)
		gA := newGroupRels(t, "cap-a", "alg5", relA, relB)
		relA, relB = genJoinSized(92, 5, 9, 5)
		gB := newGroupRels(t, "cap-b", "alg5", relA, relB)

		// Calibrate: measure one sealed result's accounted size on an
		// unbounded scratch server, then cap the real server at 1.5x —
		// the cap holds one result but not two, so storing job B's
		// result evicts job A's (the LRU victim).
		scratch, err := New(Config{Workers: 1, Memory: 16, DataDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		scratch.Start()
		j0, err := scratch.Register(gA.contract)
		if err != nil {
			t.Fatal(err)
		}
		driveToDelivered(t, scratch, gA, j0)
		size := scratch.MetricsSnapshot().ResultStoreBytes
		if size == 0 {
			t.Fatal("calibration stored nothing")
		}
		capBytes := size + size/2

		srv, err := New(Config{Workers: 1, Memory: 16, DataDir: t.TempDir(), MaxResultBytes: capBytes})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		jA, err := srv.Register(gA.contract)
		if err != nil {
			t.Fatal(err)
		}
		driveToDelivered(t, srv, gA, jA)
		jB, err := srv.Register(gB.contract)
		if err != nil {
			t.Fatal(err)
		}
		driveToDelivered(t, srv, gB, jB)

		_, err = srv.loadResult(gA.contract.ID)
		var ev *ResultEvictedError
		if !errors.Is(err, ErrResultEvicted) || !errors.As(err, &ev) || ev.Cause != "cap" {
			t.Fatalf("loadResult after cap eviction: %v, want ErrResultEvicted (cap)", err)
		}
		if o := <-gA.pipeRecipient(t, srv); o.err == nil || !strings.Contains(o.err.Error(), "evicted") || !strings.Contains(o.err.Error(), "(cap)") {
			t.Fatalf("reconnect after cap eviction got %+v, want in-band cap verdict", o)
		}
		// The survivor still serves.
		if o := <-gB.pipeRecipient(t, srv); o.err != nil {
			t.Fatalf("unevicted result refused: %v", o.err)
		}
		snap := srv.MetricsSnapshot()
		if snap.ResultStoreEvictions != 1 || snap.ResultStoreBytes > capBytes {
			t.Fatalf("snapshot evictions=%d bytes=%d, want 1 eviction under cap %d", snap.ResultStoreEvictions, snap.ResultStoreBytes, capBytes)
		}
	})

	t.Run("ttl", func(t *testing.T) {
		// The store's expiry clock is the server's injected fake, so the
		// TTL boundary is deterministic — no sleeps, no wall-clock margin.
		fake := clock.NewFake(time.Unix(60_000, 0))
		srv, err := New(Config{Workers: 1, Memory: 16, DataDir: t.TempDir(), ResultTTL: time.Hour, Clock: fake})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		g := newGroup(t, "ttl-a", "alg5", 85, 86, 5, 5)
		j, err := srv.Register(g.contract)
		if err != nil {
			t.Fatal(err)
		}
		driveToDelivered(t, srv, g, j)
		fake.Advance(time.Hour + time.Minute)
		var ev *ResultEvictedError
		if _, err := srv.loadResult(g.contract.ID); !errors.As(err, &ev) || ev.Cause != "ttl" {
			t.Fatalf("loadResult after TTL: %v, want ErrResultEvicted (ttl)", err)
		}
		if o := <-g.pipeRecipient(t, srv); o.err == nil || !strings.Contains(o.err.Error(), "(ttl)") {
			t.Fatalf("reconnect after TTL got %+v, want in-band ttl verdict", o)
		}
	})

	t.Run("pre-store", func(t *testing.T) {
		// A log written before the result store existed: the job went
		// Running -> Delivered with no manifest record. Recovery must
		// tombstone it pre-store, not leave a bare "unavailable".
		dir := t.TempDir()
		g := newGroup(t, "old-era", "alg5", 87, 88, 5, 5)
		store, recs, err := OpenWALStore(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 0 {
			t.Fatalf("fresh dir replayed %d records", len(recs))
		}
		if err := store.LogRegistered(g.contract); err != nil {
			t.Fatal(err)
		}
		for _, tr := range [][2]State{{StatePending, StateUploading}, {StateUploading, StateRunning}, {StateRunning, StateDelivered}} {
			if err := store.LogTransition(g.contract.ID, tr[0], tr[1], ""); err != nil {
				t.Fatal(err)
			}
		}
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}

		srv, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		j, err := srv.Registry().Lookup(g.contract.ID, "")
		if err != nil {
			t.Fatal(err)
		}
		if j.State() != StateDelivered {
			t.Fatalf("recovered as %s, want delivered", j.State())
		}
		var ev *ResultEvictedError
		if _, err := srv.loadResult(g.contract.ID); !errors.As(err, &ev) || ev.Cause != "pre-store" {
			t.Fatalf("loadResult for pre-store-era job: %v, want ErrResultEvicted (pre-store)", err)
		}
		if o := <-g.pipeRecipient(t, srv); o.err == nil || !strings.Contains(o.err.Error(), "(pre-store)") {
			t.Fatalf("pre-store-era reconnect got %+v, want in-band pre-store verdict", o)
		}
	})
}

// TestResumeUnderEviction is the -race stress of the byte cap: six jobs
// race result storage and paused-then-resumed fetches against a cap that
// holds only three results, while a sampler asserts the store's accounted
// bytes never exceed the cap — not even transiently — and every recipient
// still reassembles its exact join (a Stored job serves its cached outcome
// even after its segment is evicted).
func TestResumeUnderEviction(t *testing.T) {
	const capBytes = 900
	srv, err := New(Config{Workers: 2, Memory: 16, DataDir: t.TempDir(), MaxResultBytes: capBytes})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()

	stop := make(chan struct{})
	var sampler sync.WaitGroup
	var breach atomic.Int64
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if b := srv.MetricsSnapshot().ResultStoreBytes; b > capBytes {
				breach.Store(b)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const jobs = 6
	groups := make([]*group, jobs)
	for i := range groups {
		groups[i] = newGroup(t, fmt.Sprintf("evict-%d", i), "alg5",
			uint64(100+2*i), uint64(101+2*i), 5, 5)
		if _, err := srv.Register(groups[i].contract); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, jobs)
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			for _, up := range []struct {
				p   testParty
				rel *relation.Relation
			}{{g.provA, g.relA}, {g.provB, g.relB}} {
				if err := g.pipeProvider(t, srv, up.p, up.rel); err != nil {
					errs <- fmt.Errorf("%s upload: %w", g.contract.ID, err)
					return
				}
			}
			f := &service.ResultFetch{}
			err := g.fetchLeg(srv, f, 1)
			for errors.Is(err, service.ErrFetchPaused) {
				err = g.fetchLeg(srv, f, 2)
			}
			if err != nil {
				errs <- fmt.Errorf("%s fetch: %w", g.contract.ID, err)
				return
			}
			got, want := relation.Multiset(f.Rows), relation.Multiset(g.wantJoin())
			if len(got) != len(want) {
				errs <- fmt.Errorf("%s: wrong join", g.contract.ID)
				return
			}
			for k, v := range want {
				if got[k] != v {
					errs <- fmt.Errorf("%s: wrong join rows", g.contract.ID)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	close(stop)
	sampler.Wait()
	if b := breach.Load(); b != 0 {
		t.Fatalf("store bytes reached %d, cap %d", b, capBytes)
	}
	snap := srv.MetricsSnapshot()
	if snap.ResultStoreBytes > capBytes {
		t.Fatalf("final store bytes %d exceed cap %d", snap.ResultStoreBytes, capBytes)
	}
	if snap.ResultStoreEvictions == 0 {
		t.Fatal("six results against a three-result cap evicted nothing")
	}
}

// meterConn records the size of every completed write on the server's side
// of a recipient connection — the host-observable wire trace of one
// delivery.
type meterConn struct {
	net.Conn
	mu     *sync.Mutex
	writes *[]int
}

func (c meterConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if err == nil {
		c.mu.Lock()
		*c.writes = append(*c.writes, n)
		c.mu.Unlock()
	}
	return n, err
}

// meteredFetch runs one complete recipient fetch (resume offset taken from
// f) and returns the server's write-size sequence for the connection.
func meteredFetch(t *testing.T, srv *Server, g *group, f *service.ResultFetch) []int {
	t.Helper()
	serverEnd, clientEnd := net.Pipe()
	defer clientEnd.Close()
	var mu sync.Mutex
	var writes []int
	go func() {
		defer serverEnd.Close()
		_ = srv.HandleConn(meterConn{Conn: serverEnd, mu: &mu, writes: &writes})
	}()
	cs, err := g.client(g.recip, srv).ConnectContractResume(clientEnd, service.RoleRecipient, g.contract.ID, f.Chunks)
	if err != nil {
		t.Fatal(err)
	}
	f.PauseAfter = 0
	if err := cs.FetchResult(f); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	return append([]int(nil), writes...)
}

// TestDeliveryAccessPatternInvariance lifts the access-pattern discipline
// (Def. 1 §4.2) to result delivery: the stream's shape — chunk count and
// the byte size of every server write, handshake included — must be a
// function of public parameters only. Two runs of the same contract ID
// agree on the public sizes ((|A|, |B|, N) for alg3; (|A|, |B|, S) for
// alg5) and on nothing else: different tuple contents, data seeds, and
// coprocessor seeds. The full-delivery trace and a resumed re-fetch trace
// (offset 1, served back off the durable store) must both match exactly.
func TestDeliveryAccessPatternInvariance(t *testing.T) {
	type trace struct {
		full, resumed []int
		chunks        uint32
	}
	run := func(dataSeed, copSeed uint64) map[string]trace {
		t.Helper()
		srv, err := New(Config{Workers: 1, Memory: 16, Seed: copSeed})
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()

		// alg3: |A|=40, N=2 -> 80 padded result rows (2 chunks).
		relA3, relB3 := relation.GenWithMatchBound(relation.NewRand(dataSeed), 40, 14, 2)
		g3 := newGroupRels(t, "inv-del-alg3", "alg3", relA3, relB3)
		// alg5: S=70 exact join rows (2 chunks).
		relA5, relB5 := genJoinSized(dataSeed+1, 8, 80, 70)
		g5 := newGroupRels(t, "inv-del-alg5", "alg5", relA5, relB5)

		out := make(map[string]trace)
		for _, g := range []*group{g3, g5} {
			j, err := srv.Register(g.contract)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.pipeProvider(t, srv, g.provA, g.relA); err != nil {
				t.Fatal(err)
			}
			if err := g.pipeProvider(t, srv, g.provB, g.relB); err != nil {
				t.Fatal(err)
			}
			f := &service.ResultFetch{}
			full := meteredFetch(t, srv, g, f)
			waitDone(t, j)
			// Re-fetch from the store at resume offset 1: the resumed
			// stream's framing must be as content-blind as the first.
			fr := &service.ResultFetch{Chunks: 1}
			resumed := meteredFetch(t, srv, g, fr)
			if f.Chunks < 2 {
				t.Fatalf("%s: %d chunks, geometry too small to exercise resume", g.contract.ID, f.Chunks)
			}
			out[g.contract.Algorithm] = trace{full: full, resumed: resumed, chunks: f.Chunks}
		}
		return out
	}

	run1 := run(4001, 7)
	run2 := run(5002, 8)
	for _, alg := range []string{"alg3", "alg5"} {
		t1, t2 := run1[alg], run2[alg]
		if t1.chunks != t2.chunks {
			t.Errorf("%s: chunk counts diverge: %d vs %d", alg, t1.chunks, t2.chunks)
		}
		if !equalInts(t1.full, t2.full) {
			t.Errorf("%s: full-delivery write trace depends on tuple contents:\n run1 %v\n run2 %v", alg, t1.full, t2.full)
		}
		if !equalInts(t1.resumed, t2.resumed) {
			t.Errorf("%s: resumed-delivery write trace depends on tuple contents:\n run1 %v\n run2 %v", alg, t1.resumed, t2.resumed)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
