// Package server is the serving layer over the paper's contract protocol: a
// long-running, multi-tenant join server. One attested device arbitrates
// many registered contracts; a single listener accepts sessions for any of
// them (the hello's ContractID routes each connection); and a bounded
// worker pool of simulated coprocessors executes ready jobs from a
// pluggable scheduler — weighted fair-share across tenants by default, the
// historical FIFO as a config choice — with explicit backpressure. This is
// the shape TEE-backed encrypted
// databases take in production — a continuously available service
// dispatching oblivious joins across limited secure-worker capacity —
// rather than the one-shot Service.Execute flow.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ppj/internal/clock"
	"ppj/internal/secop"
	"ppj/internal/server/resultstore"
	"ppj/internal/server/wal"
	"ppj/internal/service"
)

// ErrQueueFull is the typed backpressure error: the ready-job queue is at
// capacity, so the job is rejected rather than buffered without bound.
var ErrQueueFull = errors.New("server: job queue full")

// ErrShuttingDown reports a job or registration refused because the server
// is draining.
var ErrShuttingDown = errors.New("server: shutting down")

// Config parameterises a Server.
type Config struct {
	// Workers is the coprocessor pool size P (concurrently running jobs).
	// Defaults to 2.
	Workers int
	// QueueDepth bounds the ready-job queue; a job that becomes ready
	// while the bound is hit fails with ErrQueueFull. Under the fair
	// scheduler the bound applies per tenant (one tenant flooding refuses
	// only its own jobs); under "fifo" it is the whole queue. Defaults
	// to 16.
	QueueDepth int
	// Scheduler selects the ready-queue discipline: "fair" (the default;
	// weighted deficit round-robin across per-tenant queues with
	// per-contract priority classes) or "fifo" (the historical single
	// bounded queue, strict arrival order). Unknown values are refused at
	// construction.
	Scheduler string
	// TenantWeights sets per-tenant fair-share weights for the "fair"
	// scheduler; unlisted tenants (and values < 1) weigh 1. A tenant of
	// weight w receives w job slots per round-robin cycle while it has
	// queued work.
	TenantWeights map[string]int
	// Clock overrides the server's time source (tests use clock.NewFake to
	// drive recurring contracts deterministically). Nil uses the system
	// clock. It governs recurrence due-times, the quota limiter (unless
	// QuotaNow is set), and the result store's TTL clock.
	Clock clock.Clock
	// TickEvery, when positive, starts a background loop that fires due
	// recurring contracts every interval. Zero leaves firing to explicit
	// Tick calls (tests advance a fake clock and call Tick themselves).
	TickEvery time.Duration
	// Shards asks for a multi-host fleet. A Server is always exactly one
	// simulated host; the field is interpreted by internal/fleet.New, which
	// builds Shards of them behind one consistent-hashing router (each with
	// its own device pool, sealer, and WAL under DataDir/shard-<i>).
	// Server.New itself ignores values <= 1 and refuses larger ones so a
	// sharding request cannot be silently served by a single host.
	Shards int
	// AdmissionControl makes Register refuse new contracts with
	// ErrQueueFull while the ready-job queue is at capacity — registration-
	// time backpressure, checked before any durable side effect. The fleet
	// router enables it on every shard so a full shard's refusal can spill
	// the contract to the least-loaded shard instead of failing the job
	// minutes later when it becomes ready. Off by default: a single server
	// keeps the historical semantics (admission always succeeds; the queue
	// bound is enforced when the job becomes ready).
	AdmissionControl bool
	// Memory is the per-job coprocessor free memory M in tuples (0 =
	// effectively unbounded).
	Memory int
	// DevicesPerJob attaches that many coprocessors (sharing one sealer)
	// to each job's host; algorithms with a parallel variant (2, 3, 4, 5)
	// then dispatch to it — the §4.4.4/§5.3.5 intra-job parallelism. For
	// "auto" contracts the planner's Plan.Devices rule decides how many of
	// them the chosen algorithm can exploit. Zero or 1 keeps jobs
	// sequential.
	DevicesPerJob int
	// Seed pins every job's coprocessor randomness (tests only). Zero —
	// the production setting — draws fresh crypto/rand entropy per job.
	Seed uint64
	// JobTimeout, when positive, bounds each job's lifetime from
	// registration; expiry fails the job with context.DeadlineExceeded.
	JobTimeout time.Duration
	// MaxUploadBytes bounds the sealed payload bytes of one provider upload
	// (chunked or legacy). An oversize upload — or a chunked stream that
	// lies upward past its declared row count — is refused with
	// service.ErrUploadTooLarge before the excess is opened, while the job
	// is still Uploading. Zero means unbounded.
	MaxUploadBytes int64
	// UploadWindow is the credit window W granted to chunked uploaders: a
	// provider may have at most W unacknowledged chunks in flight, so the
	// server's ingest memory per connection is bounded by W x chunk bytes.
	// Zero selects service.DefaultUploadWindow.
	UploadWindow int
	// UploadDeadline, when positive, bounds one provider upload's wall
	// clock from its first frame. A chunked stream that stalls past it
	// fails the job with service.ErrUploadTruncated (the provider has
	// committed to a row count it is no longer delivering). Zero leaves
	// only the job deadline.
	UploadDeadline time.Duration
	// MaxResultBytes caps the durable result store's accounted bytes
	// (segments plus in-memory results). When a new result would overflow
	// the cap, least-recently-fetched results are evicted first; a single
	// result larger than the whole cap is refused outright and its job
	// tombstoned as cap-evicted. Zero means unbounded.
	MaxResultBytes int64
	// ResultTTL expires stored results that have sat unfetched for this
	// long; late recipients are answered with the typed ttl eviction.
	// Zero disables expiry.
	ResultTTL time.Duration
	// MaxCacheBytes caps the durable sorted-relation cache's accounted
	// bytes. Cache entries are reuse hints, not results: eviction under the
	// cap merely makes the next re-execution sort cold. Zero means
	// unbounded.
	MaxCacheBytes int64
	// TenantMaxInFlight caps one tenant's unsettled jobs across Register
	// and Resubmit; the cap is checked before any WAL append or metric
	// mutation and refused with ErrQuotaExceeded. Zero means unlimited.
	TenantMaxInFlight int
	// TenantRate is the per-tenant token-bucket submission rate in
	// submissions per second (TenantBurst is the bucket capacity, floored
	// at 1). Zero disables rate limiting.
	TenantRate  float64
	TenantBurst float64
	// Quotas overrides the quota enforcer built from the Tenant* fields.
	// The fleet router injects one shared instance into every shard so
	// tenant caps hold fleet-wide regardless of which shard a contract
	// lands on.
	Quotas *Quotas
	// QuotaNow overrides the quota clock (tests only); nil uses time.Now.
	QuotaNow func() time.Time
	// AllowLegacyUpload re-enables the deprecated ProtoLegacy one-shot
	// dataMsg upload. Off by default: legacy providers are refused with
	// service.ErrLegacyUploadDisabled before any row is opened.
	AllowLegacyUpload bool
	// Logf, when set, receives connection-level errors from Serve.
	Logf func(format string, args ...any)
	// DataDir, when set, enables the write-ahead job store: contract
	// registrations and job state transitions are fsynced to DataDir before
	// they are acknowledged, and New replays the log to rebuild the
	// registry and job table after a crash. Empty keeps jobs in memory.
	DataDir string
	// Store overrides the job store directly (tests, alternative
	// backends). When nil, DataDir selects the WAL store and an in-memory
	// no-op store otherwise. A custom Store is not replayed.
	Store Store
	// Faults injects named fault hooks into the WAL store (tests only):
	// short writes, fsync failures, torn records, and crash points between
	// state transitions. Nil — the production setting — is inert.
	Faults *wal.Faults
}

// Server owns the device, the contract registry, the worker pool, and the
// metrics.
type Server struct {
	cfg       Config
	device    *secop.Device
	registry  *Registry
	metrics   *Metrics
	store     Store
	results   *resultstore.Store
	sortcache *resultstore.Store
	cache     *sortedCache
	quotas    *Quotas
	sched     Scheduler
	clk       clock.Clock

	// recurMu guards the recurrence table. fireRecurrence holds it across
	// the due-check and the WAL append of the advanced due-time, so two
	// concurrent Ticks can never journal (and fire) the same due instant
	// twice. It is never held while regMu is taken — Resubmit runs outside
	// it.
	recurMu  sync.Mutex
	recur    map[string]*recurrence
	tickStop chan struct{}

	// regMu serialises admissions: the duplicate check, the WAL append,
	// and publication in the registry form one critical section, so a job
	// is never visible to connections before its registration is durable
	// and two racing Registers can never both append a record for one ID.
	regMu sync.Mutex

	mu           sync.Mutex
	started      bool
	shuttingDown bool

	wg sync.WaitGroup // workers
}

// New boots a device, loads the service's software stack onto it, and
// prepares (but does not start) the worker pool. With Config.DataDir set,
// it replays the write-ahead log first: registered contracts reappear in
// the registry, Pending jobs resume live, jobs that were Uploading or
// Running when the old process died are failed with ErrInterrupted, and
// terminal jobs become tombstones that answer reconnecting recipients.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Shards > 1 {
		return nil, fmt.Errorf("server: Config.Shards = %d: a Server is one shard; build a fleet with internal/fleet.New", cfg.Shards)
	}
	sched, err := newScheduler(cfg.Scheduler, cfg.QueueDepth, cfg.TenantWeights)
	if err != nil {
		return nil, err
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System()
	}
	dev, err := service.BootDevice()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		device:   dev,
		registry: newRegistry(),
		metrics:  newMetrics(),
		store:    NopStore{},
		sched:    sched,
		clk:      clk,
		recur:    make(map[string]*recurrence),
		tickStop: make(chan struct{}),
	}
	var recs []wal.Record
	replay := false
	switch {
	case cfg.Store != nil:
		s.store = cfg.Store
	case cfg.DataDir != "":
		st, r, err := OpenWALStore(cfg.DataDir, cfg.Faults)
		if err != nil {
			return nil, err
		}
		s.store = st
		recs, replay = r, true
	}
	// The result store opens after the job store exists (its manifest
	// journals through it) and before recovery runs (recovery reconciles
	// the WAL manifest against the segments the scan found on disk).
	resultDir := ""
	if cfg.DataDir != "" {
		resultDir = filepath.Join(cfg.DataDir, "results")
	}
	results, err := resultstore.Open(resultstore.Config{
		Dir:      resultDir,
		MaxBytes: cfg.MaxResultBytes,
		TTL:      cfg.ResultTTL,
		Journal:  walJournal{s},
		Now:      clk.Now,
	})
	if err != nil {
		s.store.Close()
		return nil, err
	}
	s.results = results
	// The sorted-relation cache is a second result store instance under its
	// own subdirectory: same segment format, same manifest-through-the-WAL
	// journaling, but holding obliviously pre-sorted upload halves keyed by
	// cache key instead of sealed results keyed by job.
	cacheDir := ""
	if cfg.DataDir != "" {
		cacheDir = filepath.Join(cfg.DataDir, "sortcache")
	}
	sortcache, err := resultstore.Open(resultstore.Config{
		Dir:      cacheDir,
		MaxBytes: cfg.MaxCacheBytes,
		Journal:  cacheJournal{s},
	})
	if err != nil {
		s.store.Close()
		return nil, err
	}
	s.sortcache = sortcache
	s.cache = &sortedCache{srv: s}
	s.quotas = cfg.Quotas
	if s.quotas == nil {
		quotaNow := cfg.QuotaNow
		if quotaNow == nil {
			quotaNow = clk.Now
		}
		s.quotas = NewQuotas(QuotaConfig{
			MaxInFlight: cfg.TenantMaxInFlight,
			Rate:        cfg.TenantRate,
			Burst:       cfg.TenantBurst,
		}, quotaNow)
	}
	if replay {
		if err := s.recover(recs); err != nil {
			s.store.Close()
			return nil, err
		}
	}
	return s, nil
}

// newService builds one execution's service stack — the single place the
// server's per-job service configuration (devices, upload bounds, the
// sorted-relation cache) is applied, shared by Register, Resubmit, and
// crash recovery so every execution of a contract runs the same stack.
func (s *Server) newService(c *service.Contract) (*service.Service, error) {
	svc, err := service.NewServiceWithDevice(s.device, c, s.cfg.Memory, s.cfg.Seed)
	if err != nil {
		return nil, err
	}
	svc.Devices = s.cfg.DevicesPerJob
	svc.MaxUploadBytes = s.cfg.MaxUploadBytes
	svc.UploadWindow = s.cfg.UploadWindow
	svc.AllowLegacyUpload = s.cfg.AllowLegacyUpload
	svc.SortCache = s.cache
	return svc, nil
}

// Device returns the server's attested device; clients pin its key.
func (s *Server) Device() *secop.Device { return s.device }

// Registry exposes the contract registry.
func (s *Server) Registry() *Registry { return s.registry }

// MetricsSnapshot is the admin method: a JSON-serialisable view of the
// server's counters and gauges, including the result store's live bytes
// and eviction counters.
func (s *Server) MetricsSnapshot() Snapshot {
	snap := s.metrics.Snapshot()
	snap.ResultStoreBytes = s.results.Bytes()
	snap.ResultStoreEvictions = s.results.Evictions()
	snap.ResultStoreRecoveryEvictions = s.results.RecoveryEvictions()
	snap.SortCacheBytes = s.sortcache.Bytes()
	snap.SortCacheEvictions = s.sortcache.Evictions() + s.sortcache.RecoveryEvictions()
	snap.SortCacheHits = s.metrics.sortCacheHits.Load()
	snap.SortCacheMisses = s.metrics.sortCacheMisses.Load()
	snap.Scheduler = s.cfg.Scheduler
	if snap.Scheduler == "" {
		snap.Scheduler = PolicyFair
	}
	snap.RecurrencesFired = s.metrics.recurFired.Load()
	snap.RecurrencesSkipped = s.metrics.recurSkipped.Load()
	return snap
}

// Start launches the worker pool. Serve calls it implicitly; tests that
// drive HandleConn directly may delay it to control scheduling.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.cfg.TickEvery > 0 {
		s.wg.Add(1)
		go s.tickLoop(s.cfg.TickEvery)
	}
}

// Register verifies and admits a contract, creating its job in state
// Pending. The job's deadline starts now when Config.JobTimeout is set.
func (s *Server) Register(c *service.Contract) (*Job, error) {
	s.mu.Lock()
	down := s.shuttingDown
	s.mu.Unlock()
	if down {
		return nil, ErrShuttingDown
	}
	// Registration-time backpressure (fleet spillover hook). The check is
	// deliberately side-effect free — no metric, no WAL record — so a
	// refused admission leaves no gauge drift behind when the router
	// re-registers the contract on another shard.
	if s.cfg.AdmissionControl && s.sched.Full() {
		return nil, fmt.Errorf("%w (depth %d): admission refused", ErrQueueFull, s.sched.Cap())
	}
	if err := c.CheckRoles(); err != nil {
		return nil, err
	}
	// '#' separates a contract ID from a re-execution sequence number in
	// job IDs ("c#2", "c#3"); a contract named with one could collide with
	// another contract's execution history, so it is refused at admission.
	if strings.Contains(c.ID, "#") {
		return nil, fmt.Errorf("server: contract ID %q: '#' is reserved for re-execution job IDs", c.ID)
	}
	svc, err := s.newService(c)
	if err != nil {
		return nil, err
	}
	providers, recipients := c.CountRoles()
	ctx, cancel := context.WithCancel(context.Background())
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	}
	j := &Job{
		svc:            svc,
		srv:            s,
		id:             c.ID,
		seq:            1,
		tenant:         c.Tenant,
		priority:       c.Priority,
		ctx:            ctx,
		cancel:         cancel,
		providers:      providers,
		wantRecipients: recipients,
		state:          StatePending,
		settled:        make(chan struct{}),
		done:           make(chan struct{}),
	}
	// Durability gate: a job whose admission never reached the WAL would be
	// silently lost by a crash, so the tenant is told now instead. The
	// record is appended BEFORE the job is published in the registry —
	// otherwise a concurrent HandleConn could look the job up and start a
	// handshake against an admission that is then unwound when the append
	// fails, leaving a session running against a contract the tenant was
	// told was refused. The tenant quota gate sits between the duplicate
	// check and the append: a quota refusal must leave no WAL record and no
	// metric drift, and an append failure must return the slot and token it
	// acquired.
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.registry.has(c.ID) {
		cancel()
		return nil, fmt.Errorf("server: contract %q already registered", c.ID)
	}
	if err := s.quotas.Acquire(c.Tenant); err != nil {
		cancel()
		return nil, err
	}
	j.quotaHeld = true
	if err := s.store.LogRegistered(c); err != nil {
		s.quotas.Release(c.Tenant)
		cancel()
		return nil, fmt.Errorf("server: logging registration of %q: %w", c.ID, err)
	}
	if err := s.registry.add(j); err != nil {
		s.quotas.Release(c.Tenant)
		cancel()
		return nil, err
	}
	s.metrics.jobSubmitted()
	go j.watch()
	return j, nil
}

// Resubmit re-executes a registered contract as a fresh job. The contract
// — parties, predicate, algorithm, signatures — is exactly the one
// Register verified; only the execution is new: a fresh job ID
// ("<contract>#<seq>"), a fresh service stack awaiting fresh uploads, a
// fresh deadline. Tenancy quotas gate it exactly like Register, and the
// resubmission is journaled (TypeResubmitted) before the job is published,
// so a restarted server rebuilds the full execution history. Providers and
// recipients address the new run with Hello.JobID — or implicitly, since
// an empty JobID routes to the contract's latest execution.
func (s *Server) Resubmit(contractID string) (*Job, error) {
	s.mu.Lock()
	down := s.shuttingDown
	s.mu.Unlock()
	if down {
		return nil, ErrShuttingDown
	}
	if s.cfg.AdmissionControl && s.sched.Full() {
		return nil, fmt.Errorf("%w (depth %d): admission refused", ErrQueueFull, s.sched.Cap())
	}
	c, err := s.registry.Contract(contractID)
	if err != nil {
		return nil, err
	}
	svc, err := s.newService(c)
	if err != nil {
		return nil, err
	}
	providers, recipients := c.CountRoles()
	ctx, cancel := context.WithCancel(context.Background())
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), s.cfg.JobTimeout)
	}
	j := &Job{
		svc:            svc,
		srv:            s,
		tenant:         c.Tenant,
		priority:       c.Priority,
		ctx:            ctx,
		cancel:         cancel,
		providers:      providers,
		wantRecipients: recipients,
		state:          StatePending,
		settled:        make(chan struct{}),
		done:           make(chan struct{}),
	}
	// The sequence number is assigned under regMu so two racing Resubmits
	// cannot mint the same job ID, and — like Register — the quota gate
	// precedes the WAL append, which precedes publication.
	s.regMu.Lock()
	defer s.regMu.Unlock()
	j.seq = len(s.registry.Executions(contractID)) + 1
	j.id = fmt.Sprintf("%s#%d", contractID, j.seq)
	if err := s.quotas.Acquire(c.Tenant); err != nil {
		cancel()
		return nil, err
	}
	j.quotaHeld = true
	if err := s.store.LogResubmitted(contractID, j.id); err != nil {
		s.quotas.Release(c.Tenant)
		cancel()
		return nil, fmt.Errorf("server: logging resubmission of %q: %w", contractID, err)
	}
	if err := s.registry.addExecution(j); err != nil {
		s.quotas.Release(c.Tenant)
		cancel()
		return nil, err
	}
	s.metrics.jobSubmitted()
	go j.watch()
	return j, nil
}

// HandleConn serves one party's connection end to end: it reads the hello,
// routes it to the registered contract, completes the attested handshake,
// and then either ingests the provider's upload or parks the recipient
// session until the job delivers (the call blocks until then, keeping the
// connection alive).
func (s *Server) HandleConn(conn io.ReadWriter) error {
	sess, hello, err := service.ReadHello(conn)
	if err != nil {
		return err
	}
	return s.HandleSession(sess, hello)
}

// HandleSession serves a session whose hello has already been read — the
// dispatch seam for multi-host routing: the fleet router reads the hello
// once (service.ReadHello), picks the shard that owns hello.ContractID, and
// hands the open session to that shard here. Semantics are exactly
// HandleConn's from the hello onward.
func (s *Server) HandleSession(sess *service.Session, hello service.Hello) error {
	j, err := s.registry.Lookup(hello.ContractID, hello.JobID)
	if err != nil {
		return err
	}
	party, err := j.svc.Handshake(sess, hello)
	if err != nil {
		return fmt.Errorf("server: contract %s: %w", j.Contract().ID, err)
	}
	j.noteSession()
	switch party.Role {
	case service.RoleProvider:
		// The upload runs under the job context, tightened by the upload
		// deadline when one is configured: a provider that stalls mid-stream
		// cannot hold the slot (and the server's ingest window) open
		// forever.
		ctx := j.ctx
		if s.cfg.UploadDeadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.UploadDeadline)
			defer cancel()
		}
		if err := j.svc.ReceiveUploadCtx(ctx, party.Name, sess); err != nil {
			err = fmt.Errorf("server: upload from %s: %w", party.Name, err)
			// A stream the deadline killed mid-flight is unrecoverable by
			// waiting: the provider committed to rows it stopped delivering.
			// Fail the job now so recipients learn the truncation verdict
			// instead of idling until the job deadline. Other upload errors
			// release only the party slot — the provider may reconnect.
			if errors.Is(err, service.ErrUploadTruncated) && ctx.Err() != nil {
				j.fail(err, false)
			}
			return err
		}
		j.providerUploaded()
		return nil
	case service.RoleRecipient:
		// The recipient connection blocks until the job settles, then
		// streams the stored result (from the hello's resume offset on v2
		// sessions). A job already Stored answers immediately — including
		// re-fetches after a restart, served straight from the store.
		return s.serveRecipient(j, party.Name, sess, hello.ResumeChunks)
	}
	return fmt.Errorf("server: party %s has unknown role %q", party.Name, party.Role)
}

// Serve accepts connections from ln until it closes, handling each in its
// own goroutine. Accept errors after Shutdown are reported as a clean exit.
func (s *Server) Serve(ln net.Listener) error {
	s.Start()
	var conns sync.WaitGroup
	defer conns.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			down := s.shuttingDown
			s.mu.Unlock()
			if down {
				return nil
			}
			return err
		}
		conns.Add(1)
		go func(conn net.Conn) {
			defer conns.Done()
			defer conn.Close()
			if err := s.HandleConn(conn); err != nil {
				s.logf("server: %v", err)
			}
		}(conn)
	}
}

// enqueue hands a ready job to the scheduler, failing it with the
// scheduler's typed refusal — ErrQueueFull at the discipline's bound
// (queue-depth backpressure, per tenant under fair scheduling) or
// ErrShuttingDown during drain.
func (s *Server) enqueue(j *Job) {
	s.mu.Lock()
	if s.shuttingDown {
		s.mu.Unlock()
		j.fail(ErrShuttingDown, false)
		return
	}
	err := s.sched.Enqueue(j)
	if err == nil {
		s.metrics.queueAdd(1)
	}
	s.mu.Unlock()
	if err != nil {
		j.fail(err, false)
	}
}

// worker executes ready jobs until the scheduler closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.sched.Next()
		if !ok {
			return
		}
		s.metrics.queueAdd(-1)
		s.runJob(j)
	}
}

// runJob is one worker's handling of one job: honour cancellation and
// deadlines, execute the contract, deliver.
func (s *Server) runJob(j *Job) {
	if err := j.ctx.Err(); err != nil {
		j.fail(err, false)
		return
	}
	if !j.startRun() {
		return // failed (canceled, deadline, shutdown) before pickup
	}
	out := j.svc.RunContract()
	if err := j.ctx.Err(); err != nil && out.Err == nil {
		out.Err = err
	}
	j.finish(out)
}

// Shutdown drains the server gracefully: no new registrations or enqueues
// are admitted, queued jobs fail with ErrShuttingDown, jobs still gathering
// sessions fail likewise, and in-flight jobs run to completion. It returns
// once the workers exit or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	var queued []*Job
	s.mu.Lock()
	if !s.shuttingDown {
		s.shuttingDown = true
		queued = s.sched.Close()
		for range queued {
			s.metrics.queueAdd(-1)
		}
		close(s.tickStop)
	}
	s.mu.Unlock()
	for _, j := range queued {
		j.fail(ErrShuttingDown, false)
	}
	for _, j := range s.registry.Jobs() {
		j.fail(ErrShuttingDown, true) // skip Running: workers drain them
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return s.store.Close()
	case <-ctx.Done():
		// The WAL descriptor (and its data-dir lock) must not leak when the
		// drain deadline expires: close it now. A worker still finishing a
		// job appends to a closed log, which fails and is counted like any
		// other lost transition — the recovery path owns that gap.
		if cerr := s.store.Close(); cerr != nil {
			s.logf("server: closing store after drain timeout: %v", cerr)
		}
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Load is a point-in-time load observation of one server, read from the
// scheduler and the metrics gauges. The fleet router's spillover policy
// orders shards by it.
type Load struct {
	// QueueDepth is the number of ready jobs waiting for a worker.
	QueueDepth int
	// QueueCap is the configured queue bound; QueueDepth == QueueCap means
	// the shard is refusing admissions under AdmissionControl.
	QueueCap int
	// Active counts registered jobs that have not reached a terminal state
	// (Pending + Uploading + Running).
	Active int
}

// Less orders loads for least-loaded selection: fewer queued jobs first,
// then fewer active jobs.
func (l Load) Less(o Load) bool {
	if l.QueueDepth != o.QueueDepth {
		return l.QueueDepth < o.QueueDepth
	}
	return l.Active < o.Active
}

// Load reports the server's current load.
func (s *Server) Load() Load {
	active := int64(0)
	for _, st := range []State{StatePending, StateUploading, StateRunning} {
		active += s.metrics.gauges[st].Load()
	}
	return Load{QueueDepth: s.sched.Depth(), QueueCap: s.sched.Cap(), Active: int(active)}
}
