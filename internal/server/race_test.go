//go:build race

package server

// raceEnabled relaxes wall-clock acceptance bounds: the race detector
// slows execution severalfold, which says nothing about recovery speed.
const raceEnabled = true
