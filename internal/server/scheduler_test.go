package server

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// schedJob builds the minimal Job the scheduler layer needs: identity,
// tenant, and priority. Scheduler tests drive Enqueue/Next directly in
// virtual time (one Next call = one time unit), so no service stack, no
// context, and no wall clock are involved.
func schedJob(id, tenant string, priority int) *Job {
	return &Job{id: id, tenant: tenant, priority: priority}
}

func TestFIFOSchedulerOrderAndBound(t *testing.T) {
	s := newFIFOScheduler(3)
	for i := 0; i < 3; i++ {
		if err := s.Enqueue(schedJob(fmt.Sprintf("j%d", i), "", 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Enqueue(schedJob("overflow", "", 0)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("enqueue past bound = %v, want ErrQueueFull", err)
	}
	if !s.Full() || s.Depth() != 3 || s.Cap() != 3 {
		t.Fatalf("Full/Depth/Cap = %v/%d/%d, want true/3/3", s.Full(), s.Depth(), s.Cap())
	}
	for i := 0; i < 3; i++ {
		j, ok := s.Next()
		if !ok || j.id != fmt.Sprintf("j%d", i) {
			t.Fatalf("dequeue %d = %v/%v, want j%d in arrival order", i, j, ok, i)
		}
	}
	drained := s.Close()
	if len(drained) != 0 {
		t.Fatalf("Close drained %d jobs from an empty queue", len(drained))
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next after Close returned a job")
	}
	if err := s.Enqueue(schedJob("late", "", 0)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("enqueue after Close = %v, want ErrShuttingDown", err)
	}
}

func TestFairSchedulerPerTenantBound(t *testing.T) {
	s := newFairScheduler(2, nil)
	for i := 0; i < 2; i++ {
		if err := s.Enqueue(schedJob(fmt.Sprintf("a%d", i), "alice", 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Alice is at her bound: her next job is refused, naming her...
	err := s.Enqueue(schedJob("a2", "alice", 0))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("enqueue past tenant bound = %v, want ErrQueueFull", err)
	}
	if want := `tenant "alice"`; err == nil || !contains(err.Error(), want) {
		t.Fatalf("refusal %q does not name the tenant (%s)", err, want)
	}
	// ...while Bob's queue is untouched.
	if err := s.Enqueue(schedJob("b0", "bob", 0)); err != nil {
		t.Fatalf("other tenant refused: %v", err)
	}
	if s.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", s.Depth())
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestFairSchedulerPriorityClasses(t *testing.T) {
	s := newFairScheduler(16, nil)
	s.Enqueue(schedJob("normal", "t", 0))
	s.Enqueue(schedJob("low", "t", -1))
	s.Enqueue(schedJob("high", "t", 1))
	s.Enqueue(schedJob("normal2", "t", 0))
	var got []string
	for s.Depth() > 0 {
		j, _ := s.Next()
		got = append(got, j.id)
	}
	want := []string{"high", "normal", "normal2", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dequeue order %v, want %v", got, want)
		}
	}
}

// TestFairSchedulerFloodTrickleFairness is the adversarial fairness
// property the tentpole pins: tenant "flood" keeps its queue saturated at
// the bound while tenant "trickle" submits one job at a time. Queue wait
// is measured in virtual time — one Next() call is one unit — and the
// trickling tenant's p99 wait must stay bounded by a small constant factor
// of its fair share (with equal weights, its fair share is every other
// dispatch slot), no matter how deep the flood's backlog is. Under the old
// global FIFO, every trickle job would wait behind the flood's entire
// backlog (bound ~= QueueDepth); here the bound is a handful of slots.
func TestFairSchedulerFloodTrickleFairness(t *testing.T) {
	const bound = 128
	s := newFairScheduler(bound, nil)

	flood := 0
	topUpFlood := func() {
		for {
			if err := s.Enqueue(schedJob(fmt.Sprintf("f%d", flood), "flood", 0)); err != nil {
				return // at the flood tenant's bound: saturated, as intended
			}
			flood++
		}
	}
	topUpFlood()

	now := 0 // virtual clock: advances one unit per dispatch
	var waits []int
	trickleQueued := -1
	trickleSeq := 0
	for now < 4*bound {
		if trickleQueued < 0 {
			if err := s.Enqueue(schedJob(fmt.Sprintf("t%d", trickleSeq), "trickle", 0)); err != nil {
				t.Fatalf("trickle enqueue refused at virtual time %d: %v", now, err)
			}
			trickleSeq++
			trickleQueued = now
		}
		j, ok := s.Next()
		if !ok {
			t.Fatal("scheduler closed mid-test")
		}
		now++
		if j.tenant == "trickle" {
			waits = append(waits, now-trickleQueued)
			trickleQueued = -1
		}
		topUpFlood()
	}

	if len(waits) < bound {
		t.Fatalf("trickle tenant completed %d jobs in %d slots; starved", len(waits), 4*bound)
	}
	sort.Ints(waits)
	p99 := waits[len(waits)*99/100]
	// Fair share with equal weights and two active tenants is one dispatch
	// per two slots; allow a factor-of-three constant over it. The old FIFO
	// would put p99 near the flood backlog (bound = 128).
	const maxWait = 6
	if p99 > maxWait {
		t.Fatalf("trickle p99 queue wait = %d virtual slots, want <= %d (fair-share bound); FIFO-like starvation", p99, maxWait)
	}
}

// TestFairSchedulerStarvationBound pins the weighted round-robin service
// guarantee: with active weights summing to W, a tenant of weight w waits
// at most W-w dispatch slots between two of its consecutive dequeues while
// it has queued work.
func TestFairSchedulerStarvationBound(t *testing.T) {
	weights := map[string]int{"heavy": 4, "mid": 2, "light": 1}
	const W = 7
	s := newFairScheduler(256, weights)
	for tenant := range weights {
		for i := 0; i < 64; i++ {
			if err := s.Enqueue(schedJob(fmt.Sprintf("%s-%d", tenant, i), tenant, 0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	last := map[string]int{}
	served := map[string]int{}
	for slot := 0; s.Depth() > 0; slot++ {
		j, _ := s.Next()
		if prev, seen := last[j.tenant]; seen {
			gap := slot - prev
			maxGap := W - weights[j.tenant] + 1
			if gap > maxGap && s.Depth() > 0 {
				t.Fatalf("tenant %s waited %d slots between dequeues, want <= %d", j.tenant, gap, maxGap)
			}
		}
		last[j.tenant] = slot
		served[j.tenant]++
	}
	// Weighted shares over the full drain: heavy must have been served
	// first at roughly 4x light's rate in every prefix; the gap assertion
	// above already pins the schedule, so here just confirm totals.
	for tenant := range weights {
		if served[tenant] != 64 {
			t.Fatalf("tenant %s served %d jobs, want 64", tenant, served[tenant])
		}
	}
}

// TestFairSchedulerDeficitBounded is the no-unbounded-deficit property:
// across a randomized adversarial enqueue/dequeue schedule, no tenant's
// deficit counter ever exceeds its weight — credit cannot be hoarded, so
// no tenant can ever burst past its fair share.
func TestFairSchedulerDeficitBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	weights := map[string]int{"a": 1, "b": 3, "c": 5}
	tenants := []string{"a", "b", "c"}
	s := newFairScheduler(64, weights)
	queued := 0
	for step := 0; step < 10_000; step++ {
		if queued == 0 || rng.Intn(2) == 0 {
			tenant := tenants[rng.Intn(len(tenants))]
			if err := s.Enqueue(schedJob(fmt.Sprintf("j%d", step), tenant, rng.Intn(3)-1)); err == nil {
				queued++
			}
		} else {
			if _, ok := s.Next(); !ok {
				t.Fatal("scheduler closed mid-test")
			}
			queued--
		}
		s.mu.Lock()
		for tenant, tq := range s.tenants {
			w := weights[tenant]
			if tq.deficit > w {
				s.mu.Unlock()
				t.Fatalf("step %d: tenant %s deficit %d exceeds weight %d", step, tenant, tq.deficit, w)
			}
			if tq.queued == 0 && tq.deficit != 0 {
				s.mu.Unlock()
				t.Fatalf("step %d: idle tenant %s banked deficit %d", step, tenant, tq.deficit)
			}
		}
		s.mu.Unlock()
	}
}

// TestFairSchedulerCloseDrains pins shutdown semantics: Close returns
// every queued job exactly once and wakes blocked Next callers.
func TestFairSchedulerCloseDrains(t *testing.T) {
	s := newFairScheduler(8, nil)
	ids := map[string]bool{}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("a%d", i)
		s.Enqueue(schedJob(id, "a", 0))
		ids[id] = true
	}
	s.Enqueue(schedJob("b0", "b", 0))
	ids["b0"] = true

	woke := make(chan struct{})
	go func() {
		// A blocked worker must observe the close.
		for {
			if _, ok := s.Next(); !ok {
				close(woke)
				return
			}
		}
	}()

	drained := s.Close()
	<-woke
	got := 0
	for _, j := range drained {
		if !ids[j.id] {
			t.Fatalf("Close returned unknown or duplicate job %q", j.id)
		}
		delete(ids, j.id)
		got++
	}
	// The racing worker may have consumed some jobs before Close; drained
	// plus consumed must cover all five with no duplicates.
	if got+len(ids) != 5 && len(ids) != 0 {
		t.Fatalf("drain accounting broken: %d drained, %d unaccounted", got, len(ids))
	}
}

// TestSchedulerPolicySelection pins the config seam: empty and "fair"
// select DRR, "fifo" selects the historical queue, anything else is
// refused at construction.
func TestSchedulerPolicySelection(t *testing.T) {
	if s, err := newScheduler("", 4, nil); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*fairScheduler); !ok {
		t.Fatalf("default scheduler is %T, want *fairScheduler", s)
	}
	if s, err := newScheduler(PolicyFIFO, 4, nil); err != nil {
		t.Fatal(err)
	} else if _, ok := s.(*fifoScheduler); !ok {
		t.Fatalf("fifo scheduler is %T, want *fifoScheduler", s)
	}
	if _, err := newScheduler("priority-lottery", 4, nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := New(Config{Scheduler: "bogus"}); err == nil {
		t.Fatal("server with unknown scheduler policy booted")
	}
}
