package server

import (
	"fmt"
	"sort"
	"time"

	"ppj/internal/service"
)

// recurrence is one contract's live schedule: a fixed re-execution
// interval and the next due instant. The durable copy is the last
// TypeScheduled WAL record for the contract; the in-memory copy only ever
// advances after that record is appended.
type recurrence struct {
	every time.Duration
	next  time.Time
}

// Schedule is the admin view of one contract's recurrence.
type Schedule struct {
	// Every is the fixed re-execution interval.
	Every time.Duration
	// Next is the next due instant on the server's clock.
	Next time.Time
}

// RegisterScheduled admits a contract exactly like Register and attaches a
// fixed-interval recurrence: every tick in which the schedule is due, the
// server re-executes the contract through the Resubmit path (fresh job ID,
// fresh uploads, same verified contract). The schedule is journaled with
// its own WAL record type, so due-times survive restarts; the first
// execution is the registration's own job, and the first recurrence fires
// one interval later.
func (s *Server) RegisterScheduled(c *service.Contract, every time.Duration) (*Job, error) {
	if every <= 0 {
		return nil, fmt.Errorf("server: recurrence interval %v: must be positive", every)
	}
	j, err := s.Register(c)
	if err != nil {
		return nil, err
	}
	due := s.clk.Now().Add(every)
	if err := s.store.LogScheduled(c.ID, every, due); err != nil {
		// The contract itself was admitted and stays admitted — its
		// registration record is already durable and its first job live. Only
		// the recurrence failed to journal, so only the recurrence is
		// refused.
		return nil, fmt.Errorf("server: logging schedule of %q: %w", c.ID, err)
	}
	s.recurMu.Lock()
	s.recur[c.ID] = &recurrence{every: every, next: due}
	s.recurMu.Unlock()
	return j, nil
}

// Schedules returns a snapshot of the live recurrence table, keyed by
// contract ID.
func (s *Server) Schedules() map[string]Schedule {
	s.recurMu.Lock()
	defer s.recurMu.Unlock()
	out := make(map[string]Schedule, len(s.recur))
	for id, r := range s.recur {
		out[id] = Schedule{Every: r.every, Next: r.next}
	}
	return out
}

// Tick fires every recurring contract whose due instant has arrived on the
// server's clock, returning how many re-executions were submitted. The
// production tick loop calls it on a timer; tests advance a fake clock and
// call it directly.
func (s *Server) Tick() int {
	now := s.clk.Now()
	s.recurMu.Lock()
	var due []string
	for id, r := range s.recur {
		if !r.next.After(now) {
			due = append(due, id)
		}
	}
	s.recurMu.Unlock()
	// Deterministic fire order keeps multi-contract tests and logs stable.
	sort.Strings(due)
	fired := 0
	for _, id := range due {
		if s.fireRecurrence(id, now) {
			fired++
		}
	}
	return fired
}

// fireRecurrence fires one due contract: journal the advanced due-time
// FIRST, then resubmit. A crash between the two loses at most the one
// fire (the recovered schedule says the next interval) and can never
// replay it — re-execution duplicates would be worse than a missed fire,
// since providers would be asked for uploads twice. recurMu is held across
// the due-check and the append so concurrent Ticks cannot both journal the
// same instant; the resubmission itself runs outside the lock (Resubmit
// takes regMu).
func (s *Server) fireRecurrence(id string, now time.Time) bool {
	s.recurMu.Lock()
	r, ok := s.recur[id]
	if !ok || r.next.After(now) {
		s.recurMu.Unlock()
		return false
	}
	// Skip whole missed intervals (the server was down or the tick loop
	// stalled) instead of firing a catch-up burst.
	next := r.next
	for !next.After(now) {
		next = next.Add(r.every)
	}
	if err := s.store.LogScheduled(id, r.every, next); err != nil {
		s.recurMu.Unlock()
		s.metrics.recurrenceSkipped()
		s.logf("server: recurrence %s: journaling due-time: %v", id, err)
		return false
	}
	r.next = next
	s.recurMu.Unlock()
	if _, err := s.Resubmit(id); err != nil {
		// The schedule has advanced — durably and in memory — but this
		// fire's re-execution was refused (quota, backpressure, shutdown).
		// The interval is skipped, counted, and the next one will try again.
		s.metrics.recurrenceSkipped()
		s.logf("server: recurrence %s: %v", id, err)
		return false
	}
	s.metrics.recurrenceFired()
	return true
}

// tickLoop drives Tick on a timer until shutdown.
func (s *Server) tickLoop(every time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.tickStop:
			return
		case <-t.C:
			s.Tick()
		}
	}
}
