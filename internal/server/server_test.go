package server

import (
	"context"
	"crypto/ed25519"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ppj/internal/relation"
	"ppj/internal/service"
)

type testParty struct {
	name string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

func newParty(t *testing.T, name string) testParty {
	t.Helper()
	pub, priv, err := service.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	return testParty{name: name, pub: pub, priv: priv}
}

// group is one contract with its three parties and input relations.
type group struct {
	contract   *service.Contract
	provA      testParty
	provB      testParty
	recip      testParty
	relA, relB *relation.Relation
}

func newGroup(t *testing.T, id, alg string, seedA, seedB uint64, rowsA, rowsB int) *group {
	t.Helper()
	g := &group{
		provA: newParty(t, id+"-provA"),
		provB: newParty(t, id+"-provB"),
		recip: newParty(t, id+"-recip"),
		relA:  relation.GenKeyed(relation.NewRand(seedA), rowsA, 5),
		relB:  relation.GenKeyed(relation.NewRand(seedB), rowsB, 5),
	}
	g.contract = &service.Contract{
		ID: id,
		Parties: []service.Party{
			{Name: g.provA.name, Identity: g.provA.pub, Role: service.RoleProvider},
			{Name: g.provB.name, Identity: g.provB.pub, Role: service.RoleProvider},
			{Name: g.recip.name, Identity: g.recip.pub, Role: service.RoleRecipient},
		},
		Predicate: service.PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"},
		Algorithm: alg,
		Epsilon:   1e-9,
	}
	if alg == "aggregate" {
		g.contract.Aggregate = service.AggregateSpec{Kind: "count"}
	}
	g.contract.Sign(0, g.provA.priv)
	g.contract.Sign(1, g.provB.priv)
	return g
}

func (g *group) client(p testParty, srv *Server) *service.Client {
	return &service.Client{
		Name:      p.name,
		Identity:  p.priv,
		DeviceKey: srv.Device().DeviceKey(),
		Expected:  service.ExpectedStack(),
	}
}

func (g *group) wantJoin() *relation.Relation {
	eq, _ := relation.NewEqui(g.relA.Schema, "key", g.relB.Schema, "key")
	return relation.ReferenceJoin(g.relA, g.relB, eq)
}

// runTCP drives the whole client group against a TCP address: two provider
// uploads and one recipient receive, all concurrent.
func (g *group) runTCP(t *testing.T, srv *Server, addr string) (*relation.Relation, service.AggOutcome, error) {
	t.Helper()
	dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		result  *relation.Relation
		agg     service.AggOutcome
		firstEr error
	)
	record := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstEr == nil {
			firstEr = err
		}
	}
	provide := func(p testParty, rel *relation.Relation) {
		defer wg.Done()
		conn, err := dial()
		if err != nil {
			record(err)
			return
		}
		defer conn.Close()
		cs, err := g.client(p, srv).ConnectContract(conn, service.RoleProvider, g.contract.ID)
		if err == nil {
			err = cs.SubmitRelation(g.contract.ID, rel)
		}
		record(err)
	}
	wg.Add(3)
	go provide(g.provA, g.relA)
	go provide(g.provB, g.relB)
	go func() {
		defer wg.Done()
		conn, err := dial()
		if err != nil {
			record(err)
			return
		}
		defer conn.Close()
		cs, err := g.client(g.recip, srv).ConnectContract(conn, service.RoleRecipient, g.contract.ID)
		if err != nil {
			record(err)
			return
		}
		if g.contract.Algorithm == "aggregate" {
			out, err := cs.ReceiveAggregate()
			mu.Lock()
			agg = out
			mu.Unlock()
			record(err)
			return
		}
		res, err := cs.ReceiveResult()
		mu.Lock()
		result = res
		mu.Unlock()
		record(err)
	}()
	wg.Wait()
	return result, agg, firstEr
}

// drivePipe runs one party over a net.Pipe against HandleConn directly.
// The returned channels yield the handler's error and the client's outcome.
type pipeOutcome struct {
	result *relation.Relation
	err    error
}

func (g *group) pipeProvider(t *testing.T, srv *Server, p testParty, rel *relation.Relation) error {
	t.Helper()
	serverEnd, clientEnd := net.Pipe()
	handler := make(chan error, 1)
	go func() {
		defer serverEnd.Close()
		handler <- srv.HandleConn(serverEnd)
	}()
	cs, err := g.client(p, srv).ConnectContract(clientEnd, service.RoleProvider, g.contract.ID)
	if err == nil {
		err = cs.SubmitRelation(g.contract.ID, rel)
	}
	if herr := <-handler; herr != nil && err == nil {
		err = herr
	}
	clientEnd.Close()
	return err
}

func (g *group) pipeRecipient(t *testing.T, srv *Server) <-chan pipeOutcome {
	t.Helper()
	serverEnd, clientEnd := net.Pipe()
	go func() {
		defer serverEnd.Close()
		_ = srv.HandleConn(serverEnd)
	}()
	out := make(chan pipeOutcome, 1)
	go func() {
		defer clientEnd.Close()
		cs, err := g.client(g.recip, srv).ConnectContract(clientEnd, service.RoleRecipient, g.contract.ID)
		if err != nil {
			out <- pipeOutcome{err: err}
			return
		}
		res, err := cs.ReceiveResult()
		out <- pipeOutcome{result: res, err: err}
	}()
	return out
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s hung in state %s", j.Contract().ID, j.State())
	}
}

func assertSameRows(t *testing.T, got, want *relation.Relation, label string) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: no result", label)
	}
	gotSet, wantSet := relation.Multiset(got), relation.Multiset(want)
	if got.Len() != want.Len() || len(gotSet) != len(wantSet) {
		t.Fatalf("%s: got %d rows, want %d", label, got.Len(), want.Len())
	}
	for k, v := range wantSet {
		if gotSet[k] != v {
			t.Fatalf("%s: row multiplicity mismatch", label)
		}
	}
}

// TestConcurrentContracts is the acceptance scenario: one listener, a
// worker pool of P=2, four concurrently driven contracts with mixed
// algorithms (including one "auto" planned and one aggregate), every
// recipient receiving exactly the reference join, and a consistent metrics
// snapshot at the end.
func TestConcurrentContracts(t *testing.T) {
	srv, err := New(Config{Workers: 2, QueueDepth: 8, Memory: 16})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	groups := []*group{
		newGroup(t, "contract-alg3", "alg3", 1, 2, 8, 10),
		newGroup(t, "contract-alg5", "alg5", 3, 4, 7, 9),
		newGroup(t, "contract-auto", "auto", 5, 6, 9, 8),
		newGroup(t, "contract-agg", "aggregate", 7, 8, 10, 10),
	}
	jobs := make([]*Job, len(groups))
	for i, g := range groups {
		jobs[i], err = srv.Register(g.contract)
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			result, agg, err := g.runTCP(t, srv, ln.Addr().String())
			if err != nil {
				t.Errorf("%s: %v", g.contract.ID, err)
				return
			}
			want := g.wantJoin()
			if g.contract.Algorithm == "aggregate" {
				if agg.Count != int64(want.Len()) || !agg.Valid {
					t.Errorf("%s: aggregate %+v, want count %d", g.contract.ID, agg, want.Len())
				}
				return
			}
			assertSameRows(t, result, want, g.contract.ID)
		}(g)
	}
	wg.Wait()
	for _, j := range jobs {
		waitDone(t, j)
		if j.State() != StateDelivered {
			t.Fatalf("job %s ended %s (%v)", j.Contract().ID, j.State(), j.Err())
		}
	}

	snap := srv.MetricsSnapshot()
	if snap.Submitted != uint64(len(groups)) {
		t.Fatalf("submitted = %d, want %d", snap.Submitted, len(groups))
	}
	// Terminal + queued + non-terminal must account for every submission.
	var sum int64
	for _, v := range snap.Jobs {
		sum += v
	}
	if uint64(sum) != snap.Submitted {
		t.Fatalf("state gauges sum to %d, submitted %d: %+v", sum, snap.Submitted, snap.Jobs)
	}
	if got := snap.Jobs["delivered"] + snap.Jobs["failed"] + snap.QueueDepth; got != int64(snap.Submitted) {
		t.Fatalf("delivered+failed+queued = %d, submitted %d", got, snap.Submitted)
	}
	if snap.Jobs["delivered"] != int64(len(groups)) || snap.Jobs["failed"] != 0 {
		t.Fatalf("unexpected terminal counts: %+v", snap.Jobs)
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth = %d after drain", snap.QueueDepth)
	}
	if snap.Coprocessor.Transfers() == 0 || snap.Coprocessor.PredEvals == 0 {
		t.Fatalf("aggregated coprocessor stats empty: %+v", snap.Coprocessor)
	}
	var completions uint64
	for alg, a := range snap.Algorithms {
		if strings.HasPrefix(alg, "auto") {
			t.Fatalf("auto contract recorded unplanned: %+v", snap.Algorithms)
		}
		completions += a.Completed
	}
	if completions != uint64(len(groups)) {
		t.Fatalf("per-algorithm completions = %d, want %d: %+v", completions, len(groups), snap.Algorithms)
	}
	if _, err := snap.JSON(); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ln.Close()
	if err := <-serveDone; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// TestQueueBackpressure fills the bounded ready queue with the workers held
// back and checks the typed rejection.
func TestQueueBackpressure(t *testing.T) {
	srv, err := New(Config{Workers: 1, QueueDepth: 1, Memory: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Workers intentionally not started: the first ready job occupies the
	// whole queue.
	g1 := newGroup(t, "bp-1", "alg5", 11, 12, 5, 5)
	g2 := newGroup(t, "bp-2", "alg5", 13, 14, 5, 5)
	j1, err := srv.Register(g1.contract)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := srv.Register(g2.contract)
	if err != nil {
		t.Fatal(err)
	}

	ready := func(g *group) <-chan pipeOutcome {
		if err := g.pipeProvider(t, srv, g.provA, g.relA); err != nil {
			t.Fatal(err)
		}
		if err := g.pipeProvider(t, srv, g.provB, g.relB); err != nil {
			t.Fatal(err)
		}
		return g.pipeRecipient(t, srv)
	}
	out1 := ready(g1)
	// g1 is now queued (uploads done, recipient parked).
	deadline := time.Now().Add(10 * time.Second)
	for srv.MetricsSnapshot().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first job never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	out2 := ready(g2)
	waitDone(t, j2)
	if j2.State() != StateFailed || !errors.Is(j2.Err(), ErrQueueFull) {
		t.Fatalf("job 2 state %s err %v, want Failed/ErrQueueFull", j2.State(), j2.Err())
	}
	if o := <-out2; o.err == nil || !strings.Contains(o.err.Error(), "queue full") {
		t.Fatalf("recipient 2 outcome = %+v, want queue-full failure", o)
	}

	// Releasing the workers drains the surviving job.
	srv.Start()
	waitDone(t, j1)
	if j1.State() != StateDelivered {
		t.Fatalf("job 1 ended %s (%v)", j1.State(), j1.Err())
	}
	if o := <-out1; o.err != nil {
		t.Fatal(o.err)
	} else {
		assertSameRows(t, o.result, g1.wantJoin(), "bp-1")
	}

	snap := srv.MetricsSnapshot()
	if got := snap.Jobs["delivered"] + snap.Jobs["failed"] + snap.QueueDepth; got != int64(snap.Submitted) {
		t.Fatalf("delivered+failed+queued = %d, submitted %d", got, snap.Submitted)
	}
}

// TestCancelFailsJob cancels a queued job and checks it fails cleanly —
// recipient answered, state Failed, cause context.Canceled — instead of
// hanging.
func TestCancelFailsJob(t *testing.T) {
	srv, err := New(Config{Workers: 1, QueueDepth: 4, Memory: 16})
	if err != nil {
		t.Fatal(err)
	}
	g := newGroup(t, "cancel-1", "alg5", 21, 22, 5, 5)
	j, err := srv.Register(g.contract)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.pipeProvider(t, srv, g.provA, g.relA); err != nil {
		t.Fatal(err)
	}
	if err := g.pipeProvider(t, srv, g.provB, g.relB); err != nil {
		t.Fatal(err)
	}
	out := g.pipeRecipient(t, srv)

	j.Cancel()
	waitDone(t, j)
	if j.State() != StateFailed || !errors.Is(j.Err(), context.Canceled) {
		t.Fatalf("state %s err %v, want Failed/context.Canceled", j.State(), j.Err())
	}
	if o := <-out; o.err == nil || !strings.Contains(o.err.Error(), "canceled") {
		t.Fatalf("recipient outcome = %+v, want cancellation failure", o)
	}
	// A worker arriving later must skip the corpse, not resurrect it.
	srv.Start()
	time.Sleep(10 * time.Millisecond)
	if j.State() != StateFailed {
		t.Fatalf("job resurrected to %s", j.State())
	}
}

// TestJobDeadline lets a registered job expire before its parties connect.
func TestJobDeadline(t *testing.T) {
	srv, err := New(Config{Workers: 1, JobTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	g := newGroup(t, "deadline-1", "alg5", 31, 32, 4, 4)
	j, err := srv.Register(g.contract)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != StateFailed || !errors.Is(j.Err(), context.DeadlineExceeded) {
		t.Fatalf("state %s err %v, want Failed/DeadlineExceeded", j.State(), j.Err())
	}
}

// TestShutdownFailsQueuedJobs verifies graceful drain semantics: queued
// jobs fail with ErrShuttingDown and new registrations are refused.
func TestShutdownFailsQueuedJobs(t *testing.T) {
	srv, err := New(Config{Workers: 1, QueueDepth: 4, Memory: 16})
	if err != nil {
		t.Fatal(err)
	}
	g := newGroup(t, "shut-1", "alg5", 41, 42, 4, 4)
	j, err := srv.Register(g.contract)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.pipeProvider(t, srv, g.provA, g.relA); err != nil {
		t.Fatal(err)
	}
	if err := g.pipeProvider(t, srv, g.provB, g.relB); err != nil {
		t.Fatal(err)
	}
	out := g.pipeRecipient(t, srv)
	deadline := time.Now().Add(10 * time.Second)
	for srv.MetricsSnapshot().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if j.State() != StateFailed || !errors.Is(j.Err(), ErrShuttingDown) {
		t.Fatalf("state %s err %v, want Failed/ErrShuttingDown", j.State(), j.Err())
	}
	if o := <-out; o.err == nil {
		t.Fatalf("recipient outcome = %+v, want shutdown failure", o)
	}
	if _, err := srv.Register(newGroup(t, "shut-2", "alg5", 43, 44, 4, 4).contract); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown registration error = %v", err)
	}
}

// TestUnknownContractRejected checks hello routing against the registry.
func TestUnknownContractRejected(t *testing.T) {
	srv, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := newGroup(t, "known-1", "alg5", 51, 52, 4, 4)
	if _, err := srv.Register(g.contract); err != nil {
		t.Fatal(err)
	}
	serverEnd, clientEnd := net.Pipe()
	handler := make(chan error, 1)
	go func() {
		defer serverEnd.Close()
		handler <- srv.HandleConn(serverEnd)
	}()
	go func() {
		// The handshake dies when the server drops the conn; the client
		// error is incidental, the handler's is the verdict.
		_, _ = g.client(g.provA, srv).ConnectContract(clientEnd, service.RoleProvider, "no-such-contract")
		clientEnd.Close()
	}()
	if err := <-handler; !errors.Is(err, ErrUnknownContract) {
		t.Fatalf("handler error = %v, want ErrUnknownContract", err)
	}
}

// TestRegistryDuplicateAndDefault covers duplicate registration and the
// single-contract empty-ID fallback.
func TestRegistryDuplicateAndDefault(t *testing.T) {
	srv, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := newGroup(t, "dup-1", "alg5", 61, 62, 4, 4)
	if _, err := srv.Register(g.contract); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Register(g.contract); err == nil {
		t.Fatal("duplicate contract registration accepted")
	}
	if j, err := srv.Registry().Lookup("", ""); err != nil || j.Contract().ID != "dup-1" {
		t.Fatalf("single-contract default lookup = %v, %v", j, err)
	}
	g2 := newGroup(t, "dup-2", "alg5", 63, 64, 4, 4)
	if _, err := srv.Register(g2.contract); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Lookup("", ""); err == nil {
		t.Fatal("ambiguous empty-ID lookup accepted")
	}
}

// TestFreshSeedsPerJob runs the same contract shape twice on a production
// (Seed == 0) server and checks the executions draw distinct coprocessor
// randomness — the per-job seed fix — by comparing delivered padded
// outputs' decoy placements across runs. Identical inputs with identical
// seeds would replay identical traversal order; crypto/rand seeds make a
// collision vanishingly unlikely, and correctness of the join rows is
// asserted either way.
func TestFreshSeedsPerJob(t *testing.T) {
	srv, err := New(Config{Workers: 2, Memory: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	run := func(id string) *Job {
		g := newGroup(t, id, "alg5", 71, 72, 6, 6)
		j, err := srv.Register(g.contract)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.pipeProvider(t, srv, g.provA, g.relA); err != nil {
			t.Fatal(err)
		}
		if err := g.pipeProvider(t, srv, g.provB, g.relB); err != nil {
			t.Fatal(err)
		}
		out := g.pipeRecipient(t, srv)
		waitDone(t, j)
		if o := <-out; o.err != nil {
			t.Fatal(o.err)
		} else {
			assertSameRows(t, o.result, g.wantJoin(), id)
		}
		return j
	}
	j1, j2 := run("seed-1"), run("seed-2")
	if j1.State() != StateDelivered || j2.State() != StateDelivered {
		t.Fatalf("states %s/%s", j1.State(), j2.State())
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StatePending: "pending", StateUploading: "uploading", StateRunning: "running",
		StateDelivered: "delivered", StateFailed: "failed", State(99): "unknown",
	} {
		if got := fmt.Sprint(s); got != want {
			t.Fatalf("State(%d) = %q, want %q", s, got, want)
		}
	}
}

// TestDevicesPerJob runs jobs on a server configured with a four-device
// fleet per job: a parallel-admissible algorithm must deliver the exact
// join and be recorded as a parallel run in the device metrics, while
// Algorithm 1 (sequential-only) must attach a single device.
func TestDevicesPerJob(t *testing.T) {
	srv, err := New(Config{Workers: 1, Memory: 16, DevicesPerJob: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	run := func(id, alg string) {
		g := newGroup(t, id, alg, 81, 82, 8, 8)
		j, err := srv.Register(g.contract)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.pipeProvider(t, srv, g.provA, g.relA); err != nil {
			t.Fatal(err)
		}
		if err := g.pipeProvider(t, srv, g.provB, g.relB); err != nil {
			t.Fatal(err)
		}
		out := g.pipeRecipient(t, srv)
		waitDone(t, j)
		if o := <-out; o.err != nil {
			t.Fatal(o.err)
		} else {
			assertSameRows(t, o.result, g.wantJoin(), id)
		}
	}
	run("devices-par", "alg2")
	run("devices-seq", "alg1")
	snap := srv.MetricsSnapshot()
	if snap.Devices.ParallelRuns != 1 {
		t.Fatalf("parallel runs = %d, want 1", snap.Devices.ParallelRuns)
	}
	if snap.Devices.Attached != 5 { // 4 for alg2 + 1 for alg1
		t.Fatalf("attached = %d, want 5", snap.Devices.Attached)
	}
	if snap.Devices.Max != 4 {
		t.Fatalf("max devices = %d, want 4", snap.Devices.Max)
	}
}
