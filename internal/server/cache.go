package server

// sortedCache adapts the server's durable sort-cache store to the
// core.SortedCache interface Join7Cached consumes. A cache entry's rows are
// the obliviously sorted, sealed cells of one upload half; its key is the
// public tuple (contract, side, row count, upload digest) the service
// computes inside the seal boundary. Every failure mode — missing entry,
// evicted entry, torn segment — degrades to a miss: the join re-sorts cold
// and correctness never depends on the cache.
type sortedCache struct{ srv *Server }

// Lookup implements core.SortedCache.
func (c *sortedCache) Lookup(key string) ([][]byte, bool) {
	_, rows, err := c.srv.sortcache.Get(key)
	if err != nil {
		c.srv.metrics.sortCacheMiss()
		return nil, false
	}
	c.srv.metrics.sortCacheHit()
	return rows, true
}

// Store implements core.SortedCache. A duplicate key means a concurrent
// execution of the same contract over the same upload already stored the
// identical cells (the sort is deterministic), so the put is dropped; a
// tombstoned key (a past eviction) is cleared and retried once, since the
// caller is handing us a fresh, intact sorted form. Any other refusal —
// over-cap, journal failure — is logged and ignored: the entry is a reuse
// hint, not state the job depends on.
func (c *sortedCache) Store(key string, cells [][]byte) {
	err := c.srv.sortcache.Put(key, nil, cells)
	if err == nil {
		return
	}
	if c.srv.sortcache.Has(key) {
		return
	}
	c.srv.sortcache.Remove(key)
	if err := c.srv.sortcache.Put(key, nil, cells); err != nil {
		c.srv.logf("server: sort cache: storing %s: %v", key, err)
	}
}

// cacheJournal routes the sort-cache store's manifest events into the
// server's job Store, exactly as walJournal does for results: one log
// carries the job lifecycle, the result manifest, and the cache manifest,
// so one replay rebuilds all three.
type cacheJournal struct{ s *Server }

// ResultStored implements resultstore.Journal for the sort cache.
func (w cacheJournal) ResultStored(key string, size int64) error {
	if err := w.s.store.LogCacheStored(key, size); err != nil {
		w.s.metrics.walAppendFailed()
		w.s.logf("server: wal: cache stored %s: %v", key, err)
		return err
	}
	return nil
}

// ResultEvicted implements resultstore.Journal for the sort cache.
func (w cacheJournal) ResultEvicted(key, cause string) error {
	if err := w.s.store.LogCacheEvicted(key, cause); err != nil {
		w.s.metrics.walAppendFailed()
		w.s.logf("server: wal: cache evicted %s (%s): %v", key, cause, err)
		return err
	}
	return nil
}
