package server

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"ppj/internal/sim"
)

// Metrics is the server's observability surface: lock-free counters and
// gauges on the hot paths (submissions, state transitions, queue depth,
// aggregated coprocessor cost counters) plus a small mutex-guarded map of
// per-algorithm completion counts and latency summaries. Snapshot exports
// everything as one JSON-serialisable value through the admin method
// Server.MetricsSnapshot.
type Metrics struct {
	submitted   atomic.Uint64
	gauges      [numStates]atomic.Int64
	queueDepth  atomic.Int64
	walFailures atomic.Uint64
	cop         sim.AtomicStats

	// Recurring-contract outcomes: fired counts due schedules whose
	// re-execution was submitted; skipped counts due schedules whose fire
	// was refused (quota, backpressure, shutdown, journal failure) — the
	// schedule still advances, so a skip is a missed interval, not a stall.
	recurFired   atomic.Uint64
	recurSkipped atomic.Uint64

	// Sorted-relation cache outcomes: one count per side per execution that
	// consulted the cache (hit = the pre-sorted form was reused; miss = the
	// side sorted cold and, when possible, populated the cache).
	sortCacheHits   atomic.Uint64
	sortCacheMisses atomic.Uint64

	// Per-job device usage: how many executions ran with >1 coprocessor,
	// the total devices attached across executions, and the widest fleet.
	parallelRuns    atomic.Uint64
	devicesAttached atomic.Uint64
	maxDevices      atomic.Int64

	mu   sync.Mutex
	algs map[string]*algStats
}

type algStats struct {
	completed uint64
	failed    uint64
	samples   uint64
	total     time.Duration
	min       time.Duration
	max       time.Duration
}

func newMetrics() *Metrics {
	return &Metrics{algs: make(map[string]*algStats)}
}

// jobSubmitted counts a registration (a job entering Pending).
func (m *Metrics) jobSubmitted() {
	m.submitted.Add(1)
	m.gauges[StatePending].Add(1)
}

// jobRecovered counts a job rebuilt from the WAL directly into its
// recovered state — recovery bypasses the intermediate transitions, so the
// gauge invariant sum(gauges) == submitted is restored in one step.
func (m *Metrics) jobRecovered(to State) {
	m.submitted.Add(1)
	m.gauges[to].Add(1)
}

// stateMove keeps the per-state gauges consistent across a transition. The
// invariant sum(gauges) == submitted holds at all times; terminal states
// accumulate, so delivered + failed + (non-terminal states) == submitted.
func (m *Metrics) stateMove(from, to State) {
	m.gauges[from].Add(-1)
	m.gauges[to].Add(1)
}

// queueAdd adjusts the ready-queue depth gauge.
func (m *Metrics) queueAdd(delta int64) { m.queueDepth.Add(delta) }

// walAppendFailed counts a job state transition that could not be made
// durable (the WAL append failed, after which the log stays sealed). The
// in-memory lifecycle continues, so a non-zero count means the job table
// has drifted from what a crash would recover — a health alarm, not noise.
func (m *Metrics) walAppendFailed() { m.walFailures.Add(1) }

// recurrenceFired counts a due schedule whose re-execution was submitted.
func (m *Metrics) recurrenceFired() { m.recurFired.Add(1) }

// recurrenceSkipped counts a due schedule whose fire was refused.
func (m *Metrics) recurrenceSkipped() { m.recurSkipped.Add(1) }

// sortCacheHit counts one join side served from the sorted-relation cache.
func (m *Metrics) sortCacheHit() { m.sortCacheHits.Add(1) }

// sortCacheMiss counts one join side that consulted the cache and sorted
// cold.
func (m *Metrics) sortCacheMiss() { m.sortCacheMisses.Add(1) }

// recordRun records a worker-executed job: completion count and, for
// successful runs, the execution latency summary.
func (m *Metrics) recordRun(alg string, ok bool, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a := m.algs[alg]
	if a == nil {
		a = &algStats{}
		m.algs[alg] = a
	}
	if !ok {
		a.failed++
		return
	}
	a.completed++
	a.samples++
	a.total += d
	if a.samples == 1 || d < a.min {
		a.min = d
	}
	if d > a.max {
		a.max = d
	}
}

// recordFailure records a job that failed without running (backpressure,
// cancellation, deadline, shutdown).
func (m *Metrics) recordFailure(alg string) { m.recordRun(alg, false, 0) }

// addStats folds one execution's coprocessor cost counters into the
// server-wide aggregate.
func (m *Metrics) addStats(s sim.Stats) { m.cop.Add(s) }

// recordDevices records how many coprocessors one execution attached.
func (m *Metrics) recordDevices(n int) {
	if n < 1 {
		n = 1
	}
	m.devicesAttached.Add(uint64(n))
	if n > 1 {
		m.parallelRuns.Add(1)
	}
	for {
		cur := m.maxDevices.Load()
		if int64(n) <= cur || m.maxDevices.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// AlgSnapshot summarises one algorithm's completions.
type AlgSnapshot struct {
	Completed uint64  `json:"completed"`
	Failed    uint64  `json:"failed"`
	AvgMillis float64 `json:"avg_ms"`
	MinMillis float64 `json:"min_ms"`
	MaxMillis float64 `json:"max_ms"`
}

// Snapshot is a point-in-time view of the server's metrics, shaped for JSON.
type Snapshot struct {
	// Submitted counts every job ever registered.
	Submitted uint64 `json:"submitted"`
	// Jobs holds the current per-state gauges; terminal states accumulate,
	// so summing every state yields Submitted.
	Jobs map[string]int64 `json:"jobs"`
	// QueueDepth is the number of ready jobs waiting for a worker.
	QueueDepth int64 `json:"queue_depth"`
	// WALAppendFailures counts state transitions the WAL could not record;
	// non-zero means recovery after a crash would lag the live job table.
	WALAppendFailures uint64 `json:"wal_append_failures"`
	// Algorithms maps the executed algorithm ("alg1".."alg7", "aggregate";
	// for auto contracts, the planner's choice) to its completion summary.
	Algorithms map[string]AlgSnapshot `json:"algorithms"`
	// Coprocessor aggregates sim.Stats across every finished execution:
	// cells in/out of T, logical reads, comparisons, predicate
	// evaluations, disk requests.
	Coprocessor sim.Stats `json:"coprocessor"`
	// Devices summarises per-job coprocessor fleets.
	Devices DeviceSnapshot `json:"devices"`
	// ResultStoreBytes is the durable result store's live accounted bytes
	// (never above Config.MaxResultBytes when one is set).
	ResultStoreBytes int64 `json:"result_store_bytes"`
	// ResultStoreEvictions counts results evicted at runtime: TTL expiry,
	// LRU eviction under the byte cap, and segments that rotted on disk.
	ResultStoreEvictions uint64 `json:"result_store_evictions"`
	// ResultStoreRecoveryEvictions counts results lost at recovery — torn
	// segments, manifest records with no surviving segment, and orphan
	// segments the manifest never acknowledged.
	ResultStoreRecoveryEvictions uint64 `json:"result_store_recovery_evictions"`
	// SortCacheBytes is the sorted-relation cache's live accounted bytes.
	SortCacheBytes int64 `json:"sort_cache_bytes"`
	// SortCacheEvictions counts sort-cache entries dropped at runtime or
	// reconciled away at recovery (torn or orphan cache segments).
	SortCacheEvictions uint64 `json:"sort_cache_evictions"`
	// SortCacheHits and SortCacheMisses count per-side cache outcomes
	// across executions that consulted the sorted-relation cache.
	SortCacheHits   uint64 `json:"sort_cache_hits"`
	SortCacheMisses uint64 `json:"sort_cache_misses"`
	// Scheduler names the ready-queue discipline in force ("fair"/"fifo").
	Scheduler string `json:"scheduler"`
	// RecurrencesFired counts due recurring-contract schedules whose
	// re-execution was submitted; RecurrencesSkipped counts due schedules
	// whose fire was refused (quota, backpressure, shutdown).
	RecurrencesFired   uint64 `json:"recurrences_fired"`
	RecurrencesSkipped uint64 `json:"recurrences_skipped"`
}

// DeviceSnapshot summarises how many coprocessors jobs attached.
type DeviceSnapshot struct {
	// ParallelRuns counts executions that ran with more than one device.
	ParallelRuns uint64 `json:"parallel_runs"`
	// Attached is the total device count across every execution.
	Attached uint64 `json:"attached"`
	// Max is the widest fleet any execution used.
	Max int64 `json:"max"`
}

// Snapshot captures the current metrics.
func (m *Metrics) Snapshot() Snapshot {
	snap := Snapshot{
		Submitted:         m.submitted.Load(),
		Jobs:              make(map[string]int64, numStates),
		QueueDepth:        m.queueDepth.Load(),
		WALAppendFailures: m.walFailures.Load(),
		Algorithms:        make(map[string]AlgSnapshot),
		Coprocessor:       m.cop.Snapshot(),
		Devices: DeviceSnapshot{
			ParallelRuns: m.parallelRuns.Load(),
			Attached:     m.devicesAttached.Load(),
			Max:          m.maxDevices.Load(),
		},
	}
	for s := StatePending; s < numStates; s++ {
		snap.Jobs[s.String()] = m.gauges[s].Load()
	}
	m.mu.Lock()
	for alg, a := range m.algs {
		as := AlgSnapshot{Completed: a.completed, Failed: a.failed}
		if a.samples > 0 {
			as.AvgMillis = float64(a.total.Microseconds()) / float64(a.samples) / 1e3
			as.MinMillis = float64(a.min.Microseconds()) / 1e3
			as.MaxMillis = float64(a.max.Microseconds()) / 1e3
		}
		snap.Algorithms[alg] = as
	}
	m.mu.Unlock()
	return snap
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
