package server

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"ppj/internal/server/wal"
	"ppj/internal/service"
)

// TestAmbiguousHelloRejected: an ID-less hello is only routable while
// exactly one contract is registered. With two tenants the connection must
// fail fast with the typed routing error, not hang or pick a winner.
func TestAmbiguousHelloRejected(t *testing.T) {
	srv, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g1 := newGroup(t, "amb-1", "alg5", 111, 112, 4, 4)
	g2 := newGroup(t, "amb-2", "alg5", 113, 114, 4, 4)
	if _, err := srv.Register(g1.contract); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Register(g2.contract); err != nil {
		t.Fatal(err)
	}

	serverEnd, clientEnd := net.Pipe()
	handler := make(chan error, 1)
	go func() {
		defer serverEnd.Close()
		handler <- srv.HandleConn(serverEnd)
	}()
	go func() {
		// The client's handshake dies when the server drops the conn; the
		// handler's error is the verdict.
		_, _ = g1.client(g1.provA, srv).ConnectContract(clientEnd, service.RoleProvider, "")
		clientEnd.Close()
	}()
	select {
	case err := <-handler:
		if !errors.Is(err, ErrAmbiguousContract) {
			t.Fatalf("handler error = %v, want ErrAmbiguousContract", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ID-less hello hung instead of failing")
	}
}

// TestDuplicateUploadKeepsMetricsConsistent: a provider replaying its
// upload is rejected without disturbing the job lifecycle — the gauges
// stay consistent, the job still completes, and the recipient still gets
// the exact join.
func TestDuplicateUploadKeepsMetricsConsistent(t *testing.T) {
	srv, err := New(Config{Workers: 1, QueueDepth: 4, Memory: 16})
	if err != nil {
		t.Fatal(err)
	}
	g := newGroup(t, "dup-upload", "alg5", 121, 122, 5, 5)
	j, err := srv.Register(g.contract)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.pipeProvider(t, srv, g.provA, g.relA); err != nil {
		t.Fatal(err)
	}
	// Replay provA's upload, watching the handler's verdict directly (the
	// client side just sees its pipe close).
	serverEnd, clientEnd := net.Pipe()
	handler := make(chan error, 1)
	go func() {
		defer serverEnd.Close()
		handler <- srv.HandleConn(serverEnd)
	}()
	go func() {
		cs, err := g.client(g.provA, srv).ConnectContract(clientEnd, service.RoleProvider, g.contract.ID)
		if err == nil {
			_ = cs.SubmitRelation(g.contract.ID, g.relA)
		}
		clientEnd.Close()
	}()
	if err := <-handler; err == nil || !strings.Contains(err.Error(), "uploaded twice") {
		t.Fatalf("duplicate upload handler error = %v, want 'uploaded twice' rejection", err)
	}

	snap := srv.MetricsSnapshot()
	var sum int64
	for _, v := range snap.Jobs {
		sum += v
	}
	if uint64(sum) != snap.Submitted {
		t.Fatalf("gauges sum to %d after duplicate upload, submitted %d: %+v", sum, snap.Submitted, snap.Jobs)
	}
	if snap.Jobs["uploading"] != 1 {
		t.Fatalf("uploading gauge = %d after duplicate upload, want 1: %+v", snap.Jobs["uploading"], snap.Jobs)
	}

	// The rejected replay cost the job nothing: the legitimate second
	// provider and the recipient complete it.
	if err := g.pipeProvider(t, srv, g.provB, g.relB); err != nil {
		t.Fatal(err)
	}
	out := g.pipeRecipient(t, srv)
	srv.Start()
	waitDone(t, j)
	if j.State() != StateDelivered {
		t.Fatalf("job ended %s (%v), want Delivered", j.State(), j.Err())
	}
	if o := <-out; o.err != nil {
		t.Fatal(o.err)
	} else {
		assertSameRows(t, o.result, g.wantJoin(), "dup-upload")
	}
	snap = srv.MetricsSnapshot()
	if snap.Jobs["delivered"] != 1 || snap.Jobs["uploading"] != 0 {
		t.Fatalf("final gauges inconsistent: %+v", snap.Jobs)
	}
}

// TestLateRecipientAfterDelivery: delivery no longer drops the result —
// it lives in the durable result store — so a recipient that connects (or
// reconnects) after the job reached Delivered is served the exact join
// again from the store instead of the historical ErrResultUnavailable
// refusal.
func TestLateRecipientAfterDelivery(t *testing.T) {
	srv, err := New(Config{Workers: 1, Memory: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	g := newGroup(t, "late-recip", "alg5", 131, 132, 5, 5)
	j, err := srv.Register(g.contract)
	if err != nil {
		t.Fatal(err)
	}
	driveToDelivered(t, srv, g, j)
	o := <-g.pipeRecipient(t, srv)
	if o.err != nil {
		t.Fatalf("late recipient refused: %v (want a re-fetch from the result store)", o.err)
	}
	assertSameRows(t, o.result, g.wantJoin(), "late-recip")
}

// TestWALFailureCounterTracksLostTransitions: once an injected fsync
// failure seals the log, every later transition keeps running in memory
// but fails its append — and each one must be visible on the metrics
// surface, not just in per-transition log lines. Appends: 1=registration,
// 2=pending->uploading (fsync fails, seals the log), then
// uploading->running, the result-stored manifest record, running->stored,
// and stored->delivered all fail against the sealed log.
func TestWALFailureCounterTracksLostTransitions(t *testing.T) {
	dir := t.TempDir()
	faults := wal.NewFaults()
	faults.Set(wal.SiteSync, wal.FailNth(2, errors.New("fsync: injected I/O error")))
	srv, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	g := newGroup(t, "wal-alarm", "alg5", 133, 134, 5, 5)
	j, err := srv.Register(g.contract)
	if err != nil {
		t.Fatal(err)
	}
	driveToDelivered(t, srv, g, j)
	if got := srv.MetricsSnapshot().WALAppendFailures; got != 5 {
		t.Fatalf("wal_append_failures = %d, want 5 (every append after the seal)", got)
	}
}
