package server

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"ppj/internal/server/wal"
)

// renderExecutions is the deterministic per-execution view the
// re-execution crash suite asserts byte-for-byte: every execution of
// every contract, in registration then submission order, with job ID,
// sequence number, state, and failure cause.
func renderExecutions(s *Server) string {
	var b strings.Builder
	for _, id := range s.Registry().ContractIDs() {
		for _, j := range s.Registry().Executions(id) {
			fmt.Fprintf(&b, "%s seq=%d %s err=%v\n", j.ID(), j.Seq(), j.State(), j.Err())
		}
	}
	return b.String()
}

// TestCrashDuringResubmitLeavesNoGhost seals the WAL at the resubmission
// record's append: the caller gets the crash error, the in-memory
// registry keeps only the admitted execution, the quota slot acquired for
// the doomed re-execution is returned, and two successive restarts
// recover the identical single-execution history — byte-for-byte.
func TestCrashDuringResubmitLeavesNoGhost(t *testing.T) {
	dir := t.TempDir()
	faults := wal.NewFaults()
	faults.Set(SiteResubmit, wal.Always(wal.ErrCrashed))
	srv1, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, Faults: faults, TenantMaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	g := tenantGroup(t, "crash-resub", "acme", 40)
	if _, err := srv1.Register(g.contract); err != nil {
		t.Fatal(err)
	}
	if _, err := srv1.Resubmit(g.contract.ID); !errors.Is(err, wal.ErrCrashed) {
		t.Fatalf("resubmit against the sealed WAL = %v, want wrapped wal.ErrCrashed", err)
	}
	if n := len(srv1.Registry().Executions(g.contract.ID)); n != 1 {
		t.Fatalf("failed resubmission left %d executions in memory, want 1", n)
	}
	if held := srv1.quotas.InFlight("acme"); held != 1 {
		t.Fatalf("tenant holds %d slots after the failed resubmission, want 1 (the registration)", held)
	}

	srv2, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := "crash-resub seq=1 pending err=<nil>\n"
	if got := renderExecutions(srv2); got != want {
		t.Fatalf("recovered executions:\n%s\nwant:\n%s", got, want)
	}
	srv3, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderExecutions(srv3); got != want {
		t.Fatalf("second recovery diverged:\n%s\nwant:\n%s", got, want)
	}
}

// TestResubmissionRecoveredAcrossRestart runs a contract to delivery,
// resubmits, then "crashes" before the re-execution uploads anything. The
// restarted server rebuilds the full execution history — the delivered
// first run and the pending second run — restores the pending run's
// quota slot, and serves the re-execution WARM from the recovered
// sorted-relation cache. A further restart recovers the two-execution
// history identically (byte-for-byte against the pre-restart rendering).
func TestResubmissionRecoveredAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, TenantMaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv1.Start()
	relA, relB := genJoinSized(55, 16, 16, 6)
	g := newGroupRels(t, "resub-recover", "alg7", relA, relB)
	g.contract.Tenant = "acme"
	g.contract.Sign(0, g.provA.priv)
	g.contract.Sign(1, g.provB.priv)
	j1, err := srv1.Register(g.contract)
	if err != nil {
		t.Fatal(err)
	}
	runExecution(t, srv1, g, j1)
	if _, err := srv1.Resubmit(g.contract.ID); err != nil {
		t.Fatal(err)
	}
	// Crash here: the resubmission is journaled but never uploaded to.

	srv2, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, TenantMaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := "resub-recover seq=1 delivered err=<nil>\n" +
		"resub-recover#2 seq=2 pending err=<nil>\n"
	if got := renderExecutions(srv2); got != want {
		t.Fatalf("recovered executions:\n%s\nwant:\n%s", got, want)
	}
	if held := srv2.quotas.InFlight("acme"); held != 1 {
		t.Fatalf("recovery restored %d quota slots, want 1 (the pending re-execution)", held)
	}
	if bytes := srv2.MetricsSnapshot().SortCacheBytes; bytes <= 0 {
		t.Fatalf("recovery lost the sorted-relation cache (%d bytes)", bytes)
	}

	// The recovered pending job is live: the same uploads complete it, and
	// the recovered cache serves both sides warm.
	srv2.Start()
	j2, err := srv2.Registry().Lookup(g.contract.ID, g.contract.ID+"#2")
	if err != nil {
		t.Fatal(err)
	}
	base := srv2.MetricsSnapshot()
	runExecution(t, srv2, g, j2)
	end := srv2.MetricsSnapshot()
	if hits, misses := end.SortCacheHits-base.SortCacheHits, end.SortCacheMisses-base.SortCacheMisses; hits != 2 || misses != 0 {
		t.Fatalf("recovered re-execution: %d hits / %d misses, want 2/0 (warm from the recovered cache)", hits, misses)
	}
	if held := srv2.quotas.InFlight("acme"); held != 0 {
		t.Fatalf("tenant holds %d slots after the re-execution settled, want 0", held)
	}

	// Idempotence: restarting over the settled log reproduces the final
	// history exactly, twice.
	want = "resub-recover seq=1 delivered err=<nil>\n" +
		"resub-recover#2 seq=2 delivered err=<nil>\n"
	for i := 0; i < 2; i++ {
		srvN, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderExecutions(srvN); got != want {
			t.Fatalf("restart %d executions:\n%s\nwant:\n%s", i+2, got, want)
		}
	}
}

// TestTornCacheManifestEvictsOnlyCache fails every cache-manifest append:
// the execution still delivers (the cache is a hint, not state), but the
// stored sorted forms are unmanifested segments a restart treats as
// orphans. Recovery evicts ONLY the cached forms — the job history is
// intact and the contract is still runnable cold.
func TestTornCacheManifestEvictsOnlyCache(t *testing.T) {
	dir := t.TempDir()
	faults := wal.NewFaults()
	// ErrTornWrite (unlike ErrCrashed) does not seal the log: only the
	// cache-manifest appends fail, everything else stays journaled.
	faults.Set(SiteCacheStored, wal.Always(wal.ErrTornWrite))
	srv1, err := New(Config{Workers: 1, Memory: 16, DataDir: dir, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	srv1.Start()
	relA, relB := genJoinSized(66, 12, 12, 5)
	g := newGroupRels(t, "torn-cache", "alg7", relA, relB)
	j1, err := srv1.Register(g.contract)
	if err != nil {
		t.Fatal(err)
	}
	runExecution(t, srv1, g, j1)
	if snap := srv1.MetricsSnapshot(); snap.WALAppendFailures == 0 {
		t.Fatal("the injected cache-manifest failures were never hit")
	}

	srv2, err := New(Config{Workers: 1, Memory: 16, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	snap := srv2.MetricsSnapshot()
	if snap.SortCacheBytes != 0 {
		t.Fatalf("unmanifested cache segments survived recovery: %d bytes", snap.SortCacheBytes)
	}
	want := "torn-cache seq=1 delivered err=<nil>\n"
	if got := renderExecutions(srv2); got != want {
		t.Fatalf("recovered executions:\n%s\nwant:\n%s", got, want)
	}

	// Still runnable — cold: both sides miss and re-populate.
	srv2.Start()
	j2, err := srv2.Resubmit(g.contract.ID)
	if err != nil {
		t.Fatal(err)
	}
	base := srv2.MetricsSnapshot()
	runExecution(t, srv2, g, j2)
	end := srv2.MetricsSnapshot()
	if hits, misses := end.SortCacheHits-base.SortCacheHits, end.SortCacheMisses-base.SortCacheMisses; hits != 0 || misses != 2 {
		t.Fatalf("re-execution after cache loss: %d hits / %d misses, want 0/2 (cold)", hits, misses)
	}
	if end.SortCacheBytes <= 0 {
		t.Fatal("cold re-execution did not repopulate the cache")
	}
}
