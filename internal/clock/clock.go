// Package clock is the time seam shared by every layer that makes
// time-driven decisions: tenant token-bucket refill, result-store TTL
// expiry, and recurring-contract due-times. Production code reads the
// system clock through it; tests substitute a Fake whose hands move only
// when the test says so, which is what lets scheduling, quota, and
// eviction behavior be pinned deterministically (no sleeps, no flaky
// wall-clock margins).
package clock

import (
	"sync"
	"time"
)

// Clock is a source of the current instant.
type Clock interface {
	Now() time.Time
}

// System returns the real wall clock.
func System() Clock { return sysClock{} }

type sysClock struct{}

// Now implements Clock.
func (sysClock) Now() time.Time { return time.Now() }

// Fake is a manually advanced clock for tests. The zero value is not
// usable; construct with NewFake so the start instant is explicit.
type Fake struct {
	mu sync.Mutex
	t  time.Time
}

// NewFake builds a fake clock whose hands start at t.
func NewFake(t time.Time) *Fake { return &Fake{t: t} }

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

// Advance moves the clock forward by d and returns the new instant.
// Negative d is ignored: fake time, like real time, never runs backward.
func (f *Fake) Advance(d time.Duration) time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	if d > 0 {
		f.t = f.t.Add(d)
	}
	return f.t
}

// Set jumps the clock to t if t is not before the current instant.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if t.After(f.t) {
		f.t = t
	}
}

// NowFunc adapts the fake to the `func() time.Time` override seams
// (resultstore.Config.Now, server.Config.QuotaNow) so one Fake can drive
// every clock a test touches.
func (f *Fake) NowFunc() func() time.Time { return f.Now }
