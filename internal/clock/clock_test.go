package clock

import (
	"sync"
	"testing"
	"time"
)

func TestFakeAdvance(t *testing.T) {
	start := time.Unix(1_000, 0)
	f := NewFake(start)
	if got := f.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
	if got := f.Advance(3 * time.Second); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("Advance returned %v, want %v", got, start.Add(3*time.Second))
	}
	if got := f.Advance(-time.Hour); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("negative Advance moved the clock to %v", got)
	}
	f.Set(start) // in the past: ignored
	if got := f.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("Set into the past moved the clock to %v", got)
	}
	later := start.Add(time.Minute)
	f.Set(later)
	if got := f.Now(); !got.Equal(later) {
		t.Fatalf("Set(%v) left the clock at %v", later, got)
	}
}

func TestFakeNowFuncAndConcurrency(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	now := f.NowFunc()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				f.Advance(time.Millisecond)
				_ = now()
			}
		}()
	}
	wg.Wait()
	if got, want := f.Now(), time.Unix(8, 0); !got.Equal(want) {
		t.Fatalf("after 8000 1ms advances Now() = %v, want %v", got, want)
	}
}

func TestSystemClock(t *testing.T) {
	before := time.Now()
	got := System().Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("System().Now() = %v outside [%v, %v]", got, before, after)
	}
}
