package ocb

import (
	"crypto/aes"
	"testing"
)

func blockOf(b byte) [BlockSize]byte {
	var out [BlockSize]byte
	for i := range out {
		out[i] = b ^ byte(i)
	}
	return out
}

func TestIncrementalRoundTrip(t *testing.T) {
	m := testMode(t)
	nonce := nonceFrom(100)
	enc := m.NewIncremental(nonce)
	var cts [][BlockSize]byte
	for i := 0; i < 10; i++ {
		cts = append(cts, enc.EncryptBlock(blockOf(byte(i))))
	}
	tag := enc.Tag()

	dec := m.NewIncremental(nonce)
	for i, ct := range cts {
		pt := dec.DecryptBlock(ct)
		if pt != blockOf(byte(i)) {
			t.Fatalf("block %d round trip failed", i)
		}
	}
	if err := dec.Verify(tag); err != nil {
		t.Fatalf("tag verify: %v", err)
	}
	if enc.Blocks() != 10 || dec.Blocks() != 10 {
		t.Fatal("block counters wrong")
	}
}

func TestIncrementalPerRoundTags(t *testing.T) {
	// §4.4.1: the message keeps growing round after round, with a tag per
	// round covering the whole prefix.
	m := testMode(t)
	nonce := nonceFrom(101)
	enc := m.NewIncremental(nonce)
	dec := m.NewIncremental(nonce)
	for round := 0; round < 4; round++ {
		for i := 0; i < 5; i++ {
			ct := enc.EncryptBlock(blockOf(byte(round*5 + i)))
			dec.DecryptBlock(ct)
		}
		if err := dec.Verify(enc.Tag()); err != nil {
			t.Fatalf("round %d tag: %v", round, err)
		}
	}
}

func TestIncrementalTamperDetected(t *testing.T) {
	m := testMode(t)
	nonce := nonceFrom(102)
	enc := m.NewIncremental(nonce)
	ct1 := enc.EncryptBlock(blockOf(1))
	ct2 := enc.EncryptBlock(blockOf(2))
	tag := enc.Tag()

	dec := m.NewIncremental(nonce)
	ct1[3] ^= 0x40 // host flips a bit
	dec.DecryptBlock(ct1)
	dec.DecryptBlock(ct2)
	if err := dec.Verify(tag); err == nil {
		t.Fatal("tampered incremental message accepted")
	}
}

func TestOffsetAtMatchesSequentialWalk(t *testing.T) {
	m := testMode(t)
	nonce := nonceFrom(103)
	walk := m.NewIncremental(nonce)
	jump := m.NewIncremental(nonce)
	for i := uint64(1); i <= 200; i++ {
		walk.EncryptBlock(blockOf(byte(i)))
		z, err := jump.OffsetAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if z != walk.offset {
			t.Fatalf("OffsetAt(%d) diverges from the sequential walk", i)
		}
	}
}

func TestDecryptAtRandomAccess(t *testing.T) {
	// The oblivious sort's non-sequential reads: decrypt block n/2+1 without
	// walking there.
	m := testMode(t)
	nonce := nonceFrom(104)
	enc := m.NewIncremental(nonce)
	const n = 64
	var cts [n][BlockSize]byte
	for i := 0; i < n; i++ {
		cts[i] = enc.EncryptBlock(blockOf(byte(i)))
	}
	ro := m.NewIncremental(nonce)
	for _, i := range []uint64{n/2 + 1, 1, n, 13} {
		pt, err := ro.DecryptAt(i, cts[i-1])
		if err != nil {
			t.Fatal(err)
		}
		if pt != blockOf(byte(i-1)) {
			t.Fatalf("DecryptAt(%d) wrong plaintext", i)
		}
	}
}

func TestEncryptAtSwapPreservesTag(t *testing.T) {
	// A compare-exchange swaps two plaintext blocks in place; since the
	// checksum is an XOR of plaintexts, the round tag must stay valid —
	// the property that lets §4.4.1 sort scratch[] under one message.
	m := testMode(t)
	nonce := nonceFrom(105)
	enc := m.NewIncremental(nonce)
	const n = 8
	var cts [n][BlockSize]byte
	for i := 0; i < n; i++ {
		cts[i] = enc.EncryptBlock(blockOf(byte(i)))
	}
	tag := enc.Tag()

	// Swap blocks 2 and 5 (1-indexed 3 and 6) via random-access re-encryption.
	ro := m.NewIncremental(nonce)
	p3, err := ro.DecryptAt(3, cts[2])
	if err != nil {
		t.Fatal(err)
	}
	p6, err := ro.DecryptAt(6, cts[5])
	if err != nil {
		t.Fatal(err)
	}
	cts[2], err = ro.EncryptAt(3, p6)
	if err != nil {
		t.Fatal(err)
	}
	cts[5], err = ro.EncryptAt(6, p3)
	if err != nil {
		t.Fatal(err)
	}

	// A sequential verifier over the swapped ciphertexts still accepts.
	dec := m.NewIncremental(nonce)
	for i := 0; i < n; i++ {
		dec.DecryptBlock(cts[i])
	}
	if err := dec.Verify(tag); err != nil {
		t.Fatalf("tag after swap: %v", err)
	}
}

func TestOffsetAtOutOfRange(t *testing.T) {
	m := testMode(t)
	inc := m.NewIncremental(nonceFrom(106))
	if _, err := inc.OffsetAt(1 << 63); err == nil {
		t.Fatal("absurd block index accepted")
	}
}

func TestIncrementalSavesBlockCipherCalls(t *testing.T) {
	// Quantify the §4.4.1 saving: n blocks incrementally cost n+2 calls
	// (base offset + blocks + tag) versus 3n + 2n-ish for per-tuple Seal
	// (each one-block Seal costs base+pad+tag = block+... = 4 calls here).
	inner, err := aes.NewCipher(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	cb := &countingBlock{inner: inner}
	m, err := NewWithCipher(cb)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64

	cb.calls = 0
	inc := m.NewIncremental(nonceFrom(1))
	for i := 0; i < n; i++ {
		inc.EncryptBlock(blockOf(byte(i)))
	}
	inc.Tag()
	incremental := cb.calls

	cb.calls = 0
	for i := 0; i < n; i++ {
		m.Seal(nil, nonceFrom(uint64(i+10)), make([]byte, BlockSize))
	}
	perTuple := cb.calls

	if incremental != n+2 {
		t.Fatalf("incremental calls = %d, want n+2 = %d", incremental, n+2)
	}
	if perTuple != 3*n {
		t.Fatalf("per-tuple calls = %d, want 3n = %d", perTuple, 3*n)
	}
	if incremental*2 >= perTuple {
		t.Fatalf("chaining should cost well under half: %d vs %d", incremental, perTuple)
	}
}
