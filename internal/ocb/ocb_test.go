package ocb

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func testMode(t *testing.T) *Mode {
	t.Helper()
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i * 7)
	}
	m, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func nonceFrom(i uint64) [NonceSize]byte {
	var n [NonceSize]byte
	binary.BigEndian.PutUint64(n[8:], i)
	return n
}

func TestSealOpenRoundTrip(t *testing.T) {
	m := testMode(t)
	for _, size := range []int{0, 1, 15, 16, 17, 31, 32, 33, 64, 100, 1000} {
		pt := make([]byte, size)
		for i := range pt {
			pt[i] = byte(i)
		}
		nonce := nonceFrom(uint64(size))
		sealed := m.Seal(nil, nonce, pt)
		if len(sealed) != size+TagSize {
			t.Fatalf("size %d: sealed length %d, want %d", size, len(sealed), size+TagSize)
		}
		out, err := m.Open(nil, nonce, sealed)
		if err != nil {
			t.Fatalf("size %d: Open: %v", size, err)
		}
		if !bytes.Equal(out, pt) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	m := testMode(t)
	pt := []byte("attack at dawn, attack at dawn!!")
	nonce := nonceFrom(1)
	sealed := m.Seal(nil, nonce, pt)
	// Flip every single bit in turn; every flip must be detected.
	for i := 0; i < len(sealed); i++ {
		for b := 0; b < 8; b++ {
			mut := append([]byte(nil), sealed...)
			mut[i] ^= 1 << b
			if _, err := m.Open(nil, nonce, mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d not detected", i, b)
			}
		}
	}
}

func TestOpenRejectsWrongNonce(t *testing.T) {
	m := testMode(t)
	sealed := m.Seal(nil, nonceFrom(1), []byte("hello world"))
	if _, err := m.Open(nil, nonceFrom(2), sealed); err == nil {
		t.Fatal("wrong nonce accepted")
	}
}

func TestOpenRejectsTruncation(t *testing.T) {
	m := testMode(t)
	sealed := m.Seal(nil, nonceFrom(1), []byte("hello world"))
	if _, err := m.Open(nil, nonceFrom(1), sealed[:TagSize-1]); err != ErrTooShort {
		t.Fatal("short ciphertext not rejected with ErrTooShort")
	}
	if _, err := m.Open(nil, nonceFrom(1), sealed[:len(sealed)-1]); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
}

func TestSemanticSecurityAcrossNonces(t *testing.T) {
	// §4.3: "The semantically secure encryption generates indistinguishable
	// cipher texts from multiple encryptions of the same plain text". With
	// distinct nonces, equal plaintexts (e.g. decoys) must produce distinct
	// ciphertexts.
	m := testMode(t)
	pt := make([]byte, 32) // a decoy: fixed pattern
	seen := map[string]bool{}
	for i := uint64(0); i < 100; i++ {
		sealed := m.Seal(nil, nonceFrom(i), pt)
		if seen[string(sealed)] {
			t.Fatal("duplicate ciphertext for distinct nonces")
		}
		seen[string(sealed)] = true
	}
}

func TestDistinctKeysDistinctCiphertexts(t *testing.T) {
	m1 := testMode(t)
	key2 := make([]byte, 16)
	key2[0] = 0xAA
	m2, err := New(key2)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("same plaintext..")
	if bytes.Equal(m1.Seal(nil, nonceFrom(3), pt), m2.Seal(nil, nonceFrom(3), pt)) {
		t.Fatal("two keys produced the same ciphertext")
	}
	if _, err := m2.Open(nil, nonceFrom(3), m1.Seal(nil, nonceFrom(3), pt)); err == nil {
		t.Fatal("cross-key Open succeeded")
	}
}

func TestSealAppendsToDst(t *testing.T) {
	m := testMode(t)
	prefix := []byte("prefix")
	sealed := m.Seal(append([]byte(nil), prefix...), nonceFrom(9), []byte("payload"))
	if !bytes.HasPrefix(sealed, prefix) {
		t.Fatal("Seal did not append to dst")
	}
	body := sealed[len(prefix):]
	out, err := m.Open(append([]byte(nil), prefix...), nonceFrom(9), body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, append(prefix, []byte("payload")...)) {
		t.Fatal("Open did not append to dst")
	}
}

func TestRoundTripProperty(t *testing.T) {
	m := testMode(t)
	var ctr uint64
	f := func(pt []byte) bool {
		ctr++
		nonce := nonceFrom(ctr)
		out, err := m.Open(nil, nonce, m.Seal(nil, nonce, pt))
		return err == nil && bytes.Equal(out, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTamperDetectionProperty(t *testing.T) {
	m := testMode(t)
	rng := rand.New(rand.NewPCG(11, 13))
	var ctr uint64
	f := func(pt []byte) bool {
		ctr++
		nonce := nonceFrom(ctr)
		sealed := m.Seal(nil, nonce, pt)
		i := rng.IntN(len(sealed))
		sealed[i] ^= byte(1 + rng.IntN(255))
		_, err := m.Open(nil, nonce, sealed)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadKeys(t *testing.T) {
	if _, err := New(make([]byte, 5)); err == nil {
		t.Fatal("5-byte key accepted")
	}
	for _, n := range []int{16, 24, 32} {
		if _, err := New(make([]byte, n)); err != nil {
			t.Fatalf("%d-byte key rejected: %v", n, err)
		}
	}
}

// fakeBlock is a 64-bit-block cipher used to check block-size validation.
type fakeBlock struct{}

func (fakeBlock) BlockSize() int          { return 8 }
func (fakeBlock) Encrypt(dst, src []byte) { copy(dst, src) }
func (fakeBlock) Decrypt(dst, src []byte) { copy(dst, src) }

func TestNewWithCipherValidatesBlockSize(t *testing.T) {
	if _, err := NewWithCipher(fakeBlock{}); err == nil {
		t.Fatal("64-bit block cipher accepted")
	}
}

func TestDoubleHalveInverse(t *testing.T) {
	f := func(b [BlockSize]byte) bool {
		return halveBlock(doubleBlock(b)) == b && doubleBlock(halveBlock(b)) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// countingBlock wraps a real cipher and counts calls, to verify the m+2
// block-cipher-call claim the paper uses to justify choosing OCB (§3.3.3).
type countingBlock struct {
	inner cipher.Block
	calls int
}

func (c *countingBlock) BlockSize() int { return c.inner.BlockSize() }
func (c *countingBlock) Encrypt(dst, src []byte) {
	c.calls++
	c.inner.Encrypt(dst, src)
}
func (c *countingBlock) Decrypt(dst, src []byte) {
	c.calls++
	c.inner.Decrypt(dst, src)
}

func TestBlockCipherCallCount(t *testing.T) {
	inner, err := aes.NewCipher(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	cb := &countingBlock{inner: inner}
	m, err := NewWithCipher(cb)
	if err != nil {
		t.Fatal(err)
	}
	setup := cb.calls // E_K(0^n) during init
	if setup != 1 {
		t.Fatalf("setup calls = %d, want 1", setup)
	}
	for _, blocks := range []int{1, 2, 5, 8} {
		cb.calls = 0
		m.Seal(nil, nonceFrom(uint64(blocks)), make([]byte, blocks*BlockSize))
		// m blocks: base offset (1) + m-1 full blocks + pad (1) + tag (1) = m+2.
		if want := blocks + 2; cb.calls != want {
			t.Fatalf("%d blocks: %d cipher calls, want m+2 = %d", blocks, cb.calls, want)
		}
	}
}

func TestGoldenVectors(t *testing.T) {
	// Pinned self-consistency vectors: any change to the offset schedule,
	// checksum or tag derivation shows up here. (OCB1 has no official
	// public test vectors for this exact parameterisation; these were
	// generated by this implementation and guard against regressions.)
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i)
	}
	m, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		n    int
		want string
	}{
		{0, "15d37dd7c890d5d6acab927bc0dc60ee"},
		{5, "4baf5df29a62963fd080da3a6198070465696df6bd"},
		{16, "c7c3de699ddc3113ef0229d12e148137dd99bfaf745f3741ca1cd25ea11ca720"},
		{33, "21e5878abff7c488618668b4f1ce10245044ca4b751c993b3f32c74e893f44117320b9adae38dce95732d58897bb8b2ed4"},
	}
	for _, g := range golden {
		pt := make([]byte, g.n)
		for i := range pt {
			pt[i] = byte(0xA0 + i)
		}
		nonce := nonceFrom(uint64(g.n) + 1)
		got := hex.EncodeToString(m.Seal(nil, nonce, pt))
		if got != g.want {
			t.Errorf("n=%d: sealed %s, want %s", g.n, got, g.want)
		}
	}
}
