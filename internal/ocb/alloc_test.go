// The race detector instruments allocations, so the zero-alloc pin only
// holds on normal builds.
//go:build !race

package ocb

import "testing"

// TestSealOpenZeroAlloc pins the allocation discipline of the append-style
// API: with reused destination buffers a steady-state Seal+Open round trip
// must not touch the heap. The batched transfer paths in internal/sim rely
// on this to keep the coprocessor hot loops allocation-free.
func TestSealOpenZeroAlloc(t *testing.T) {
	m, err := New(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	var nonce [NonceSize]byte
	pt := make([]byte, 64)
	ct := make([]byte, 0, len(pt)+TagSize)
	out := make([]byte, 0, len(pt))

	allocs := testing.AllocsPerRun(100, func() {
		nonce[0]++
		ct = m.Seal(ct[:0], nonce, pt)
		var err error
		out, err = m.Open(out[:0], nonce, ct)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Seal+Open round trip allocates %.1f times, want 0", allocs)
	}
}
