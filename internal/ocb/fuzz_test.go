package ocb

import (
	"bytes"
	"testing"
)

// FuzzSealOpen drives the authenticated encryption with arbitrary keys,
// nonces and plaintexts: every Seal must Open to the original bytes, and
// any single-byte corruption must be rejected.
func FuzzSealOpen(f *testing.F) {
	f.Add([]byte("0123456789abcdef"), uint64(1), []byte("hello"), uint8(0))
	f.Add(bytes.Repeat([]byte{7}, 24), uint64(2), []byte{}, uint8(3))
	f.Add(bytes.Repeat([]byte{9}, 32), uint64(3), bytes.Repeat([]byte{0xAA}, 100), uint8(50))
	f.Fuzz(func(t *testing.T, key []byte, nonceWord uint64, pt []byte, corrupt uint8) {
		switch len(key) {
		case 16, 24, 32:
		default:
			t.Skip()
		}
		m, err := New(key)
		if err != nil {
			t.Skip()
		}
		nonce := nonceFrom(nonceWord)
		sealed := m.Seal(nil, nonce, pt)
		out, err := m.Open(nil, nonce, sealed)
		if err != nil {
			t.Fatalf("honest open failed: %v", err)
		}
		if !bytes.Equal(out, pt) {
			t.Fatal("round trip mismatch")
		}
		// Corrupt one byte somewhere and demand rejection.
		idx := int(corrupt) % len(sealed)
		sealed[idx] ^= 0x01
		if _, err := m.Open(nil, nonce, sealed); err == nil {
			t.Fatalf("corruption at byte %d accepted", idx)
		}
	})
}
