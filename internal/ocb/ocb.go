// Package ocb implements the OCB authenticated-encryption mode of Rogaway,
// Bellare and Black ("OCB: A Block-Cipher Mode of Operation for Efficient
// Authenticated Encryption", ACM TISSEC 2003) over any 128-bit block cipher.
//
// The paper (§3.3.3) selects OCB over XCBC and IAPM because it needs only
// m+2 block-cipher calls to process m blocks, and relies on two of its
// provable properties: ciphertexts are indistinguishable from random bits
// (so decoy tuples and real result tuples cannot be told apart, and
// duplicate tuples encrypt differently under fresh nonces), and no adversary
// can forge a valid (nonce, ciphertext, tag) triple (so the host cannot
// tamper with tuples undetected).
//
// This implementation follows the OCB1 structure described in the paper:
//
//	Z[0]     = E_K(N ⊕ E_K(0ⁿ))                    (nonce-derived base offset)
//	Z[i]     = Z[i-1] ⊕ L(ntz(i))                  (Gray-code offset schedule)
//	C[i]     = E_K(M[i] ⊕ Z[i]) ⊕ Z[i]             for 1 ≤ i < m
//	Pad      = E_K(len(M[m]) ⊕ L·x⁻¹ ⊕ Z[m])
//	C[m]     = M[m] ⊕ (first |M[m]| bits of Pad)
//	Checksum = M[1] ⊕ … ⊕ M[m-1] ⊕ C[m]0* ⊕ Pad
//	Tag      = first τ bits of E_K(Checksum ⊕ Z[m])
//
// where L = E_K(0ⁿ), L(j) = x^j·L in GF(2¹²⁸), and ntz(i) is the number of
// trailing zeros of i.
package ocb

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// BlockSize is the cipher block size in bytes; OCB as specified here
// requires a 128-bit block cipher.
const BlockSize = 16

// TagSize is the authentication-tag length τ in bytes. We use the full block
// (τ = 128), the most conservative choice.
const TagSize = 16

// NonceSize is the nonce length in bytes (one block, per OCB1).
const NonceSize = 16

var (
	// ErrAuth is returned when a ciphertext fails tag verification: the
	// paper's T terminates the computation on this signal (§3.3.1).
	ErrAuth = errors.New("ocb: message authentication failed")
	// ErrTooShort is returned for ciphertexts shorter than a tag.
	ErrTooShort = errors.New("ocb: ciphertext too short")
)

// Mode is an OCB instance bound to one key. It is safe for concurrent use
// after construction; per-message state lives on the stack or in a pooled
// scratch buffer, so steady-state Seal/Open with reused destination buffers
// never allocates.
type Mode struct {
	block cipher.Block
	// l[j] = x^j · L precomputed for j up to maxL.
	l [64][BlockSize]byte
	// lInv = L · x⁻¹ used in the final-block pad.
	lInv [BlockSize]byte
	// encZero = E_K(0^n), mixed into the base offset.
	encZero [BlockSize]byte
}

// New constructs an OCB mode over AES with the given 16-, 24- or 32-byte
// key.
func New(key []byte) (*Mode, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("ocb: %w", err)
	}
	return NewWithCipher(block)
}

// NewWithCipher constructs an OCB mode over an arbitrary 128-bit block
// cipher (exposed for tests with instrumented ciphers).
func NewWithCipher(block cipher.Block) (*Mode, error) {
	if block.BlockSize() != BlockSize {
		return nil, fmt.Errorf("ocb: need a %d-byte block cipher, got %d",
			BlockSize, block.BlockSize())
	}
	m := &Mode{block: block}
	var zero [BlockSize]byte
	block.Encrypt(m.encZero[:], zero[:])
	m.l[0] = m.encZero
	for j := 1; j < len(m.l); j++ {
		m.l[j] = doubleBlock(m.l[j-1])
	}
	m.lInv = halveBlock(m.l[0])
	return m, nil
}

// Overhead is the ciphertext expansion in bytes (tag only; the caller
// transmits the nonce separately or prepends it).
func (m *Mode) Overhead() int { return TagSize }

// scratch holds the block temporaries that are handed to the cipher.Block
// interface. A stack array passed through an interface call escapes to the
// heap, so the hot paths borrow one of these from a pool instead, keeping
// steady-state Seal/Open allocation-free.
type scratch struct {
	tmp, pad, tag, z [BlockSize]byte
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Seal encrypts and authenticates plaintext under the given nonce, appending
// the result to dst. The output layout is ciphertext || tag; its length is
// len(plaintext) + TagSize. Nonces must never repeat under one key.
func (m *Mode) Seal(dst []byte, nonce [NonceSize]byte, plaintext []byte) []byte {
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	offset := m.baseOffset(s, nonce)
	var checksum [BlockSize]byte

	out := append(dst, make([]byte, len(plaintext)+TagSize)...)
	ct := out[len(dst) : len(dst)+len(plaintext)]

	full := len(plaintext) / BlockSize
	rem := len(plaintext) % BlockSize
	// When the plaintext is a whole number of blocks, OCB still treats the
	// last block as the "final" (possibly short) block.
	if rem == 0 && full > 0 {
		full--
		rem = BlockSize
	}

	for i := 0; i < full; i++ {
		offset = xorBlocks(offset, m.l[ntz(uint64(i+1))])
		pt := plaintext[i*BlockSize : (i+1)*BlockSize]
		checksum = xorBytes(checksum, pt)
		copy(s.tmp[:], pt)
		s.tmp = xorBlocks(s.tmp, offset)
		m.block.Encrypt(s.tmp[:], s.tmp[:])
		s.tmp = xorBlocks(s.tmp, offset)
		copy(ct[i*BlockSize:], s.tmp[:])
	}

	// Final block.
	offset = xorBlocks(offset, m.l[ntz(uint64(full+1))])
	var lenBlock [BlockSize]byte
	binary.BigEndian.PutUint64(lenBlock[8:], uint64(rem)*8)
	s.pad = xorBlocks(xorBlocks(lenBlock, m.lInv), offset)
	m.block.Encrypt(s.pad[:], s.pad[:])

	final := plaintext[full*BlockSize:]
	for i := 0; i < rem; i++ {
		ct[full*BlockSize+i] = final[i] ^ s.pad[i]
	}
	// Checksum ⊕= C[m]0* ⊕ Pad (per the OCB1 definition quoted in §3.3.3).
	var cm [BlockSize]byte
	copy(cm[:], ct[full*BlockSize:full*BlockSize+rem])
	checksum = xorBlocks(checksum, cm)
	checksum = xorBlocks(checksum, s.pad)

	s.tag = xorBlocks(checksum, offset)
	m.block.Encrypt(s.tag[:], s.tag[:])
	copy(out[len(dst)+len(plaintext):], s.tag[:TagSize])
	return out
}

// Open verifies and decrypts a Seal output under the given nonce, appending
// the plaintext to dst. It returns ErrAuth when the tag does not verify.
func (m *Mode) Open(dst []byte, nonce [NonceSize]byte, sealed []byte) ([]byte, error) {
	if len(sealed) < TagSize {
		return nil, ErrTooShort
	}
	ct := sealed[:len(sealed)-TagSize]
	wantTag := sealed[len(sealed)-TagSize:]

	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	offset := m.baseOffset(s, nonce)
	var checksum [BlockSize]byte

	out := append(dst, make([]byte, len(ct))...)
	pt := out[len(dst):]

	full := len(ct) / BlockSize
	rem := len(ct) % BlockSize
	if rem == 0 && full > 0 {
		full--
		rem = BlockSize
	}

	for i := 0; i < full; i++ {
		offset = xorBlocks(offset, m.l[ntz(uint64(i+1))])
		copy(s.tmp[:], ct[i*BlockSize:(i+1)*BlockSize])
		s.tmp = xorBlocks(s.tmp, offset)
		m.block.Decrypt(s.tmp[:], s.tmp[:])
		s.tmp = xorBlocks(s.tmp, offset)
		copy(pt[i*BlockSize:], s.tmp[:])
		checksum = xorBytes(checksum, pt[i*BlockSize:(i+1)*BlockSize])
	}

	offset = xorBlocks(offset, m.l[ntz(uint64(full+1))])
	var lenBlock [BlockSize]byte
	binary.BigEndian.PutUint64(lenBlock[8:], uint64(rem)*8)
	s.pad = xorBlocks(xorBlocks(lenBlock, m.lInv), offset)
	m.block.Encrypt(s.pad[:], s.pad[:])

	for i := 0; i < rem; i++ {
		pt[full*BlockSize+i] = ct[full*BlockSize+i] ^ s.pad[i]
	}
	var cm [BlockSize]byte
	copy(cm[:], ct[full*BlockSize:full*BlockSize+rem])
	checksum = xorBlocks(checksum, cm)
	checksum = xorBlocks(checksum, s.pad)

	s.tag = xorBlocks(checksum, offset)
	m.block.Encrypt(s.tag[:], s.tag[:])
	if subtle.ConstantTimeCompare(s.tag[:TagSize], wantTag) != 1 {
		return nil, ErrAuth
	}
	return out, nil
}

// baseOffset computes Z[0] = E_K(N ⊕ E_K(0ⁿ)).
func (m *Mode) baseOffset(s *scratch, nonce [NonceSize]byte) [BlockSize]byte {
	s.z = xorBlocks(nonce, m.encZero)
	m.block.Encrypt(s.z[:], s.z[:])
	return s.z
}

// ntz returns the number of trailing zeros of i ≥ 1 (the Gray-code offset
// index of OCB).
func ntz(i uint64) int { return bits.TrailingZeros64(i) }

// doubleBlock multiplies a block by x in GF(2¹²⁸) with the OCB polynomial
// x¹²⁸ + x⁷ + x² + x + 1 (constant 0x87).
func doubleBlock(b [BlockSize]byte) [BlockSize]byte {
	var out [BlockSize]byte
	carry := b[0] >> 7
	for i := 0; i < BlockSize-1; i++ {
		out[i] = b[i]<<1 | b[i+1]>>7
	}
	out[BlockSize-1] = b[BlockSize-1] << 1
	out[BlockSize-1] ^= carry * 0x87
	return out
}

// halveBlock multiplies a block by x⁻¹ in the same field.
func halveBlock(b [BlockSize]byte) [BlockSize]byte {
	var out [BlockSize]byte
	lsb := b[BlockSize-1] & 1
	for i := BlockSize - 1; i > 0; i-- {
		out[i] = b[i]>>1 | b[i-1]<<7
	}
	out[0] = b[0] >> 1
	if lsb == 1 {
		// x⁻¹ = x¹²⁷ + x⁶ + x + 1 for this polynomial.
		out[0] ^= 0x80
		out[BlockSize-1] ^= 0x43
	}
	return out
}

func xorBlocks(a, b [BlockSize]byte) [BlockSize]byte {
	var out [BlockSize]byte
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

func xorBytes(a [BlockSize]byte, b []byte) [BlockSize]byte {
	for i := range b {
		a[i] ^= b[i]
	}
	return a
}
