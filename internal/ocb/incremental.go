package ocb

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"math/bits"
)

// This file implements the thesis's §4.4.1 encryption strategy for the
// scratch array: treat the tuples of a round as blocks of ONE evolving OCB
// message, keeping the running offset Z[i] and Checksum across appends and
// emitting a tag per round. Compared to sealing each tuple separately
// (m+2 block-cipher calls per tuple), appending to an incremental message
// costs one call per block plus two per tag — the constant-factor saving
// the thesis's scheme buys, which TestIncrementalSavesBlockCipherCalls
// quantifies.
//
// The thesis also describes random access inside the message: "In order to
// decrypt the (n/2+1)-th element without sequentially decrypting every
// tuple before it, we apply the function f(·,·) i = n/2 times". Because
// OCB's offsets are Gray-code combinations of the precomputed L(j) values,
// OffsetAt jumps to Z[i] in O(popcount(gray(i))) XORs instead — strictly
// better than the thesis's linear walk, with identical results.

// ErrIncrementalAuth is returned when an incremental tag fails to verify.
var ErrIncrementalAuth = errors.New("ocb: incremental message authentication failed")

// Incremental encrypts a growing sequence of whole blocks under one nonce,
// maintaining OCB's running offset and checksum. Whole-block granularity
// matches the fixed-size-tuple setting (§4.1).
type Incremental struct {
	m        *Mode
	base     [BlockSize]byte // Z[0]
	offset   [BlockSize]byte // Z[i]
	checksum [BlockSize]byte
	i        uint64
}

// NewIncremental starts an incremental message under a fresh nonce (one
// nonce per round / sort stage, as §4.4.1 prescribes).
func (m *Mode) NewIncremental(nonce [NonceSize]byte) *Incremental {
	s := scratchPool.Get().(*scratch)
	base := m.baseOffset(s, nonce)
	scratchPool.Put(s)
	return &Incremental{m: m, base: base, offset: base}
}

// Blocks returns the number of blocks appended so far.
func (inc *Incremental) Blocks() uint64 { return inc.i }

// EncryptBlock appends one plaintext block, returning its ciphertext:
// C[i] = E_K(T[i] ⊕ Z[i]) ⊕ Z[i], Checksum ⊕= T[i].
func (inc *Incremental) EncryptBlock(pt [BlockSize]byte) [BlockSize]byte {
	inc.i++
	inc.offset = xorBlocks(inc.offset, inc.m.l[ntz(inc.i)])
	inc.checksum = xorBlocks(inc.checksum, pt)
	tmp := xorBlocks(pt, inc.offset)
	inc.m.block.Encrypt(tmp[:], tmp[:])
	return xorBlocks(tmp, inc.offset)
}

// DecryptBlock appends one ciphertext block, returning its plaintext and
// maintaining the same running state (used by the verifying reader).
func (inc *Incremental) DecryptBlock(ct [BlockSize]byte) [BlockSize]byte {
	inc.i++
	inc.offset = xorBlocks(inc.offset, inc.m.l[ntz(inc.i)])
	tmp := xorBlocks(ct, inc.offset)
	inc.m.block.Decrypt(tmp[:], tmp[:])
	pt := xorBlocks(tmp, inc.offset)
	inc.checksum = xorBlocks(inc.checksum, pt)
	return pt
}

// Tag authenticates everything appended so far:
// E_K(Checksum ⊕ Z[i] ⊕ L·x⁻¹). It may be called repeatedly (per round)
// as the message keeps growing; each call covers the whole prefix.
func (inc *Incremental) Tag() [TagSize]byte {
	t := xorBlocks(xorBlocks(inc.checksum, inc.offset), inc.m.lInv)
	inc.m.block.Encrypt(t[:], t[:])
	return t
}

// Verify compares an expected tag in constant time, returning
// ErrIncrementalAuth on mismatch ("if T accepts the 2N tuples it just
// decrypted, it continues to the next step, otherwise, it terminates").
func (inc *Incremental) Verify(tag [TagSize]byte) error {
	got := inc.Tag()
	if subtle.ConstantTimeCompare(got[:], tag[:]) != 1 {
		return ErrIncrementalAuth
	}
	return nil
}

// OffsetAt computes Z[i] for 1-indexed block i directly from the Gray-code
// structure: Z[i] = Z[0] ⊕ ⨁_{j ∈ bits(gray(i))} L(j).
func (inc *Incremental) OffsetAt(i uint64) ([BlockSize]byte, error) {
	if i == 0 {
		return inc.base, nil
	}
	if i >= 1<<62 {
		// No real message reaches 2^62 blocks; the guard keeps the Gray
		// arithmetic trivially inside the precomputed L(j) table.
		return [BlockSize]byte{}, fmt.Errorf("ocb: block index %d out of range", i)
	}
	g := i ^ (i >> 1) // Gray code
	z := inc.base
	for g != 0 {
		j := bits.TrailingZeros64(g)
		z = xorBlocks(z, inc.m.l[j])
		g &= g - 1
	}
	return z, nil
}

// DecryptAt decrypts the 1-indexed block i out of order, without touching
// the running state (the non-sequential access of the oblivious sort). The
// caller remains responsible for tag verification over the full message.
func (inc *Incremental) DecryptAt(i uint64, ct [BlockSize]byte) ([BlockSize]byte, error) {
	z, err := inc.OffsetAt(i)
	if err != nil {
		return [BlockSize]byte{}, err
	}
	tmp := xorBlocks(ct, z)
	inc.m.block.Decrypt(tmp[:], tmp[:])
	return xorBlocks(tmp, z), nil
}

// EncryptAt re-encrypts the 1-indexed block i out of order (the write-back
// half of a compare-exchange). As with DecryptAt, checksum maintenance is
// the caller's concern: swapping two plaintext blocks leaves the message
// checksum unchanged, which is why the §4.4.1 scheme stays consistent
// across oblivious sorting.
func (inc *Incremental) EncryptAt(i uint64, pt [BlockSize]byte) ([BlockSize]byte, error) {
	z, err := inc.OffsetAt(i)
	if err != nil {
		return [BlockSize]byte{}, err
	}
	tmp := xorBlocks(pt, z)
	inc.m.block.Encrypt(tmp[:], tmp[:])
	return xorBlocks(tmp, z), nil
}
