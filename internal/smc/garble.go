package smc

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// labelSize is the wire-label length in bytes (128-bit labels).
const labelSize = 16

// Label is a wire label: a random key standing for one bit value of one
// wire, carrying a point-and-permute select bit in its lowest bit of the
// last byte.
type Label [labelSize]byte

func (l Label) selectBit() int { return int(l[labelSize-1] & 1) }

// GarbledGate is the 4-row encrypted truth table of one gate, ordered by
// the select bits of the input labels (point-and-permute).
type GarbledGate [4][labelSize]byte

// GarbledCircuit is what the garbler sends the evaluator: the encrypted
// tables plus the decoding of the output wires' select bits.
type GarbledCircuit struct {
	Circuit *Circuit
	Gates   []GarbledGate
	// OutputDecode[i] is the select bit that means "false" on output wire i.
	OutputDecode []int
}

// Garbling is the garbler's private state: every wire's pair of labels.
type Garbling struct {
	Circuit *Circuit
	// Labels[w][b] is wire w's label for bit value b.
	Labels [][2]Label
	GC     *GarbledCircuit
}

// Size returns the transfer size of the garbled tables in bytes, used by
// the cost comparison.
func (gc *GarbledCircuit) Size() int {
	return len(gc.Gates) * 4 * labelSize
}

// Garble produces a fresh garbling of the circuit.
func Garble(c *Circuit) (*Garbling, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	labels := make([][2]Label, c.NumWires())
	for w := range labels {
		if _, err := rand.Read(labels[w][0][:]); err != nil {
			return nil, fmt.Errorf("smc: garbling randomness: %w", err)
		}
		if _, err := rand.Read(labels[w][1][:]); err != nil {
			return nil, fmt.Errorf("smc: garbling randomness: %w", err)
		}
		// Force complementary select bits so point-and-permute works.
		labels[w][1][labelSize-1] = labels[w][0][labelSize-1] ^ 1
	}
	gc := &GarbledCircuit{Circuit: c, Gates: make([]GarbledGate, len(c.Gates))}
	for gi, g := range c.Gates {
		tab, err := g.Op.table()
		if err != nil {
			return nil, err
		}
		for va := 0; va < 2; va++ {
			for vb := 0; vb < 2; vb++ {
				la := labels[g.In0][va]
				lb := labels[g.In1][vb]
				outBit := 0
				if tab[va<<1|vb] {
					outBit = 1
				}
				row := la.selectBit()<<1 | lb.selectBit()
				pad := gateKDF(la, lb, gi)
				var ct [labelSize]byte
				lout := labels[g.Out][outBit]
				for k := 0; k < labelSize; k++ {
					ct[k] = lout[k] ^ pad[k]
				}
				gc.Gates[gi][row] = ct
			}
		}
	}
	gc.OutputDecode = make([]int, len(c.Outputs))
	for i, o := range c.Outputs {
		gc.OutputDecode[i] = labels[o][0].selectBit()
	}
	return &Garbling{Circuit: c, Labels: labels, GC: gc}, nil
}

// InputLabel returns the label encoding bit value v on input wire w, the
// garbler's side of input delivery (its own inputs directly; the
// evaluator's via oblivious transfer).
func (g *Garbling) InputLabel(wire int, v bool) (Label, error) {
	if wire < 0 || wire >= g.Circuit.NumInputs() {
		return Label{}, fmt.Errorf("smc: wire %d is not an input", wire)
	}
	b := 0
	if v {
		b = 1
	}
	return g.Labels[wire][b], nil
}

// Evaluate runs the garbled circuit on one label per input wire and decodes
// the output bits. The evaluator learns nothing about non-output wire
// values: it sees exactly one label per wire and the tables are encrypted
// under label pairs it does not hold.
func Evaluate(gc *GarbledCircuit, inputs []Label) ([]bool, error) {
	c := gc.Circuit
	if len(inputs) != c.NumInputs() {
		return nil, fmt.Errorf("smc: got %d input labels, want %d", len(inputs), c.NumInputs())
	}
	wires := make([]Label, c.NumWires())
	copy(wires, inputs)
	for gi, g := range c.Gates {
		la, lb := wires[g.In0], wires[g.In1]
		row := la.selectBit()<<1 | lb.selectBit()
		pad := gateKDF(la, lb, gi)
		var out Label
		ct := gc.Gates[gi][row]
		for k := 0; k < labelSize; k++ {
			out[k] = ct[k] ^ pad[k]
		}
		wires[g.Out] = out
	}
	outs := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		outs[i] = wires[o].selectBit() != gc.OutputDecode[i]
	}
	return outs, nil
}

// gateKDF derives the row pad H(la ‖ lb ‖ gate) for garbling and evaluation.
func gateKDF(la, lb Label, gate int) [labelSize]byte {
	h := sha256.New()
	h.Write(la[:])
	h.Write(lb[:])
	var gid [8]byte
	binary.BigEndian.PutUint64(gid[:], uint64(gate))
	h.Write(gid[:])
	var out [labelSize]byte
	copy(out[:], h.Sum(nil))
	return out
}

// constantTimeLabelEqual is used by tests to compare labels without
// branching on secret data.
func constantTimeLabelEqual(a, b Label) bool {
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}

// ErrBadLabel is returned when an evaluation produces an undecodable
// output (not used by the honest protocol; exported for robustness tests).
var ErrBadLabel = errors.New("smc: output label does not decode")
