package smc

import (
	"testing"
	"testing/quick"
)

func TestBandCircuitEval(t *testing.T) {
	for _, band := range []uint64{0, 1, 3, 7} {
		c, err := BandCircuit(8, band)
		if err != nil {
			t.Fatal(err)
		}
		f := func(a, b uint8) bool {
			out, err := c.Eval(bits(uint64(a), 8), bits(uint64(b), 8))
			if err != nil {
				return false
			}
			var diff uint64
			if a > b {
				diff = uint64(a - b)
			} else {
				diff = uint64(b - a)
			}
			return out[0] == (diff <= band)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("band=%d: %v", band, err)
		}
	}
}

func TestGreaterEqualCircuitEval(t *testing.T) {
	c, err := GreaterEqualCircuit(8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		out, err := c.Eval(bits(uint64(a), 8), bits(uint64(b), 8))
		if err != nil {
			return false
		}
		return out[0] == (a >= b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandCircuitGarbled(t *testing.T) {
	// The band comparator must also evaluate correctly under garbling — the
	// full SMC path for the paper's non-equality predicate.
	c, err := BandCircuit(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		a, b uint64
		want bool
	}{
		{10, 12, true}, {10, 13, false}, {12, 10, true}, {13, 10, false},
		{0, 0, true}, {63, 61, true}, {63, 60, false},
	} {
		g, err := Garble(c)
		if err != nil {
			t.Fatal(err)
		}
		inputs := make([]Label, c.NumInputs())
		for i := 0; i < 6; i++ {
			inputs[i], _ = g.InputLabel(i, tc.a>>i&1 == 1)
			inputs[6+i], _ = g.InputLabel(6+i, tc.b>>i&1 == 1)
		}
		out, err := Evaluate(g.GC, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != tc.want {
			t.Fatalf("|%d-%d|<=2 garbled = %v, want %v", tc.a, tc.b, out[0], tc.want)
		}
	}
}

func TestBandCircuitValidation(t *testing.T) {
	if _, err := BandCircuit(0, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := BandCircuit(63, 1); err == nil {
		t.Error("width 63 accepted")
	}
	if _, err := BandCircuit(4, 16); err == nil {
		t.Error("band exceeding range accepted")
	}
	if _, err := GreaterEqualCircuit(0); err == nil {
		t.Error("zero width accepted by GreaterEqualCircuit")
	}
}

func TestBandCircuitGateCountLinear(t *testing.T) {
	// §4.6.5 assumes Ge(w) = Θ(w) for threshold matching; the ripple-carry
	// construction is linear in w.
	c8, _ := BandCircuit(8, 3)
	c16, _ := BandCircuit(16, 3)
	if len(c16.Gates) > 3*len(c8.Gates) {
		t.Fatalf("gate growth not ~linear: %d -> %d", len(c8.Gates), len(c16.Gates))
	}
}

func TestPrivateBandJoin(t *testing.T) {
	alice := []uint64{10, 20, 30}
	bob := []uint64{12, 27, 100}
	pairs, stats, err := PrivateBandJoin(8, 3, alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	// |10-12|=2<=3 and |30-27|=3<=3 join; nothing else does.
	want := map[[2]int]bool{{0, 0}: true, {2, 1}: true}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if !want[p] {
			t.Fatalf("unexpected pair %v", p)
		}
	}
	if stats.Pairs != 9 || stats.OTs != 9*8 {
		t.Fatalf("stats = %+v", stats)
	}
}
