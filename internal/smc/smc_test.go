package smc

import (
	"math/big"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEqualityCircuitEval(t *testing.T) {
	c, err := EqualityCircuit(8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		out, err := c.Eval(bits(uint64(a), 8), bits(uint64(b), 8))
		if err != nil {
			return false
		}
		return out[0] == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLessThanCircuitEval(t *testing.T) {
	c, err := LessThanCircuit(8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		out, err := c.Eval(bits(uint64(a), 8), bits(uint64(b), 8))
		if err != nil {
			return false
		}
		return out[0] == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCircuitValidation(t *testing.T) {
	bad := &Circuit{GarblerBits: 1, EvaluatorBits: 1,
		Gates:   []Gate{{Op: AND, In0: 0, In1: 5, Out: 2}},
		Outputs: []int{2}}
	if err := bad.Validate(); err == nil {
		t.Error("undefined input wire accepted")
	}
	bad2 := &Circuit{GarblerBits: 1, EvaluatorBits: 1,
		Gates:   []Gate{{Op: AND, In0: 0, In1: 1, Out: 7}},
		Outputs: []int{7}}
	if err := bad2.Validate(); err == nil {
		t.Error("non-sequential output wire accepted")
	}
	if _, err := EqualityCircuit(0); err == nil {
		t.Error("zero width accepted")
	}
	noOut := &Circuit{GarblerBits: 1, EvaluatorBits: 1}
	if err := noOut.Validate(); err == nil {
		t.Error("no outputs accepted")
	}
}

func TestGarbledEvalMatchesPlain(t *testing.T) {
	for _, w := range []int{1, 4, 8} {
		for _, build := range []func(int) (*Circuit, error){EqualityCircuit, LessThanCircuit} {
			c, err := build(w)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 8; trial++ {
				a := uint64(trial * 37 % (1 << w))
				b := uint64(trial * 11 % (1 << w))
				g, err := Garble(c)
				if err != nil {
					t.Fatal(err)
				}
				inputs := make([]Label, c.NumInputs())
				for i := 0; i < w; i++ {
					inputs[i], _ = g.InputLabel(i, a>>i&1 == 1)
					inputs[w+i], _ = g.InputLabel(w+i, b>>i&1 == 1)
				}
				got, err := Evaluate(g.GC, inputs)
				if err != nil {
					t.Fatal(err)
				}
				want, _ := c.Eval(bits(a, w), bits(b, w))
				if got[0] != want[0] {
					t.Fatalf("w=%d a=%d b=%d: garbled %v, plain %v", w, a, b, got[0], want[0])
				}
			}
		}
	}
}

func TestGarblingFresh(t *testing.T) {
	c, _ := EqualityCircuit(2)
	g1, _ := Garble(c)
	g2, _ := Garble(c)
	if constantTimeLabelEqual(g1.Labels[0][0], g2.Labels[0][0]) {
		t.Fatal("two garblings share labels")
	}
}

func TestInputLabelValidation(t *testing.T) {
	c, _ := EqualityCircuit(2)
	g, _ := Garble(c)
	if _, err := g.InputLabel(99, false); err == nil {
		t.Fatal("non-input wire accepted")
	}
	if _, err := Evaluate(g.GC, make([]Label, 1)); err == nil {
		t.Fatal("wrong input count accepted")
	}
}

func TestOTRoundTrip(t *testing.T) {
	s, err := NewOTSender()
	if err != nil {
		t.Fatal(err)
	}
	offer := s.Offer()
	m0, m1 := big.NewInt(111111), big.NewInt(222222)
	for _, b := range []int{0, 1} {
		r, err := NewOTReceiver(offer, b)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := s.Respond(r.Query(), m0, m1)
		if err != nil {
			t.Fatal(err)
		}
		got := r.Recover(resp)
		want := m0
		if b == 1 {
			want = m1
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("choice %d: got %v, want %v", b, got, want)
		}
	}
}

func TestOTHidesOtherMessage(t *testing.T) {
	// The receiver's recovery of the non-chosen message must be garbage
	// (not equal to it) except with negligible probability.
	s, err := NewOTSender()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewOTReceiver(s.Offer(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m0, m1 := big.NewInt(111111), big.NewInt(222222)
	resp, err := s.Respond(r.Query(), m0, m1)
	if err != nil {
		t.Fatal(err)
	}
	// Apply the receiver's unblinding to the wrong slot.
	wrong := new(big.Int).Mod(new(big.Int).Sub(resp.M1, r.k), s.Offer().N)
	if wrong.Cmp(m1) == 0 {
		t.Fatal("receiver recovered the non-chosen message")
	}
}

func TestOTValidation(t *testing.T) {
	s, err := NewOTSender()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOTReceiver(s.Offer(), 2); err == nil {
		t.Error("bad choice bit accepted")
	}
	big0 := new(big.Int).Add(s.Offer().N, big.NewInt(1))
	if _, err := s.Respond(big.NewInt(1), big0, big.NewInt(1)); err == nil {
		t.Error("oversized message accepted")
	}
}

func TestTransferLabel(t *testing.T) {
	var l0, l1 Label
	for i := range l0 {
		l0[i], l1[i] = byte(i), byte(255-i)
	}
	for _, choice := range []int{0, 1} {
		got, bytes, err := TransferLabel(l0, l1, choice)
		if err != nil {
			t.Fatal(err)
		}
		want := l0
		if choice == 1 {
			want = l1
		}
		if !constantTimeLabelEqual(got, want) {
			t.Fatalf("choice %d: wrong label", choice)
		}
		if bytes <= 0 {
			t.Fatal("no bytes accounted")
		}
	}
}

func TestPrivateEqualityJoin(t *testing.T) {
	alice := []uint64{3, 7, 7, 12}
	bob := []uint64{7, 9, 3}
	pairs, stats, err := PrivateEqualityJoin{Width: 8}.Run(alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 2}, {1, 0}, {2, 0}}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
	if stats.Pairs != 12 || stats.OTs != 12*8 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.TotalBytes <= 0 {
		t.Fatal("no communication accounted")
	}
	// The headline point: even this toy join moves hundreds of kilobytes
	// for a 4x3 input — the coprocessor moves dozens of tuples.
	if stats.TotalBytes < 10_000 {
		t.Fatalf("SMC communication suspiciously low: %d bytes", stats.TotalBytes)
	}
}

func TestPrivateEqualityJoinValidation(t *testing.T) {
	if _, _, err := (PrivateEqualityJoin{Width: 0}).Run(nil, nil); err == nil {
		t.Error("zero width accepted")
	}
	if _, _, err := (PrivateEqualityJoin{Width: 65}).Run(nil, nil); err == nil {
		t.Error("width > 64 accepted")
	}
}

func TestMillionaire(t *testing.T) {
	cases := []struct {
		alice, bob uint64
		want       bool
	}{
		{5, 9, true}, {9, 5, false}, {7, 7, false}, {0, 1, true},
	}
	for _, tc := range cases {
		got, stats, err := Millionaire(tc.alice, tc.bob, 8)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("Millionaire(%d,%d) = %v, want %v", tc.alice, tc.bob, got, tc.want)
		}
		if stats.OTs != 8 {
			t.Fatalf("stats = %+v", stats)
		}
	}
}

// bits converts v to a little-endian bit slice of width w.
func bits(v uint64, w int) []bool {
	out := make([]bool, w)
	for i := range out {
		out[i] = v>>i&1 == 1
	}
	return out
}
