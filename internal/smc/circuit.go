// Package smc implements the secure multi-party computation baseline the
// paper compares against (§2.1, §4.6.5, §5.4): a working two-party Yao
// garbled-circuit evaluator with RSA-based 1-out-of-2 oblivious transfer,
// plus a private equality-join protocol built on them.
//
// The thesis evaluates SMC analytically (Eqn 5.8, reproduced in
// internal/costmodel); this package additionally makes the baseline
// executable at toy scale, so the benchmarks can demonstrate — not just
// assert — that general SMC is orders of magnitude more expensive than the
// coprocessor algorithms: an SMC join evaluates one garbled circuit per
// tuple pair and runs w oblivious transfers per pair, each costing public
// key operations and kilobytes of transfer, versus a handful of AES
// operations per pair inside the coprocessor.
package smc

import (
	"errors"
	"fmt"
)

// GateOp distinguishes the supported gate kinds. Arbitrary two-input gates
// are encoded by their truth table, which is what the garbler consumes.
type GateOp uint8

const (
	// AND outputs a ∧ b.
	AND GateOp = iota
	// XOR outputs a ⊕ b.
	XOR
	// OR outputs a ∨ b.
	OR
	// XNOR outputs ¬(a ⊕ b) — the bit-equality gate.
	XNOR
)

// table returns the gate's truth table indexed by a<<1|b.
func (op GateOp) table() ([4]bool, error) {
	switch op {
	case AND:
		return [4]bool{false, false, false, true}, nil
	case XOR:
		return [4]bool{false, true, true, false}, nil
	case OR:
		return [4]bool{false, true, true, true}, nil
	case XNOR:
		return [4]bool{true, false, false, true}, nil
	default:
		return [4]bool{}, fmt.Errorf("smc: unknown gate op %d", op)
	}
}

// Gate is a two-input boolean gate: Out = op(In0, In1). Wire indices below
// NumInputs refer to input wires; others to gate outputs.
type Gate struct {
	Op       GateOp
	In0, In1 int
	Out      int
}

// Circuit is a boolean circuit over single-bit wires. Wires
// [0, GarblerBits) belong to the garbler's input, wires
// [GarblerBits, GarblerBits+EvaluatorBits) to the evaluator's; gates are in
// topological order and outputs name the result wires.
type Circuit struct {
	GarblerBits   int
	EvaluatorBits int
	Gates         []Gate
	Outputs       []int
	numWires      int
}

// NumInputs is the total number of input wires.
func (c *Circuit) NumInputs() int { return c.GarblerBits + c.EvaluatorBits }

// NumWires is the total number of wires (inputs + gate outputs).
func (c *Circuit) NumWires() int { return c.numWires }

// Validate checks topological ordering and wire ranges, computing NumWires.
func (c *Circuit) Validate() error {
	if c.GarblerBits < 0 || c.EvaluatorBits < 0 || c.NumInputs() == 0 {
		return errors.New("smc: circuit needs input wires")
	}
	defined := c.NumInputs()
	for gi, g := range c.Gates {
		if g.In0 >= defined || g.In1 >= defined || g.In0 < 0 || g.In1 < 0 {
			return fmt.Errorf("smc: gate %d reads undefined wire", gi)
		}
		if g.Out != defined {
			return fmt.Errorf("smc: gate %d must define wire %d, defines %d", gi, defined, g.Out)
		}
		if _, err := g.Op.table(); err != nil {
			return err
		}
		defined++
	}
	for _, o := range c.Outputs {
		if o < 0 || o >= defined {
			return fmt.Errorf("smc: output wire %d undefined", o)
		}
	}
	if len(c.Outputs) == 0 {
		return errors.New("smc: circuit needs outputs")
	}
	c.numWires = defined
	return nil
}

// Eval computes the circuit in the clear (the correctness oracle for the
// garbled evaluation). garbler and evaluator are little-endian bit slices.
func (c *Circuit) Eval(garbler, evaluator []bool) ([]bool, error) {
	if len(garbler) != c.GarblerBits || len(evaluator) != c.EvaluatorBits {
		return nil, fmt.Errorf("smc: input sizes %d/%d, want %d/%d",
			len(garbler), len(evaluator), c.GarblerBits, c.EvaluatorBits)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	wires := make([]bool, c.numWires)
	copy(wires, garbler)
	copy(wires[c.GarblerBits:], evaluator)
	for _, g := range c.Gates {
		tab, _ := g.Op.table()
		idx := 0
		if wires[g.In0] {
			idx |= 2
		}
		if wires[g.In1] {
			idx |= 1
		}
		wires[g.Out] = tab[idx]
	}
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = wires[o]
	}
	return out, nil
}

// EqualityCircuit builds the w-bit equality comparator: XNOR each bit pair,
// AND-reduce. Gate count 2w−1, matching the Ge(w) = Θ(w) gate-count
// assumption of §4.6.5.
func EqualityCircuit(w int) (*Circuit, error) {
	if w <= 0 {
		return nil, errors.New("smc: width must be positive")
	}
	c := &Circuit{GarblerBits: w, EvaluatorBits: w}
	next := 2 * w
	var xnors []int
	for i := 0; i < w; i++ {
		c.Gates = append(c.Gates, Gate{Op: XNOR, In0: i, In1: w + i, Out: next})
		xnors = append(xnors, next)
		next++
	}
	acc := xnors[0]
	for i := 1; i < w; i++ {
		c.Gates = append(c.Gates, Gate{Op: AND, In0: acc, In1: xnors[i], Out: next})
		acc = next
		next++
	}
	c.Outputs = []int{acc}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// LessThanCircuit builds the w-bit unsigned comparator a < b (the
// millionaire problem of Yao's 1982 paper, §2.1): scanning from the most
// significant bit, lt = lt ∨ (eq ∧ ¬a_i ∧ b_i), eq = eq ∧ (a_i ≡ b_i).
func LessThanCircuit(w int) (*Circuit, error) {
	if w <= 0 {
		return nil, errors.New("smc: width must be positive")
	}
	c := &Circuit{GarblerBits: w, EvaluatorBits: w}
	next := 2 * w
	add := func(op GateOp, in0, in1 int) int {
		c.Gates = append(c.Gates, Gate{Op: op, In0: in0, In1: in1, Out: next})
		next++
		return next - 1
	}
	// Bits are little-endian; scan from MSB (index w-1) down.
	lt := -1
	eq := -1
	for i := w - 1; i >= 0; i-- {
		ai, bi := i, w+i
		xnor := add(XNOR, ai, bi)
		// notA&b = (a XOR b) AND b
		axb := add(XOR, ai, bi)
		nab := add(AND, axb, bi)
		if lt < 0 {
			lt = nab
			eq = xnor
			continue
		}
		step := add(AND, eq, nab)
		lt = add(OR, lt, step)
		eq = add(AND, eq, xnor)
	}
	c.Outputs = []int{lt}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
