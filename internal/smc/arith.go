package smc

import (
	"errors"
	"fmt"
)

// This file extends the circuit library with ripple-carry arithmetic so the
// SMC baseline covers the paper's non-equality predicates too — the thesis
// stresses that "joins involving arbitrary predicates, e.g. <, are
// important as well as fairly common" (§1.1), and §4.6.5's gate-count
// argument uses an L1-norm threshold circuit. BandCircuit realises
// |a − b| ≤ w as (a < b+w+1) ∧ (b < a+w+1) over widened adders.

// builder accumulates gates with automatic wire numbering.
type builder struct {
	c    *Circuit
	next int
}

func newBuilder(garblerBits, evaluatorBits int) *builder {
	c := &Circuit{GarblerBits: garblerBits, EvaluatorBits: evaluatorBits}
	return &builder{c: c, next: garblerBits + evaluatorBits}
}

func (b *builder) gate(op GateOp, in0, in1 int) int {
	b.c.Gates = append(b.c.Gates, Gate{Op: op, In0: in0, In1: in1, Out: b.next})
	b.next++
	return b.next - 1
}

// constFalse materialises a 0 wire as x XOR x.
func (b *builder) constFalse(anyWire int) int {
	return b.gate(XOR, anyWire, anyWire)
}

// constTrue materialises a 1 wire as x XNOR x.
func (b *builder) constTrue(anyWire int) int {
	return b.gate(XNOR, anyWire, anyWire)
}

// fullAdder returns (sum, carryOut) for bits x, y and carry c:
// sum = x ⊕ y ⊕ c; carry = (x ∧ y) ∨ (c ∧ (x ⊕ y)).
func (b *builder) fullAdder(x, y, c int) (sum, carry int) {
	xy := b.gate(XOR, x, y)
	sum = b.gate(XOR, xy, c)
	and1 := b.gate(AND, x, y)
	and2 := b.gate(AND, c, xy)
	carry = b.gate(OR, and1, and2)
	return sum, carry
}

// addConst adds a constant to a little-endian wire vector, widening by one
// carry bit.
func (b *builder) addConst(xs []int, k uint64) []int {
	zero := b.constFalse(xs[0])
	one := b.constTrue(xs[0])
	carry := zero
	out := make([]int, 0, len(xs)+1)
	for i, x := range xs {
		kb := zero
		if k>>uint(i)&1 == 1 {
			kb = one
		}
		var s int
		s, carry = b.fullAdder(x, kb, carry)
		out = append(out, s)
	}
	return append(out, carry)
}

// lessThan returns the wire a < b over two equal-width little-endian
// vectors, scanning from the most significant bit.
func (b *builder) lessThan(as, bs []int) int {
	lt, eq := -1, -1
	for i := len(as) - 1; i >= 0; i-- {
		xnor := b.gate(XNOR, as[i], bs[i])
		axb := b.gate(XOR, as[i], bs[i])
		nab := b.gate(AND, axb, bs[i]) // ¬a ∧ b
		if lt < 0 {
			lt, eq = nab, xnor
			continue
		}
		step := b.gate(AND, eq, nab)
		lt = b.gate(OR, lt, step)
		eq = b.gate(AND, eq, xnor)
	}
	return lt
}

// BandCircuit builds the w-bit band-join comparator |a − b| ≤ band: the
// garbler holds a, the evaluator b, and the single output bit says whether
// they join under the paper's band predicate.
func BandCircuit(w int, band uint64) (*Circuit, error) {
	if w <= 0 || w > 62 {
		return nil, errors.New("smc: width out of range")
	}
	if band >= 1<<uint(w) {
		return nil, fmt.Errorf("smc: band %d exceeds %d-bit range", band, w)
	}
	b := newBuilder(w, w)
	as := make([]int, w)
	bs := make([]int, w)
	for i := 0; i < w; i++ {
		as[i], bs[i] = i, w+i
	}
	// |a−b| <= band  <=>  a <= b+band ∧ b <= a+band
	//                <=>  a < b+band+1 ∧ b < a+band+1  (no overflow: widened)
	zero := b.constFalse(0)
	aw := append(append([]int{}, as...), zero) // widen a and b to w+1 bits
	bw := append(append([]int{}, bs...), zero)
	bPlus := b.addConst(bs, band+1) // w+1 bits (carry kept)
	aPlus := b.addConst(as, band+1)
	// Align widths: addConst returns w+1 bits; aw/bw are w+1 bits.
	lt1 := b.lessThan(aw, bPlus[:len(aw)])
	lt2 := b.lessThan(bw, aPlus[:len(bw)])
	out := b.gate(AND, lt1, lt2)
	b.c.Outputs = []int{out}
	if err := b.c.Validate(); err != nil {
		return nil, err
	}
	return b.c, nil
}

// GreaterEqualCircuit builds a ≥ b as ¬(a < b).
func GreaterEqualCircuit(w int) (*Circuit, error) {
	if w <= 0 || w > 64 {
		return nil, errors.New("smc: width out of range")
	}
	b := newBuilder(w, w)
	as := make([]int, w)
	bs := make([]int, w)
	for i := 0; i < w; i++ {
		as[i], bs[i] = i, w+i
	}
	lt := b.lessThan(as, bs)
	one := b.constTrue(0)
	out := b.gate(XOR, lt, one) // ¬lt
	b.c.Outputs = []int{out}
	if err := b.c.Validate(); err != nil {
		return nil, err
	}
	return b.c, nil
}
