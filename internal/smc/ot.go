package smc

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"math/big"
)

// This file implements the classic RSA-based 1-out-of-2 oblivious transfer
// (Even–Goldreich–Lempel). The §4.6.5 cost analysis counts "|B|·w 1-out-of-2
// oblivious transfers where each oblivious transfer uses one public key
// encryption"; this is that primitive, used to deliver the evaluator's
// input-wire labels without revealing the chosen bits to the garbler.
//
// The protocol (messages as big integers mod N):
//
//	Sender:   RSA key (N, e, d); random group elements x₀, x₁  → receiver
//	Receiver: secret bit b, random k; v = (x_b + k^e) mod N     → sender
//	Sender:   k_i = (v − x_i)^d; m'_i = m_i + k_i mod N         → receiver
//	Receiver: m_b = (m'_b − k) mod N
//
// The sender cannot tell which x_i was used (v is uniform either way); the
// receiver learns only m_b because k_{1−b} is an RSA preimage it cannot
// compute.

// OTSender holds the sender's per-transfer state.
type OTSender struct {
	key    *rsa.PrivateKey
	x0, x1 *big.Int
}

// OTOffer is the sender's first message.
type OTOffer struct {
	N      *big.Int
	E      int
	X0, X1 *big.Int
}

// OTResponse is the sender's final message: both messages blinded.
type OTResponse struct {
	M0, M1 *big.Int
}

// otKeyBits sizes the RSA modulus. 1024 bits keeps the toy benchmarks fast;
// a deployment would use ≥3072.
const otKeyBits = 1024

// NewOTSender generates the transfer keys and random offers.
func NewOTSender() (*OTSender, error) {
	key, err := rsa.GenerateKey(rand.Reader, otKeyBits)
	if err != nil {
		return nil, fmt.Errorf("smc: OT keygen: %w", err)
	}
	x0, err := rand.Int(rand.Reader, key.N)
	if err != nil {
		return nil, err
	}
	x1, err := rand.Int(rand.Reader, key.N)
	if err != nil {
		return nil, err
	}
	return &OTSender{key: key, x0: x0, x1: x1}, nil
}

// Offer returns the sender's first message.
func (s *OTSender) Offer() OTOffer {
	return OTOffer{N: s.key.N, E: s.key.E, X0: s.x0, X1: s.x1}
}

// Respond blinds both messages given the receiver's v. Messages must be
// smaller than the modulus.
func (s *OTSender) Respond(v *big.Int, m0, m1 *big.Int) (OTResponse, error) {
	if m0.Cmp(s.key.N) >= 0 || m1.Cmp(s.key.N) >= 0 || m0.Sign() < 0 || m1.Sign() < 0 {
		return OTResponse{}, fmt.Errorf("smc: OT messages out of range")
	}
	d := s.key.D
	n := s.key.N
	k0 := new(big.Int).Exp(new(big.Int).Mod(new(big.Int).Sub(v, s.x0), n), d, n)
	k1 := new(big.Int).Exp(new(big.Int).Mod(new(big.Int).Sub(v, s.x1), n), d, n)
	r0 := new(big.Int).Mod(new(big.Int).Add(m0, k0), n)
	r1 := new(big.Int).Mod(new(big.Int).Add(m1, k1), n)
	return OTResponse{M0: r0, M1: r1}, nil
}

// OTReceiver holds the receiver's per-transfer state.
type OTReceiver struct {
	offer OTOffer
	b     int
	k     *big.Int
}

// NewOTReceiver starts a transfer for choice bit b against an offer.
func NewOTReceiver(offer OTOffer, b int) (*OTReceiver, error) {
	if b != 0 && b != 1 {
		return nil, fmt.Errorf("smc: choice bit %d", b)
	}
	k, err := rand.Int(rand.Reader, offer.N)
	if err != nil {
		return nil, err
	}
	return &OTReceiver{offer: offer, b: b, k: k}, nil
}

// Query computes v = (x_b + k^e) mod N.
func (r *OTReceiver) Query() *big.Int {
	ke := new(big.Int).Exp(r.k, big.NewInt(int64(r.offer.E)), r.offer.N)
	x := r.offer.X0
	if r.b == 1 {
		x = r.offer.X1
	}
	return new(big.Int).Mod(new(big.Int).Add(x, ke), r.offer.N)
}

// Recover extracts m_b from the response.
func (r *OTReceiver) Recover(resp OTResponse) *big.Int {
	m := resp.M0
	if r.b == 1 {
		m = resp.M1
	}
	return new(big.Int).Mod(new(big.Int).Sub(m, r.k), r.offer.N)
}

// TransferLabel runs a complete in-process OT delivering one of two wire
// labels, returning the chosen label and the bytes exchanged (for the cost
// accounting).
func TransferLabel(l0, l1 Label, choice int) (Label, int, error) {
	s, err := NewOTSender()
	if err != nil {
		return Label{}, 0, err
	}
	offer := s.Offer()
	r, err := NewOTReceiver(offer, choice)
	if err != nil {
		return Label{}, 0, err
	}
	v := r.Query()
	m0 := new(big.Int).SetBytes(l0[:])
	m1 := new(big.Int).SetBytes(l1[:])
	resp, err := s.Respond(v, m0, m1)
	if err != nil {
		return Label{}, 0, err
	}
	got := r.Recover(resp)
	var out Label
	gb := got.Bytes()
	if len(gb) > labelSize {
		return Label{}, 0, fmt.Errorf("smc: recovered label too long")
	}
	copy(out[labelSize-len(gb):], gb)
	bytes := bigLen(offer.N) + bigLen(offer.X0) + bigLen(offer.X1) +
		bigLen(v) + bigLen(resp.M0) + bigLen(resp.M1)
	return out, bytes, nil
}

func bigLen(x *big.Int) int { return (x.BitLen() + 7) / 8 }

// OTBatch amortises the RSA key generation over many transfers, the way
// practical SMC systems do: one modulus, fresh random offers (x₀, x₁) and
// blinding per transfer, so individual choices remain unlinkable.
type OTBatch struct {
	key *rsa.PrivateKey
}

// NewOTBatch generates the shared RSA key.
func NewOTBatch() (*OTBatch, error) {
	key, err := rsa.GenerateKey(rand.Reader, otKeyBits)
	if err != nil {
		return nil, fmt.Errorf("smc: OT batch keygen: %w", err)
	}
	return &OTBatch{key: key}, nil
}

// Transfer runs one complete 1-out-of-2 OT under the shared key, returning
// the chosen label and the bytes exchanged.
func (b *OTBatch) Transfer(l0, l1 Label, choice int) (Label, int, error) {
	x0, err := rand.Int(rand.Reader, b.key.N)
	if err != nil {
		return Label{}, 0, err
	}
	x1, err := rand.Int(rand.Reader, b.key.N)
	if err != nil {
		return Label{}, 0, err
	}
	s := &OTSender{key: b.key, x0: x0, x1: x1}
	offer := s.Offer()
	r, err := NewOTReceiver(offer, choice)
	if err != nil {
		return Label{}, 0, err
	}
	v := r.Query()
	resp, err := s.Respond(v, new(big.Int).SetBytes(l0[:]), new(big.Int).SetBytes(l1[:]))
	if err != nil {
		return Label{}, 0, err
	}
	got := r.Recover(resp)
	var out Label
	gb := got.Bytes()
	if len(gb) > labelSize {
		return Label{}, 0, fmt.Errorf("smc: recovered label too long")
	}
	copy(out[labelSize-len(gb):], gb)
	// The modulus is sent once per session, not per transfer; count the
	// per-transfer traffic only.
	bytes := bigLen(offer.X0) + bigLen(offer.X1) + bigLen(v) + bigLen(resp.M0) + bigLen(resp.M1)
	return out, bytes, nil
}
