package smc

import (
	"fmt"
)

// PrivateEqualityJoin runs the two-party private equijoin as a sequence of
// Yao protocol instances: for every pair (a ∈ A, b ∈ B), Alice garbles a
// fresh w-bit equality circuit with her key as the garbler input, Bob
// obtains his input labels through w oblivious transfers and evaluates.
// Both parties learn exactly the matching index pairs (the join result) and
// nothing else about non-matching keys.
//
// This is the executable counterpart of the paper's analytic SMC baseline:
// it makes the Θ(|A||B|) circuit and OT cost tangible at toy scale. A
// production SMC system (Fairplay [32]) amortises OTs and adds
// cut-and-choose for malicious security — both only add to the gap the
// paper reports.
type PrivateEqualityJoin struct {
	// Width is the key width in bits.
	Width int
}

// JoinStats accounts for the protocol's communication, comparable (in
// spirit) to the coprocessor algorithms' transfer counts.
type JoinStats struct {
	Pairs          int   // circuits evaluated
	OTs            int   // oblivious transfers executed
	GarbledBytes   int   // garbled tables transferred
	OTBytes        int   // OT messages transferred
	InputLabelSize int   // bytes of directly-sent garbler labels
	TotalBytes     int64 // everything
}

// Run executes the join over the two key lists, returning matching index
// pairs and the communication accounting.
func (p PrivateEqualityJoin) Run(aliceKeys, bobKeys []uint64) ([][2]int, JoinStats, error) {
	w := p.Width
	if w <= 0 || w > 64 {
		return nil, JoinStats{}, fmt.Errorf("smc: width %d out of range", w)
	}
	circ, err := EqualityCircuit(w)
	if err != nil {
		return nil, JoinStats{}, err
	}
	batch, err := NewOTBatch()
	if err != nil {
		return nil, JoinStats{}, err
	}
	var stats JoinStats
	var pairs [][2]int
	for i, ak := range aliceKeys {
		for j, bk := range bobKeys {
			match, st, err := p.runPair(circ, batch, ak, bk)
			if err != nil {
				return nil, JoinStats{}, fmt.Errorf("smc: pair (%d,%d): %w", i, j, err)
			}
			stats.Pairs++
			stats.OTs += st.OTs
			stats.GarbledBytes += st.GarbledBytes
			stats.OTBytes += st.OTBytes
			stats.InputLabelSize += st.InputLabelSize
			if match {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	stats.TotalBytes = int64(stats.GarbledBytes) + int64(stats.OTBytes) + int64(stats.InputLabelSize)
	return pairs, stats, nil
}

// runPair evaluates one garbled equality circuit.
func (p PrivateEqualityJoin) runPair(circ *Circuit, batch *OTBatch, aliceKey, bobKey uint64) (bool, JoinStats, error) {
	var st JoinStats
	g, err := Garble(circ)
	if err != nil {
		return false, st, err
	}
	st.GarbledBytes = g.GC.Size()

	inputs := make([]Label, circ.NumInputs())
	// Alice's labels: sent directly.
	for i := 0; i < p.Width; i++ {
		bit := aliceKey>>i&1 == 1
		l, err := g.InputLabel(i, bit)
		if err != nil {
			return false, st, err
		}
		inputs[i] = l
		st.InputLabelSize += labelSize
	}
	// Bob's labels: one OT per bit.
	for i := 0; i < p.Width; i++ {
		wire := p.Width + i
		l0, err := g.InputLabel(wire, false)
		if err != nil {
			return false, st, err
		}
		l1, err := g.InputLabel(wire, true)
		if err != nil {
			return false, st, err
		}
		choice := int(bobKey >> i & 1)
		got, bytes, err := batch.Transfer(l0, l1, choice)
		if err != nil {
			return false, st, err
		}
		st.OTs++
		st.OTBytes += bytes
		inputs[wire] = got
	}
	out, err := Evaluate(g.GC, inputs)
	if err != nil {
		return false, st, err
	}
	return out[0], st, nil
}

// Millionaire solves Yao's millionaire problem (§2.1): Alice and Bob learn
// who is richer — whether alice < bob — and nothing else. It garbles one
// LessThanCircuit and delivers Bob's labels by OT.
func Millionaire(alice, bob uint64, width int) (aliceIsPoorer bool, stats JoinStats, err error) {
	circ, err := LessThanCircuit(width)
	if err != nil {
		return false, JoinStats{}, err
	}
	g, err := Garble(circ)
	if err != nil {
		return false, JoinStats{}, err
	}
	stats.GarbledBytes = g.GC.Size()
	inputs := make([]Label, circ.NumInputs())
	for i := 0; i < width; i++ {
		bit := alice>>i&1 == 1
		l, err := g.InputLabel(i, bit)
		if err != nil {
			return false, stats, err
		}
		inputs[i] = l
		stats.InputLabelSize += labelSize
	}
	batch, err := NewOTBatch()
	if err != nil {
		return false, JoinStats{}, err
	}
	for i := 0; i < width; i++ {
		wire := width + i
		l0, _ := g.InputLabel(wire, false)
		l1, _ := g.InputLabel(wire, true)
		got, bytes, err := batch.Transfer(l0, l1, int(bob>>i&1))
		if err != nil {
			return false, stats, err
		}
		stats.OTs++
		stats.OTBytes += bytes
		inputs[wire] = got
	}
	out, err := Evaluate(g.GC, inputs)
	if err != nil {
		return false, stats, err
	}
	stats.Pairs = 1
	stats.TotalBytes = int64(stats.GarbledBytes + stats.OTBytes + stats.InputLabelSize)
	return out[0], stats, nil
}

// PrivateBandJoin is PrivateEqualityJoin's analogue for the paper's band
// predicate |a − b| ≤ band: one garbled BandCircuit per pair, labels via
// amortised OT. It demonstrates that the SMC baseline, like the coprocessor
// algorithms, handles arbitrary predicates — at the same crushing cost.
func PrivateBandJoin(width int, band uint64, aliceKeys, bobKeys []uint64) ([][2]int, JoinStats, error) {
	circ, err := BandCircuit(width, band)
	if err != nil {
		return nil, JoinStats{}, err
	}
	batch, err := NewOTBatch()
	if err != nil {
		return nil, JoinStats{}, err
	}
	p := PrivateEqualityJoin{Width: width}
	var stats JoinStats
	var pairs [][2]int
	for i, ak := range aliceKeys {
		for j, bk := range bobKeys {
			match, st, err := p.runPair(circ, batch, ak, bk)
			if err != nil {
				return nil, JoinStats{}, fmt.Errorf("smc: band pair (%d,%d): %w", i, j, err)
			}
			stats.Pairs++
			stats.OTs += st.OTs
			stats.GarbledBytes += st.GarbledBytes
			stats.OTBytes += st.OTBytes
			stats.InputLabelSize += st.InputLabelSize
			if match {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	stats.TotalBytes = int64(stats.GarbledBytes) + int64(stats.OTBytes) + int64(stats.InputLabelSize)
	return pairs, stats, nil
}
