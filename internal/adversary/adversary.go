// Package adversary implements the paper's honest-but-curious observer: a
// party (typically the host H itself, §3.3) that sees every interaction
// between H and T plus all ciphertext in H's memory, but cannot see inside
// T. Its extractors turn the access patterns of the UNSAFE join designs of
// §3.4 and §4.5.1 into the forbidden statistics the paper says they leak —
// making the negative results executable. Against the safe algorithms the
// only available attack is trace comparison, and the core package's privacy
// tests show those traces are input-independent.
package adversary

import (
	"ppj/internal/sim"
)

// Distinguish reports whether two access sequences differ — the basic test
// underlying Definitions 1 and 3 (identical distribution collapses, for the
// deterministic-given-seed algorithms, to trace equality).
func Distinguish(a, b *sim.Trace) bool {
	return !a.Equal(b)
}

// MatchMatrixFromNestedLoop attacks the straightforward nested loop of
// §3.4.1: "An adversary can easily determine which encrypted tuples of A
// joined with which tuples of B, simply by observing whether T outputted a
// result tuple before the read request for the next B tuple." It replays
// the event stream and returns the (aIndex, bIndex) pairs that joined.
func MatchMatrixFromNestedLoop(events []sim.Event, regA, regB, regOut sim.RegionID) [][2]int64 {
	var pairs [][2]int64
	curA, curB := int64(-1), int64(-1)
	for _, e := range events {
		switch {
		case e.Op == sim.OpGet && e.Region == regA:
			curA, curB = e.Index, -1
		case e.Op == sim.OpGet && e.Region == regB:
			curB = e.Index
		case e.Op == sim.OpPut && e.Region == regOut && curA >= 0 && curB >= 0:
			pairs = append(pairs, [2]int64{curA, curB})
		}
	}
	return pairs
}

// OutputBurstsPerOuter attacks the blocked variant of §3.4.2: it counts the
// output puts observed while each outer (A) tuple was current. Even with
// blocking, the burst positions "estimate the distribution of matches":
// block flushes land inside the outer iteration that filled them.
func OutputBurstsPerOuter(events []sim.Event, regA, regOut sim.RegionID, nA int64) []int64 {
	counts := make([]int64, nA)
	curA := int64(-1)
	for _, e := range events {
		switch {
		case e.Op == sim.OpGet && e.Region == regA:
			curA = e.Index
		case e.Op == sim.OpPut && e.Region == regOut && curA >= 0 && curA < nA:
			counts[curA]++
		}
	}
	return counts
}

// InnerReadsPerOuter attacks the sort-merge join of §4.5.1: the number of B
// reads consumed while each A tuple is current reveals (up to the pointer
// advance) how many B tuples matched it. events should be the merge-phase
// suffix of the trace; the oblivious-sort prelude has a publicly computable
// length, so the adversary can always locate it (see SkipPrefix).
func InnerReadsPerOuter(events []sim.Event, regA, regB sim.RegionID, nA int64) []int64 {
	counts := make([]int64, nA)
	cur := int64(-1)
	for _, e := range events {
		if e.Op != sim.OpGet {
			continue
		}
		switch e.Region {
		case regA:
			cur = e.Index
		case regB:
			if cur >= 0 && cur < nA {
				counts[cur]++
			}
		}
	}
	return counts
}

// ReadsBetweenFlushes attacks the grace-hash partitioning of §4.5.1: it
// returns, for each bucket-flush burst, how many input reads preceded it
// since the previous burst. "By observing the difference in the number of
// tuples T reads between writes, an adversary may learn partial information
// about the distribution of the values of the join attribute."
func ReadsBetweenFlushes(events []sim.Event, regIn, regOut sim.RegionID) []int64 {
	var gaps []int64
	var reads int64
	inBurst := false
	for _, e := range events {
		switch {
		case e.Op == sim.OpGet && e.Region == regIn:
			reads++
			inBurst = false
		case e.Op == sim.OpPut && e.Region == regOut:
			if !inBurst {
				gaps = append(gaps, reads)
				reads = 0
				inBurst = true
			}
		}
	}
	return gaps
}

// DuplicateHistogram attacks the commutative-encryption design of §4.5.1:
// deterministic tags let H count how often each (hidden) join-attribute
// value occurs. It returns the multiplicity histogram of a tag region —
// exactly "the distribution of the duplicates".
func DuplicateHistogram(h *sim.Host, tags sim.RegionID, n int64) map[int64]int64 {
	counts := make(map[string]int64)
	for i := int64(0); i < n; i++ {
		counts[string(h.Inspect(tags, i))]++
	}
	hist := make(map[int64]int64)
	for _, c := range counts {
		hist[c]++
	}
	return hist
}

// SkipPrefix drops the first n events: used to discard a publicly-sized
// prelude (such as an oblivious sort, whose event count is a function of
// the public input sizes only).
func SkipPrefix(events []sim.Event, n int64) []sim.Event {
	if n >= int64(len(events)) {
		return nil
	}
	return events[n:]
}

// Advantage estimates the empirical distinguishing advantage of the
// trace-comparison adversary: over trials rounds, world A and world B each
// produce a trace, and the adversary guesses which world it is in by
// comparing against a reference trace from world A. For a privacy
// preserving algorithm (identical traces) the advantage is 0; for the
// unsafe designs it approaches 1. This makes Definitions 1/3's
// "identically distributed" quantitative for the test suite.
func Advantage(worldA, worldB func(trial int) *sim.Trace, trials int) float64 {
	if trials <= 0 {
		return 0
	}
	correct := 0
	for i := 0; i < trials; i++ {
		ref := worldA(i)
		// A fair coin decides which world the challenge comes from;
		// derandomised across trials for reproducibility.
		fromB := i%2 == 1
		var challenge *sim.Trace
		if fromB {
			challenge = worldB(i)
		} else {
			challenge = worldA(i + trials) // fresh run of world A
		}
		guessB := !ref.Equal(challenge)
		if guessB == fromB {
			correct++
		}
	}
	return 2*float64(correct)/float64(trials) - 1
}
