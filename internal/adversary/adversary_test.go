package adversary

import (
	"reflect"
	"sort"
	"testing"

	"ppj/internal/core"
	"ppj/internal/oblivious"
	"ppj/internal/relation"
	"ppj/internal/sim"
)

func setup(t *testing.T, relA, relB *relation.Relation, mem int) (*sim.Host, *sim.Coprocessor, sim.Table, sim.Table) {
	t.Helper()
	h := sim.NewHost(1 << 20)
	cop, err := sim.NewCoprocessor(h, sim.Config{Memory: mem, Sealer: sim.PlainSealer{}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tabA, err := sim.LoadTable(h, cop.Sealer(), "A", relA)
	if err != nil {
		t.Fatal(err)
	}
	tabB, err := sim.LoadTable(h, cop.Sealer(), "B", relB)
	if err != nil {
		t.Fatal(err)
	}
	return h, cop, tabA, tabB
}

func equi(t *testing.T, a, b *relation.Relation) *relation.Equi {
	t.Helper()
	eq, err := relation.NewEqui(a.Schema, "key", b.Schema, "key")
	if err != nil {
		t.Fatal(err)
	}
	return eq
}

func TestNestedLoopFullMatrixRecovery(t *testing.T) {
	// §3.4.1: the adversary recovers the exact match matrix.
	relA := relation.GenKeyed(relation.NewRand(1), 6, 4)
	relB := relation.GenKeyed(relation.NewRand(2), 9, 4)
	h, cop, tabA, tabB := setup(t, relA, relB, 16)
	pred := equi(t, relA, relB)
	if _, err := core.UnsafeNestedLoop(cop, tabA, tabB, pred); err != nil {
		t.Fatal(err)
	}
	res := h.Trace().Events()
	outReg := sim.RegionID(-1)
	for _, e := range res {
		if e.Op == sim.OpPut && e.Region != tabA.Region && e.Region != tabB.Region {
			outReg = e.Region
			break
		}
	}
	got := MatchMatrixFromNestedLoop(res, tabA.Region, tabB.Region, outReg)

	var want [][2]int64
	for i, ta := range relA.Rows {
		for j, tb := range relB.Rows {
			if pred.Match(ta, tb) {
				want = append(want, [2]int64{int64(i), int64(j)})
			}
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("adversary recovered %v, truth %v", got, want)
	}
	if len(want) == 0 {
		t.Fatal("degenerate test: no matches")
	}
}

func TestNestedLoopTracesDistinguishable(t *testing.T) {
	// Same sizes, different contents -> distinguishable traces (the failure
	// of Definition 1 for the unsafe algorithm).
	run := func(seedB uint64) *sim.Trace {
		relA := relation.GenKeyed(relation.NewRand(1), 5, 3)
		relB := relation.GenKeyed(relation.NewRand(seedB), 8, 3)
		h, cop, tabA, tabB := setup(t, relA, relB, 16)
		if _, err := core.UnsafeNestedLoop(cop, tabA, tabB, equi(t, relA, relB)); err != nil {
			t.Fatal(err)
		}
		return h.Trace()
	}
	if !Distinguish(run(2), run(5)) {
		t.Fatal("unsafe nested loop traces indistinguishable (expected leak)")
	}
}

func TestBlockedNestedLoopLeaksDistribution(t *testing.T) {
	// §3.4.2: flush bursts land inside the outer iterations that filled the
	// block, exposing where the matches concentrate.
	mkSkew := func(hot int) (*relation.Relation, *relation.Relation) {
		a := relation.NewRelation(relation.KeyedSchema())
		for i := 0; i < 4; i++ {
			a.MustAppend(relation.Tuple{relation.IntValue(int64(i)), relation.IntValue(0)})
		}
		b := relation.NewRelation(relation.KeyedSchema())
		for j := 0; j < 8; j++ {
			b.MustAppend(relation.Tuple{relation.IntValue(int64(hot)), relation.IntValue(int64(j))})
		}
		return a, b
	}
	burstsFor := func(hot int) []int64 {
		relA, relB := mkSkew(hot)
		h, cop, tabA, tabB := setup(t, relA, relB, 16)
		if _, err := core.UnsafeBlockedNestedLoop(cop, tabA, tabB, equi(t, relA, relB), 4); err != nil {
			t.Fatal(err)
		}
		return OutputBurstsPerOuter(h.Trace().Events(), tabA.Region, h.Trace().Events()[len(h.Trace().Events())-1].Region, 4)
	}
	b0 := burstsFor(0)
	b3 := burstsFor(3)
	// The adversary localises the hot outer tuple.
	if argmax(b0) != 0 || argmax(b3) != 3 {
		t.Fatalf("adversary failed to localise hot tuple: %v / %v", b0, b3)
	}
}

func TestSortMergeLeaksMatchCounts(t *testing.T) {
	// §4.5.1: per-outer inner reads reveal the match counts. A keys are
	// 1,2,3 (already distinct); B holds 5 copies of key 2.
	relA := relation.NewRelation(relation.KeyedSchema())
	for _, k := range []int64{1, 2, 3} {
		relA.MustAppend(relation.Tuple{relation.IntValue(k), relation.IntValue(0)})
	}
	relB := relation.NewRelation(relation.KeyedSchema())
	for j := 0; j < 5; j++ {
		relB.MustAppend(relation.Tuple{relation.IntValue(2), relation.IntValue(int64(j))})
	}
	relB.MustAppend(relation.Tuple{relation.IntValue(9), relation.IntValue(99)})

	h, cop, tabA, tabB := setup(t, relA, relB, 16)
	if _, err := core.UnsafeSortMergeJoin(cop, tabA, tabB, equi(t, relA, relB)); err != nil {
		t.Fatal(err)
	}
	// Discard the publicly-sized oblivious-sort prelude.
	prefix := oblivious.SortTransfers(tabA.N) + oblivious.SortTransfers(tabB.N)
	merge := SkipPrefix(h.Trace().Events(), prefix)
	counts := InnerReadsPerOuter(merge, tabA.Region, tabB.Region, tabA.N)
	// Sorted A = [1,2,3]; the middle tuple must stand out.
	if argmax(counts) != 1 {
		t.Fatalf("adversary failed to localise heavy key: reads per outer = %v", counts)
	}
	if counts[1] < 5 {
		t.Fatalf("heavy key reads %d, expected >= its 5 matches", counts[1])
	}
}

func TestSortMergeTracesDistinguishable(t *testing.T) {
	run := func(heavy bool) *sim.Trace {
		relA := relation.GenKeyed(relation.NewRand(1), 4, 4)
		relB := relation.NewRelation(relation.KeyedSchema())
		for j := 0; j < 8; j++ {
			k := int64(j % 4)
			if heavy {
				k = 0
			}
			relB.MustAppend(relation.Tuple{relation.IntValue(k), relation.IntValue(int64(j))})
		}
		h, cop, tabA, tabB := setup(t, relA, relB, 16)
		if _, err := core.UnsafeSortMergeJoin(cop, tabA, tabB, equi(t, relA, relB)); err != nil {
			t.Fatal(err)
		}
		return h.Trace()
	}
	if !Distinguish(run(true), run(false)) {
		t.Fatal("sort-merge traces indistinguishable (expected leak)")
	}
}

func TestGraceHashLeaksSkew(t *testing.T) {
	// §4.5.1 footnote: uniform keys fill buckets evenly (flush after ~np
	// reads); skewed keys flush after ~p reads. The gap vectors differ.
	gaps := func(rel *relation.Relation) []int64 {
		h := sim.NewHost(1 << 20)
		cop, err := sim.NewCoprocessor(h, sim.Config{Memory: 64, Sealer: sim.PlainSealer{}, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		tab, err := sim.LoadTable(h, cop.Sealer(), "A", rel)
		if err != nil {
			t.Fatal(err)
		}
		out, err := core.UnsafeGraceHashPartition(cop, tab, 0, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Discard the publicly-sized oblivious-shuffle prelude.
		events := SkipPrefix(h.Trace().Events(), oblivious.ShuffleTransfers(tab.N))
		return ReadsBetweenFlushes(events, tab.Region, out.Region)
	}
	uniform := relation.GenKeyed(relation.NewRand(3), 48, 1000)
	skewed := relation.NewRelation(relation.KeyedSchema())
	for i := 0; i < 48; i++ {
		skewed.MustAppend(relation.Tuple{relation.IntValue(0), relation.IntValue(int64(i))})
	}
	gu, gs := gaps(uniform), gaps(skewed)
	// Skewed input flushes every 4 reads like clockwork; uniform input's
	// first flush needs far more reads.
	if gs[0] > 4 {
		t.Fatalf("skewed first gap %d, want <= bucket size", gs[0])
	}
	if gu[0] <= 4 {
		t.Fatalf("uniform first gap %d, want > bucket size", gu[0])
	}
	if len(gs) <= len(gu) {
		t.Fatalf("skewed input should flush more often: %d vs %d bursts", len(gs), len(gu))
	}
}

func TestCommutativeLeaksDuplicateHistogram(t *testing.T) {
	// §4.5.1: the host reconstructs the exact duplicate distribution.
	relA := relation.GenKeyed(relation.NewRand(1), 4, 100)
	relB := relation.NewRelation(relation.KeyedSchema())
	for _, k := range []int64{7, 7, 7, 8, 8, 9} {
		relB.MustAppend(relation.Tuple{relation.IntValue(k), relation.IntValue(0)})
	}
	h, cop, tabA, tabB := setup(t, relA, relB, 16)
	_, _, tagsB, err := core.UnsafeCommutativeJoin(cop, tabA, tabB, equi(t, relA, relB))
	if err != nil {
		t.Fatal(err)
	}
	hist := DuplicateHistogram(h, tagsB, tabB.N)
	// Truth: one value x3, one value x2, one value x1.
	want := map[int64]int64{3: 1, 2: 1, 1: 1}
	if !reflect.DeepEqual(hist, want) {
		t.Fatalf("adversary histogram %v, want %v", hist, want)
	}
}

func TestCommutativeJoinPairsCorrect(t *testing.T) {
	// The construction does produce correct join pairs — it fails on
	// privacy, not correctness.
	relA := relation.GenKeyed(relation.NewRand(5), 6, 4)
	relB := relation.GenKeyed(relation.NewRand(6), 9, 4)
	_, cop, tabA, tabB := setup(t, relA, relB, 16)
	pred := equi(t, relA, relB)
	pairs, _, _, err := core.UnsafeCommutativeJoin(cop, tabA, tabB, pred)
	if err != nil {
		t.Fatal(err)
	}
	var want [][2]int64
	for i, ta := range relA.Rows {
		for j, tb := range relB.Rows {
			if pred.Match(ta, tb) {
				want = append(want, [2]int64{int64(i), int64(j)})
			}
		}
	}
	sortPairs := func(p [][2]int64) {
		sort.Slice(p, func(x, y int) bool {
			if p[x][0] != p[y][0] {
				return p[x][0] < p[y][0]
			}
			return p[x][1] < p[y][1]
		})
	}
	sortPairs(pairs)
	sortPairs(want)
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("host-computed pairs %v, want %v", pairs, want)
	}
}

func TestSRACommutes(t *testing.T) {
	k1, err := core.NewSRAKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := core.NewSRAKey()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{0, 1, 42, 1 << 40} {
		if !k1.CommutesWith(k2, v) {
			t.Fatalf("SRA keys do not commute on %d", v)
		}
	}
	// Determinism (the leak) and key separation.
	if k1.Encrypt(7).Cmp(k1.Encrypt(7)) != 0 {
		t.Fatal("SRA not deterministic")
	}
	if k1.Encrypt(7).Cmp(k2.Encrypt(7)) == 0 {
		t.Fatal("two SRA keys coincide")
	}
}

func argmax(xs []int64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func TestAdvantageZeroForSafeAlgorithm(t *testing.T) {
	// Algorithm 5 on same-size same-S inputs: the adversary cannot do
	// better than guessing.
	world := func(base uint64) func(int) *sim.Trace {
		return func(trial int) *sim.Trace {
			relA, relB := sizedPair(base + uint64(trial)*1000)
			h := sim.NewHost(0)
			cop, err := sim.NewCoprocessor(h, sim.Config{Memory: 3, Sealer: sim.PlainSealer{}, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			tabA, _ := sim.LoadTable(h, cop.Sealer(), "A", relA)
			tabB, _ := sim.LoadTable(h, cop.Sealer(), "B", relB)
			if _, err := core.Join5(cop, []sim.Table{tabA, tabB}, relation.Pairwise(equi(t, relA, relB))); err != nil {
				t.Fatal(err)
			}
			return h.Trace()
		}
	}
	adv := Advantage(world(1), world(5_000_000), 10)
	if adv != 0 {
		t.Fatalf("safe algorithm advantage = %g, want 0", adv)
	}
}

func TestAdvantageOneForUnsafeAlgorithm(t *testing.T) {
	// The naive nested loop's traces differ whenever the match patterns
	// differ, handing the adversary full advantage.
	world := func(heavy bool) func(int) *sim.Trace {
		return func(trial int) *sim.Trace {
			relA := relation.GenKeyed(relation.NewRand(7), 5, 3)
			relB := relation.NewRelation(relation.KeyedSchema())
			for j := 0; j < 8; j++ {
				k := int64(j % 3)
				if heavy {
					k = 0
				}
				relB.MustAppend(relation.Tuple{relation.IntValue(k), relation.IntValue(int64(j))})
			}
			h := sim.NewHost(0)
			cop, err := sim.NewCoprocessor(h, sim.Config{Memory: 16, Sealer: sim.PlainSealer{}, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			tabA, _ := sim.LoadTable(h, cop.Sealer(), "A", relA)
			tabB, _ := sim.LoadTable(h, cop.Sealer(), "B", relB)
			if _, err := core.UnsafeNestedLoop(cop, tabA, tabB, equi(t, relA, relB)); err != nil {
				t.Fatal(err)
			}
			return h.Trace()
		}
	}
	adv := Advantage(world(false), world(true), 10)
	if adv != 1 {
		t.Fatalf("unsafe algorithm advantage = %g, want 1", adv)
	}
}

// sizedPair builds input pairs with fixed sizes and join size regardless of
// seed (contents vary).
func sizedPair(seed uint64) (*relation.Relation, *relation.Relation) {
	rng := relation.NewRand(seed)
	a := relation.NewRelation(relation.KeyedSchema())
	for i := 0; i < 6; i++ {
		a.MustAppend(relation.Tuple{relation.IntValue(int64(i)), relation.IntValue(rng.Int64N(1 << 20))})
	}
	b := relation.NewRelation(relation.KeyedSchema())
	for j := 0; j < 8; j++ {
		key := int64(j)
		if j >= 5 { // exactly 5 matches
			key = 100 + int64(j)
		}
		b.MustAppend(relation.Tuple{relation.IntValue(key), relation.IntValue(rng.Int64N(1 << 20))})
	}
	return a, b
}
