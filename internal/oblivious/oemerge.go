package oblivious

import (
	"fmt"

	"ppj/internal/sim"
)

// This file implements Batcher's odd-even mergesort, the other classic
// O(n log²n) oblivious sorting network, as an ablation against the bitonic
// network the paper builds on (§4.4.1 cites Batcher [7], which introduces
// both). Odd-even mergesort uses ~25% fewer comparators than bitonic at the
// same depth class; the thesis's cost formulas assume bitonic, so the
// benchmarks quantify what switching networks would save — one of the
// "faster algorithms than what we have proposed?" threads of Chapter 6.

// SortOddEven obliviously sorts cells [0, n) of a host region ascending
// using the odd-even merge network. Padding and access-pattern properties
// are identical in kind to Sort: every comparator moves 4 cells regardless
// of outcome, and the schedule depends only on n.
func SortOddEven(t *sim.Coprocessor, region sim.RegionID, n int64, less LessFunc) error {
	if n < 0 {
		return fmt.Errorf("oblivious: negative element count %d", n)
	}
	if n <= 1 {
		return nil
	}
	m := NextPow2(n)
	if err := padRange(t, region, n, m); err != nil {
		return err
	}
	wrapped := func(a, b []byte) bool {
		switch {
		case isPad(a):
			return false
		case isPad(b):
			return true
		default:
			return less(a, b)
		}
	}
	return oddEvenMergeSort(t, new(xchg), region, 0, m, wrapped)
}

// oddEvenMergeSort sorts the m (power of two) cells starting at lo.
func oddEvenMergeSort(t *sim.Coprocessor, x *xchg, region sim.RegionID, lo, m int64, less LessFunc) error {
	if m <= 1 {
		return nil
	}
	half := m / 2
	if err := oddEvenMergeSort(t, x, region, lo, half, less); err != nil {
		return err
	}
	if err := oddEvenMergeSort(t, x, region, lo+half, half, less); err != nil {
		return err
	}
	return oddEvenMerge(t, x, region, lo, m, 1, less)
}

// oddEvenMerge merges the two sorted halves of the m cells at stride r
// starting at lo (Batcher's recursive formulation).
func oddEvenMerge(t *sim.Coprocessor, x *xchg, region sim.RegionID, lo, m, r int64, less LessFunc) error {
	step := r * 2
	if step < m {
		if err := oddEvenMerge(t, x, region, lo, m, step, less); err != nil {
			return err
		}
		if err := oddEvenMerge(t, x, region, lo+r, m, step, less); err != nil {
			return err
		}
		for i := lo + r; i+r < lo+m; i += step {
			if err := x.compareExchange(t, region, i, i+r, true, less); err != nil {
				return err
			}
		}
		return nil
	}
	return x.compareExchange(t, region, lo, lo+r, true, less)
}

// OddEvenComparators returns the exact comparator count of the odd-even
// merge network for m = 2^k cells.
func OddEvenComparators(m int64) int64 {
	if m <= 1 {
		return 0
	}
	half := m / 2
	return 2*OddEvenComparators(half) + oddEvenMergeComparators(m, 1)
}

func oddEvenMergeComparators(m, r int64) int64 {
	step := r * 2
	if step < m {
		c := oddEvenMergeComparators(m, step) + oddEvenMergeComparators(m, step)
		// The final compare-exchange chain of this level.
		for i := r; i+r < m; i += step {
			c++
		}
		return c
	}
	return 1
}

// SortOddEvenTransfers returns the exact transfer count of SortOddEven.
func SortOddEvenTransfers(n int64) int64 {
	if n <= 1 {
		return 0
	}
	m := NextPow2(n)
	return (m - n) + 4*OddEvenComparators(m)
}
