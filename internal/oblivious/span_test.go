package oblivious

import (
	"fmt"
	"sort"
	"testing"

	"ppj/internal/sim"
)

// spanFleet builds p coprocessors over one host (span-test variant of the
// parallel sort tests' inline construction).
func spanFleet(t *testing.T, h *sim.Host, p int) []*sim.Coprocessor {
	t.Helper()
	cops := make([]*sim.Coprocessor, p)
	for i := range cops {
		var err error
		cops[i], err = sim.NewCoprocessor(h, sim.Config{Sealer: sim.PlainSealer{}, Seed: uint64(i) + 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	return cops
}

// TestSortSpanSortsAtOffset sorts sub-spans at non-zero offsets and checks
// both the sorted span and that cells outside [lo, lo+NextPow2(n)) are
// untouched, plus the exact SortTransfers count.
func TestSortSpanSortsAtOffset(t *testing.T) {
	for _, tc := range []struct{ lo, n int64 }{{0, 7}, {8, 8}, {16, 5}, {32, 13}} {
		t.Run(fmt.Sprintf("lo=%d_n=%d", tc.lo, tc.n), func(t *testing.T) {
			h, cop := newPair(t, 11)
			m := NextPow2(tc.n)
			total := tc.lo + m + 4 // slack above the envelope
			vals := make([]uint64, total)
			for i := range vals {
				vals[i] = uint64((int64(i)*7919 + 3) % 101)
			}
			id := loadInts(t, h, cop, "span", vals)
			if err := SortSpan(cop, id, tc.lo, tc.n, intLess); err != nil {
				t.Fatal(err)
			}
			got := readInts(t, cop, id, tc.lo+tc.n)
			want := append([]uint64(nil), vals[tc.lo:tc.lo+tc.n]...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := int64(0); i < tc.lo; i++ {
				if got[i] != vals[i] {
					t.Fatalf("cell %d below the span was touched: %d -> %d", i, vals[i], got[i])
				}
			}
			for i, w := range want {
				if got[tc.lo+int64(i)] != w {
					t.Fatalf("span position %d: got %d want %d", i, got[tc.lo+int64(i)], w)
				}
			}
			for i := tc.lo + m; i < total; i++ {
				pt, err := cop.Get(id, i)
				if err != nil {
					t.Fatal(err)
				}
				if decodeInt(pt) != vals[i] {
					t.Fatalf("cell %d above the envelope was touched", i)
				}
			}
		})
	}
}

// TestSortSpanTransferCountExact pins SortSpan's cost to SortTransfers(n),
// measured with no other charged operations in the window.
func TestSortSpanTransferCountExact(t *testing.T) {
	for _, n := range []int64{2, 5, 16, 37} {
		lo := int64(8)
		h, cop := newPair(t, 5)
		total := lo + NextPow2(n)
		vals := make([]uint64, total)
		for i := range vals {
			vals[i] = uint64(total) - uint64(i)
		}
		id := loadInts(t, h, cop, "span", vals)
		if err := SortSpan(cop, id, lo, n, intLess); err != nil {
			t.Fatal(err)
		}
		if got, want := int64(cop.Stats().Transfers()), SortTransfers(n); got != want {
			t.Fatalf("n=%d: SortSpan transfers = %d, want SortTransfers = %d", n, got, want)
		}
	}
}

// TestMergeHalvesMergesSortedHalves sorts each half independently, merges,
// and checks the whole array is ascending with the exact merge cost.
func TestMergeHalvesMergesSortedHalves(t *testing.T) {
	for _, m := range []int64{2, 8, 32, 128} {
		t.Run(fmt.Sprintf("m=%d", m), func(t *testing.T) {
			h, cop := newPair(t, 7)
			vals := make([]uint64, m)
			for i := range vals {
				vals[i] = uint64((int64(i)*2654435761 + 9) % 500)
			}
			id := loadInts(t, h, cop, "mh", vals)
			half := m / 2
			if err := SortSpan(cop, id, 0, half, intLess); err != nil {
				t.Fatal(err)
			}
			if err := SortSpan(cop, id, half, half, intLess); err != nil {
				t.Fatal(err)
			}
			cop.ResetStats()
			if err := MergeHalves(cop, id, m, intLess); err != nil {
				t.Fatal(err)
			}
			if got, want := int64(cop.Stats().Transfers()), MergeHalvesTransfers(m); got != want {
				t.Fatalf("m=%d: MergeHalves transfers = %d, want %d", m, got, want)
			}
			got := readInts(t, cop, id, m)
			want := append([]uint64(nil), vals...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("position %d: got %d want %d", i, got[i], want[i])
				}
			}
		})
	}
}

// TestMergeHalvesKeepsPaddingMaximal pads the top of each half (the cached-
// half layout: q real cells then pads) and checks real cells come out
// ascending ahead of every pad.
func TestMergeHalvesKeepsPaddingMaximal(t *testing.T) {
	h, cop := newPair(t, 9)
	const m, half, qA, qB = 16, 8, 5, 3
	id := h.MustCreateRegion("mhp", m)
	put := func(i int64, v uint64) {
		if err := cop.Put(id, i, encodeInt(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Half A: 5 sorted reals then pads; half B: 3 sorted reals then pads.
	for i, v := range []uint64{2, 4, 6, 8, 10} {
		put(int64(i), v)
	}
	if err := PadRange(cop, id, qA, half); err != nil {
		t.Fatal(err)
	}
	for i, v := range []uint64{1, 5, 9} {
		put(half+int64(i), v)
	}
	if err := PadRange(cop, id, half+qB, m); err != nil {
		t.Fatal(err)
	}
	if err := MergeHalves(cop, id, m, intLess); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 4, 5, 6, 8, 9, 10}
	for i, w := range want {
		pt, err := cop.Get(id, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if isPad(pt) || decodeInt(pt) != w {
			t.Fatalf("position %d: got pad=%v val=%v, want %d", i, isPad(pt), pt, w)
		}
	}
	for i := int64(qA + qB); i < m; i++ {
		pt, err := cop.Get(id, i)
		if err != nil {
			t.Fatal(err)
		}
		if !isPad(pt) {
			t.Fatalf("position %d: real cell after the reals, want pad", i)
		}
	}
}

// TestParallelSpanMatchesSequential checks ParallelSortSpan and
// ParallelMergeHalves produce the sequential result with the same summed
// transfer count as their sequential counterparts.
func TestParallelSpanMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			const lo, n = 16, 32
			h := sim.NewHost(0)
			cops := spanFleet(t, h, p)
			m := NextPow2(int64(n))
			id := h.MustCreateRegion("pspan", int(lo+2*m))
			vals := make([]uint64, lo+2*m)
			for i := range vals {
				vals[i] = uint64((int64(i)*48271 + 11) % 777)
				if err := cops[0].Put(id, int64(i), encodeInt(vals[i])); err != nil {
					t.Fatal(err)
				}
			}
			for _, c := range cops {
				c.ResetStats()
			}
			if err := ParallelSortSpan(cops, id, lo, n, intLess); err != nil {
				t.Fatal(err)
			}
			got := readInts(t, cops[0], id, lo+n)
			want := append([]uint64(nil), vals[lo:lo+n]...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if got[lo+int64(i)] != want[i] {
					t.Fatalf("span position %d: got %d want %d", i, got[lo+int64(i)], want[i])
				}
			}
			for i := int64(0); i < lo; i++ {
				if got[i] != vals[i] {
					t.Fatalf("cell %d below the span was touched", i)
				}
			}

			// Merge two independently sorted halves of [0, 2m) on the group.
			h2 := sim.NewHost(0)
			cops2 := spanFleet(t, h2, p)
			id2 := h2.MustCreateRegion("pmerge", int(2*m))
			vals2 := make([]uint64, 2*m)
			for i := range vals2 {
				vals2[i] = uint64((int64(i)*69621 + 5) % 999)
				if err := cops2[0].Put(id2, int64(i), encodeInt(vals2[i])); err != nil {
					t.Fatal(err)
				}
			}
			if err := SortSpan(cops2[0], id2, 0, m, intLess); err != nil {
				t.Fatal(err)
			}
			if err := SortSpan(cops2[0], id2, m, m, intLess); err != nil {
				t.Fatal(err)
			}
			for _, c := range cops2 {
				c.ResetStats()
			}
			if err := ParallelMergeHalves(cops2, id2, 2*m, intLess); err != nil {
				t.Fatal(err)
			}
			var sum int64
			for _, c := range cops2 {
				sum += int64(c.Stats().Transfers())
			}
			if want := MergeHalvesTransfers(2 * m); sum != want {
				t.Fatalf("p=%d: summed merge transfers = %d, want %d", p, sum, want)
			}
			got2 := readInts(t, cops2[0], id2, 2*m)
			want2 := append([]uint64(nil), vals2...)
			sort.Slice(want2, func(i, j int) bool { return want2[i] < want2[j] })
			for i := range want2 {
				if got2[i] != want2[i] {
					t.Fatalf("merged position %d: got %d want %d", i, got2[i], want2[i])
				}
			}
		})
	}
}

// TestSpanValidation pins the typed refusals of the span entry points.
func TestSpanValidation(t *testing.T) {
	h, cop := newPair(t, 1)
	id := h.MustCreateRegion("v", 8)
	if err := SortSpan(cop, id, -1, 4, intLess); err == nil {
		t.Fatal("SortSpan accepted a negative offset")
	}
	if err := SortSpan(cop, id, 0, -1, intLess); err == nil {
		t.Fatal("SortSpan accepted a negative count")
	}
	if err := MergeHalves(cop, id, 6, intLess); err == nil {
		t.Fatal("MergeHalves accepted a non-power-of-two size")
	}
	if err := ParallelSortSpan(nil, id, 0, 4, intLess); err == nil {
		t.Fatal("ParallelSortSpan accepted an empty group")
	}
	if err := ParallelMergeHalves(nil, id, 4, intLess); err == nil {
		t.Fatal("ParallelMergeHalves accepted an empty group")
	}
}
