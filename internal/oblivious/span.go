package oblivious

import (
	"fmt"

	"ppj/internal/sim"
)

// This file generalises the sorting entry points to sub-spans of a region
// and exposes the odd-even merge of two pre-sorted halves. Together they
// let a caller build one fully sorted array out of independently sorted
// (and possibly cached) halves: sort each half in place with SortSpan /
// ParallelSortSpan, then combine with MergeHalves / ParallelMergeHalves.
// Every schedule remains a pure function of the public sizes — the span
// offset, the pad writes, and the merge network never depend on contents.

// PadRange writes padding cells (maximal elements, as used by Sort) into
// [from, to) of a region. Exported so callers composing spans can pad the
// gap between a span's power-of-two envelope and a larger fixed layout
// with the exact cells the sorts treat as maximal.
func PadRange(t *sim.Coprocessor, region sim.RegionID, from, to int64) error {
	return padRange(t, region, from, to)
}

// SortSpan obliviously sorts cells [lo, lo+n) of a host region ascending.
// Like Sort it pads [lo+n, lo+m) with maximal cells, m = NextPow2(n), so
// the region must extend at least to lo+m. Transfers: SortTransfers(n).
func SortSpan(t *sim.Coprocessor, region sim.RegionID, lo, n int64, less LessFunc) error {
	if n < 0 {
		return fmt.Errorf("oblivious: negative element count %d", n)
	}
	if lo < 0 {
		return fmt.Errorf("oblivious: negative span offset %d", lo)
	}
	if n <= 1 {
		return nil
	}
	m := NextPow2(n)
	if err := padRange(t, region, lo+n, lo+m); err != nil {
		return err
	}
	return sortSpanPow2(t, new(xchg), region, lo, m, padLast(less))
}

// MergeHalves merges the two independently sorted halves of cells [0, m)
// (m a power of two, each half ascending with any padding cells already
// maximal at its top) into one ascending run using Batcher's odd-even
// merge. Transfers: MergeHalvesTransfers(m).
func MergeHalves(t *sim.Coprocessor, region sim.RegionID, m int64, less LessFunc) error {
	if m <= 1 {
		return nil
	}
	if m&(m-1) != 0 {
		return fmt.Errorf("oblivious: merge size %d must be a power of two", m)
	}
	return oddEvenMerge(t, new(xchg), region, 0, m, 1, padLast(less))
}

// MergeHalvesTransfers returns the exact transfer count of MergeHalves
// (and ParallelMergeHalves summed over the group) for m cells.
func MergeHalvesTransfers(m int64) int64 {
	if m <= 1 {
		return 0
	}
	return 4 * oddEvenMergeComparators(m, 1)
}

// ParallelSortSpan is SortSpan over a power-of-two device group: local
// bitonic sorts of m/P blocks followed by the binary odd-even merge tree,
// exactly ParallelSort shifted by lo. The summed transfer count equals
// ParallelSort's for the same (n, P).
func ParallelSortSpan(cops []*sim.Coprocessor, region sim.RegionID, lo, n int64, less LessFunc) error {
	p := int64(len(cops))
	if p == 0 {
		return fmt.Errorf("oblivious: no coprocessors")
	}
	if p&(p-1) != 0 {
		return fmt.Errorf("oblivious: coprocessor count %d must be a power of two", p)
	}
	if lo < 0 {
		return fmt.Errorf("oblivious: negative span offset %d", lo)
	}
	if n <= 1 {
		return nil
	}
	m := NextPow2(n)
	if err := padRange(cops[0], region, lo+n, lo+m); err != nil {
		return err
	}
	if p > m {
		p = m
	}
	block := m / p
	wrapped := padLast(less)

	xs := make([]xchg, len(cops))
	if err := inParallel(p, func(w int64) error {
		return sortSpanPow2(cops[w], &xs[w], region, lo+w*block, block, wrapped)
	}); err != nil {
		return err
	}

	xsp := make([]*xchg, len(cops))
	for i := range xs {
		xsp[i] = &xs[i]
	}
	for width := block; width < m; width <<= 1 {
		merges := m / (2 * width)
		devs := p / merges
		if err := inParallel(merges, func(w int64) error {
			g := w * devs
			return parallelOddEvenMerge(cops[g:g+devs], xsp[g:g+devs], region,
				lo+w*2*width, 2*width, 1, wrapped)
		}); err != nil {
			return err
		}
	}
	return nil
}

// ParallelMergeHalves is MergeHalves over a power-of-two device group: the
// two stride sub-recursions of each level run on disjoint halves of the
// group. The summed transfer count equals MergeHalvesTransfers(m).
func ParallelMergeHalves(cops []*sim.Coprocessor, region sim.RegionID, m int64, less LessFunc) error {
	p := int64(len(cops))
	if p == 0 {
		return fmt.Errorf("oblivious: no coprocessors")
	}
	if p&(p-1) != 0 {
		return fmt.Errorf("oblivious: coprocessor count %d must be a power of two", p)
	}
	if m <= 1 {
		return nil
	}
	if m&(m-1) != 0 {
		return fmt.Errorf("oblivious: merge size %d must be a power of two", m)
	}
	if p > m {
		p = m
	}
	xs := make([]xchg, p)
	xsp := make([]*xchg, p)
	for i := range xs {
		xsp[i] = &xs[i]
	}
	return parallelOddEvenMerge(cops[:p], xsp, region, 0, m, 1, padLast(less))
}

// padLast wraps a comparator so padding cells sort after every real cell.
func padLast(less LessFunc) LessFunc {
	return func(a, b []byte) bool {
		switch {
		case isPad(a):
			return false
		case isPad(b):
			return true
		default:
			return less(a, b)
		}
	}
}
