package oblivious

import (
	"encoding/binary"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"ppj/internal/sim"
)

func newPair(t *testing.T, seed uint64) (*sim.Host, *sim.Coprocessor) {
	t.Helper()
	h := sim.NewHost(1 << 20)
	cop, err := sim.NewCoprocessor(h, sim.Config{Sealer: sim.PlainSealer{}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return h, cop
}

func encodeInt(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func decodeInt(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

func intLess(a, b []byte) bool { return decodeInt(a) < decodeInt(b) }

// loadInts writes values into a fresh region via the coprocessor and resets
// stats so tests measure only the operation under test.
func loadInts(t *testing.T, h *sim.Host, cop *sim.Coprocessor, name string, vals []uint64) sim.RegionID {
	t.Helper()
	id := h.MustCreateRegion(name, len(vals))
	for i, v := range vals {
		if err := cop.Put(id, int64(i), encodeInt(v)); err != nil {
			t.Fatal(err)
		}
	}
	cop.ResetStats()
	return id
}

func readInts(t *testing.T, cop *sim.Coprocessor, id sim.RegionID, n int64) []uint64 {
	t.Helper()
	out := make([]uint64, n)
	for i := int64(0); i < n; i++ {
		pt, err := cop.Get(id, i)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = decodeInt(pt)
	}
	return out
}

func TestNextPow2(t *testing.T) {
	cases := map[int64]int64{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSortSortsAllSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 8, 13, 16, 31, 64, 100, 255} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			h, cop := newPair(t, uint64(n)+1)
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = uint64((i*7919 + 13) % 97)
			}
			id := loadInts(t, h, cop, "s", vals)
			if err := Sort(cop, id, int64(n), intLess); err != nil {
				t.Fatal(err)
			}
			got := readInts(t, cop, id, int64(n))
			want := append([]uint64(nil), vals...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("position %d: got %d want %d (full %v)", i, got[i], want[i], got)
				}
			}
		})
	}
}

func TestSortTransferCountExact(t *testing.T) {
	for _, n := range []int64{2, 3, 8, 16, 37, 128} {
		h, cop := newPair(t, 3)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(n) - uint64(i)
		}
		id := loadInts(t, h, cop, "s", vals)
		if err := Sort(cop, id, n, intLess); err != nil {
			t.Fatal(err)
		}
		st := cop.Stats()
		if got, want := int64(st.Transfers()), SortTransfers(n); got != want {
			t.Errorf("n=%d: transfers %d, want %d", n, got, want)
		}
		if got, want := int64(st.Comparisons), Comparators(NextPow2(n)); got != want {
			t.Errorf("n=%d: comparisons %d, want %d", n, got, want)
		}
	}
}

func TestSortAccessPatternDataIndependent(t *testing.T) {
	// Core privacy property: traces of sorting different data of equal size
	// are identical.
	run := func(vals []uint64) (uint64, uint64) {
		h, cop := newPair(t, 5)
		id := h.MustCreateRegion("s", len(vals))
		for i, v := range vals {
			if err := cop.Put(id, int64(i), encodeInt(v)); err != nil {
				t.Fatal(err)
			}
		}
		if err := Sort(cop, id, int64(len(vals)), intLess); err != nil {
			t.Fatal(err)
		}
		return h.Trace().Digest(), h.Trace().Count()
	}
	d1, c1 := run([]uint64{5, 4, 3, 2, 1, 0, 9, 8, 7, 100})
	d2, c2 := run([]uint64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	if d1 != d2 || c1 != c2 {
		t.Fatal("sort access pattern depends on data")
	}
}

func TestSortProperty(t *testing.T) {
	f := func(raw []uint16, seed uint64) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		vals := make([]uint64, len(raw))
		for i, v := range raw {
			vals[i] = uint64(v)
		}
		h := sim.NewHost(0)
		cop, err := sim.NewCoprocessor(h, sim.Config{Sealer: sim.PlainSealer{}, Seed: seed | 1})
		if err != nil {
			return false
		}
		id := h.MustCreateRegion("s", len(vals))
		for i, v := range vals {
			if err := cop.Put(id, int64(i), encodeInt(v)); err != nil {
				return false
			}
		}
		if err := Sort(cop, id, int64(len(vals)), intLess); err != nil {
			return false
		}
		prev := uint64(0)
		for i := int64(0); i < int64(len(vals)); i++ {
			pt, err := cop.Get(id, i)
			if err != nil {
				return false
			}
			v := decodeInt(pt)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSortRejectsNegative(t *testing.T) {
	h, cop := newPair(t, 1)
	id := h.MustCreateRegion("s", 0)
	if err := Sort(cop, id, -1, intLess); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestShufflePermutes(t *testing.T) {
	const n = 64
	h, cop := newPair(t, 77)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i)
	}
	id := loadInts(t, h, cop, "s", vals)
	if err := Shuffle(cop, id, n); err != nil {
		t.Fatal(err)
	}
	got := readInts(t, cop, id, n)
	seen := make([]bool, n)
	moved := 0
	for i, v := range got {
		if v >= n || seen[v] {
			t.Fatalf("not a permutation: %v", got)
		}
		seen[v] = true
		if uint64(i) != v {
			moved++
		}
	}
	if moved < n/4 {
		t.Fatalf("shuffle barely moved anything: %d of %d", moved, n)
	}
}

func TestShuffleTransferCountExact(t *testing.T) {
	for _, n := range []int64{2, 7, 16, 33} {
		h, cop := newPair(t, 9)
		vals := make([]uint64, n)
		id := loadInts(t, h, cop, "s", vals)
		if err := Shuffle(cop, id, n); err != nil {
			t.Fatal(err)
		}
		if got, want := int64(cop.Stats().Transfers()), ShuffleTransfers(n); got != want {
			t.Errorf("n=%d: transfers %d, want %d", n, got, want)
		}
	}
}

func TestShuffleTraceIndependentOfData(t *testing.T) {
	run := func(vals []uint64) uint64 {
		h, cop := newPair(t, 11)
		id := h.MustCreateRegion("s", len(vals))
		for i, v := range vals {
			if err := cop.Put(id, int64(i), encodeInt(v)); err != nil {
				t.Fatal(err)
			}
		}
		if err := Shuffle(cop, id, int64(len(vals))); err != nil {
			t.Fatal(err)
		}
		return h.Trace().Digest()
	}
	if run([]uint64{1, 2, 3, 4, 5}) != run([]uint64{9, 9, 9, 9, 9}) {
		t.Fatal("shuffle access pattern depends on data")
	}
}

// target cells for filter tests: 8-byte value, targets are odd values.
func isOdd(b []byte) bool { return len(b) == 8 && decodeInt(b)%2 == 1 }

func TestFilterKeepsAllTargets(t *testing.T) {
	for _, tc := range []struct {
		omega, mu, delta int64
	}{
		{100, 8, 8},   // μ+Δ = 16
		{100, 10, 6},  // μ+Δ = 16
		{100, 16, 16}, // μ+Δ = 32
		{20, 8, 24},   // buffer larger than source
		{8, 8, 8},     // ω = μ+Δ/...
	} {
		name := fmt.Sprintf("w%d_m%d_d%d", tc.omega, tc.mu, tc.delta)
		t.Run(name, func(t *testing.T) {
			h, cop := newPair(t, 21)
			// Exactly mu odd targets scattered through omega cells.
			vals := make([]uint64, tc.omega)
			for i := range vals {
				vals[i] = uint64(i) * 2 // all even = decoys
			}
			step := tc.omega / tc.mu
			for k := int64(0); k < tc.mu; k++ {
				vals[k*step] = uint64(2*k + 1) // odd = target
			}
			id := loadInts(t, h, cop, "src", vals)
			buf, err := Filter(cop, id, tc.omega, tc.mu, tc.delta, isOdd, "buf")
			if err != nil {
				t.Fatal(err)
			}
			got := readInts(t, cop, buf, tc.mu)
			found := map[uint64]bool{}
			for _, v := range got {
				if v%2 != 1 {
					t.Fatalf("non-target %d in kept region %v", v, got)
				}
				found[v] = true
			}
			for k := int64(0); k < tc.mu; k++ {
				if !found[uint64(2*k+1)] {
					t.Fatalf("target %d lost (%v)", 2*k+1, got)
				}
			}
		})
	}
}

func TestFilterTransferCountExact(t *testing.T) {
	for _, tc := range []struct{ omega, mu, delta int64 }{
		{100, 8, 8}, {50, 10, 6}, {300, 16, 48},
	} {
		h, cop := newPair(t, 23)
		vals := make([]uint64, tc.omega)
		id := loadInts(t, h, cop, "src", vals)
		if _, err := Filter(cop, id, tc.omega, tc.mu, tc.delta, isOdd, "buf"); err != nil {
			t.Fatal(err)
		}
		if got, want := int64(cop.Stats().Transfers()), FilterTransfers(tc.omega, tc.mu, tc.delta); got != want {
			t.Errorf("ω=%d μ=%d Δ=%d: transfers %d, want %d", tc.omega, tc.mu, tc.delta, got, want)
		}
	}
}

func TestFilterValidation(t *testing.T) {
	h, cop := newPair(t, 25)
	id := h.MustCreateRegion("src", 4)
	if _, err := Filter(cop, id, 4, 3, 2, isOdd, "b1"); err == nil {
		t.Fatal("non-power-of-two buffer accepted")
	}
	if _, err := Filter(cop, id, 4, 3, 0, isOdd, "b2"); err == nil {
		t.Fatal("zero delta accepted")
	}
}

func TestFilterTraceIndependentOfTargetPositions(t *testing.T) {
	run := func(targetAt []int64) uint64 {
		h, cop := newPair(t, 31)
		const omega, mu, delta = 64, 4, 12
		vals := make([]uint64, omega)
		for i := range vals {
			vals[i] = uint64(i) * 2
		}
		for k, pos := range targetAt {
			vals[pos] = uint64(2*k + 1)
		}
		id := h.MustCreateRegion("src", int(omega))
		for i, v := range vals {
			if err := cop.Put(id, int64(i), encodeInt(v)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := Filter(cop, id, omega, mu, delta, isOdd, "buf"); err != nil {
			t.Fatal(err)
		}
		return h.Trace().Digest()
	}
	if run([]int64{0, 1, 2, 3}) != run([]int64{60, 61, 62, 63}) {
		t.Fatal("filter access pattern depends on target positions")
	}
}

func TestChooseDelta(t *testing.T) {
	omega, mu := int64(10000), int64(100)
	delta := ChooseDelta(omega, mu)
	if delta <= 0 || NextPow2(mu+delta) != mu+delta {
		t.Fatalf("ChooseDelta returned incompatible Δ=%d", delta)
	}
	chosen := FilterTransfers(omega, mu, delta)
	// Must be no worse than the single-full-sort fallback and the smallest
	// buffer.
	alt1 := FilterTransfers(omega, mu, NextPow2(omega)*2-mu)
	alt2 := FilterTransfers(omega, mu, NextPow2(mu+1)-mu)
	if chosen > alt1 || chosen > alt2 {
		t.Fatalf("ChooseDelta not optimal: chose %d (%d), alternatives %d / %d",
			delta, chosen, alt1, alt2)
	}
}

func TestParallelSortMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		for _, n := range []int64{8, 16, 37, 128} {
			t.Run(fmt.Sprintf("p=%d_n=%d", p, n), func(t *testing.T) {
				h := sim.NewHost(0)
				sealer := sim.PlainSealer{}
				cops := make([]*sim.Coprocessor, p)
				for i := range cops {
					var err error
					cops[i], err = sim.NewCoprocessor(h, sim.Config{Sealer: sealer, Seed: uint64(i) + 1})
					if err != nil {
						t.Fatal(err)
					}
				}
				id := h.MustCreateRegion("s", int(n))
				vals := make([]uint64, n)
				for i := range vals {
					vals[i] = uint64((int64(i)*2654435761 + 17) % 1000)
				}
				for i, v := range vals {
					if err := cops[0].Put(id, int64(i), encodeInt(v)); err != nil {
						t.Fatal(err)
					}
				}
				if err := ParallelSort(cops, id, n, intLess); err != nil {
					t.Fatal(err)
				}
				got := make([]uint64, n)
				for i := int64(0); i < n; i++ {
					pt, err := cops[0].Get(id, i)
					if err != nil {
						t.Fatal(err)
					}
					got[i] = decodeInt(pt)
				}
				want := append([]uint64(nil), vals...)
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("position %d: got %d want %d", i, got[i], want[i])
					}
				}
			})
		}
	}
}

func TestParallelSortValidation(t *testing.T) {
	h, _ := newPair(t, 1)
	id := h.MustCreateRegion("x", 4)
	if err := ParallelSort(nil, id, 4, intLess); err == nil {
		t.Fatal("zero coprocessors accepted")
	}
	cops := make([]*sim.Coprocessor, 3)
	for i := range cops {
		cops[i], _ = sim.NewCoprocessor(h, sim.Config{Sealer: sim.PlainSealer{}, Seed: uint64(i) + 1})
	}
	if err := ParallelSort(cops, id, 4, intLess); err == nil {
		t.Fatal("non-power-of-two coprocessor count accepted")
	}
}

func TestParallelSortPerDeviceTraceDataIndependent(t *testing.T) {
	run := func(vals []uint64) []uint64 {
		h := sim.NewHost(0)
		sealer := sim.PlainSealer{}
		cops := make([]*sim.Coprocessor, 4)
		for i := range cops {
			cops[i], _ = sim.NewCoprocessor(h, sim.Config{Sealer: sealer, Seed: uint64(i) + 1})
		}
		id := h.MustCreateRegion("s", len(vals))
		loader, _ := sim.NewCoprocessor(h, sim.Config{Sealer: sealer, Seed: 99})
		for i, v := range vals {
			if err := loader.Put(id, int64(i), encodeInt(v)); err != nil {
				t.Fatal(err)
			}
		}
		if err := ParallelSort(cops, id, int64(len(vals)), intLess); err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, len(cops))
		for i, c := range cops {
			out[i] = c.Trace().Digest()
		}
		return out
	}
	mk := func(base uint64) []uint64 {
		v := make([]uint64, 64)
		for i := range v {
			v[i] = base * uint64(i+1) % 251
		}
		return v
	}
	a, b := run(mk(7)), run(mk(113))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("device %d access pattern depends on data", i)
		}
	}
}
