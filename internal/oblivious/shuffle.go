package oblivious

import (
	"encoding/binary"
	"fmt"

	"ppj/internal/sim"
)

// Shuffle obliviously permutes cells [0, n) of a region uniformly at random:
// each element is re-encrypted with a fresh 64-bit key drawn from T's
// internal randomness prepended, the list is bitonic-sorted by that key, and
// the keys are stripped. The adversary observes only the fixed bitonic
// schedule; the permutation is determined by randomness that never leaves T
// (the "obliviously shuffle" primitive of §4.5.1, after Iliev & Smith [24]).
func Shuffle(t *sim.Coprocessor, region sim.RegionID, n int64) error {
	if n < 0 {
		return fmt.Errorf("oblivious: negative element count %d", n)
	}
	if n <= 1 {
		return nil
	}
	// Tag phase: rewrite every cell as key || payload. The tag buffer is
	// reused across cells; TransformRange seals each result before the next
	// callback runs.
	var tagged []byte
	err := t.TransformRange(region, 0, region, 0, n, func(k int64, pt []byte) ([]byte, error) {
		tagged = binary.BigEndian.AppendUint64(tagged[:0], t.Rand().Uint64())
		tagged = append(tagged, pt...)
		return tagged, nil
	})
	if err != nil {
		return err
	}
	less := func(a, b []byte) bool {
		return binary.BigEndian.Uint64(a) < binary.BigEndian.Uint64(b)
	}
	if err := Sort(t, region, n, less); err != nil {
		return err
	}
	// Strip phase.
	return t.TransformRange(region, 0, region, 0, n, func(k int64, pt []byte) ([]byte, error) {
		if len(pt) < 8 {
			return nil, fmt.Errorf("oblivious: shuffle strip found short cell at %d", k)
		}
		return pt[8:], nil
	})
}

// ShuffleTransfers returns the exact transfer count of Shuffle on n cells.
func ShuffleTransfers(n int64) int64 {
	if n <= 1 {
		return 0
	}
	return 4*n + SortTransfers(n)
}
