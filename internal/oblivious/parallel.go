package oblivious

import (
	"fmt"
	"sync"

	"ppj/internal/sim"
)

// ParallelSort obliviously sorts cells [0, n) of a region using P secure
// coprocessors attached to the same host (§4.4.4, §5.3.5: "Each secure
// coprocessor has about N/P items and first sorts them locally using
// sequential bitonic sort. Then the P secure coprocessors sort the P sorted
// lists...").
//
// The P sorted blocks are combined by a binary tree of Batcher odd-even
// merges: each level merges adjacent sorted runs pairwise until one run
// remains. Within a single merge, Batcher's two stride sub-recursions touch
// disjoint cells (the even and odd index classes), so they run concurrently
// on disjoint halves of the merge's device group; the closing comparator
// chain is sequential. The paper's own phase 2 — a bitonic network over
// blocks with merge-split comparators — has the same depth but performs
// redundant merge-split work: at P=4 its total comparator count *exceeds*
// the single-device network (the BENCH_3 P=4 regression on few-core hosts,
// where wall time tracks total work, not critical path). The merge tree
// does strictly fewer comparators than the sequential sort at every P while
// keeping every stage's parallelism, so it wins on both axes. All
// coprocessors must share one sealer (they re-encrypt cells for each
// other).
//
// P must be a power of two. Every device's comparator schedule is a pure
// function of (n, P, its fleet position) — contents never influence which
// cells a device touches.
func ParallelSort(cops []*sim.Coprocessor, region sim.RegionID, n int64, less LessFunc) error {
	p := int64(len(cops))
	if p == 0 {
		return fmt.Errorf("oblivious: no coprocessors")
	}
	if p&(p-1) != 0 {
		return fmt.Errorf("oblivious: coprocessor count %d must be a power of two", p)
	}
	if n <= 1 {
		return nil
	}
	m := NextPow2(n)
	if err := padRange(cops[0], region, n, m); err != nil {
		return err
	}
	if p > m {
		p = m // more devices than elements: use m of them
	}
	block := m / p
	wrapped := func(a, b []byte) bool {
		switch {
		case isPad(a):
			return false
		case isPad(b):
			return true
		default:
			return less(a, b)
		}
	}

	// Per-device comparator scratch: worker w always drives cops[w'] with
	// w' = w mod len(cops), and within any phase or stage the workers map to
	// distinct devices, so xs[w'] is never shared between live goroutines.
	xs := make([]xchg, len(cops))

	// Phase 1: local sorts, one block per coprocessor.
	if err := inParallel(p, func(w int64) error {
		return sortSpanPow2(cops[w], &xs[w], region, w*block, block, wrapped)
	}); err != nil {
		return err
	}

	// Phase 2: binary tree of odd-even merges. Level by level, adjacent
	// sorted runs of `width` cells merge into runs of 2·width; the m/(2w)
	// merges of a level are disjoint and run concurrently, each on its own
	// contiguous group of p/(m/2w) devices.
	xsp := make([]*xchg, len(cops))
	for i := range xs {
		xsp[i] = &xs[i]
	}
	for width := block; width < m; width <<= 1 {
		merges := m / (2 * width)
		devs := p / merges
		if err := inParallel(merges, func(w int64) error {
			g := w * devs
			return parallelOddEvenMerge(cops[g:g+devs], xsp[g:g+devs], region,
				w*2*width, 2*width, 1, wrapped)
		}); err != nil {
			return err
		}
	}
	return nil
}

// parallelOddEvenMerge runs Batcher's odd-even merge of the two sorted
// halves of the m cells at lo over a device group: the two stride
// sub-recursions operate on disjoint index classes (even and odd multiples
// of r), so each takes half the group concurrently until a single device
// remains, which falls back to the sequential recursion. The closing
// comparator chain of each level runs on the group's first device after
// both sub-merges complete.
func parallelOddEvenMerge(cops []*sim.Coprocessor, xs []*xchg, region sim.RegionID, lo, m, r int64, less LessFunc) error {
	step := r * 2
	if len(cops) <= 1 || step >= m {
		return oddEvenMerge(cops[0], xs[0], region, lo, m, r, less)
	}
	half := len(cops) / 2
	var errEven, errOdd error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		errEven = parallelOddEvenMerge(cops[:half], xs[:half], region, lo, m, step, less)
	}()
	go func() {
		defer wg.Done()
		errOdd = parallelOddEvenMerge(cops[half:], xs[half:], region, lo+r, m, step, less)
	}()
	wg.Wait()
	if errEven != nil {
		return errEven
	}
	if errOdd != nil {
		return errOdd
	}
	for i := lo + r; i+r < lo+m; i += step {
		if err := xs[0].compareExchange(cops[0], region, i, i+r, true, less); err != nil {
			return err
		}
	}
	return nil
}

// sortSpanPow2 bitonic-sorts cells [lo, lo+m) where m is a power of two.
func sortSpanPow2(t *sim.Coprocessor, x *xchg, region sim.RegionID, lo, m int64, less LessFunc) error {
	for k := int64(2); k <= m; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := int64(0); i < m; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				ascending := i&k == 0
				if err := x.compareExchange(t, region, lo+i, lo+l, ascending, less); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// inParallel runs fn(0..n-1) concurrently and joins errors.
func inParallel(n int64, fn func(w int64) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := int64(0); w < n; w++ {
		wg.Add(1)
		go func(w int64) {
			defer wg.Done()
			errs[w] = fn(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
