package oblivious

import (
	"fmt"
	"sync"

	"ppj/internal/sim"
)

// ParallelSort obliviously sorts cells [0, n) of a region using P secure
// coprocessors attached to the same host (§4.4.4, §5.3.5: "Each secure
// coprocessor has about N/P items and first sorts them locally using
// sequential bitonic sort. Then the P secure coprocessors sort the P sorted
// lists using bitonic sort and treats each list as one single element.").
//
// The "block as one element" comparator is realised as an oblivious
// merge-split: a cross half-cleaner between the two sorted blocks followed
// by a bitonic merge inside each block, leaving every element of the low
// block ≤ every element of the high block with both blocks sorted. By the
// 0-1 principle this block network sorts globally. All coprocessors must
// share one sealer (they re-encrypt cells for each other).
//
// P must be a power of two. Within every stage the block pairs are disjoint
// and run concurrently, one coprocessor per pair; stages are barriers.
func ParallelSort(cops []*sim.Coprocessor, region sim.RegionID, n int64, less LessFunc) error {
	p := int64(len(cops))
	if p == 0 {
		return fmt.Errorf("oblivious: no coprocessors")
	}
	if p&(p-1) != 0 {
		return fmt.Errorf("oblivious: coprocessor count %d must be a power of two", p)
	}
	if n <= 1 {
		return nil
	}
	m := NextPow2(n)
	if err := padRange(cops[0], region, n, m); err != nil {
		return err
	}
	if p > m {
		p = m // more devices than elements: use m of them
	}
	block := m / p
	wrapped := func(a, b []byte) bool {
		switch {
		case isPad(a):
			return false
		case isPad(b):
			return true
		default:
			return less(a, b)
		}
	}

	// Per-device comparator scratch: worker w always drives cops[w'] with
	// w' = w mod len(cops), and within any phase or stage the workers map to
	// distinct devices, so xs[w'] is never shared between live goroutines.
	xs := make([]xchg, len(cops))

	// Phase 1: local sorts, one block per coprocessor.
	if err := inParallel(p, func(w int64) error {
		return sortSpanPow2(cops[w], &xs[w], region, w*block, block, wrapped)
	}); err != nil {
		return err
	}

	// Phase 2: bitonic network over blocks, merge-split comparators.
	for k := int64(2); k <= p; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			// Collect the disjoint pairs of this stage.
			type pair struct{ lo, hi int64 }
			var pairs []pair
			for i := int64(0); i < p; i++ {
				l := i ^ j
				if l > i {
					asc := i&k == 0
					if asc {
						pairs = append(pairs, pair{i, l})
					} else {
						pairs = append(pairs, pair{l, i})
					}
				}
			}
			if err := inParallel(int64(len(pairs)), func(w int64) error {
				pr := pairs[w]
				d := w % int64(len(cops))
				return mergeSplit(cops[d], &xs[d], region,
					pr.lo*block, pr.hi*block, block, wrapped)
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortSpanPow2 bitonic-sorts cells [lo, lo+m) where m is a power of two.
func sortSpanPow2(t *sim.Coprocessor, x *xchg, region sim.RegionID, lo, m int64, less LessFunc) error {
	for k := int64(2); k <= m; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := int64(0); i < m; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				ascending := i&k == 0
				if err := x.compareExchange(t, region, lo+i, lo+l, ascending, less); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// mergeSplit merges two ascending-sorted blocks at lo and hi (each of block
// cells, block a power of two) so that afterwards both are sorted and every
// element at lo ≤ every element at hi.
func mergeSplit(t *sim.Coprocessor, x *xchg, region sim.RegionID, lo, hi, block int64, less LessFunc) error {
	// Cross half-cleaner over A ++ reverse(B).
	for i := int64(0); i < block; i++ {
		if err := x.compareExchange(t, region, lo+i, hi+block-1-i, true, less); err != nil {
			return err
		}
	}
	// Each block is now bitonic; merge each ascending.
	if err := bitonicMerge(t, x, region, lo, block, less); err != nil {
		return err
	}
	return bitonicMerge(t, x, region, hi, block, less)
}

// bitonicMerge sorts a bitonic sequence of m (power of two) cells ascending.
func bitonicMerge(t *sim.Coprocessor, x *xchg, region sim.RegionID, lo, m int64, less LessFunc) error {
	for j := m >> 1; j > 0; j >>= 1 {
		for i := int64(0); i < m; i++ {
			l := i ^ j
			if l <= i {
				continue
			}
			if err := x.compareExchange(t, region, lo+i, lo+l, true, less); err != nil {
				return err
			}
		}
	}
	return nil
}

// inParallel runs fn(0..n-1) concurrently and joins errors.
func inParallel(n int64, fn func(w int64) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := int64(0); w < n; w++ {
		wg.Add(1)
		go func(w int64) {
			defer wg.Done()
			errs[w] = fn(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
