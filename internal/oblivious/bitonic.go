// Package oblivious implements the data-oblivious building blocks the join
// algorithms orchestrate through the secure coprocessor: Batcher's bitonic
// sorting network (§4.4.1), an oblivious shuffle (random-key sort, used by
// the unsafe-baseline discussions of §4.5.1), and the optimised repeated
// decoy filter of §5.2.2.
//
// An oblivious sort "sorts a list of encrypted elements such that no
// observer learns the relationship between the position of any element in
// the original list and the output list" (§4.4.1). Bitonic networks achieve
// this because the comparator schedule is a pure function of the element
// count: every compare-exchange gets both cells, decrypts, compares inside
// T, re-encrypts, and writes both cells back — 4 transfers per comparator,
// always, regardless of the outcome.
package oblivious

import (
	"fmt"
	"math/bits"

	"ppj/internal/sim"
)

// LessFunc orders decrypted cell plaintexts.
type LessFunc func(a, b []byte) bool

// padCell is the plaintext of padding cells appended when the element count
// is not a power of two. It compares greater than every real element. Real
// cell plaintexts must be longer than one byte (all tuple encodings are).
var padCell = []byte{0xF0}

func isPad(b []byte) bool { return len(b) == 1 && b[0] == padCell[0] }

// NextPow2 returns the smallest power of two >= n (n > 0).
func NextPow2(n int64) int64 {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len64(uint64(n-1))
}

// Sort obliviously sorts cells [0, n) of a host region in ascending order of
// less. If n is not a power of two the region is first extended with padding
// cells (maximal elements) up to the next power of two; after sorting they
// occupy positions [n, m) and the first n cells hold the sorted data. All
// accesses — including the padding writes — depend only on n.
func Sort(t *sim.Coprocessor, region sim.RegionID, n int64, less LessFunc) error {
	if n < 0 {
		return fmt.Errorf("oblivious: negative element count %d", n)
	}
	if n <= 1 {
		return nil
	}
	m := NextPow2(n)
	if err := padRange(t, region, n, m); err != nil {
		return err
	}
	wrapped := func(a, b []byte) bool {
		switch {
		case isPad(a):
			return false
		case isPad(b):
			return true
		default:
			return less(a, b)
		}
	}
	return sortPow2(t, new(xchg), region, m, wrapped)
}

// padRange writes padding cells into [from, to) through the batched
// transfer path. Same traced puts as the old per-cell loop, one region-lock
// acquisition per TransferBatch window.
func padRange(t *sim.Coprocessor, region sim.RegionID, from, to int64) error {
	n := to - from
	if n <= 0 {
		return nil
	}
	pads := make([][]byte, n)
	for i := range pads {
		pads[i] = padCell
	}
	return t.PutRange(region, from, pads)
}

// sortPow2 runs the classic iterative bitonic network over m = 2^k cells.
func sortPow2(t *sim.Coprocessor, x *xchg, region sim.RegionID, m int64, less LessFunc) error {
	for k := int64(2); k <= m; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := int64(0); i < m; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				ascending := i&k == 0
				if err := x.compareExchange(t, region, i, l, ascending, less); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// xchg is the reused scratch of the batched comparator: two index slots and
// two plaintext buffers whose backing arrays survive across comparators, so
// a full sorting network allocates nothing per compare-exchange. One xchg
// belongs to one goroutine; parallel sorts carry one per device.
type xchg struct {
	idx [2]int64
	pts [][]byte
}

// compareExchange performs one comparator: get both cells (one batched
// transfer), compare inside T, put both cells back (possibly swapped). The
// traced sequence — get i, get j, put i, put j — and the transfer count are
// identical to the per-cell version and outcome-independent.
func (x *xchg) compareExchange(t *sim.Coprocessor, region sim.RegionID, i, j int64, ascending bool, less LessFunc) error {
	x.idx[0], x.idx[1] = i, j
	var err error
	x.pts, err = t.GetBatchInto(x.pts, region, x.idx[:])
	if err != nil {
		return err
	}
	t.ChargeCompare()
	if less(x.pts[1], x.pts[0]) == ascending {
		x.pts[0], x.pts[1] = x.pts[1], x.pts[0]
	}
	return t.PutBatch(region, x.idx[:], x.pts)
}

// Comparators returns the exact number of compare-exchanges the network
// executes for m = 2^k elements: (m/2)·k(k+1)/2. The paper approximates
// this as ¼·m·(log₂ m)² (§4.4.1).
func Comparators(m int64) int64 {
	if m <= 1 {
		return 0
	}
	k := int64(bits.Len64(uint64(m))) - 1
	return (m / 2) * k * (k + 1) / 2
}

// SortTransfers returns the exact number of tuple transfers of Sort for n
// elements: padding puts plus 4 per comparator.
func SortTransfers(n int64) int64 {
	if n <= 1 {
		return 0
	}
	m := NextPow2(n)
	return (m - n) + 4*Comparators(m)
}
