package oblivious

import (
	"encoding/binary"
	"math/rand/v2"
	"testing"

	"ppj/internal/sim"
)

// Expansion-cell test codec: flag byte (1 = real) + dest uint64 + id uint64.
// All cells are the same length, real or not, as the algorithms require.
func expCell(real bool, dest, id int64) []byte {
	b := make([]byte, 17)
	if real {
		b[0] = 1
	}
	binary.BigEndian.PutUint64(b[1:], uint64(dest))
	binary.BigEndian.PutUint64(b[9:], uint64(id))
	return b
}

func expRoute(pt []byte) (bool, int64) {
	return pt[0] == 1, int64(binary.BigEndian.Uint64(pt[1:]))
}

func expID(pt []byte) int64 { return int64(binary.BigEndian.Uint64(pt[9:])) }

// loadExpCells writes a compacted prefix of K real cells with the given
// destinations into a region of m cells, filling the rest with empties.
func loadExpCells(t *testing.T, h *sim.Host, cop *sim.Coprocessor, m int64, dests []int64) sim.RegionID {
	t.Helper()
	id := h.MustCreateRegion("exp", int(m))
	for i := int64(0); i < m; i++ {
		cell := expCell(false, 0, -1)
		if i < int64(len(dests)) {
			cell = expCell(true, dests[i], i)
		}
		if err := cop.Put(id, i, cell); err != nil {
			t.Fatal(err)
		}
	}
	cop.ResetStats()
	return id
}

// TestDistributePlacesAllPatterns drives the routing network over every
// subset-like destination pattern of small sizes and random sparse patterns
// of larger ones: real cell k (holding id k) must land exactly at dests[k]
// with every other slot empty.
func TestDistributePlacesAllPatterns(t *testing.T) {
	check := func(t *testing.T, m int64, dests []int64) {
		t.Helper()
		h, cop := newPair(t, 7)
		id := loadExpCells(t, h, cop, m, dests)
		if err := Distribute(cop, id, m, expRoute); err != nil {
			t.Fatal(err)
		}
		if got, want := int64(cop.Stats().Transfers()), DistributeTransfers(m); got != want {
			t.Fatalf("m=%d dests=%v: %d transfers, want %d", m, dests, got, want)
		}
		want := make(map[int64]int64, len(dests))
		for k, d := range dests {
			want[d] = int64(k)
		}
		for i := int64(0); i < m; i++ {
			pt, err := cop.Get(id, i)
			if err != nil {
				t.Fatal(err)
			}
			real, _ := expRoute(pt)
			wantID, wantReal := want[i]
			if real != wantReal {
				t.Fatalf("m=%d dests=%v: slot %d real=%v, want %v", m, dests, i, real, wantReal)
			}
			if real && expID(pt) != wantID {
				t.Fatalf("m=%d dests=%v: slot %d holds id %d, want %d", m, dests, i, expID(pt), wantID)
			}
		}
	}

	// Exhaustive over m=8: every strictly increasing destination sequence
	// with dest_k >= k is a valid compacted input.
	var rec func(dests []int64, next int64)
	var all [][]int64
	rec = func(dests []int64, next int64) {
		cp := append([]int64(nil), dests...)
		all = append(all, cp)
		for d := next; d < 8; d++ {
			if d >= int64(len(dests)) {
				rec(append(dests, d), d+1)
			}
		}
	}
	rec(nil, 0)
	for _, dests := range all {
		check(t, 8, dests)
	}

	// Random sparse patterns at larger sizes.
	rng := rand.New(rand.NewPCG(11, 13))
	for _, m := range []int64{16, 64, 256} {
		for trial := 0; trial < 8; trial++ {
			var dests []int64
			for d := int64(0); d < m; d++ {
				if int64(len(dests)) <= d && rng.IntN(3) == 0 {
					dests = append(dests, d)
				}
			}
			check(t, m, dests)
		}
	}
}

// TestDistributeRejectsNonPow2 pins the power-of-two precondition.
func TestDistributeRejectsNonPow2(t *testing.T) {
	h, cop := newPair(t, 3)
	id := h.MustCreateRegion("bad", 6)
	_ = id
	if err := Distribute(cop, id, 6, expRoute); err == nil {
		t.Fatal("Distribute accepted a non-power-of-two length")
	}
}

// TestDistributeScheduleInvariance pins content-independence: two runs over
// unrelated destination patterns of the same length charge identical Stats,
// and a single-device host trace digest is identical.
func TestDistributeScheduleInvariance(t *testing.T) {
	run := func(dests []int64) (sim.Stats, uint64) {
		h, cop := newPair(t, 99)
		id := loadExpCells(t, h, cop, 32, dests)
		cop.ResetStats()
		if err := Distribute(cop, id, 32, expRoute); err != nil {
			t.Fatal(err)
		}
		return cop.Stats(), cop.Trace().Digest()
	}
	s1, d1 := run([]int64{0, 5, 9, 30})
	s2, d2 := run([]int64{2, 3, 4, 5, 6, 17, 18, 19, 20, 31})
	if s1 != s2 {
		t.Fatalf("distribution stats depend on contents:\n %+v\n %+v", s1, s2)
	}
	if d1 != d2 {
		t.Fatalf("distribution trace depends on contents: %x vs %x", d1, d2)
	}
}

// TestFillForward checks the duplication scan: empties take a copy of the
// nearest real cell to their left, with fn free to rewrite the occurrence.
func TestFillForward(t *testing.T) {
	h, cop := newPair(t, 5)
	// real(id=10) _ _ real(id=20) _ real(id=30)
	layout := []struct {
		real bool
		id   int64
	}{{true, 10}, {false, 0}, {false, 0}, {true, 20}, {false, 0}, {true, 30}}
	id := h.MustCreateRegion("fill", len(layout))
	for i, c := range layout {
		if err := cop.Put(id, int64(i), expCell(c.real, 0, c.id)); err != nil {
			t.Fatal(err)
		}
	}
	cop.ResetStats()
	isReal := func(pt []byte) bool { r, _ := expRoute(pt); return r }
	err := FillForward(cop, id, int64(len(layout)), isReal, func(k int64, pt, held []byte) ([]byte, error) {
		return expCell(true, k, expID(held)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := int64(cop.Stats().Transfers()), FillForwardTransfers(int64(len(layout))); got != want {
		t.Fatalf("%d transfers, want %d", got, want)
	}
	want := []int64{10, 10, 10, 20, 20, 30}
	for i, w := range want {
		pt, err := cop.Get(id, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if expID(pt) != w {
			t.Fatalf("slot %d holds id %d, want %d", i, expID(pt), w)
		}
	}
}

// TestFillForwardNoSource pins the error when the scan starts on a filler.
func TestFillForwardNoSource(t *testing.T) {
	h, cop := newPair(t, 5)
	id := h.MustCreateRegion("fill0", 2)
	for i := 0; i < 2; i++ {
		if err := cop.Put(id, int64(i), expCell(false, 0, -1)); err != nil {
			t.Fatal(err)
		}
	}
	isReal := func(pt []byte) bool { r, _ := expRoute(pt); return r }
	err := FillForward(cop, id, 2, isReal, func(k int64, pt, held []byte) ([]byte, error) {
		return pt, nil
	})
	if err == nil {
		t.Fatal("FillForward succeeded without a real first cell")
	}
}

// TestDistributePairsFormula cross-checks the closed form against the loop.
func TestDistributePairsFormula(t *testing.T) {
	for _, m := range []int64{1, 2, 4, 8, 64, 1024} {
		var want int64
		for j := m / 2; j >= 1; j >>= 1 {
			want += m - j
		}
		if got := DistributePairs(m); got != want {
			t.Errorf("DistributePairs(%d) = %d, want %d", m, got, want)
		}
	}
}
