package oblivious

import (
	"fmt"

	"ppj/internal/sim"
)

// This file implements the oblivious distribution network and the oblivious
// fill-forward scan, the expansion primitives behind the O(n log n)-style
// equijoin (Algorithm 7, after Krastnikov et al., "Efficient Oblivious
// Database Joins", PAPERS.md). Together they obliviously expand a compacted
// list of tuples by prefix-summed multiplicities: Distribute routes each
// tuple to the first output slot of its group, FillForward duplicates it
// into the remaining slots. Like the sorting networks, every step's access
// schedule is a pure function of the (public) array length — the pairs
// touched, their order, and the four transfers per pair never depend on
// cell contents.

// RouteFunc inspects a decrypted cell and reports whether it is a real
// element and, if so, the output slot it is destined for. It is evaluated
// inside T; the result never reaches the host.
type RouteFunc func(pt []byte) (real bool, dest int64)

// Distribute obliviously routes the real cells of region [0, m) to their
// destinations. m must be a power of two. The input must be compacted:
// the real cells occupy a prefix [0, K), their destinations are strictly
// increasing, and cell k's destination satisfies dest ≥ k (destinations are
// distinct slots of [0, m), so this always holds after a rank-preserving
// compaction). Cells vacated by a move become whatever non-real cell
// previously occupied the destination, so callers interleave real cells
// with uniform "empty" fillers of the same size.
//
// The network processes strides j = m/2, m/4, …, 1; within a stride,
// positions i = m−j−1 down to 0, moving T[i] forward to T[i+j] exactly when
// T[i] is real and its destination is at least i+j. An element whose
// destination d lies in [i+j, i+2j) arrives exactly at d after the
// remaining strides (the standard induction: after stride j every real
// cell is within j−1 slots of its destination, and no two cells collide
// because destinations are strictly increasing). Every pair costs four
// transfers — get both, decide inside T, put both — regardless of the
// decision, so the trace is content-independent.
func Distribute(t *sim.Coprocessor, region sim.RegionID, m int64, route RouteFunc) error {
	if m < 0 || m&(m-1) != 0 {
		return fmt.Errorf("oblivious: distribute length %d is not a power of two", m)
	}
	x := new(xchg)
	for j := m / 2; j >= 1; j >>= 1 {
		for i := m - j - 1; i >= 0; i-- {
			if err := x.routeExchange(t, region, i, i+j, route); err != nil {
				return err
			}
		}
	}
	return nil
}

// routeExchange performs one distribution pair: get cells i and i+j, decide
// inside T whether the forward move fires, put both cells back (swapped or
// re-encrypted in place). Charged as one comparison, like a sort
// compare-exchange.
func (x *xchg) routeExchange(t *sim.Coprocessor, region sim.RegionID, i, j int64, route RouteFunc) error {
	x.idx[0], x.idx[1] = i, j
	var err error
	x.pts, err = t.GetBatchInto(x.pts, region, x.idx[:])
	if err != nil {
		return err
	}
	t.ChargeCompare()
	if real, dest := route(x.pts[0]); real && dest >= j {
		x.pts[0], x.pts[1] = x.pts[1], x.pts[0]
	}
	return t.PutBatch(region, x.idx[:], x.pts)
}

// DistributePairs is the exact number of routing pairs Distribute executes
// for m = 2^k cells: Σ_j (m − j) over j = m/2 … 1, i.e. m·log₂m − (m−1).
func DistributePairs(m int64) int64 {
	var pairs int64
	for j := m / 2; j >= 1; j >>= 1 {
		pairs += m - j
	}
	return pairs
}

// DistributeTransfers is the exact transfer count of Distribute: four per
// routing pair.
func DistributeTransfers(m int64) int64 { return 4 * DistributePairs(m) }

// FillForward performs the duplication half of the oblivious expansion: a
// single forward scan over cells [0, n) during which T retains a copy of
// the most recent real cell ("held") and rewrites every cell through fn.
// For a real cell, held is the cell itself; for a filler cell, held is the
// nearest real cell to its left — fn typically emits a copy of held with an
// adjusted occurrence index. Every cell is read and rewritten exactly once
// (2n transfers), so the pattern is content-independent; the held copy is
// the one tuple of algorithm-visible state, which callers cover with a
// Grant. fn must not retain pt, held, or its return value past the call.
//
// If the first cell is not real there is nothing to duplicate from and
// FillForward fails — expansion inputs always place a real cell at slot 0.
func FillForward(t *sim.Coprocessor, region sim.RegionID, n int64,
	isReal func(pt []byte) bool, fn func(k int64, pt, held []byte) ([]byte, error)) error {
	var held []byte
	return t.TransformRange(region, 0, region, 0, n, func(k int64, pt []byte) ([]byte, error) {
		if isReal(pt) {
			held = append(held[:0], pt...)
		} else if held == nil {
			return nil, fmt.Errorf("oblivious: fill-forward cell %d has no real predecessor", k)
		}
		return fn(k, pt, held)
	})
}

// FillForwardTransfers is the exact transfer count of FillForward.
func FillForwardTransfers(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return 2 * n
}
