package oblivious

import (
	"fmt"

	"ppj/internal/sim"
)

// Filter implements the optimised oblivious decoy removal of §5.2.2: given a
// source list of ω encrypted cells of which at most μ are "targets" (real
// join results) and the rest decoys, it returns a buffer region whose first
// μ cells contain every target, without revealing which source positions
// held them.
//
// Instead of one bitonic sort of all ω cells, it repeatedly sorts a buffer
// of μ+Δ cells: the buffer is filled from the source, sorted target-first,
// and then its bottom Δ cells — guaranteed decoys, since at most μ targets
// exist — are overwritten with the next Δ source cells. The paper shows the
// total cost (ω−μ)/Δ · (μ+Δ)[log₂(μ+Δ)]² transfers and derives an optimal
// swap size Δ*.
//
// This implementation requires μ+Δ to be a power of two so the repeated
// bitonic sorts need no per-round padding; ChooseDelta picks the best such
// Δ. Rounds with fewer than Δ remaining source cells are topped up with
// padding cells, so the access pattern is a function of (ω, μ, Δ) only.
func Filter(t *sim.Coprocessor, src sim.RegionID, omega, mu, delta int64,
	isTarget func([]byte) bool, bufName string) (sim.RegionID, error) {
	if mu < 0 || omega < 0 || delta <= 0 {
		return 0, fmt.Errorf("oblivious: invalid filter shape ω=%d μ=%d Δ=%d", omega, mu, delta)
	}
	bufSize := mu + delta
	if bufSize != NextPow2(bufSize) {
		return 0, fmt.Errorf("oblivious: filter buffer μ+Δ = %d must be a power of two", bufSize)
	}
	buf, err := t.Host().CreateRegion(bufName, int(bufSize))
	if err != nil {
		return 0, err
	}
	less := func(a, b []byte) bool {
		// Targets first; Sort's internal wrapper already places padding
		// cells last, so only real-vs-real ordering matters here.
		return isTarget(a) && !isTarget(b)
	}

	// copyCell re-encrypts a source cell into the buffer unchanged; the
	// batched RMW keeps the get/put interleaving of the old per-cell loop.
	copyCell := func(k int64, pt []byte) ([]byte, error) { return pt, nil }

	// Initial fill: the first min(ω, μ+Δ) source cells, padded to μ+Δ.
	head := min64(omega, bufSize)
	if err := t.TransformRange(buf, 0, src, 0, head, copyCell); err != nil {
		return 0, err
	}
	if err := padRange(t, buf, head, bufSize); err != nil {
		return 0, err
	}
	if err := Sort(t, buf, bufSize, less); err != nil {
		return 0, err
	}

	for pos := bufSize; pos < omega; pos += delta {
		r := min64(delta, omega-pos)
		if err := t.TransformRange(buf, mu, src, pos, r, copyCell); err != nil {
			return 0, err
		}
		if err := padRange(t, buf, mu+r, mu+delta); err != nil {
			return 0, err
		}
		if err := Sort(t, buf, bufSize, less); err != nil {
			return 0, err
		}
	}
	return buf, nil
}

// FilterTransfers returns the exact transfer count of Filter(ω, μ, Δ).
func FilterTransfers(omega, mu, delta int64) int64 {
	bufSize := mu + delta
	head := min64(omega, bufSize)
	total := 2*head + (bufSize - head) // initial copy + fill
	rounds := int64(1)
	for pos := bufSize; pos < omega; pos += delta {
		r := min64(delta, omega-pos)
		total += 2*r + (delta - r)
		rounds++
	}
	total += rounds * 4 * Comparators(bufSize)
	return total
}

// ChooseDelta returns the power-of-two-compatible swap size Δ (with μ+Δ a
// power of two) minimising FilterTransfers for the given ω and μ. It is the
// implementation analogue of the paper's Δ* (Eqn. 5.1).
func ChooseDelta(omega, mu int64) int64 {
	best := int64(-1)
	var bestCost int64
	// Candidate buffer sizes: powers of two from just above μ up to well
	// past ω (a single full sort).
	for bufSize := NextPow2(mu + 1); ; bufSize <<= 1 {
		delta := bufSize - mu
		if delta <= 0 {
			continue
		}
		cost := FilterTransfers(omega, mu, delta)
		if best < 0 || cost < bestCost {
			best, bestCost = delta, cost
		}
		if bufSize >= NextPow2(omega)*2 || bufSize > 1<<40 {
			break
		}
	}
	return best
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
