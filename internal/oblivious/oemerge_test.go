package oblivious

import (
	"fmt"
	"sort"
	"testing"
)

func TestSortOddEvenSortsAllSizes(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 8, 13, 16, 31, 64, 100} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			h, cop := newPair(t, uint64(n)+31)
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = uint64((i*104729 + 7) % 89)
			}
			id := loadInts(t, h, cop, "s", vals)
			if err := SortOddEven(cop, id, int64(n), intLess); err != nil {
				t.Fatal(err)
			}
			got := readInts(t, cop, id, int64(n))
			want := append([]uint64(nil), vals...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("position %d: got %d want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestSortOddEvenTransferCountExact(t *testing.T) {
	for _, n := range []int64{2, 3, 8, 16, 37, 128} {
		h, cop := newPair(t, 41)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = uint64(n) - uint64(i)
		}
		id := loadInts(t, h, cop, "s", vals)
		if err := SortOddEven(cop, id, n, intLess); err != nil {
			t.Fatal(err)
		}
		if got, want := int64(cop.Stats().Transfers()), SortOddEvenTransfers(n); got != want {
			t.Errorf("n=%d: transfers %d, want %d", n, got, want)
		}
	}
}

func TestOddEvenBeatsBitonicComparators(t *testing.T) {
	// The ablation's premise: the odd-even network needs fewer comparators
	// than bitonic at every power-of-two size above 4.
	for m := int64(8); m <= 1<<16; m *= 2 {
		oe, bi := OddEvenComparators(m), Comparators(m)
		if oe >= bi {
			t.Errorf("m=%d: odd-even %d >= bitonic %d", m, oe, bi)
		}
	}
	// Known closed form: (k²−k+4)·2^(k−2) − 1 for m = 2^k (k ≥ 2; m = 2 is
	// the single comparator).
	if OddEvenComparators(2) != 1 {
		t.Errorf("m=2: comparators %d, want 1", OddEvenComparators(2))
	}
	for k := int64(2); k <= 16; k++ {
		m := int64(1) << k
		want := (k*k-k+4)*(m/4) - 1
		if got := OddEvenComparators(m); got != want {
			t.Errorf("m=%d: comparators %d, want closed form %d", m, got, want)
		}
	}
}

func TestSortOddEvenAccessPatternDataIndependent(t *testing.T) {
	run := func(vals []uint64) (uint64, uint64) {
		h, cop := newPair(t, 43)
		id := h.MustCreateRegion("s", len(vals))
		for i, v := range vals {
			if err := cop.Put(id, int64(i), encodeInt(v)); err != nil {
				t.Fatal(err)
			}
		}
		if err := SortOddEven(cop, id, int64(len(vals)), intLess); err != nil {
			t.Fatal(err)
		}
		return h.Trace().Digest(), h.Trace().Count()
	}
	d1, c1 := run([]uint64{9, 1, 8, 2, 7, 3, 6, 4, 5, 0})
	d2, c2 := run([]uint64{0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	if d1 != d2 || c1 != c2 {
		t.Fatal("odd-even sort access pattern depends on data")
	}
}

func TestSortOddEvenRejectsNegative(t *testing.T) {
	h, cop := newPair(t, 1)
	id := h.MustCreateRegion("s", 0)
	if err := SortOddEven(cop, id, -1, intLess); err == nil {
		t.Fatal("negative n accepted")
	}
}
