package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSVInfersTypes(t *testing.T) {
	in := "id,score,name\n1,2.5,alice\n2,3,bob\n30,-1.25,carol-long-name\n"
	rel, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("rows = %d", rel.Len())
	}
	s := rel.Schema
	if s.Attr(0).Type != Int64 {
		t.Errorf("id inferred as %s", s.Attr(0).Type)
	}
	if s.Attr(1).Type != Float64 {
		t.Errorf("score inferred as %s", s.Attr(1).Type)
	}
	if s.Attr(2).Type != String || s.Attr(2).Width < len("carol-long-name") {
		t.Errorf("name inferred as %s[%d]", s.Attr(2).Type, s.Attr(2).Width)
	}
	if rel.Rows[2][0].I != 30 || rel.Rows[0][1].F != 2.5 || rel.Rows[1][2].S != "bob" {
		t.Fatalf("values wrong: %+v", rel.Rows)
	}
}

func TestReadCSVIntColumnPrefersInt(t *testing.T) {
	// "1" parses as both int and float; int wins.
	rel, err := ReadCSV(strings.NewReader("x\n1\n2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Schema.Attr(0).Type != Int64 {
		t.Fatalf("x inferred as %s", rel.Schema.Attr(0).Type)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n3\n")); err == nil {
		t.Error("ragged row accepted (csv reader should reject)")
	}
}

func TestReadCSVHeaderOnly(t *testing.T) {
	rel, err := ReadCSV(strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 0 {
		t.Fatalf("rows = %d", rel.Len())
	}
	// With no data rows, columns default to strings.
	if rel.Schema.Attr(0).Type != String {
		t.Fatalf("empty column inferred as %s", rel.Schema.Attr(0).Type)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rel := NewRelation(KeyedSchema())
	rel.MustAppend(Tuple{IntValue(1), IntValue(-5)})
	rel.MustAppend(Tuple{IntValue(2), IntValue(99)})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !SameMultiset(rel, back) {
		t.Fatalf("round trip lost rows:\n%s", buf.String())
	}
}

func TestWriteCSVAllTypes(t *testing.T) {
	s := MustSchema(
		Attr{Name: "i", Type: Int64},
		Attr{Name: "f", Type: Float64},
		Attr{Name: "s", Type: String, Width: 8},
		Attr{Name: "b", Type: Bytes, Width: 2},
		Attr{Name: "set", Type: Set, Width: 4},
	)
	rel := NewRelation(s)
	rel.MustAppend(Tuple{IntValue(7), FloatValue(1.5), StringValue("x"),
		BytesValue([]byte{0xAB, 0xCD}), SetValue(3, 1)})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"7", "1.5", "x", "abcd", "1 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("csv output missing %q:\n%s", want, out)
		}
	}
}
