package relation

import (
	"testing"
)

func TestReferenceJoinEqui(t *testing.T) {
	rng := NewRand(1)
	a := GenKeyed(rng, 20, 8)
	b := GenKeyed(rng, 30, 8)
	eq, _ := NewEqui(a.Schema, "key", b.Schema, "key")
	out := ReferenceJoin(a, b, eq)

	// Cross-check against a per-key multiplicity computation.
	countA := map[int64]int{}
	countB := map[int64]int{}
	for _, ta := range a.Rows {
		countA[ta[0].I]++
	}
	for _, tb := range b.Rows {
		countB[tb[0].I]++
	}
	want := 0
	for k, ca := range countA {
		want += ca * countB[k]
	}
	if out.Len() != want {
		t.Fatalf("join size %d, want %d", out.Len(), want)
	}
	for _, row := range out.Rows {
		if row[0].I != row[2].I {
			t.Fatalf("non-matching row in output: %+v", row)
		}
	}
}

func TestReferenceMultiJoinMatchesPairwise(t *testing.T) {
	rng := NewRand(2)
	a := GenKeyed(rng, 10, 5)
	b := GenKeyed(rng, 12, 5)
	eq, _ := NewEqui(a.Schema, "key", b.Schema, "key")
	two := ReferenceJoin(a, b, eq)
	multi := ReferenceMultiJoin([]*Relation{a, b}, Pairwise(eq))
	if !SameMultiset(two, multi) {
		t.Fatal("2-way and multi-way reference joins differ")
	}
}

func TestReferenceMultiJoinThreeWay(t *testing.T) {
	mk := func(keys ...int64) *Relation {
		r := NewRelation(KeyedSchema())
		for i, k := range keys {
			r.MustAppend(Tuple{IntValue(k), IntValue(int64(i))})
		}
		return r
	}
	a, b, c := mk(1, 2), mk(1, 3), mk(1, 1)
	pred := MultiPredicateFunc{
		Fn: func(ts []Tuple) bool {
			return ts[0][0].I == ts[1][0].I && ts[1][0].I == ts[2][0].I
		},
		Desc: "all keys equal",
	}
	out := ReferenceMultiJoin([]*Relation{a, b, c}, pred)
	// key 1: 1 in a, 1 in b, 2 in c -> 2 rows
	if out.Len() != 2 {
		t.Fatalf("3-way join size %d, want 2", out.Len())
	}
	if got := CountMultiMatches([]*Relation{a, b, c}, pred); got != 2 {
		t.Fatalf("CountMultiMatches = %d, want 2", got)
	}
}

func TestMaxMatches(t *testing.T) {
	rng := NewRand(3)
	a, b := GenWithMatchBound(rng, 10, 40, 7)
	eq, _ := NewEqui(a.Schema, "key", b.Schema, "key")
	if got := MaxMatches(a, b, eq); got != 7 {
		t.Fatalf("MaxMatches = %d, want 7", got)
	}
}

func TestGenWithMatchBoundInvariant(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		rng := NewRand(seed)
		nA, nB, n := 5+int(seed), 20+int(seed)*3, 3+int(seed%4)
		a, b := GenWithMatchBound(rng, nA, nB, n)
		if a.Len() != nA || b.Len() != nB {
			t.Fatalf("seed %d: sizes %d/%d, want %d/%d", seed, a.Len(), b.Len(), nA, nB)
		}
		eq, _ := NewEqui(a.Schema, "key", b.Schema, "key")
		if got := MaxMatches(a, b, eq); got != n {
			t.Fatalf("seed %d: MaxMatches = %d, want %d", seed, got, n)
		}
	}
}

func TestSameMultiset(t *testing.T) {
	r1 := NewRelation(KeyedSchema())
	r2 := NewRelation(KeyedSchema())
	r1.MustAppend(Tuple{IntValue(1), IntValue(2)})
	r1.MustAppend(Tuple{IntValue(1), IntValue(2)})
	r2.MustAppend(Tuple{IntValue(1), IntValue(2)})
	if SameMultiset(r1, r2) {
		t.Error("different multiplicities reported equal")
	}
	r2.MustAppend(Tuple{IntValue(1), IntValue(2)})
	if !SameMultiset(r1, r2) {
		t.Error("equal multisets reported different")
	}
}

func TestGenerators(t *testing.T) {
	rng := NewRand(4)
	p := GenPersons(rng, 50, 100)
	if p.Len() != 50 {
		t.Fatalf("GenPersons len = %d", p.Len())
	}
	if _, err := p.EncodeAll(); err != nil {
		t.Fatalf("persons encode: %v", err)
	}
	seq := GenSequences(rng, 20, 6, 8, 40)
	if seq.Len() != 20 {
		t.Fatalf("GenSequences len = %d", seq.Len())
	}
	if _, err := seq.EncodeAll(); err != nil {
		t.Fatalf("sequences encode: %v", err)
	}
	z := GenKeyedZipf(rng, 200, 10, 1.2)
	if z.Len() != 200 {
		t.Fatalf("GenKeyedZipf len = %d", z.Len())
	}
	// Zipf skew: most common key should dominate the least common.
	counts := map[int64]int{}
	for _, row := range z.Rows {
		counts[row[0].I]++
	}
	if counts[0] <= counts[9]*2 {
		t.Errorf("Zipf skew too flat: key0=%d key9=%d", counts[0], counts[9])
	}
}
