package relation

import "fmt"

// Join-size statistics. The planner needs S (and N) to price the
// algorithms; for equijoins both are computable from per-key histograms in
// O(|A| + |B|) instead of the O(|A||B|) nested loop the paper's
// preprocessing uses (§4.3) — an exact shortcut, not an estimate, because
// the equijoin size is Σ_k cntA(k)·cntB(k) and the match bound is
// max_k cntB(k) over keys present in A.

// KeyHistogram counts the occurrences of each value of an Int64 attribute.
func KeyHistogram(r *Relation, attr string) (map[int64]int64, error) {
	idx := r.Schema.Index(attr)
	if idx < 0 {
		return nil, fmt.Errorf("relation: no attribute %q in %s", attr, r.Schema)
	}
	if r.Schema.Attr(idx).Type != Int64 {
		return nil, fmt.Errorf("relation: histogram needs an Int64 attribute, %q is %s",
			attr, r.Schema.Attr(idx).Type)
	}
	h := make(map[int64]int64)
	for _, row := range r.Rows {
		h[row[idx].I]++
	}
	return h, nil
}

// EquijoinSize computes the exact size of A ⋈ B on an Int64 equijoin from
// the two key histograms.
func EquijoinSize(a *Relation, attrA string, b *Relation, attrB string) (int64, error) {
	ha, err := KeyHistogram(a, attrA)
	if err != nil {
		return 0, err
	}
	hb, err := KeyHistogram(b, attrB)
	if err != nil {
		return 0, err
	}
	var s int64
	for k, ca := range ha {
		s += ca * hb[k]
	}
	return s, nil
}

// EquijoinMatchBound computes the exact N of §4.1 for an Int64 equijoin:
// the largest number of B rows joining any single A row.
func EquijoinMatchBound(a *Relation, attrA string, b *Relation, attrB string) (int64, error) {
	ha, err := KeyHistogram(a, attrA)
	if err != nil {
		return 0, err
	}
	hb, err := KeyHistogram(b, attrB)
	if err != nil {
		return 0, err
	}
	var n int64
	for k := range ha {
		if hb[k] > n {
			n = hb[k]
		}
	}
	return n, nil
}
