package relation

import "fmt"

// ReferenceJoin computes the plaintext nested-loop join of A and B under
// pred, composing matching rows with JoinTuples. It is the correctness
// oracle against which every privacy preserving algorithm is tested; it has
// no privacy properties of its own.
func ReferenceJoin(a, b *Relation, pred Predicate) *Relation {
	outSchema, err := Concat(a.Schema, b.Schema)
	if err != nil {
		panic(fmt.Sprintf("relation: reference join schema: %v", err))
	}
	out := NewRelation(outSchema)
	for _, ta := range a.Rows {
		for _, tb := range b.Rows {
			if pred.Match(ta, tb) {
				out.MustAppend(JoinTuples(ta, tb))
			}
		}
	}
	return out
}

// ReferenceMultiJoin computes the plaintext J-way join over the cartesian
// product of tables, in row-major iTuple order (the fixed order of §5.2.1).
func ReferenceMultiJoin(tables []*Relation, pred MultiPredicate) *Relation {
	schemas := make([]*Schema, len(tables))
	for i, t := range tables {
		schemas[i] = t.Schema
	}
	outSchema, err := Concat(schemas...)
	if err != nil {
		panic(fmt.Sprintf("relation: reference multi join schema: %v", err))
	}
	out := NewRelation(outSchema)
	idx := make([]int, len(tables))
	row := make([]Tuple, len(tables))
	var walk func(d int)
	walk = func(d int) {
		if d == len(tables) {
			if pred.Satisfy(row) {
				out.MustAppend(JoinTuples(row...))
			}
			return
		}
		for idx[d] = 0; idx[d] < tables[d].Len(); idx[d]++ {
			row[d] = tables[d].Rows[idx[d]]
			walk(d + 1)
		}
	}
	if len(tables) > 0 {
		walk(0)
	}
	return out
}

// MaxMatches computes N, the maximum number of B tuples matching any single
// A tuple (§4.1). The paper notes a safe way to compute N is a nested loop
// that outputs nothing; this is that computation, run by T as preprocessing.
func MaxMatches(a, b *Relation, pred Predicate) int {
	maxN := 0
	for _, ta := range a.Rows {
		n := 0
		for _, tb := range b.Rows {
			if pred.Match(ta, tb) {
				n++
			}
		}
		if n > maxN {
			maxN = n
		}
	}
	return maxN
}

// CountMultiMatches computes S = |f(X₁,…,X_J)|, the exact join size over the
// cartesian product, as Algorithm 6's screening pass does.
func CountMultiMatches(tables []*Relation, pred MultiPredicate) int64 {
	var s int64
	row := make([]Tuple, len(tables))
	var walk func(d int)
	walk = func(d int) {
		if d == len(tables) {
			if pred.Satisfy(row) {
				s++
			}
			return
		}
		for i := 0; i < tables[d].Len(); i++ {
			row[d] = tables[d].Rows[i]
			walk(d + 1)
		}
	}
	if len(tables) > 0 {
		walk(0)
	}
	return s
}

// Multiset summarises a relation's rows as canonical-encoding strings with
// multiplicities, so joins can be compared order-insensitively.
func Multiset(r *Relation) map[string]int {
	m := make(map[string]int, r.Len())
	for _, t := range r.Rows {
		m[string(r.Schema.MustEncode(t))]++
	}
	return m
}

// SameMultiset reports whether two relations contain the same rows with the
// same multiplicities (schema equality required).
func SameMultiset(a, b *Relation) bool {
	if !a.Schema.Equal(b.Schema) || a.Len() != b.Len() {
		return false
	}
	ma, mb := Multiset(a), Multiset(b)
	if len(ma) != len(mb) {
		return false
	}
	for k, v := range ma {
		if mb[k] != v {
			return false
		}
	}
	return true
}
