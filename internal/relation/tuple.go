package relation

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Value is a dynamically typed attribute value. Exactly one field is used,
// selected by the attribute's declared type.
type Value struct {
	I int64
	F float64
	S string
	B []byte
	// SetElems holds a Set attribute's elements; order is irrelevant and
	// duplicates are removed during encoding.
	SetElems []uint32
}

// IntValue, FloatValue, StringValue, BytesValue and SetValue are convenience
// constructors for Value.
func IntValue(v int64) Value         { return Value{I: v} }
func FloatValue(v float64) Value     { return Value{F: v} }
func StringValue(v string) Value     { return Value{S: v} }
func BytesValue(v []byte) Value      { return Value{B: v} }
func SetValue(elems ...uint32) Value { return Value{SetElems: elems} }

// Tuple is a decoded row: one Value per schema attribute.
type Tuple []Value

// Encode serialises t under schema s into exactly s.TupleSize() bytes.
func (s *Schema) Encode(t Tuple) ([]byte, error) {
	if len(t) != len(s.attrs) {
		return nil, fmt.Errorf("relation: tuple has %d values, schema %s has %d attributes",
			len(t), s, len(s.attrs))
	}
	out := make([]byte, 0, s.size)
	for i, a := range s.attrs {
		v := t[i]
		switch a.Type {
		case Int64:
			out = binary.BigEndian.AppendUint64(out, uint64(v.I))
		case Float64:
			out = binary.BigEndian.AppendUint64(out, math.Float64bits(v.F))
		case String:
			if len(v.S) > a.Width {
				return nil, fmt.Errorf("relation: string %q exceeds width %d of attribute %q",
					v.S, a.Width, a.Name)
			}
			out = append(out, v.S...)
			out = append(out, make([]byte, a.Width-len(v.S))...)
		case Bytes:
			if len(v.B) > a.Width {
				return nil, fmt.Errorf("relation: %d bytes exceed width %d of attribute %q",
					len(v.B), a.Width, a.Name)
			}
			out = append(out, v.B...)
			out = append(out, make([]byte, a.Width-len(v.B))...)
		case Set:
			elems := normalizeSet(v.SetElems)
			if len(elems) > a.Width {
				return nil, fmt.Errorf("relation: set of %d elements exceeds capacity %d of attribute %q",
					len(elems), a.Width, a.Name)
			}
			out = binary.BigEndian.AppendUint16(out, uint16(len(elems)))
			for _, e := range elems {
				out = binary.BigEndian.AppendUint32(out, e)
			}
			out = append(out, make([]byte, 4*(a.Width-len(elems)))...)
		}
	}
	return out, nil
}

// MustEncode is Encode that panics on error; for tests and generators.
func (s *Schema) MustEncode(t Tuple) []byte {
	b, err := s.Encode(t)
	if err != nil {
		panic(err)
	}
	return b
}

// Decode deserialises a tuple previously produced by Encode.
func (s *Schema) Decode(b []byte) (Tuple, error) {
	if len(b) != s.size {
		return nil, fmt.Errorf("relation: encoded tuple is %d bytes, schema %s needs %d",
			len(b), s, s.size)
	}
	t := make(Tuple, len(s.attrs))
	off := 0
	for i, a := range s.attrs {
		switch a.Type {
		case Int64:
			t[i].I = int64(binary.BigEndian.Uint64(b[off:]))
			off += 8
		case Float64:
			t[i].F = math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
			off += 8
		case String:
			raw := b[off : off+a.Width]
			end := len(raw)
			for end > 0 && raw[end-1] == 0 {
				end--
			}
			t[i].S = string(raw[:end])
			off += a.Width
		case Bytes:
			t[i].B = append([]byte(nil), b[off:off+a.Width]...)
			off += a.Width
		case Set:
			n := int(binary.BigEndian.Uint16(b[off:]))
			off += 2
			if n > a.Width {
				return nil, fmt.Errorf("relation: set cardinality %d exceeds capacity %d", n, a.Width)
			}
			elems := make([]uint32, n)
			for j := 0; j < n; j++ {
				elems[j] = binary.BigEndian.Uint32(b[off+4*j:])
			}
			t[i].SetElems = elems
			off += 4 * a.Width
		}
	}
	return t, nil
}

// normalizeSet sorts and deduplicates set elements so that encoding is
// canonical (set equality becomes byte equality of the encoding).
func normalizeSet(elems []uint32) []uint32 {
	if len(elems) == 0 {
		return nil
	}
	out := append([]uint32(nil), elems...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// JoinTuples concatenates tuples in order, producing a row of the Concat
// schema.
func JoinTuples(tuples ...Tuple) Tuple {
	var out Tuple
	for _, t := range tuples {
		out = append(out, t...)
	}
	return out
}

// Relation is an in-memory table: a schema plus rows. It is the plaintext
// view used by data providers and by the reference join; the privacy
// preserving algorithms only ever see encrypted encodings of the rows.
type Relation struct {
	Schema *Schema
	Rows   []Tuple
}

// NewRelation constructs an empty relation over s.
func NewRelation(s *Schema) *Relation { return &Relation{Schema: s} }

// Append validates and adds a row.
func (r *Relation) Append(t Tuple) error {
	if _, err := r.Schema.Encode(t); err != nil {
		return err
	}
	r.Rows = append(r.Rows, t)
	return nil
}

// MustAppend is Append that panics on error.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// EncodeAll returns the fixed-size encodings of every row.
func (r *Relation) EncodeAll() ([][]byte, error) {
	out := make([][]byte, len(r.Rows))
	for i, t := range r.Rows {
		b, err := r.Schema.Encode(t)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		out[i] = b
	}
	return out, nil
}
