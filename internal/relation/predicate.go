package relation

import (
	"bytes"
	"fmt"
	"math"
)

// Predicate is an arbitrary 2-way join predicate over decoded tuples, the
// match() function of the paper's general join algorithms (§4.4). Inside the
// simulated coprocessor every evaluation is charged a fixed cycle cost
// regardless of outcome (Fixed Time principle, §3.4.3).
type Predicate interface {
	// Match reports whether tuples a (from the outer relation) and b (from
	// the inner relation) join.
	Match(a, b Tuple) bool
	// String describes the predicate for contracts and logs.
	String() string
}

// MultiPredicate is a J-way join predicate over one tuple per participating
// database, the satisfy() function of Chapter 5's algorithms.
type MultiPredicate interface {
	Satisfy(tuples []Tuple) bool
	String() string
}

// PredicateFunc adapts a function to Predicate.
type PredicateFunc struct {
	Fn   func(a, b Tuple) bool
	Desc string
}

func (p PredicateFunc) Match(a, b Tuple) bool { return p.Fn(a, b) }
func (p PredicateFunc) String() string        { return p.Desc }

// MultiPredicateFunc adapts a function to MultiPredicate.
type MultiPredicateFunc struct {
	Fn   func(tuples []Tuple) bool
	Desc string
}

func (p MultiPredicateFunc) Satisfy(tuples []Tuple) bool { return p.Fn(tuples) }
func (p MultiPredicateFunc) String() string              { return p.Desc }

// Pairwise lifts a 2-way predicate to a MultiPredicate over exactly two
// tables.
func Pairwise(p Predicate) MultiPredicate {
	return MultiPredicateFunc{
		Fn: func(tuples []Tuple) bool {
			if len(tuples) != 2 {
				return false
			}
			return p.Match(tuples[0], tuples[1])
		},
		Desc: p.String(),
	}
}

// valueEqual compares two values of the same declared type.
func valueEqual(t AttrType, a, b Value) bool {
	switch t {
	case Int64:
		return a.I == b.I
	case Float64:
		return a.F == b.F
	case String:
		return a.S == b.S
	case Bytes:
		return bytes.Equal(a.B, b.B)
	case Set:
		x, y := normalizeSet(a.SetElems), normalizeSet(b.SetElems)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Equi is the equality predicate A.attrA = B.attrB.
type Equi struct {
	SchemaA, SchemaB *Schema
	AttrA, AttrB     string
	ia, ib           int
	typ              AttrType
}

// NewEqui resolves attribute positions and checks type compatibility.
func NewEqui(sa *Schema, attrA string, sb *Schema, attrB string) (*Equi, error) {
	ia, ib := sa.Index(attrA), sb.Index(attrB)
	if ia < 0 {
		return nil, fmt.Errorf("relation: no attribute %q in %s", attrA, sa)
	}
	if ib < 0 {
		return nil, fmt.Errorf("relation: no attribute %q in %s", attrB, sb)
	}
	if sa.Attr(ia).Type != sb.Attr(ib).Type {
		return nil, fmt.Errorf("relation: equijoin attribute types differ: %s vs %s",
			sa.Attr(ia).Type, sb.Attr(ib).Type)
	}
	return &Equi{SchemaA: sa, SchemaB: sb, AttrA: attrA, AttrB: attrB,
		ia: ia, ib: ib, typ: sa.Attr(ia).Type}, nil
}

func (e *Equi) Match(a, b Tuple) bool {
	return valueEqual(e.typ, a[e.ia], b[e.ib])
}

func (e *Equi) String() string { return fmt.Sprintf("%s = %s", e.AttrA, e.AttrB) }

// KeyIndexA and KeyIndexB expose the resolved join-attribute positions; the
// sort-based equijoin (Algorithm 3) sorts B on KeyIndexB.
func (e *Equi) KeyIndexA() int { return e.ia }
func (e *Equi) KeyIndexB() int { return e.ib }

// Less orders inner-relation tuples by the join attribute; only defined for
// orderable types (Int64, Float64, String, Bytes).
func (e *Equi) Less(x, y Tuple) bool {
	a, b := x[e.ib], y[e.ib]
	switch e.typ {
	case Int64:
		return a.I < b.I
	case Float64:
		return a.F < b.F
	case String:
		return a.S < b.S
	case Bytes:
		return bytes.Compare(a.B, b.B) < 0
	default:
		return false
	}
}

// Orderable reports whether the join-attribute type admits a total order
// (everything but Set), the precondition of the sort-based equijoins
// (Algorithms 3 and 7).
func (e *Equi) Orderable() bool {
	switch e.typ {
	case Int64, Float64, String, Bytes:
		return true
	default:
		return false
	}
}

// KeyA and KeyB extract the join-attribute value from a decoded tuple of
// the respective side; Algorithm 7 sorts the union of both relations and
// needs the key of a tuple regardless of which side it came from.
func (e *Equi) KeyA(t Tuple) Value { return t[e.ia] }
func (e *Equi) KeyB(t Tuple) Value { return t[e.ib] }

// CompareKeys three-way-compares two join-attribute values of the
// predicate's key type. Only defined for orderable types; Set values
// compare equal.
func (e *Equi) CompareKeys(a, b Value) int {
	switch e.typ {
	case Int64:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
	case Float64:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
	case String:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		}
	case Bytes:
		return bytes.Compare(a.B, b.B)
	}
	return 0
}

// Compare is the three-way version of Less for oblivious comparators.
func (e *Equi) Compare(x, y Tuple) int {
	switch {
	case e.Less(x, y):
		return -1
	case e.Less(y, x):
		return 1
	default:
		return 0
	}
}

// Band is the band-join predicate |A.attrA − B.attrB| ≤ Width over numeric
// attributes, an example of a non-equality predicate the general algorithms
// support.
type Band struct {
	AttrA, AttrB string
	Width        float64
	ia, ib       int
	typ          AttrType
}

// NewBand resolves attribute positions for a band join.
func NewBand(sa *Schema, attrA string, sb *Schema, attrB string, width float64) (*Band, error) {
	ia, ib := sa.Index(attrA), sb.Index(attrB)
	if ia < 0 || ib < 0 {
		return nil, fmt.Errorf("relation: band attributes %q/%q not found", attrA, attrB)
	}
	ta, tb := sa.Attr(ia).Type, sb.Attr(ib).Type
	if ta != tb || (ta != Int64 && ta != Float64) {
		return nil, fmt.Errorf("relation: band join needs matching numeric attributes, got %s/%s", ta, tb)
	}
	return &Band{AttrA: attrA, AttrB: attrB, Width: width, ia: ia, ib: ib, typ: ta}, nil
}

func (p *Band) Match(a, b Tuple) bool {
	var d float64
	if p.typ == Int64 {
		d = float64(a[p.ia].I) - float64(b[p.ib].I)
	} else {
		d = a[p.ia].F - b[p.ib].F
	}
	return math.Abs(d) <= p.Width
}

func (p *Band) String() string {
	return fmt.Sprintf("|%s - %s| <= %g", p.AttrA, p.AttrB, p.Width)
}

// LessThan is the inequality predicate A.attrA < B.attrB.
type LessThan struct {
	AttrA, AttrB string
	ia, ib       int
	typ          AttrType
}

// NewLessThan resolves attribute positions for an inequality join.
func NewLessThan(sa *Schema, attrA string, sb *Schema, attrB string) (*LessThan, error) {
	ia, ib := sa.Index(attrA), sb.Index(attrB)
	if ia < 0 || ib < 0 {
		return nil, fmt.Errorf("relation: attributes %q/%q not found", attrA, attrB)
	}
	ta, tb := sa.Attr(ia).Type, sb.Attr(ib).Type
	if ta != tb || (ta != Int64 && ta != Float64) {
		return nil, fmt.Errorf("relation: < join needs matching numeric attributes, got %s/%s", ta, tb)
	}
	return &LessThan{AttrA: attrA, AttrB: attrB, ia: ia, ib: ib, typ: ta}, nil
}

func (p *LessThan) Match(a, b Tuple) bool {
	if p.typ == Int64 {
		return a[p.ia].I < b[p.ib].I
	}
	return a[p.ia].F < b[p.ib].F
}

func (p *LessThan) String() string { return fmt.Sprintf("%s < %s", p.AttrA, p.AttrB) }

// Jaccard is the set-similarity predicate |a∩b|/|a∪b| > Threshold, the
// paper's example of a similarity join (Chapter 1): "for set-valued
// attributes, the goal of Jaccard coefficient > f is to find all set pairs
// where the ratio of the intersection size to union size is greater than a
// fraction f".
type Jaccard struct {
	AttrA, AttrB string
	Threshold    float64
	ia, ib       int
}

// NewJaccard resolves attribute positions for a Jaccard similarity join.
func NewJaccard(sa *Schema, attrA string, sb *Schema, attrB string, threshold float64) (*Jaccard, error) {
	ia, ib := sa.Index(attrA), sb.Index(attrB)
	if ia < 0 || ib < 0 {
		return nil, fmt.Errorf("relation: attributes %q/%q not found", attrA, attrB)
	}
	if sa.Attr(ia).Type != Set || sb.Attr(ib).Type != Set {
		return nil, fmt.Errorf("relation: Jaccard join needs Set attributes")
	}
	return &Jaccard{AttrA: attrA, AttrB: attrB, Threshold: threshold, ia: ia, ib: ib}, nil
}

func (p *Jaccard) Match(a, b Tuple) bool {
	return JaccardCoefficient(a[p.ia].SetElems, b[p.ib].SetElems) > p.Threshold
}

func (p *Jaccard) String() string {
	return fmt.Sprintf("jaccard(%s, %s) > %g", p.AttrA, p.AttrB, p.Threshold)
}

// JaccardCoefficient computes |x∩y|/|x∪y|; the coefficient of two empty sets
// is defined as 0.
func JaccardCoefficient(x, y []uint32) float64 {
	xs, ys := normalizeSet(x), normalizeSet(y)
	if len(xs) == 0 && len(ys) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		switch {
		case xs[i] == ys[j]:
			inter++
			i++
			j++
		case xs[i] < ys[j]:
			i++
		default:
			j++
		}
	}
	union := len(xs) + len(ys) - inter
	return float64(inter) / float64(union)
}

// L1Norm is the predicate ||a − b||₁ < Threshold over all shared numeric
// attributes, the fuzzy-profile match used in §4.6.5's gate-count argument.
type L1Norm struct {
	Threshold float64
	idxA      []int
	idxB      []int
	types     []AttrType
}

// NewL1Norm pairs up the numeric attributes of the two schemas positionally.
func NewL1Norm(sa, sb *Schema, threshold float64) (*L1Norm, error) {
	p := &L1Norm{Threshold: threshold}
	na, nb := sa.NumAttrs(), sb.NumAttrs()
	n := na
	if nb < n {
		n = nb
	}
	for i := 0; i < n; i++ {
		ta, tb := sa.Attr(i).Type, sb.Attr(i).Type
		if ta == tb && (ta == Int64 || ta == Float64) {
			p.idxA = append(p.idxA, i)
			p.idxB = append(p.idxB, i)
			p.types = append(p.types, ta)
		}
	}
	if len(p.idxA) == 0 {
		return nil, fmt.Errorf("relation: no positionally matching numeric attributes for L1 norm")
	}
	return p, nil
}

func (p *L1Norm) Match(a, b Tuple) bool {
	var sum float64
	for k := range p.idxA {
		va, vb := a[p.idxA[k]], b[p.idxB[k]]
		if p.types[k] == Int64 {
			sum += math.Abs(float64(va.I) - float64(vb.I))
		} else {
			sum += math.Abs(va.F - vb.F)
		}
	}
	return sum < p.Threshold
}

func (p *L1Norm) String() string { return fmt.Sprintf("L1(a,b) < %g", p.Threshold) }
