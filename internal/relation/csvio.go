package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file provides CSV import/export with schema inference, used by the
// ppjoin CLI and available to library users feeding real data into the
// privacy preserving join service.

// ReadCSV parses a CSV stream with a header row into a relation. Column
// types are inferred: a column whose every value parses as an integer
// becomes Int64; failing that, a float column becomes Float64; anything
// else becomes a String attribute sized to the longest value.
func ReadCSV(r io.Reader) (*Relation, error) {
	records, err := csv.NewReader(r).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading csv: %w", err)
	}
	if len(records) < 1 {
		return nil, fmt.Errorf("relation: csv needs a header row")
	}
	header, data := records[0], records[1:]
	attrs := make([]Attr, len(header))
	for col, name := range header {
		attrs[col] = inferCSVAttr(strings.TrimSpace(name), data, col)
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	rel := NewRelation(schema)
	for rowIdx, rec := range data {
		if len(rec) != len(attrs) {
			return nil, fmt.Errorf("relation: csv row %d has %d fields, want %d",
				rowIdx+2, len(rec), len(attrs))
		}
		tuple := make(Tuple, len(attrs))
		for col, field := range rec {
			switch attrs[col].Type {
			case Int64:
				v, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("relation: csv row %d col %q: %w", rowIdx+2, attrs[col].Name, err)
				}
				tuple[col] = IntValue(v)
			case Float64:
				v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
				if err != nil {
					return nil, fmt.Errorf("relation: csv row %d col %q: %w", rowIdx+2, attrs[col].Name, err)
				}
				tuple[col] = FloatValue(v)
			default:
				tuple[col] = StringValue(field)
			}
		}
		if err := rel.Append(tuple); err != nil {
			return nil, fmt.Errorf("relation: csv row %d: %w", rowIdx+2, err)
		}
	}
	return rel, nil
}

// inferCSVAttr picks the narrowest type covering every value of a column.
func inferCSVAttr(name string, data [][]string, col int) Attr {
	isInt, isFloat := len(data) > 0, len(data) > 0
	width := 1
	for _, rec := range data {
		if col >= len(rec) {
			continue
		}
		field := strings.TrimSpace(rec[col])
		if _, err := strconv.ParseInt(field, 10, 64); err != nil {
			isInt = false
		}
		if _, err := strconv.ParseFloat(field, 64); err != nil {
			isFloat = false
		}
		if len(rec[col]) > width {
			width = len(rec[col])
		}
	}
	switch {
	case isInt:
		return Attr{Name: name, Type: Int64}
	case isFloat:
		return Attr{Name: name, Type: Float64}
	default:
		return Attr{Name: name, Type: String, Width: width}
	}
}

// WriteCSV renders a relation as CSV with a header row. Set-valued
// attributes are rendered as space-separated elements; Bytes as hex.
func WriteCSV(w io.Writer, rel *Relation) error {
	cw := csv.NewWriter(w)
	names := make([]string, rel.Schema.NumAttrs())
	for i := range names {
		names[i] = rel.Schema.Attr(i).Name
	}
	if err := cw.Write(names); err != nil {
		return err
	}
	fields := make([]string, len(names))
	for _, row := range rel.Rows {
		for j, v := range row {
			switch rel.Schema.Attr(j).Type {
			case Int64:
				fields[j] = strconv.FormatInt(v.I, 10)
			case Float64:
				fields[j] = strconv.FormatFloat(v.F, 'g', -1, 64)
			case String:
				fields[j] = v.S
			case Bytes:
				fields[j] = fmt.Sprintf("%x", v.B)
			case Set:
				elems := normalizeSet(v.SetElems) // canonical order, like Encode
				parts := make([]string, len(elems))
				for k, e := range elems {
					parts[k] = strconv.FormatUint(uint64(e), 10)
				}
				fields[j] = strings.Join(parts, " ")
			}
		}
		if err := cw.Write(fields); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
