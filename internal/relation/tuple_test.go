package relation

import (
	"bytes"
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

func allTypesSchema() *Schema {
	return MustSchema(
		Attr{Name: "i", Type: Int64},
		Attr{Name: "f", Type: Float64},
		Attr{Name: "s", Type: String, Width: 16},
		Attr{Name: "b", Type: Bytes, Width: 4},
		Attr{Name: "set", Type: Set, Width: 8},
	)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := allTypesSchema()
	in := Tuple{
		IntValue(-42),
		FloatValue(math.Pi),
		StringValue("hello"),
		BytesValue([]byte{1, 2, 3, 4}),
		SetValue(9, 3, 3, 7),
	}
	enc, err := s.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != s.TupleSize() {
		t.Fatalf("encoded size %d != TupleSize %d", len(enc), s.TupleSize())
	}
	out, err := s.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].I != -42 || out[1].F != math.Pi || out[2].S != "hello" {
		t.Fatalf("decoded scalars wrong: %+v", out)
	}
	if !bytes.Equal(out[3].B, []byte{1, 2, 3, 4}) {
		t.Fatalf("decoded bytes wrong: %v", out[3].B)
	}
	if !reflect.DeepEqual(out[4].SetElems, []uint32{3, 7, 9}) {
		t.Fatalf("decoded set wrong: %v", out[4].SetElems)
	}
}

func TestEncodeFixedSize(t *testing.T) {
	// Fixed Size principle: every tuple of a schema encodes to the same
	// length regardless of content.
	s := allTypesSchema()
	a := s.MustEncode(Tuple{IntValue(0), FloatValue(0), StringValue(""), BytesValue(nil), SetValue()})
	b := s.MustEncode(Tuple{IntValue(1 << 62), FloatValue(-1e300),
		StringValue("sixteen-bytes!!!"), BytesValue([]byte{255, 255, 255, 255}),
		SetValue(1, 2, 3, 4, 5, 6, 7, 8)})
	if len(a) != len(b) || len(a) != s.TupleSize() {
		t.Fatalf("lengths differ: %d vs %d (want %d)", len(a), len(b), s.TupleSize())
	}
}

func TestEncodeErrors(t *testing.T) {
	s := allTypesSchema()
	base := Tuple{IntValue(0), FloatValue(0), StringValue(""), BytesValue(nil), SetValue()}

	long := append(Tuple(nil), base...)
	long[2] = StringValue("this string is definitely longer than sixteen bytes")
	if _, err := s.Encode(long); err == nil {
		t.Error("oversized string accepted")
	}

	big := append(Tuple(nil), base...)
	big[3] = BytesValue(make([]byte, 5))
	if _, err := s.Encode(big); err == nil {
		t.Error("oversized bytes accepted")
	}

	overset := append(Tuple(nil), base...)
	overset[4] = SetValue(1, 2, 3, 4, 5, 6, 7, 8, 9)
	if _, err := s.Encode(overset); err == nil {
		t.Error("oversized set accepted")
	}

	if _, err := s.Encode(base[:2]); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := s.Decode(make([]byte, 3)); err == nil {
		t.Error("short buffer accepted by Decode")
	}
}

func TestDecodeRejectsCorruptSetCardinality(t *testing.T) {
	s := MustSchema(Attr{Name: "s", Type: Set, Width: 2})
	enc := s.MustEncode(Tuple{SetValue(1)})
	enc[0], enc[1] = 0xFF, 0xFF // claim cardinality 65535 > capacity 2
	if _, err := s.Decode(enc); err == nil {
		t.Fatal("corrupt cardinality accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := KeyedSchema()
	f := func(key, payload int64) bool {
		in := Tuple{IntValue(key), IntValue(payload)}
		out, err := s.Decode(s.MustEncode(in))
		if err != nil {
			return false
		}
		return out[0].I == key && out[1].I == payload
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetEncodingCanonical(t *testing.T) {
	// Set equality must become byte equality of the encoding, regardless of
	// element order or duplicates (used by decoy comparisons).
	s := MustSchema(Attr{Name: "s", Type: Set, Width: 8})
	f := func(elems []uint32) bool {
		if len(elems) > 8 {
			elems = elems[:8]
		}
		shuffled := append([]uint32(nil), elems...)
		rng := rand.New(rand.NewPCG(1, 2))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a := s.MustEncode(Tuple{SetValue(elems...)})
		b := s.MustEncode(Tuple{SetValue(shuffled...)})
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinTuples(t *testing.T) {
	a := Tuple{IntValue(1)}
	b := Tuple{IntValue(2), IntValue(3)}
	j := JoinTuples(a, b)
	if len(j) != 3 || j[0].I != 1 || j[2].I != 3 {
		t.Fatalf("JoinTuples = %+v", j)
	}
}

func TestRelationAppend(t *testing.T) {
	r := NewRelation(KeyedSchema())
	if err := r.Append(Tuple{IntValue(1), IntValue(2)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(Tuple{IntValue(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	encs, err := r.EncodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(encs) != 1 || len(encs[0]) != r.Schema.TupleSize() {
		t.Fatalf("EncodeAll wrong shape")
	}
}
