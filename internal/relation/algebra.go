package relation

import "fmt"

// Post-processing helpers for join results: the recipient P_C typically
// projects the combined rows down to the attributes it needs (e.g. only the
// matching sequences of the gene-bank application) and filters them
// locally. These operate on plaintext relations the recipient already owns,
// so they have no privacy obligations.

// Project returns a new relation keeping only the named attributes, in the
// given order.
func Project(r *Relation, names ...string) (*Relation, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("relation: project needs at least one attribute")
	}
	idx := make([]int, len(names))
	attrs := make([]Attr, len(names))
	for i, name := range names {
		j := r.Schema.Index(name)
		if j < 0 {
			return nil, fmt.Errorf("relation: no attribute %q in %s", name, r.Schema)
		}
		idx[i] = j
		attrs[i] = r.Schema.Attr(j)
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	out := NewRelation(schema)
	for _, row := range r.Rows {
		t := make(Tuple, len(idx))
		for i, j := range idx {
			t[i] = row[j]
		}
		if err := out.Append(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Select returns the rows satisfying keep.
func Select(r *Relation, keep func(Tuple) bool) *Relation {
	out := NewRelation(r.Schema)
	for _, row := range r.Rows {
		if keep(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Rename returns a relation whose schema renames one attribute.
func Rename(r *Relation, from, to string) (*Relation, error) {
	j := r.Schema.Index(from)
	if j < 0 {
		return nil, fmt.Errorf("relation: no attribute %q in %s", from, r.Schema)
	}
	attrs := make([]Attr, r.Schema.NumAttrs())
	for i := range attrs {
		attrs[i] = r.Schema.Attr(i)
	}
	attrs[j].Name = to
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	out := NewRelation(schema)
	out.Rows = r.Rows
	return out, nil
}

// Distinct returns the relation with duplicate rows removed (first
// occurrence kept).
func Distinct(r *Relation) *Relation {
	out := NewRelation(r.Schema)
	seen := make(map[string]bool, r.Len())
	for _, row := range r.Rows {
		key := string(r.Schema.MustEncode(row))
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Rows = append(out.Rows, row)
	}
	return out
}
