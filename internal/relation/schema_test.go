package relation

import (
	"strings"
	"testing"
)

func TestNewSchemaValidation(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attr
		ok    bool
	}{
		{"empty", nil, false},
		{"one int", []Attr{{Name: "a", Type: Int64}}, true},
		{"unnamed", []Attr{{Type: Int64}}, false},
		{"duplicate", []Attr{{Name: "a", Type: Int64}, {Name: "a", Type: Float64}}, false},
		{"string no width", []Attr{{Name: "s", Type: String}}, false},
		{"string ok", []Attr{{Name: "s", Type: String, Width: 8}}, true},
		{"set ok", []Attr{{Name: "s", Type: Set, Width: 4}}, true},
		{"bad type", []Attr{{Name: "x", Type: AttrType(99)}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSchema(tc.attrs...)
			if (err == nil) != tc.ok {
				t.Fatalf("NewSchema(%v) error = %v, want ok=%v", tc.attrs, err, tc.ok)
			}
		})
	}
}

func TestSchemaTupleSize(t *testing.T) {
	s := MustSchema(
		Attr{Name: "i", Type: Int64},
		Attr{Name: "f", Type: Float64},
		Attr{Name: "s", Type: String, Width: 10},
		Attr{Name: "b", Type: Bytes, Width: 3},
		Attr{Name: "set", Type: Set, Width: 4},
	)
	want := 8 + 8 + 10 + 3 + (2 + 16)
	if got := s.TupleSize(); got != want {
		t.Fatalf("TupleSize = %d, want %d", got, want)
	}
}

func TestSchemaIndexAndAttr(t *testing.T) {
	s := MustSchema(Attr{Name: "a", Type: Int64}, Attr{Name: "b", Type: Float64})
	if s.Index("a") != 0 || s.Index("b") != 1 {
		t.Fatalf("Index positions wrong: a=%d b=%d", s.Index("a"), s.Index("b"))
	}
	if s.Index("missing") != -1 {
		t.Fatalf("Index(missing) = %d, want -1", s.Index("missing"))
	}
	if s.Attr(1).Name != "b" {
		t.Fatalf("Attr(1).Name = %q", s.Attr(1).Name)
	}
}

func TestSchemaEqual(t *testing.T) {
	a := MustSchema(Attr{Name: "x", Type: Int64})
	b := MustSchema(Attr{Name: "x", Type: Int64})
	c := MustSchema(Attr{Name: "x", Type: Float64})
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	if a.Equal(c) {
		t.Error("different schemas Equal")
	}
	if a.Equal(nil) {
		t.Error("Equal(nil) true")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema(Attr{Name: "id", Type: Int64}, Attr{Name: "nm", Type: String, Width: 5})
	got := s.String()
	if !strings.Contains(got, "id int64") || !strings.Contains(got, "nm string[5]") {
		t.Fatalf("String() = %q", got)
	}
}

func TestConcat(t *testing.T) {
	a := MustSchema(Attr{Name: "id", Type: Int64})
	b := MustSchema(Attr{Name: "id", Type: Int64}, Attr{Name: "v", Type: Float64})
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumAttrs() != 3 {
		t.Fatalf("NumAttrs = %d, want 3", c.NumAttrs())
	}
	if c.Index("t0_id") != 0 || c.Index("t1_id") != 1 || c.Index("t1_v") != 2 {
		t.Fatalf("concat names wrong: %s", c)
	}
	if c.TupleSize() != a.TupleSize()+b.TupleSize() {
		t.Fatalf("TupleSize = %d", c.TupleSize())
	}
	if _, err := Concat(a, nil); err == nil {
		t.Fatal("Concat with nil schema should error")
	}
}
