package relation

import "testing"

func TestKeyHistogram(t *testing.T) {
	r := NewRelation(KeyedSchema())
	for _, k := range []int64{1, 2, 2, 3, 3, 3} {
		r.MustAppend(Tuple{IntValue(k), IntValue(0)})
	}
	h, err := KeyHistogram(r, "key")
	if err != nil {
		t.Fatal(err)
	}
	if h[1] != 1 || h[2] != 2 || h[3] != 3 || len(h) != 3 {
		t.Fatalf("histogram = %v", h)
	}
	if _, err := KeyHistogram(r, "nope"); err == nil {
		t.Error("missing attribute accepted")
	}
	p := GenPersons(NewRand(1), 3, 5)
	if _, err := KeyHistogram(p, "name"); err == nil {
		t.Error("non-int attribute accepted")
	}
}

func TestEquijoinSizeMatchesReference(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		a := GenKeyed(NewRand(seed), 15, 6)
		b := GenKeyed(NewRand(seed+100), 20, 6)
		got, err := EquijoinSize(a, "key", b, "key")
		if err != nil {
			t.Fatal(err)
		}
		eq, _ := NewEqui(a.Schema, "key", b.Schema, "key")
		want := int64(ReferenceJoin(a, b, eq).Len())
		if got != want {
			t.Fatalf("seed %d: EquijoinSize = %d, reference = %d", seed, got, want)
		}
	}
}

func TestEquijoinMatchBoundMatchesMaxMatches(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		a, b := GenWithMatchBound(NewRand(seed), 7, 25, 4+int(seed%3))
		got, err := EquijoinMatchBound(a, "key", b, "key")
		if err != nil {
			t.Fatal(err)
		}
		eq, _ := NewEqui(a.Schema, "key", b.Schema, "key")
		want := int64(MaxMatches(a, b, eq))
		if got != want {
			t.Fatalf("seed %d: EquijoinMatchBound = %d, MaxMatches = %d", seed, got, want)
		}
	}
}
