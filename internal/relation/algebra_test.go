package relation

import "testing"

func TestProject(t *testing.T) {
	r := GenKeyed(NewRand(1), 5, 10)
	p, err := Project(r, "payload")
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema.NumAttrs() != 1 || p.Schema.Attr(0).Name != "payload" {
		t.Fatalf("projected schema = %s", p.Schema)
	}
	if p.Len() != 5 || p.Rows[2][0].I != r.Rows[2][1].I {
		t.Fatal("projected values wrong")
	}
	// Reordering.
	p2, err := Project(r, "payload", "key")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Schema.Attr(0).Name != "payload" || p2.Schema.Attr(1).Name != "key" {
		t.Fatal("attribute order not preserved")
	}
	if _, err := Project(r, "nope"); err == nil {
		t.Fatal("missing attribute accepted")
	}
	if _, err := Project(r); err == nil {
		t.Fatal("empty projection accepted")
	}
}

func TestSelect(t *testing.T) {
	r := GenKeyed(NewRand(2), 20, 4)
	s := Select(r, func(tup Tuple) bool { return tup[0].I == 0 })
	for _, row := range s.Rows {
		if row[0].I != 0 {
			t.Fatal("select kept non-matching row")
		}
	}
	total := 0
	for _, row := range r.Rows {
		if row[0].I == 0 {
			total++
		}
	}
	if s.Len() != total {
		t.Fatalf("select kept %d, want %d", s.Len(), total)
	}
}

func TestRename(t *testing.T) {
	r := GenKeyed(NewRand(3), 3, 4)
	out, err := Rename(r, "key", "id")
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Index("id") != 0 || out.Schema.Index("key") != -1 {
		t.Fatalf("rename schema = %s", out.Schema)
	}
	if out.Rows[0][0].I != r.Rows[0][0].I {
		t.Fatal("rename changed data")
	}
	if _, err := Rename(r, "nope", "x"); err == nil {
		t.Fatal("missing attribute accepted")
	}
	if _, err := Rename(r, "key", "payload"); err == nil {
		t.Fatal("rename collision accepted")
	}
}

func TestDistinct(t *testing.T) {
	r := NewRelation(KeyedSchema())
	for _, k := range []int64{1, 2, 1, 3, 2, 1} {
		r.MustAppend(Tuple{IntValue(k), IntValue(0)})
	}
	d := Distinct(r)
	if d.Len() != 3 {
		t.Fatalf("distinct kept %d rows, want 3", d.Len())
	}
	if d.Rows[0][0].I != 1 || d.Rows[1][0].I != 2 || d.Rows[2][0].I != 3 {
		t.Fatal("distinct did not keep first occurrences in order")
	}
}
