package relation

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// The generators below synthesise the workloads the paper's introduction
// motivates: watch lists vs. passenger manifests, and gene-bank sequences vs.
// patient records. Production traces of either are obviously unavailable, so
// the generators produce size- and skew-controlled synthetic stand-ins that
// exercise the same predicates (equality, band, Jaccard similarity).

// Rand is the subset of math/rand/v2.Rand the generators need, so tests can
// substitute deterministic sources.
type Rand interface {
	Int64N(n int64) int64
	IntN(n int) int
	Uint32() uint32
	Float64() float64
}

var _ Rand = (*rand.Rand)(nil)

// NewRand returns a deterministic generator seeded from two words.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// PersonSchema returns the schema used by the watch-list workloads:
// (id int64, name string[24], dob int64, passport string[12]).
func PersonSchema() *Schema {
	return MustSchema(
		Attr{Name: "id", Type: Int64},
		Attr{Name: "name", Type: String, Width: 24},
		Attr{Name: "dob", Type: Int64},
		Attr{Name: "passport", Type: String, Width: 12},
	)
}

// GenPersons generates n synthetic person records with ids drawn uniformly
// from [0, idSpace). Smaller idSpace forces more matches when two generated
// relations are equijoined on id.
func GenPersons(rng Rand, n int, idSpace int64) *Relation {
	r := NewRelation(PersonSchema())
	for i := 0; i < n; i++ {
		id := rng.Int64N(idSpace)
		r.MustAppend(Tuple{
			IntValue(id),
			StringValue(fmt.Sprintf("person-%06d", id)),
			IntValue(19000101 + rng.Int64N(1000000)),
			StringValue(fmt.Sprintf("P%08d", rng.Int64N(100000000))),
		})
	}
	return r
}

// SequenceSchema returns the schema used by the genomics workloads:
// (seqid int64, kmer set[K]).
func SequenceSchema(k int) *Schema {
	return MustSchema(
		Attr{Name: "seqid", Type: Int64},
		Attr{Name: "kmers", Type: Set, Width: k},
	)
}

// GenSequences generates n synthetic sequences as k-mer sets of cardinality
// card drawn from a vocabulary of vocab shingles. With a small vocabulary,
// Jaccard-similar pairs appear frequently.
func GenSequences(rng Rand, n, card, capacity int, vocab uint32) *Relation {
	r := NewRelation(SequenceSchema(capacity))
	for i := 0; i < n; i++ {
		elems := make([]uint32, card)
		for j := range elems {
			elems[j] = rng.Uint32() % vocab
		}
		r.MustAppend(Tuple{IntValue(int64(i)), SetValue(elems...)})
	}
	return r
}

// KeyedSchema returns the minimal (key int64, payload int64) schema used by
// most algorithm tests and by the cost-validation workloads.
func KeyedSchema() *Schema {
	return MustSchema(
		Attr{Name: "key", Type: Int64},
		Attr{Name: "payload", Type: Int64},
	)
}

// GenKeyed generates n rows with keys uniform in [0, keySpace).
func GenKeyed(rng Rand, n int, keySpace int64) *Relation {
	r := NewRelation(KeyedSchema())
	for i := 0; i < n; i++ {
		r.MustAppend(Tuple{IntValue(rng.Int64N(keySpace)), IntValue(int64(i))})
	}
	return r
}

// GenKeyedZipf generates n rows with keys following an approximate Zipf
// distribution over [0, keySpace), producing the skew that defeats the unsafe
// grace-hash partitioning of §4.5.1.
func GenKeyedZipf(rng Rand, n int, keySpace int64, s float64) *Relation {
	// Inverse-CDF sampling over the (truncated) Zipf mass function.
	weights := make([]float64, keySpace)
	var total float64
	for k := int64(0); k < keySpace; k++ {
		w := 1.0 / math.Pow(float64(k+1), s)
		weights[k] = w
		total += w
	}
	r := NewRelation(KeyedSchema())
	for i := 0; i < n; i++ {
		u := rng.Float64() * total
		var acc float64
		key := keySpace - 1
		for k := int64(0); k < keySpace; k++ {
			acc += weights[k]
			if u <= acc {
				key = k
				break
			}
		}
		r.MustAppend(Tuple{IntValue(key), IntValue(int64(i))})
	}
	return r
}

// GenWithMatchBound generates a pair of keyed relations (A, B) of sizes nA
// and nB such that the maximum number of B tuples matching any single A tuple
// on an id equijoin is exactly wantN (the paper's parameter N, §4.1), and the
// total number of joining pairs is controlled. It is used by the Chapter 4
// algorithm tests, which need a known N.
func GenWithMatchBound(rng Rand, nA, nB, wantN int) (*Relation, *Relation) {
	if wantN > nB {
		panic("relation: wantN exceeds |B|")
	}
	a := NewRelation(KeyedSchema())
	b := NewRelation(KeyedSchema())
	// A keys are 0..nA-1; give key 0 exactly wantN matches in B, spread the
	// remaining B rows over non-joining keys >= nA so no key exceeds wantN.
	for i := 0; i < nA; i++ {
		a.MustAppend(Tuple{IntValue(int64(i)), IntValue(int64(1000 + i))})
	}
	for j := 0; j < wantN; j++ {
		b.MustAppend(Tuple{IntValue(0), IntValue(int64(2000 + j))})
	}
	for j := wantN; j < nB; j++ {
		// Random matches for other A keys, capped below wantN by giving each
		// remaining A key at most wantN-1 rows, else park on a non-key.
		if wantN > 1 && nA > 1 && rng.IntN(2) == 0 {
			k := 1 + rng.IntN(nA-1)
			if countKey(b, int64(k)) < wantN-1 {
				b.MustAppend(Tuple{IntValue(int64(k)), IntValue(int64(2000 + j))})
				continue
			}
		}
		b.MustAppend(Tuple{IntValue(int64(nA) + rng.Int64N(1<<30)), IntValue(int64(2000 + j))})
	}
	return a, b
}

func countKey(r *Relation, key int64) int {
	n := 0
	for _, t := range r.Rows {
		if t[0].I == key {
			n++
		}
	}
	return n
}
