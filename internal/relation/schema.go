// Package relation provides the relational substrate for the privacy
// preserving join algorithms: typed schemas, a fixed-size binary tuple codec,
// join predicates (arbitrary, equality, range, similarity), and synthetic
// workload generators modelled on the paper's motivating applications.
//
// The paper (Li, "Privacy Preserving Joins on Secure Coprocessors",
// UCB/EECS-2008-158; ICDE 2008) assumes fixed-size tuples so that the host
// cannot infer anything from ciphertext lengths (§4.1, §5.2.1). Every tuple
// of a schema therefore encodes to exactly Schema.TupleSize bytes; variable
// content (strings, sets) is truncated or zero-padded to its declared width.
package relation

import (
	"errors"
	"fmt"
	"strings"
)

// AttrType enumerates the supported attribute types.
type AttrType uint8

const (
	// Int64 is a signed 64-bit integer attribute (8 bytes).
	Int64 AttrType = iota
	// Float64 is an IEEE-754 double attribute (8 bytes).
	Float64
	// String is a fixed-width byte string attribute (Width bytes; shorter
	// values are zero-padded, longer values are rejected by Encode).
	String
	// Bytes is a fixed-width opaque byte attribute (Width bytes).
	Bytes
	// Set is a fixed-capacity set of 32-bit elements used by similarity
	// predicates (4 bytes per slot plus a 2-byte cardinality prefix).
	Set
)

// String implements fmt.Stringer.
func (t AttrType) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Bytes:
		return "bytes"
	case Set:
		return "set"
	default:
		return fmt.Sprintf("AttrType(%d)", uint8(t))
	}
}

// Attr describes one attribute of a schema.
type Attr struct {
	Name string
	Type AttrType
	// Width is the payload width in bytes for String and Bytes attributes
	// and the maximum cardinality for Set attributes. It is ignored for
	// Int64 and Float64.
	Width int
}

// size returns the encoded size of the attribute in bytes.
func (a Attr) size() int {
	switch a.Type {
	case Int64, Float64:
		return 8
	case String, Bytes:
		return a.Width
	case Set:
		return 2 + 4*a.Width
	default:
		return 0
	}
}

// Schema is an ordered list of attributes. A Schema is immutable after
// construction with NewSchema.
type Schema struct {
	attrs  []Attr
	size   int
	byName map[string]int
}

// NewSchema validates the attribute list and computes the fixed tuple size.
func NewSchema(attrs ...Attr) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, errors.New("relation: schema needs at least one attribute")
	}
	s := &Schema{byName: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation: attribute %d has empty name", i)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q", a.Name)
		}
		switch a.Type {
		case Int64, Float64:
			// fixed size, Width ignored
		case String, Bytes, Set:
			if a.Width <= 0 {
				return nil, fmt.Errorf("relation: attribute %q needs positive width", a.Name)
			}
		default:
			return nil, fmt.Errorf("relation: attribute %q has unknown type", a.Name)
		}
		s.byName[a.Name] = i
		s.size += a.size()
	}
	s.attrs = append([]Attr(nil), attrs...)
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and examples.
func MustSchema(attrs ...Attr) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attr { return s.attrs[i] }

// Index returns the position of the named attribute, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// TupleSize is the exact encoded size of every tuple of this schema.
func (s *Schema) TupleSize() int { return s.size }

// Equal reports whether two schemas have identical attribute lists.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if o == nil || len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name type[width], ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", a.Name, a.Type)
		switch a.Type {
		case String, Bytes, Set:
			fmt.Fprintf(&b, "[%d]", a.Width)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Concat builds the result schema of joining schemas in order, prefixing
// attribute names with tN_ to avoid collisions, mirroring SQL's qualified
// output columns.
func Concat(schemas ...*Schema) (*Schema, error) {
	var attrs []Attr
	for ti, s := range schemas {
		if s == nil {
			return nil, fmt.Errorf("relation: nil schema at position %d", ti)
		}
		for _, a := range s.attrs {
			a.Name = fmt.Sprintf("t%d_%s", ti, a.Name)
			attrs = append(attrs, a)
		}
	}
	return NewSchema(attrs...)
}
