package relation

import (
	"bytes"
	"testing"
)

// FuzzKeyedCodec checks that the fixed-size tuple codec round-trips any
// keyed row and that Decode never panics on arbitrary bytes of the right
// length.
func FuzzKeyedCodec(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(-1), int64(1<<62))
	f.Fuzz(func(t *testing.T, key, payload int64) {
		s := KeyedSchema()
		enc := s.MustEncode(Tuple{IntValue(key), IntValue(payload)})
		out, err := s.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if out[0].I != key || out[1].I != payload {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecodeArbitrary feeds arbitrary bytes into Decode for a schema with
// every attribute type: it must either succeed or error, never panic, and
// successful decodes must re-encode to the same bytes (canonical form).
func FuzzDecodeArbitrary(f *testing.F) {
	s := MustSchema(
		Attr{Name: "i", Type: Int64},
		Attr{Name: "s", Type: String, Width: 6},
		Attr{Name: "set", Type: Set, Width: 3},
	)
	valid := s.MustEncode(Tuple{IntValue(5), StringValue("ab"), SetValue(1, 2)})
	f.Add(valid)
	f.Add(bytes.Repeat([]byte{0xFF}, s.TupleSize()))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) != s.TupleSize() {
			t.Skip()
		}
		tup, err := s.Decode(data)
		if err != nil {
			return
		}
		// Not all byte patterns are canonical (padding, set order), so only
		// require that re-encoding succeeds and decodes back to the same
		// logical tuple.
		re, err := s.Encode(tup)
		if err != nil {
			t.Fatalf("decoded tuple does not re-encode: %v", err)
		}
		tup2, err := s.Decode(re)
		if err != nil {
			t.Fatal(err)
		}
		if tup[0].I != tup2[0].I || tup[1].S != tup2[1].S || len(tup[2].SetElems) != len(tup2[2].SetElems) {
			t.Fatal("canonicalised tuple changed")
		}
	})
}

// FuzzCSV round-trips arbitrary small keyed tables through the CSV codec.
func FuzzCSV(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), int64(4))
	f.Fuzz(func(t *testing.T, k1, p1, k2, p2 int64) {
		rel := NewRelation(KeyedSchema())
		rel.MustAppend(Tuple{IntValue(k1), IntValue(p1)})
		rel.MustAppend(Tuple{IntValue(k2), IntValue(p2)})
		var buf bytes.Buffer
		if err := WriteCSV(&buf, rel); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !SameMultiset(rel, back) {
			t.Fatal("csv round trip lost rows")
		}
	})
}
