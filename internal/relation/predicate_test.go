package relation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEquiPredicate(t *testing.T) {
	s := KeyedSchema()
	eq, err := NewEqui(s, "key", s, "key")
	if err != nil {
		t.Fatal(err)
	}
	a := Tuple{IntValue(7), IntValue(1)}
	b := Tuple{IntValue(7), IntValue(2)}
	c := Tuple{IntValue(8), IntValue(2)}
	if !eq.Match(a, b) {
		t.Error("equal keys do not match")
	}
	if eq.Match(a, c) {
		t.Error("different keys match")
	}
	if eq.KeyIndexA() != 0 || eq.KeyIndexB() != 0 {
		t.Error("key indexes wrong")
	}
	if !eq.Less(a, c) || eq.Less(c, a) {
		t.Error("Less ordering wrong")
	}
	if eq.Compare(a, b) != 0 || eq.Compare(a, c) != -1 || eq.Compare(c, a) != 1 {
		t.Error("Compare wrong")
	}
}

func TestEquiErrors(t *testing.T) {
	s := KeyedSchema()
	s2 := MustSchema(Attr{Name: "key", Type: Float64})
	if _, err := NewEqui(s, "nope", s, "key"); err == nil {
		t.Error("missing attrA accepted")
	}
	if _, err := NewEqui(s, "key", s, "nope"); err == nil {
		t.Error("missing attrB accepted")
	}
	if _, err := NewEqui(s, "key", s2, "key"); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestEquiOnAllTypes(t *testing.T) {
	s := allTypesSchema()
	for _, attr := range []string{"i", "f", "s", "b", "set"} {
		eq, err := NewEqui(s, attr, s, attr)
		if err != nil {
			t.Fatalf("%s: %v", attr, err)
		}
		x := Tuple{IntValue(1), FloatValue(2), StringValue("x"), BytesValue([]byte{1, 0, 0, 0}), SetValue(5, 6)}
		y := Tuple{IntValue(1), FloatValue(2), StringValue("x"), BytesValue([]byte{1, 0, 0, 0}), SetValue(6, 5, 5)}
		if !eq.Match(x, y) {
			t.Errorf("%s: identical values do not match", attr)
		}
	}
}

func TestBandPredicate(t *testing.T) {
	s := KeyedSchema()
	band, err := NewBand(s, "key", s, "key", 2)
	if err != nil {
		t.Fatal(err)
	}
	a := Tuple{IntValue(10), IntValue(0)}
	for _, tc := range []struct {
		k    int64
		want bool
	}{{8, true}, {10, true}, {12, true}, {13, false}, {7, false}} {
		b := Tuple{IntValue(tc.k), IntValue(0)}
		if got := band.Match(a, b); got != tc.want {
			t.Errorf("band |10-%d|<=2 = %v, want %v", tc.k, got, tc.want)
		}
	}
	if _, err := NewBand(s, "key", PersonSchema(), "name", 1); err == nil {
		t.Error("non-numeric band accepted")
	}
}

func TestLessThanPredicate(t *testing.T) {
	s := KeyedSchema()
	lt, err := NewLessThan(s, "key", s, "key")
	if err != nil {
		t.Fatal(err)
	}
	if !lt.Match(Tuple{IntValue(1), IntValue(0)}, Tuple{IntValue(2), IntValue(0)}) {
		t.Error("1 < 2 false")
	}
	if lt.Match(Tuple{IntValue(2), IntValue(0)}, Tuple{IntValue(2), IntValue(0)}) {
		t.Error("2 < 2 true")
	}
}

func TestJaccardCoefficient(t *testing.T) {
	cases := []struct {
		x, y []uint32
		want float64
	}{
		{nil, nil, 0},
		{[]uint32{1}, nil, 0},
		{[]uint32{1, 2}, []uint32{1, 2}, 1},
		{[]uint32{1, 2}, []uint32{2, 3}, 1.0 / 3.0},
		{[]uint32{1, 2, 3, 4}, []uint32{3, 4, 5, 6}, 2.0 / 6.0},
		{[]uint32{1, 1, 2}, []uint32{2, 2, 1}, 1}, // duplicates ignored
	}
	for _, tc := range cases {
		if got := JaccardCoefficient(tc.x, tc.y); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Jaccard(%v,%v) = %g, want %g", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestJaccardSymmetric(t *testing.T) {
	f := func(x, y []uint32) bool {
		return JaccardCoefficient(x, y) == JaccardCoefficient(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJaccardPredicate(t *testing.T) {
	s := SequenceSchema(8)
	p, err := NewJaccard(s, "kmers", s, "kmers", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	a := Tuple{IntValue(1), SetValue(1, 2, 3, 4)}
	b := Tuple{IntValue(2), SetValue(1, 2, 3, 9)} // J = 3/5 > 0.5
	c := Tuple{IntValue(3), SetValue(7, 8, 9, 10)}
	if !p.Match(a, b) {
		t.Error("similar sets do not match")
	}
	if p.Match(a, c) {
		t.Error("dissimilar sets match")
	}
	if _, err := NewJaccard(s, "seqid", s, "kmers", 0.5); err == nil {
		t.Error("non-set attribute accepted")
	}
}

func TestL1NormPredicate(t *testing.T) {
	s := MustSchema(Attr{Name: "x", Type: Int64}, Attr{Name: "y", Type: Float64})
	p, err := NewL1Norm(s, s, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := Tuple{IntValue(1), FloatValue(1)}
	b := Tuple{IntValue(2), FloatValue(2.5)} // L1 = 1 + 1.5 = 2.5 < 3
	c := Tuple{IntValue(4), FloatValue(1)}   // L1 = 3, not < 3
	if !p.Match(a, b) {
		t.Error("close profiles do not match")
	}
	if p.Match(a, c) {
		t.Error("boundary profile matches")
	}
	strOnly := MustSchema(Attr{Name: "s", Type: String, Width: 4})
	if _, err := NewL1Norm(strOnly, strOnly, 1); err == nil {
		t.Error("no-numeric schema accepted")
	}
}

func TestPairwise(t *testing.T) {
	s := KeyedSchema()
	eq, _ := NewEqui(s, "key", s, "key")
	mp := Pairwise(eq)
	a := Tuple{IntValue(1), IntValue(0)}
	b := Tuple{IntValue(1), IntValue(9)}
	if !mp.Satisfy([]Tuple{a, b}) {
		t.Error("pairwise equal keys unsatisfied")
	}
	if mp.Satisfy([]Tuple{a}) {
		t.Error("wrong arity satisfied")
	}
	if mp.String() != eq.String() {
		t.Error("description not forwarded")
	}
}

func TestPredicateFuncAdapters(t *testing.T) {
	p := PredicateFunc{Fn: func(a, b Tuple) bool { return true }, Desc: "always"}
	if !p.Match(nil, nil) || p.String() != "always" {
		t.Error("PredicateFunc adapter broken")
	}
	mp := MultiPredicateFunc{Fn: func(ts []Tuple) bool { return len(ts) == 3 }, Desc: "arity3"}
	if !mp.Satisfy(make([]Tuple, 3)) || mp.Satisfy(nil) || mp.String() != "arity3" {
		t.Error("MultiPredicateFunc adapter broken")
	}
}
