package service

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"

	"ppj/internal/relation"
)

func TestContractJSONRoundTrip(t *testing.T) {
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	c := buildContract(t, "alg6", pA, pB, pC,
		PredicateSpec{Kind: "band", AttrA: "x", AttrB: "y", Param: 2.5}, 1e-12)

	var buf bytes.Buffer
	if err := WriteContract(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadContract(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != c.ID || back.Algorithm != "alg6" || back.Epsilon != 1e-12 {
		t.Fatalf("fields lost: %+v", back)
	}
	if back.Predicate != c.Predicate {
		t.Fatalf("predicate lost: %+v", back.Predicate)
	}
	if len(back.Parties) != 3 || !back.Parties[0].Identity.Equal(pA.pub) {
		t.Fatal("parties lost")
	}
	// Signatures must still verify after the round trip.
	if err := back.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalContractRejectsTampering(t *testing.T) {
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	c := buildContract(t, "alg5", pA, pB, pC,
		PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"}, 0)
	data, err := MarshalContract(c)
	if err != nil {
		t.Fatal(err)
	}
	// Change the contracted algorithm: the owners' signatures must fail.
	tampered := bytes.Replace(data, []byte(`"alg5"`), []byte(`"alg4"`), 1)
	if !bytes.Contains(tampered, []byte(`"alg4"`)) {
		t.Fatal("test setup: algorithm field not found")
	}
	if _, err := UnmarshalContract(tampered); err == nil {
		t.Fatal("tampered contract accepted")
	}
	if _, err := UnmarshalContract([]byte("{not json")); err == nil {
		t.Fatal("malformed json accepted")
	}
}

func TestThreeProviderService(t *testing.T) {
	// Chapter 5 treats arbitrary numbers of providers; exercise a 3-way
	// equijoin through the full network service with Algorithm 5.
	parties := []testParty{
		newParty(t, "h1"), newParty(t, "h2"), newParty(t, "h3"), newParty(t, "res"),
	}
	c := &Contract{
		ID: "threeway-1",
		Parties: []Party{
			{Name: "h1", Identity: parties[0].pub, Role: RoleProvider},
			{Name: "h2", Identity: parties[1].pub, Role: RoleProvider},
			{Name: "h3", Identity: parties[2].pub, Role: RoleProvider},
			{Name: "res", Identity: parties[3].pub, Role: RoleRecipient},
		},
		Predicate: PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"},
		Algorithm: "alg5",
	}
	for i := 0; i < 3; i++ {
		c.Sign(i, parties[i].priv)
	}
	svc, err := NewService(c, 8, 3)
	if err != nil {
		t.Fatal(err)
	}

	mk := func(seed uint64, n int) *relation.Relation {
		return relation.GenKeyed(relation.NewRand(seed), n, 4)
	}
	rels := []*relation.Relation{mk(1, 5), mk(2, 6), mk(3, 4)}

	conns := make(map[string]io.ReadWriter)
	clientConns := make([]net.Conn, 4)
	for i := 0; i < 4; i++ {
		server, client := net.Pipe()
		conns[c.Parties[i].Name] = server
		clientConns[i] = client
	}
	var (
		wg     sync.WaitGroup
		result *relation.Relation
		cliErr = make(chan error, 4)
	)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := &Client{Name: c.Parties[i].Name, Identity: parties[i].priv,
				DeviceKey: svc.Device.DeviceKey(), Expected: ExpectedStack()}
			cs, err := cl.Connect(clientConns[i], RoleProvider)
			if err == nil {
				err = cs.SubmitRelation(c.ID, rels[i])
			}
			cliErr <- err
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := &Client{Name: "res", Identity: parties[3].priv,
			DeviceKey: svc.Device.DeviceKey(), Expected: ExpectedStack()}
		cs, err := cl.Connect(clientConns[3], RoleRecipient)
		if err == nil {
			result, err = cs.ReceiveResult()
		}
		cliErr <- err
	}()
	if err := svc.Execute(conns); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(cliErr)
	for err := range cliErr {
		if err != nil {
			t.Fatal(err)
		}
	}

	pred := relation.MultiPredicateFunc{
		Fn: func(ts []relation.Tuple) bool {
			return ts[0][0].I == ts[1][0].I && ts[1][0].I == ts[2][0].I
		},
		Desc: "all keys equal",
	}
	want := relation.ReferenceMultiJoin(rels, pred)
	if !relation.SameMultiset(result, want) {
		t.Fatalf("3-way service join: got %d rows, want %d", result.Len(), want.Len())
	}
}
