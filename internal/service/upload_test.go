package service

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ppj/internal/relation"
)

// newUploadFixture builds a signed alg5 contract and its service with the
// given ingest limits, returning the service and its first provider.
func newUploadFixture(t *testing.T, maxBytes int64, window int) (*Service, testParty) {
	t.Helper()
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	contract := buildContract(t, "alg5", pA, pB, pC,
		PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"}, 0)
	svc, err := NewService(contract, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc.MaxUploadBytes = maxBytes
	svc.UploadWindow = window
	return svc, pA
}

// dialProvider completes a provider handshake over a net.Pipe, returning the
// server session, the client session, and the client's pipe end (closing it
// simulates a vanished peer). Both ends close at cleanup so blocked decoders
// unwind.
func dialProvider(t *testing.T, svc *Service, p testParty, legacy bool) (*Session, *ClientSession, net.Conn) {
	t.Helper()
	serverEnd, clientEnd := net.Pipe()
	t.Cleanup(func() { serverEnd.Close(); clientEnd.Close() })
	type hsOut struct {
		sess *Session
		err  error
	}
	done := make(chan hsOut, 1)
	go func() {
		sess, _, err := svc.handshake(serverEnd)
		done <- hsOut{sess, err}
	}()
	c := &Client{Name: p.name, Identity: p.priv,
		DeviceKey: svc.Device.DeviceKey(), Expected: ExpectedStack(), Legacy: legacy}
	cs, err := c.Connect(clientEnd, RoleProvider)
	if err != nil {
		t.Fatal(err)
	}
	hs := <-done
	if hs.err != nil {
		t.Fatal(hs.err)
	}
	return hs.sess, cs, clientEnd
}

// uploadOnce drives one complete provider upload through the real producer
// and ReceiveUpload, returning the server's verdict and the client's.
func uploadOnce(t *testing.T, svc *Service, p testParty, contractID string, rel *relation.Relation, legacy bool, chunkRows int) (srvErr, cliErr error) {
	t.Helper()
	sess, cs, clientEnd := dialProvider(t, svc, p, legacy)
	done := make(chan error, 1)
	go func() {
		done <- cs.SubmitRelationOpts(contractID, rel, UploadOptions{ChunkRows: chunkRows})
	}()
	srvErr = svc.ReceiveUpload(p.name, sess)
	if srvErr != nil {
		// The producer may be blocked mid-write on a stream the server has
		// abandoned; any refusal verdict was already read by its ack reader,
		// so closing only unblocks a doomed write.
		clientEnd.Close()
	}
	return srvErr, <-done
}

// uploadScript drives ReceiveUpload against handcrafted frames.
type uploadScript struct {
	t         *testing.T
	svc       *Service
	cs        *ClientSession
	clientEnd net.Conn
	srv       chan error
}

func startScript(t *testing.T, svc *Service, p testParty) *uploadScript {
	t.Helper()
	sess, cs, clientEnd := dialProvider(t, svc, p, false)
	sc := &uploadScript{t: t, svc: svc, cs: cs, clientEnd: clientEnd, srv: make(chan error, 1)}
	go func() { sc.srv <- svc.ReceiveUpload(p.name, sess) }()
	return sc
}

func (sc *uploadScript) send(v any) {
	sc.t.Helper()
	if err := sc.cs.sess.enc.Encode(v); err != nil {
		sc.t.Fatalf("sending %T: %v", v, err)
	}
}

func (sc *uploadScript) ack() uploadAckMsg {
	sc.t.Helper()
	var a uploadAckMsg
	if err := sc.cs.sess.dec.Decode(&a); err != nil {
		sc.t.Fatalf("reading ack: %v", err)
	}
	return a
}

// begin opens the stream and consumes the credit grant.
func (sc *uploadScript) begin(declared int64, schema *relation.Schema) {
	sc.t.Helper()
	sc.send(uploadBeginMsg{ContractID: sc.svc.Contract.ID, Schema: toWire(schema), DeclaredRows: declared})
	if a := sc.ack(); a.Err != "" {
		sc.t.Fatalf("begin refused: %s", a.Err)
	}
}

// seal encodes and seals rows [start, end) of rel under the session key.
func (sc *uploadScript) seal(rel *relation.Relation, start, end int) [][]byte {
	sc.t.Helper()
	prefix := []byte(sc.svc.Contract.ID)
	out := make([][]byte, 0, end-start)
	for _, row := range rel.Rows[start:end] {
		e, err := rel.Schema.Encode(row)
		if err != nil {
			sc.t.Fatal(err)
		}
		out = append(out, sc.cs.sess.sealer.seal(append(append([]byte(nil), prefix...), e...)))
	}
	return out
}

// verdict waits for the server's ReceiveUpload return. The refusal nack
// travels over a synchronous pipe, so a drainer keeps reading acks — the
// verdict must not deadlock behind its own nack write. No script touches
// the client decoder after calling verdict.
func (sc *uploadScript) verdict() error {
	sc.t.Helper()
	go func() {
		for {
			var a uploadAckMsg
			if sc.cs.sess.dec.Decode(&a) != nil {
				return
			}
		}
	}()
	select {
	case err := <-sc.srv:
		return err
	case <-time.After(10 * time.Second):
		sc.t.Fatal("server never returned a verdict")
		return nil
	}
}

// TestChunkedFramingViolations walks every way a chunk stream can lie —
// broken CRC chain, skewed or replayed sequence numbers, empty chunks and
// envelopes, totals that disagree with the declaration — and pins the typed
// verdict for each, plus the refusal text reaching the producer.
func TestChunkedFramingViolations(t *testing.T) {
	rel := relation.GenKeyed(relation.NewRand(5), 8, 5)

	t.Run("crc corruption", func(t *testing.T) {
		svc, pA := newUploadFixture(t, 0, 0)
		sc := startScript(t, svc, pA)
		sc.begin(8, rel.Schema)
		var ck chunker
		f := ck.frame(sc.seal(rel, 0, 4))
		f.CRC ^= 1
		sc.send(uploadFrameMsg{Chunk: f})
		if a := sc.ack(); !strings.Contains(a.Err, "CRC") {
			t.Fatalf("nack = %+v", a)
		}
		if err := sc.verdict(); !errors.Is(err, ErrUploadFrame) {
			t.Fatalf("verdict = %v", err)
		}
	})

	t.Run("sequence skew", func(t *testing.T) {
		svc, pA := newUploadFixture(t, 0, 0)
		sc := startScript(t, svc, pA)
		sc.begin(8, rel.Schema)
		var ck chunker
		f := ck.frame(sc.seal(rel, 0, 4))
		f.Seq = 3
		sc.send(uploadFrameMsg{Chunk: f})
		err := sc.verdict()
		if !errors.Is(err, ErrUploadFrame) || !strings.Contains(err.Error(), "reordered") {
			t.Fatalf("verdict = %v", err)
		}
	})

	t.Run("replayed chunk", func(t *testing.T) {
		svc, pA := newUploadFixture(t, 0, 0)
		sc := startScript(t, svc, pA)
		sc.begin(8, rel.Schema)
		var ck chunker
		f := ck.frame(sc.seal(rel, 0, 4))
		sc.send(uploadFrameMsg{Chunk: f})
		if a := sc.ack(); a.Err != "" {
			t.Fatalf("first copy refused: %s", a.Err)
		}
		sc.send(uploadFrameMsg{Chunk: f})
		if err := sc.verdict(); !errors.Is(err, ErrUploadFrame) {
			t.Fatalf("verdict = %v", err)
		}
	})

	t.Run("rows exceed declaration", func(t *testing.T) {
		svc, pA := newUploadFixture(t, 0, 0)
		sc := startScript(t, svc, pA)
		sc.begin(2, rel.Schema)
		var ck chunker
		sc.send(uploadFrameMsg{Chunk: ck.frame(sc.seal(rel, 0, 4))})
		if err := sc.verdict(); !errors.Is(err, ErrUploadTooLarge) {
			t.Fatalf("verdict = %v", err)
		}
	})

	t.Run("end short of declaration", func(t *testing.T) {
		svc, pA := newUploadFixture(t, 0, 0)
		sc := startScript(t, svc, pA)
		sc.begin(8, rel.Schema)
		var ck chunker
		sc.send(uploadFrameMsg{Chunk: ck.frame(sc.seal(rel, 0, 4))})
		if a := sc.ack(); a.Err != "" {
			t.Fatalf("chunk refused: %s", a.Err)
		}
		sc.send(uploadFrameMsg{End: ck.endFrame(4)})
		err := sc.verdict()
		if !errors.Is(err, ErrUploadTruncated) || !strings.Contains(err.Error(), "4 of 8") {
			t.Fatalf("verdict = %v", err)
		}
	})

	t.Run("end frame totals lie", func(t *testing.T) {
		svc, pA := newUploadFixture(t, 0, 0)
		sc := startScript(t, svc, pA)
		sc.begin(4, rel.Schema)
		var ck chunker
		sc.send(uploadFrameMsg{Chunk: ck.frame(sc.seal(rel, 0, 4))})
		if a := sc.ack(); a.Err != "" {
			t.Fatalf("chunk refused: %s", a.Err)
		}
		e := ck.endFrame(4)
		e.Frames = 5
		sc.send(uploadFrameMsg{End: e})
		if err := sc.verdict(); !errors.Is(err, ErrUploadFrame) {
			t.Fatalf("verdict = %v", err)
		}
	})

	t.Run("eof mid-stream", func(t *testing.T) {
		svc, pA := newUploadFixture(t, 0, 0)
		sc := startScript(t, svc, pA)
		sc.begin(8, rel.Schema)
		var ck chunker
		sc.send(uploadFrameMsg{Chunk: ck.frame(sc.seal(rel, 0, 4))})
		if a := sc.ack(); a.Err != "" {
			t.Fatalf("chunk refused: %s", a.Err)
		}
		sc.clientEnd.Close()
		if err := sc.verdict(); !errors.Is(err, ErrUploadTruncated) {
			t.Fatalf("verdict = %v", err)
		}
	})

	t.Run("empty chunk", func(t *testing.T) {
		svc, pA := newUploadFixture(t, 0, 0)
		sc := startScript(t, svc, pA)
		sc.begin(8, rel.Schema)
		var ck chunker
		sc.send(uploadFrameMsg{Chunk: ck.frame(nil)})
		if err := sc.verdict(); !errors.Is(err, ErrUploadFrame) {
			t.Fatalf("verdict = %v", err)
		}
	})

	t.Run("empty envelope", func(t *testing.T) {
		svc, pA := newUploadFixture(t, 0, 0)
		sc := startScript(t, svc, pA)
		sc.begin(8, rel.Schema)
		sc.send(uploadFrameMsg{})
		if err := sc.verdict(); !errors.Is(err, ErrUploadFrame) {
			t.Fatalf("verdict = %v", err)
		}
	})

	t.Run("envelope carrying both frames", func(t *testing.T) {
		svc, pA := newUploadFixture(t, 0, 0)
		sc := startScript(t, svc, pA)
		sc.begin(8, rel.Schema)
		var ck chunker
		f := ck.frame(sc.seal(rel, 0, 4))
		sc.send(uploadFrameMsg{Chunk: f, End: ck.endFrame(4)})
		if err := sc.verdict(); !errors.Is(err, ErrUploadFrame) {
			t.Fatalf("verdict = %v", err)
		}
	})

	t.Run("negative declaration", func(t *testing.T) {
		svc, pA := newUploadFixture(t, 0, 0)
		sc := startScript(t, svc, pA)
		sc.send(uploadBeginMsg{ContractID: svc.Contract.ID, Schema: toWire(rel.Schema), DeclaredRows: -1})
		if a := sc.ack(); a.Err == "" {
			t.Fatal("negative declaration granted credit")
		}
		if err := sc.verdict(); !errors.Is(err, ErrUploadFrame) {
			t.Fatalf("verdict = %v", err)
		}
	})
}

func TestChunkAssemblerTerminalState(t *testing.T) {
	asm, err := newChunkAssembler(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ck chunker
	f := ck.frame([][]byte{{1}, {2}})
	if err := asm.chunk(f); err != nil {
		t.Fatal(err)
	}
	e := ck.endFrame(2)
	if err := asm.end(e); err != nil {
		t.Fatal(err)
	}
	if err := asm.chunk(f); !errors.Is(err, ErrUploadFrame) {
		t.Fatalf("chunk after end = %v", err)
	}
	if err := asm.end(e); !errors.Is(err, ErrUploadFrame) {
		t.Fatalf("second end = %v", err)
	}
}

// TestUploadLimitsRefuseBeforeRows pins both byte-budget enforcement points:
// an impossible declaration is refused at the begin frame before a single
// row is sealed, and a truthful declaration that still overruns the budget
// dies mid-stream — in both cases with ErrUploadTooLarge on the server and
// the refusal text on the producer.
func TestUploadLimitsRefuseBeforeRows(t *testing.T) {
	t.Run("refused at begin", func(t *testing.T) {
		svc, pA := newUploadFixture(t, 100, 0)
		rel := relation.GenKeyed(relation.NewRand(2), 50, 5)
		srvErr, cliErr := uploadOnce(t, svc, pA, svc.Contract.ID, rel, false, 8)
		if !errors.Is(srvErr, ErrUploadTooLarge) {
			t.Fatalf("server = %v", srvErr)
		}
		if cliErr == nil || !strings.Contains(cliErr.Error(), "upload refused") {
			t.Fatalf("client = %v", cliErr)
		}
	})

	t.Run("budget overrun mid-stream", func(t *testing.T) {
		// 8 declared rows pass the begin check at exactly 8 minimum-size rows,
		// but every real sealed row is larger, so the budget dies mid-stream.
		svc, pA := newUploadFixture(t, 8*minSealedRowBytes, 0)
		rel := relation.GenKeyed(relation.NewRand(3), 8, 5)
		srvErr, cliErr := uploadOnce(t, svc, pA, svc.Contract.ID, rel, false, 2)
		if !errors.Is(srvErr, ErrUploadTooLarge) || !strings.Contains(srvErr.Error(), "budget") {
			t.Fatalf("server = %v", srvErr)
		}
		// Depending on where the producer was blocked it sees either the
		// refusal nack or the abandoned stream; it must not succeed.
		if cliErr == nil {
			t.Fatal("client verdict missing for over-budget stream")
		}
	})

	t.Run("legacy upload over budget", func(t *testing.T) {
		svc, pA := newUploadFixture(t, 100, 0)
		svc.AllowLegacyUpload = true
		rel := relation.GenKeyed(relation.NewRand(4), 50, 5)
		srvErr, _ := uploadOnce(t, svc, pA, svc.Contract.ID, rel, true, 0)
		if !errors.Is(srvErr, ErrUploadTooLarge) {
			t.Fatalf("server = %v", srvErr)
		}
	})
}

// TestStreamingRefusalReachesClient pins that a begin-stage verdict (here:
// rows sealed for a foreign contract) travels back to the producer as a
// refusal instead of a hang.
func TestStreamingRefusalReachesClient(t *testing.T) {
	svc, pA := newUploadFixture(t, 0, 0)
	rel := relation.GenKeyed(relation.NewRand(6), 4, 5)
	srvErr, cliErr := uploadOnce(t, svc, pA, "some-other-contract", rel, false, 2)
	if srvErr == nil || !strings.Contains(srvErr.Error(), "foreign contract") {
		t.Fatalf("server = %v", srvErr)
	}
	if cliErr == nil || !strings.Contains(cliErr.Error(), "foreign contract") {
		t.Fatalf("client = %v", cliErr)
	}
}

// TestFailedUploadReleasesSlot is the retry half of the reservation
// protocol: a refused upload must free the party's slot so the provider can
// reconnect, and the retry must commit.
func TestFailedUploadReleasesSlot(t *testing.T) {
	svc, pA := newUploadFixture(t, 0, 0)
	rel := relation.GenKeyed(relation.NewRand(7), 5, 5)
	if srvErr, _ := uploadOnce(t, svc, pA, "wrong-contract", rel, false, 2); srvErr == nil {
		t.Fatal("foreign-contract upload accepted")
	}
	if srvErr, cliErr := uploadOnce(t, svc, pA, svc.Contract.ID, rel, false, 2); srvErr != nil || cliErr != nil {
		t.Fatalf("retry failed: server=%v client=%v", srvErr, cliErr)
	}
	svc.mu.Lock()
	up := svc.uploads[pA.name]
	svc.mu.Unlock()
	if up == nil || up.pending || up.rel.Len() != rel.Len() {
		t.Fatalf("committed upload = %+v", up)
	}
}

// TestConcurrentUploadReservesSlot is the duplicate-race regression: the
// party's slot is claimed before any ciphertext is read, so a second stream
// racing a still-running first one fails immediately — it can never burn a
// decrypt pass or clobber the committed relation.
func TestConcurrentUploadReservesSlot(t *testing.T) {
	svc, pA := newUploadFixture(t, 0, 0)
	rel := relation.GenKeyed(relation.NewRand(8), 6, 5)

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	svc.chunkConsumeHook = func(int) {
		once.Do(func() {
			close(entered)
			<-release
		})
	}

	sess1, cs1, _ := dialProvider(t, svc, pA, false)
	first := make(chan error, 1)
	go func() { first <- svc.ReceiveUpload(pA.name, sess1) }()
	go cs1.SubmitRelationOpts(svc.Contract.ID, rel, UploadOptions{ChunkRows: 2})
	<-entered

	// First stream is parked mid-chunk: its reservation must already hold.
	svc.mu.Lock()
	up := svc.uploads[pA.name]
	pending := up != nil && up.pending
	svc.mu.Unlock()
	if !pending {
		t.Fatal("no pending reservation while first stream is mid-flight")
	}

	sess2, cs2, _ := dialProvider(t, svc, pA, false)
	go cs2.SubmitRelationOpts(svc.Contract.ID, rel, UploadOptions{ChunkRows: 2})
	if err := svc.ReceiveUpload(pA.name, sess2); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("concurrent duplicate = %v", err)
	}

	close(release)
	if err := <-first; err != nil {
		t.Fatalf("first upload: %v", err)
	}
	svc.mu.Lock()
	up = svc.uploads[pA.name]
	svc.mu.Unlock()
	if up == nil || up.pending || up.rel.Len() != rel.Len() {
		t.Fatalf("committed upload = %+v", up)
	}

	// And a third attempt after commit still reads as a duplicate.
	sess3, cs3, _ := dialProvider(t, svc, pA, false)
	go cs3.SubmitRelation(svc.Contract.ID, rel)
	if err := svc.ReceiveUpload(pA.name, sess3); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("post-commit duplicate = %v", err)
	}
}

// TestLegacyUploadDisabledByDefault pins the deprecation gate: without the
// AllowLegacyUpload opt-in, a ProtoLegacy session is refused with the typed
// sentinel before a single byte of the upload is read — the test never
// submits anything, so a gate that read first would deadlock the pipe — and
// the refusal burns no reservation: the same party retries chunked and
// commits.
func TestLegacyUploadDisabledByDefault(t *testing.T) {
	svc, pA := newUploadFixture(t, 0, 0)
	sess, _, _ := dialProvider(t, svc, pA, true)
	if err := svc.ReceiveUpload(pA.name, sess); !errors.Is(err, ErrLegacyUploadDisabled) {
		t.Fatalf("legacy upload without opt-in = %v, want ErrLegacyUploadDisabled", err)
	}
	svc.mu.Lock()
	_, reserved := svc.uploads[pA.name]
	svc.mu.Unlock()
	if reserved {
		t.Fatal("refused legacy upload left a reservation behind")
	}
	rel := relation.GenKeyed(relation.NewRand(25), 5, 5)
	if srvErr, cliErr := uploadOnce(t, svc, pA, svc.Contract.ID, rel, false, 2); srvErr != nil || cliErr != nil {
		t.Fatalf("chunked retry after legacy refusal: server=%v client=%v", srvErr, cliErr)
	}
}

// TestLegacyClientInterop runs the full three-party flow with every client
// pinned to ProtoLegacy against the current server: the one-release
// compatibility window.
func TestLegacyClientInterop(t *testing.T) {
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	relA := relation.GenKeyed(relation.NewRand(21), 8, 5)
	relB := relation.GenKeyed(relation.NewRand(22), 10, 5)
	contract := buildContract(t, "alg5", pA, pB, pC,
		PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"}, 0)
	svc, err := NewService(contract, 8, 17)
	if err != nil {
		t.Fatal(err)
	}
	svc.AllowLegacyUpload = true
	got, err := runService(t, svc, pA, pB, pC, relA, relB, func(c *Client) { c.Legacy = true })
	if err != nil {
		t.Fatal(err)
	}
	eq, _ := relation.NewEqui(relA.Schema, "key", relB.Schema, "key")
	want := relation.ReferenceJoin(relA, relB, eq)
	if got.Len() != want.Len() {
		t.Fatalf("legacy clients: got %d rows, want %d", got.Len(), want.Len())
	}
}

// TestMixedProtocolProviders accepts one legacy and one chunked provider in
// the same execution; both relations land byte-identically and the join
// runs.
func TestMixedProtocolProviders(t *testing.T) {
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	relA := relation.GenKeyed(relation.NewRand(23), 7, 5)
	relB := relation.GenKeyed(relation.NewRand(24), 9, 5)
	contract := buildContract(t, "alg5", pA, pB, pC,
		PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"}, 0)
	svc, err := NewService(contract, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	svc.AllowLegacyUpload = true
	if srvErr, cliErr := uploadOnce(t, svc, pA, contract.ID, relA, true, 0); srvErr != nil || cliErr != nil {
		t.Fatalf("legacy provider: server=%v client=%v", srvErr, cliErr)
	}
	if srvErr, cliErr := uploadOnce(t, svc, pB, contract.ID, relB, false, 3); srvErr != nil || cliErr != nil {
		t.Fatalf("chunked provider: server=%v client=%v", srvErr, cliErr)
	}
	if !svc.UploadsComplete() {
		t.Fatal("uploads not complete after both providers")
	}
	for party, want := range map[string]*relation.Relation{pA.name: relA, pB.name: relB} {
		got := uploadedRows(t, svc, party)
		wantRows, err := want.EncodeAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantRows) {
			t.Fatalf("%s: %d rows landed, want %d", party, len(got), len(wantRows))
		}
		for i := range got {
			if !bytes.Equal(got[i], wantRows[i]) {
				t.Fatalf("%s: row %d differs", party, i)
			}
		}
	}
	out := svc.RunContract()
	if out.Err != nil || out.Algorithm != "alg5" {
		t.Fatalf("mixed-protocol join: %v (%s)", out.Err, out.Algorithm)
	}
}

// uploadedRows returns a committed upload's rows re-encoded via the schema.
func uploadedRows(t *testing.T, svc *Service, party string) [][]byte {
	t.Helper()
	svc.mu.Lock()
	up := svc.uploads[party]
	svc.mu.Unlock()
	if up == nil || up.pending {
		t.Fatalf("no committed upload for %s", party)
	}
	encs, err := up.rel.EncodeAll()
	if err != nil {
		t.Fatal(err)
	}
	return encs
}
