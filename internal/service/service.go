package service

import (
	"bytes"
	"crypto/ecdh"
	"crypto/ed25519"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"ppj/internal/core"
	"ppj/internal/relation"
	"ppj/internal/secop"
	"ppj/internal/sim"
)

// Images returns the code images of the service's boot hierarchy. Clients
// pin their digests (the "known, trusted version" of §3.3.3).
func Images() []secop.CodeImage {
	return []secop.CodeImage{
		{Layer: secop.Miniboot, Name: "ppj-miniboot-1.0", Code: []byte("ppj miniboot")},
		{Layer: secop.OS, Name: "ppj-cpq-1.0", Code: []byte("ppj embedded os")},
		{Layer: secop.App, Name: "ppj-join-1.0", Code: []byte("ppj join application")},
	}
}

// ExpectedStack returns the measurements clients should pin.
func ExpectedStack() secop.ExpectedStack {
	exp := secop.ExpectedStack{}
	for _, img := range Images() {
		exp[img.Layer] = img.Digest()
	}
	return exp
}

// Service is the service provider: device, host, coprocessor, and the
// contract it arbitrates.
type Service struct {
	Device   *secop.Device
	Contract *Contract
	Memory   int
	Seed     uint64

	mu      sync.Mutex
	uploads map[string]*upload
}

type upload struct {
	party  string
	schema *relation.Schema
	rel    *relation.Relation
}

// NewService manufactures and boots a device and binds it to a verified
// contract.
func NewService(contract *Contract, memory int, seed uint64) (*Service, error) {
	if err := contract.Verify(); err != nil {
		return nil, err
	}
	dev, err := secop.NewDevice()
	if err != nil {
		return nil, err
	}
	for _, img := range Images() {
		if err := dev.Load(img); err != nil {
			return nil, err
		}
	}
	return &Service{
		Device:   dev,
		Contract: contract,
		Memory:   memory,
		Seed:     seed,
		uploads:  make(map[string]*upload),
	}, nil
}

// Execute serves one connection per contract party (in any order),
// completes every handshake and upload, runs the contracted join, and
// delivers the result to each recipient. It returns after all sessions
// finish.
func (s *Service) Execute(conns map[string]io.ReadWriter) error {
	providers, recipients := 0, 0
	for _, p := range s.Contract.Parties {
		switch p.Role {
		case RoleProvider:
			providers++
		case RoleRecipient:
			recipients++
		}
	}
	if providers < 2 {
		return fmt.Errorf("service: contract %s has %d providers, need >= 2", s.Contract.ID, providers)
	}
	if recipients < 1 {
		return fmt.Errorf("service: contract %s names no recipient", s.Contract.ID)
	}

	type recipientSession struct {
		name string
		sess *session
	}
	var (
		wg      sync.WaitGroup
		errs    = make(chan error, len(conns))
		recvs   = make(chan recipientSession, recipients)
		uploads = make(chan struct{}, providers)
	)
	for name, conn := range conns {
		wg.Add(1)
		go func(name string, conn io.ReadWriter) {
			defer wg.Done()
			sess, party, err := s.handshake(conn)
			if err != nil {
				errs <- fmt.Errorf("service: session with %s: %w", name, err)
				return
			}
			// The authenticated party identity (not the connection label)
			// decides where the data belongs.
			switch party.Role {
			case RoleProvider:
				if err := s.receiveUpload(party.Name, sess); err != nil {
					errs <- fmt.Errorf("service: upload from %s: %w", party.Name, err)
					return
				}
				uploads <- struct{}{}
			case RoleRecipient:
				recvs <- recipientSession{name: party.Name, sess: sess}
			}
		}(name, conn)
	}

	// Wait for every provider's data.
	for i := 0; i < providers; i++ {
		select {
		case <-uploads:
		case err := <-errs:
			return err
		}
	}
	var (
		rows    [][]byte
		schema  *relation.Schema
		padded  bool
		aggCell []byte
		joinErr error
	)
	if s.Contract.Algorithm == "aggregate" {
		aggCell, joinErr = s.runAggregate()
	} else {
		rows, schema, padded, joinErr = s.runJoin()
	}

	// Deliver to recipients (or report the failure).
	for i := 0; i < recipients; i++ {
		var rs recipientSession
		select {
		case rs = <-recvs:
		case err := <-errs:
			return err
		}
		msg := resultMsg{ContractID: s.Contract.ID, Padded: padded}
		switch {
		case joinErr != nil:
			msg.Err = joinErr.Error()
		case aggCell != nil:
			msg.Agg = rs.sess.sealer.seal(aggCell)
		default:
			msg.Schema = toWire(schema)
			sealed := make([][]byte, len(rows))
			for j, r := range rows {
				sealed[j] = rs.sess.sealer.seal(r)
			}
			msg.Rows = sealed
		}
		if err := rs.sess.enc.Encode(msg); err != nil {
			return fmt.Errorf("service: delivering to %s: %w", rs.name, err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return joinErr
}

// handshake authenticates the device to the client and the client to the
// contract, deriving the session sealer. It returns the authenticated
// contract party.
func (s *Service) handshake(conn io.ReadWriter) (*session, Party, error) {
	sess := newSession(conn)
	var hello helloMsg
	if err := sess.dec.Decode(&hello); err != nil {
		return nil, Party{}, fmt.Errorf("reading hello: %w", err)
	}
	idx := s.Contract.PartyIndex(hello.Party)
	if idx < 0 {
		return nil, Party{}, fmt.Errorf("party %q not in contract %s", hello.Party, s.Contract.ID)
	}
	party := s.Contract.Parties[idx]
	if party.Role != hello.Role {
		return nil, Party{}, fmt.Errorf("party %q claims role %s, contract says %s", hello.Party, hello.Role, party.Role)
	}

	att, err := s.Device.Attest(hello.Challenge)
	if err != nil {
		return nil, Party{}, err
	}
	var attBuf bytes.Buffer
	if err := gob.NewEncoder(&attBuf).Encode(att); err != nil {
		return nil, Party{}, err
	}
	eph, err := newECDHKey()
	if err != nil {
		return nil, Party{}, err
	}
	sig, err := s.Device.AppSign(append(append([]byte(nil), hello.Challenge...), eph.PublicKey().Bytes()...))
	if err != nil {
		return nil, Party{}, err
	}
	if err := sess.enc.Encode(serverAuthMsg{
		AttChainGob: attBuf.Bytes(),
		ECDHPub:     eph.PublicKey().Bytes(),
		Sig:         sig,
	}); err != nil {
		return nil, Party{}, err
	}

	var ck clientKeyMsg
	if err := sess.dec.Decode(&ck); err != nil {
		return nil, Party{}, fmt.Errorf("reading client key: %w", err)
	}
	transcript := append(append([]byte(nil), eph.PublicKey().Bytes()...), ck.ECDHPub...)
	if !ed25519.Verify(party.Identity, transcript, ck.Sig) {
		return nil, Party{}, fmt.Errorf("party %q failed identity authentication", hello.Party)
	}
	clientPub, err := ecdh.X25519().NewPublicKey(ck.ECDHPub)
	if err != nil {
		return nil, Party{}, err
	}
	shared, err := eph.ECDH(clientPub)
	if err != nil {
		return nil, Party{}, err
	}
	key := deriveSessionKey(shared, eph.PublicKey().Bytes(), ck.ECDHPub)
	// Directions: client seals with 'c', server with 's'.
	open, err := newSessionSealer(key, 'c')
	if err != nil {
		return nil, Party{}, err
	}
	sealDir, err := newSessionSealer(key, 's')
	if err != nil {
		return nil, Party{}, err
	}
	sess.sealer = sealDir
	sess.opener = open
	return sess, party, nil
}

// receiveUpload ingests a provider's relation: every row is opened with the
// session key inside T, checked for the contract binding, and retained for
// the join.
func (s *Service) receiveUpload(party string, sess *session) error {
	var msg dataMsg
	if err := sess.dec.Decode(&msg); err != nil {
		return err
	}
	if msg.ContractID != s.Contract.ID {
		return fmt.Errorf("upload for foreign contract %q", msg.ContractID)
	}
	schema, err := msg.Schema.schema()
	if err != nil {
		return err
	}
	rel := relation.NewRelation(schema)
	prefix := []byte(s.Contract.ID)
	for i, ct := range msg.Rows {
		pt, err := sess.opener.open(ct)
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		if len(pt) < len(prefix) || !bytes.Equal(pt[:len(prefix)], prefix) {
			return fmt.Errorf("row %d not bound to contract", i)
		}
		row, err := schema.Decode(pt[len(prefix):])
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		if err := rel.Append(row); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.uploads[party]; dup {
		return fmt.Errorf("party %q uploaded twice", party)
	}
	s.uploads[party] = &upload{party: party, schema: schema, rel: rel}
	return nil
}

// runJoin executes the contracted algorithm over the uploaded relations,
// returning oTuple cells (flag byte + payload).
func (s *Service) runJoin() (rows [][]byte, schema *relation.Schema, padded bool, err error) {
	s.mu.Lock()
	var rels []*relation.Relation
	var names []string
	for _, p := range s.Contract.Parties {
		if p.Role != RoleProvider {
			continue
		}
		up, ok := s.uploads[p.Name]
		if !ok {
			s.mu.Unlock()
			return nil, nil, false, fmt.Errorf("service: provider %s never uploaded", p.Name)
		}
		rels = append(rels, up.rel)
		names = append(names, p.Name)
	}
	s.mu.Unlock()

	host := sim.NewHost(0)
	cop, err := sim.NewCoprocessor(host, sim.Config{Memory: s.Memory, Seed: s.Seed})
	if err != nil {
		return nil, nil, false, err
	}
	tabs := make([]sim.Table, len(rels))
	for i, rel := range rels {
		tabs[i], err = sim.LoadTable(host, cop.Sealer(), names[i], rel)
		if err != nil {
			return nil, nil, false, err
		}
	}

	var res core.Result
	switch s.Contract.Algorithm {
	case "alg1", "alg2", "alg3":
		if len(rels) != 2 {
			return nil, nil, false, fmt.Errorf("service: %s requires exactly 2 providers", s.Contract.Algorithm)
		}
		pred, err := s.Contract.Predicate.Build(rels[0].Schema, rels[1].Schema)
		if err != nil {
			return nil, nil, false, err
		}
		n := int64(relation.MaxMatches(rels[0], rels[1], pred))
		if n == 0 {
			n = 1
		}
		switch s.Contract.Algorithm {
		case "alg1":
			res, err = core.Join1(cop, tabs[0], tabs[1], pred, n)
		case "alg2":
			res, err = core.Join2(cop, tabs[0], tabs[1], pred, n, 0)
		case "alg3":
			eq, ok := pred.(*relation.Equi)
			if !ok {
				return nil, nil, false, errors.New("service: alg3 requires an equi predicate")
			}
			res, err = core.Join3(cop, tabs[0], tabs[1], eq, n, false)
		}
		if err != nil {
			return nil, nil, false, err
		}
		padded = true
	case "alg4", "alg5", "alg6":
		pred, err := s.multiPredicate(rels)
		if err != nil {
			return nil, nil, false, err
		}
		switch s.Contract.Algorithm {
		case "alg4":
			res, err = core.Join4(cop, tabs, pred)
		case "alg5":
			res, err = core.Join5(cop, tabs, pred)
		case "alg6":
			var rep core.Join6Report
			rep, err = core.Join6(cop, tabs, pred, s.Contract.Epsilon)
			res = rep.Result
		}
		if err != nil {
			return nil, nil, false, err
		}
		padded = false
	default:
		return nil, nil, false, fmt.Errorf("service: unknown algorithm %q", s.Contract.Algorithm)
	}

	// Re-open the output cells inside T for recipient re-encryption.
	out := make([][]byte, 0, res.OutputLen)
	for i := int64(0); i < res.OutputLen; i++ {
		ct := host.Inspect(res.Output.Region, i)
		cell, err := cop.Sealer().Open(ct)
		if err != nil {
			return nil, nil, false, err
		}
		out = append(out, cell)
	}
	return out, res.Output.Schema, padded, nil
}

// runAggregate executes an "aggregate" contract: the statistic is computed
// in one pass inside T and only the 17-byte result cell leaves it.
func (s *Service) runAggregate() ([]byte, error) {
	s.mu.Lock()
	var rels []*relation.Relation
	var names []string
	for _, p := range s.Contract.Parties {
		if p.Role != RoleProvider {
			continue
		}
		up, ok := s.uploads[p.Name]
		if !ok {
			s.mu.Unlock()
			return nil, fmt.Errorf("service: provider %s never uploaded", p.Name)
		}
		rels = append(rels, up.rel)
		names = append(names, p.Name)
	}
	s.mu.Unlock()

	spec, err := s.aggSpec()
	if err != nil {
		return nil, err
	}
	pred, err := s.multiPredicate(rels)
	if err != nil {
		return nil, err
	}
	host := sim.NewHost(0)
	cop, err := sim.NewCoprocessor(host, sim.Config{Memory: s.Memory, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	tabs := make([]sim.Table, len(rels))
	for i, rel := range rels {
		tabs[i], err = sim.LoadTable(host, cop.Sealer(), names[i], rel)
		if err != nil {
			return nil, err
		}
	}
	res, err := core.Aggregate(cop, tabs, pred, spec)
	if err != nil {
		return nil, err
	}
	return encodeAggCell(res), nil
}

// aggSpec resolves the contract's aggregate description.
func (s *Service) aggSpec() (core.AggSpec, error) {
	var kind core.AggKind
	switch s.Contract.Aggregate.Kind {
	case "count":
		kind = core.AggCount
	case "sum":
		kind = core.AggSum
	case "min":
		kind = core.AggMin
	case "max":
		kind = core.AggMax
	case "avg":
		kind = core.AggAvg
	default:
		return core.AggSpec{}, fmt.Errorf("service: unknown aggregate kind %q", s.Contract.Aggregate.Kind)
	}
	return core.AggSpec{Kind: kind, Table: s.Contract.Aggregate.Table, Attr: s.Contract.Aggregate.Attr}, nil
}

// multiPredicate lifts the contract predicate to J tables: pairwise for two
// providers; for more, an all-equal equijoin on AttrA across every table.
func (s *Service) multiPredicate(rels []*relation.Relation) (relation.MultiPredicate, error) {
	if len(rels) == 2 {
		pred, err := s.Contract.Predicate.Build(rels[0].Schema, rels[1].Schema)
		if err != nil {
			return nil, err
		}
		return relation.Pairwise(pred), nil
	}
	if s.Contract.Predicate.Kind != "equi" {
		return nil, fmt.Errorf("service: %d-way joins support only equi predicates", len(rels))
	}
	idx := make([]int, len(rels))
	for i, rel := range rels {
		idx[i] = rel.Schema.Index(s.Contract.Predicate.AttrA)
		if idx[i] < 0 {
			return nil, fmt.Errorf("service: relation %d lacks attribute %q", i, s.Contract.Predicate.AttrA)
		}
	}
	return relation.MultiPredicateFunc{
		Fn: func(ts []relation.Tuple) bool {
			for i := 1; i < len(ts); i++ {
				if ts[i][idx[i]].I != ts[0][idx[0]].I {
					return false
				}
			}
			return true
		},
		Desc: fmt.Sprintf("all %s equal", s.Contract.Predicate.AttrA),
	}, nil
}
