package service

import (
	"bytes"
	"context"
	"crypto/ecdh"
	"crypto/ed25519"
	cryptorand "crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"ppj/internal/core"
	"ppj/internal/query"
	"ppj/internal/relation"
	"ppj/internal/secop"
	"ppj/internal/sim"
)

// Images returns the code images of the service's boot hierarchy. Clients
// pin their digests (the "known, trusted version" of §3.3.3).
func Images() []secop.CodeImage {
	return []secop.CodeImage{
		{Layer: secop.Miniboot, Name: "ppj-miniboot-1.0", Code: []byte("ppj miniboot")},
		{Layer: secop.OS, Name: "ppj-cpq-1.0", Code: []byte("ppj embedded os")},
		{Layer: secop.App, Name: "ppj-join-1.0", Code: []byte("ppj join application")},
	}
}

// ExpectedStack returns the measurements clients should pin.
func ExpectedStack() secop.ExpectedStack {
	exp := secop.ExpectedStack{}
	for _, img := range Images() {
		exp[img.Layer] = img.Digest()
	}
	return exp
}

// BootDevice manufactures a device and loads the service's boot hierarchy.
// A multi-tenant server boots one device and binds many contracts to it via
// NewServiceWithDevice.
func BootDevice() (*secop.Device, error) {
	dev, err := secop.NewDevice()
	if err != nil {
		return nil, err
	}
	for _, img := range Images() {
		if err := dev.Load(img); err != nil {
			return nil, err
		}
	}
	return dev, nil
}

// Service is the service provider: device, host, coprocessor, and the
// contract it arbitrates. A Service holds the state of one execution of its
// contract (the uploads map); run each contract instance on a fresh Service.
type Service struct {
	Device   *secop.Device
	Contract *Contract
	Memory   int
	// Seed pins T's internal randomness for reproducible tests. Zero (the
	// production setting) draws a fresh seed from crypto/rand for every
	// execution, so two jobs never replay the same MLFSR traversal or decoy
	// placement.
	Seed uint64
	// Devices is the number of coprocessors to attach to an execution's
	// host. Values above 1 dispatch to the parallel variants (ParallelJoin2/
	// 3/4/5, ParallelSort-backed) when the chosen algorithm admits them; the
	// fleet shares one sealer, and each device keeps its own seed, trace and
	// stats. Zero or 1 means sequential execution.
	Devices int
	// MaxUploadBytes bounds one provider upload's total sealed payload
	// bytes; an upload exceeding it fails with ErrUploadTooLarge before the
	// excess is opened. Zero means unbounded.
	MaxUploadBytes int64
	// UploadWindow is the credit window W granted to ProtoChunked uploaders:
	// at most W unacknowledged chunks in flight per connection, so ingest
	// memory per connection is bounded by W x chunk bytes. Zero selects
	// DefaultUploadWindow.
	UploadWindow int
	// AllowLegacyUpload re-enables the deprecated ProtoLegacy one-shot
	// dataMsg upload. Off (the default), a legacy session's upload is
	// refused with ErrLegacyUploadDisabled before any ciphertext is read.
	AllowLegacyUpload bool
	// SortCache, when set, lets sort-based joins (alg7) reuse the
	// obliviously-sorted form of an unchanged upload across executions of
	// the same contract. Keys bind the contract, side, public size, and an
	// upload content digest computed inside the seal boundary; see
	// core.SortedCache. Nil (the default) disables reuse.
	SortCache core.SortedCache

	mu      sync.Mutex
	uploads map[string]*upload

	// chunkConsumeHook, when set (tests only), runs before each chunk is
	// validated and opened — the backpressure suite uses it to slow the
	// consumer and observe the credit window holding.
	chunkConsumeHook func(seq int)
}

// upload is one provider's slot in the service. The slot is reserved
// (pending=true) before any ciphertext is read, so two concurrent uploads
// for the same party can never both run a decrypt pass; it is released on
// error and committed with the relation on success.
type upload struct {
	party   string
	pending bool
	schema  *relation.Schema
	rel     *relation.Relation
}

// NewService manufactures and boots a device and binds it to a verified
// contract.
func NewService(contract *Contract, memory int, seed uint64) (*Service, error) {
	dev, err := BootDevice()
	if err != nil {
		return nil, err
	}
	return NewServiceWithDevice(dev, contract, memory, seed)
}

// NewServiceWithDevice binds a verified contract to an already-booted
// device. Used by the multi-tenant server, whose single attested device
// arbitrates every registered contract.
func NewServiceWithDevice(dev *secop.Device, contract *Contract, memory int, seed uint64) (*Service, error) {
	if err := contract.Verify(); err != nil {
		return nil, err
	}
	return &Service{
		Device:   dev,
		Contract: contract,
		Memory:   memory,
		Seed:     seed,
		uploads:  make(map[string]*upload),
	}, nil
}

// CountRoles tallies the contract's providers and recipients.
func (c *Contract) CountRoles() (providers, recipients int) {
	for _, p := range c.Parties {
		switch p.Role {
		case RoleProvider:
			providers++
		case RoleRecipient:
			recipients++
		}
	}
	return providers, recipients
}

// CheckRoles validates that the contract names enough parties to execute.
func (c *Contract) CheckRoles() error {
	providers, recipients := c.CountRoles()
	if providers < 2 {
		return fmt.Errorf("service: contract %s has %d providers, need >= 2", c.ID, providers)
	}
	if recipients < 1 {
		return fmt.Errorf("service: contract %s names no recipient", c.ID)
	}
	return nil
}

// Execute serves one connection per contract party (in any order),
// completes every handshake and upload, runs the contracted join, and
// delivers the result to each recipient. It returns after all sessions
// finish.
func (s *Service) Execute(conns map[string]io.ReadWriter) error {
	if err := s.Contract.CheckRoles(); err != nil {
		return err
	}
	providers, recipients := s.Contract.CountRoles()

	type recipientSession struct {
		name string
		sess *Session
	}
	var (
		wg      sync.WaitGroup
		errs    = make(chan error, len(conns))
		recvs   = make(chan recipientSession, recipients)
		uploads = make(chan struct{}, providers)
	)
	for name, conn := range conns {
		wg.Add(1)
		go func(name string, conn io.ReadWriter) {
			defer wg.Done()
			sess, party, err := s.handshake(conn)
			if err != nil {
				errs <- fmt.Errorf("service: session with %s: %w", name, err)
				return
			}
			// The authenticated party identity (not the connection label)
			// decides where the data belongs.
			switch party.Role {
			case RoleProvider:
				if err := s.ReceiveUpload(party.Name, sess); err != nil {
					errs <- fmt.Errorf("service: upload from %s: %w", party.Name, err)
					return
				}
				uploads <- struct{}{}
			case RoleRecipient:
				recvs <- recipientSession{name: party.Name, sess: sess}
			}
		}(name, conn)
	}

	// Wait for every provider's data.
	for i := 0; i < providers; i++ {
		select {
		case <-uploads:
		case err := <-errs:
			return err
		}
	}
	out := s.RunContract()

	// Deliver to recipients (or report the failure).
	for i := 0; i < recipients; i++ {
		var rs recipientSession
		select {
		case rs = <-recvs:
		case err := <-errs:
			return err
		}
		if err := s.Deliver(rs.sess, out); err != nil {
			return fmt.Errorf("service: delivering to %s: %w", rs.name, err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return out.Err
}

// handshake reads the hello and completes the handshake against this
// service's contract (single-contract listeners; the multi-tenant server
// uses ReadHello + Handshake to route first).
func (s *Service) handshake(conn io.ReadWriter) (*Session, Party, error) {
	sess, hello, err := ReadHello(conn)
	if err != nil {
		return nil, Party{}, err
	}
	party, err := s.Handshake(sess, hello)
	if err != nil {
		return nil, Party{}, err
	}
	return sess, party, nil
}

// Handshake authenticates the device to the client and the client to the
// contract, deriving the session sealer. It returns the authenticated
// contract party. The hello must already have been read (ReadHello), so a
// multi-contract listener can route on Hello.ContractID before committing
// to a contract.
func (s *Service) Handshake(sess *Session, hello Hello) (Party, error) {
	if hello.ContractID != "" && hello.ContractID != s.Contract.ID {
		return Party{}, fmt.Errorf("hello for foreign contract %q, serving %s", hello.ContractID, s.Contract.ID)
	}
	idx := s.Contract.PartyIndex(hello.Party)
	if idx < 0 {
		return Party{}, fmt.Errorf("party %q not in contract %s", hello.Party, s.Contract.ID)
	}
	party := s.Contract.Parties[idx]
	if party.Role != hello.Role {
		return Party{}, fmt.Errorf("party %q claims role %s, contract says %s", hello.Party, hello.Role, party.Role)
	}

	att, err := s.Device.Attest(hello.Challenge)
	if err != nil {
		return Party{}, err
	}
	var attBuf bytes.Buffer
	if err := gob.NewEncoder(&attBuf).Encode(att); err != nil {
		return Party{}, err
	}
	eph, err := newECDHKey()
	if err != nil {
		return Party{}, err
	}
	sig, err := s.Device.AppSign(append(append([]byte(nil), hello.Challenge...), eph.PublicKey().Bytes()...))
	if err != nil {
		return Party{}, err
	}
	if err := sess.enc.Encode(serverAuthMsg{
		AttChainGob: attBuf.Bytes(),
		ECDHPub:     eph.PublicKey().Bytes(),
		Sig:         sig,
	}); err != nil {
		return Party{}, err
	}

	var ck clientKeyMsg
	if err := sess.dec.Decode(&ck); err != nil {
		return Party{}, fmt.Errorf("reading client key: %w", err)
	}
	transcript := append(append([]byte(nil), eph.PublicKey().Bytes()...), ck.ECDHPub...)
	if !ed25519.Verify(party.Identity, transcript, ck.Sig) {
		return Party{}, fmt.Errorf("party %q failed identity authentication", hello.Party)
	}
	clientPub, err := ecdh.X25519().NewPublicKey(ck.ECDHPub)
	if err != nil {
		return Party{}, err
	}
	shared, err := eph.ECDH(clientPub)
	if err != nil {
		return Party{}, err
	}
	key := deriveSessionKey(shared, eph.PublicKey().Bytes(), ck.ECDHPub)
	// Directions: client seals with 'c', server with 's'.
	open, err := newSessionSealer(key, 'c')
	if err != nil {
		return Party{}, err
	}
	sealDir, err := newSessionSealer(key, 's')
	if err != nil {
		return Party{}, err
	}
	sess.sealer = sealDir
	sess.opener = open
	return party, nil
}

// ReceiveUpload ingests a provider's relation: every row is opened with the
// session key inside T, checked for the contract binding, and retained for
// the join. The party's upload slot is reserved before any ciphertext is
// read — a duplicate or concurrent second upload fails immediately and can
// never burn a decrypt pass — and released again if the upload errors, so a
// provider whose stream broke may reconnect and retry. The session's
// negotiated protocol version selects the chunked incremental consumer or
// the legacy one-shot path; both funnel through the same row-validation
// core.
func (s *Service) ReceiveUpload(party string, sess *Session) error {
	return s.ReceiveUploadCtx(context.Background(), party, sess)
}

// ReceiveUploadCtx is ReceiveUpload under a context: a chunked stream that
// is still incomplete when ctx expires is abandoned with ErrUploadTruncated
// (the serving layer derives ctx from the job deadline and the configured
// upload deadline).
func (s *Service) ReceiveUploadCtx(ctx context.Context, party string, sess *Session) error {
	if sess.proto < ProtoChunked && !s.AllowLegacyUpload {
		return ErrLegacyUploadDisabled
	}
	if err := s.reserveUpload(party); err != nil {
		return err
	}
	var (
		rel *relation.Relation
		err error
	)
	if sess.proto >= ProtoChunked {
		rel, err = s.receiveChunked(ctx, sess)
	} else {
		rel, err = s.receiveLegacy(sess)
	}
	if err != nil {
		s.releaseUpload(party)
		return err
	}
	s.commitUpload(party, rel)
	return nil
}

// reserveUpload claims a party's upload slot before any ciphertext is read.
func (s *Service) reserveUpload(party string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.uploads[party]; dup {
		return fmt.Errorf("party %q uploaded twice", party)
	}
	s.uploads[party] = &upload{party: party, pending: true}
	return nil
}

// releaseUpload frees a reservation whose upload failed, so the party can
// retry. Committed uploads are never released.
func (s *Service) releaseUpload(party string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if up, ok := s.uploads[party]; ok && up.pending {
		delete(s.uploads, party)
	}
}

// commitUpload publishes a completed upload under its reservation.
func (s *Service) commitUpload(party string, rel *relation.Relation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.uploads[party] = &upload{party: party, schema: rel.Schema, rel: rel}
}

// UploadsComplete reports whether every provider's relation has arrived
// (reservations still streaming don't count).
func (s *Service) UploadsComplete() bool {
	providers, _ := s.Contract.CountRoles()
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, up := range s.uploads {
		if !up.pending {
			n++
		}
	}
	return n >= providers
}

// Outcome is the computed result of a contract execution, ready to be
// sealed per recipient session by Deliver. Err carries a join failure that
// is reported to recipients rather than silently dropped.
type Outcome struct {
	Rows   [][]byte
	Schema *relation.Schema
	Padded bool
	Agg    []byte
	// Algorithm is the algorithm actually run ("alg1".."alg7" or
	// "aggregate") — for "auto" contracts, the planner's choice.
	Algorithm string
	// Devices is the number of coprocessors the execution actually used
	// (1 for sequential runs and algorithms without a parallel variant).
	Devices int
	// Stats are T's cost counters for this execution, summed across devices.
	Stats sim.Stats
	// CacheHits and CacheMisses count the sides of this join that consulted
	// the sorted-relation cache and were restored (hit) or sorted cold and
	// offered back (miss). Both zero when no cache participated.
	CacheHits   int
	CacheMisses int
	Err         error
}

// RunContract executes the contracted computation over the received
// uploads. Failures are recorded in Outcome.Err (delivery still happens so
// recipients learn of the failure).
func (s *Service) RunContract() Outcome {
	if s.Contract.Algorithm == "aggregate" {
		agg, stats, err := s.runAggregate()
		return Outcome{Agg: agg, Algorithm: "aggregate", Devices: 1, Stats: stats, Err: err}
	}
	rows, schema, padded, alg, devices, stats, use, err := s.runJoin()
	return Outcome{
		Rows: rows, Schema: schema, Padded: padded, Algorithm: alg,
		Devices: devices, Stats: stats,
		CacheHits: use.Hits(), CacheMisses: use.Misses(),
		Err: err,
	}
}

// Deliver seals an outcome under a recipient session and sends it, using
// the session's negotiated protocol: the resumable chunk stream for
// ProtoStreamedResult sessions (from offset 0), the one-shot resultMsg
// otherwise.
func (s *Service) Deliver(sess *Session, out Outcome) error {
	if sess.proto >= ProtoStreamedResult {
		return s.DeliverStream(sess, out, 0)
	}
	return s.deliverOneShot(sess, out)
}

// deliverOneShot is the pre-v2 delivery: the whole sealed result in one
// resultMsg.
func (s *Service) deliverOneShot(sess *Session, out Outcome) error {
	msg := resultMsg{ContractID: s.Contract.ID, Padded: out.Padded}
	switch {
	case out.Err != nil:
		msg.Err = out.Err.Error()
	case out.Agg != nil:
		msg.Agg = sess.sealer.seal(out.Agg)
	default:
		msg.Schema = toWire(out.Schema)
		sealed := make([][]byte, len(out.Rows))
		for j, r := range out.Rows {
			sealed[j] = sess.sealer.seal(r)
		}
		msg.Rows = sealed
	}
	return sess.enc.Encode(msg)
}

// execSeed resolves the seed for one contract execution: the pinned seed
// when set (tests), otherwise fresh crypto/rand entropy so concurrent jobs
// never share shuffle or decoy randomness.
func (s *Service) execSeed() (uint64, error) {
	if s.Seed != 0 {
		return s.Seed, nil
	}
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("service: drawing execution seed: %w", err)
	}
	seed := binary.BigEndian.Uint64(b[:])
	if seed == 0 {
		seed = 1 // zero would re-trigger "pick for me" downstream
	}
	return seed, nil
}

// gatherUploads collects the providers' relations in contract order.
func (s *Service) gatherUploads() ([]*relation.Relation, []string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rels []*relation.Relation
	var names []string
	for _, p := range s.Contract.Parties {
		if p.Role != RoleProvider {
			continue
		}
		up, ok := s.uploads[p.Name]
		if !ok || up.pending {
			return nil, nil, fmt.Errorf("service: provider %s never uploaded", p.Name)
		}
		rels = append(rels, up.rel)
		names = append(names, p.Name)
	}
	return rels, names, nil
}

// planAlgorithm resolves an "auto" contract: the query planner's §4.6/§5.3.4
// analysis picks the cheapest admissible algorithm for the uploaded
// relations.
func (s *Service) planAlgorithm(rels []*relation.Relation) (query.Plan, error) {
	mem := int64(s.Memory)
	if mem <= 0 {
		mem = 1 << 40 // the simulator's "effectively unbounded" convention
	}
	q := query.Query{Epsilon: s.Contract.Epsilon}
	if len(rels) == 2 {
		pred, err := s.Contract.Predicate.Build(rels[0].Schema, rels[1].Schema)
		if err != nil {
			return query.Plan{}, err
		}
		q.Predicate = pred
	} else {
		mp, err := s.multiPredicate(rels)
		if err != nil {
			return query.Plan{}, err
		}
		q.Multi = mp
	}
	return query.Planner{Memory: mem}.Plan(q, rels)
}

// algorithmNumber maps a contract algorithm name to its chapter number (0
// when unknown), for the planner's device-count rule.
func algorithmNumber(alg string) int {
	if len(alg) == 4 && alg[:3] == "alg" && alg[3] >= '1' && alg[3] <= '7' {
		return int(alg[3] - '0')
	}
	return 0
}

// runJoin executes the contracted algorithm over the uploaded relations,
// returning oTuple cells (flag byte + payload), the algorithm actually run,
// the device count used, and T's cost counters summed across devices.
func (s *Service) runJoin() (rows [][]byte, schema *relation.Schema, padded bool, alg string, devices int, stats sim.Stats, use core.CacheUse, err error) {
	rels, names, err := s.gatherUploads()
	if err != nil {
		return nil, nil, false, "", 1, sim.Stats{}, use, err
	}

	alg = s.Contract.Algorithm
	if alg == "auto" {
		plan, perr := s.planAlgorithm(rels)
		if perr != nil {
			return nil, nil, false, "", 1, sim.Stats{}, use, perr
		}
		alg = plan.AlgorithmName()
	}
	// How many of the configured devices the algorithm can exploit.
	devices = query.Plan{Algorithm: algorithmNumber(alg)}.Devices(s.Devices)

	seed, err := s.execSeed()
	if err != nil {
		return nil, nil, false, alg, devices, sim.Stats{}, use, err
	}
	host := sim.NewHost(0)
	cop, err := sim.NewCoprocessor(host, sim.Config{Memory: s.Memory, Seed: seed})
	if err != nil {
		return nil, nil, false, alg, devices, sim.Stats{}, use, err
	}
	// The fleet shares device 0's sealer (parallel variants re-encrypt cells
	// for each other) while every device keeps its own derived seed, trace
	// and stats.
	cops := make([]*sim.Coprocessor, devices)
	cops[0] = cop
	for i := 1; i < devices; i++ {
		dseed := seed + uint64(i)*0x9e3779b97f4a7c15
		if dseed == 0 {
			dseed = 1
		}
		cops[i], err = sim.NewCoprocessor(host, sim.Config{Memory: s.Memory, Sealer: cop.Sealer(), Seed: dseed})
		if err != nil {
			return nil, nil, false, alg, devices, sim.Stats{}, use, err
		}
	}
	tabs := make([]sim.Table, len(rels))
	for i, rel := range rels {
		tabs[i], err = sim.LoadTable(host, cop.Sealer(), names[i], rel)
		if err != nil {
			return nil, nil, false, alg, devices, sim.Stats{}, use, err
		}
	}

	fleetStats := func() sim.Stats {
		var st sim.Stats
		for _, c := range cops {
			st.Add(c.Stats())
		}
		return st
	}
	fail := func(ferr error) ([][]byte, *relation.Schema, bool, string, int, sim.Stats, core.CacheUse, error) {
		return nil, nil, false, alg, devices, fleetStats(), use, ferr
	}

	var res core.Result
	switch alg {
	case "alg1", "alg2", "alg3":
		if len(rels) != 2 {
			return fail(fmt.Errorf("service: %s requires exactly 2 providers", alg))
		}
		pred, err := s.Contract.Predicate.Build(rels[0].Schema, rels[1].Schema)
		if err != nil {
			return fail(err)
		}
		n := int64(relation.MaxMatches(rels[0], rels[1], pred))
		if n == 0 {
			n = 1
		}
		switch alg {
		case "alg1":
			res, err = core.Join1(cop, tabs[0], tabs[1], pred, n)
		case "alg2":
			if devices > 1 {
				res, err = core.ParallelJoin2(cops, tabs[0], tabs[1], pred, n, 0)
			} else {
				res, err = core.Join2(cop, tabs[0], tabs[1], pred, n, 0)
			}
		case "alg3":
			eq, ok := pred.(*relation.Equi)
			if !ok {
				return fail(errors.New("service: alg3 requires an equi predicate"))
			}
			if devices > 1 {
				res, err = core.ParallelJoin3(cops, tabs[0], tabs[1], eq, n, false)
			} else {
				res, err = core.Join3(cop, tabs[0], tabs[1], eq, n, false)
			}
		}
		if err != nil {
			return fail(err)
		}
		padded = true
	case "alg4", "alg5", "alg6":
		pred, err := s.multiPredicate(rels)
		if err != nil {
			return fail(err)
		}
		switch alg {
		case "alg4":
			if devices > 1 {
				res, err = core.ParallelJoin4(cops, tabs, pred)
			} else {
				res, err = core.Join4(cop, tabs, pred)
			}
		case "alg5":
			if devices > 1 {
				res, err = core.ParallelJoin5(cops, tabs, pred)
			} else {
				res, err = core.Join5(cop, tabs, pred)
			}
		case "alg6":
			var rep core.Join6Report
			rep, err = core.Join6(cop, tabs, pred, s.Contract.Epsilon)
			res = rep.Result
		}
		if err != nil {
			return fail(err)
		}
		padded = false
	case "alg7":
		if len(rels) != 2 {
			return fail(fmt.Errorf("service: %s requires exactly 2 providers", alg))
		}
		pred, err := s.Contract.Predicate.Build(rels[0].Schema, rels[1].Schema)
		if err != nil {
			return fail(err)
		}
		eq, ok := pred.(*relation.Equi)
		if !ok {
			return fail(errors.New("service: alg7 requires an equi predicate"))
		}
		if s.SortCache != nil {
			keyA, kerr := sortCacheKey(s.Contract.ID, "A", rels[0])
			if kerr != nil {
				return fail(kerr)
			}
			keyB, kerr := sortCacheKey(s.Contract.ID, "B", rels[1])
			if kerr != nil {
				return fail(kerr)
			}
			if devices > 1 {
				res, use, err = core.ParallelJoin7Cached(cops, tabs[0], tabs[1], eq, s.SortCache, keyA, keyB)
			} else {
				res, use, err = core.Join7Cached(cop, tabs[0], tabs[1], eq, s.SortCache, keyA, keyB)
			}
		} else if devices > 1 {
			res, err = core.ParallelJoin7(cops, tabs[0], tabs[1], eq)
		} else {
			res, err = core.Join7(cop, tabs[0], tabs[1], eq)
		}
		if err != nil {
			return fail(err)
		}
		padded = false
	default:
		return fail(fmt.Errorf("service: unknown algorithm %q", alg))
	}

	// Re-open the output cells inside T for recipient re-encryption.
	out := make([][]byte, 0, res.OutputLen)
	for i := int64(0); i < res.OutputLen; i++ {
		ct := host.Inspect(res.Output.Region, i)
		cell, err := cop.Sealer().Open(ct)
		if err != nil {
			return fail(err)
		}
		out = append(out, cell)
	}
	return out, res.Output.Schema, padded, alg, devices, res.Stats, use, nil
}

// sortCacheKey derives the sorted-relation cache key for one side of an
// alg7 join: contract, side, public row count, and a digest of the
// decrypted upload bytes. The digest is computed here — inside the seal
// boundary the Service models — so the host only ever observes whether two
// sealed uploads of the same contract hashed equal, never the bytes.
func sortCacheKey(contractID, side string, rel *relation.Relation) (string, error) {
	rows, err := rel.EncodeAll()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	for _, row := range rows {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(row)))
		h.Write(n[:])
		h.Write(row)
	}
	return fmt.Sprintf("%s|%s|%d|%x", contractID, side, rel.Len(), h.Sum(nil)), nil
}

// runAggregate executes an "aggregate" contract: the statistic is computed
// in one pass inside T and only the 17-byte result cell leaves it.
func (s *Service) runAggregate() ([]byte, sim.Stats, error) {
	rels, names, err := s.gatherUploads()
	if err != nil {
		return nil, sim.Stats{}, err
	}

	spec, err := s.aggSpec()
	if err != nil {
		return nil, sim.Stats{}, err
	}
	pred, err := s.multiPredicate(rels)
	if err != nil {
		return nil, sim.Stats{}, err
	}
	seed, err := s.execSeed()
	if err != nil {
		return nil, sim.Stats{}, err
	}
	host := sim.NewHost(0)
	cop, err := sim.NewCoprocessor(host, sim.Config{Memory: s.Memory, Seed: seed})
	if err != nil {
		return nil, sim.Stats{}, err
	}
	tabs := make([]sim.Table, len(rels))
	for i, rel := range rels {
		tabs[i], err = sim.LoadTable(host, cop.Sealer(), names[i], rel)
		if err != nil {
			return nil, cop.Stats(), err
		}
	}
	res, err := core.Aggregate(cop, tabs, pred, spec)
	if err != nil {
		return nil, cop.Stats(), err
	}
	return encodeAggCell(res), cop.Stats(), nil
}

// aggSpec resolves the contract's aggregate description.
func (s *Service) aggSpec() (core.AggSpec, error) {
	var kind core.AggKind
	switch s.Contract.Aggregate.Kind {
	case "count":
		kind = core.AggCount
	case "sum":
		kind = core.AggSum
	case "min":
		kind = core.AggMin
	case "max":
		kind = core.AggMax
	case "avg":
		kind = core.AggAvg
	default:
		return core.AggSpec{}, fmt.Errorf("service: unknown aggregate kind %q", s.Contract.Aggregate.Kind)
	}
	return core.AggSpec{Kind: kind, Table: s.Contract.Aggregate.Table, Attr: s.Contract.Aggregate.Attr}, nil
}

// multiPredicate lifts the contract predicate to J tables: pairwise for two
// providers; for more, an all-equal equijoin on AttrA across every table.
func (s *Service) multiPredicate(rels []*relation.Relation) (relation.MultiPredicate, error) {
	if len(rels) == 2 {
		pred, err := s.Contract.Predicate.Build(rels[0].Schema, rels[1].Schema)
		if err != nil {
			return nil, err
		}
		return relation.Pairwise(pred), nil
	}
	if s.Contract.Predicate.Kind != "equi" {
		return nil, fmt.Errorf("service: %d-way joins support only equi predicates", len(rels))
	}
	idx := make([]int, len(rels))
	for i, rel := range rels {
		idx[i] = rel.Schema.Index(s.Contract.Predicate.AttrA)
		if idx[i] < 0 {
			return nil, fmt.Errorf("service: relation %d lacks attribute %q", i, s.Contract.Predicate.AttrA)
		}
	}
	return relation.MultiPredicateFunc{
		Fn: func(ts []relation.Tuple) bool {
			for i := 1; i < len(ts); i++ {
				if ts[i][idx[i]].I != ts[0][idx[0]].I {
					return false
				}
			}
			return true
		},
		Desc: fmt.Sprintf("all %s equal", s.Contract.Predicate.AttrA),
	}, nil
}
