package service

import (
	"bytes"
	"encoding/gob"
	"io"
	"sync"
	"testing"
	"time"

	"ppj/internal/ocb"
	"ppj/internal/relation"
)

// meterBuf is an unbounded in-memory byte pipe that records the peak number
// of buffered (written-but-unread) bytes. Unlike net.Pipe it never blocks a
// writer, so it models a transport with unlimited capacity: if the credit
// window failed to throttle the producer, the whole relation would pile up
// here and the peak would betray it.
type meterBuf struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    bytes.Buffer
	closed bool
	peak   int
}

func newMeterBuf() *meterBuf {
	b := &meterBuf{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *meterBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, io.ErrClosedPipe
	}
	b.buf.Write(p)
	if b.buf.Len() > b.peak {
		b.peak = b.buf.Len()
	}
	b.cond.Broadcast()
	return len(p), nil
}

func (b *meterBuf) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.buf.Len() == 0 && !b.closed {
		b.cond.Wait()
	}
	if b.buf.Len() == 0 {
		return 0, io.EOF
	}
	return b.buf.Read(p)
}

func (b *meterBuf) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
	return nil
}

func (b *meterBuf) Peak() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// meterConn joins two meterBufs into one duplex connection end.
type meterConn struct {
	r, w *meterBuf
}

func (c meterConn) Read(p []byte) (int, error)  { return c.r.Read(p) }
func (c meterConn) Write(p []byte) (int, error) { return c.w.Write(p) }

// wireFrameBytes measures the gob wire size of one maximal chunk frame
// (including the one-off type registration of a fresh stream, so it bounds
// the first and largest frame).
func wireFrameBytes(t *testing.T, rows, rowLen int) int {
	t.Helper()
	fake := make([][]byte, rows)
	for i := range fake {
		fake[i] = bytes.Repeat([]byte{0xa5}, rowLen)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(uploadFrameMsg{
		Chunk: &uploadChunkMsg{Seq: 1 << 30, Rows: fake, CRC: 0xffffffff},
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Len()
}

// TestBackpressureBoundsIngestMemory is the backpressure end-to-end: a fast
// producer streams into a deliberately slowed consumer over an unbounded
// metered transport, and the peak of bytes the transport ever buffered must
// stay within the credit window — W chunk frames — no matter how far ahead
// the producer could run. Runs under -race in CI (the ingest-backpressure
// step).
func TestBackpressureBoundsIngestMemory(t *testing.T) {
	const (
		window    = 4
		chunkRows = 64
		totalRows = 1280 // 20 chunks
	)
	svc, pA := newUploadFixture(t, 0, window)
	// Slow the consumer: every chunk costs 1ms before its rows are opened,
	// while the producer can seal and send in microseconds.
	svc.chunkConsumeHook = func(int) { time.Sleep(time.Millisecond) }

	rel := relation.GenKeyed(relation.NewRand(44), totalRows, 50)

	// The transport: client -> server metered (the ingest direction under
	// test), server -> client a plain pipe for acks.
	up := newMeterBuf()
	down := newMeterBuf()
	defer up.Close()
	defer down.Close()
	clientConn := meterConn{r: down, w: up}
	serverConn := meterConn{r: up, w: down}

	type hsOut struct {
		sess *Session
		err  error
	}
	hs := make(chan hsOut, 1)
	go func() {
		sess, _, err := svc.handshake(serverConn)
		hs <- hsOut{sess, err}
	}()
	c := &Client{Name: pA.name, Identity: pA.priv,
		DeviceKey: svc.Device.DeviceKey(), Expected: ExpectedStack()}
	cs, err := c.Connect(clientConn, RoleProvider)
	if err != nil {
		t.Fatal(err)
	}
	out := <-hs
	if out.err != nil {
		t.Fatal(out.err)
	}

	cliErr := make(chan error, 1)
	go func() {
		cliErr <- cs.SubmitRelationOpts(svc.Contract.ID, rel, UploadOptions{ChunkRows: chunkRows})
	}()
	if err := svc.ReceiveUpload(pA.name, out.sess); err != nil {
		t.Fatal(err)
	}
	if err := <-cliErr; err != nil {
		t.Fatal(err)
	}
	if got := uploadedRows(t, svc, pA.name); len(got) != totalRows {
		t.Fatalf("%d rows landed, want %d", len(got), totalRows)
	}

	// The sealed wire size of one row is deterministic: nonce + tag + the
	// contract prefix + the fixed-size schema encoding.
	enc, err := rel.Schema.Encode(rel.Rows[0])
	if err != nil {
		t.Fatal(err)
	}
	sealedRow := ocb.NonceSize + ocb.TagSize + len(svc.Contract.ID) + len(enc)
	frameBytes := wireFrameBytes(t, chunkRows, sealedRow)

	peak := up.Peak()
	bound := window*frameBytes + 256 // gob stream preamble slack
	if peak > bound {
		t.Fatalf("transport buffered %d bytes at peak; window of %d chunks bounds it by %d",
			peak, window, bound)
	}
	// The test only means something if the producer actually ran ahead of
	// the slowed consumer: at least one full frame must have piled up.
	if peak < frameBytes {
		t.Fatalf("transport peak %d below one frame (%d); producer never ran ahead, the test is vacuous",
			peak, frameBytes)
	}
	t.Logf("peak buffered %d bytes over %d-chunk stream (window %d, frame %d bytes, bound %d)",
		peak, (totalRows+chunkRows-1)/chunkRows, window, frameBytes, bound)
}

// TestBackpressureWindowOne degenerates the window to a single chunk: the
// stream serialises into strict request/response and the transport can
// never hold more than one frame.
func TestBackpressureWindowOne(t *testing.T) {
	svc, pA := newUploadFixture(t, 0, 1)
	svc.chunkConsumeHook = func(int) { time.Sleep(200 * time.Microsecond) }
	rel := relation.GenKeyed(relation.NewRand(45), 96, 5)

	up := newMeterBuf()
	down := newMeterBuf()
	defer up.Close()
	defer down.Close()

	type hsOut struct {
		sess *Session
		err  error
	}
	hs := make(chan hsOut, 1)
	go func() {
		sess, _, err := svc.handshake(meterConn{r: up, w: down})
		hs <- hsOut{sess, err}
	}()
	c := &Client{Name: pA.name, Identity: pA.priv,
		DeviceKey: svc.Device.DeviceKey(), Expected: ExpectedStack()}
	cs, err := c.Connect(meterConn{r: down, w: up}, RoleProvider)
	if err != nil {
		t.Fatal(err)
	}
	out := <-hs
	if out.err != nil {
		t.Fatal(out.err)
	}
	cliErr := make(chan error, 1)
	go func() {
		cliErr <- cs.SubmitRelationOpts(svc.Contract.ID, rel, UploadOptions{ChunkRows: 8})
	}()
	if err := svc.ReceiveUpload(pA.name, out.sess); err != nil {
		t.Fatal(err)
	}
	if err := <-cliErr; err != nil {
		t.Fatal(err)
	}

	enc, err := rel.Schema.Encode(rel.Rows[0])
	if err != nil {
		t.Fatal(err)
	}
	sealedRow := ocb.NonceSize + ocb.TagSize + len(svc.Contract.ID) + len(enc)
	frameBytes := wireFrameBytes(t, 8, sealedRow)
	if peak := up.Peak(); peak > frameBytes+256 {
		t.Fatalf("window 1 let %d bytes pile up; one frame is %d", peak, frameBytes)
	}
}
