package service

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"testing"
)

// requireTypedUploadErr asserts an ingest failure carries one of the three
// typed verdicts — the conformance contract of the framing layer.
func requireTypedUploadErr(t *testing.T, err error) {
	t.Helper()
	if !errors.Is(err, ErrUploadFrame) && !errors.Is(err, ErrUploadTooLarge) && !errors.Is(err, ErrUploadTruncated) {
		t.Fatalf("untyped upload error: %v", err)
	}
}

// FuzzUploadStream fuzzes the chunk framing layer from two sides.
//
// Part 1 interprets the input as a script of producer actions — well-formed
// chunks, CRC corruption, sequence skew, frame replay, (possibly mutated)
// end frames — against a chunkAssembler. Every violation must surface as a
// typed error, every mutated frame must be caught, and an accepted stream
// must re-encode canonically to the identical final CRC.
//
// Part 2 feeds the same raw bytes straight into the wire-frame reader as a
// hostile gob stream: whatever garbage arrives, the outcome is a typed
// verdict (usually a truncated or malformed frame), never a panic.
func FuzzUploadStream(f *testing.F) {
	f.Add(int64(4), int64(0), []byte{0, 2, 1, 3, 5, 0})
	f.Add(int64(0), int64(64), []byte{5, 0})
	f.Add(int64(100), int64(100), []byte{0, 9})
	f.Add(int64(-1), int64(0), []byte{})
	f.Add(int64(6), int64(1024), []byte{2, 0xff})
	f.Add(int64(9), int64(0), []byte{0, 5, 4, 0, 3, 2})
	f.Add(int64(3), int64(0), []byte{1, 6, 5, 1})
	f.Add(int64(8), int64(256), []byte{0, 3, 5, 3})

	f.Fuzz(func(t *testing.T, declared, maxBytes int64, script []byte) {
		fuzzAssembler(t, declared, maxBytes, script)
		fuzzFrameReader(t, script)
	})
}

// fuzzAssembler drives the framing state machine with a scripted mix of
// honest and corrupted frames.
func fuzzAssembler(t *testing.T, declared, maxBytes int64, script []byte) {
	asm, err := newChunkAssembler(declared, maxBytes)
	if err != nil {
		requireTypedUploadErr(t, err)
		return
	}
	var (
		ck       chunker
		received [][]byte        // rows of every admitted chunk, in order
		lastGood *uploadChunkMsg // most recent admitted frame, for replay
		rowByte  byte            = 1
	)
	mkRows := func(n, size int) [][]byte {
		rows := make([][]byte, n)
		for i := range rows {
			r := make([]byte, size)
			for j := range r {
				r[j] = rowByte
			}
			rowByte++
			rows[i] = r
		}
		return rows
	}
	for i, steps := 0, 0; i < len(script) && steps < 256; steps++ {
		op := script[i]
		i++
		arg := byte(0)
		if i < len(script) {
			arg = script[i]
			i++
		}
		switch op % 6 {
		case 0, 1: // honest next chunk
			c := ck.frame(mkRows(int(arg%4)+1, int(arg%7)))
			if err := asm.chunk(c); err != nil {
				// Budget or declaration overruns are legitimate refusals of
				// honest frames; either way the stream is over.
				requireTypedUploadErr(t, err)
				return
			}
			received = append(received, c.Rows...)
			lastGood = c
		case 2: // broken running CRC
			c := *ck.frame(mkRows(1, int(arg%7)))
			c.CRC ^= uint32(arg) + 1
			err := asm.chunk(&c)
			if err == nil {
				t.Fatal("corrupted CRC admitted")
			}
			requireTypedUploadErr(t, err)
			return
		case 3: // skewed sequence number
			c := *ck.frame(mkRows(1, int(arg%7)))
			c.Seq += uint32(arg%5) + 1
			err := asm.chunk(&c)
			if err == nil {
				t.Fatal("skewed sequence number admitted")
			}
			requireTypedUploadErr(t, err)
			return
		case 4: // replay the previous frame
			if lastGood == nil {
				continue
			}
			err := asm.chunk(lastGood)
			if err == nil {
				t.Fatal("replayed chunk admitted")
			}
			requireTypedUploadErr(t, err)
			return
		case 5: // end frame, possibly with mutated totals
			e := ck.endFrame(int64(len(received)))
			mut := arg % 4
			switch mut {
			case 1:
				e.Frames++
			case 2:
				e.Rows++
			case 3:
				e.CRC ^= 0xdeadbeef
			}
			err := asm.end(e)
			if mut != 0 {
				if err == nil {
					t.Fatal("mutated end frame admitted")
				}
				requireTypedUploadErr(t, err)
				return
			}
			if err != nil {
				// The only legitimate refusal of truthful totals is closing
				// short of the declaration.
				if !errors.Is(err, ErrUploadTruncated) {
					t.Fatalf("truthful end frame refused: %v", err)
				}
				return
			}
			// Accepted: exactly the declared rows arrived, and a canonical
			// re-encode of what was admitted replays to the same final CRC.
			if int64(len(received)) != declared {
				t.Fatalf("stream accepted with %d rows, %d declared", len(received), declared)
			}
			var ck2 chunker
			asm2, err := newChunkAssembler(int64(len(received)), maxBytes)
			if err != nil {
				t.Fatalf("canonical re-encode refused at begin: %v", err)
			}
			for start := 0; start < len(received); start += 3 {
				end := start + 3
				if end > len(received) {
					end = len(received)
				}
				if err := asm2.chunk(ck2.frame(received[start:end])); err != nil {
					t.Fatalf("canonical re-encode refused chunk: %v", err)
				}
			}
			if err := asm2.end(ck2.endFrame(int64(len(received)))); err != nil {
				t.Fatalf("canonical re-encode refused end: %v", err)
			}
			if asm2.crc != asm.crc {
				t.Fatalf("canonical re-encode CRC %08x, stream CRC %08x", asm2.crc, asm.crc)
			}
			return
		}
	}
	// Script exhausted mid-stream: an implicit truncation. Closing honestly
	// now must be refused iff the declaration is unmet.
	err = asm.end(ck.endFrame(int64(len(received))))
	if int64(len(received)) < declared {
		if !errors.Is(err, ErrUploadTruncated) {
			t.Fatalf("short stream closed with %v", err)
		}
	} else if err != nil {
		t.Fatalf("complete stream refused: %v", err)
	}
}

// fuzzFrameReader aims the raw fuzz bytes at the wire-frame reader: a
// hostile peer's gob stream must always terminate in a typed verdict.
func fuzzFrameReader(t *testing.T, raw []byte) {
	sess := &Session{
		enc: gob.NewEncoder(io.Discard),
		dec: gob.NewDecoder(bytes.NewReader(raw)),
	}
	quit := make(chan struct{})
	defer close(quit)
	frames := make(chan decodedFrame)
	go readUploadFrames(sess, frames, quit)
	for n := 0; ; n++ {
		d := <-frames
		if d.err != nil {
			requireTypedUploadErr(t, d.err)
			return
		}
		if d.end != nil {
			return
		}
		if n > 1<<16 {
			t.Fatal("frame reader never terminated")
		}
	}
}
