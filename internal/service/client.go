package service

import (
	"bytes"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"ppj/internal/core"
	"ppj/internal/relation"
	"ppj/internal/secop"
)

// Client is a service requestor: a data owner or a result recipient. It
// pins the device's public key and the expected software measurements out
// of band (the manufacturer publishes the device key; the join application
// is open source and its digest well known).
type Client struct {
	Name      string
	Identity  ed25519.PrivateKey
	DeviceKey ed25519.PublicKey
	Expected  secop.ExpectedStack
	// Legacy pins the session to the ProtoLegacy one-shot upload (the whole
	// relation in a single dataMsg) instead of the default chunked stream.
	// Servers now refuse it unless they opt in with AllowLegacyUpload; it
	// exists so that deprecation gate stays tested. New code should leave
	// it false.
	Legacy bool
	// Proto, when non-zero, pins the session's protocol version instead of
	// the default ProtoStreamedResult — e.g. ProtoChunked for a client that
	// wants chunked uploads but one-shot delivery. Legacy wins over Proto.
	Proto byte
}

// ClientSession is an authenticated channel to the attested coprocessor.
type ClientSession struct {
	client *Client
	sess   *Session
}

// Connect performs the handshake of §3.3.3: the client challenges the
// device, verifies its outbound authentication chain against the pinned
// measurements, and establishes an X25519 session key whose server share is
// signed by the attested application layer. The host relaying the traffic
// learns nothing but ciphertext. The hello names no contract, which
// single-contract services accept; use ConnectContract against a
// multi-tenant server.
func (c *Client) Connect(conn io.ReadWriter, role Role) (*ClientSession, error) {
	return c.ConnectContract(conn, role, "")
}

// ConnectContract is Connect with an explicit contract ID in the hello, so
// a multi-tenant listener (internal/server) can route the session to the
// right registered contract before attestation completes.
func (c *Client) ConnectContract(conn io.ReadWriter, role Role, contractID string) (*ClientSession, error) {
	return c.ConnectContractResume(conn, role, contractID, 0)
}

// ConnectContractResume is ConnectContract with a resume offset in the
// hello: a recipient that already consumed `resume` whole chunks of the
// result (ResultFetch.Chunks) reconnects with it and the server streams
// only the remainder.
func (c *Client) ConnectContractResume(conn io.ReadWriter, role Role, contractID string, resume uint32) (*ClientSession, error) {
	return c.ConnectJobResume(conn, role, contractID, "", resume)
}

// ConnectJob is ConnectContract addressed to one execution of a
// resubmitted contract: the hello carries the job ID server.Resubmit
// minted, so the session binds to that run instead of the contract's
// latest. An empty jobID is the latest-execution default every other
// connect path uses.
func (c *Client) ConnectJob(conn io.ReadWriter, role Role, contractID, jobID string) (*ClientSession, error) {
	return c.ConnectJobResume(conn, role, contractID, jobID, 0)
}

// ConnectJobResume is ConnectJob with a recipient resume offset.
func (c *Client) ConnectJobResume(conn io.ReadWriter, role Role, contractID, jobID string, resume uint32) (*ClientSession, error) {
	sess := newSession(conn)
	proto := ProtoStreamedResult
	if c.Proto != 0 {
		proto = c.Proto
	}
	if c.Legacy {
		proto = ProtoLegacy
	}
	challenge := make([]byte, 32)
	if _, err := rand.Read(challenge); err != nil {
		return nil, err
	}
	if err := sess.enc.Encode(Hello{Party: c.Name, Role: role, Challenge: challenge, ContractID: contractID, JobID: jobID, Proto: proto, ResumeChunks: resume}); err != nil {
		return nil, err
	}
	var auth serverAuthMsg
	if err := sess.dec.Decode(&auth); err != nil {
		return nil, fmt.Errorf("service: reading attestation: %w", err)
	}
	var att secop.Attestation
	if err := gob.NewDecoder(bytes.NewReader(auth.AttChainGob)).Decode(&att); err != nil {
		return nil, fmt.Errorf("service: decoding attestation: %w", err)
	}
	if err := secop.Verify(c.DeviceKey, c.Expected, att, challenge); err != nil {
		return nil, fmt.Errorf("service: attestation rejected: %w", err)
	}
	appKey := att.Chain[secop.App].SubjectKey
	if !ed25519.Verify(appKey, append(append([]byte(nil), challenge...), auth.ECDHPub...), auth.Sig) {
		return nil, errors.New("service: key agreement not bound to attested code")
	}

	eph, err := newECDHKey()
	if err != nil {
		return nil, err
	}
	transcript := append(append([]byte(nil), auth.ECDHPub...), eph.PublicKey().Bytes()...)
	if err := sess.enc.Encode(clientKeyMsg{
		ECDHPub: eph.PublicKey().Bytes(),
		Sig:     ed25519.Sign(c.Identity, transcript),
	}); err != nil {
		return nil, err
	}
	serverPub, err := ecdh.X25519().NewPublicKey(auth.ECDHPub)
	if err != nil {
		return nil, err
	}
	shared, err := eph.ECDH(serverPub)
	if err != nil {
		return nil, err
	}
	key := deriveSessionKey(shared, auth.ECDHPub, eph.PublicKey().Bytes())
	sealDir, err := newSessionSealer(key, 'c')
	if err != nil {
		return nil, err
	}
	open, err := newSessionSealer(key, 's')
	if err != nil {
		return nil, err
	}
	return &ClientSession{client: c, sess: &Session{enc: sess.enc, dec: sess.dec, sealer: sealDir, opener: open, proto: proto}}, nil
}

// UploadOptions configures the streaming producer.
type UploadOptions struct {
	// ChunkRows is the number of sealed rows per chunk frame. Zero selects
	// DefaultChunkRows. The server's per-connection ingest memory is bounded
	// by its credit window times this chunk's wire size.
	ChunkRows int
}

// SubmitRelation uploads a provider's relation under the session key, each
// row bound to the contract ID. Sessions opened at ProtoChunked (the
// default) stream the relation in acknowledged chunks with the default
// chunk size; Legacy sessions send the one-shot dataMsg.
func (cs *ClientSession) SubmitRelation(contractID string, rel *relation.Relation) error {
	return cs.SubmitRelationOpts(contractID, rel, UploadOptions{})
}

// SubmitRelationOpts is SubmitRelation with explicit streaming options.
func (cs *ClientSession) SubmitRelationOpts(contractID string, rel *relation.Relation, opt UploadOptions) error {
	if cs.sess.proto < ProtoChunked {
		return cs.submitLegacy(contractID, rel)
	}
	return cs.submitChunked(contractID, rel, opt)
}

// submitLegacy is the ProtoLegacy one-shot upload: every row sealed into a
// single dataMsg.
func (cs *ClientSession) submitLegacy(contractID string, rel *relation.Relation) error {
	encs, err := rel.EncodeAll()
	if err != nil {
		return err
	}
	msg := dataMsg{ContractID: contractID, Schema: toWire(rel.Schema), Rows: make([][]byte, len(encs))}
	prefix := []byte(contractID)
	for i, e := range encs {
		pt := append(append([]byte(nil), prefix...), e...)
		msg.Rows[i] = cs.sess.sealer.seal(pt)
	}
	return cs.sess.enc.Encode(msg)
}

// submitChunked is the streaming producer: a begin frame declaring the row
// count, then chunk frames under the server-granted credit window (at most
// W unacknowledged chunks in flight), then the end frame with the totals.
// Rows are sealed lazily per chunk, so producer memory is one chunk plus
// the relation it already owns. It returns once the server confirms the
// completed upload, or with the server's refusal verdict.
//
// The ack stream is drained by a dedicated reader that publishes cumulative
// credit into an ackTracker: the reader must never stop consuming the wire,
// or a synchronous transport deadlocks three ways at once (server blocked
// writing an ack, reader blocked handing it over, producer blocked writing
// a chunk the server will never read).
func (cs *ClientSession) submitChunked(contractID string, rel *relation.Relation, opt UploadOptions) error {
	chunkRows := opt.ChunkRows
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	if err := cs.sess.enc.Encode(uploadBeginMsg{
		ContractID:   contractID,
		Schema:       toWire(rel.Schema),
		DeclaredRows: int64(rel.Len()),
	}); err != nil {
		return fmt.Errorf("service: sending upload begin: %w", err)
	}

	st := newAckTracker()
	go st.run(cs.sess.dec)

	// The first ack is the credit grant (and the server's chance to refuse
	// the upload before any row is sealed).
	if err := st.waitGrant(); err != nil {
		return err
	}

	prefix := []byte(contractID)
	var ck chunker
	for start := 0; start < rel.Len(); start += chunkRows {
		// Block until the window admits this chunk; a refusal that already
		// arrived fails fast instead of pushing more rows at a dead stream.
		if err := st.waitCredit(ck.seq); err != nil {
			return err
		}
		end := start + chunkRows
		if end > rel.Len() {
			end = rel.Len()
		}
		sealed := make([][]byte, 0, end-start)
		for _, t := range rel.Rows[start:end] {
			e, err := rel.Schema.Encode(t)
			if err != nil {
				return err
			}
			pt := append(append([]byte(nil), prefix...), e...)
			sealed = append(sealed, cs.sess.sealer.seal(pt))
		}
		if err := cs.sess.enc.Encode(uploadFrameMsg{Chunk: ck.frame(sealed)}); err != nil {
			return fmt.Errorf("service: sending chunk %d: %w", ck.seq, err)
		}
	}
	if err := cs.sess.enc.Encode(uploadFrameMsg{End: ck.endFrame(int64(rel.Len()))}); err != nil {
		return fmt.Errorf("service: sending upload end: %w", err)
	}
	return st.waitDone()
}

// ReceiveResult waits for the recipient's result, decrypts it, drops decoy
// oTuples (for the padded Chapter 4 algorithms), and returns the exact join
// rows. On ProtoStreamedResult sessions this is a complete single-shot
// fetch of the chunk stream; use FetchResult directly for pause/resume
// control.
func (cs *ClientSession) ReceiveResult() (*relation.Relation, error) {
	if cs.sess.proto >= ProtoStreamedResult {
		f := &ResultFetch{}
		if err := cs.FetchResult(f); err != nil {
			return nil, err
		}
		if f.Rows == nil {
			return nil, errors.New("service: result carries an aggregate, not rows")
		}
		return f.Rows, nil
	}
	var msg resultMsg
	if err := cs.sess.dec.Decode(&msg); err != nil {
		return nil, fmt.Errorf("service: reading result: %w", err)
	}
	if msg.Err != "" {
		return nil, fmt.Errorf("service: join failed: %s", msg.Err)
	}
	schema, err := msg.Schema.schema()
	if err != nil {
		return nil, err
	}
	out := relation.NewRelation(schema)
	for i, ct := range msg.Rows {
		cell, err := cs.sess.opener.open(ct)
		if err != nil {
			return nil, fmt.Errorf("service: result row %d: %w", i, err)
		}
		if !core.IsReal(cell) {
			continue // decoy: "decrypted and filtered out by the recipient" (§4.3)
		}
		row, err := schema.Decode(core.Payload(cell))
		if err != nil {
			return nil, fmt.Errorf("service: result row %d: %w", i, err)
		}
		if err := out.Append(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AggOutcome is a delivered aggregate statistic.
type AggOutcome struct {
	Count int64
	Value float64
	Valid bool
}

// ReceiveAggregate waits for an "aggregate" contract's result: a single
// statistic, decrypted under the session key.
func (cs *ClientSession) ReceiveAggregate() (AggOutcome, error) {
	if cs.sess.proto >= ProtoStreamedResult {
		f := &ResultFetch{}
		if err := cs.FetchResult(f); err != nil {
			return AggOutcome{}, err
		}
		if f.Agg == nil {
			return AggOutcome{}, errors.New("service: result carries rows, not an aggregate")
		}
		return *f.Agg, nil
	}
	var msg resultMsg
	if err := cs.sess.dec.Decode(&msg); err != nil {
		return AggOutcome{}, fmt.Errorf("service: reading aggregate: %w", err)
	}
	if msg.Err != "" {
		return AggOutcome{}, fmt.Errorf("service: aggregate failed: %s", msg.Err)
	}
	if msg.Agg == nil {
		return AggOutcome{}, errors.New("service: result carries rows, not an aggregate")
	}
	cell, err := cs.sess.opener.open(msg.Agg)
	if err != nil {
		return AggOutcome{}, err
	}
	return decodeAggCell(cell)
}

// NewIdentity draws an ed25519 identity key pair for a party.
func NewIdentity() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	return ed25519.GenerateKey(rand.Reader)
}
