package service

import (
	"bytes"
	"fmt"
	"testing"

	"ppj/internal/relation"
)

// ingestAll uploads relA and relB into a fresh service for the given
// contract and returns the service (t.Fatal on any verdict).
func ingestAll(t *testing.T, contract *Contract, pA, pB testParty, relA, relB *relation.Relation, legacy bool, chunkRows int) *Service {
	t.Helper()
	svc, err := NewService(contract, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	// The equivalence grid drives the deprecated one-shot path on purpose.
	svc.AllowLegacyUpload = legacy
	for _, u := range []struct {
		p   testParty
		rel *relation.Relation
	}{{pA, relA}, {pB, relB}} {
		if srvErr, cliErr := uploadOnce(t, svc, u.p, contract.ID, u.rel, legacy, chunkRows); srvErr != nil || cliErr != nil {
			t.Fatalf("upload %s (legacy=%v chunk=%d): server=%v client=%v",
				u.p.name, legacy, chunkRows, srvErr, cliErr)
		}
	}
	return svc
}

// assertSameUpload compares two committed uploads row for row.
func assertSameUpload(t *testing.T, base, got *Service, party, label string) {
	t.Helper()
	want := uploadedRows(t, base, party)
	have := uploadedRows(t, got, party)
	if len(have) != len(want) {
		t.Fatalf("%s: %s landed %d rows, legacy landed %d", label, party, len(have), len(want))
	}
	for i := range have {
		if !bytes.Equal(have[i], want[i]) {
			t.Fatalf("%s: %s row %d differs from the legacy upload", label, party, i)
		}
	}
}

// TestStreamingMatchesLegacy is the equivalence property of the tentpole:
// for relation sizes straddling the default chunk boundary and chunk sizes
// {1, 7, 64}, a streamed upload must land the byte-identical relation a
// legacy one-shot upload lands, and a pinned-seed execution over it must
// produce the identical outcome — same rows, same sim.Stats — for a padded
// (alg3) and an unpadded (alg5) algorithm. The framing is pure transport;
// nothing downstream may observe it.
func TestStreamingMatchesLegacy(t *testing.T) {
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	pred := PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"}
	relB := relation.GenKeyed(relation.NewRand(7), 16, 5)

	for _, alg := range []string{"alg3", "alg5"} {
		for _, size := range []int{0, 1, 63, 64, 65} {
			relA := relation.GenKeyed(relation.NewRand(uint64(size)+11), size, 5)
			contract := buildContract(t, alg, pA, pB, pC, pred, 1e-9)
			contract.ID = fmt.Sprintf("equiv-%s-%d", alg, size)
			contract.Signatures = nil
			contract.Sign(0, pA.priv)
			contract.Sign(1, pB.priv)

			base := ingestAll(t, contract, pA, pB, relA, relB, true, 0)
			baseOut := base.RunContract()
			for _, chunkRows := range []int{1, 7, 64} {
				label := fmt.Sprintf("%s size %d chunk %d", alg, size, chunkRows)
				svc := ingestAll(t, contract, pA, pB, relA, relB, false, chunkRows)
				assertSameUpload(t, base, svc, pA.name, label)
				assertSameUpload(t, base, svc, pB.name, label)
				out := svc.RunContract()
				if baseOut.Err != nil {
					// Some algorithms refuse degenerate inputs (alg3 rejects
					// an empty relation); the streamed path must reproduce
					// the exact verdict, not invent one of its own.
					if out.Err == nil || out.Err.Error() != baseOut.Err.Error() {
						t.Fatalf("%s: execution verdict %v, legacy verdict %v", label, out.Err, baseOut.Err)
					}
					continue
				}
				if out.Err != nil {
					t.Fatalf("%s: streamed execution failed: %v", label, out.Err)
				}
				if out.Stats != baseOut.Stats {
					t.Fatalf("%s: stats diverge from legacy:\n got %+v\nwant %+v", label, out.Stats, baseOut.Stats)
				}
				if len(out.Rows) != len(baseOut.Rows) {
					t.Fatalf("%s: %d output cells, legacy produced %d", label, len(out.Rows), len(baseOut.Rows))
				}
				for i := range out.Rows {
					if !bytes.Equal(out.Rows[i], baseOut.Rows[i]) {
						t.Fatalf("%s: output cell %d differs from legacy", label, i)
					}
				}
			}
		}
	}
}

// TestStreamingLargeUploadByteIdentity is the 10k-row point of the size
// grid: the join would dominate the suite, so only the upload-equivalence
// half of the property is asserted at this size.
func TestStreamingLargeUploadByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-row upload grid skipped in -short")
	}
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	pred := PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"}
	relA := relation.GenKeyed(relation.NewRand(31), 10000, 50)
	relB := relation.GenKeyed(relation.NewRand(32), 16, 5)
	contract := buildContract(t, "alg5", pA, pB, pC, pred, 0)

	base := ingestAll(t, contract, pA, pB, relA, relB, true, 0)
	for _, chunkRows := range []int{1, 7, 64} {
		label := fmt.Sprintf("10k chunk %d", chunkRows)
		svc := ingestAll(t, contract, pA, pB, relA, relB, false, chunkRows)
		assertSameUpload(t, base, svc, pA.name, label)
		assertSameUpload(t, base, svc, pB.name, label)
	}
}
