package service

import (
	"crypto/ed25519"
	"io"
	"net"
	"strings"
	"sync"
	"testing"

	"ppj/internal/relation"
)

// testParty bundles a party's identity and client.
type testParty struct {
	name string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

func newParty(t *testing.T, name string) testParty {
	t.Helper()
	pub, priv, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	return testParty{name: name, pub: pub, priv: priv}
}

// buildContract assembles and signs a 2-provider contract.
func buildContract(t *testing.T, alg string, pA, pB, pC testParty, pred PredicateSpec, eps float64) *Contract {
	t.Helper()
	c := &Contract{
		ID: "contract-001",
		Parties: []Party{
			{Name: pA.name, Identity: pA.pub, Role: RoleProvider},
			{Name: pB.name, Identity: pB.pub, Role: RoleProvider},
			{Name: pC.name, Identity: pC.pub, Role: RoleRecipient},
		},
		Predicate: pred,
		Algorithm: alg,
		Epsilon:   eps,
	}
	c.Sign(0, pA.priv)
	c.Sign(1, pB.priv)
	return c
}

// runService executes the full three-party flow over net.Pipe connections
// and returns the recipient's decoded result. Optional opts tweak every
// party's client (e.g. pinning the legacy upload protocol).
func runService(t *testing.T, svc *Service, pA, pB, pC testParty, relA, relB *relation.Relation, opts ...func(*Client)) (*relation.Relation, error) {
	t.Helper()
	mk := func() (io.ReadWriter, io.ReadWriter) { return net.Pipe() }
	serverA, clientA := mk()
	serverB, clientB := mk()
	serverC, clientC := mk()

	client := func(p testParty) *Client {
		c := &Client{
			Name:      p.name,
			Identity:  p.priv,
			DeviceKey: svc.Device.DeviceKey(),
			Expected:  ExpectedStack(),
		}
		for _, o := range opts {
			o(c)
		}
		return c
	}

	var (
		wg        sync.WaitGroup
		result    *relation.Relation
		resultErr error
		clientErr = make(chan error, 3)
	)
	wg.Add(3)
	go func() {
		defer wg.Done()
		cs, err := client(pA).Connect(clientA, RoleProvider)
		if err == nil {
			err = cs.SubmitRelation(svc.Contract.ID, relA)
		}
		clientErr <- err
	}()
	go func() {
		defer wg.Done()
		cs, err := client(pB).Connect(clientB, RoleProvider)
		if err == nil {
			err = cs.SubmitRelation(svc.Contract.ID, relB)
		}
		clientErr <- err
	}()
	go func() {
		defer wg.Done()
		cs, err := client(pC).Connect(clientC, RoleRecipient)
		if err == nil {
			result, err = cs.ReceiveResult()
		}
		resultErr = err
		clientErr <- err
	}()

	svcErr := svc.Execute(map[string]io.ReadWriter{
		pA.name: serverA, pB.name: serverB, pC.name: serverC,
	})
	wg.Wait()
	close(clientErr)
	for err := range clientErr {
		if err != nil && resultErr == nil {
			resultErr = err
		}
	}
	if svcErr != nil {
		return nil, svcErr
	}
	return result, resultErr
}

func TestEndToEndAllAlgorithms(t *testing.T) {
	pA, pB, pC := newParty(t, "airline"), newParty(t, "agency"), newParty(t, "analyst")
	relA := relation.GenKeyed(relation.NewRand(1), 8, 5)
	relB := relation.GenKeyed(relation.NewRand(2), 10, 5)
	pred := PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"}
	want := func() *relation.Relation {
		eq, _ := relation.NewEqui(relA.Schema, "key", relB.Schema, "key")
		return relation.ReferenceJoin(relA, relB, eq)
	}()
	for _, alg := range []string{"alg1", "alg2", "alg3", "alg4", "alg5", "alg6", "alg7"} {
		t.Run(alg, func(t *testing.T) {
			contract := buildContract(t, alg, pA, pB, pC, pred, 1e-9)
			svc, err := NewService(contract, 8, 99)
			if err != nil {
				t.Fatal(err)
			}
			got, err := runService(t, svc, pA, pB, pC, relA, relB)
			if err != nil {
				t.Fatal(err)
			}
			// The recipient sees exactly the reference join — decoys gone.
			gotSet := relation.Multiset(got)
			wantSet := relation.Multiset(want)
			if len(gotSet) != len(wantSet) || got.Len() != want.Len() {
				t.Fatalf("recipient got %d rows, want %d", got.Len(), want.Len())
			}
			for k, v := range wantSet {
				if gotSet[k] != v {
					t.Fatalf("row multiplicity mismatch")
				}
			}
		})
	}
}

func TestEndToEndBandPredicate(t *testing.T) {
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	relA := relation.GenKeyed(relation.NewRand(3), 6, 10)
	relB := relation.GenKeyed(relation.NewRand(4), 7, 10)
	pred := PredicateSpec{Kind: "band", AttrA: "key", AttrB: "key", Param: 1}
	contract := buildContract(t, "alg5", pA, pB, pC, pred, 0)
	svc, err := NewService(contract, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runService(t, svc, pA, pB, pC, relA, relB)
	if err != nil {
		t.Fatal(err)
	}
	band, _ := relation.NewBand(relA.Schema, "key", relB.Schema, "key", 1)
	want := relation.ReferenceJoin(relA, relB, band)
	if got.Len() != want.Len() {
		t.Fatalf("band join: got %d rows, want %d", got.Len(), want.Len())
	}
}

func TestContractSignatureRequired(t *testing.T) {
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	c := &Contract{
		ID: "c1",
		Parties: []Party{
			{Name: pA.name, Identity: pA.pub, Role: RoleProvider},
			{Name: pB.name, Identity: pB.pub, Role: RoleProvider},
			{Name: pC.name, Identity: pC.pub, Role: RoleRecipient},
		},
		Predicate: PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"},
		Algorithm: "alg5",
	}
	c.Sign(0, pA.priv) // pB never signs
	if _, err := NewService(c, 4, 1); err == nil {
		t.Fatal("unsigned contract accepted")
	}
	// A signature by the wrong key must also fail.
	c.Sign(1, pC.priv)
	if _, err := NewService(c, 4, 1); err == nil {
		t.Fatal("wrongly-signed contract accepted")
	}
}

func TestImpostorRejected(t *testing.T) {
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	contract := buildContract(t, "alg5", pA, pB, pC,
		PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"}, 0)
	svc, err := NewService(contract, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	server, clientConn := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, _, err := svc.handshake(server)
		done <- err
	}()
	impostor := &Client{
		Name:      pA.name, // claims to be p1
		Identity:  pC.priv, // but holds r's key
		DeviceKey: svc.Device.DeviceKey(),
		Expected:  ExpectedStack(),
	}
	_, clientErr := impostor.Connect(clientConn, RoleProvider)
	serverErr := <-done
	if serverErr == nil && clientErr == nil {
		t.Fatal("impostor session accepted")
	}
	if serverErr != nil && !strings.Contains(serverErr.Error(), "authentication") {
		t.Fatalf("unexpected server error: %v", serverErr)
	}
}

func TestWrongDeviceRejectedByClient(t *testing.T) {
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	contract := buildContract(t, "alg5", pA, pB, pC,
		PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"}, 0)
	svc, err := NewService(contract, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Client pins a different device key.
	otherSvc, err := NewService(contract, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	server, clientConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		svc.handshake(server)
	}()
	c := &Client{
		Name:      pA.name,
		Identity:  pA.priv,
		DeviceKey: otherSvc.Device.DeviceKey(),
		Expected:  ExpectedStack(),
	}
	if _, err := c.Connect(clientConn, RoleProvider); err == nil {
		t.Fatal("client accepted the wrong device")
	}
	// Unblock the server side, which is waiting for the key message the
	// client rightly refused to send.
	clientConn.Close()
	server.Close()
	<-done
}

func TestUnknownPartyRejected(t *testing.T) {
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	contract := buildContract(t, "alg5", pA, pB, pC,
		PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"}, 0)
	svc, err := NewService(contract, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	server, clientConn := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, _, err := svc.handshake(server)
		done <- err
	}()
	mallory := newParty(t, "mallory")
	c := &Client{Name: "mallory", Identity: mallory.priv,
		DeviceKey: svc.Device.DeviceKey(), Expected: ExpectedStack()}
	// The server rejects after the hello and never answers; run the client
	// in the background and unblock it by closing the pipe once the server
	// verdict is in.
	go c.Connect(clientConn, RoleProvider)
	err = <-done
	clientConn.Close()
	server.Close()
	if err == nil || !strings.Contains(err.Error(), "not in contract") {
		t.Fatalf("unknown party error = %v", err)
	}
}

func TestZeroizedDeviceCannotServe(t *testing.T) {
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	contract := buildContract(t, "alg5", pA, pB, pC,
		PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"}, 0)
	svc, err := NewService(contract, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	svc.Device.Tamper()
	server, clientConn := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, _, err := svc.handshake(server)
		done <- err
	}()
	c := &Client{Name: pA.name, Identity: pA.priv,
		DeviceKey: svc.Device.DeviceKey(), Expected: ExpectedStack()}
	go c.Connect(clientConn, RoleProvider)
	err = <-done
	clientConn.Close()
	server.Close()
	if err == nil {
		t.Fatal("zeroized device served a session")
	}
}

func TestPredicateSpecValidation(t *testing.T) {
	s := relation.KeyedSchema()
	if _, err := (PredicateSpec{Kind: "nope"}).Build(s, s); err == nil {
		t.Fatal("unknown predicate kind accepted")
	}
	if _, err := (PredicateSpec{Kind: "equi", AttrA: "missing", AttrB: "key"}).Build(s, s); err == nil {
		t.Fatal("missing attribute accepted")
	}
}

func TestEndToEndAggregateContract(t *testing.T) {
	pA, pB, pC := newParty(t, "hospital"), newParty(t, "genebank"), newParty(t, "study")
	relA := relation.GenKeyed(relation.NewRand(31), 9, 5)
	relB := relation.GenKeyed(relation.NewRand(32), 11, 5)
	c := &Contract{
		ID: "agg-contract-1",
		Parties: []Party{
			{Name: pA.name, Identity: pA.pub, Role: RoleProvider},
			{Name: pB.name, Identity: pB.pub, Role: RoleProvider},
			{Name: pC.name, Identity: pC.pub, Role: RoleRecipient},
		},
		Predicate: PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"},
		Algorithm: "aggregate",
		Aggregate: AggregateSpec{Kind: "count"},
	}
	c.Sign(0, pA.priv)
	c.Sign(1, pB.priv)
	svc, err := NewService(c, 8, 5)
	if err != nil {
		t.Fatal(err)
	}

	serverA, clientA := net.Pipe()
	serverB, clientB := net.Pipe()
	serverC, clientC := net.Pipe()
	client := func(p testParty) *Client {
		return &Client{Name: p.name, Identity: p.priv,
			DeviceKey: svc.Device.DeviceKey(), Expected: ExpectedStack()}
	}
	var (
		wg      sync.WaitGroup
		outcome AggOutcome
		cliErr  = make(chan error, 3)
	)
	wg.Add(3)
	go func() {
		defer wg.Done()
		cs, err := client(pA).Connect(clientA, RoleProvider)
		if err == nil {
			err = cs.SubmitRelation(c.ID, relA)
		}
		cliErr <- err
	}()
	go func() {
		defer wg.Done()
		cs, err := client(pB).Connect(clientB, RoleProvider)
		if err == nil {
			err = cs.SubmitRelation(c.ID, relB)
		}
		cliErr <- err
	}()
	go func() {
		defer wg.Done()
		cs, err := client(pC).Connect(clientC, RoleRecipient)
		if err == nil {
			outcome, err = cs.ReceiveAggregate()
		}
		cliErr <- err
	}()
	if err := svc.Execute(map[string]io.ReadWriter{
		pA.name: serverA, pB.name: serverB, pC.name: serverC,
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(cliErr)
	for err := range cliErr {
		if err != nil {
			t.Fatal(err)
		}
	}
	eq, _ := relation.NewEqui(relA.Schema, "key", relB.Schema, "key")
	want := relation.ReferenceJoin(relA, relB, eq).Len()
	if outcome.Count != int64(want) || !outcome.Valid {
		t.Fatalf("aggregate = %+v, want count %d", outcome, want)
	}
}

func TestAggregateSpecValidation(t *testing.T) {
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	c := buildContract(t, "aggregate", pA, pB, pC,
		PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"}, 0)
	c.Aggregate = AggregateSpec{Kind: "median"} // unsupported
	c.Signatures = nil
	c.Sign(0, pA.priv)
	c.Sign(1, pB.priv)
	svc, err := NewService(c, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.aggSpec(); err == nil {
		t.Fatal("unknown aggregate kind accepted")
	}
}

func TestUploadBoundToContract(t *testing.T) {
	// Rows sealed for a different contract ID must be rejected by T: the
	// contract binding of §3.3.3.
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	contract := buildContract(t, "alg5", pA, pB, pC,
		PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"}, 0)
	svc, err := NewService(contract, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	server, clientConn := net.Pipe()
	type hsOut struct {
		sess *Session
		err  error
	}
	done := make(chan hsOut, 1)
	go func() {
		sess, _, err := svc.handshake(server)
		done <- hsOut{sess, err}
	}()
	c := &Client{Name: pA.name, Identity: pA.priv,
		DeviceKey: svc.Device.DeviceKey(), Expected: ExpectedStack()}
	cs, err := c.Connect(clientConn, RoleProvider)
	if err != nil {
		t.Fatal(err)
	}
	hs := <-done
	if hs.err != nil {
		t.Fatal(hs.err)
	}
	rel := relation.GenKeyed(relation.NewRand(1), 3, 3)
	go cs.SubmitRelation("some-other-contract", rel)
	if err := svc.ReceiveUpload(pA.name, hs.sess); err == nil ||
		!strings.Contains(err.Error(), "foreign contract") {
		t.Fatalf("foreign-contract upload error = %v", err)
	}
}

func TestDuplicateUploadRejected(t *testing.T) {
	pA, pB, pC := newParty(t, "p1"), newParty(t, "p2"), newParty(t, "r")
	contract := buildContract(t, "alg5", pA, pB, pC,
		PredicateSpec{Kind: "equi", AttrA: "key", AttrB: "key"}, 0)
	svc, err := NewService(contract, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rel := relation.GenKeyed(relation.NewRand(1), 3, 3)
	schema := rel.Schema
	svc.uploads[pA.name] = &upload{party: pA.name, schema: schema, rel: rel}
	// Simulate the second upload arriving: receiveUpload's final map insert
	// must refuse. Drive it through a real session pair.
	server, clientConn := net.Pipe()
	type hsOut struct {
		sess *Session
		err  error
	}
	done := make(chan hsOut, 1)
	go func() {
		sess, _, err := svc.handshake(server)
		done <- hsOut{sess, err}
	}()
	c := &Client{Name: pA.name, Identity: pA.priv,
		DeviceKey: svc.Device.DeviceKey(), Expected: ExpectedStack()}
	cs, err := c.Connect(clientConn, RoleProvider)
	if err != nil {
		t.Fatal(err)
	}
	hs := <-done
	if hs.err != nil {
		t.Fatal(hs.err)
	}
	go cs.SubmitRelation(contract.ID, rel)
	if err := svc.ReceiveUpload(pA.name, hs.sess); err == nil ||
		!strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate upload error = %v", err)
	}
}

func TestEndToEndJaccardPredicate(t *testing.T) {
	// A similarity-join contract: exercises Set attributes through the gob
	// transport and the jaccard predicate spec.
	pA, pB, pC := newParty(t, "genebank"), newParty(t, "hospital"), newParty(t, "study")
	rng := relation.NewRand(91)
	relA := relation.GenSequences(rng, 6, 6, 10, 16)
	relB := relation.GenSequences(rng, 8, 6, 10, 16)
	pred := PredicateSpec{Kind: "jaccard", AttrA: "kmers", AttrB: "kmers", Param: 0.25}
	contract := buildContract(t, "alg4", pA, pB, pC, pred, 0)
	svc, err := NewService(contract, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runService(t, svc, pA, pB, pC, relA, relB)
	if err != nil {
		t.Fatal(err)
	}
	jac, err := relation.NewJaccard(relA.Schema, "kmers", relB.Schema, "kmers", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.ReferenceJoin(relA, relB, jac)
	if got.Len() != want.Len() {
		t.Fatalf("jaccard join: got %d rows, want %d", got.Len(), want.Len())
	}
}
