package service

import (
	"bytes"
	"encoding/gob"
	"io"
	"testing"

	"ppj/internal/relation"
)

// fuzzResultWire gob-encodes a sequence of server-side delivery frames into
// one raw byte stream — the shape FetchResult reads off the session.
func fuzzResultWire(t testing.TB, frames ...interface{}) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, fr := range frames {
		if err := enc.Encode(fr); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzResultStream aims hostile bytes at the recipient side of streamed
// delivery: FetchResult decodes a begin frame and then chunk/end envelopes
// from an attacker-controlled gob stream. Whatever arrives — truncated
// gobs, skewed resume offsets, chunk frames full of garbage ciphertext,
// envelopes carrying both or neither of chunk and end — the fetch must
// terminate in an error without panicking, and the only way it may report
// success is a verified, completed stream (Done set, totals checked).
func FuzzResultStream(f *testing.F) {
	schema, err := relation.NewSchema(relation.Attr{Name: "key", Type: relation.Int64})
	if err != nil {
		f.Fatal(err)
	}
	// Seeds straddle the interesting frontiers: an in-band failure verdict,
	// a valid empty stream, a resume-offset mismatch, a chunk of garbage
	// ciphertext, a malformed envelope, and plain gob rubble.
	f.Add(uint32(0), fuzzResultWire(f, resultBeginMsg{ContractID: "fz", Err: "join blew up"}))
	f.Add(uint32(0), fuzzResultWire(f,
		resultBeginMsg{ContractID: "fz", Schema: toWire(schema)},
		resultFrameMsg{End: &resultEndMsg{}}))
	f.Add(uint32(3), fuzzResultWire(f, resultBeginMsg{ContractID: "fz", Schema: toWire(schema), StartChunk: 1, TotalChunks: 4}))
	f.Add(uint32(0), fuzzResultWire(f,
		resultBeginMsg{ContractID: "fz", Schema: toWire(schema), TotalChunks: 1, TotalRows: 1, StreamRows: 1},
		resultFrameMsg{Chunk: &resultChunkMsg{Rows: [][]byte{{1, 2, 3}}}}))
	f.Add(uint32(0), fuzzResultWire(f,
		resultBeginMsg{ContractID: "fz", Schema: toWire(schema), TotalChunks: 1, TotalRows: 1, StreamRows: 1},
		resultFrameMsg{}))
	f.Add(uint32(0), fuzzResultWire(f, resultBeginMsg{ContractID: "fz", Agg: []byte{0xde, 0xad}}))
	f.Add(uint32(1), []byte{0x42, 0x00, 0xff})
	f.Add(uint32(0), []byte{})

	f.Fuzz(func(t *testing.T, resume uint32, raw []byte) {
		opener, err := newSessionSealer(make([]byte, 16), 's')
		if err != nil {
			t.Fatal(err)
		}
		sess := &Session{
			enc:    gob.NewEncoder(io.Discard),
			dec:    gob.NewDecoder(bytes.NewReader(raw)),
			opener: opener,
			proto:  ProtoStreamedResult,
		}
		cs := &ClientSession{sess: sess}
		fetch := &ResultFetch{Chunks: resume % 8}
		if err := cs.FetchResult(fetch); err == nil {
			// The stream was admitted: that is only legitimate for a
			// completed, totals-verified fetch.
			if !fetch.Done {
				t.Fatal("fetch returned nil without completing")
			}
			if fetch.Agg == nil && fetch.Rows == nil {
				t.Fatal("completed fetch carries neither rows nor aggregate")
			}
		}
	})
}
