// Package service implements the paper's secure information-sharing service
// (§3.2): a service provider consisting of an untrusted host H with an
// attached secure coprocessor T, and any number of service requestors —
// data owners who submit encrypted relations, and a designated recipient
// P_C who receives the join result. The only trusted component is the
// coprocessor: providers verify its outbound authentication (§2.2.2/§3.3.3)
// before releasing data, establish per-party session keys with it over
// X25519, and encrypt their tuples so the host never sees plaintext. A
// digital contract signed by all data owners prescribes what is joined, how,
// and who receives the result (§3.3.3); T is its arbiter.
package service

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"

	"ppj/internal/core"
	"ppj/internal/ocb"
	"ppj/internal/relation"
)

// Role distinguishes the two kinds of service requestors.
type Role string

const (
	// RoleProvider submits a relation.
	RoleProvider Role = "provider"
	// RoleRecipient receives the join result.
	RoleRecipient Role = "recipient"
)

// PredicateSpec names a join predicate in a contract. The coprocessor
// instantiates it against the submitted schemas.
type PredicateSpec struct {
	// Kind is one of "equi", "band", "lessthan", "jaccard".
	Kind string
	// AttrA and AttrB name the join attributes of the first and second
	// relation.
	AttrA, AttrB string
	// Param carries the band width or Jaccard threshold.
	Param float64
}

// Build instantiates the predicate for two schemas.
func (p PredicateSpec) Build(sa, sb *relation.Schema) (relation.Predicate, error) {
	switch p.Kind {
	case "equi":
		return relation.NewEqui(sa, p.AttrA, sb, p.AttrB)
	case "band":
		return relation.NewBand(sa, p.AttrA, sb, p.AttrB, p.Param)
	case "lessthan":
		return relation.NewLessThan(sa, p.AttrA, sb, p.AttrB)
	case "jaccard":
		return relation.NewJaccard(sa, p.AttrA, sb, p.AttrB, p.Param)
	default:
		return nil, fmt.Errorf("service: unknown predicate kind %q", p.Kind)
	}
}

// Party identifies a contract participant by name and ed25519 identity.
type Party struct {
	Name     string
	Identity ed25519.PublicKey
	Role     Role
}

// AggregateSpec names an aggregate computation in a contract: the
// statistic kind (COUNT, SUM, MIN, MAX, AVG), and for all but COUNT the
// provider index and attribute aggregated over.
type AggregateSpec struct {
	Kind  string
	Table int
	Attr  string
}

// Contract is the digital contract of §3.3.3 "prescribing what data can be
// shared and which computations are permissible". Data owners co-sign it;
// the coprocessor holds a copy and serves as its arbiter.
type Contract struct {
	ID        string
	Parties   []Party
	Predicate PredicateSpec
	// Algorithm selects the join algorithm: "alg1".."alg7", "auto" to let
	// the cost-model planner pick, or "aggregate" to compute only the
	// contracted statistic (the recipient then learns one number, never the
	// joined rows).
	Algorithm string
	// Epsilon is Algorithm 6's privacy trade-off parameter.
	Epsilon float64
	// Aggregate is required when Algorithm is "aggregate".
	Aggregate AggregateSpec
	// Tenant names the account the contract runs under, for per-tenant
	// admission quotas (max in-flight jobs, submission rate). Empty — the
	// value old encoders produce — selects the anonymous tenant and leaves
	// SigningPayload unchanged, so existing signed contracts stay valid.
	Tenant string
	// Priority is the contract's scheduling class under the server's
	// fair-share scheduler: positive runs before the tenant's normal work,
	// negative after it. Zero — the value old encoders produce — is the
	// normal class and leaves SigningPayload unchanged, so existing signed
	// contracts stay valid.
	Priority int
	// Signatures[i] is party i's signature over SigningPayload (data owners
	// must sign; the recipient's signature is optional).
	Signatures [][]byte
}

// SigningPayload serialises the signed portion of the contract.
func (c *Contract) SigningPayload() []byte {
	h := sha256.New()
	io.WriteString(h, c.ID)
	for _, p := range c.Parties {
		io.WriteString(h, p.Name)
		io.WriteString(h, string(p.Role))
		h.Write(p.Identity)
	}
	io.WriteString(h, c.Predicate.Kind)
	io.WriteString(h, c.Predicate.AttrA)
	io.WriteString(h, c.Predicate.AttrB)
	fmt.Fprintf(h, "%g", c.Predicate.Param)
	io.WriteString(h, c.Algorithm)
	fmt.Fprintf(h, "%g", c.Epsilon)
	io.WriteString(h, c.Aggregate.Kind)
	fmt.Fprintf(h, "%d", c.Aggregate.Table)
	io.WriteString(h, c.Aggregate.Attr)
	// Appended last so contracts with no tenant hash exactly as they did
	// before the field existed; likewise priority is only hashed when
	// non-zero, keeping default-class contracts byte-compatible.
	io.WriteString(h, c.Tenant)
	if c.Priority != 0 {
		fmt.Fprintf(h, "priority:%d", c.Priority)
	}
	return h.Sum(nil)
}

// Sign appends party i's signature.
func (c *Contract) Sign(i int, key ed25519.PrivateKey) {
	for len(c.Signatures) <= i {
		c.Signatures = append(c.Signatures, nil)
	}
	c.Signatures[i] = ed25519.Sign(key, c.SigningPayload())
}

// Verify checks that every data owner signed.
func (c *Contract) Verify() error {
	payload := c.SigningPayload()
	for i, p := range c.Parties {
		if p.Role != RoleProvider {
			continue
		}
		if i >= len(c.Signatures) || !ed25519.Verify(p.Identity, payload, c.Signatures[i]) {
			return fmt.Errorf("service: contract %s not signed by %s", c.ID, p.Name)
		}
	}
	return nil
}

// PartyIndex finds a named party.
func (c *Contract) PartyIndex(name string) int {
	for i, p := range c.Parties {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// --- Wire messages (gob-encoded over the connection) ---

// Hello opens a session. ContractID names the contract the requestor wants
// to act under, so one listener can serve many contracts (the multi-tenant
// server in internal/server routes sessions by it). An empty ContractID is
// accepted by single-contract services for backward compatibility.
type Hello struct {
	Party      string
	Role       Role
	Challenge  []byte // attestation nonce
	ContractID string
	// Proto is the protocol version the requestor speaks: ProtoLegacy
	// (one-shot dataMsg upload and one-shot result), ProtoChunked (windowed
	// chunk-stream upload), or ProtoStreamedResult (chunked upload plus
	// streamed, resumable result delivery). Hellos from old clients
	// gob-decode without the field, landing on ProtoLegacy — now refused
	// for uploads unless the service opts in (AllowLegacyUpload).
	Proto byte
	// ResumeChunks is a recipient's resume offset in whole result chunks:
	// the server starts the result stream at this chunk instead of 0, so a
	// recipient that disconnected mid-delivery — even across a server
	// restart — fetches only what it is missing. Meaningful only for
	// RoleRecipient hellos at ProtoStreamedResult.
	ResumeChunks uint32
	// JobID addresses one execution of the contract when the contract has
	// been resubmitted (see server.Resubmit). Empty — what every pre-job
	// client sends — routes to the contract's latest execution, so old
	// clients keep working against re-executed contracts.
	JobID string
}

// serverAuthMsg carries the device attestation and the service's ephemeral
// key-agreement public key, signed by the attested application layer so the
// session binds to the attested code.
type serverAuthMsg struct {
	AttChainGob []byte // gob-encoded secop.Attestation
	ECDHPub     []byte
	Sig         []byte // app-layer signature over Challenge || ECDHPub
}

// clientKeyMsg completes key agreement and authenticates the client.
type clientKeyMsg struct {
	ECDHPub []byte
	Sig     []byte // identity signature over serverECDHPub || clientECDHPub
}

// schemaWire transports a schema as its attribute list.
type schemaWire struct {
	Attrs []relation.Attr
}

func toWire(s *relation.Schema) schemaWire {
	attrs := make([]relation.Attr, s.NumAttrs())
	for i := range attrs {
		attrs[i] = s.Attr(i)
	}
	return schemaWire{Attrs: attrs}
}

func (w schemaWire) schema() (*relation.Schema, error) {
	return relation.NewSchema(w.Attrs...)
}

// dataMsg is a ProtoLegacy provider upload: the whole relation in one
// message, each row sealed under the session key and prepended with the
// contract ID inside the plaintext ("Each party prepends its relation with
// the contract ID and encrypts the two together as one message", §3.3.3 —
// here per row, binding every ciphertext to the contract). ProtoChunked
// clients stream the same sealed rows as uploadChunkMsg frames instead; the
// one-shot form stays accepted for one release.
type dataMsg struct {
	ContractID string
	Schema     schemaWire
	Rows       [][]byte
}

// resultMsg delivers the join result to the recipient: rows sealed under
// the recipient's session key (decoys already removed by T for the exact
// algorithms; flagged oTuples for the Chapter 4 algorithms). For aggregate
// contracts, Agg carries the single sealed statistic instead of rows.
type resultMsg struct {
	ContractID string
	Schema     schemaWire
	Rows       [][]byte
	// Padded reports that rows are oTuples (flag byte + payload) rather
	// than bare encodings.
	Padded bool
	// Agg is the sealed aggregate payload (count:8 | value:8 | valid:1)
	// when the contract computes a statistic.
	Agg []byte
	Err string
}

// Session wraps a connection with gob codecs, the directional session
// sealers (sealer encrypts outgoing payloads, opener decrypts incoming),
// and the upload protocol version negotiated in the hello.
type Session struct {
	enc    *gob.Encoder
	dec    *gob.Decoder
	sealer *sessionSealer
	opener *sessionSealer
	proto  byte
}

func newSession(rw io.ReadWriter) *Session {
	return &Session{enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw)}
}

// ReadHello reads the opening message of a session without answering it.
// The caller routes on Hello.ContractID (and may then complete the
// handshake with the matching service's Handshake).
func ReadHello(conn io.ReadWriter) (*Session, Hello, error) {
	sess := newSession(conn)
	var hello Hello
	if err := sess.dec.Decode(&hello); err != nil {
		return nil, Hello{}, fmt.Errorf("service: reading hello: %w", err)
	}
	sess.proto = hello.Proto
	return sess, hello, nil
}

// sessionSealer is OCB under the derived session key with a counter nonce
// per direction.
type sessionSealer struct {
	mode *ocb.Mode
	dir  byte
	ctr  uint64
}

func newSessionSealer(key []byte, dir byte) (*sessionSealer, error) {
	m, err := ocb.New(key)
	if err != nil {
		return nil, err
	}
	return &sessionSealer{mode: m, dir: dir}, nil
}

func (s *sessionSealer) seal(pt []byte) []byte {
	s.ctr++
	var nonce [ocb.NonceSize]byte
	nonce[0] = s.dir
	for i := 0; i < 8; i++ {
		nonce[ocb.NonceSize-1-i] = byte(s.ctr >> (8 * i))
	}
	out := make([]byte, ocb.NonceSize, ocb.NonceSize+len(pt)+ocb.TagSize)
	copy(out, nonce[:])
	return s.mode.Seal(out, nonce, pt)
}

func (s *sessionSealer) open(ct []byte) ([]byte, error) {
	if len(ct) < ocb.NonceSize+ocb.TagSize {
		return nil, errors.New("service: short ciphertext")
	}
	var nonce [ocb.NonceSize]byte
	copy(nonce[:], ct[:ocb.NonceSize])
	return s.mode.Open(nil, nonce, ct[ocb.NonceSize:])
}

// deriveSessionKey hashes the ECDH shared secret with the transcript.
func deriveSessionKey(shared, serverPub, clientPub []byte) []byte {
	h := sha256.New()
	h.Write([]byte("ppj-session-v1"))
	h.Write(shared)
	h.Write(serverPub)
	h.Write(clientPub)
	return h.Sum(nil)[:16]
}

// newECDHKey draws an ephemeral X25519 key.
func newECDHKey() (*ecdh.PrivateKey, error) {
	return ecdh.X25519().GenerateKey(rand.Reader)
}

// encodeAggCell serialises an aggregate result as count:8 | value:8 |
// valid:1.
func encodeAggCell(res core.AggResult) []byte {
	cell := make([]byte, 17)
	binary.BigEndian.PutUint64(cell[0:], uint64(res.Count))
	binary.BigEndian.PutUint64(cell[8:], math.Float64bits(res.Value))
	if res.Valid {
		cell[16] = 1
	}
	return cell
}

// decodeAggCell parses an aggregate cell.
func decodeAggCell(cell []byte) (AggOutcome, error) {
	if len(cell) != 17 {
		return AggOutcome{}, fmt.Errorf("service: aggregate cell is %d bytes, want 17", len(cell))
	}
	return AggOutcome{
		Count: int64(binary.BigEndian.Uint64(cell[0:])),
		Value: math.Float64frombits(binary.BigEndian.Uint64(cell[8:])),
		Valid: cell[16] == 1,
	}, nil
}
