package service

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"

	"ppj/internal/ocb"
	"ppj/internal/relation"
)

// The protocol version byte carried in the hello. Version 0 is the original
// one-shot upload: the provider's whole relation travels as a single dataMsg,
// so the host must buffer an arbitrarily large [][]byte before the first row
// is opened. Version 1 replaces it with a chunked stream — uploadBeginMsg,
// then fixed-budget uploadChunkMsg frames under a credit window, then
// uploadEndMsg — so server memory per connection is bounded by
// window × chunk bytes. Version 0's one-shot upload was accepted
// unconditionally for one release; it is now gated behind an explicit
// opt-in (Service.AllowLegacyUpload). Version 2 keeps version 1's upload
// framing and adds streamed, resumable result delivery (see result.go).
const (
	// ProtoLegacy is the one-shot dataMsg upload protocol.
	ProtoLegacy byte = 0
	// ProtoChunked is the windowed chunk-stream upload protocol.
	ProtoChunked byte = 1
)

const (
	// DefaultChunkRows is the producer's default chunk size in rows.
	DefaultChunkRows = 64
	// DefaultUploadWindow is the default credit window W: a provider may
	// have at most W unacknowledged chunks in flight, so the server never
	// buffers more than W·chunkBytes per connection.
	DefaultUploadWindow = 8
)

// Typed ingest errors. They are produced before a job leaves Uploading, so a
// refused upload never reaches a worker.
var (
	// ErrUploadTooLarge refuses an upload whose sealed bytes exceed the
	// configured budget, or whose stream carries more rows than its begin
	// frame declared (a lie upward past the admitted size).
	ErrUploadTooLarge = errors.New("service: upload exceeds size limit")
	// ErrUploadTruncated reports a stream that ended before delivering the
	// declared rows: an early EOF, a stall past the upload deadline, or an
	// end frame closing short of the begin frame's declaration.
	ErrUploadTruncated = errors.New("service: upload truncated")
	// ErrUploadFrame reports malformed chunk framing: out-of-order,
	// duplicated or replayed sequence numbers, a broken running CRC, or a
	// frame that is neither chunk nor end.
	ErrUploadFrame = errors.New("service: malformed upload frame")
	// ErrLegacyUploadDisabled refuses a ProtoLegacy one-shot upload on a
	// service that has not opted in. The compatibility window promised for
	// one release is over; operators who still need it enable it
	// explicitly (Service.AllowLegacyUpload, the server's -legacy-upload
	// flag).
	ErrLegacyUploadDisabled = errors.New("service: legacy one-shot upload is disabled (opt in with -legacy-upload)")
)

// crcTable is the Castagnoli table the running upload CRC chains over.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// minSealedRowBytes is the smallest wire size of one sealed row: nonce and
// tag plus at least one plaintext byte (every row carries the contract-ID
// prefix). Used to refuse impossible begin declarations before any chunk is
// read.
const minSealedRowBytes = int64(ocb.NonceSize + ocb.TagSize + 1)

// --- Wire frames (gob-encoded over the session connection) ---

// uploadBeginMsg opens a chunked upload: the contract binding and schema —
// checked before the first chunk is read, exactly as the one-shot path — and
// the declared row count the stream commits to.
type uploadBeginMsg struct {
	ContractID   string
	Schema       schemaWire
	DeclaredRows int64
}

// uploadChunkMsg carries one chunk of sealed rows. Seq is the 0-based chunk
// sequence number; CRC is the running Castagnoli CRC over every sealed row
// byte up to and including this chunk, chaining the frames together so a
// dropped, duplicated or reordered chunk is caught before any row is opened.
type uploadChunkMsg struct {
	Seq  uint32
	Rows [][]byte
	CRC  uint32
}

// uploadEndMsg closes the stream with the totals the receiver must agree
// with: frame count, row count, and the final running CRC.
type uploadEndMsg struct {
	Frames uint32
	Rows   int64
	CRC    uint32
}

// uploadFrameMsg is the stream envelope: exactly one of Chunk or End is set.
// (gob needs a single concrete type per Decode; the envelope keeps the
// frame stream self-describing.)
type uploadFrameMsg struct {
	Chunk *uploadChunkMsg
	End   *uploadEndMsg
}

// uploadAckMsg flows server → provider. The first ack after the begin frame
// is the credit grant (Window = W); each later ack reports the cumulative
// count of consumed chunks, returning credit. Done confirms a completed
// upload; a non-empty Err refuses the stream with the server's verdict so
// the producer fails fast instead of pushing rows at a dead session.
type uploadAckMsg struct {
	Seq    uint32
	Window int
	Done   bool
	Err    string
}

// --- Framing state machine ---

// chunkAssembler validates the chunk framing of one upload stream: strict
// sequence numbers, the running CRC chain, the byte budget, and the
// declared-vs-actual row accounting. It is deliberately crypto-free and
// I/O-free so the fuzzer can drive it directly; the consumer feeds it frames
// in arrival order and opens rows only after a chunk passes.
type chunkAssembler struct {
	declared int64 // rows the begin frame committed to
	maxBytes int64 // sealed-byte budget; 0 = unbounded
	next     uint32
	rows     int64
	bytes    int64
	crc      uint32
	done     bool
}

// newChunkAssembler starts the state machine for a validated begin frame.
func newChunkAssembler(declaredRows, maxBytes int64) (*chunkAssembler, error) {
	if declaredRows < 0 {
		return nil, fmt.Errorf("%w: negative declared row count %d", ErrUploadFrame, declaredRows)
	}
	if maxBytes > 0 && declaredRows > maxBytes/minSealedRowBytes {
		return nil, fmt.Errorf("%w: %d declared rows cannot fit %d bytes", ErrUploadTooLarge, declaredRows, maxBytes)
	}
	return &chunkAssembler{declared: declaredRows, maxBytes: maxBytes}, nil
}

// chunk admits one chunk frame. On nil error the caller may open and append
// the chunk's rows; any error terminates the stream.
func (a *chunkAssembler) chunk(c *uploadChunkMsg) error {
	if a.done {
		return fmt.Errorf("%w: chunk %d after end frame", ErrUploadFrame, c.Seq)
	}
	if c.Seq != a.next {
		return fmt.Errorf("%w: chunk seq %d, want %d (duplicated, dropped or reordered frame)", ErrUploadFrame, c.Seq, a.next)
	}
	if len(c.Rows) == 0 {
		return fmt.Errorf("%w: chunk %d carries no rows", ErrUploadFrame, c.Seq)
	}
	for _, row := range c.Rows {
		a.bytes += int64(len(row))
		a.crc = crc32.Update(a.crc, crcTable, row)
	}
	a.rows += int64(len(c.Rows))
	if a.rows > a.declared {
		return fmt.Errorf("%w: %d rows exceed the %d declared", ErrUploadTooLarge, a.rows, a.declared)
	}
	if a.maxBytes > 0 && a.bytes > a.maxBytes {
		return fmt.Errorf("%w: %d sealed bytes exceed the %d-byte budget", ErrUploadTooLarge, a.bytes, a.maxBytes)
	}
	if c.CRC != a.crc {
		return fmt.Errorf("%w: chunk %d running CRC %08x, want %08x", ErrUploadFrame, c.Seq, c.CRC, a.crc)
	}
	a.next++
	return nil
}

// end closes the stream, checking the end frame's totals against what
// actually arrived and the actual rows against the declaration.
func (a *chunkAssembler) end(e *uploadEndMsg) error {
	if a.done {
		return fmt.Errorf("%w: second end frame", ErrUploadFrame)
	}
	if e.Frames != a.next {
		return fmt.Errorf("%w: end frame counts %d chunks, received %d", ErrUploadFrame, e.Frames, a.next)
	}
	if e.Rows != a.rows {
		return fmt.Errorf("%w: end frame counts %d rows, received %d", ErrUploadFrame, e.Rows, a.rows)
	}
	if e.CRC != a.crc {
		return fmt.Errorf("%w: final CRC %08x, want %08x", ErrUploadFrame, e.CRC, a.crc)
	}
	if a.rows < a.declared {
		return fmt.Errorf("%w: stream ended after %d of %d declared rows", ErrUploadTruncated, a.rows, a.declared)
	}
	a.done = true
	return nil
}

// --- Producer-side framing ---

// chunker emits the frames of one upload stream, maintaining the running
// CRC and sequence numbering the assembler verifies.
type chunker struct {
	seq uint32
	crc uint32
}

// frame wraps one chunk of sealed rows.
func (c *chunker) frame(rows [][]byte) *uploadChunkMsg {
	for _, r := range rows {
		c.crc = crc32.Update(c.crc, crcTable, r)
	}
	m := &uploadChunkMsg{Seq: c.seq, Rows: rows, CRC: c.crc}
	c.seq++
	return m
}

// endFrame closes the stream.
func (c *chunker) endFrame(rows int64) *uploadEndMsg {
	return &uploadEndMsg{Frames: c.seq, Rows: rows, CRC: c.crc}
}

// ackTracker accumulates the producer's view of the ack stream. A dedicated
// reader goroutine (run) decodes acks off the wire and publishes cumulative
// credit under the lock; the producer waits on the condition variable for
// the grant, for window credit, and for the final confirmation. The reader
// itself never blocks on anything but the wire, so the server's ack writes
// always find a consumer — the invariant that keeps a fully synchronous
// transport (net.Pipe) deadlock-free.
type ackTracker struct {
	mu      sync.Mutex
	cond    *sync.Cond
	seq     uint32 // cumulative chunks the server has consumed
	window  int    // granted credit window (meaningful once granted)
	granted bool
	done    bool
	err     error
}

func newAckTracker() *ackTracker {
	st := &ackTracker{}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// run decodes acks until the stream terminates (confirmation, refusal, or a
// dead wire), publishing each under the lock. If the producer abandons the
// stream first, the reader stays blocked on the decoder until the caller
// closes the connection — the session is not reusable after a failed upload.
func (st *ackTracker) run(dec *gob.Decoder) {
	for {
		var a uploadAckMsg
		err := dec.Decode(&a)
		if st.publish(a, err, "upload") {
			return
		}
	}
}

// waitGrant blocks until the server grants credit or refuses the stream.
func (st *ackTracker) waitGrant() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for !st.granted && st.err == nil {
		st.cond.Wait()
	}
	return st.err
}

// waitCredit blocks until the window admits chunk seq (fewer than W chunks
// unacknowledged), or the stream has died.
func (st *ackTracker) waitCredit(seq uint32) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for st.err == nil && int(seq)-int(st.seq) >= st.window {
		st.cond.Wait()
	}
	return st.err
}

// waitDone blocks until the server confirms the completed upload.
func (st *ackTracker) waitDone() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for st.err == nil && !st.done {
		st.cond.Wait()
	}
	return st.err
}

// --- Server-side incremental consumer ---

// decodedFrame is one message pulled off the wire by the reader goroutine.
type decodedFrame struct {
	begin *uploadBeginMsg
	chunk *uploadChunkMsg
	end   *uploadEndMsg
	err   error
}

// mapDecodeErr classifies a wire decode failure: a vanished peer is a
// truncated stream, anything else is malformed framing.
func mapDecodeErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("%w: %v", ErrUploadTruncated, err)
	}
	return fmt.Errorf("%w: %v", ErrUploadFrame, err)
}

// readUploadFrames decodes the begin frame and then the chunk/end envelope
// stream, handing each to the consumer. It runs in its own goroutine so the
// consumer can abandon a stalled stream on context expiry; quit unblocks it
// if the consumer exits first (the decoder itself unblocks when the caller
// closes the connection).
func readUploadFrames(sess *Session, frames chan<- decodedFrame, quit <-chan struct{}) {
	send := func(d decodedFrame) bool {
		select {
		case frames <- d:
			return true
		case <-quit:
			return false
		}
	}
	var begin uploadBeginMsg
	if err := sess.dec.Decode(&begin); err != nil {
		send(decodedFrame{err: mapDecodeErr(err)})
		return
	}
	if !send(decodedFrame{begin: &begin}) {
		return
	}
	for {
		// A fresh envelope per decode: gob omits zero fields, so reusing one
		// would leak the previous frame's pointers into the next.
		var f uploadFrameMsg
		if err := sess.dec.Decode(&f); err != nil {
			send(decodedFrame{err: mapDecodeErr(err)})
			return
		}
		switch {
		case f.Chunk != nil && f.End == nil:
			if !send(decodedFrame{chunk: f.Chunk}) {
				return
			}
		case f.End != nil && f.Chunk == nil:
			send(decodedFrame{end: f.End})
			return
		default:
			send(decodedFrame{err: fmt.Errorf("%w: envelope must carry exactly one of chunk or end", ErrUploadFrame)})
			return
		}
	}
}

// uploadWindow resolves the credit window this service grants.
func (s *Service) uploadWindow() int {
	if s.UploadWindow > 0 {
		return s.UploadWindow
	}
	return DefaultUploadWindow
}

// receiveChunked ingests one ProtoChunked upload: contract and schema are
// checked at the begin frame before any chunk is read, then rows are opened,
// contract-bound and appended chunk by chunk, with a cumulative ack after
// each consumed chunk returning window credit to the producer. The server
// holds at most one chunk of sealed rows at a time; the credit window bounds
// what the transport can pile up behind it. A context that expires
// mid-stream abandons the upload as truncated.
func (s *Service) receiveChunked(ctx context.Context, sess *Session) (*relation.Relation, error) {
	quit := make(chan struct{})
	defer close(quit)
	frames := make(chan decodedFrame)
	go readUploadFrames(sess, frames, quit)

	next := func() (decodedFrame, error) {
		select {
		case d := <-frames:
			return d, d.err
		case <-ctx.Done():
			return decodedFrame{}, fmt.Errorf("%w: %v", ErrUploadTruncated, ctx.Err())
		}
	}
	// nack tells the producer why the stream died (best effort — the peer
	// may already be gone) and returns the verdict.
	nack := func(err error) error {
		_ = sess.enc.Encode(uploadAckMsg{Err: err.Error()})
		return err
	}

	d, err := next()
	if err != nil {
		return nil, nack(err)
	}
	begin := d.begin
	if begin == nil {
		return nil, nack(fmt.Errorf("%w: stream must open with a begin frame", ErrUploadFrame))
	}
	if begin.ContractID != s.Contract.ID {
		return nil, nack(fmt.Errorf("upload for foreign contract %q", begin.ContractID))
	}
	schema, err := begin.Schema.schema()
	if err != nil {
		return nil, nack(err)
	}
	asm, err := newChunkAssembler(begin.DeclaredRows, s.MaxUploadBytes)
	if err != nil {
		return nil, nack(err)
	}
	window := s.uploadWindow()
	if err := sess.enc.Encode(uploadAckMsg{Seq: 0, Window: window}); err != nil {
		return nil, fmt.Errorf("%w: sending credit grant: %v", ErrUploadTruncated, err)
	}

	rel := relation.NewRelation(schema)
	for {
		d, err := next()
		if err != nil {
			return nil, nack(err)
		}
		switch {
		case d.chunk != nil:
			if s.chunkConsumeHook != nil {
				s.chunkConsumeHook(int(d.chunk.Seq))
			}
			if err := asm.chunk(d.chunk); err != nil {
				return nil, nack(err)
			}
			if err := appendSealedRows(sess, s.Contract.ID, rel, d.chunk.Rows); err != nil {
				return nil, nack(err)
			}
			// Cumulative ack: credit returns only after the rows are opened
			// and appended, so a slow consumer throttles the producer.
			_ = sess.enc.Encode(uploadAckMsg{Seq: asm.next, Window: window})
		case d.end != nil:
			if err := asm.end(d.end); err != nil {
				return nil, nack(err)
			}
			_ = sess.enc.Encode(uploadAckMsg{Seq: asm.next, Window: window, Done: true})
			return rel, nil
		default:
			return nil, nack(fmt.Errorf("%w: empty frame", ErrUploadFrame))
		}
	}
}

// receiveLegacy ingests a ProtoLegacy one-shot dataMsg upload. The whole
// relation arrives as one message (the §3.3.3 shape); the byte budget is
// still enforced before any row is opened so an oversize legacy upload
// cannot buy a full decrypt pass.
func (s *Service) receiveLegacy(sess *Session) (*relation.Relation, error) {
	var msg dataMsg
	if err := sess.dec.Decode(&msg); err != nil {
		return nil, err
	}
	if msg.ContractID != s.Contract.ID {
		return nil, fmt.Errorf("upload for foreign contract %q", msg.ContractID)
	}
	schema, err := msg.Schema.schema()
	if err != nil {
		return nil, err
	}
	if s.MaxUploadBytes > 0 {
		var total int64
		for _, ct := range msg.Rows {
			total += int64(len(ct))
		}
		if total > s.MaxUploadBytes {
			return nil, fmt.Errorf("%w: %d sealed bytes exceed the %d-byte budget", ErrUploadTooLarge, total, s.MaxUploadBytes)
		}
	}
	rel := relation.NewRelation(schema)
	if err := appendSealedRows(sess, s.Contract.ID, rel, msg.Rows); err != nil {
		return nil, err
	}
	return rel, nil
}

// appendSealedRows is the row-validation core shared by the legacy one-shot
// and chunked paths: every sealed row is opened with the session key inside
// T, checked for the contract binding, decoded against the schema, and
// appended. Both ingest paths funnel through here, so the privacy argument
// (T's access pattern depends only on public sizes) is identical for either
// framing.
func appendSealedRows(sess *Session, contractID string, rel *relation.Relation, rows [][]byte) error {
	prefix := []byte(contractID)
	base := rel.Len()
	for i, ct := range rows {
		pt, err := sess.opener.open(ct)
		if err != nil {
			return fmt.Errorf("row %d: %w", base+i, err)
		}
		if !bytes.HasPrefix(pt, prefix) {
			return fmt.Errorf("row %d not bound to contract", base+i)
		}
		row, err := rel.Schema.Decode(pt[len(prefix):])
		if err != nil {
			return fmt.Errorf("row %d: %w", base+i, err)
		}
		if err := rel.Append(row); err != nil {
			return err
		}
	}
	return nil
}
