package service

import (
	"encoding/gob"
	"errors"
	"fmt"

	"ppj/internal/core"
	"ppj/internal/relation"
)

// Streamed result delivery (protocol version 2) mirrors the chunked upload
// protocol on the way out. One-shot delivery serialises the whole sealed
// result into a single resultMsg, so a recipient that disconnects mid-read
// loses everything and the host must hold the full [][]byte for the
// slowest reader. Version 2 streams resultBeginMsg, then fixed-size
// resultChunkMsg frames chained by a running CRC-32C under a
// recipient-granted credit window, then resultEndMsg with the totals. The
// hello carries a resume offset in whole chunks, so a recipient can
// disconnect — or outlive a server restart — and re-fetch only what it is
// missing; rows are re-sealed under the new session key, and the byte
// identity the property tests pin is of the reassembled plaintext.

// ProtoStreamedResult is the protocol version whose result delivery is the
// resumable chunk stream. Upload framing is ProtoChunked's.
const ProtoStreamedResult byte = 2

const (
	// ResultChunkRows is the fixed rows-per-chunk of streamed delivery. It
	// is deliberately not negotiable: the chunk sequence of a delivery must
	// be a function of public sizes only (chunk count = ceil(rows/64)), so
	// framing can never leak anything content-dependent, and a resume
	// offset recorded against one connection means the same rows on the
	// next.
	ResultChunkRows = DefaultChunkRows
	// DefaultResultWindow is the credit window a recipient grants the
	// server: at most W unacknowledged chunks in flight, bounding what a
	// slow recipient forces the transport to buffer.
	DefaultResultWindow = 8
)

// Typed delivery errors, the outbound mirror of the upload verdicts.
var (
	// ErrResultFrame reports malformed result framing: out-of-order or
	// replayed sequence numbers, a broken CRC chain, an envelope carrying
	// neither chunk nor end.
	ErrResultFrame = errors.New("service: malformed result frame")
	// ErrResultTruncated reports a result stream that died before the end
	// frame — the peer vanished or the connection broke. The fetch is
	// resumable from ResultFetch.Chunks.
	ErrResultTruncated = errors.New("service: result stream truncated")
	// ErrFetchPaused reports a fetch deliberately stopped after
	// ResultFetch.PauseAfter chunks; reconnect with the fetch's Chunks
	// offset to continue.
	ErrFetchPaused = errors.New("service: result fetch paused")
)

// --- Wire frames (gob-encoded over the session connection) ---

// resultBeginMsg opens a streamed delivery: the contract binding, the
// result schema, the aggregate or failure verdict when there are no rows
// to stream, and the stream geometry — total chunks and rows of the whole
// result, the resume offset the server honoured, and the rows this stream
// will actually carry (the assembler's declaration).
type resultBeginMsg struct {
	ContractID string
	Schema     schemaWire
	Padded     bool
	// Agg is the sealed aggregate cell for "aggregate" contracts; such a
	// delivery streams zero chunks.
	Agg []byte
	// Err is the join failure verdict; nothing follows a non-empty Err.
	Err string
	// TotalChunks and TotalRows describe the complete result.
	TotalChunks uint32
	TotalRows   int64
	// StartChunk is the resume offset this stream starts at (0 on a fresh
	// fetch); chunk sequence numbers on the wire are relative to it.
	StartChunk uint32
	// StreamRows is the row count this stream declares, i.e. the rows of
	// chunks StartChunk..TotalChunks.
	StreamRows int64
}

// resultChunkMsg carries one chunk of rows sealed under the recipient's
// session key. Seq is 0-based relative to the begin frame's StartChunk;
// CRC is the running Castagnoli CRC over every sealed row byte of this
// stream so far — the same chaining as the upload path, restarted per
// stream because rows are re-sealed per session.
type resultChunkMsg struct {
	Seq  uint32
	Rows [][]byte
	CRC  uint32
}

// resultEndMsg closes the stream with the totals the recipient must agree
// with.
type resultEndMsg struct {
	Frames uint32
	Rows   int64
	CRC    uint32
}

// resultFrameMsg is the stream envelope: exactly one of Chunk or End set.
type resultFrameMsg struct {
	Chunk *resultChunkMsg
	End   *resultEndMsg
}

// resultAckMsg flows recipient → server. The first ack after the begin
// frame is the credit grant; later acks report the cumulative count of
// consumed chunks. Done confirms the completed fetch; a non-empty Err
// aborts the stream with the recipient's verdict.
type resultAckMsg struct {
	Seq    uint32
	Window int
	Done   bool
	Err    string
}

// publish folds one decoded ack (or its decode error) into the tracker,
// waking waiters; it returns true when the stream is terminal. Shared by
// the upload ack reader and the result ack reader — the credit protocol is
// identical in both directions.
func (st *ackTracker) publish(a uploadAckMsg, err error, what string) bool {
	st.mu.Lock()
	switch {
	case err != nil:
		st.err = fmt.Errorf("service: reading %s ack: %w", what, err)
	case a.Err != "":
		st.err = fmt.Errorf("service: %s refused: %s", what, a.Err)
	default:
		if !st.granted {
			st.granted = true
			st.window = a.Window
			if st.window < 1 {
				st.window = 1
			}
		}
		if a.Seq > st.seq {
			st.seq = a.Seq
		}
		if a.Done {
			st.done = true
		}
	}
	terminal := st.err != nil || st.done
	st.cond.Broadcast()
	st.mu.Unlock()
	return terminal
}

// runResult decodes result acks until the stream terminates, publishing
// each — the server-side twin of the upload ack reader, and under the same
// invariant: never stop consuming the wire, so the recipient's ack writes
// always find a reader even on a fully synchronous transport.
func (st *ackTracker) runResult(dec *gob.Decoder) {
	for {
		var a resultAckMsg
		err := dec.Decode(&a)
		if st.publish(uploadAckMsg{Seq: a.Seq, Window: a.Window, Done: a.Done, Err: a.Err}, err, "delivery") {
			return
		}
	}
}

// mapResultDecodeErr classifies a wire decode failure on the result
// stream: a vanished peer is a truncated (resumable) stream, anything else
// is malformed framing.
func mapResultDecodeErr(err error) error {
	if errors.Is(mapDecodeErr(err), ErrUploadTruncated) {
		return fmt.Errorf("%w: %v", ErrResultTruncated, err)
	}
	return fmt.Errorf("%w: %v", ErrResultFrame, err)
}

// DeliverStream seals an outcome under a recipient session and streams it
// from startChunk: begin frame, credit grant, chunk frames under the
// window, end frame, done ack. Failure verdicts and aggregate results
// travel in the begin frame (zero chunks follow an aggregate; nothing
// follows a failure). Rows are re-sealed per session, so a resumed stream
// is fresh ciphertext over the same plaintext suffix. Legacy sessions fall
// back to the one-shot resultMsg, ignoring startChunk.
func (s *Service) DeliverStream(sess *Session, out Outcome, startChunk uint32) error {
	if sess.proto < ProtoStreamedResult {
		return s.deliverOneShot(sess, out)
	}
	begin := resultBeginMsg{ContractID: s.Contract.ID, Padded: out.Padded}
	if out.Err != nil {
		begin.Err = out.Err.Error()
		if err := sess.enc.Encode(begin); err != nil {
			return fmt.Errorf("service: sending result begin: %w", err)
		}
		return nil // the verdict is the delivery
	}
	total := uint32((len(out.Rows) + ResultChunkRows - 1) / ResultChunkRows)
	if startChunk > total {
		begin.Err = fmt.Sprintf("resume offset %d beyond the result's %d chunks", startChunk, total)
		_ = sess.enc.Encode(begin)
		return fmt.Errorf("service: %s", begin.Err)
	}
	if out.Agg != nil {
		begin.Agg = sess.sealer.seal(out.Agg)
	} else {
		begin.Schema = toWire(out.Schema)
	}
	// startChunk == total is a legal resume point (every chunk consumed,
	// end frame lost); with a partial last chunk the row offset must clamp
	// to the row count or the declared stream length goes negative.
	startRow := int(startChunk) * ResultChunkRows
	if startRow > len(out.Rows) {
		startRow = len(out.Rows)
	}
	begin.TotalChunks = total
	begin.TotalRows = int64(len(out.Rows))
	begin.StartChunk = startChunk
	begin.StreamRows = int64(len(out.Rows) - startRow)
	if err := sess.enc.Encode(begin); err != nil {
		return fmt.Errorf("service: sending result begin: %w", err)
	}

	st := newAckTracker()
	go st.runResult(sess.dec)
	if err := st.waitGrant(); err != nil {
		return err
	}
	var ck chunker
	for off := startRow; off < len(out.Rows); off += ResultChunkRows {
		if err := st.waitCredit(ck.seq); err != nil {
			return err
		}
		hi := off + ResultChunkRows
		if hi > len(out.Rows) {
			hi = len(out.Rows)
		}
		sealed := make([][]byte, 0, hi-off)
		for _, r := range out.Rows[off:hi] {
			sealed = append(sealed, sess.sealer.seal(r))
		}
		c := ck.frame(sealed)
		if err := sess.enc.Encode(resultFrameMsg{Chunk: &resultChunkMsg{Seq: c.Seq, Rows: c.Rows, CRC: c.CRC}}); err != nil {
			return fmt.Errorf("service: sending result chunk %d: %w", c.Seq, err)
		}
	}
	e := ck.endFrame(begin.StreamRows)
	if err := sess.enc.Encode(resultFrameMsg{End: &resultEndMsg{Frames: e.Frames, Rows: e.Rows, CRC: e.CRC}}); err != nil {
		return fmt.Errorf("service: sending result end: %w", err)
	}
	return st.waitDone()
}

// ResultFetch accumulates one recipient's fetch of a result across any
// number of connections. Zero value starts a fresh fetch; after a broken
// or paused stream, reconnect with ConnectContractResume(..., f.Chunks)
// and call FetchResult with the same value to fetch only the remainder.
type ResultFetch struct {
	// Chunks counts whole result chunks consumed so far — the resume
	// offset to put in the next hello.
	Chunks uint32
	// Rows accumulates the decrypted, decoy-filtered join rows.
	Rows *relation.Relation
	// Agg holds the aggregate outcome once an "aggregate" contract's
	// delivery completes.
	Agg *AggOutcome
	// Done reports that the end frame was verified and acknowledged.
	Done bool
	// PauseAfter, when positive, stops the fetch with ErrFetchPaused after
	// that many additional chunks, leaving it resumable — the deliberate
	// disconnect the resume tests drive, usable by real clients as a flow
	// valve.
	PauseAfter uint32
}

// FetchResult runs the recipient side of one streamed delivery on a
// ProtoStreamedResult session: read the begin frame, grant credit, verify
// and decrypt each chunk against the running CRC chain, acknowledge it,
// and verify the end totals. The fetch state lands in f.
func (cs *ClientSession) FetchResult(f *ResultFetch) error {
	sess := cs.sess
	if sess.proto < ProtoStreamedResult {
		return errors.New("service: session does not speak streamed result delivery")
	}
	var begin resultBeginMsg
	if err := sess.dec.Decode(&begin); err != nil {
		return mapResultDecodeErr(err)
	}
	if begin.Err != "" {
		return fmt.Errorf("service: join failed: %s", begin.Err)
	}
	if begin.StartChunk != f.Chunks {
		return fmt.Errorf("%w: server resumed at chunk %d, want %d", ErrResultFrame, begin.StartChunk, f.Chunks)
	}
	var schema *relation.Schema
	if begin.Agg != nil {
		cell, err := sess.opener.open(begin.Agg)
		if err != nil {
			return fmt.Errorf("service: aggregate cell: %w", err)
		}
		agg, err := decodeAggCell(cell)
		if err != nil {
			return err
		}
		f.Agg = &agg
	} else {
		var err error
		schema, err = begin.Schema.schema()
		if err != nil {
			return err
		}
		if f.Rows == nil {
			f.Rows = relation.NewRelation(schema)
		}
	}
	asm, err := newChunkAssembler(begin.StreamRows, 0)
	if err != nil {
		return err
	}
	// nack tells the server why the fetch died (best effort) and returns
	// the verdict.
	nack := func(err error) error {
		_ = sess.enc.Encode(resultAckMsg{Err: err.Error()})
		return err
	}
	// The grant: the server streams nothing until the recipient commits to
	// consuming.
	if err := sess.enc.Encode(resultAckMsg{Window: DefaultResultWindow}); err != nil {
		return fmt.Errorf("%w: sending credit grant: %v", ErrResultTruncated, err)
	}
	var fetched uint32
	for {
		// Fresh envelope per decode: gob omits zero fields, so a reused one
		// would leak the previous frame's pointers into the next.
		var frame resultFrameMsg
		if err := sess.dec.Decode(&frame); err != nil {
			return mapResultDecodeErr(err)
		}
		switch {
		case frame.Chunk != nil && frame.End == nil:
			if schema == nil {
				return nack(fmt.Errorf("%w: chunk frame on an aggregate delivery", ErrResultFrame))
			}
			c := uploadChunkMsg{Seq: frame.Chunk.Seq, Rows: frame.Chunk.Rows, CRC: frame.Chunk.CRC}
			if err := asm.chunk(&c); err != nil {
				return nack(resultVerdict(err))
			}
			for i, ct := range frame.Chunk.Rows {
				cell, err := sess.opener.open(ct)
				if err != nil {
					return nack(fmt.Errorf("service: result row %d: %w", i, err))
				}
				if !core.IsReal(cell) {
					continue // decoy: "decrypted and filtered out by the recipient" (§4.3)
				}
				row, err := schema.Decode(core.Payload(cell))
				if err != nil {
					return nack(fmt.Errorf("service: result row %d: %w", i, err))
				}
				if err := f.Rows.Append(row); err != nil {
					return nack(err)
				}
			}
			f.Chunks = begin.StartChunk + asm.next
			fetched++
			_ = sess.enc.Encode(resultAckMsg{Seq: asm.next, Window: DefaultResultWindow})
			if f.PauseAfter > 0 && fetched >= f.PauseAfter && f.Chunks < begin.TotalChunks {
				return ErrFetchPaused
			}
		case frame.End != nil && frame.Chunk == nil:
			e := uploadEndMsg{Frames: frame.End.Frames, Rows: frame.End.Rows, CRC: frame.End.CRC}
			if err := asm.end(&e); err != nil {
				return nack(resultVerdict(err))
			}
			_ = sess.enc.Encode(resultAckMsg{Seq: asm.next, Done: true})
			f.Chunks = begin.TotalChunks
			f.Done = true
			return nil
		default:
			return nack(fmt.Errorf("%w: envelope must carry exactly one of chunk or end", ErrResultFrame))
		}
	}
}

// resultVerdict maps the shared assembler's upload-typed verdicts onto the
// result-stream sentinels, so callers match on delivery errors without
// knowing the state machine is shared.
func resultVerdict(err error) error {
	switch {
	case errors.Is(err, ErrUploadFrame), errors.Is(err, ErrUploadTooLarge):
		return fmt.Errorf("%w: %v", ErrResultFrame, err)
	case errors.Is(err, ErrUploadTruncated):
		return fmt.Errorf("%w: %v", ErrResultTruncated, err)
	}
	return err
}
