package service

import (
	"encoding/json"
	"fmt"
	"io"
)

// Contracts are long-lived artefacts — "contracts are kept encrypted at the
// server" (§3.3.3) — so they need a stable serialisation that parties can
// sign, archive and re-verify. JSON is used here; the signatures cover
// SigningPayload (a canonical hash of the fields), not the JSON bytes, so
// formatting is irrelevant to validity.

// MarshalContract serialises a contract (including signatures).
func MarshalContract(c *Contract) ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// UnmarshalContract parses a serialised contract and re-checks its data
// owners' signatures.
func UnmarshalContract(data []byte) (*Contract, error) {
	var c Contract
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("service: parsing contract: %w", err)
	}
	if err := c.Verify(); err != nil {
		return nil, err
	}
	return &c, nil
}

// WriteContract writes a contract to w.
func WriteContract(w io.Writer, c *Contract) error {
	data, err := MarshalContract(c)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadContract reads and verifies a contract from r.
func ReadContract(r io.Reader) (*Contract, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return UnmarshalContract(data)
}
