package mlfsr

import (
	"testing"
	"testing/quick"
)

func TestLFSRMaximalPeriod(t *testing.T) {
	// Every supported width up to 20 bits must cycle through all 2^l − 1
	// non-zero states exactly once (exhaustive check).
	for l := uint(2); l <= 20; l++ {
		r, err := New(l, 1)
		if err != nil {
			t.Fatalf("width %d: %v", l, err)
		}
		period := r.Period()
		seen := make([]bool, period+1)
		seen[r.state] = true
		count := uint64(1)
		for {
			v := r.Next()
			if v == 0 {
				t.Fatalf("width %d: register reached zero state", l)
			}
			if seen[v] {
				break
			}
			seen[v] = true
			count++
		}
		if count != period {
			t.Fatalf("width %d: period %d, want %d", l, count, period)
		}
	}
}

func TestLFSRMaximalPeriodWideWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("wide-width period check is slow")
	}
	// For wider registers, exhaustively verifying 2^l−1 is infeasible; check
	// a necessary condition instead: the sequence does not return to the
	// seed within 4·l·1000 steps (a short cycle would).
	for l := uint(21); l <= 40; l++ {
		r, err := New(l, 12345)
		if err != nil {
			t.Fatalf("width %d: %v", l, err)
		}
		first := r.state
		for i := 0; i < int(l)*4000; i++ {
			if r.Next() == first {
				t.Fatalf("width %d: premature cycle after %d steps", l, i+1)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 1); err == nil {
		t.Error("width 1 accepted")
	}
	if _, err := New(41, 1); err == nil {
		t.Error("width 41 accepted")
	}
	r, err := New(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.state == 0 {
		t.Error("zero seed not corrected")
	}
	if r.Bits() != 8 {
		t.Errorf("Bits = %d", r.Bits())
	}
}

func TestPermutationVisitsAllOnce(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 4, 5, 7, 8, 100, 1000, 1 << 12, (1 << 12) + 77} {
		p, err := NewPermutation(n, 42)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		seen := make([]bool, n)
		for i := uint64(0); i < n; i++ {
			v, ok := p.Next()
			if !ok {
				t.Fatalf("n=%d: Next exhausted after %d of %d", n, i, n)
			}
			if v >= n {
				t.Fatalf("n=%d: index %d out of range", n, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: index %d repeated", n, v)
			}
			seen[v] = true
		}
		if _, ok := p.Next(); ok {
			t.Fatalf("n=%d: Next produced more than n values", n)
		}
	}
}

func TestPermutationDeterministicInSeed(t *testing.T) {
	collect := func(seed uint64) []uint64 {
		p, err := NewPermutation(500, seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []uint64
		for {
			v, ok := p.Next()
			if !ok {
				break
			}
			out = append(out, v)
		}
		return out
	}
	a, b := collect(7), collect(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different orders")
		}
	}
	c := collect(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the same order")
	}
}

func TestPermutationNotIdentity(t *testing.T) {
	// A random order that happens to be 0,1,2,… would defeat the point of
	// §5.2.3; check the traversal moves indices around.
	p, err := NewPermutation(1000, 99)
	if err != nil {
		t.Fatal(err)
	}
	inOrder := 0
	for i := uint64(0); i < 1000; i++ {
		v, _ := p.Next()
		if v == i {
			inOrder++
		}
	}
	if inOrder > 50 {
		t.Fatalf("permutation too close to identity: %d fixed points", inOrder)
	}
}

func TestPermutationProperty(t *testing.T) {
	f := func(nRaw uint16, seed uint64) bool {
		n := uint64(nRaw)%2048 + 1
		p, err := NewPermutation(n, seed)
		if err != nil {
			return false
		}
		seen := make(map[uint64]bool, n)
		for i := uint64(0); i < n; i++ {
			v, ok := p.Next()
			if !ok || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		_, ok := p.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPermutationRejectsZero(t *testing.T) {
	if _, err := NewPermutation(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}
